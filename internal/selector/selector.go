// Package selector implements the paper's primary contribution: optimal
// per-layer primitive selection in the presence of data layout
// transformations, via reduction to PBQP (§3).
//
// Every layer of the network becomes a PBQP node. Convolution layers
// choose among the library primitives that support their scenario, at
// the profiled execution cost; all other layers are zero-cost wildcard
// nodes whose choices are the data layouts themselves (§5.2). Each DNN
// edge carries a cost matrix of layout-conversion costs taken from the
// DT graph's all-pairs closure for the tensor shape flowing over that
// edge. Solving the PBQP instance yields the globally cheapest
// instantiation; a legalization pass then materializes the conversion
// chains on edges whose endpoint layouts disagree.
package selector

import (
	"fmt"
	"math"
	"time"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dtgraph"
	"pbqpdnn/internal/pbqp"
	"pbqpdnn/internal/tensor"
)

// Plan is a fully legalized instantiation of a network.
type Plan struct {
	Net      *dnn.Graph
	Strategy string
	Threads  int

	// Batch is the minibatch size the plan was optimized for: node costs
	// priced the batched entry points at this N and edge costs the
	// batched conversion slabs. Values ≤ 1 mark a batch-agnostic plan
	// (selected per image, executable at any batch size — the contract
	// every plan had before batch-aware selection); a plan with Batch > 1
	// is only valid for exactly that batch bucket, which CheckBatch
	// enforces.
	Batch int

	// Primitives maps each conv layer id to its selected primitive.
	Primitives map[int]*conv.Primitive
	// Layouts maps every layer id to its selected *output* layout.
	Layouts map[int]tensor.Layout
	// Conversions maps each graph edge to the (possibly empty) chain of
	// direct transforms legalizing it.
	Conversions map[[2]int][]tensor.Transform

	// NodeCost and EdgeCost split the predicted execution time (s).
	NodeCost, EdgeCost float64
	// FusionCredit is the total predicted saving from epilogue fusion
	// already subtracted from NodeCost: on every edge whose producer is a
	// fusion-capable convolution feeding exactly one elementwise
	// consumer in the same layout, the compiler's fusion pass folds the
	// consumer into the producer's writeback, so the selector credits
	// the saved streaming pass to the producer's LayerCost.
	FusionCredit float64
	// LayerCost breaks NodeCost down per conv layer id, and EdgeCosts
	// breaks EdgeCost down per legalized edge — the predicted side of
	// the per-layer predicted-vs-observed join (internal/obs). Both are
	// whole-batch seconds, like NodeCost/EdgeCost themselves.
	LayerCost map[int]float64
	EdgeCosts map[[2]int]float64
	// Optimal reports whether the PBQP solver proved optimality.
	Optimal bool
	// SolveTime is the wall-clock time spent in the PBQP solver.
	SolveTime time.Duration
}

// TotalCost is the predicted whole-network execution time in seconds
// (for the whole batch when the plan was selected at Batch > 1).
func (p *Plan) TotalCost() float64 { return p.NodeCost + p.EdgeCost }

// CostPerImage is the predicted execution time per image: TotalCost
// divided by the plan's batch size.
func (p *Plan) CostPerImage() float64 {
	if p.Batch > 1 {
		return p.TotalCost() / float64(p.Batch)
	}
	return p.TotalCost()
}

// Check verifies the plan's structural integrity for execution: every
// conv layer has a primitive whose layouts agree with the plan, and
// every edge's conversion chain actually connects the producer's
// output layout to the consumer's input layout. Executors (notably the
// batched engine, which reuses one plan across a whole minibatch)
// call it once up front so a malformed plan fails fast instead of
// producing garbage mid-schedule. A Plan is immutable after
// construction and safe for concurrent executors.
func (p *Plan) Check() error {
	for _, l := range p.Net.Layers {
		if _, ok := p.Layouts[l.ID]; !ok {
			return fmt.Errorf("selector: plan for %q has no layout for layer %q", p.Net.Name, l.Name)
		}
		if l.IsConv() {
			prim := p.Primitives[l.ID]
			if prim == nil {
				return fmt.Errorf("selector: plan for %q has no primitive for conv layer %q", p.Net.Name, l.Name)
			}
			if prim.Out != p.Layouts[l.ID] {
				return fmt.Errorf("selector: layer %q: primitive %s produces %s, plan records %s",
					l.Name, prim.Name, prim.Out, p.Layouts[l.ID])
			}
		}
	}
	for _, e := range p.Net.Edges() {
		u, v := e[0], e[1]
		from := p.Layouts[u]
		to := p.Layouts[v]
		if prim, ok := p.Primitives[v]; ok {
			to = prim.In
		}
		cur := from
		for _, tr := range p.Conversions[e] {
			if tr.From != cur {
				return fmt.Errorf("selector: edge %s→%s: transform %s expects %s, chain carries %s",
					p.Net.Layers[u].Name, p.Net.Layers[v].Name, tr.Name, tr.From, cur)
			}
			cur = tr.To
		}
		if cur != to {
			return fmt.Errorf("selector: edge %s→%s: chain legalizes %s→%s, consumer wants %s",
				p.Net.Layers[u].Name, p.Net.Layers[v].Name, from, cur, to)
		}
	}
	return nil
}

// CheckBatch verifies the plan for execution at the given batch bucket:
// structural integrity (Check) plus the bucket/plan agreement — a plan
// selected against batch-N costs must execute at exactly N, while a
// batch-agnostic (per-image) plan may execute at any size. Compilers
// (program.CompileBatch, and through it exec.NewEngineBatch) call it so
// a serving registry can never silently execute bucket B against a plan
// optimized for a different bucket.
func (p *Plan) CheckBatch(batch int) error {
	if err := p.Check(); err != nil {
		return err
	}
	if p.Batch > 1 && p.Batch != batch {
		return fmt.Errorf("selector: plan for %q was selected at batch %d, cannot execute batch bucket %d",
			p.Net.Name, p.Batch, batch)
	}
	return nil
}

// Options configures a selection run.
type Options struct {
	// Lib is the primitive library (conv.Library() by default).
	Lib []*conv.Primitive
	// Prof prices primitives and transforms.
	Prof cost.Profiler
	// Threads is the execution thread count being optimized for.
	Threads int
	// Mode selects the PBQP fallback (heuristic RN vs exact B&B).
	Mode pbqp.Mode
}

func (o *Options) defaults() {
	if o.Lib == nil {
		o.Lib = conv.Library()
	}
	if o.Threads < 1 {
		o.Threads = 1
	}
}

// dtCache builds DT closures lazily per (tensor shape, batch), since
// transform costs depend on the tensor dimensions on each edge (§3.1)
// and, for batched selection, on the size of the batched slab the
// legalized conversion will actually move.
type dtCache struct {
	prof  cost.Profiler
	batch int
	m     map[[3]int]*dtgraph.Graph
}

func newDTCache(prof cost.Profiler, batch int) *dtCache {
	if batch < 1 {
		batch = 1
	}
	return &dtCache{prof: prof, batch: batch, m: map[[3]int]*dtgraph.Graph{}}
}

func (d *dtCache) get(c, h, w int) *dtgraph.Graph {
	key := [3]int{c, h, w}
	if g, ok := d.m[key]; ok {
		return g
	}
	g := dtgraph.New(tensor.DirectTransforms(), func(tr tensor.Transform) float64 {
		return cost.TransformN(d.prof, tr, c, h, w, d.batch)
	})
	d.m[key] = g
	return g
}

// choice is one PBQP assignment for a layer: either a primitive (conv
// layers) or a bare layout (wildcard layers).
type choice struct {
	prim   *conv.Primitive
	layout tensor.Layout
}

func (c choice) inLayout() tensor.Layout {
	if c.prim != nil {
		return c.prim.In
	}
	return c.layout
}

func (c choice) outLayout() tensor.Layout {
	if c.prim != nil {
		return c.prim.Out
	}
	return c.layout
}

// problem is the assembled PBQP instance plus its back-mapping. It
// carries the DT-closure cache from assembly into legalization, so
// finish never recomputes the per-shape closures build already paid
// for, and the batch size the instance was priced at.
type problem struct {
	graph   *pbqp.Graph
	choices [][]choice // per layer id
	dts     *dtCache
	batch   int
}

// build assembles the PBQP instance for one batch bucket. convChoices
// gives the candidate primitives per conv layer; layoutChoices the
// candidate layouts per wildcard layer; overhead scales node costs
// (vendor-proxy dispatch tax). Node costs price the batched entry
// points at the bucket size, and edge costs the batched conversion
// slabs, so each bucket's instance is a genuinely different PBQP.
func build(net *dnn.Graph, opts *Options, convChoices map[int][]*conv.Primitive,
	layoutChoices []tensor.Layout, overhead float64, batch int) (*problem, error) {
	if batch < 1 {
		batch = 1
	}
	pr := &problem{
		graph:   pbqp.NewGraph(),
		choices: make([][]choice, net.NumLayers()),
		dts:     newDTCache(opts.Prof, batch),
		batch:   batch,
	}
	dts := pr.dts
	for _, l := range net.Layers {
		var cs []choice
		var costs []float64
		if l.IsConv() {
			prims := convChoices[l.ID]
			if len(prims) == 0 {
				return nil, fmt.Errorf("selector: no candidate primitive for layer %q %s", l.Name, l.Conv)
			}
			for _, p := range prims {
				c := cost.PrimitiveN(opts.Prof, p, l.Conv, opts.Threads, batch) * overhead
				// A +Inf cost means the profiler has no entry (a pruned
				// candidate of a top-K calibrated table): exclude it from
				// the instance rather than hand the solver infinities.
				if math.IsInf(c, 1) {
					continue
				}
				cs = append(cs, choice{prim: p})
				costs = append(costs, c)
			}
			if len(cs) == 0 {
				return nil, fmt.Errorf("selector: no priced candidate primitive for layer %q %s (profiler table missing the scenario?)", l.Name, l.Conv)
			}
		} else {
			for _, lay := range layoutChoices {
				cs = append(cs, choice{layout: lay})
				costs = append(costs, 0)
			}
		}
		pr.choices[l.ID] = cs
		if id := pr.graph.AddNode(costs); id != l.ID {
			return nil, fmt.Errorf("selector: node id mismatch %d != %d", id, l.ID)
		}
	}
	for _, e := range net.Edges() {
		u, v := e[0], e[1]
		lu := net.Layers[u]
		dt := dts.get(lu.OutC, lu.OutH, lu.OutW)
		fusable := fusionEligibleEdge(net, u, v)
		m := pbqp.NewMatrix(len(pr.choices[u]), len(pr.choices[v]))
		for i, cu := range pr.choices[u] {
			// Fusion credit: on an eligible edge, a capable primitive
			// whose output layout matches the consumer's folds the
			// elementwise pass into its own writeback — priced as a
			// negative entry on the layout-agreeing diagonal, so the
			// solver weighs the saving against conversion costs exactly
			// where the fusion pass can realize it.
			var credit float64
			if fusable && cu.prim != nil {
				base := cost.PrimitiveN(opts.Prof, cu.prim, lu.Conv, opts.Threads, batch)
				credit = fusionCredit(opts.Prof, cu.prim, lu.Conv, batch, base) * overhead
			}
			for j, cv := range pr.choices[v] {
				c := dt.Cost(cu.outLayout(), cv.inLayout())
				if credit > 0 && cu.outLayout() == cv.inLayout() {
					c -= credit
				}
				m.Set(i, j, c)
			}
		}
		pr.graph.AddEdge(u, v, m)
	}
	return pr, nil
}

// fusionEligibleEdge reports whether graph edge u→v is one the
// compiler's fusion pass can fold: u is a convolution whose value feeds
// exactly this one consumer, v is an elementwise epilogue kind, and v
// is not the network output (the output stays its own fresh
// instruction). This is the selector's static over-approximation of the
// fusion legality the compiler and verifier recompute per program; the
// remaining conditions (same layout, no conversion on the edge) are
// priced per choice pair.
func fusionEligibleEdge(net *dnn.Graph, u, v int) bool {
	if !net.Layers[u].IsConv() {
		return false
	}
	if succs := net.Succs(u); len(succs) != 1 || succs[0] != v {
		return false
	}
	switch net.Layers[v].Kind {
	case dnn.KindReLU, dnn.KindAdd:
	default:
		return false
	}
	return len(net.Succs(v)) > 0
}

// fusionCredit is the priced saving for fusing one elementwise epilogue
// into primitive p's writeback, clamped so no credit can exceed 90% of
// the node's own cost — the epilogue can at most save the streaming
// pass, never make the convolution free.
func fusionCredit(prof cost.Profiler, p *conv.Primitive, s conv.Scenario, batch int, base float64) float64 {
	save := cost.EpilogueSavingN(prof, p, s, batch)
	if max := 0.9 * base; save > max {
		save = max
	}
	return save
}

// finish solves the instance and materializes the legalized plan.
func (pr *problem) finish(net *dnn.Graph, opts *Options, name string) (*Plan, error) {
	start := time.Now()
	sol := pr.graph.Solve(opts.Mode)
	elapsed := time.Since(start)

	plan := &Plan{
		Net:         net,
		Strategy:    name,
		Threads:     opts.Threads,
		Batch:       pr.batch,
		Primitives:  map[int]*conv.Primitive{},
		Layouts:     map[int]tensor.Layout{},
		Conversions: map[[2]int][]tensor.Transform{},
		LayerCost:   map[int]float64{},
		EdgeCosts:   map[[2]int]float64{},
		Optimal:     sol.Optimal,
		SolveTime:   elapsed,
	}
	dts := pr.dts
	for _, l := range net.Layers {
		ch := pr.choices[l.ID][sol.Selection[l.ID]]
		plan.Layouts[l.ID] = ch.outLayout()
		if l.IsConv() {
			plan.Primitives[l.ID] = ch.prim
			c := cost.PrimitiveN(opts.Prof, ch.prim, l.Conv, opts.Threads, pr.batch)
			plan.LayerCost[l.ID] = c
			plan.NodeCost += c
		}
	}
	// Legalization (§3): bisect every edge whose endpoint layouts
	// disagree with the least-cost conversion chain from the DT closure.
	for _, e := range net.Edges() {
		u, v := e[0], e[1]
		lu := net.Layers[u]
		from := pr.choices[u][sol.Selection[u]].outLayout()
		to := pr.choices[v][sol.Selection[v]].inLayout()
		if from == to {
			continue
		}
		dt := dts.get(lu.OutC, lu.OutH, lu.OutW)
		chain, err := dt.Path(from, to)
		if err != nil {
			return nil, fmt.Errorf("selector: edge %s→%s: %w", net.Layers[u].Name, net.Layers[v].Name, err)
		}
		plan.Conversions[e] = chain
		plan.EdgeCosts[e] = dt.Cost(from, to)
		plan.EdgeCost += dt.Cost(from, to)
	}
	// Fusion credit: re-derive, per eligible edge whose selected layouts
	// agree, the same saving build priced into the PBQP instance, and
	// attribute it to the producer layer — LayerCost stays an exact
	// partition of NodeCost.
	for _, e := range net.Edges() {
		u, v := e[0], e[1]
		if !fusionEligibleEdge(net, u, v) {
			continue
		}
		from := pr.choices[u][sol.Selection[u]].outLayout()
		to := pr.choices[v][sol.Selection[v]].inLayout()
		if from != to {
			continue
		}
		lu := net.Layers[u]
		credit := fusionCredit(opts.Prof, plan.Primitives[u], lu.Conv, pr.batch, plan.LayerCost[u])
		if credit <= 0 {
			continue
		}
		plan.LayerCost[u] -= credit
		plan.NodeCost -= credit
		plan.FusionCredit += credit
	}
	return plan, nil
}

// Select runs the paper's full PBQP strategy: every supporting
// primitive is a candidate for every conv layer, wildcard layers range
// over all layouts, and the solver finds the global optimum. The plan
// is priced per image (batch 1) and stays batch-agnostic: executors
// may compile it at any batch size. It is SelectBatch at N = 1.
func Select(net *dnn.Graph, opts Options) (*Plan, error) {
	return SelectBatch(net, 1, opts)
}

// SelectBatch runs the full PBQP strategy against the costs of one
// batch bucket: every conv node is priced by the batched entry points
// at N images (cost.PrimitiveN — amortized setup for primitives with a
// real batched implementation, linear scaling for the per-image
// fallback), and every edge by the cost of converting the N-image slab
// that actually flows over it. Each bucket therefore gets its own PBQP
// instance and, in general, a different optimal plan — batched im2row
// and wino2d amortize work the per-image primitives cannot, so the
// cost-optimal primitive per layer genuinely changes with N. The
// returned plan records Batch = N; CheckBatch ties it to its bucket.
func SelectBatch(net *dnn.Graph, batch int, opts Options) (*Plan, error) {
	if batch < 1 {
		return nil, fmt.Errorf("selector: invalid batch size %d", batch)
	}
	opts.defaults()
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		convChoices[id] = conv.Supporting(opts.Lib, net.Layers[id].Conv)
	}
	pr, err := build(net, &opts, convChoices, tensor.Layouts(), 1, batch)
	if err != nil {
		return nil, err
	}
	return pr.finish(net, &opts, "pbqp")
}
