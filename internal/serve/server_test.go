package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newTestRegistry hosts micronet — the smallest real network — behind
// a real selected plan and compiled engine.
func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry([]string{"micronet"}, Config{
		Threads: 2,
		Batch:   BatchOptions{MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

func postInfer(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServerInference is the end-to-end HTTP smoke: POST one image,
// expect 200, the declared output shape, and a softmax that sums to 1.
func TestServerInference(t *testing.T) {
	reg := newTestRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	m, _ := reg.Get("micronet")
	data := make([]float32, m.InC*m.InH*m.InW)
	for i := range data {
		data[i] = float32(i%7) * 0.1
	}
	resp := postInfer(t, srv, "/v1/models/micronet/infer", InferRequest{Data: data})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var out InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Shape != [3]int{m.OutC, m.OutH, m.OutW} {
		t.Errorf("shape %v, want %v", out.Shape, [3]int{m.OutC, m.OutH, m.OutW})
	}
	if len(out.Output) != m.OutC*m.OutH*m.OutW {
		t.Fatalf("output has %d elements, want %d", len(out.Output), m.OutC*m.OutH*m.OutW)
	}
	var sum float64
	for _, v := range out.Output {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("softmax output sums to %g, want 1", sum)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	reg := newTestRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	cases := []struct {
		name, path string
		body       any
		want       int
	}{
		{"unknown model", "/v1/models/nope/infer", InferRequest{Data: make([]float32, 3*16*16)}, http.StatusNotFound},
		{"wrong length", "/v1/models/micronet/infer", InferRequest{Data: make([]float32, 5)}, http.StatusBadRequest},
		{"bad timeout", "/v1/models/micronet/infer?timeout_ms=zero", InferRequest{Data: make([]float32, 3*16*16)}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postInfer(t, srv, c.path, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/models/micronet/infer", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestServerIntrospection(t *testing.T) {
	reg := newTestRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "micronet" || infos[0].InputShape != [3]int{3, 16, 16} {
		t.Errorf("/models = %+v", infos)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := stats["micronet"]; !ok {
		t.Errorf("/stats missing micronet: %v", stats)
	}
}

// TestRegistryUnknownModel: a bad name fails loading and leaves nothing
// running.
func TestRegistryUnknownModel(t *testing.T) {
	if _, err := NewRegistry([]string{"micronet", "not-a-net"}, Config{}); err == nil {
		t.Fatal("unknown model should fail registry construction")
	}
}

// TestLoadTestSmoke drives both the batched path and the naive baseline
// end to end on micronet and sanity-checks the reports. (The perf
// comparison itself is the EXPERIMENTS.md acceptance run via
// dnnserver -loadgen; asserting speedups in unit tests invites flakes.)
func TestLoadTestSmoke(t *testing.T) {
	reg := newTestRegistry(t)
	m, _ := reg.Get("micronet")

	o := LoadOptions{Clients: 4, PerClient: 3}
	batched, err := LoadTest(m, o)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveLoadTest(m, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []LoadReport{batched, naive} {
		if r.Requests != 12 || r.Errors != 0 {
			t.Errorf("%s: %d requests, %d errors", r.Mode, r.Requests, r.Errors)
		}
		if r.MeanLatency <= 0 || r.P99 < r.P50 {
			t.Errorf("%s: degenerate latencies %+v", r.Mode, r)
		}
	}
	if batched.MeanBatch < 1 {
		t.Errorf("batched mean batch %.2f < 1", batched.MeanBatch)
	}
	if naive.MeanBatch != 1 {
		t.Errorf("naive mean batch %.2f, want exactly 1", naive.MeanBatch)
	}
	if out := FormatLoadComparison("micronet", batched, naive); len(out) == 0 {
		t.Error("empty comparison output")
	}
}

// TestLoadTestOpenLoop exercises the open-loop arrival schedule with a
// per-request deadline: every request must be accounted for exactly
// once across served/rejected/expired/errors, and offered load must be
// derived from the interval.
func TestLoadTestOpenLoop(t *testing.T) {
	reg := newTestRegistry(t)
	m, _ := reg.Get("micronet")

	o := LoadOptions{Clients: 2, PerClient: 5, Interval: time.Millisecond, Deadline: 100 * time.Millisecond}
	for _, run := range []func(*Model, LoadOptions) (LoadReport, error){LoadTest, NaiveLoadTest} {
		rep, err := run(m, o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Requests != 10 {
			t.Errorf("%s: %d requests, want 10", rep.Mode, rep.Requests)
		}
		if got := rep.Served + rep.Rejected + rep.Expired + rep.Errors; got != rep.Requests {
			t.Errorf("%s: outcomes sum to %d of %d (%+v)", rep.Mode, got, rep.Requests, rep)
		}
		if rep.OfferedRPS != 2000 {
			t.Errorf("%s: offered %.0f rps, want 2000", rep.Mode, rep.OfferedRPS)
		}
		if rep.Late > rep.Served {
			t.Errorf("%s: %d late exceeds %d served", rep.Mode, rep.Late, rep.Served)
		}
	}
}
