package cost

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/tensor"
)

// Table is a materialized, serializable cost table: every
// (scenario, primitive, threads) node cost and every
// (transform, shape) conversion cost a network's optimization needs.
// This implements the paper's deployment story (§4): "the resulting
// cost tables are tiny compared to the weight data … making it
// feasible to produce these cost tables before deployment, and ship
// them with the trained model". Profile once per hardware platform per
// DNN model — with the Measure profiler on the real device — then ship
// the JSON and re-solve on the target without ever running a
// primitive.
type Table struct {
	// Machine documents the platform the table was profiled on.
	Machine string `json:"machine"`
	// Threads is the thread count the entries were profiled at.
	Threads int `json:"threads"`
	// Nodes maps scenario → primitive name → seconds.
	Nodes map[string]map[string]float64 `json:"nodes"`
	// Transforms maps shape ("CxHxW") → transform name → seconds.
	Transforms map[string]map[string]float64 `json:"transforms"`
}

func shapeKey(c, h, w int) string { return fmt.Sprintf("%dx%dx%d", c, h, w) }

// BuildTable profiles every (layer scenario, supporting primitive)
// pair of the network and every direct transform at every edge shape,
// using the given profiler — the paper's §3.1 profiling stage,
// materialized.
func BuildTable(net *dnn.Graph, lib []*conv.Primitive, prof Profiler, machine string, threads int) *Table {
	t := &Table{
		Machine:    machine,
		Threads:    threads,
		Nodes:      map[string]map[string]float64{},
		Transforms: map[string]map[string]float64{},
	}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		key := s.String()
		if _, done := t.Nodes[key]; done {
			continue
		}
		row := map[string]float64{}
		for _, p := range lib {
			if p.Supports(s) {
				row[p.Name] = prof.Primitive(p, s, threads)
			}
		}
		t.Nodes[key] = row
	}
	for _, l := range net.Layers {
		key := shapeKey(l.OutC, l.OutH, l.OutW)
		if _, done := t.Transforms[key]; done {
			continue
		}
		row := map[string]float64{}
		for _, tr := range tensor.DirectTransforms() {
			row[tr.Name] = prof.Transform(tr, l.OutC, l.OutH, l.OutW)
		}
		t.Transforms[key] = row
	}
	return t
}

// Primitive implements Profiler from the materialized table. Entries
// missing from the table (a scenario or primitive that was not
// profiled) cost +Inf, so the selector will never choose them.
func (t *Table) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	if row, ok := t.Nodes[s.String()]; ok {
		if c, ok := row[p.Name]; ok {
			return c
		}
	}
	return math.Inf(1)
}

// Transform implements Profiler from the materialized table.
func (t *Table) Transform(tr tensor.Transform, c, h, w int) float64 {
	if row, ok := t.Transforms[shapeKey(c, h, w)]; ok {
		if v, ok := row[tr.Name]; ok {
			return v
		}
	}
	return math.Inf(1)
}

// NumEntries returns the total number of profiled costs — the "tiny"
// size the paper contrasts against model weights.
func (t *Table) NumEntries() int {
	n := 0
	for _, row := range t.Nodes {
		n += len(row)
	}
	for _, row := range t.Transforms {
		n += len(row)
	}
	return n
}

// Save writes the table as JSON.
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// LoadTable reads a table written by Save.
func LoadTable(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("cost: decoding table: %w", err)
	}
	if t.Nodes == nil || t.Transforms == nil {
		return nil, fmt.Errorf("cost: table missing sections")
	}
	return &t, nil
}
