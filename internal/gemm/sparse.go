package gemm

// CSR is a compressed-sparse-row float32 matrix, the substrate for the
// sparsity-aware convolution primitives described in the paper's future
// work (§8): a kernel matrix with many zero weights can be multiplied in
// time proportional to its non-zeros.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float32
}

// NewCSR compresses the dense row-major rows×cols matrix a, dropping
// exact zeros.
func NewCSR(rows, cols int, a []float32) *CSR {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := a[i*cols+j]; v != 0 {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Val))
	}
	return m
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// Density returns the fraction of entries that are non-zero.
func (m *CSR) Density() float64 {
	if m.Rows*m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows*m.Cols)
}

// SpMM computes C = S·B where S is this CSR matrix (rows×cols), B is a
// dense cols×n row-major matrix, and C is a dense rows×n matrix that is
// overwritten.
func (m *CSR) SpMM(n int, b, c []float32) {
	for i := 0; i < m.Rows; i++ {
		ci := c[i*n : i*n+n]
		for j := range ci {
			ci[j] = 0
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			av := m.Val[p]
			bp := b[int(m.ColIdx[p])*n : int(m.ColIdx[p])*n+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// SpMMAcc computes C += S·B without clearing C first.
func (m *CSR) SpMMAcc(n int, b, c []float32) {
	for i := 0; i < m.Rows; i++ {
		ci := c[i*n : i*n+n]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			av := m.Val[p]
			bp := b[int(m.ColIdx[p])*n : int(m.ColIdx[p])*n+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}
