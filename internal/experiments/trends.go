package experiments

import (
	"fmt"

	"pbqpdnn/internal/cost"
)

// Trend is one §5.8-style claim checked against regenerated data.
type Trend struct {
	Name string
	OK   bool
	Note string
}

// CheckTrends re-derives the paper's experimental trends (§5.6–§5.8)
// from the whole-network grids and reports which hold. The benchmark
// harness prints them; the test suite asserts them.
func CheckTrends() ([]Trend, error) {
	var ts []Trend
	add := func(name string, ok bool, note string) {
		ts = append(ts, Trend{Name: name, OK: ok, Note: note})
	}

	f5, err := Figure5()
	if err != nil {
		return nil, err
	}
	f6, err := Figure6()
	if err != nil {
		return nil, err
	}
	f7a, err := Figure7a()
	if err != nil {
		return nil, err
	}
	f7b, err := Figure7b()
	if err != nil {
		return nil, err
	}
	byNet := func(nrs []*NetworkResult) map[string]*NetworkResult {
		m := map[string]*NetworkResult{}
		for _, nr := range nrs {
			m[nr.Network] = nr
		}
		return m
	}
	n5, n6, n7a, n7b := byNet(f5), byNet(f6), byNet(f7a), byNet(f7b)

	// 1. PBQP is the best strategy on every network / platform / mode.
	allBest := true
	worstNote := ""
	for _, grid := range [][]*NetworkResult{f5, f6, f7a, f7b} {
		for _, nr := range grid {
			if top := nr.SortedStrategies()[0]; top != "pbqp" {
				allBest = false
				worstNote = fmt.Sprintf("%s/%s/t%d topped by %s", nr.Network, nr.Machine, nr.Threads, top)
			}
		}
	}
	add("pbqp-dominates-everywhere", allBest, worstNote)

	// 2. Winograd is the best non-PBQP family on the all-3×3 VGG nets
	// but NOT on AlexNet/GoogleNet (§5.8: "no one convolution algorithm
	// excels in every scenario").
	winoVGG := true
	for _, n := range []string{"vgg-b", "vgg-e"} {
		w, _ := n5[n].Get("winograd")
		for _, fam := range []string{"direct", "im2", "kn2", "fft"} {
			if r, _ := n5[n].Get(fam); r.Speedup > w.Speedup {
				winoVGG = false
			}
		}
	}
	add("winograd-supreme-on-vgg", winoVGG, "")
	wGoogle, _ := n5["googlenet"].Get("winograd")
	im2Google, _ := n5["googlenet"].Get("im2")
	add("winograd-not-supreme-on-googlenet", wGoogle.Speedup < im2Google.Speedup,
		fmt.Sprintf("wino %.2fx vs im2 %.2fx", wGoogle.Speedup, im2Google.Speedup))

	// 3. GoogleNet + direct family on ARM single-threaded: the
	// legalizing DT transforms produce a net slowdown (§5.8).
	dG, _ := n7a["googlenet"].Get("direct")
	add("direct-googlenet-arm-net-slowdown", dG.Speedup <= 1.0,
		fmt.Sprintf("direct %.3fx", dG.Speedup))

	// 4. Local-optimal CHW always helps (≥1×) but is always beaten by
	// PBQP (§6).
	loptOK := true
	for _, grid := range [][]*NetworkResult{f5, f6, f7a, f7b} {
		for _, nr := range grid {
			lo, _ := nr.Get("local-opt")
			pb, _ := nr.Get("pbqp")
			if lo.Speedup < 1 || lo.Speedup >= pb.Speedup {
				loptOK = false
			}
		}
	}
	add("local-opt-helps-but-loses", loptOK, "")

	// 5. The PBQP-vs-vendor gap widens multithreaded (§5.6: "it is in
	// multithreaded execution where the PBQP approach really shines",
	// up to ~2× over the vendor library on VGG-E).
	gapST := ratio(n5["vgg-e"], "pbqp", "mkldnn")
	gapMT := ratio(n6["vgg-e"], "pbqp", "mkldnn")
	add("mt-widens-vendor-gap", gapMT > gapST,
		fmt.Sprintf("ST %.2fx → MT %.2fx", gapST, gapMT))

	// 6. PBQP beats Caffe by a large factor on ARM multithreaded (§5.7:
	// "up to 7x versus Caffe on the Cortex-A57").
	cf := ratio(n7b["alexnet"], "pbqp", "caffe")
	cg := ratio(n7b["googlenet"], "pbqp", "caffe")
	add("arm-mt-beats-caffe", cf > 2 && cg > 2,
		fmt.Sprintf("alexnet %.1fx googlenet %.1fx", cf, cg))

	// 7. Solver overhead: < 1 s and provably optimal for every network
	// (§5.4).
	ov, err := SolverOverheads(cost.IntelHaswell, 4)
	if err != nil {
		return nil, err
	}
	solverOK := true
	note := ""
	for n, r := range ov {
		if !r.Optimal || r.SolveMS > 1000 {
			solverOK = false
			note = fmt.Sprintf("%s: optimal=%v solve=%.1fms", n, r.Optimal, r.SolveMS)
		}
	}
	add("solver-fast-and-optimal", solverOK, note)

	return ts, nil
}

// ratio returns speedup(a)/speedup(b) within one bar group.
func ratio(nr *NetworkResult, a, b string) float64 {
	ra, _ := nr.Get(a)
	rb, _ := nr.Get(b)
	if rb.Speedup == 0 {
		return 0
	}
	return ra.Speedup / rb.Speedup
}
