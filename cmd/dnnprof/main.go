// Command dnnprof dumps the per-layer cost tables the optimizer
// consumes (the paper's §3.1 profiling stage): for each convolution
// layer of a network, the top primitive candidates with their modeled
// (or measured) execution times.
//
// Usage:
//
//	dnnprof -net alexnet -platform intel -threads 4 -top 5
//	dnnprof -net googlenet -platform arm -measure
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnnprof: ")
	netName := flag.String("net", "alexnet", "network: "+fmt.Sprint(models.Names()))
	platform := flag.String("platform", "intel", "platform: intel or arm (model profiler)")
	threads := flag.Int("threads", 1, "thread count")
	top := flag.Int("top", 5, "candidates to print per layer")
	measure := flag.Bool("measure", false, "wall-clock measure the real Go primitives instead of the machine model (slow)")
	flag.Parse()

	g, err := models.Build(*netName)
	if err != nil {
		log.Fatal(err)
	}
	var prof cost.Profiler
	switch {
	case *measure:
		prof = cost.NewMeasure(3)
	case *platform == "arm":
		prof = cost.NewModel(cost.CortexA57)
	default:
		prof = cost.NewModel(cost.IntelHaswell)
	}

	lib := conv.Library()
	for _, id := range g.ConvLayers() {
		l := g.Layers[id]
		type cand struct {
			name string
			ms   float64
		}
		var cands []cand
		for _, p := range lib {
			if !p.Supports(l.Conv) {
				continue
			}
			cands = append(cands, cand{p.Name, prof.Primitive(p, l.Conv, *threads) * 1e3})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].ms < cands[j].ms })
		fmt.Printf("%-26s %s  (%d candidates)\n", l.Name, l.Conv, len(cands))
		for i, c := range cands {
			if i >= *top {
				break
			}
			fmt.Printf("    %-28s %10.3f ms\n", c.name, c.ms)
		}
	}
}
