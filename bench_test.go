package pbqpdnn_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation section, plus ablations for the design choices
// DESIGN.md calls out. Speedups and solve times are attached as custom
// benchmark metrics so `go test -bench` output reads like the paper's
// figures:
//
//	go test -bench=Fig5 -benchmem        # Figure 5 series
//	go test -bench=Table2                # Table 2 rows
//	go test -bench=Ablation              # design-choice ablations
//	DNNBENCH_VERBOSE=1 go test -bench=.  # also print the rendered rows

import (
	"fmt"
	"os"
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/experiments"
	"pbqpdnn/internal/pbqp"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

var verbose = os.Getenv("DNNBENCH_VERBOSE") != ""

// benchFigure runs one whole-network figure grid, attaching each
// strategy's speedup as a metric on a per-network sub-benchmark.
func benchFigure(b *testing.B, gen func() ([]*experiments.NetworkResult, error)) {
	nrs, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	for _, nr := range nrs {
		nr := nr
		b.Run(nr.Network, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Regenerate to time the full pipeline (profiling +
				// PBQP + legalization for every strategy).
				if _, err := experiments.WholeNetwork(nr.Network, machineOf(nr.Machine), nr.Threads); err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range nr.Results {
				b.ReportMetric(r.Speedup, r.Strategy+"-x")
			}
			if verbose {
				fmt.Print(experiments.FormatNetworkResult(nr))
			}
		})
	}
}

func machineOf(name string) cost.Machine {
	if name == cost.CortexA57.Name {
		return cost.CortexA57
	}
	return cost.IntelHaswell
}

// BenchmarkFig5IntelST regenerates Figure 5 (single-threaded Intel).
func BenchmarkFig5IntelST(b *testing.B) { benchFigure(b, experiments.Figure5) }

// BenchmarkFig6IntelMT regenerates Figure 6 (multithreaded Intel).
func BenchmarkFig6IntelMT(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkFig7aARMST regenerates Figure 7a (single-threaded ARM).
func BenchmarkFig7aARMST(b *testing.B) { benchFigure(b, experiments.Figure7a) }

// BenchmarkFig7bARMMT regenerates Figure 7b (multithreaded ARM).
func BenchmarkFig7bARMMT(b *testing.B) { benchFigure(b, experiments.Figure7b) }

// benchTable runs a Table 2/3 regeneration, reporting each cell in
// model milliseconds.
func benchTable(b *testing.B, gen func() ([]experiments.TableRow, error), title string) {
	rows, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := gen(); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		prefix := fmt.Sprintf("%s-%s-", r.Threaded, r.Network)
		b.ReportMetric(r.Sum2D, prefix+"sum2d-ms")
		b.ReportMetric(r.LocalOpt, prefix+"lopt-ms")
		b.ReportMetric(r.PBQP, prefix+"pbqp-ms")
		b.ReportMetric(r.Caffe, prefix+"caffe-ms")
	}
	if verbose {
		fmt.Print(experiments.FormatTable(title, rows))
	}
}

// BenchmarkTable2Intel regenerates Table 2 (Intel absolute times).
func BenchmarkTable2Intel(b *testing.B) { benchTable(b, experiments.Table2, "Table 2") }

// BenchmarkTable3ARM regenerates Table 3 (ARM absolute times).
func BenchmarkTable3ARM(b *testing.B) { benchTable(b, experiments.Table3, "Table 3") }

// BenchmarkTable1Traits regenerates the qualitative family-traits
// table.
func BenchmarkTable1Traits(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(cost.IntelHaswell)
	}
	if verbose {
		fmt.Print(experiments.FormatTable1(rows))
	}
}

// BenchmarkFig2Example solves the paper's worked PBQP example.
func BenchmarkFig2Example(b *testing.B) {
	var r experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2()
	}
	b.ReportMetric(r.NodeOnlyCost, "node-only-cost")
	b.ReportMetric(r.FullCost, "full-cost")
}

// BenchmarkFig4Selections regenerates the AlexNet selection maps.
func BenchmarkFig4Selections(b *testing.B) {
	var intel, arm []experiments.Figure4Selection
	var err error
	for i := 0; i < b.N; i++ {
		intel, arm, err = experiments.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	wino2D := 0
	for _, r := range intel {
		if r.Wino2D {
			wino2D++
		}
	}
	b.ReportMetric(float64(wino2D), "intel-2d-layers")
	if verbose {
		fmt.Print(experiments.FormatFigure4(intel, arm))
	}
}

// BenchmarkSolverOverhead times the PBQP solve per network (§5.4: under
// a second each, optimal in every case).
func BenchmarkSolverOverhead(b *testing.B) {
	for _, name := range models.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			g, err := models.Build(name)
			if err != nil {
				b.Fatal(err)
			}
			opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 4}
			var plan *selector.Plan
			for i := 0; i < b.N; i++ {
				plan, err = selector.Select(g, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(plan.SolveTime.Seconds()*1e3, "solve-ms")
			if !plan.Optimal {
				b.Fatal("solver failed to prove optimality")
			}
		})
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationEdgeCosts compares full PBQP against the
// no-edge-cost selection (§5.8): the metric is the slowdown factor
// incurred by ignoring layout-transformation costs during selection.
func BenchmarkAblationEdgeCosts(b *testing.B) {
	for _, name := range []string{"alexnet", "googlenet"} {
		name := name
		b.Run(name, func(b *testing.B) {
			g, err := models.Build(name)
			if err != nil {
				b.Fatal(err)
			}
			opts := selector.Options{Prof: cost.NewModel(cost.CortexA57), Threads: 4}
			var full, noEdge *selector.Plan
			for i := 0; i < b.N; i++ {
				if full, err = selector.Select(g, opts); err != nil {
					b.Fatal(err)
				}
				if noEdge, err = selector.NoEdgeCost(g, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(noEdge.TotalCost()/full.TotalCost(), "ignore-dt-slowdown-x")
		})
	}
}

// BenchmarkAblationSolverMode compares the RN heuristic against exact
// branch-and-bound on the largest network.
func BenchmarkAblationSolverMode(b *testing.B) {
	g, err := models.Build("googlenet")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    pbqp.Mode
	}{{"heuristic", pbqp.Heuristic}, {"exact", pbqp.Exact}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 4, Mode: mode.m}
			var plan *selector.Plan
			for i := 0; i < b.N; i++ {
				if plan, err = selector.Select(g, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(plan.TotalCost()*1e3, "predicted-ms")
		})
	}
}

// BenchmarkAblationSparsity quantifies the §8 sparsity extension: the
// metric is the predicted gain from letting the selector switch to
// sparse primitives at 99% kernel sparsity.
func BenchmarkAblationSparsity(b *testing.B) {
	build := func(sparsity float64) *dnn.Graph {
		bld, x := dnn.NewBuilder("sparse-probe", 128, 28, 28)
		x = bld.Conv(x, "c1", 128, 3, 1, 1)
		g := func() *dnn.Graph { bld.Softmax(x, "sm"); return bld.Graph() }()
		g.Layers[g.ConvLayers()[0]].Conv.Sparsity = sparsity
		return g
	}
	opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 1}
	var dense, sparse *selector.Plan
	var err error
	for i := 0; i < b.N; i++ {
		if dense, err = selector.Select(build(0), opts); err != nil {
			b.Fatal(err)
		}
		if sparse, err = selector.Select(build(0.99), opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dense.TotalCost()/sparse.TotalCost(), "sparsity-gain-x")
}

// BenchmarkExtSparsitySweep regenerates the §8 sparsity sweep,
// reporting the crossover gain at the highest sparsity level.
func BenchmarkExtSparsitySweep(b *testing.B) {
	var pts []experiments.SparsityPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.SparsitySweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.SpeedupX, "gain-at-99pct-x")
	if verbose {
		fmt.Print(experiments.FormatSparsitySweep(pts))
	}
}

// BenchmarkExtMinibatchSweep regenerates the §8 minibatch sweep,
// reporting batch-16 per-image amortization versus batch-1.
func BenchmarkExtMinibatchSweep(b *testing.B) {
	var pts []experiments.MinibatchPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.MinibatchSweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].PerImageMS/pts[len(pts)-1].PerImageMS, "amortization-x")
	if verbose {
		fmt.Print(experiments.FormatMinibatchSweep(pts))
	}
}

// BenchmarkRealExecution measures actual wall-clock execution of an
// optimized plan versus the sum2d baseline on the host machine, using
// the measurement profiler — the end-to-end "is the selection real"
// check on a small network.
func BenchmarkRealExecution(b *testing.B) {
	bld, x := dnn.NewBuilder("bench-net", 8, 32, 32)
	x = bld.Conv(x, "c1", 16, 3, 1, 1)
	x = bld.ReLU(x, "r1")
	x = bld.Conv(x, "c2", 16, 3, 1, 1)
	x = bld.MaxPool(x, "p1", 2, 2, 0)
	x = bld.Conv(x, "c3", 24, 5, 1, 2)
	g := func() *dnn.Graph { bld.Softmax(x, "sm"); return bld.Graph() }()
	w := exec.NewWeights(g)
	in := tensor.New(tensor.CHW, 8, 32, 32)
	in.FillRandom(7)
	opts := selector.Options{Prof: cost.NewMeasure(3), Threads: 1}
	plan, err := selector.Select(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	base, err := selector.Baseline(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pbqp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Run(plan, in, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sum2d", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Run(base, in, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchEngineBatch compares per-image sequential execution (exec.Run
// in a loop) against the batched, branch-parallel engine
// (exec.RunBatch) on the same legalized plan: the engine's
// dependency-counting scheduler, buffer arena and layout fast paths
// versus the oracle executor's fresh-allocation walk.
func benchEngineBatch(b *testing.B, g *dnn.Graph, batch, threads int) {
	w := exec.NewWeights(g)
	plan, err := selector.Select(g, selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		b.Fatal(err)
	}
	l := g.Layers[0]
	inputs := make([]*tensor.Tensor, batch)
	for i := range inputs {
		inputs[i] = tensor.New(tensor.CHW, l.OutC, l.OutH, l.OutW)
		inputs[i].FillRandom(int64(i + 1))
	}
	b.Run("sequential-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				if _, err := exec.Run(plan, in, w); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("engine-runbatch-%dworkers", threads), func(b *testing.B) {
		eng, err := exec.NewEngineBatch(plan, w, batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RunBatch(inputs[:1]); err != nil { // warm the arena
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunBatch(inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineBatch8SmallNet is the quick-iteration executor
// benchmark on a small convolutional chain.
func BenchmarkEngineBatch8SmallNet(b *testing.B) {
	bld, x := dnn.NewBuilder("bench-net", 8, 32, 32)
	x = bld.Conv(x, "c1", 16, 3, 1, 1)
	x = bld.ReLU(x, "r1")
	x = bld.Conv(x, "c2", 16, 3, 1, 1)
	x = bld.MaxPool(x, "p1", 2, 2, 0)
	x = bld.Conv(x, "c3", 24, 5, 1, 2)
	bld.Softmax(x, "sm")
	benchEngineBatch(b, bld.Graph(), 8, 4)
}

// BenchmarkEngineBatch8GoogLeNet is the headline executor benchmark:
// a batch of 8 full-size GoogLeNet inferences, sequential per-image
// Run versus RunBatch with 4 workers. The inception branches and the
// minibatch dimension give the scheduler real concurrency to exploit.
func BenchmarkEngineBatch8GoogLeNet(b *testing.B) {
	g, err := models.Build("googlenet")
	if err != nil {
		b.Fatal(err)
	}
	benchEngineBatch(b, g, 8, 4)
}

// BenchmarkEngineBatch8ResNet18 exercises the residual-add DAG on the
// post-paper ResNet-18 workload.
func BenchmarkEngineBatch8ResNet18(b *testing.B) {
	g, err := models.Build("resnet-18")
	if err != nil {
		b.Fatal(err)
	}
	benchEngineBatch(b, g, 8, 4)
}

// benchCompiledBatch measures the two compiled execution paths against
// each other on the same legalized plan and minibatch — construction
// (plan → Program IR with static memory plan) outside the loop,
// RunBatch inside:
//
//   - per-image-compiled: the batch-1 program looped over the images
//     (convolution outputs primitive-allocated, kernels per image);
//   - batched-compiled: the batch-N program executing the whole
//     minibatch per instruction (batched kernels, N-scaled slot frame).
//
// The batched series carries the compiled program's size metrics. CI
// runs both at -benchtime 1x so the batched-vs-per-image trajectory is
// visible per commit.
func benchCompiledBatch(b *testing.B, g *dnn.Graph, batch, threads int) {
	w := exec.NewWeights(g)
	plan, err := selector.Select(g, selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		b.Fatal(err)
	}
	l := g.Layers[0]
	inputs := make([]*tensor.Tensor, batch)
	for i := range inputs {
		inputs[i] = tensor.New(tensor.CHW, l.OutC, l.OutH, l.OutW)
		inputs[i].FillRandom(int64(i + 1))
	}
	b.Run("per-image-compiled", func(b *testing.B) {
		eng, err := exec.NewEngine(plan, w)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RunBatch(inputs[:1]); err != nil { // warm the arena
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunBatch(inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched-compiled", func(b *testing.B) {
		eng, err := exec.NewEngineBatch(plan, w, batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RunBatch(inputs); err != nil { // warm the arena
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunBatch(inputs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s := eng.Program().Stats
		b.ReportMetric(float64(s.Instructions), "instrs")
		b.ReportMetric(float64(s.Slots), "slots")
		b.ReportMetric(float64(s.InPlace), "in-place")
		b.ReportMetric(float64(s.PeakBytes)/(1<<20), "peak-MB")
	})
}

// BenchmarkCompiledBatch8SmallNet is the quick-iteration compiled
// executor benchmark on a small convolutional chain.
func BenchmarkCompiledBatch8SmallNet(b *testing.B) {
	bld, x := dnn.NewBuilder("bench-net", 8, 32, 32)
	x = bld.Conv(x, "c1", 16, 3, 1, 1)
	x = bld.ReLU(x, "r1")
	x = bld.Conv(x, "c2", 16, 3, 1, 1)
	x = bld.MaxPool(x, "p1", 2, 2, 0)
	x = bld.Conv(x, "c3", 24, 5, 1, 2)
	bld.Softmax(x, "sm")
	benchCompiledBatch(b, bld.Graph(), 8, 4)
}

// BenchmarkCompiledBatch8GoogLeNet is the headline compiled-program
// benchmark: a batch of 8 full-size GoogLeNet inferences on the
// IR-executing engine with 4 workers.
func BenchmarkCompiledBatch8GoogLeNet(b *testing.B) {
	g, err := models.Build("googlenet")
	if err != nil {
		b.Fatal(err)
	}
	benchCompiledBatch(b, g, 8, 4)
}

// BenchmarkCompiledBatch8ResNet18 exercises the residual-add DAG (and
// its in-place add instructions) on the compiled engine.
func BenchmarkCompiledBatch8ResNet18(b *testing.B) {
	g, err := models.Build("resnet-18")
	if err != nil {
		b.Fatal(err)
	}
	benchCompiledBatch(b, g, 8, 4)
}

// BenchmarkCompile times plan→Program lowering itself (instruction
// emission, ancestry closure, liveness and slot assignment) on the
// largest DAG.
func BenchmarkCompile(b *testing.B) {
	g, err := models.Build("googlenet")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := selector.Select(g, selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := program.Compile(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrimitiveKernels times a representative primitive from each
// family on a mid-sized layer — the microbenchmark layer under all
// whole-network numbers.
func BenchmarkPrimitiveKernels(b *testing.B) {
	s := conv.Scenario{C: 16, H: 28, W: 28, Stride: 1, K: 3, M: 16, Pad: 1}
	lib := conv.Library()
	k := conv.NewKernel(s.M, s.C, s.K)
	k.FillRandom(1)
	for _, name := range []string{"sum2d", "direct-mchw", "im2col-blk", "kn2row-ab",
		"wino2d-m4-k3-vf8", "fft1d-pre"} {
		p, err := conv.ByName(lib, name)
		if err != nil {
			b.Fatal(err)
		}
		in := tensor.New(p.In, s.C, s.H, s.W)
		in.FillRandom(2)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Run(in, k, s, 1)
			}
		})
	}
}

// BenchmarkLayoutTransforms times every direct transform routine on a
// GoogleNet-sized tensor.
func BenchmarkLayoutTransforms(b *testing.B) {
	for _, tr := range tensor.DirectTransforms() {
		tr := tr
		src := tensor.New(tr.From, 64, 56, 56)
		src.FillRandom(3)
		b.Run(tr.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Run(src)
			}
		})
	}
}
