//go:build !race

package exec

// raceEnabled reports whether this test binary was built with the race
// detector; see race_test.go for why allocation pins skip under race.
const raceEnabled = false
