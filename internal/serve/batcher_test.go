package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbqpdnn/internal/tensor"
)

// fakeRunner is a controllable RunBatchFunc: it records every dispatched
// batch size, optionally blocks on gate until released, and echoes
// clones of its inputs as outputs.
type fakeRunner struct {
	mu     sync.Mutex
	sizes  []int
	gate   chan struct{} // when non-nil, every call blocks until it closes
	fail   error
	called atomic.Int64
}

func (f *fakeRunner) run(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	f.called.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.sizes = append(f.sizes, len(ins))
	f.mu.Unlock()
	if f.fail != nil {
		return nil, f.fail
	}
	outs := make([]*tensor.Tensor, len(ins))
	for i, in := range ins {
		outs[i] = in.Clone()
	}
	return outs, nil
}

func (f *fakeRunner) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.sizes...)
}

func testInput() *tensor.Tensor {
	in := tensor.New(tensor.CHW, 1, 2, 2)
	in.FillRandom(1)
	return in
}

// inferAsync submits n concurrent Infer calls and returns a channel
// carrying each call's error.
func inferAsync(b *Batcher, ctx context.Context, n int) chan error {
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := b.Infer(ctx, testInput())
			errc <- err
		}()
	}
	return errc
}

func waitAccepted(t *testing.T, m *Metrics, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Snapshot().Accepted < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests admitted in time", m.Snapshot().Accepted, want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFlushBySize: with a generous MaxWait, MaxBatch pending requests
// must flush immediately as full batches — the fast path under load.
func TestFlushBySize(t *testing.T) {
	f := &fakeRunner{}
	met := NewMetrics()
	b := NewBatcher(f.run, BatchOptions{MaxBatch: 4, MaxWait: 10 * time.Second, QueueCap: 16}, met)
	defer b.Close()

	errc := inferAsync(b, context.Background(), 8)
	for i := 0; i < 8; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("requests did not complete: batcher waited for MaxWait despite full batches")
		}
	}
	sizes := f.batchSizes()
	total := 0
	for _, s := range sizes {
		total += s
		if s > 4 {
			t.Errorf("batch of %d exceeds MaxBatch 4", s)
		}
	}
	if total != 8 {
		t.Errorf("dispatched %d requests across %v, want 8", total, sizes)
	}
	// Concurrent submission interleaves with collection, so not every
	// batch is necessarily full — but the first must be (8 requests
	// were outstanding and MaxWait was 10s, so only size can flush).
	if s := met.Snapshot(); s.MeanBatch <= 1 {
		t.Errorf("mean batch %.2f, want > 1", s.MeanBatch)
	}
}

// TestFlushByDeadline: a partial batch must flush once the oldest
// request has waited MaxWait, not hold out for MaxBatch.
func TestFlushByDeadline(t *testing.T) {
	f := &fakeRunner{}
	met := NewMetrics()
	b := NewBatcher(f.run, BatchOptions{MaxBatch: 64, MaxWait: 20 * time.Millisecond, QueueCap: 16}, met)
	defer b.Close()

	start := time.Now()
	errc := inferAsync(b, context.Background(), 3)
	for i := 0; i < 3; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("partial batch never flushed")
		}
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("partial batch flushed after %v, want ≥ MaxWait (20ms) minus scheduling slop", elapsed)
	}
	sizes := f.batchSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 3 {
		t.Errorf("dispatched %d requests across %v, want 3", total, sizes)
	}
}

// TestQueueFullRejection: with the engine wedged, admission must reject
// overflow immediately with ErrQueueFull instead of queueing unbounded
// or blocking the caller.
func TestQueueFullRejection(t *testing.T) {
	f := &fakeRunner{gate: make(chan struct{})}
	met := NewMetrics()
	b := NewBatcher(f.run, BatchOptions{MaxBatch: 1, MaxWait: time.Millisecond, QueueCap: 2, MaxInFlight: 1}, met)
	defer b.Close()

	const n = 50
	errc := inferAsync(b, context.Background(), n)

	// The pipeline holds at most QueueCap + one forming batch + one
	// running batch; everything else must bounce quickly.
	deadline := time.Now().Add(5 * time.Second)
	for met.Snapshot().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no request was rejected with the queue saturated")
		}
		time.Sleep(100 * time.Microsecond)
	}

	close(f.gate) // unwedge the engine; admitted requests must complete
	rejected, served := 0, 0
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrQueueFull):
				rejected++
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("requests did not settle after releasing the engine")
		}
	}
	if served == 0 || rejected == 0 || served+rejected != n {
		t.Errorf("served %d, rejected %d of %d", served, rejected, n)
	}
	s := met.Snapshot()
	if s.Rejected != int64(rejected) || s.Served != int64(served) {
		t.Errorf("metrics served %d rejected %d, want %d/%d", s.Served, s.Rejected, served, rejected)
	}
}

// TestRequestDeadlineExpiry: a request whose context expires while
// queued must (a) unblock its caller with the context error and (b) be
// pruned at flush time without ever reaching the engine.
func TestRequestDeadlineExpiry(t *testing.T) {
	f := &fakeRunner{}
	met := NewMetrics()
	// MaxWait far beyond the request deadline: the only way the caller
	// unblocks early is the context, and the only way the engine stays
	// idle is the flush-time prune.
	b := NewBatcher(f.run, BatchOptions{MaxBatch: 8, MaxWait: 150 * time.Millisecond, QueueCap: 8}, met)
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := b.Infer(ctx, testInput())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("caller unblocked after %v, want ≈ the 10ms request deadline", elapsed)
	}

	// Wait past the batcher's own flush and confirm the prune.
	deadline := time.Now().Add(5 * time.Second)
	for met.Snapshot().Expired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired request was never pruned at flush time")
		}
		time.Sleep(time.Millisecond)
	}
	if got := f.called.Load(); got != 0 {
		t.Errorf("engine ran %d times for a batch that was entirely expired", got)
	}
}

// TestGracefulShutdownDrains: Close must complete every admitted
// request through the engine, then reject new work with ErrClosed.
func TestGracefulShutdownDrains(t *testing.T) {
	f := &fakeRunner{}
	met := NewMetrics()
	b := NewBatcher(f.run, BatchOptions{MaxBatch: 2, MaxWait: 50 * time.Millisecond, QueueCap: 16}, met)

	const n = 5
	errc := inferAsync(b, context.Background(), n)
	waitAccepted(t, met, n)
	b.Close()

	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("admitted request failed during drain: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close returned before draining admitted requests")
		}
	}
	if s := met.Snapshot(); s.Served != n {
		t.Errorf("served %d, want %d", s.Served, n)
	}
	if _, err := b.Infer(context.Background(), testInput()); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close Infer returned %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

// TestEngineErrorPropagates: a failing engine answers every request in
// the batch with the error, and the batcher keeps serving afterwards.
func TestEngineErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	f := &fakeRunner{fail: boom}
	met := NewMetrics()
	b := NewBatcher(f.run, BatchOptions{MaxBatch: 2, MaxWait: time.Millisecond, QueueCap: 8}, met)
	defer b.Close()

	if _, err := b.Infer(context.Background(), testInput()); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the engine error", err)
	}
	f.fail = nil
	if _, err := b.Infer(context.Background(), testInput()); err != nil {
		t.Fatalf("batcher did not recover after an engine error: %v", err)
	}
	if s := met.Snapshot(); s.Failed != 1 || s.Served != 1 {
		t.Errorf("failed %d served %d, want 1/1", s.Failed, s.Served)
	}
}

// TestMetricsPercentiles pins the nearest-rank percentile math.
func TestMetricsPercentiles(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(lats, 50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := percentile(lats, 99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := percentile(lats[:1], 99); got != time.Millisecond {
		t.Errorf("p99 of one sample = %v, want 1ms", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of nothing = %v, want 0", got)
	}
}

// TestMetricsNsPerImageByBatch pins the per-batch-size efficiency
// export: engine time divides by images served at that size, failed
// dispatches contribute nothing, and unseen sizes stay zero.
func TestMetricsNsPerImageByBatch(t *testing.T) {
	met := NewMetrics()
	lat := []time.Duration{time.Millisecond}
	met.observeBatch(1, 10*time.Millisecond, lat, nil)
	met.observeBatch(4, 20*time.Millisecond, lat, nil)
	met.observeBatch(4, 28*time.Millisecond, lat, nil)
	met.observeBatch(2, 99*time.Millisecond, nil, errors.New("boom")) // failed: excluded
	s := met.Snapshot()
	if got := s.NsPerImageByBatch[1]; got != 10e6 {
		t.Errorf("batch-1 ns/image = %v, want 10ms", got)
	}
	if got := s.NsPerImageByBatch[4]; got != 6e6 {
		t.Errorf("batch-4 ns/image = %v, want 6ms (48ms over 8 images)", got)
	}
	if got := s.NsPerImageByBatch[2]; got != 0 {
		t.Errorf("failed-only batch size reports %v, want 0", got)
	}
	if got := s.NsPerImageByBatch[3]; got != 0 {
		t.Errorf("undispatched batch size reports %v, want 0", got)
	}
}
