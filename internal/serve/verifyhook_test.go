package serve

import (
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/verify"
)

// init arms the compiler's DebugVerify hook for the serving tests, so
// every per-bucket program the registry compiles is re-checked by the
// independent translation validator.
func init() {
	program.DebugVerify = verify.Program
}
