package experiments

import (
	"fmt"
	"strings"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/pbqp"
	"pbqpdnn/internal/selector"
)

// intelNets are the networks of Figures 5 and 6 (the paper could not
// run VGG-B/C/E on the ARM board, §5.7, so Figure 7 has only two).
var intelNets = []string{"alexnet", "vgg-b", "vgg-c", "vgg-e", "googlenet"}
var armNets = []string{"alexnet", "googlenet"}

// Figure5 regenerates the single-threaded Intel comparison.
func Figure5() ([]*NetworkResult, error) { return grid(intelNets, cost.IntelHaswell, 1) }

// Figure6 regenerates the multithreaded Intel comparison.
func Figure6() ([]*NetworkResult, error) { return grid(intelNets, cost.IntelHaswell, 4) }

// Figure7a regenerates the single-threaded ARM comparison.
func Figure7a() ([]*NetworkResult, error) { return grid(armNets, cost.CortexA57, 1) }

// Figure7b regenerates the multithreaded ARM comparison.
func Figure7b() ([]*NetworkResult, error) { return grid(armNets, cost.CortexA57, 4) }

func grid(nets []string, m cost.Machine, threads int) ([]*NetworkResult, error) {
	var out []*NetworkResult
	for _, n := range nets {
		nr, err := WholeNetwork(n, m, threads)
		if err != nil {
			return nil, err
		}
		out = append(out, nr)
	}
	return out, nil
}

// FormatFigure renders a figure's bar groups.
func FormatFigure(title string, nrs []*NetworkResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for _, nr := range nrs {
		b.WriteString(FormatNetworkResult(nr))
	}
	return b.String()
}

// Figure4Selection is one layer row of the Figure 4 selection map.
type Figure4Selection struct {
	Layer     string
	Primitive string
	Family    string
	Wino2D    bool
	VF        int
	InLayout  string
	OutLayout string
}

// Figure4 regenerates the paper's AlexNet selection maps for
// multithreaded execution on both platforms.
func Figure4() (intel, arm []Figure4Selection, err error) {
	for _, m := range []cost.Machine{cost.IntelHaswell, cost.CortexA57} {
		g, err := models.Build("alexnet")
		if err != nil {
			return nil, nil, err
		}
		plan, err := selector.Select(g, selector.Options{Prof: cost.NewModel(m), Threads: 4})
		if err != nil {
			return nil, nil, err
		}
		var rows []Figure4Selection
		for _, id := range g.ConvLayers() {
			p := plan.Primitives[id]
			rows = append(rows, Figure4Selection{
				Layer:     g.Layers[id].Name,
				Primitive: p.Name,
				Family:    p.Family.String(),
				Wino2D:    p.Wino2D,
				VF:        p.VF,
				InLayout:  p.In.String(),
				OutLayout: p.Out.String(),
			})
		}
		if m.Name == cost.IntelHaswell.Name {
			intel = rows
		} else {
			arm = rows
		}
	}
	return intel, arm, nil
}

// FormatFigure4 renders the two selection maps side by side.
func FormatFigure4(intel, arm []Figure4Selection) string {
	var b strings.Builder
	b.WriteString("== Figure 4: PBQP selections for multithreaded AlexNet ==\n")
	fmt.Fprintf(&b, "%-8s | %-28s | %-28s\n", "layer", "Intel Core i5-4570", "ARM Cortex-A57")
	for i := range intel {
		fmt.Fprintf(&b, "%-8s | %-28s | %-28s\n", intel[i].Layer, intel[i].Primitive, arm[i].Primitive)
	}
	return b.String()
}

// Figure2Result carries the worked PBQP example of the paper's §3.3.
type Figure2Result struct {
	NodeOnlySelection []string
	NodeOnlyCost      float64
	FullSelection     []string
	FullCost          float64
}

// Figure2 solves the paper's worked example: node costs (8,6,10),
// (17,19,14), (20,17,22) and the two printed edge matrices. Note the
// preprint's figure annotates the drawing with total 45; exhaustive
// enumeration of the printed tables gives 42 (see EXPERIMENTS.md).
func Figure2() Figure2Result {
	letters := []string{"A", "B", "C"}
	nodeOnly := pbqp.NewGraph()
	nodeOnly.AddNode([]float64{8, 6, 10})
	nodeOnly.AddNode([]float64{17, 19, 14})
	nodeOnly.AddNode([]float64{20, 17, 22})
	solA := nodeOnly.Solve(pbqp.Heuristic)

	full := pbqp.NewGraph()
	full.AddNode([]float64{8, 6, 10})
	full.AddNode([]float64{17, 19, 14})
	full.AddNode([]float64{20, 17, 22})
	m12 := pbqp.NewMatrix(3, 3)
	copy(m12.V, []float64{0, 2, 4, 4, 0, 5, 2, 1, 0})
	m23 := pbqp.NewMatrix(3, 3)
	copy(m23.V, []float64{0, 3, 5, 6, 0, 5, 1, 5, 0})
	full.AddEdge(0, 1, m12)
	full.AddEdge(1, 2, m23)
	solB := full.Solve(pbqp.Exact)

	name := func(sel []int) []string {
		out := make([]string, len(sel))
		for i, s := range sel {
			out[i] = letters[s]
		}
		return out
	}
	return Figure2Result{
		NodeOnlySelection: name(solA.Selection),
		NodeOnlyCost:      solA.Cost,
		FullSelection:     name(solB.Selection),
		FullCost:          solB.Cost,
	}
}

// SolverOverheads reports PBQP solve time and optimality for every
// network (§5.4: "less than one second … in each case the solver
// reported that the optimal solution was found").
func SolverOverheads(machine cost.Machine, threads int) (map[string]StrategyResult, error) {
	out := map[string]StrategyResult{}
	for _, n := range models.Names() {
		g, err := models.Build(n)
		if err != nil {
			return nil, err
		}
		plan, err := selector.Select(g, selector.Options{Prof: cost.NewModel(machine), Threads: threads})
		if err != nil {
			return nil, err
		}
		out[n] = StrategyResult{
			Strategy: "pbqp",
			TimeMS:   plan.TotalCost() * 1e3,
			Optimal:  plan.Optimal,
			SolveMS:  plan.SolveTime.Seconds() * 1e3,
		}
	}
	return out, nil
}
