package cost

import (
	"time"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/tensor"
)

// Measure is the wall-clock profiler: it executes the real Go
// implementation of each primitive on random tensors of the layer's
// shape and takes the best of Reps runs — the literal analogue of the
// paper's layerwise profiling step, which exploits the observation that
// DNN layer runtime depends on input dimensions, not values (§2.2).
type Measure struct {
	// Reps is the number of timed repetitions (best-of). Values < 1
	// mean 1.
	Reps int
	// Threads caps the goroutine count handed to primitives.
	Threads int
}

// NewMeasure returns a measurement profiler taking best-of-reps timings.
func NewMeasure(reps int) *Measure { return &Measure{Reps: reps} }

func (me *Measure) reps() int {
	if me.Reps < 1 {
		return 1
	}
	return me.Reps
}

// Primitive times a real execution of p on scenario s.
func (me *Measure) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	in := tensor.New(p.In, s.C, s.H, s.W)
	in.FillRandom(1)
	k := conv.NewKernel(s.M, s.C, s.K)
	if s.Sparsity > 0 {
		k.FillSparse(2, s.Sparsity)
	} else {
		k.FillRandom(2)
	}
	best := 0.0
	for r := 0; r < me.reps(); r++ {
		start := time.Now()
		p.Run(in, k, s, threads)
		el := time.Since(start).Seconds()
		if r == 0 || el < best {
			best = el
		}
	}
	return best
}

// Transform times a real layout transform on a c×h×w tensor.
func (me *Measure) Transform(tr tensor.Transform, c, h, w int) float64 {
	src := tensor.New(tr.From, c, h, w)
	src.FillRandom(3)
	best := 0.0
	for r := 0; r < me.reps(); r++ {
		start := time.Now()
		tr.Run(src)
		el := time.Since(start).Seconds()
		if r == 0 || el < best {
			best = el
		}
	}
	return best
}
