package experiments

import (
	"fmt"
	"strings"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
)

// This file implements the fusesweep experiment: the end-to-end proof
// that instruction fusion pays. For each batch size N it solves the
// batch-N PBQP instance once (fusion credit included — the selection
// is the fused backend's), then compiles the same plan twice — through
// the fusion pass (CompileBatch) and with fusion disabled
// (CompileBatchNoFuse) — and measures the real batched engine on both
// programs. The same plan executes on both sides, so the ratio
// isolates what the fused epilogues and pack-absorbed conversions are
// worth on this machine, separate from any selection difference.

// FuseSweepPoint is one row of the sweep: the static program shape
// under fusion and the measured per-image cost of each program.
type FuseSweepPoint struct {
	Net     string
	Batch   int
	Threads int

	// Static program shape, fused vs the no-fuse compile of the same
	// plan: instruction counts, what was folded, and the peak resident
	// bytes of each memory plan (batch totals).
	Instructions        int
	UnfusedInstructions int
	FusedEpilogues      int
	FusedConversions    int
	PeakBytes           int64
	UnfusedPeakBytes    int64

	// Min-of-batchSweepReps wall times per image. SpeedupX > 1 means
	// the fused program wins.
	FusedNsPerImage   float64
	UnfusedNsPerImage float64
	SpeedupX          float64
}

// FuseSweep runs the fused-vs-unfused comparison on one of the model
// zoo networks.
func FuseSweep(netName string, threads int, batches []int) ([]FuseSweepPoint, error) {
	g, err := models.Build(netName)
	if err != nil {
		return nil, err
	}
	opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: threads}
	w := exec.NewWeights(g)

	var pts []FuseSweepPoint
	for _, batch := range batches {
		plan, err := selector.SelectBatch(g, batch, opts)
		if err != nil {
			return nil, err
		}
		fused, err := program.CompileBatch(plan, batch)
		if err != nil {
			return nil, err
		}
		unfused, err := program.CompileBatchNoFuse(plan, batch)
		if err != nil {
			return nil, err
		}
		pt := FuseSweepPoint{
			Net:                 netName,
			Batch:               batch,
			Threads:             threads,
			Instructions:        fused.Stats.Instructions,
			UnfusedInstructions: unfused.Stats.Instructions,
			FusedEpilogues:      fused.Stats.FusedEpilogues,
			FusedConversions:    fused.Stats.FusedConversions,
			PeakBytes:           fused.Stats.PeakBytes,
			UnfusedPeakBytes:    unfused.Stats.PeakBytes,
		}

		inputs := makeBatch(g, batch)
		engF, err := exec.NewEngineFromProgram(fused, w)
		if err != nil {
			return nil, err
		}
		engU, err := exec.NewEngineFromProgram(unfused, w)
		if err != nil {
			return nil, err
		}
		// Warm both engines, then interleave the timed reps pairwise,
		// alternating which program runs first in each pair: machine
		// speed drifts over a measurement window (and consistently
		// favors whichever run came later), while the fusion effect is
		// a few percent — alternation gives both programs early- and
		// late-position samples and the min absorbs the drift.
		for _, eng := range []*exec.Engine{engF, engU} {
			if _, err := eng.RunBatch(inputs); err != nil {
				return nil, err
			}
		}
		bestF, bestU := 0.0, 0.0
		for rep := 0; rep < 2*batchSweepReps; rep++ {
			pair := []struct {
				eng  *exec.Engine
				best *float64
			}{{engF, &bestF}, {engU, &bestU}}
			if rep%2 == 1 {
				pair[0], pair[1] = pair[1], pair[0]
			}
			for _, m := range pair {
				ns, err := minWallNs(1, func() error {
					_, err := m.eng.RunBatch(inputs)
					return err
				})
				if err != nil {
					return nil, err
				}
				if *m.best == 0 || ns < *m.best {
					*m.best = ns
				}
			}
		}
		pt.FusedNsPerImage = bestF / float64(batch)
		pt.UnfusedNsPerImage = bestU / float64(batch)
		pt.SpeedupX = pt.UnfusedNsPerImage / pt.FusedNsPerImage
		pts = append(pts, pt)
	}
	return pts, nil
}

// FormatFuseSweep renders the comparison with the folded-work counts.
func FormatFuseSweep(pts []FuseSweepPoint) string {
	var b strings.Builder
	if len(pts) > 0 {
		fmt.Fprintf(&b, "== fused vs no-fuse compile of the same batch-N plan (%s, %d threads) ==\n",
			pts[0].Net, pts[0].Threads)
	}
	fmt.Fprintf(&b, "%-7s %-13s %-11s %-18s %-17s %-17s %s\n",
		"batch", "instrs", "folded", "peak KB", "fused ms/img", "unfused ms/img", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-7d %4d vs %-4d  %2d+%-2d      %6d vs %-6d   %-17.1f %-17.1f %.2fx\n",
			p.Batch, p.Instructions, p.UnfusedInstructions,
			p.FusedEpilogues, p.FusedConversions,
			p.PeakBytes/1024, p.UnfusedPeakBytes/1024,
			p.FusedNsPerImage/1e6, p.UnfusedNsPerImage/1e6, p.SpeedupX)
	}
	return b.String()
}
