package tensor

import "fmt"

// Transform is a direct data-layout transformation routine: it rewrites a
// tensor from one physical layout into another. The set of direct
// transforms is deliberately *incomplete* — exactly as in the paper,
// where a library ships conversion routines only between selected layout
// pairs, and converting between other pairs requires a chain of direct
// transforms found by shortest-path search over the DT graph.
type Transform struct {
	From, To Layout
	Name     string
	Run      func(src *Tensor) *Tensor
}

// Convert is the generic (reference) layout conversion: an element-wise
// logical copy that works between any pair of layouts. The direct
// transform routines below are specialized versions of this; Convert is
// used as the test oracle and as the materializer of last resort.
func Convert(src *Tensor, to Layout) *Tensor {
	dst := New(to, src.C, src.H, src.W)
	ConvertInto(dst, src)
	return dst
}

// ConvertInto copies src's logical elements into dst, which must have
// the same logical shape (any layout). Callers providing recycled
// destination buffers in a blocked layout are responsible for their
// padding lanes, which this copy does not touch.
func ConvertInto(dst, src *Tensor) {
	if dst.C != src.C || dst.H != src.H || dst.W != src.W {
		panic(fmt.Sprintf("tensor: shape mismatch %s vs %s", dst, src))
	}
	for c := 0; c < src.C; c++ {
		for h := 0; h < src.H; h++ {
			for w := 0; w < src.W; w++ {
				dst.Set(c, h, w, src.At(c, h, w))
			}
		}
	}
}

func mustBe(src *Tensor, l Layout) {
	if src.Layout != l {
		panic(fmt.Sprintf("tensor: transform expects %s input, got %s", l, src.Layout))
	}
}

// chwToHWC converts CHW → HWC walking the destination in storage order so
// writes are sequential.
func chwToHWC(src *Tensor) *Tensor {
	mustBe(src, CHW)
	dst := New(HWC, src.C, src.H, src.W)
	d := dst.Data
	i := 0
	for h := 0; h < src.H; h++ {
		rowBase := h * src.W
		for w := 0; w < src.W; w++ {
			off := rowBase + w
			plane := src.H * src.W
			for c := 0; c < src.C; c++ {
				d[i] = src.Data[c*plane+off]
				i++
			}
		}
	}
	return dst
}

func hwcToCHW(src *Tensor) *Tensor {
	mustBe(src, HWC)
	dst := New(CHW, src.C, src.H, src.W)
	d := dst.Data
	plane := src.H * src.W
	i := 0
	for h := 0; h < src.H; h++ {
		for w := 0; w < src.W; w++ {
			off := h*src.W + w
			for c := 0; c < src.C; c++ {
				d[c*plane+off] = src.Data[i]
				i++
			}
		}
	}
	return dst
}

func chwToHCW(src *Tensor) *Tensor {
	mustBe(src, CHW)
	dst := New(HCW, src.C, src.H, src.W)
	for c := 0; c < src.C; c++ {
		for h := 0; h < src.H; h++ {
			srcRow := (c*src.H + h) * src.W
			dstRow := (h*src.C + c) * src.W
			copy(dst.Data[dstRow:dstRow+src.W], src.Data[srcRow:srcRow+src.W])
		}
	}
	return dst
}

func hcwToCHW(src *Tensor) *Tensor {
	mustBe(src, HCW)
	dst := New(CHW, src.C, src.H, src.W)
	for h := 0; h < src.H; h++ {
		for c := 0; c < src.C; c++ {
			srcRow := (h*src.C + c) * src.W
			dstRow := (c*src.H + h) * src.W
			copy(dst.Data[dstRow:dstRow+src.W], src.Data[srcRow:srcRow+src.W])
		}
	}
	return dst
}

func chwToCWH(src *Tensor) *Tensor {
	mustBe(src, CHW)
	dst := New(CWH, src.C, src.H, src.W)
	for c := 0; c < src.C; c++ {
		cs := c * src.H * src.W
		cd := c * src.W * src.H
		for h := 0; h < src.H; h++ {
			for w := 0; w < src.W; w++ {
				dst.Data[cd+w*src.H+h] = src.Data[cs+h*src.W+w]
			}
		}
	}
	return dst
}

func cwhToCHW(src *Tensor) *Tensor {
	mustBe(src, CWH)
	dst := New(CHW, src.C, src.H, src.W)
	for c := 0; c < src.C; c++ {
		cs := c * src.W * src.H
		cd := c * src.H * src.W
		for w := 0; w < src.W; w++ {
			for h := 0; h < src.H; h++ {
				dst.Data[cd+h*src.W+w] = src.Data[cs+w*src.H+h]
			}
		}
	}
	return dst
}

func hwcToWHC(src *Tensor) *Tensor {
	mustBe(src, HWC)
	dst := New(WHC, src.C, src.H, src.W)
	for h := 0; h < src.H; h++ {
		for w := 0; w < src.W; w++ {
			s := (h*src.W + w) * src.C
			d := (w*src.H + h) * src.C
			copy(dst.Data[d:d+src.C], src.Data[s:s+src.C])
		}
	}
	return dst
}

func whcToHWC(src *Tensor) *Tensor {
	mustBe(src, WHC)
	dst := New(HWC, src.C, src.H, src.W)
	for w := 0; w < src.W; w++ {
		for h := 0; h < src.H; h++ {
			s := (w*src.H + h) * src.C
			d := (h*src.W + w) * src.C
			copy(dst.Data[d:d+src.C], src.Data[s:s+src.C])
		}
	}
	return dst
}

func cwhToWCH(src *Tensor) *Tensor {
	mustBe(src, CWH)
	dst := New(WCH, src.C, src.H, src.W)
	for c := 0; c < src.C; c++ {
		for w := 0; w < src.W; w++ {
			s := (c*src.W + w) * src.H
			d := (w*src.C + c) * src.H
			copy(dst.Data[d:d+src.H], src.Data[s:s+src.H])
		}
	}
	return dst
}

func wchToCWH(src *Tensor) *Tensor {
	mustBe(src, WCH)
	dst := New(CWH, src.C, src.H, src.W)
	for w := 0; w < src.W; w++ {
		for c := 0; c < src.C; c++ {
			s := (w*src.C + c) * src.H
			d := (c*src.W + w) * src.H
			copy(dst.Data[d:d+src.H], src.Data[s:s+src.H])
		}
	}
	return dst
}

func chwToCHW4(src *Tensor) *Tensor {
	mustBe(src, CHW)
	return Convert(src, CHW4)
}

func chw4ToCHW(src *Tensor) *Tensor {
	mustBe(src, CHW4)
	return Convert(src, CHW)
}

func chw4ToCHW8(src *Tensor) *Tensor {
	mustBe(src, CHW4)
	return Convert(src, CHW8)
}

func chw8ToCHW4(src *Tensor) *Tensor {
	mustBe(src, CHW8)
	return Convert(src, CHW4)
}

// hwcToCHW8 packs channels-last data directly into the vendor 8-blocked
// layout, the packing step a JIT-style vendor library performs on entry.
func hwcToCHW8(src *Tensor) *Tensor {
	mustBe(src, HWC)
	dst := New(CHW8, src.C, src.H, src.W)
	for h := 0; h < src.H; h++ {
		for w := 0; w < src.W; w++ {
			s := (h*src.W + w) * src.C
			for c := 0; c < src.C; c++ {
				dst.Data[((c/8*src.H+h)*src.W+w)*8+c%8] = src.Data[s+c]
			}
		}
	}
	return dst
}

// DirectTransforms returns the library's direct layout-conversion
// routines. The pair coverage is intentionally sparse: WCH is reachable
// only through CWH, WHC only through HWC, and CHW8 cannot be unpacked
// except via CHW4, so the DT graph genuinely requires multi-hop chains.
func DirectTransforms() []Transform {
	return []Transform{
		{CHW, HWC, "chw2hwc", chwToHWC},
		{HWC, CHW, "hwc2chw", hwcToCHW},
		{CHW, HCW, "chw2hcw", chwToHCW},
		{HCW, CHW, "hcw2chw", hcwToCHW},
		{CHW, CWH, "chw2cwh", chwToCWH},
		{CWH, CHW, "cwh2chw", cwhToCHW},
		{HWC, WHC, "hwc2whc", hwcToWHC},
		{WHC, HWC, "whc2hwc", whcToHWC},
		{CWH, WCH, "cwh2wch", cwhToWCH},
		{WCH, CWH, "wch2cwh", wchToCWH},
		{CHW, CHW4, "chw2chw4", chwToCHW4},
		{CHW4, CHW, "chw42chw", chw4ToCHW},
		{CHW4, CHW8, "chw42chw8", chw4ToCHW8},
		{CHW8, CHW4, "chw82chw4", chw8ToCHW4},
		{HWC, CHW8, "hwc2chw8", hwcToCHW8},
	}
}
