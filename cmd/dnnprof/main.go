// Command dnnprof materializes the paper's §3.1 profiling stage as a
// reproducible artifact: for each convolution layer of a network, the
// top primitive candidates with their modeled (or measured) execution
// times — per minibatch size — and, with -calibrate, a serialized cost
// table measured on this machine that the selector, the benchmark
// harness and the serving registry can all reuse.
//
// Usage:
//
//	dnnprof -net alexnet -platform intel -threads 4 -top 5
//	dnnprof -net googlenet -platform arm -measure
//	dnnprof -net googlenet -batch 1,8                      # per-batch candidate tables
//	dnnprof -net googlenet -calibrate -batch 1,2,4,8 -calibrate-top 4 -save prof.json
//	dnnprof -net googlenet -load prof.json -select -batch 1,8
//
// -calibrate wall-clocks the real primitives (batched entry points
// included) at every -batch size, pruning each layer's candidates to
// the analytic model's -calibrate-top cheapest per batch; -save writes
// the table as JSON and -load reuses one instead of profiling. -select
// runs one PBQP solve per -batch size against the active profiler,
// compiles each bucket's plan, and prints the per-layer selections with
// the primitive switches relative to the batch-1 plan.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnnprof: ")
	netName := flag.String("net", "alexnet", "network: "+strings.Join(append(models.Names(), models.DemoNames()...), ", "))
	platform := flag.String("platform", "intel", "platform: intel or arm (model profiler)")
	threads := flag.Int("threads", 1, "thread count")
	top := flag.Int("top", 5, "candidates to print per layer")
	batchList := flag.String("batch", "1", "comma-separated minibatch sizes to profile/select at")
	measure := flag.Bool("measure", false, "wall-clock measure the real Go primitives instead of the machine model (slow)")
	calibrate := flag.Bool("calibrate", false, "build a measured cost table over the network at every -batch size")
	calTopK := flag.Int("calibrate-top", 0, "calibration: measure only the analytic model's k cheapest candidates per layer per batch (0 = all)")
	reps := flag.Int("reps", 3, "measurement repetitions (best-of) for -measure/-calibrate")
	savePath := flag.String("save", "", "write the calibrated table as JSON (requires -calibrate)")
	loadPath := flag.String("load", "", "load a serialized cost table and profile/select from it instead of profiling")
	doSelect := flag.Bool("select", false, "run one PBQP solve per -batch size, compile each bucket's plan, and print the selections")
	flag.Parse()

	batches, err := parseBatches(*batchList)
	if err != nil {
		log.Fatal(err)
	}
	if *loadPath != "" && *calibrate {
		log.Fatal("-load and -calibrate are mutually exclusive (the loaded table replaces profiling)")
	}
	if *savePath != "" && !*calibrate {
		log.Fatal("-save requires -calibrate (there is no table to save)")
	}
	model, err := platformModel(*platform)
	if err != nil {
		log.Fatal(err)
	}
	g, err := models.Build(*netName)
	if err != nil {
		log.Fatal(err)
	}

	var prof cost.Profiler
	switch {
	case *loadPath != "":
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		table, err := cost.LoadTable(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading cost table %s: %v", *loadPath, err)
		}
		prof = table
	case *calibrate:
		tab := cost.NewTable("calibrated-"+*platform, *threads)
		meas := &cost.Measure{Reps: *reps, Threads: *threads}
		tab.AddNetTopK(g, conv.Library(), model, meas, batches, *calTopK)
		fmt.Printf("calibrated %s at batches %v: %d measured entries\n", *netName, batches, tab.NumEntries())
		if *savePath != "" {
			f, err := os.Create(*savePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := tab.Save(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("saved table to %s\n", *savePath)
		}
		prof = tab
	case *measure:
		prof = &cost.Measure{Reps: *reps, Threads: *threads}
	default:
		prof = model
	}
	if *doSelect {
		if err := selectBatches(g, prof, *threads, batches); err != nil {
			log.Fatal(err)
		}
		return
	}
	printCandidates(g, prof, *threads, *top, batches)
}

// platformModel maps -platform to its analytic machine model,
// rejecting unknown values instead of silently defaulting to Intel.
func platformModel(platform string) (*cost.Model, error) {
	switch platform {
	case "intel":
		return cost.NewModel(cost.IntelHaswell), nil
	case "arm":
		return cost.NewModel(cost.CortexA57), nil
	}
	return nil, fmt.Errorf("unknown platform %q (have intel, arm)", platform)
}

// printCandidates renders each conv layer's top candidates, one table
// per batch size.
func printCandidates(g *dnn.Graph, prof cost.Profiler, threads, top int, batches []int) {
	lib := conv.Library()
	for _, b := range batches {
		if len(batches) > 1 || b > 1 {
			fmt.Printf("== batch %d (ms for the whole batch) ==\n", b)
		}
		for _, id := range g.ConvLayers() {
			l := g.Layers[id]
			type cand struct {
				name string
				ms   float64
			}
			var cands []cand
			for _, p := range lib {
				if !p.Supports(l.Conv) {
					continue
				}
				c := cost.PrimitiveN(prof, p, l.Conv, threads, b)
				if math.IsInf(c, 1) { // pruned out of a top-K table
					continue
				}
				cands = append(cands, cand{p.Name, c * 1e3})
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].ms < cands[j].ms })
			fmt.Printf("%-26s %s  (%d candidates)\n", l.Name, l.Conv, len(cands))
			for i, c := range cands {
				if i >= top {
					break
				}
				fmt.Printf("    %-28s %10.3f ms\n", c.name, c.ms)
			}
		}
	}
}

// selectBatches runs one PBQP solve per batch size against the active
// profiler, compiles each bucket's plan (validating it end to end), and
// prints the per-layer selections with switches relative to batch 1.
func selectBatches(g *dnn.Graph, prof cost.Profiler, threads int, batches []int) error {
	var base *selector.Plan
	for _, b := range batches {
		plan, err := selector.SelectBatch(g, b, selector.Options{Prof: prof, Threads: threads})
		if err != nil {
			return fmt.Errorf("selecting batch %d: %w", b, err)
		}
		if _, err := program.CompileBatch(plan, b); err != nil {
			return fmt.Errorf("compiling batch %d: %w", b, err)
		}
		if base == nil {
			base = plan
		}
		switches := 0
		for _, id := range g.ConvLayers() {
			if plan.Primitives[id].Name != base.Primitives[id].Name {
				switches++
			}
		}
		fmt.Printf("== batch %d: predicted %.3f ms/image (%.3f ms/batch), optimal=%v, %d primitive switch(es) vs batch %d ==\n",
			b, plan.CostPerImage()*1e3, plan.TotalCost()*1e3, plan.Optimal, switches, base.Batch)
		for _, id := range g.ConvLayers() {
			l := g.Layers[id]
			mark := " "
			note := ""
			if plan.Primitives[id].Name != base.Primitives[id].Name {
				mark = "*"
				note = fmt.Sprintf("  (batch-%d: %s)", base.Batch, base.Primitives[id].Name)
			}
			fmt.Printf("  %s %-26s %-28s%s\n", mark, l.Name, plan.Primitives[id].Name, note)
		}
	}
	return nil
}

// parseBatches parses the -batch flag's comma-separated size list.
func parseBatches(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-batch: %q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-batch: empty size list")
	}
	return out, nil
}
