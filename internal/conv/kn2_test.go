package conv

import (
	"testing"

	"pbqpdnn/internal/tensor"
)

func TestKernelSlice(t *testing.T) {
	k := NewKernel(2, 3, 3)
	k.FillRandom(1)
	a := kernelSlice(k, 1, 2)
	for m := 0; m < 2; m++ {
		for c := 0; c < 3; c++ {
			if a[m*3+c] != k.At(m, c, 1, 2) {
				t.Fatalf("slice wrong at m=%d c=%d", m, c)
			}
		}
	}
}

// TestShiftAccumulateCenter: the center tap accumulates the partial
// plane unshifted.
func TestShiftAccumulateCenter(t *testing.T) {
	s := Scenario{C: 1, H: 4, W: 4, Stride: 1, K: 3, M: 1, Pad: 1}
	out := tensor.New(tensor.CHW, 1, 4, 4)
	partial := make([]float32, 16)
	for i := range partial {
		partial[i] = float32(i)
	}
	shiftAccumulate(out, partial, s, 0, 0)
	for i := range out.Data {
		if out.Data[i] != partial[i] {
			t.Fatalf("center shift should be identity at %d", i)
		}
	}
}

// TestShiftAccumulateEdges: a (+1,+1) shift drops the last row/column
// of the partial and leaves the last output row/column untouched... the
// shift reads partial at (y+1, x+1), so output (3,·) reads partial row 4
// — out of range — and stays zero.
func TestShiftAccumulateEdges(t *testing.T) {
	s := Scenario{C: 1, H: 3, W: 3, Stride: 1, K: 3, M: 1, Pad: 1}
	out := tensor.New(tensor.CHW, 1, 3, 3)
	partial := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	shiftAccumulate(out, partial, s, 1, 1)
	want := []float32{5, 6, 0, 8, 9, 0, 0, 0, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("shift(+1,+1): out[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
	// Negative shift reads above the plane.
	out2 := tensor.New(tensor.CHW, 1, 3, 3)
	shiftAccumulate(out2, partial, s, -1, 0)
	want2 := []float32{0, 0, 0, 1, 2, 3, 4, 5, 6}
	for i := range want2 {
		if out2.Data[i] != want2[i] {
			t.Fatalf("shift(-1,0): out[%d] = %v, want %v", i, out2.Data[i], want2[i])
		}
	}
}

// TestKn2PointwiseIsSingleGEMM: for K=1 the kn2 algorithm degenerates
// to one GEMM with no shifting — an important identity.
func TestKn2PointwiseIsSingleGEMM(t *testing.T) {
	s := Scenario{C: 6, H: 5, W: 5, Stride: 1, K: 1, M: 4, Pad: 0}
	in := tensor.New(tensor.CHW, 6, 5, 5)
	in.FillRandom(2)
	k := NewKernel(4, 6, 1)
	k.FillRandom(3)
	want := Reference(in, k, s)
	for _, p := range kn2Primitives() {
		if !p.Supports(s) {
			continue
		}
		out := p.Run(tensor.Convert(in, p.In), k, s, 1)
		if d := tensor.MaxAbsDiff(out, want); d > tolFor(s) {
			t.Errorf("%s: pointwise diff %g", p.Name, d)
		}
	}
}

// TestKn2AsymmetricPadding exercises K=5 with pad 2 where shifts span
// [-2, +2] in both axes.
func TestKn2AsymmetricImage(t *testing.T) {
	s := Scenario{C: 3, H: 11, W: 6, Stride: 1, K: 5, M: 2, Pad: 2}
	in := tensor.New(tensor.CHW, 3, 11, 6)
	in.FillRandom(4)
	k := NewKernel(2, 3, 5)
	k.FillRandom(5)
	want := Reference(in, k, s)
	for _, p := range kn2Primitives() {
		if !p.Supports(s) {
			continue
		}
		out := p.Run(tensor.Convert(in, p.In), k, s, 3)
		if d := tensor.MaxAbsDiff(out, want); d > tolFor(s) {
			t.Errorf("%s: asymmetric diff %g", p.Name, d)
		}
	}
}

// TestKn2WorkspaceIsOnePlaneSet pins the family's low-memory claim: the
// workspace is M·H·W regardless of K.
func TestKn2WorkspaceIsOnePlaneSet(t *testing.T) {
	k3 := Scenario{C: 32, H: 28, W: 28, Stride: 1, K: 3, M: 16, Pad: 1}
	k7 := k3
	k7.K = 7
	k7.Pad = 3
	if kn2Workspace(k3) != kn2Workspace(k7) {
		t.Error("kn2 workspace must not depend on K")
	}
	if kn2Workspace(k3) != int64(16*28*28*4) {
		t.Errorf("kn2 workspace = %d, want M·H·W·4", kn2Workspace(k3))
	}
}
