package cost

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/tensor"
)

func tableNet() *dnn.Graph {
	b, x := dnn.NewBuilder("table-net", 3, 16, 16)
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.MaxPool(x, "p1", 2, 2, 0)
	x = b.Conv(x, "c2", 8, 3, 1, 1)
	x = b.Softmax(x, "sm")
	return func() *dnn.Graph { return b.Graph() }()
}

func TestBuildTableCoversNetwork(t *testing.T) {
	net := tableNet()
	lib := conv.Library()
	mo := NewModel(IntelHaswell)
	tab := BuildTable(net, lib, mo, IntelHaswell.Name, 2)

	if tab.NumEntries() == 0 {
		t.Fatal("empty table")
	}
	// Every conv scenario and every supporting primitive must match the
	// live profiler exactly.
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		for _, p := range lib {
			if !p.Supports(s) {
				continue
			}
			got := tab.Primitive(p, s, 2)
			want := mo.Primitive(p, s, 2)
			if got != want {
				t.Errorf("%s on %s: table %g != live %g", p.Name, s, got, want)
			}
		}
	}
	// Transform entries exist for every layer output shape.
	for _, l := range net.Layers {
		for _, tr := range tensor.DirectTransforms() {
			got := tab.Transform(tr, l.OutC, l.OutH, l.OutW)
			want := mo.Transform(tr, l.OutC, l.OutH, l.OutW)
			if got != want {
				t.Errorf("%s at %dx%dx%d: table %g != live %g", tr.Name, l.OutC, l.OutH, l.OutW, got, want)
			}
		}
	}
}

func TestTableMissingEntriesAreInf(t *testing.T) {
	tab := &Table{Nodes: map[string]map[string]float64{}, Transforms: map[string]map[string]float64{}}
	p := conv.Sum2D()
	s := conv.Scenario{C: 1, H: 4, W: 4, Stride: 1, K: 1, M: 1}
	if !math.IsInf(tab.Primitive(p, s, 1), 1) {
		t.Error("missing node entry should be +Inf")
	}
	if !math.IsInf(tab.Transform(tensor.DirectTransforms()[0], 1, 2, 3), 1) {
		t.Error("missing transform entry should be +Inf")
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	net := tableNet()
	tab := BuildTable(net, conv.Library(), NewModel(CortexA57), CortexA57.Name, 4)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Machine != CortexA57.Name || loaded.Threads != 4 {
		t.Errorf("metadata lost: %+v", loaded)
	}
	if loaded.NumEntries() != tab.NumEntries() {
		t.Errorf("entries %d != %d after round trip", loaded.NumEntries(), tab.NumEntries())
	}
	// The §4 ship-the-table deployment story requires bit-identical
	// costs on the target: every node and transform entry must survive
	// the JSON round trip exactly (Go's encoder emits the shortest
	// representation that round-trips each float64).
	if !reflect.DeepEqual(loaded.Nodes, tab.Nodes) {
		t.Error("node costs changed across round trip")
	}
	if !reflect.DeepEqual(loaded.Transforms, tab.Transforms) {
		t.Error("transform costs changed across round trip")
	}
	// And the Profiler view over the loaded table answers identically.
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		for _, p := range conv.Library() {
			if !p.Supports(s) {
				continue
			}
			if loaded.Primitive(p, s, 4) != tab.Primitive(p, s, 4) {
				t.Errorf("node cost for %s on %s changed across round trip", p.Name, s)
			}
		}
	}
	for _, l := range net.Layers {
		for _, tr := range tensor.DirectTransforms() {
			if loaded.Transform(tr, l.OutC, l.OutH, l.OutW) != tab.Transform(tr, l.OutC, l.OutH, l.OutW) {
				t.Errorf("transform cost for %s at %d×%d×%d changed across round trip",
					tr.Name, l.OutC, l.OutH, l.OutW)
			}
		}
	}
}

func TestLoadTableRejectsGarbage(t *testing.T) {
	if _, err := LoadTable(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := LoadTable(strings.NewReader(`{"machine":"x"}`)); err == nil {
		t.Error("missing sections should fail to load")
	}
}

// TestTableIsTiny pins the paper's §4 claim: the cost table is tiny
// compared to the model weights (on a real network, not a toy).
func TestTableIsTiny(t *testing.T) {
	net, err := models.Build("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	tab := BuildTable(net, conv.Library(), NewModel(IntelHaswell), "intel", 1)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	weightBytes := int64(0)
	for _, id := range net.ConvLayers() {
		weightBytes += net.Layers[id].Conv.KernelBytes()
	}
	if int64(buf.Len()) > weightBytes {
		t.Errorf("cost table (%d B) should be smaller than the weights (%d B)", buf.Len(), weightBytes)
	}
}
