// Package experiments regenerates every table and figure of the
// paper's evaluation (§5) from the analytic machine models: the
// whole-network strategy comparisons (Figures 5, 6, 7a, 7b), the
// absolute-time tables (Tables 2 and 3), the qualitative family-traits
// table (Table 1), the worked PBQP example (Figure 2) and the AlexNet
// selection maps (Figure 4). Each experiment returns structured data
// consumed by the dnnbench command, the benchmark harness and the
// trend-assertion tests.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// StrategyResult is one bar of a whole-network figure.
type StrategyResult struct {
	Strategy string
	// TimeMS is the predicted single-inference time in model ms.
	TimeMS float64
	// Speedup is relative to the common single-threaded sum2d baseline
	// (§5.2).
	Speedup float64
	// Optimal reports the PBQP solver's optimality claim where
	// applicable.
	Optimal bool
	// SolveMS is the PBQP solve time in wall-clock ms.
	SolveMS float64
}

// NetworkResult is one group of bars.
type NetworkResult struct {
	Network    string
	Machine    string
	Threads    int
	BaselineMS float64
	Results    []StrategyResult
}

// Get returns the named strategy's result.
func (nr *NetworkResult) Get(strategy string) (StrategyResult, bool) {
	for _, r := range nr.Results {
		if r.Strategy == strategy {
			return r, true
		}
	}
	return StrategyResult{}, false
}

// strategyFunc builds a plan for a network under given options.
type strategyFunc func(opts selector.Options) (*selector.Plan, error)

// strategiesFor lists the evaluation strategies in the paper's bar
// order for the given platform: the five family bars, local-optimal
// CHW, PBQP, then the platform's vendor libraries and Caffe.
func strategiesFor(netName string, machine cost.Machine) []struct {
	name string
	fn   func(net string, opts selector.Options) (*selector.Plan, error)
} {
	type entry = struct {
		name string
		fn   func(net string, opts selector.Options) (*selector.Plan, error)
	}
	mk := func(name string, f func(net string, opts selector.Options) (*selector.Plan, error)) entry {
		return entry{name, f}
	}
	famBar := func(f conv.Family) func(net string, opts selector.Options) (*selector.Plan, error) {
		return func(net string, opts selector.Options) (*selector.Plan, error) {
			g, err := models.Build(net)
			if err != nil {
				return nil, err
			}
			return selector.FamilyBest(g, f, opts)
		}
	}
	es := []entry{
		mk("direct", famBar(conv.FamilyDirect)),
		mk("im2", famBar(conv.FamilyIm2)),
		mk("kn2", famBar(conv.FamilyKn2)),
		mk("winograd", famBar(conv.FamilyWinograd)),
		mk("fft", famBar(conv.FamilyFFT)),
		mk("local-opt", func(net string, opts selector.Options) (*selector.Plan, error) {
			g, err := models.Build(net)
			if err != nil {
				return nil, err
			}
			return selector.LocalOptimal(g, tensor.CHW, opts)
		}),
		mk("pbqp", func(net string, opts selector.Options) (*selector.Plan, error) {
			g, err := models.Build(net)
			if err != nil {
				return nil, err
			}
			return selector.Select(g, opts)
		}),
	}
	if machine.Name == cost.IntelHaswell.Name {
		es = append(es, mk("mkldnn", func(net string, opts selector.Options) (*selector.Plan, error) {
			g, err := models.Build(net)
			if err != nil {
				return nil, err
			}
			return selector.MKLDNNProxy(g, opts)
		}))
	} else {
		es = append(es, mk("armcl", func(net string, opts selector.Options) (*selector.Plan, error) {
			g, err := models.Build(net)
			if err != nil {
				return nil, err
			}
			return selector.ARMCLProxy(g, opts)
		}))
	}
	es = append(es, mk("caffe", func(net string, opts selector.Options) (*selector.Plan, error) {
		g, err := models.Build(net)
		if err != nil {
			return nil, err
		}
		return selector.CaffeProxy(g, opts)
	}))
	return es
}

// WholeNetwork runs the full strategy comparison for one network on one
// machine at the given thread count.
func WholeNetwork(netName string, machine cost.Machine, threads int) (*NetworkResult, error) {
	prof := cost.NewModel(machine)
	opts := selector.Options{Prof: prof, Threads: threads}

	g, err := models.Build(netName)
	if err != nil {
		return nil, err
	}
	base, err := selector.Baseline(g, opts)
	if err != nil {
		return nil, err
	}
	nr := &NetworkResult{
		Network:    netName,
		Machine:    machine.Name,
		Threads:    threads,
		BaselineMS: base.TotalCost() * 1e3,
	}
	for _, st := range strategiesFor(netName, machine) {
		plan, err := st.fn(netName, opts)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", netName, st.name, err)
		}
		nr.Results = append(nr.Results, StrategyResult{
			Strategy: st.name,
			TimeMS:   plan.TotalCost() * 1e3,
			Speedup:  base.TotalCost() / plan.TotalCost(),
			Optimal:  plan.Optimal,
			SolveMS:  plan.SolveTime.Seconds() * 1e3,
		})
	}
	return nr, nil
}

// FormatNetworkResult renders one bar group like the paper's figures.
func FormatNetworkResult(nr *NetworkResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s, threads=%d (baseline sum2d: %.1f ms)\n",
		nr.Network, nr.Machine, nr.Threads, nr.BaselineMS)
	for _, r := range nr.Results {
		bar := strings.Repeat("█", int(r.Speedup*2+0.5))
		fmt.Fprintf(&b, "  %-10s %6.2fx  %9.1f ms  %s\n", r.Strategy, r.Speedup, r.TimeMS, bar)
	}
	return b.String()
}

// SortedStrategies returns strategy names ordered by speedup
// descending — handy for assertions and summaries.
func (nr *NetworkResult) SortedStrategies() []string {
	rs := append([]StrategyResult(nil), nr.Results...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Speedup > rs[j].Speedup })
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Strategy
	}
	return names
}
