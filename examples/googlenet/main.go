// GoogleNet walkthrough: the DAG case that motivates the PBQP
// formulation (paper Figure 3). Inception modules fan one tensor out to
// four branches and concatenate the results, so a layout decision at
// the module input constrains every branch. This example shows the
// optimizer's layout decisions around one inception module, and how the
// direct family's per-layer wins are erased by legalizing transforms on
// the embedded platform (§5.8).
//
//	go run ./examples/googlenet
package main

import (
	"fmt"
	"log"
	"strings"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/selector"
)

func main() {
	log.SetFlags(0)

	g, err := models.Build("googlenet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GoogleNet: %d layers, %d convolutions, 9 inception modules\n\n",
		g.NumLayers(), len(g.ConvLayers()))

	opts := selector.Options{Prof: cost.NewModel(cost.CortexA57), Threads: 4}
	plan, err := selector.Select(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PBQP (ARM, 4 threads): %.1f ms predicted, %d layout conversions, optimal=%v, solve=%v\n\n",
		plan.TotalCost()*1e3, len(plan.Conversions), plan.Optimal, plan.SolveTime)

	// Zoom into inception_4a: what did each branch get, and in which
	// layout?
	fmt.Println("inception_4a selections (ARM):")
	for _, id := range g.ConvLayers() {
		l := g.Layers[id]
		if !strings.HasPrefix(l.Name, "inception_4a/") {
			continue
		}
		p := plan.Primitives[id]
		fmt.Printf("  %-28s %-26s %s→%s\n", l.Name, p.Name, p.In, p.Out)
	}

	// The §5.8 story: per-layer node gains of the direct family versus
	// what legalization charges back.
	direct, err := selector.FamilyBest(g, conv.FamilyDirect, selector.Options{
		Prof: cost.NewModel(cost.CortexA57), Threads: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, err := selector.Baseline(g, selector.Options{Prof: cost.NewModel(cost.CortexA57)})
	if err != nil {
		log.Fatal(err)
	}
	gain := base.NodeCost - direct.NodeCost
	fmt.Printf("\ndirect family on ARM (single-threaded):\n")
	fmt.Printf("  per-layer node gains vs sum2d: %8.1f ms\n", gain*1e3)
	fmt.Printf("  legalizing transform costs:    %8.1f ms  (%d conversions)\n",
		direct.EdgeCost*1e3, len(direct.Conversions))
	if direct.TotalCost() > base.TotalCost() {
		fmt.Printf("  → net slowdown: %.3fx of baseline — §5.8's GoogleNet observation\n",
			base.TotalCost()/direct.TotalCost())
	}

	// Compare against the other strategies.
	fmt.Println()
	for name, mk := range map[string]func() (*selector.Plan, error){
		"pbqp (global optimum)": func() (*selector.Plan, error) { return selector.Select(g, opts) },
		"no-edge-cost ablation": func() (*selector.Plan, error) { return selector.NoEdgeCost(g, opts) },
	} {
		p, err := mk()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8.1f ms, %3d conversions\n", name, p.TotalCost()*1e3, len(p.Conversions))
	}
}
