package cost

import (
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/tensor"
)

func prim(t *testing.T, name string) *conv.Primitive {
	t.Helper()
	p, err := conv.ByName(conv.Library(), name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var vggLayer = conv.Scenario{C: 128, H: 56, W: 56, Stride: 1, K: 3, M: 256, Pad: 1}
var alexConv1 = conv.Scenario{C: 3, H: 227, W: 227, Stride: 4, K: 11, M: 96, Pad: 0}

func TestMachines(t *testing.T) {
	for _, m := range Machines() {
		if m.Cores != 4 {
			t.Errorf("%s: cores = %d, want 4 (both paper testbeds)", m.Name, m.Cores)
		}
		if m.PeakFlops(1) <= 0 || m.PeakFlops(4) != 4*m.PeakFlops(1) {
			t.Errorf("%s: peak flops inconsistent", m.Name)
		}
		if m.PeakFlops(0) != m.PeakFlops(1) || m.PeakFlops(99) != m.PeakFlops(4) {
			t.Errorf("%s: thread clamping wrong", m.Name)
		}
	}
	if IntelHaswell.VecWidth != 8 || CortexA57.VecWidth != 4 {
		t.Error("vector widths must match AVX2/NEON FP32")
	}
	if CortexA57.LLC >= IntelHaswell.LLC {
		t.Error("the embedded core must have the smaller cache (paper §4)")
	}
}

func TestModelBasicSanity(t *testing.T) {
	mo := NewModel(IntelHaswell)
	for _, p := range conv.Library() {
		for _, s := range []conv.Scenario{vggLayer, alexConv1} {
			if !p.Supports(s) {
				continue
			}
			c1 := mo.Primitive(p, s, 1)
			c4 := mo.Primitive(p, s, 4)
			if c1 <= 0 || c4 <= 0 {
				t.Fatalf("%s: non-positive cost", p.Name)
			}
			if c4 > c1*1.01 {
				t.Errorf("%s: 4-thread cost %g exceeds single-thread %g", p.Name, c4, c1)
			}
		}
	}
}

func TestModelDeterministic(t *testing.T) {
	mo := NewModel(CortexA57)
	p := prim(t, "im2col-ab")
	if mo.Primitive(p, vggLayer, 2) != mo.Primitive(p, vggLayer, 2) {
		t.Error("model must be deterministic")
	}
}

// TestFastAlgorithmsWin pins Table 1's "time" column on a friendly K=3
// layer: Winograd < im2 < sum2d single-threaded on Intel.
func TestFastAlgorithmsWin(t *testing.T) {
	mo := NewModel(IntelHaswell)
	wino := mo.Primitive(prim(t, "wino2d-m4-k3-vf8"), vggLayer, 1)
	im2 := mo.Primitive(prim(t, "im2col-blk"), vggLayer, 1)
	sum := mo.Primitive(prim(t, "sum2d"), vggLayer, 1)
	if !(wino < im2 && im2 < sum) {
		t.Errorf("expected wino (%g) < im2 (%g) < sum2d (%g)", wino, im2, sum)
	}
	// Speedup of the right order of magnitude (paper: up to ~10x ST).
	if r := sum / wino; r < 3 || r > 60 {
		t.Errorf("wino speedup vs sum2d = %.1f, outside plausible band", r)
	}
}

// TestFFTBadForSmallKernels pins Table 1's fft "small kernel" weakness:
// fft loses to im2 on K=3 but closes the gap dramatically on K=11.
func TestFFTBadForSmallKernels(t *testing.T) {
	mo := NewModel(IntelHaswell)
	fftP, im2P := prim(t, "fft1d-pre"), prim(t, "im2col-blk")
	k3 := vggLayer
	k11 := conv.Scenario{C: 64, H: 56, W: 56, Stride: 1, K: 11, M: 64, Pad: 5}
	ratio3 := mo.Primitive(fftP, k3, 1) / mo.Primitive(im2P, k3, 1)
	ratio11 := mo.Primitive(fftP, k11, 1) / mo.Primitive(im2P, k11, 1)
	if ratio3 < 1 {
		t.Errorf("fft should lose on K=3 (ratio %.2f)", ratio3)
	}
	if ratio11 >= ratio3 {
		t.Errorf("fft should gain ground as K grows: K3 ratio %.2f, K11 ratio %.2f", ratio3, ratio11)
	}
}

// TestVectorFactorMatchesPlatform pins the Figure 4 mechanism: VF8
// Winograd wins on 8-wide Haswell, VF4 on 4-wide NEON.
func TestVectorFactorMatchesPlatform(t *testing.T) {
	vf4, vf8 := prim(t, "wino2d-m4-k3-vf4"), prim(t, "wino2d-m4-k3-vf8")
	intel := NewModel(IntelHaswell)
	arm := NewModel(CortexA57)
	if intel.Primitive(vf8, vggLayer, 4) >= intel.Primitive(vf4, vggLayer, 4) {
		t.Error("Haswell should prefer the VF8 variant")
	}
	if arm.Primitive(vf4, vggLayer, 4) >= arm.Primitive(vf8, vggLayer, 4) {
		t.Error("Cortex-A57 should prefer the VF4 variant")
	}
}

// bestWino returns the cheapest Winograd primitive of the given
// dimensionality for scenario s — what the selector would see.
func bestWino(mo *Model, s conv.Scenario, twoD bool, threads int) float64 {
	best := 0.0
	found := false
	for _, p := range conv.Library() {
		if p.Family != conv.FamilyWinograd || p.Wino2D != twoD || !p.Supports(s) {
			continue
		}
		c := mo.Primitive(p, s, threads)
		if !found || c < best {
			best, found = c, true
		}
	}
	return best
}

// TestARMPrefers1DWinogradMT pins the second Figure 4 mechanism: with
// four threads sharing the small ARM cache, the low-memory 1D Winograd
// family beats the 2D algorithm, while Intel's larger LLC keeps 2D
// ahead.
func TestARMPrefers1DWinogradMT(t *testing.T) {
	// AlexNet conv3-like layer, the shape Figure 4 shows.
	s := conv.Scenario{C: 256, H: 13, W: 13, Stride: 1, K: 3, M: 384, Pad: 1}
	arm := NewModel(CortexA57)
	if d1, d2 := bestWino(arm, s, false, 4), bestWino(arm, s, true, 4); d1 >= d2 {
		t.Errorf("ARM MT should prefer 1D winograd: 1d=%g 2d=%g", d1, d2)
	}
	intel := NewModel(IntelHaswell)
	if d1, d2 := bestWino(intel, s, false, 4), bestWino(intel, s, true, 4); d2 >= d1 {
		t.Errorf("Intel MT should prefer 2D winograd: 2d=%g 1d=%g", d2, d1)
	}
}

// TestKn2LowMemoryNiche pins kn2's Table 1 profile: less workspace than
// im2 and competitive on large-image layers.
func TestKn2LowMemoryNiche(t *testing.T) {
	mo := NewModel(CortexA57)
	big := conv.Scenario{C: 64, H: 112, W: 112, Stride: 1, K: 3, M: 64, Pad: 1}
	kn2 := mo.Primitive(prim(t, "kn2row-blk"), big, 1)
	im2 := mo.Primitive(prim(t, "im2col-blk"), big, 1)
	if kn2 > im2*1.5 {
		t.Errorf("kn2 should be competitive on large images: kn2=%g im2=%g", kn2, im2)
	}
}

func TestTransformCostScalesWithSize(t *testing.T) {
	mo := NewModel(IntelHaswell)
	tr := tensor.DirectTransforms()[0]
	small := mo.Transform(tr, 16, 28, 28)
	large := mo.Transform(tr, 256, 56, 56)
	if large <= small {
		t.Error("transform cost must grow with tensor size")
	}
	if small <= 0 {
		t.Error("transform cost must be positive")
	}
}

func TestTransformSlowerOnARM(t *testing.T) {
	tr := tensor.DirectTransforms()[0]
	if NewModel(CortexA57).Transform(tr, 64, 56, 56) <= NewModel(IntelHaswell).Transform(tr, 64, 56, 56) {
		t.Error("lower-bandwidth platform must pay more for transforms")
	}
}

// TestSparsityReducesCost: the future-work extension — a sparse
// primitive gets cheaper as kernel sparsity rises, a dense one doesn't.
func TestSparsityReducesCost(t *testing.T) {
	mo := NewModel(IntelHaswell)
	sp := prim(t, "im2col-sparse")
	dense := prim(t, "im2col-ab")
	s0 := vggLayer
	s9 := vggLayer
	s9.Sparsity = 0.9
	if mo.Primitive(sp, s9, 1) >= mo.Primitive(sp, s0, 1) {
		t.Error("sparse primitive should benefit from sparsity")
	}
	if mo.Primitive(dense, s9, 1) != mo.Primitive(dense, s0, 1) {
		t.Error("dense primitive cost should ignore sparsity")
	}
}

// TestMinibatchScalesCost: the other §8 extension.
func TestMinibatchScalesCost(t *testing.T) {
	mo := NewModel(IntelHaswell)
	p := prim(t, "im2col-ab")
	b1, b8 := vggLayer, vggLayer
	b8.Batch = 8
	c1, c8 := mo.Primitive(p, b1, 1), mo.Primitive(p, b8, 1)
	if c8 < 6*c1 || c8 > 10*c1 {
		t.Errorf("batch-8 cost %g should be ≈8× batch-1 cost %g", c8, c1)
	}
}

func TestMeasureProfiler(t *testing.T) {
	me := NewMeasure(2)
	s := conv.Scenario{C: 4, H: 12, W: 12, Stride: 1, K: 3, M: 4, Pad: 1}
	c := me.Primitive(prim(t, "im2col-ab"), s, 1)
	if c <= 0 {
		t.Error("measured primitive cost must be positive")
	}
	tr := tensor.DirectTransforms()[0]
	if me.Transform(tr, 4, 12, 12) <= 0 {
		t.Error("measured transform cost must be positive")
	}
}

// TestEveryPrimitiveHasCalibration ensures no library entry silently
// falls through to a zero efficiency.
func TestEveryPrimitiveHasCalibration(t *testing.T) {
	for _, p := range conv.Library() {
		if e := baseEff(p); e <= 0 || e > 1 {
			t.Errorf("%s: baseEff = %v", p.Name, e)
		}
	}
	for _, tr := range tensor.DirectTransforms() {
		if f := transformFactor(tr); f < 1 {
			t.Errorf("%s: transform factor %v", tr.Name, f)
		}
	}
}

// TestBatchAmortization: a primitive with a real batched entry point
// amortizes its one-time work, so its batch-N cost is strictly less
// than N times its batch-1 cost — and the gap is widest for Winograd,
// whose kernel transform is the setup term. A primitive without a
// batched implementation executes through the per-image fallback and
// scales exactly linearly.
func TestBatchAmortization(t *testing.T) {
	mo := NewModel(IntelHaswell)
	const n = 8
	late := conv.Scenario{C: 160, H: 7, W: 7, Stride: 1, K: 3, M: 320, Pad: 1}

	wino := prim(t, "wino2d-m4-k3-vf8")
	if wino.RunBatch == nil {
		t.Fatal("wino2d-m4-k3-vf8 has no batched entry; test assumption broken")
	}
	w1, wN := mo.Primitive(wino, late, 1), mo.PrimitiveBatch(wino, late, 1, n)
	if wN >= float64(n)*w1 {
		t.Errorf("batched wino cost %g should amortize below %d × %g", wN, n, w1)
	}
	if wN <= w1 {
		t.Errorf("batched wino cost %g cannot be cheaper than one image %g", wN, w1)
	}

	direct := prim(t, "direct-mchw")
	if direct.RunBatch != nil {
		t.Fatal("direct-mchw grew a batched entry; update the fallback side of this test")
	}
	d1, dN := mo.Primitive(direct, late, 1), mo.PrimitiveBatch(direct, late, 1, n)
	if got, want := dN, float64(n)*d1; got != want {
		t.Errorf("fallback primitive batch cost %g, want exactly %d × %g = %g", got, n, d1, want)
	}

	// The generic helpers dispatch through the batch-aware contract.
	if got := PrimitiveN(mo, wino, late, 1, n); got != wN {
		t.Errorf("PrimitiveN = %g, want the BatchProfiler answer %g", got, wN)
	}
	tr := tensor.DirectTransforms()[0]
	tb := mo.TransformBatch(tr, 64, 28, 28, n)
	lin := float64(n) * mo.Transform(tr, 64, 28, 28)
	if tb >= lin {
		t.Errorf("batched transform %g should shave the per-call overhead off %g", tb, lin)
	}
	if got := TransformN(mo, tr, 64, 28, 28, n); got != tb {
		t.Errorf("TransformN = %g, want the BatchProfiler answer %g", got, tb)
	}
}

// nonBatchProfiler implements only the batch-1 contract, to pin the
// helpers' linear-scaling fallback.
type nonBatchProfiler struct{}

func (nonBatchProfiler) Primitive(*conv.Primitive, conv.Scenario, int) float64 { return 2e-3 }
func (nonBatchProfiler) Transform(tensor.Transform, int, int, int) float64     { return 5e-4 }

func TestPrimitiveNFallbackScalesLinearly(t *testing.T) {
	p := prim(t, "sum2d")
	s := conv.Scenario{C: 4, H: 8, W: 8, Stride: 1, K: 3, M: 4, Pad: 1}
	if got := PrimitiveN(nonBatchProfiler{}, p, s, 1, 4); got != 8e-3 {
		t.Errorf("PrimitiveN fallback = %g, want 4 × 2e-3", got)
	}
	tr := tensor.DirectTransforms()[0]
	if got := TransformN(nonBatchProfiler{}, tr, 4, 8, 8, 4); got != 2e-3 {
		t.Errorf("TransformN fallback = %g, want 4 × 5e-4", got)
	}
}

// TestMeasureThreadsWired: the Threads field is the default budget when
// a call site passes threads < 1, and a cap otherwise — previously
// declared but never read.
func TestMeasureThreadsWired(t *testing.T) {
	me := &Measure{Reps: 1, Threads: 2}
	cases := []struct{ in, want int }{
		{0, 2},  // default: unset call sites inherit the cap
		{-1, 2}, // negative is unset too
		{1, 1},  // explicit requests below the cap pass through
		{2, 2},
		{5, 2}, // and above it are clamped
	}
	for _, c := range cases {
		if got := me.threadBudget(c.in); got != c.want {
			t.Errorf("Threads=2: threadBudget(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	uncapped := &Measure{Reps: 1}
	if got := uncapped.threadBudget(0); got != 1 {
		t.Errorf("Threads=0: threadBudget(0) = %d, want 1", got)
	}
	if got := uncapped.threadBudget(7); got != 7 {
		t.Errorf("Threads=0: threadBudget(7) = %d, want 7", got)
	}
}

// TestMeasureBatch: the batched measurement path must execute the real
// batched entry points and return positive wall times, for primitives
// with and without a RunBatch implementation.
func TestMeasureBatch(t *testing.T) {
	me := NewMeasure(1)
	s := conv.Scenario{C: 4, H: 12, W: 12, Stride: 1, K: 3, M: 4, Pad: 1}
	for _, name := range []string{"im2row-ab", "direct-mchw"} {
		if c := me.PrimitiveBatch(prim(t, name), s, 1, 3); c <= 0 {
			t.Errorf("%s: measured batch cost %g must be positive", name, c)
		}
	}
	tr := tensor.DirectTransforms()[0]
	if c := me.TransformBatch(tr, 4, 12, 12, 3); c <= 0 {
		t.Error("measured batched transform cost must be positive")
	}
}
