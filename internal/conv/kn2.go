package conv

import (
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// The kn2 family (Vasudevan et al., paper §4): low-memory GEMM-based
// convolution. Instead of a K²-times-larger Toeplitz matrix, it runs K²
// small GEMMs — one per kernel tap — and accumulates each partial result
// into the output at the tap's spatial offset. Needs only one
// M×H×W scratch buffer, but cannot implement strided convolution
// efficiently (Table 1's "strided: --").

// kernelSlice extracts the M×C matrix of tap (kh,kw).
func kernelSlice(k *Kernel, kh, kw int) []float32 {
	a := make([]float32, k.M*k.C)
	for m := 0; m < k.M; m++ {
		for c := 0; c < k.C; c++ {
			a[m*k.C+c] = k.At(m, c, kh, kw)
		}
	}
	return a
}

// shiftAccumulate adds the full-plane partial product (M×H×W, CHW
// order) into the output with spatial offset (dy,dx).
func shiftAccumulate(out *tensor.Tensor, partial []float32, s Scenario, dy, dx int) {
	oh, ow := s.OutH(), s.OutW()
	for m := 0; m < s.M; m++ {
		for y := 0; y < oh; y++ {
			sy := y + dy
			if sy < 0 || sy >= s.H {
				continue
			}
			dst := out.Data[(m*oh+y)*ow : (m*oh+y)*ow+ow]
			src := partial[(m*s.H+sy)*s.W : (m*s.H+sy)*s.W+s.W]
			for x := 0; x < ow; x++ {
				sx := x + dx
				if sx < 0 || sx >= s.W {
					continue
				}
				dst[x] += src[sx]
			}
		}
	}
}

type kn2Kind uint8

const (
	kn2IKJ kn2Kind = iota
	kn2TransB
	kn2Blocked
	kn2Packed
)

// kn2row runs one GEMM per tap on CHW data: kernel slice (M×C) times
// image matrix (C×H·W), then shift-accumulates.
func kn2row(kind kn2Kind) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, tensor.CHW, "kn2row")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		out := tensor.New(tensor.CHW, s.M, oh, ow)
		hw := s.H * s.W
		partial := make([]float32, s.M*hw)
		var imgT []float32
		if kind == kn2TransB {
			imgT = transposeMat(s.C, hw, in.Data)
		}
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				a := kernelSlice(k, kh, kw)
				dy, dx := kh-s.Pad, kw-s.Pad
				switch kind {
				case kn2TransB:
					gemm.TransB(s.M, hw, s.C, a, imgT, partial)
				case kn2Blocked:
					gemm.Blocked(s.M, hw, s.C, 0, a, in.Data, partial)
				case kn2Packed:
					if dy == 0 && dx == 0 && oh == s.H && ow == s.W {
						// Unshifted tap of a same-size convolution: the
						// partial plane lines up with the output exactly, so
						// the packed kernel's fused accumulate epilogue sums
						// it in place — no partial buffer, no shift pass.
						gemm.Accumulate(s.M, hw, s.C, a, in.Data, out.Data)
						continue
					}
					gemm.Packed(s.M, hw, s.C, a, in.Data, partial)
				default:
					if threads > 1 {
						gemm.Parallel(threads, s.M, hw, s.C, a, in.Data, partial)
					} else {
						gemm.IKJ(s.M, hw, s.C, a, in.Data, partial)
					}
				}
				shiftAccumulate(out, partial, s, dy, dx)
			}
		}
		return out
	}
}

// kn2col is the HWC-side dual: image matrix (H·W×C) times kernel slice
// (C×M) producing an H·W×M partial in HWC order.
func kn2col(trans bool) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, tensor.HWC, "kn2col")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		out := tensor.New(tensor.HWC, s.M, oh, ow)
		hw := s.H * s.W
		partial := make([]float32, hw*s.M)
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				// C×M slice, transposed from the M×C extraction.
				a := kernelSlice(k, kh, kw)
				b := transposeMat(s.M, s.C, a) // C×M
				if trans {
					bt := transposeMat(s.C, s.M, b) // back to M-major rows of length C
					gemm.TransB(hw, s.M, s.C, in.Data, bt, partial)
				} else if threads > 1 {
					gemm.Parallel(threads, hw, s.M, s.C, in.Data, b, partial)
				} else {
					gemm.IKJ(hw, s.M, s.C, in.Data, b, partial)
				}
				dy, dx := kh-s.Pad, kw-s.Pad
				for y := 0; y < oh; y++ {
					sy := y + dy
					if sy < 0 || sy >= s.H {
						continue
					}
					for x := 0; x < ow; x++ {
						sx := x + dx
						if sx < 0 || sx >= s.W {
							continue
						}
						dst := out.Data[(y*ow+x)*s.M : (y*ow+x)*s.M+s.M]
						src := partial[(sy*s.W+sx)*s.M : (sy*s.W+sx)*s.M+s.M]
						for m := range dst {
							dst[m] += src[m]
						}
					}
				}
			}
		}
		return out
	}
}

// kn2Fused never materializes the full partial plane: the accumulating
// GEMM writes straight into the (boundary-trimmed) output region for
// each tap, trading GEMM regularity for zero workspace.
func kn2Fused(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "kn2-fused")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	parallelFor(threads, s.M, func(m int) {
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				dy, dx := kh-s.Pad, kw-s.Pad
				for c := 0; c < s.C; c++ {
					kv := k.At(m, c, kh, kw)
					if kv == 0 {
						continue
					}
					for y := 0; y < oh; y++ {
						sy := y + dy
						if sy < 0 || sy >= s.H {
							continue
						}
						dst := out.Data[(m*oh+y)*ow : (m*oh+y)*ow+ow]
						src := in.Data[(c*s.H+sy)*s.W : (c*s.H+sy)*s.W+s.W]
						x0 := 0
						if dx < 0 {
							x0 = -dx
						}
						x1 := ow
						if dx+ow > s.W {
							x1 = s.W - dx
						}
						for x := x0; x < x1; x++ {
							dst[x] += kv * src[x+dx]
						}
					}
				}
			}
		}
	})
	return out
}

// kn2rowPar partitions output maps across workers, each with a private
// single-map partial buffer — the multithread-oriented kn2 schedule.
func kn2rowPar(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "kn2row-par")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	hw := s.H * s.W
	parallelFor(threads, s.M, func(m int) {
		partial := make([]float32, hw)
		a := make([]float32, s.C)
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				for c := 0; c < s.C; c++ {
					a[c] = k.At(m, c, kh, kw)
				}
				gemm.IKJ(1, hw, s.C, a, in.Data, partial)
				dy, dx := kh-s.Pad, kw-s.Pad
				for y := 0; y < oh; y++ {
					sy := y + dy
					if sy < 0 || sy >= s.H {
						continue
					}
					dst := out.Data[(m*oh+y)*ow : (m*oh+y)*ow+ow]
					src := partial[sy*s.W : sy*s.W+s.W]
					for x := 0; x < ow; x++ {
						sx := x + dx
						if sx >= 0 && sx < s.W {
							dst[x] += src[sx]
						}
					}
				}
			}
		}
	})
	return out
}

// kn2Workspace models the single M×H×W partial buffer.
func kn2Workspace(s Scenario) int64 { return int64(s.M) * int64(s.H) * int64(s.W) * 4 }

// kn2Primitives assembles the kn2 family. None support stride > 1.
func kn2Primitives() []*Primitive {
	ws := kn2Workspace
	zero := func(Scenario) int64 { return 0 }
	return []*Primitive{
		{Name: "kn2row-ab", Family: FamilyKn2, In: tensor.CHW, Out: tensor.CHW, VF: 4, Workspace: ws, Run: kn2row(kn2IKJ)},
		{Name: "kn2row-abt", Family: FamilyKn2, In: tensor.CHW, Out: tensor.CHW, VF: 4, Workspace: ws, Run: kn2row(kn2TransB)},
		{Name: "kn2row-blk", Family: FamilyKn2, In: tensor.CHW, Out: tensor.CHW, VF: 8, Workspace: ws, Run: kn2row(kn2Blocked)},
		{Name: "kn2row-pack", Family: FamilyKn2, In: tensor.CHW, Out: tensor.CHW, VF: 8, Workspace: ws, Run: kn2row(kn2Packed)},
		{Name: "kn2row-par", Family: FamilyKn2, In: tensor.CHW, Out: tensor.CHW, VF: 8, Workspace: ws, Run: kn2rowPar},
		{Name: "kn2col-ab", Family: FamilyKn2, In: tensor.HWC, Out: tensor.HWC, VF: 4, Workspace: ws, Run: kn2col(false)},
		{Name: "kn2col-abt", Family: FamilyKn2, In: tensor.HWC, Out: tensor.HWC, VF: 4, Workspace: ws, Run: kn2col(true)},
		{Name: "kn2-fused", Family: FamilyKn2, In: tensor.CHW, Out: tensor.CHW, VF: 1, Workspace: zero, Run: kn2Fused},
	}
}
