package pbqp

import (
	"fmt"
	"strings"
)

// DOT renders the instance in Graphviz dot format, with node cost
// vectors as labels and edge matrices summarized by their min/max
// entries — handy for inspecting the instances the selector builds.
// labels may be nil, in which case nodes are numbered.
func (g *Graph) DOT(name string, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  node [shape=box];\n", name)
	for u, costs := range g.costs {
		label := fmt.Sprintf("n%d", u)
		if labels != nil && u < len(labels) {
			label = labels[u]
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\"];\n", u, label, vecString(costs, 6))
	}
	for u := range g.costs {
		for v, m := range g.adj[u] {
			if u >= v {
				continue
			}
			lo, hi := m.V[0], m.V[0]
			for _, x := range m.V {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			fmt.Fprintf(&b, "  n%d -- n%d [label=\"%d×%d [%.3g,%.3g]\"];\n",
				u, v, m.Rows, m.Cols, lo, hi)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// vecString prints at most n entries of a cost vector.
func vecString(xs []float64, n int) string {
	var parts []string
	for i, x := range xs {
		if i == n {
			parts = append(parts, fmt.Sprintf("…(%d)", len(xs)))
			break
		}
		parts = append(parts, fmt.Sprintf("%.3g", x))
	}
	return "(" + strings.Join(parts, ",") + ")"
}
