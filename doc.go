// Package pbqpdnn reproduces "Optimal DNN Primitive Selection with
// Partitioned Boolean Quadratic Programming" (Anderson & Gregg, CGO
// 2018): a library of 70+ convolution primitives over multiple data
// layouts, a PBQP solver, and a global optimizer that picks a primitive
// per network layer while accounting for data-layout transformation
// costs.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for the
// paper-versus-reproduction record. The benchmark harness in
// bench_test.go regenerates every table and figure of the paper's
// evaluation.
package pbqpdnn
