// AlexNet walkthrough: reproduce the paper's Figure 4 selection maps
// and Table 2/3 headline numbers for AlexNet on both modeled platforms,
// including what each alternative strategy would have cost.
//
//	go run ./examples/alexnet
package main

import (
	"fmt"
	"log"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/experiments"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// Figure 4: the per-layer selection maps, multithreaded.
	intel, arm, err := experiments.Figure4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFigure4(intel, arm))
	fmt.Println()

	// The interesting part of Figure 4, spelled out.
	count1D := 0
	for _, r := range arm[1:] {
		if r.Family == "winograd" && !r.Wino2D {
			count1D++
		}
	}
	fmt.Printf("ARM picked the low-memory 1D Winograd for %d of 4 K∈{3,5} layers\n", count1D)
	fmt.Printf("(the paper reports 3 of 4 — the small A57 cache favors the 1D algorithm)\n\n")

	// Strategy comparison on both platforms (the AlexNet columns of
	// Figures 5–7 and Tables 2–3).
	for _, m := range []cost.Machine{cost.IntelHaswell, cost.CortexA57} {
		for _, threads := range []int{1, 4} {
			nr, err := experiments.WholeNetwork("alexnet", m, threads)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(experiments.FormatNetworkResult(nr))
		}
	}

	// Show the PBQP-vs-local-optimal gap explicitly (§6: the canonical
	// layout escape hatch costs real performance).
	g, err := models.Build("alexnet")
	if err != nil {
		log.Fatal(err)
	}
	opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 4}
	pb, err := selector.Select(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	lo, err := selector.LocalOptimal(g, tensor.CHW, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIntel MT: canonical-CHW strategy pays %.2fx over the PBQP optimum\n",
		lo.TotalCost()/pb.TotalCost())
}
