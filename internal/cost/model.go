package cost

import (
	"math"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/fft"
	"pbqpdnn/internal/tensor"
)

// Profiler prices primitives and layout transforms; it is the cost
// source consumed by the selector (paper §3.1). Implementations return
// seconds.
type Profiler interface {
	// Primitive returns the cost of executing p on scenario s with the
	// given thread count.
	Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64
	// Transform returns the cost of one direct layout transform applied
	// to a logical c×h×w tensor.
	Transform(tr tensor.Transform, c, h, w int) float64
}

// Model is the analytic machine-model profiler. It is deterministic:
// the same (machine, primitive, scenario) triple always produces the
// same cost, which keeps the experiment harness reproducible.
type Model struct {
	M Machine
}

// NewModel returns an analytic profiler for the given machine.
func NewModel(m Machine) *Model { return &Model{M: m} }

// perCallOverhead is the fixed dispatch cost of one primitive call.
const perCallOverhead = 3e-6

// algOps estimates the arithmetic operation count of primitive p on
// scenario s. GEMM-based and direct families perform the full
// O(H'W'CK²M) work; Winograd and FFT are the "fast" algorithms whose
// operation counts genuinely shrink (paper §4).
func algOps(p *conv.Primitive, s conv.Scenario) float64 {
	oh, ow := float64(s.OutH()), float64(s.OutW())
	c, m := float64(s.C), float64(s.M)
	switch {
	case p.Family == conv.FamilyWinograd && p.Wino2D:
		wm, wr := float64(p.WinoM), float64(p.WinoR)
		t := wm + wr - 1
		tiles := math.Ceil(oh/wm) * math.Ceil(ow/wm)
		inputTrans := tiles * c * 4 * t * t * t
		pointwise := tiles * 2 * c * m * t * t
		outputTrans := tiles * m * 4 * wm * t * t
		kernelTrans := m * c * 2 * t * t * wr
		return inputTrans + pointwise + outputTrans + kernelTrans
	case p.Family == conv.FamilyWinograd:
		wm, wr := float64(p.WinoM), float64(p.WinoR)
		t := wm + wr - 1
		tilesX := math.Ceil(ow / wm)
		rows := oh
		inputTrans := rows * tilesX * c * wr * 2 * t * t
		pointwise := rows * tilesX * 2 * m * c * wr * t
		outputTrans := rows * tilesX * m * 2 * wm * t
		kernelTrans := m * c * wr * 2 * t * wr
		return inputTrans + pointwise + outputTrans + kernelTrans
	case p.Family == conv.FamilyFFT:
		n := float64(fft.NextPow2(s.W + 2*s.Pad + s.K - 1))
		lg := math.Log2(n)
		fwdRows := c * float64(s.H) * 5 * n * lg
		kernels := m * c * float64(s.K) * 5 * n * lg
		pointwise := m * oh * c * float64(s.K) * 8 * n
		inverse := m * oh * 5 * n * lg
		if p.Name == "fft1d-naive" {
			// Recomputes both spectra per (m,row,c,kh) quadruple.
			fwdRows = m * oh * c * float64(s.K) * 2 * 5 * n * lg
			kernels = 0
		}
		return fwdRows + kernels + pointwise + inverse
	default:
		ops := s.Flops()
		if p.Sparse && s.Sparsity > 0 {
			ops *= 1 - s.Sparsity
			ops += float64(s.M) * float64(s.C) * float64(s.K*s.K) * 2 // CSR build
		}
		return ops
	}
}

// vectorUtil returns the fraction of the machine's SIMD lanes a
// primitive with vector factor vf sustains. A VF wider than the machine
// is emulated with spill to stack, halving throughput — this is what
// steers the optimizer to VF4 variants on NEON and VF8 on AVX2.
func vectorUtil(vf, width int) float64 {
	if vf >= width {
		u := 1.0
		if vf > width {
			u = 0.55
		}
		return u
	}
	return float64(vf) / float64(width)
}

// parallelFraction is the parallelizable share of a primitive's runtime
// (Amdahl). The sum2d baseline is single-threaded by construction
// (paper §5.2).
func parallelFraction(p *conv.Primitive) float64 {
	switch p.Family {
	case conv.FamilySum2D:
		return 0
	case conv.FamilyIm2:
		return 0.88
	case conv.FamilyKn2:
		return 0.87
	case conv.FamilyWinograd:
		return 0.86
	case conv.FamilyFFT:
		return 0.85
	default:
		return 0.88
	}
}

// Primitive implements Profiler with the roofline-style model
// max(compute, memory) plus fixed overhead.
func (mo *Model) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > mo.M.Cores {
		threads = mo.M.Cores
	}
	ops := algOps(p, s)
	if s.Batch > 1 {
		ops *= float64(s.Batch)
	}

	eff := baseEff(p) * scenarioEffMod(p, s) * mo.M.EffScale * vectorUtil(p.VF, mo.M.VecWidth)
	peak1 := mo.M.FreqGHz * 1e9 * float64(mo.M.VecWidth) * 2
	f := parallelFraction(p)
	scale := (1 - f) + f/float64(threads)
	computeTime := ops * scale / (peak1 * eff)

	// Cache-thrash penalty: when the algorithm's working set exceeds the
	// per-thread share of the last-level cache, its inner loops stall on
	// misses. This is the mechanism behind the paper's ARM-vs-Intel
	// Winograd dimensionality split (Figure 4).
	ws := p.Workspace(s)
	budget := mo.M.LLC
	if threads > 1 {
		budget = mo.M.LLC / int64(threads)
	}
	if ratio := float64(ws) / float64(budget); ratio > 1 {
		computeTime *= 1 + mo.M.ThrashKappa*(ratio-1)
	}

	traffic := float64(s.InputBytes() + s.OutputBytes() + s.KernelBytes() + 2*ws)
	if s.Batch > 1 {
		traffic *= float64(s.Batch)
	}
	memTime := traffic / (mo.M.MemBW * 1e9)

	return math.Max(computeTime, memTime) + perCallOverhead
}

// Transform implements Profiler. Layout permutations are strided
// gather/scatter traffic with poor locality, so their effective
// bandwidth is a small fraction of streaming bandwidth — the reason DT
// costs can dominate small layers (paper §5.8, the GoogleNet direct
// slowdown).
func (mo *Model) Transform(tr tensor.Transform, c, h, w int) float64 {
	bytes := float64(tensor.DataLen(tr.From, c, h, w)+tensor.DataLen(tr.To, c, h, w)) * 4
	return bytes*(transformFactor(tr)/16)/(mo.M.GatherBW*1e9) + 2e-6
}
