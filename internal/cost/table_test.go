package cost

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/tensor"
)

func tableNet() *dnn.Graph {
	b, x := dnn.NewBuilder("table-net", 3, 16, 16)
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.MaxPool(x, "p1", 2, 2, 0)
	x = b.Conv(x, "c2", 8, 3, 1, 1)
	x = b.Softmax(x, "sm")
	return func() *dnn.Graph { return b.Graph() }()
}

func TestBuildTableCoversNetwork(t *testing.T) {
	net := tableNet()
	lib := conv.Library()
	mo := NewModel(IntelHaswell)
	tab := BuildTable(net, lib, mo, IntelHaswell.Name, 2)

	if tab.NumEntries() == 0 {
		t.Fatal("empty table")
	}
	// Every conv scenario and every supporting primitive must match the
	// live profiler exactly.
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		for _, p := range lib {
			if !p.Supports(s) {
				continue
			}
			got := tab.Primitive(p, s, 2)
			want := mo.Primitive(p, s, 2)
			if got != want {
				t.Errorf("%s on %s: table %g != live %g", p.Name, s, got, want)
			}
		}
	}
	// Transform entries exist for every layer output shape.
	for _, l := range net.Layers {
		for _, tr := range tensor.DirectTransforms() {
			got := tab.Transform(tr, l.OutC, l.OutH, l.OutW)
			want := mo.Transform(tr, l.OutC, l.OutH, l.OutW)
			if got != want {
				t.Errorf("%s at %dx%dx%d: table %g != live %g", tr.Name, l.OutC, l.OutH, l.OutW, got, want)
			}
		}
	}
}

func TestTableMissingEntriesAreInf(t *testing.T) {
	tab := &Table{Nodes: map[string]map[string]float64{}, Transforms: map[string]map[string]float64{}}
	p := conv.Sum2D()
	s := conv.Scenario{C: 1, H: 4, W: 4, Stride: 1, K: 1, M: 1}
	if !math.IsInf(tab.Primitive(p, s, 1), 1) {
		t.Error("missing node entry should be +Inf")
	}
	if !math.IsInf(tab.Transform(tensor.DirectTransforms()[0], 1, 2, 3), 1) {
		t.Error("missing transform entry should be +Inf")
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	net := tableNet()
	tab := BuildTable(net, conv.Library(), NewModel(CortexA57), CortexA57.Name, 4)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Machine != CortexA57.Name || loaded.Threads != 4 {
		t.Errorf("metadata lost: %+v", loaded)
	}
	if loaded.NumEntries() != tab.NumEntries() {
		t.Errorf("entries %d != %d after round trip", loaded.NumEntries(), tab.NumEntries())
	}
	// The §4 ship-the-table deployment story requires bit-identical
	// costs on the target: every node and transform entry must survive
	// the JSON round trip exactly (Go's encoder emits the shortest
	// representation that round-trips each float64).
	if !reflect.DeepEqual(loaded.Nodes, tab.Nodes) {
		t.Error("node costs changed across round trip")
	}
	if !reflect.DeepEqual(loaded.Transforms, tab.Transforms) {
		t.Error("transform costs changed across round trip")
	}
	// And the Profiler view over the loaded table answers identically.
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		for _, p := range conv.Library() {
			if !p.Supports(s) {
				continue
			}
			if loaded.Primitive(p, s, 4) != tab.Primitive(p, s, 4) {
				t.Errorf("node cost for %s on %s changed across round trip", p.Name, s)
			}
		}
	}
	for _, l := range net.Layers {
		for _, tr := range tensor.DirectTransforms() {
			if loaded.Transform(tr, l.OutC, l.OutH, l.OutW) != tab.Transform(tr, l.OutC, l.OutH, l.OutW) {
				t.Errorf("transform cost for %s at %d×%d×%d changed across round trip",
					tr.Name, l.OutC, l.OutH, l.OutW)
			}
		}
	}
}

func TestLoadTableRejectsGarbage(t *testing.T) {
	if _, err := LoadTable(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := LoadTable(strings.NewReader(`{"machine":"x"}`)); err == nil {
		t.Error("missing sections should fail to load")
	}
}

// TestTableIsTiny pins the paper's §4 claim: the cost table is tiny
// compared to the model weights (on a real network, not a toy).
func TestTableIsTiny(t *testing.T) {
	net, err := models.Build("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	tab := BuildTable(net, conv.Library(), NewModel(IntelHaswell), "intel", 1)
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	weightBytes := int64(0)
	for _, id := range net.ConvLayers() {
		weightBytes += net.Layers[id].Conv.KernelBytes()
	}
	if int64(buf.Len()) > weightBytes {
		t.Errorf("cost table (%d B) should be smaller than the weights (%d B)", buf.Len(), weightBytes)
	}
}

// TestTableBatchKeysRoundTrip: a table profiled at several batch sizes
// must survive the JSON round trip with every batch-keyed entry intact,
// and the batched Profiler view over the loaded table must answer
// identically to the live profiler it was built from.
func TestTableBatchKeysRoundTrip(t *testing.T) {
	net := tableNet()
	lib := conv.Library()
	mo := NewModel(IntelHaswell)
	batches := []int{1, 4}
	tab := BuildTableBatches(net, lib, mo, IntelHaswell.Name, 2, batches)

	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Batches, batches) {
		t.Errorf("Batches = %v, want %v", loaded.Batches, batches)
	}
	if !reflect.DeepEqual(loaded.Nodes, tab.Nodes) {
		t.Error("batch-keyed node costs changed across round trip")
	}
	if !reflect.DeepEqual(loaded.Transforms, tab.Transforms) {
		t.Error("batch-keyed transform costs changed across round trip")
	}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		for _, p := range lib {
			if !p.Supports(s) {
				continue
			}
			for _, b := range batches {
				got := loaded.PrimitiveBatch(p, s, 2, b)
				want := mo.PrimitiveBatch(p, s, 2, b)
				if got != want {
					t.Errorf("%s on %s @%d: table %g != live %g", p.Name, s, b, got, want)
				}
			}
		}
	}
	for _, l := range net.Layers {
		for _, tr := range tensor.DirectTransforms() {
			got := loaded.TransformBatch(tr, l.OutC, l.OutH, l.OutW, 4)
			want := mo.TransformBatch(tr, l.OutC, l.OutH, l.OutW, 4)
			if got != want {
				t.Errorf("%s at %dx%dx%d @4: table %g != live %g", tr.Name, l.OutC, l.OutH, l.OutW, got, want)
			}
		}
	}
}

// TestTableBatchFallback: a (shape, N) key missing from the table falls
// back to N times the batch-1 entry; a scenario never profiled at all
// stays +Inf.
func TestTableBatchFallback(t *testing.T) {
	net := tableNet()
	lib := conv.Library()
	tab := BuildTable(net, lib, NewModel(IntelHaswell), "intel", 1) // batch-1 entries only

	s := net.Layers[net.ConvLayers()[0]].Conv
	for _, p := range lib {
		if !p.Supports(s) {
			continue
		}
		b1 := tab.Primitive(p, s, 1)
		if got, want := tab.PrimitiveBatch(p, s, 1, 8), 8*b1; got != want {
			t.Errorf("%s: batch-8 fallback %g, want 8 × %g = %g", p.Name, got, b1, want)
		}
	}
	tr := tensor.DirectTransforms()[0]
	l := net.Layers[0]
	if got, want := tab.TransformBatch(tr, l.OutC, l.OutH, l.OutW, 8), 8*tab.Transform(tr, l.OutC, l.OutH, l.OutW); got != want {
		t.Errorf("transform batch-8 fallback %g, want %g", got, want)
	}
	missing := conv.Scenario{C: 999, H: 9, W: 9, Stride: 1, K: 3, M: 9, Pad: 1}
	if !math.IsInf(tab.PrimitiveBatch(conv.Sum2D(), missing, 1, 8), 1) {
		t.Error("unprofiled scenario should be +Inf at any batch")
	}
}

// TestTableMixedVersionLoad: a table serialized before batch-aware
// profiling (bare shape keys, no "batches" field) must load under the
// new code and drive batched lookups through the batch-1 fallback.
func TestTableMixedVersionLoad(t *testing.T) {
	old := `{
	 "machine": "legacy-host",
	 "threads": 1,
	 "nodes": {"{C=3 H=16 W=16 δ=1 K=3 M=8 P=1}": {"sum2d": 0.25}},
	 "transforms": {"8x16x16": {"chw2hwc": 0.125}}
	}`
	tab, err := LoadTable(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Batches) != 0 {
		t.Errorf("legacy table should carry no Batches, got %v", tab.Batches)
	}
	s := conv.Scenario{C: 3, H: 16, W: 16, Stride: 1, K: 3, M: 8, Pad: 1}
	p := conv.Sum2D()
	if got := tab.Primitive(p, s, 1); got != 0.25 {
		t.Errorf("batch-1 lookup = %g, want 0.25", got)
	}
	if got := tab.PrimitiveBatch(p, s, 1, 4); got != 1.0 {
		t.Errorf("batch-4 lookup through legacy table = %g, want 4 × 0.25", got)
	}
	if got := PrimitiveN(tab, p, s, 1, 4); got != 1.0 {
		t.Errorf("PrimitiveN over legacy table = %g, want 1.0", got)
	}
	var chw2hwc tensor.Transform
	for _, tr := range tensor.DirectTransforms() {
		if tr.Name == "chw2hwc" {
			chw2hwc = tr
		}
	}
	if got := tab.TransformBatch(chw2hwc, 8, 16, 16, 4); got != 0.5 {
		t.Errorf("batched transform through legacy table = %g, want 4 × 0.125", got)
	}
}

// TestAddNetMergesWithoutReprofiling: calibrating a second network into
// an existing table keeps the first network's entries and records the
// union of profiled batch sizes.
func TestAddNetMergesWithoutReprofiling(t *testing.T) {
	lib := conv.Library()
	mo := NewModel(IntelHaswell)
	tab := NewTable("merge-host", 1)
	tab.AddNet(tableNet(), lib, mo, []int{1, 2})
	before := tab.NumEntries()

	other, err := models.Build("micronet")
	if err != nil {
		t.Fatal(err)
	}
	tab.AddNet(other, lib, mo, []int{2, 4})
	if tab.NumEntries() <= before {
		t.Error("second AddNet added no entries")
	}
	if want := []int{1, 2, 4}; !reflect.DeepEqual(tab.Batches, want) {
		t.Errorf("Batches = %v, want %v", tab.Batches, want)
	}
	// First net's entries are still answered exactly.
	s := tableNet().Layers[tableNet().ConvLayers()[0]].Conv
	if got, want := tab.PrimitiveBatch(conv.Sum2D(), s, 1, 2), mo.PrimitiveBatch(conv.Sum2D(), s, 1, 2); got != want {
		t.Errorf("first net entry %g, want %g after merge", got, want)
	}
}
