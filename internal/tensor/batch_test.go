package tensor

import "testing"

func TestBatchImageViewsShareStorage(t *testing.T) {
	b := NewBatch(CHW, 3, 2, 4, 5)
	if b.Stride != DataLen(CHW, 2, 4, 5) {
		t.Fatalf("stride %d, want %d", b.Stride, DataLen(CHW, 2, 4, 5))
	}
	if len(b.Data) != BatchDataLen(CHW, 3, 2, 4, 5) {
		t.Fatalf("len %d, want %d", len(b.Data), BatchDataLen(CHW, 3, 2, 4, 5))
	}
	for i := 0; i < b.N; i++ {
		img := b.Image(i)
		img.Set(1, 2, 3, float32(10+i))
	}
	for i := 0; i < b.N; i++ {
		want := float32(10 + i)
		if got := b.Data[i*b.Stride+b.Image(i).Index(1, 2, 3)]; got != want {
			t.Errorf("image %d: batch slab holds %v, want %v", i, got, want)
		}
	}
	// Views are capacity-clamped: appending to one slab must not be able
	// to overwrite the next image.
	s := b.Slab(0)
	if cap(s) != b.Stride {
		t.Errorf("slab cap %d leaks past the image boundary (stride %d)", cap(s), b.Stride)
	}
}

func TestBatchBlockedLayoutStride(t *testing.T) {
	// CHW4 with C=6 pads channels to 8: stride must be the physical
	// element count, not the logical one.
	b := NewBatch(CHW4, 2, 6, 3, 3)
	if want := DataLen(CHW4, 6, 3, 3); b.Stride != want {
		t.Fatalf("stride %d, want %d", b.Stride, want)
	}
	img := b.Image(1)
	img.Set(5, 2, 2, 7)
	if got := b.Image(1).At(5, 2, 2); got != 7 {
		t.Errorf("blocked view roundtrip got %v", got)
	}
}

func TestNewBatchWithValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBatchWith accepted a short buffer")
		}
	}()
	NewBatchWith(CHW, 2, 2, 2, 2, make([]float32, 15))
}

// TestConvertIntoOverImageViews: per-image ConvertInto applied to
// batch slab views (what program.ConvertBatchInto does) must land each
// image's conversion in its own slab, across every layout pair.
func TestConvertIntoOverImageViews(t *testing.T) {
	const n, c, h, w = 3, 5, 6, 7
	for _, from := range Layouts() {
		for _, to := range Layouts() {
			src := NewBatch(from, n, c, h, w)
			for i := 0; i < n; i++ {
				src.Image(i).FillRandom(int64(10*i + int(from)))
			}
			dst := NewBatch(to, n, c, h, w)
			for i := 0; i < n; i++ {
				ConvertInto(dst.Image(i), src.Image(i))
			}
			for i := 0; i < n; i++ {
				want := Convert(src.Image(i), to)
				if !AlmostEqual(dst.Image(i), want, 0) {
					t.Fatalf("%s→%s image %d: view conversion differs from per-image", from, to, i)
				}
			}
		}
	}
}
