package conv

import "pbqpdnn/internal/tensor"

// Reference computes the convolution with the textbook
// sum-of-single-channels algorithm (loop order M×C×H×W×K×K, paper §4) on
// a CHW input, producing a CHW output. It is both the evaluation
// baseline ("sum2d") and the correctness oracle for every other
// primitive.
func Reference(in *tensor.Tensor, k *Kernel, s Scenario) *tensor.Tensor {
	checkScenario(in, k, s)
	src := in
	if src.Layout != tensor.CHW {
		src = tensor.Convert(src, tensor.CHW)
	}
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	for m := 0; m < s.M; m++ {
		for c := 0; c < s.C; c++ {
			// Convolve one input channel with one kernel plane and
			// accumulate into output map m: the "sum of single channel
			// convolutions".
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc float32
					hb := y*s.Stride - s.Pad
					wb := x*s.Stride - s.Pad
					for kh := 0; kh < s.K; kh++ {
						ih := hb + kh
						if ih < 0 || ih >= s.H {
							continue
						}
						for kw := 0; kw < s.K; kw++ {
							iw := wb + kw
							if iw < 0 || iw >= s.W {
								continue
							}
							acc += src.At(c, ih, iw) * k.At(m, c, kh, kw)
						}
					}
					out.Data[(m*oh+y)*ow+x] += acc
				}
			}
		}
	}
	return out
}

// sum2dRun wraps Reference as a library primitive.
func sum2dRun(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "sum2d")
	return Reference(in, k, s)
}

// Sum2D returns the baseline primitive used for all speedup
// normalization in the paper's figures. It is deliberately
// single-threaded regardless of the threads argument, matching §5.2
// ("the textbook sum-of-single-channels algorithm, with single-threaded
// execution").
func Sum2D() *Primitive {
	return &Primitive{
		Name:      "sum2d",
		Family:    FamilySum2D,
		In:        tensor.CHW,
		Out:       tensor.CHW,
		VF:        1,
		Strided:   true,
		Workspace: func(Scenario) int64 { return 0 },
		Run:       sum2dRun,
	}
}
