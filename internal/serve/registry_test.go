package serve

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"pbqpdnn/internal/tensor"
)

func TestBatchBuckets(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
	}
	for _, c := range cases {
		if got := batchBuckets(c.max); !reflect.DeepEqual(got, c.want) {
			t.Errorf("batchBuckets(%d) = %v, want %v", c.max, got, c.want)
		}
	}
}

// TestModelEnginesPerBucket: LoadModel pre-compiles one engine per
// batch-size bucket, and EngineFor routes a flush size to the smallest
// covering bucket — never an under-planned program, never a fresh
// compilation on the dispatch path.
func TestModelEnginesPerBucket(t *testing.T) {
	m, err := LoadModel("micronet", Config{
		Threads: 1,
		Batch:   BatchOptions{MaxBatch: 6, MaxWait: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Batcher.Close()

	var got []int
	for _, e := range m.Engines {
		got = append(got, e.MaxBatch())
	}
	if want := []int{1, 2, 4, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket engines %v, want %v", got, want)
	}
	if m.Engine != m.Engines[0] || m.Engine.MaxBatch() != 1 {
		t.Error("Model.Engine is not the per-image bucket")
	}
	for n, wantBucket := range map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 6, 6: 6, 9: 6} {
		if got := m.EngineFor(n).MaxBatch(); got != wantBucket {
			t.Errorf("EngineFor(%d) planned for %d, want %d", n, got, wantBucket)
		}
	}
}

// TestModelDispatchesThroughBucketEngines drives enough concurrent
// traffic through the batcher to flush at several sizes and checks
// every request is answered correctly — the end-to-end proof that the
// per-batch-size cache serves mixed batch sizes.
func TestModelDispatchesThroughBucketEngines(t *testing.T) {
	m, err := LoadModel("micronet", Config{
		Threads: 1,
		Batch:   BatchOptions{MaxBatch: 4, MaxWait: 2 * time.Millisecond, QueueCap: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Batcher.Close()

	in := tensor.New(tensor.CHW, m.InC, m.InH, m.InW)
	in.FillRandom(3)
	want, err := m.Engine.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	const requests = 24
	var wg sync.WaitGroup
	errc := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := m.Batcher.Infer(context.Background(), in)
			if err != nil {
				errc <- err
				return
			}
			if !tensor.WithinRel(out, want, 1e-4) {
				errc <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	s := m.Metrics.Snapshot()
	if s.Served != requests {
		t.Fatalf("served %d of %d", s.Served, requests)
	}
	// ns/image must be populated for every dispatched batch size.
	for b, count := range s.BatchHist {
		if b == 0 || count == 0 {
			continue
		}
		if s.NsPerImageByBatch[b] <= 0 {
			t.Errorf("batch size %d dispatched %d times but ns_per_image_by_batch is empty", b, count)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "batched output diverges from per-image engine" }
