package exec

import (
	"fmt"
	"os"
	"testing"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// relTol is the acceptance tolerance for the engine-versus-Reference
// equivalence harness: the engine may pick up different-but-valid
// float summation orders through primitives and layout chains.
const relTol = 1e-4

func newInput(net *dnn.Graph, seed int64) *tensor.Tensor {
	l := net.Layers[0]
	in := tensor.New(tensor.CHW, l.OutC, l.OutH, l.OutW)
	in.FillRandom(seed)
	return in
}

// --- equivalence harness: Engine vs Reference ---

// testEngineAgainstReference runs the full chain on one network: a
// PBQP-optimized plan executed by the engine must compute the same
// function as the textbook reference executor — on both execution
// paths: the per-image batch-1 engine (calls chunked image by image)
// and the batched engine whose memory plan and kernels are sized to
// the whole minibatch.
func testEngineAgainstReference(t *testing.T, net *dnn.Graph, threads int, inputs []*tensor.Tensor) {
	t.Helper()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle once per distinct input (inputs may repeat to exercise the
	// batch dimension without paying for extra reference runs).
	want := map[*tensor.Tensor]*tensor.Tensor{}
	for _, in := range inputs {
		if _, ok := want[in]; !ok {
			ref, err := Reference(net, in, w)
			if err != nil {
				t.Fatal(err)
			}
			want[in] = ref
		}
	}
	for _, maxBatch := range []int{1, len(inputs)} {
		eng, err := NewEngineBatch(plan, w, maxBatch)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := eng.RunBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range inputs {
			if !tensor.WithinRel(outs[i], want[in], relTol) {
				t.Errorf("%s (threads=%d maxBatch=%d): batch image %d diverges from reference by %g",
					net.Name, threads, maxBatch, i, tensor.MaxRelDiff(outs[i], want[in]))
			}
		}
	}
}

// TestEngineMatchesReferenceTiny runs the harness at testable sizes on
// the inception-style DAG and the strided chain, with distinct images
// per batch slot so cross-image buffer mixing cannot cancel out.
func TestEngineMatchesReferenceTiny(t *testing.T) {
	for _, net := range []*dnn.Graph{tinyChain(), tinyDAG()} {
		for _, threads := range []int{1, 2, 4} {
			inputs := []*tensor.Tensor{
				newInput(net, 1), newInput(net, 2), newInput(net, 3), newInput(net, 4),
			}
			testEngineAgainstReference(t, net, threads, inputs)
		}
	}
}

// TestEngineConcatDeclaredOrder: concat argument order is channel
// order — a graph whose concat lists a higher-id branch first must
// execute in that declared order, not in layer-id order (regression:
// the IR compiler once sorted predecessors by id, silently permuting
// channels).
func TestEngineConcatDeclaredOrder(t *testing.T) {
	b, x := dnn.NewBuilder("swapped-cat", 3, 12, 12)
	a := b.Conv(x, "branch-a", 4, 3, 1, 1)
	c := b.Conv(x, "branch-b", 6, 3, 1, 1)
	x = b.Concat("cat", c, a) // declared order: higher-id branch first
	b.Softmax(x, "prob")
	net := b.Graph()
	for _, threads := range []int{1, 4} {
		testEngineAgainstReference(t, net, threads, []*tensor.Tensor{newInput(net, 31)})
	}
}

// vggStyle is a scaled-down VGG configuration: homogeneous 3×3
// convolution blocks with 2×2/2 pools and an FC tail.
func vggStyle() *dnn.Graph {
	b, x := dnn.NewBuilder("vgg-style", 3, 32, 32)
	maps := []int{8, 16}
	for blk, m := range maps {
		for i := 0; i < 2; i++ {
			x = b.Conv(x, name2("conv", blk, i), m, 3, 1, 1)
			x = b.ReLU(x, name2("relu", blk, i))
		}
		x = b.MaxPool(x, name2("pool", blk, 0), 2, 2, 0)
	}
	x = b.FC(x, "fc1", 32)
	x = b.ReLU(x, "fc1/relu")
	x = b.Dropout(x, "fc1/drop")
	x = b.FC(x, "fc2", 10)
	b.Softmax(x, "prob")
	return b.Graph()
}

// resnetStyle is a scaled-down residual network: basic blocks with
// identity and strided-projection shortcuts around elementwise adds.
func resnetStyle() *dnn.Graph {
	b, x := dnn.NewBuilder("resnet-style", 3, 24, 24)
	x = b.Conv(x, "stem", 8, 3, 1, 1)
	x = b.ReLU(x, "stem/relu")
	block := func(x int, name string, m, stride int) int {
		short := x
		if c, _, _ := b.Shape(x); stride != 1 || c != m {
			short = b.Conv(x, name+"/proj", m, 1, stride, 0)
		}
		y := b.Conv(x, name+"/conv1", m, 3, stride, 1)
		y = b.ReLU(y, name+"/relu1")
		y = b.Conv(y, name+"/conv2", m, 3, 1, 1)
		y = b.Add(name+"/add", y, short)
		return b.ReLU(y, name+"/relu2")
	}
	x = block(x, "res2a", 8, 1)
	x = block(x, "res2b", 8, 1)
	x = block(x, "res3a", 16, 2)
	x = block(x, "res3b", 16, 1)
	_, h, _ := b.Shape(x)
	x = b.AvgPool(x, "gap", h, 1, 0)
	x = b.FC(x, "fc", 10)
	b.Softmax(x, "prob")
	return b.Graph()
}

func name2(base string, blk, i int) string {
	return base + string(rune('a'+blk)) + string(rune('1'+i))
}

// TestEngineMatchesReferenceVGGAndResNetStyle covers the VGG (deep
// homogeneous chain) and ResNet (residual add junction) architecture
// shapes at sizes cheap enough to run everywhere, including -race.
func TestEngineMatchesReferenceVGGAndResNetStyle(t *testing.T) {
	for _, net := range []*dnn.Graph{vggStyle(), resnetStyle()} {
		for _, threads := range []int{1, 4} {
			inputs := []*tensor.Tensor{
				newInput(net, 10), newInput(net, 11), newInput(net, 12),
			}
			testEngineAgainstReference(t, net, threads, inputs)
		}
	}
}

// TestEngineMatchesReferenceFullModels is the acceptance gate: the
// compiled, batched, branch-parallel engine must match Reference within
// 1e-4 relative tolerance on the real full-size AlexNet, GoogLeNet and
// ResNet-18 at batch sizes 1, 3 and 8 — under the race detector too,
// where the parallel safety of the static slot plan is actually
// exercised. Each batch size selects its own per-bucket plan
// (selector.SelectBatch: batch-amortized node costs genuinely change
// the picked primitives) and compiles its own program (the memory plan
// is N-dependent: batched programs slot conv outputs and scale every
// slot by N), so this covers every plan a batch-aware serving registry
// would execute. (Full-size VGG is opt-in via DNNEXEC_FULL=1 — its
// reference execution alone runs minutes.) Batch slots repeat one
// image so the whole-model oracle runs once; distinct-image batch
// purity is covered by the tiny/scaled harnesses.
func TestEngineMatchesReferenceFullModels(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size model execution in -short mode")
	}
	names := []string{"alexnet", "googlenet", "resnet-18"}
	if os.Getenv("DNNEXEC_FULL") != "" {
		names = append(names, "vgg-b", "vgg-e")
	}
	for _, name := range names {
		g, err := models.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWeights(g)
		in := newInput(g, 42)
		ref, err := Reference(g, in, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 3, 8} {
			plan, err := selector.SelectBatch(g, batch, selector.Options{
				Prof: cost.NewModel(cost.IntelHaswell), Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Batch != batch {
				t.Fatalf("%s: bucket plan carries batch %d, want %d", name, plan.Batch, batch)
			}
			eng, err := NewEngineBatch(plan, w, batch)
			if err != nil {
				t.Fatal(err)
			}
			inputs := make([]*tensor.Tensor, batch)
			for i := range inputs {
				inputs[i] = in
			}
			outs, err := eng.RunBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range outs {
				if !tensor.WithinRel(outs[i], ref, relTol) {
					t.Errorf("%s batch=%d: image %d diverges from reference by %g",
						name, batch, i, tensor.MaxRelDiff(outs[i], ref))
				}
			}
		}
	}
}

// TestEngineDeterministicSingleThread: at Threads=1 the engine must be
// bitwise deterministic run to run, arena recycling included — on the
// per-image path and on the batched path (whose restructured kernels
// accumulate in a fixed order regardless of batch position). The pin
// is scoped to one GEMM microkernel variant at a time: the AVX2 and
// pure-Go packed microkernels associate partial products differently,
// so runs are bitwise repeatable only while dispatch stays on one
// variant — which is the deployment reality, since the variant is
// fixed at process start (CPUID + purego tag + DNN_NOSIMD). Outputs
// are deliberately NOT compared across the subtests.
func TestEngineDeterministicSingleThread(t *testing.T) {
	for _, variant := range gemm.PackedVariants() {
		t.Run("variant="+variant, func(t *testing.T) {
			prev := gemm.SetSIMD(variant == "avx2")
			defer gemm.SetSIMD(prev)
			testEngineDeterministicSingleThread(t)
		})
	}
}

func testEngineDeterministicSingleThread(t *testing.T) {
	for _, net := range []*dnn.Graph{tinyDAG(), resnetStyle()} {
		w := NewWeights(net)
		plan, err := selector.Select(net, selector.Options{
			Prof: cost.NewModel(cost.IntelHaswell), Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		inputs := []*tensor.Tensor{newInput(net, 7), newInput(net, 8)}
		for _, maxBatch := range []int{1, len(inputs)} {
			eng, err := NewEngineBatch(plan, w, maxBatch)
			if err != nil {
				t.Fatal(err)
			}
			first, err := eng.RunBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			second, err := eng.RunBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range first {
				for j := range first[i].Data {
					if first[i].Data[j] != second[i].Data[j] {
						t.Fatalf("%s (maxBatch=%d): image %d element %d differs across runs: %v vs %v",
							net.Name, maxBatch, i, j, first[i].Data[j], second[i].Data[j])
					}
				}
			}
		}
	}
}

// TestEngineChunksOversizedBatch: a RunBatch call larger than the
// engine's planned batch splits into maxBatch-sized chunks and still
// returns per-image outputs in input order.
func TestEngineChunksOversizedBatch(t *testing.T) {
	net := tinyDAG()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineBatch(plan, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*tensor.Tensor, 5)
	for i := range inputs {
		inputs[i] = newInput(net, int64(60+i))
	}
	outs, err := eng.RunBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(inputs) {
		t.Fatalf("%d outputs for %d inputs", len(outs), len(inputs))
	}
	for i, in := range inputs {
		want, err := Run(plan, in, w)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.WithinRel(outs[i], want, relTol) {
			t.Errorf("chunked image %d diverges by %g", i, tensor.MaxRelDiff(outs[i], want))
		}
	}
}

// TestEngineMatchesSequentialRun: the engine and the sequential oracle
// executor agree on the same plan (tighter than the Reference bound,
// since both execute identical primitives).
func TestEngineMatchesSequentialRun(t *testing.T) {
	net := tinyDAG()
	w := NewWeights(net)
	for _, m := range cost.Machines() {
		plan, err := selector.Select(net, selector.Options{Prof: cost.NewModel(m), Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(plan, w)
		if err != nil {
			t.Fatal(err)
		}
		in := newInput(net, 21)
		want, err := Run(plan, in, w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.WithinRel(got, want, 1e-6) {
			t.Errorf("%s: engine diverges from sequential Run by %g", m.Name, tensor.MaxRelDiff(got, want))
		}
	}
}

// TestEngineConcurrentRunBatch pins the concurrency contract the
// serving layer relies on: one shared Engine must produce correct,
// uncorrupted results when RunBatch (and Run) are called from many
// goroutines at once — sharing the compiled program, bound kernels and
// the internally synchronized arena. Staggered batch sizes plus a
// pre-warmed arena force cross-call buffer recycling, and per-image
// expected outputs catch any cross-call frame mixing; run under -race
// this is the regression test for the audit in the Engine doc comment.
func TestEngineConcurrentRunBatch(t *testing.T) {
	net := tinyDAG()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A batched engine shared across goroutines: concurrent dispatches
	// of varying sizes all land on the same compiled batch-3 program.
	eng, err := NewEngineBatch(plan, w, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Distinct inputs with sequentially computed expected outputs.
	const nInputs = 4
	inputs := make([]*tensor.Tensor, nInputs)
	want := make([]*tensor.Tensor, nInputs)
	for i := range inputs {
		inputs[i] = newInput(net, int64(50+i))
		want[i], err = Run(plan, inputs[i], w)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(inputs[0]); err != nil { // warm the arena
		t.Fatal(err)
	}

	const (
		goroutines = 8
		iters      = 4
	)
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for it := 0; it < iters; it++ {
				// Vary batch size and composition per goroutine and
				// iteration so concurrent calls check out different
				// frame shapes from the shared arena.
				batch := make([]*tensor.Tensor, 1+(g+it)%3)
				idx := make([]int, len(batch))
				for k := range batch {
					idx[k] = (g + it + k) % nInputs
					batch[k] = inputs[idx[k]]
				}
				outs, err := eng.RunBatch(batch)
				if err != nil {
					errc <- err
					return
				}
				for k := range outs {
					// relTol, not 1e-6: the batched engine's restructured
					// kernels (float32 Winograd pointwise GEMM) are held to
					// the library-wide equivalence bar, not bitwise parity
					// with the sequential executor.
					if !tensor.WithinRel(outs[k], want[idx[k]], relTol) {
						errc <- fmt.Errorf("goroutine %d iter %d: image %d diverges by %g",
							g, it, k, tensor.MaxRelDiff(outs[k], want[idx[k]]))
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}

// --- no-alias / no-mutation regression tests ---

// TestRunNeverAliasesCallerInput pins the copy-on-identity contract:
// mutating a returned output must never corrupt the caller's input,
// even for networks whose output is reached through identity layers
// (dropout) with no layout conversion in between.
func TestRunNeverAliasesCallerInput(t *testing.T) {
	b, x := dnn.NewBuilder("identity-net", 2, 4, 4)
	x = b.Dropout(x, "drop1")
	b.Dropout(x, "drop2")
	net := b.Graph()
	w := NewWeights(net)
	plan, err := selector.Baseline(net, selector.Options{Prof: zeroProfiler{}})
	if err != nil {
		t.Fatal(err)
	}

	runners := map[string]func(*tensor.Tensor) (*tensor.Tensor, error){
		"sequential": func(in *tensor.Tensor) (*tensor.Tensor, error) { return Run(plan, in, w) },
		"engine": func(in *tensor.Tensor) (*tensor.Tensor, error) {
			eng, err := NewEngine(plan, w)
			if err != nil {
				return nil, err
			}
			return eng.Run(in)
		},
	}
	for name, run := range runners {
		in := tensor.New(tensor.CHW, 2, 4, 4)
		in.FillRandom(3)
		pristine := in.Clone()
		out, err := run(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out.Data {
			out.Data[i] = -12345
		}
		for i := range in.Data {
			if in.Data[i] != pristine.Data[i] {
				t.Fatalf("%s: mutating the output corrupted the caller's input at %d", name, i)
			}
		}
		// The other direction: mutating the input after Run must not
		// change an already-returned output.
		out2, err := run(in)
		if err != nil {
			t.Fatal(err)
		}
		want := out2.Clone()
		for i := range in.Data {
			in.Data[i] = 999
		}
		for i := range out2.Data {
			if out2.Data[i] != want.Data[i] {
				t.Fatalf("%s: mutating the input corrupted a returned output at %d", name, i)
			}
		}
	}
}

// --- scheduler/arena plumbing ---

func TestEngineRejectsBadBatch(t *testing.T) {
	net := tinyChain()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{Prof: cost.NewModel(cost.IntelHaswell)})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(plan, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatch(nil); err == nil {
		t.Error("empty batch should fail")
	}
	bad := tensor.New(tensor.CHW, 3, 16, 16) // wrong channel count
	if _, err := eng.RunBatch([]*tensor.Tensor{bad}); err == nil {
		t.Error("mismatched input should fail")
	}
	// One bad input anywhere in the batch fails the whole batch.
	good := newInput(net, 1)
	if _, err := eng.RunBatch([]*tensor.Tensor{good, bad}); err == nil {
		t.Error("partially mismatched batch should fail")
	}
}

func TestNewEngineRejectsCorruptPlan(t *testing.T) {
	net := tinyChain()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{Prof: cost.NewModel(cost.IntelHaswell)})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a conv layer's recorded layout so primitive and plan
	// disagree.
	id := net.ConvLayers()[0]
	saved := plan.Layouts[id]
	plan.Layouts[id] = (saved + 1) % 8
	if _, err := NewEngine(plan, w); err == nil {
		t.Error("NewEngine should reject a plan whose layouts disagree with its primitives")
	}
	plan.Layouts[id] = saved
	if _, err := NewEngine(plan, w); err != nil {
		t.Errorf("restored plan should pass: %v", err)
	}
}

func TestArenaRecyclesAcrossRuns(t *testing.T) {
	net := tinyDAG()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(plan, w)
	if err != nil {
		t.Fatal(err)
	}
	in := newInput(net, 5)
	if _, err := eng.Run(in); err != nil {
		t.Fatal(err)
	}
	gets1, _ := eng.arena.stats()
	if gets1 == 0 {
		t.Fatal("engine did not allocate through the arena")
	}
	if _, err := eng.Run(in); err != nil {
		t.Fatal(err)
	}
	gets2, hits2 := eng.arena.stats()
	if hits2 == 0 {
		t.Errorf("second run recycled nothing (gets %d → %d, hits %d)", gets1, gets2, hits2)
	}
}

// TestArenaStableAcrossAlternatingBatchSizes pins the serving-path
// property: an engine's slot checkout is keyed by (slot capacity ×
// planned batch), not by the call's actual image count, so a server
// alternating between batch sizes recycles the same buffers instead of
// re-allocating per size. After the first (cold) call, every further
// RunBatch — whatever its size — must be all arena hits.
func TestArenaStableAcrossAlternatingBatchSizes(t *testing.T) {
	net := tinyDAG()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineBatch(plan, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*tensor.Tensor, 4)
	for i := range inputs {
		inputs[i] = newInput(net, int64(80+i))
	}
	if _, err := eng.RunBatch(inputs[:1]); err != nil { // cold call
		t.Fatal(err)
	}
	gets0, hits0 := eng.arena.stats()
	for _, n := range []int{4, 1, 3, 2, 4, 1} {
		if _, err := eng.RunBatch(inputs[:n]); err != nil {
			t.Fatal(err)
		}
	}
	gets1, hits1 := eng.arena.stats()
	if got, want := hits1-hits0, gets1-gets0; got != want {
		t.Errorf("alternating batch sizes recycled %d of %d checkouts; want all (realloc churn)", got, want)
	}
}

// TestArenaRecyclesExactSizes: checkout is keyed by exact element
// count and recycles released buffers verbatim (the arena does not
// zero — blocked-layout slot tenants clear their view on entry).
func TestArenaRecyclesExactSizes(t *testing.T) {
	a := newArena()
	buf := a.get(16)
	if len(buf) != 16 {
		t.Fatalf("got %d elements, want 16", len(buf))
	}
	a.put(buf)
	if got := a.get(24); len(got) != 24 {
		t.Fatalf("got %d elements, want 24", len(got))
	}
	got := a.get(16)
	if &got[0] != &buf[0] {
		t.Error("same-size checkout did not recycle the released buffer")
	}
	if gets, hits := a.stats(); gets != 3 || hits != 1 {
		t.Errorf("stats = %d gets, %d hits; want 3, 1", gets, hits)
	}
}

// TestArenaBoundsFreeLists: releasing more buffers than the per-size
// cap must drop the excess (a long-lived engine also receives buffers
// it never handed out — conv outputs, conversion temporaries — and
// must not hoard them without bound).
func TestArenaBoundsFreeLists(t *testing.T) {
	a := newArena()
	const n = defaultArenaDepth * 3
	for i := 0; i < n; i++ {
		a.put(make([]float32, 8))
	}
	recycled := 0
	for i := 0; i < n; i++ {
		a.get(8)
	}
	_, hits := a.stats()
	recycled = int(hits)
	if recycled > defaultArenaDepth {
		t.Errorf("arena recycled %d buffers of one size, cap is %d", recycled, defaultArenaDepth)
	}
	if recycled == 0 {
		t.Error("arena recycled nothing")
	}
}

// --- fast-path operators vs oracle operators, across layouts ---

func randomTensor(l tensor.Layout, c, h, w int, seed int64) *tensor.Tensor {
	t := tensor.New(l, c, h, w)
	t.FillRandom(seed)
	return t
}

func assertOpMatch(t *testing.T, op string, l tensor.Layout, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.WithinRel(got, want, 1e-6) {
		t.Errorf("%s in %s diverges from oracle by %g", op, l, tensor.MaxRelDiff(got, want))
	}
}

func TestFastPathsMatchOracleOperators(t *testing.T) {
	const C, H, W = 6, 9, 7
	for _, l := range tensor.Layouts() {
		in := randomTensor(l, C, H, W, int64(100+l))

		dst := tensor.New(l, C, H, W)
		program.ReLUInto(dst, in)
		assertOpMatch(t, "relu", l, dst, relu(in))

		dst = tensor.New(l, C, H, W)
		program.LRNInto(dst, in)
		assertOpMatch(t, "lrn", l, dst, lrn(in))

		dst = tensor.New(l, C, H, W)
		program.SoftmaxInto(dst, in)
		assertOpMatch(t, "softmax", l, dst, softmax(in))

		for _, pl := range []*dnn.Layer{
			{PoolK: 2, PoolStride: 2, PoolPad: 0},
			{PoolK: 3, PoolStride: 1, PoolPad: 1},
			{PoolK: 3, PoolStride: 2, PoolPad: 1},
		} {
			pl.OutC, pl.OutH, pl.OutW = C, poolDim(H, pl), poolDim(W, pl)
			for _, isMax := range []bool{true, false} {
				dst = tensor.New(l, pl.OutC, pl.OutH, pl.OutW)
				program.PoolInto(dst, in, pl, isMax)
				assertOpMatch(t, "pool", l, dst, pool(in, pl, isMax))
			}
		}

		ins := []*tensor.Tensor{
			randomTensor(l, 3, H, W, 201), randomTensor(l, 2, H, W, 202), randomTensor(l, 4, H, W, 203),
		}
		dst = tensor.New(l, 9, H, W)
		program.ConcatInto(dst, ins)
		assertOpMatch(t, "concat", l, dst, concat(ins, l))

		addIns := []*tensor.Tensor{in, randomTensor(l, C, H, W, 204)}
		dst = tensor.New(l, C, H, W)
		program.AddInto(dst, addIns)
		assertOpMatch(t, "add", l, dst, add(addIns, l))

		const outN = 5
		mat := make([]float32, outN*C*H*W)
		fillRandom(mat, 77)
		dst = tensor.New(l, outN, 1, 1)
		program.FCInto(dst, in, mat, outN)
		assertOpMatch(t, "fc", l, dst, fc(in, mat, outN))
	}
}

// TestInPlaceKernelsTolerateAliasing pins the in-place contract the
// memory planner relies on: ReLU, dropout-copy, two-input add and
// softmax must produce identical results when dst aliases their (first)
// input.
func TestInPlaceKernelsTolerateAliasing(t *testing.T) {
	const C, H, W = 6, 9, 7
	for _, l := range tensor.Layouts() {
		in := randomTensor(l, C, H, W, 300+int64(l))

		dst := in.Clone()
		program.ReLUInto(dst, dst)
		assertOpMatch(t, "relu-inplace", l, dst, relu(in))

		dst = in.Clone()
		program.CopyInto(dst, dst)
		assertOpMatch(t, "copy-inplace", l, dst, in)

		other := randomTensor(l, C, H, W, 305)
		dst = in.Clone()
		program.AddInto(dst, []*tensor.Tensor{dst, other})
		assertOpMatch(t, "add-inplace", l, dst, add([]*tensor.Tensor{in, other}, l))

		dst = in.Clone()
		program.SoftmaxInto(dst, dst)
		assertOpMatch(t, "softmax-inplace", l, dst, softmax(in))
	}
}

func poolDim(in int, l *dnn.Layer) int {
	return (in+2*l.PoolPad-l.PoolK)/l.PoolStride + 1
}

// TestFastPathsMixedLayoutInputs: concat and add must fall back to
// logical indexing when inputs arrive in layouts that differ from the
// destination.
func TestFastPathsMixedLayoutInputs(t *testing.T) {
	a := randomTensor(tensor.CHW, 3, 5, 4, 301)
	bb := tensor.Convert(randomTensor(tensor.CHW, 2, 5, 4, 302), tensor.HWC)
	dst := tensor.New(tensor.CHW, 5, 5, 4)
	program.ConcatInto(dst, []*tensor.Tensor{a, bb})
	want := concat([]*tensor.Tensor{a, bb}, tensor.CHW)
	assertOpMatch(t, "concat-mixed", tensor.CHW, dst, want)

	c := tensor.Convert(randomTensor(tensor.CHW, 3, 5, 4, 303), tensor.WHC)
	dst = tensor.New(tensor.CHW, 3, 5, 4)
	program.AddInto(dst, []*tensor.Tensor{a, c})
	wantAdd := add([]*tensor.Tensor{a, c}, tensor.CHW)
	assertOpMatch(t, "add-mixed", tensor.CHW, dst, wantAdd)
}

// TestResNet18Selection: the new residual workload must select and
// legalize end to end with a provably optimal PBQP solution.
func TestResNet18Selection(t *testing.T) {
	g, err := models.Build("resnet-18")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := selector.Select(g, selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Optimal {
		t.Error("solver failed to prove optimality on resnet-18")
	}
	if err := plan.Check(); err != nil {
		t.Error(err)
	}
	if len(plan.Primitives) != len(g.ConvLayers()) {
		t.Errorf("plan selects %d primitives for %d conv layers", len(plan.Primitives), len(g.ConvLayers()))
	}
}
