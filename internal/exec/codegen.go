package exec

import (
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
)

// GenerateProgram emits the plan as a readable call-sequence program,
// the textual analogue of the paper's "simple code generator which
// emitted calls to primitive operations in our library" (§5.2). It is
// a pretty-printer over the compiled Program IR — the very instruction
// stream the batched engine executes — so the listing shows, in
// execution order, every primitive invocation, every fused legalizing
// layout conversion, and the static memory plan (slot assignments,
// in-place execution, peak resident footprint).
func GenerateProgram(plan *selector.Plan) (string, error) {
	prog, err := program.Compile(plan)
	if err != nil {
		return "", err
	}
	return prog.Source(), nil
}
