package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces access-mode consistency for lock-free counters:
// a struct field whose address is ever passed to a sync/atomic function
// must be accessed through sync/atomic everywhere in the package — a
// single plain read or write tears the happens-before story the atomic
// calls were bought for. Element-wise atomics (&x.f[i], the scheduler's
// dependency counters) do not claim the whole field: the slice header
// is read plainly, only the elements are atomic.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "report plain accesses to fields that are accessed via sync/atomic",
	Run:  runAtomicField,
}

func runAtomicField(pkg *Package) []Diagnostic {
	atomicFields := map[types.Object]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}

	// Pass 1: find &x.f arguments to sync/atomic calls.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue // &x.f[i] and friends: per-element atomics
				}
				if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					atomicFields[s.Obj()] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selection of those fields is a plain access.
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal && atomicFields[s.Obj()] {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(sel.Pos()),
					Analyzer: "atomicfield",
					Message: "field " + s.Obj().Name() +
						" is accessed via sync/atomic elsewhere; plain access races",
				})
			}
			return true
		})
	}
	return diags
}

// isAtomicCall reports whether the call is a qualified sync/atomic
// function call (atomic.AddInt64 and friends, not atomic.Value
// methods).
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}
