package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pbqpdnn/internal/obs"
)

func TestPromEscape(t *testing.T) {
	if got := promEscape(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Errorf("promEscape = %q", got)
	}
}

// profiledTestRegistry hosts micronet with per-instruction profiling on
// every dispatch, so one inference populates /layers immediately.
func profiledTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry([]string{"micronet"}, Config{
		Threads:       2,
		ProfileSample: 1,
		Batch:         BatchOptions{MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	return reg
}

func inferOnce(t *testing.T, reg *Registry, srv *httptest.Server) {
	t.Helper()
	m, _ := reg.Get("micronet")
	resp := postInfer(t, srv, "/v1/models/micronet/infer",
		InferRequest{Data: make([]float32, m.InC*m.InH*m.InW)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsEndpoint scrapes GET /metrics after one served request and
// asserts the key series a Prometheus dashboard would alert on.
func TestMetricsEndpoint(t *testing.T) {
	reg := profiledTestRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()
	inferOnce(t, reg, srv)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		`dnn_uptime_seconds{model="micronet"}`,
		`dnn_requests_total{model="micronet",result="accepted"} 1`,
		`dnn_requests_total{model="micronet",result="served"} 1`,
		`dnn_requests_total{model="micronet",result="rejected"} 0`,
		`dnn_queue_depth{model="micronet"}`,
		`dnn_batches_total{model="micronet"} 1`,
		`dnn_batch_size_total{model="micronet",size="1"} 1`,
		`dnn_request_phase_seconds_bucket{model="micronet",phase="engine",le="+Inf"} 1`,
		`dnn_request_phase_seconds_count{model="micronet",phase="queue_wait"} 1`,
		`dnn_layer_observed_ns_total{model="micronet",batch="1",`,
		"# TYPE dnn_request_phase_seconds histogram",
		"# TYPE dnn_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Histogram buckets must be cumulative in le and end at _count.
	assertCumulativeBuckets(t, body, `phase="engine"`)
}

// assertCumulativeBuckets checks every dnn_request_phase_seconds_bucket
// line matching sel is non-decreasing in exposition order and that the
// +Inf bucket equals the series count.
func assertCumulativeBuckets(t *testing.T, body, sel string) {
	t.Helper()
	prev := -1.0
	last := -1.0
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "dnn_request_phase_seconds_bucket") || !strings.Contains(line, sel) {
			continue
		}
		n++
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q (%.0f after %.0f)", line, v, prev)
		}
		prev = v
		last = v
	}
	if n == 0 {
		t.Fatalf("no bucket lines match %q", sel)
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "dnn_request_phase_seconds_count") && strings.Contains(line, sel) {
			fields := strings.Fields(line)
			count, _ := strconv.ParseFloat(fields[len(fields)-1], 64)
			if count != last {
				t.Errorf("+Inf bucket %.0f != _count %.0f", last, count)
			}
			return
		}
	}
	t.Errorf("no _count line matches %q", sel)
}

// TestLayersEndpoint checks GET /layers serves the per-bucket
// predicted-vs-observed tables once a request has been sampled.
func TestLayersEndpoint(t *testing.T) {
	reg := profiledTestRegistry(t)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()
	inferOnce(t, reg, srv)

	resp, err := http.Get(srv.URL + "/layers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string][]*obs.LayerTable
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	tables := got["micronet"]
	if len(tables) == 0 {
		t.Fatal("no layer tables for micronet")
	}
	// One table per batch bucket (1, 2, 4 at MaxBatch 4), each sized to
	// its program; the batch-1 bucket served our request.
	if len(tables) != 3 {
		t.Errorf("%d tables, want 3 (buckets 1, 2, 4)", len(tables))
	}
	b1 := tables[0]
	if b1.Batch != 1 || b1.SampledChunks != 1 || b1.SampledImages != 1 {
		t.Errorf("batch-1 bucket: batch=%d chunks=%d images=%d, want 1/1/1",
			b1.Batch, b1.SampledChunks, b1.SampledImages)
	}
	if len(b1.Rows) == 0 {
		t.Fatal("batch-1 table has no rows")
	}
	convs := 0
	for _, r := range b1.Rows {
		if r.Primitive != "" {
			convs++
			if r.PredictedNSPerImage <= 0 {
				t.Errorf("conv row %s: no prediction joined", r.Layer)
			}
		}
	}
	if convs == 0 {
		t.Error("no conv rows with primitives in /layers output")
	}
}

// TestLayersEndpointDisabled: with ProfileSample 0 the endpoint serves
// an empty object, not an error.
func TestLayersEndpointDisabled(t *testing.T) {
	reg := newTestRegistry(t) // ProfileSample defaults to 0
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/layers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var got map[string][]*obs.LayerTable
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d entries with profiling disabled, want 0", len(got))
	}
}
