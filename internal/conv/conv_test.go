package conv

import (
	"testing"

	"pbqpdnn/internal/tensor"
)

// testScenarios is a grid covering strided/non-strided, padded/unpadded,
// small/large channel counts and the kernel sizes the networks use.
var testScenarios = []Scenario{
	{C: 1, H: 6, W: 6, Stride: 1, K: 1, M: 1, Pad: 0},
	{C: 3, H: 8, W: 8, Stride: 1, K: 3, M: 4, Pad: 1},
	{C: 4, H: 7, W: 9, Stride: 1, K: 3, M: 5, Pad: 0},
	{C: 8, H: 10, W: 10, Stride: 1, K: 5, M: 6, Pad: 2},
	{C: 5, H: 9, W: 9, Stride: 1, K: 5, M: 3, Pad: 0},
	{C: 3, H: 13, W: 13, Stride: 2, K: 3, M: 4, Pad: 1},
	{C: 3, H: 15, W: 15, Stride: 4, K: 11, M: 2, Pad: 0},
	{C: 9, H: 6, W: 6, Stride: 1, K: 1, M: 7, Pad: 0},
	{C: 16, H: 5, W: 5, Stride: 1, K: 3, M: 8, Pad: 1},
	{C: 2, H: 12, W: 7, Stride: 1, K: 7, M: 3, Pad: 3},
	{C: 6, H: 8, W: 8, Stride: 2, K: 5, M: 4, Pad: 2},
}

// tolFor scales the comparison tolerance with the reduction length,
// since float32 accumulation order differs between algorithms.
func tolFor(s Scenario) float64 {
	return 1e-4 * float64(s.C*s.K*s.K)
}

// TestAllPrimitivesMatchReference is the library-wide correctness gate:
// every primitive, on every scenario it supports, must agree with the
// textbook reference, in both single- and multi-threaded execution.
func TestAllPrimitivesMatchReference(t *testing.T) {
	lib := Library()
	if len(lib) == 0 {
		t.Fatal("empty library")
	}
	for _, s := range testScenarios {
		in := tensor.New(tensor.CHW, s.C, s.H, s.W)
		in.FillRandom(int64(s.C + s.H + s.K))
		k := NewKernel(s.M, s.C, s.K)
		k.FillRandom(int64(s.M * s.K))
		want := Reference(in, k, s)
		for _, p := range lib {
			if !p.Supports(s) {
				continue
			}
			src := tensor.Convert(in, p.In)
			for _, threads := range []int{1, 4} {
				got := p.Run(src, k, s, threads)
				if got.Layout != p.Out {
					t.Fatalf("%s: output layout %s, want %s", p.Name, got.Layout, p.Out)
				}
				if got.C != s.M || got.H != s.OutH() || got.W != s.OutW() {
					t.Fatalf("%s on %s: output shape %s", p.Name, s, got)
				}
				if d := tensor.MaxAbsDiff(got, want); d > tolFor(s) {
					t.Errorf("%s on %s (threads=%d): max diff %g > tol %g",
						p.Name, s, threads, d, tolFor(s))
				}
			}
		}
	}
}

// TestEveryScenarioHasCoverage makes sure the scenario grid actually
// exercises each family.
func TestEveryScenarioHasCoverage(t *testing.T) {
	lib := Library()
	covered := map[Family]int{}
	for _, s := range testScenarios {
		for _, p := range lib {
			if p.Supports(s) {
				covered[p.Family]++
			}
		}
	}
	for _, f := range Families() {
		if covered[f] == 0 {
			t.Errorf("family %s never exercised by test scenarios", f)
		}
	}
}

func TestLibrarySize(t *testing.T) {
	lib := Library()
	if len(lib) < 70 {
		t.Errorf("library has %d primitives; the paper's library has more than 70", len(lib))
	}
	names := map[string]bool{}
	for _, p := range lib {
		if names[p.Name] {
			t.Errorf("duplicate primitive name %q", p.Name)
		}
		names[p.Name] = true
		if p.Run == nil || p.Workspace == nil {
			t.Errorf("%s: missing Run or Workspace", p.Name)
		}
		if !p.In.Valid() || !p.Out.Valid() {
			t.Errorf("%s: invalid layouts", p.Name)
		}
		if p.VF != 1 && p.VF != 4 && p.VF != 8 {
			t.Errorf("%s: unexpected vector factor %d", p.Name, p.VF)
		}
	}
}

func TestLibraryFamilies(t *testing.T) {
	lib := Library()
	for _, f := range Families() {
		members := ByFamily(lib, f)
		if len(members) == 0 {
			t.Errorf("family %s has no primitives", f)
		}
		for _, p := range members {
			if p.Family != f {
				t.Errorf("ByFamily(%s) returned %s", f, p.Name)
			}
		}
	}
	// Winograd is the largest family, as in the paper.
	if w := len(ByFamily(lib, FamilyWinograd)); w < 20 {
		t.Errorf("winograd family has %d variants, want ≥ 20", w)
	}
}

func TestByName(t *testing.T) {
	lib := Library()
	p, err := ByName(lib, "sum2d")
	if err != nil || p.Name != "sum2d" {
		t.Fatalf("ByName(sum2d) = %v, %v", p, err)
	}
	if _, err := ByName(lib, "no-such"); err == nil {
		t.Error("ByName should fail for unknown primitive")
	}
}

func TestSupportsConstraints(t *testing.T) {
	lib := Library()
	strided := Scenario{C: 4, H: 8, W: 8, Stride: 2, K: 3, M: 4, Pad: 1}
	for _, p := range ByFamily(lib, FamilyKn2) {
		if p.Supports(strided) {
			t.Errorf("%s: kn2 must not support strided convolution", p.Name)
		}
	}
	for _, p := range ByFamily(lib, FamilyWinograd) {
		if p.Supports(strided) {
			t.Errorf("%s: winograd must not support strided convolution", p.Name)
		}
		k7 := Scenario{C: 4, H: 8, W: 8, Stride: 1, K: 7, M: 4, Pad: 3}
		if p.Supports(k7) {
			t.Errorf("%s: winograd supports only its own radix", p.Name)
		}
	}
	// Invalid scenarios are rejected by everyone.
	bad := Scenario{C: 0, H: 8, W: 8, Stride: 1, K: 3, M: 4}
	for _, p := range lib {
		if p.Supports(bad) {
			t.Errorf("%s: must reject invalid scenario", p.Name)
		}
	}
}

func TestScenarioGeometry(t *testing.T) {
	s := Scenario{C: 3, H: 227, W: 227, Stride: 4, K: 11, M: 96, Pad: 0}
	if s.OutH() != 55 || s.OutW() != 55 {
		t.Errorf("AlexNet conv1 output = %d×%d, want 55×55", s.OutH(), s.OutW())
	}
	s2 := Scenario{C: 64, H: 224, W: 224, Stride: 1, K: 3, M: 64, Pad: 1}
	if s2.OutH() != 224 || s2.OutW() != 224 {
		t.Errorf("VGG same-conv output = %d×%d, want 224×224", s2.OutH(), s2.OutW())
	}
	if s2.Flops() != 2*224*224*64*9*64 {
		t.Errorf("Flops = %g", s2.Flops())
	}
	if s2.InputBytes() != 64*224*224*4 {
		t.Errorf("InputBytes = %d", s2.InputBytes())
	}
	if s2.OutputBytes() != 64*224*224*4 {
		t.Errorf("OutputBytes = %d", s2.OutputBytes())
	}
	if s2.KernelBytes() != 64*64*9*4 {
		t.Errorf("KernelBytes = %d", s2.KernelBytes())
	}
}

func TestScenarioValidate(t *testing.T) {
	good := Scenario{C: 1, H: 4, W: 4, Stride: 1, K: 3, M: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	bads := []Scenario{
		{C: 0, H: 4, W: 4, Stride: 1, K: 3, M: 1},
		{C: 1, H: 4, W: 4, Stride: 0, K: 3, M: 1},
		{C: 1, H: 4, W: 4, Stride: 1, K: 3, M: 1, Pad: -1},
		{C: 1, H: 2, W: 2, Stride: 1, K: 5, M: 1},
		{C: 1, H: 4, W: 4, Stride: 1, K: 3, M: 1, Pad: 1, Sparsity: 1.5},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestKernelAccessors(t *testing.T) {
	k := NewKernel(2, 3, 3)
	k.Set(1, 2, 0, 1, 42)
	if k.At(1, 2, 0, 1) != 42 {
		t.Error("kernel Set/At mismatch")
	}
	k.FillRandom(1)
	k2 := NewKernel(2, 3, 3)
	k2.FillRandom(1)
	for i := range k.Data {
		if k.Data[i] != k2.Data[i] {
			t.Fatal("FillRandom not deterministic")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewKernel should panic on bad dims")
		}
	}()
	NewKernel(0, 1, 1)
}

func TestFillSparse(t *testing.T) {
	k := NewKernel(8, 8, 3)
	k.FillSparse(7, 0.8)
	zeros := 0
	for _, v := range k.Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(k.Data))
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("sparsity = %v, want ≈ 0.8", frac)
	}
}

// TestSparsePrimitivesOnSparseKernels runs the sparse routines on an
// actually sparse kernel and checks exactness.
func TestSparsePrimitivesOnSparseKernels(t *testing.T) {
	s := Scenario{C: 8, H: 9, W: 9, Stride: 1, K: 3, M: 6, Pad: 1}
	in := tensor.New(tensor.CHW, s.C, s.H, s.W)
	in.FillRandom(3)
	k := NewKernel(s.M, s.C, s.K)
	k.FillSparse(9, 0.7)
	want := Reference(in, k, s)
	for _, p := range sparsePrimitives() {
		got := p.Run(in, k, s, 1)
		if d := tensor.MaxAbsDiff(got, want); d > tolFor(s) {
			t.Errorf("%s: diff %g", p.Name, d)
		}
		if !p.Sparse {
			t.Errorf("%s should be marked Sparse", p.Name)
		}
	}
}

func TestFamilyString(t *testing.T) {
	want := map[Family]string{
		FamilySum2D: "sum2d", FamilyDirect: "direct", FamilyIm2: "im2",
		FamilyKn2: "kn2", FamilyWinograd: "winograd", FamilyFFT: "fft",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%v.String() = %q", uint8(f), f.String())
		}
	}
}

// TestWorkspaceOrdering pins Table 1's memory column: for a large-image
// layer, im2's workspace exceeds kn2's, and 1D Winograd needs less than
// 2D Winograd.
func TestWorkspaceOrdering(t *testing.T) {
	lib := Library()
	s := Scenario{C: 64, H: 112, W: 112, Stride: 1, K: 3, M: 128, Pad: 1}
	im2, _ := ByName(lib, "im2col-ab")
	kn2, _ := ByName(lib, "kn2row-ab")
	if im2.Workspace(s) <= kn2.Workspace(s) {
		t.Errorf("im2 workspace %d should exceed kn2 %d", im2.Workspace(s), kn2.Workspace(s))
	}
	w2d, _ := ByName(lib, "wino2d-m4-k3-vf4")
	w1d, _ := ByName(lib, "wino1d-m4-k3-vf4")
	if w1d.Workspace(s) >= w2d.Workspace(s) {
		t.Errorf("wino1d workspace %d should be below wino2d %d", w1d.Workspace(s), w2d.Workspace(s))
	}
	sum, _ := ByName(lib, "sum2d")
	if sum.Workspace(s) != 0 {
		t.Error("sum2d needs no workspace")
	}
}
