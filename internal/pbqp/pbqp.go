// Package pbqp implements a Partitioned Boolean Quadratic Programming
// solver in the style of Scholz/Eckstein and Hames/Scholz — the
// "off-the-shelf PBQP solver" the paper uses. A PBQP instance is a
// graph whose nodes carry cost vectors (one entry per possible
// assignment) and whose edges carry cost matrices indexed by the pair of
// endpoint assignments; the task is to pick one assignment per node
// minimizing the total of node and edge costs.
//
// The solver applies the optimality-preserving degree reductions R0
// (isolated node), RI (degree one) and RII (degree two) until the graph
// is empty, falling back to either the RN heuristic (fast, possibly
// suboptimal — the solution reports Optimal=false) or exact
// branch-and-bound when irreducible nodes remain. Like the paper's
// solver, it reports whether the returned solution is provably optimal.
package pbqp

import (
	"fmt"
	"math"
)

// Inf is the cost of a forbidden assignment pair (e.g. an unreachable
// layout conversion in the paper's DT graph).
var Inf = math.Inf(1)

// Matrix is a dense Rows×Cols cost matrix attached to an edge. Rows are
// indexed by the first endpoint's assignment, columns by the second's.
type Matrix struct {
	Rows, Cols int
	V          []float64
}

// NewMatrix allocates a zero cost matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("pbqp: invalid matrix %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, V: make([]float64, rows*cols)}
}

// At returns entry (i,j).
func (m *Matrix) At(i, j int) float64 { return m.V[i*m.Cols+j] }

// Set stores entry (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.V[i*m.Cols+j] = v }

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.V[j*m.Rows+i] = m.V[i*m.Cols+j]
		}
	}
	return t
}

// add accumulates o into m (same shape).
func (m *Matrix) add(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("pbqp: matrix shape mismatch in add")
	}
	for i := range m.V {
		m.V[i] += o.V[i]
	}
}

func (m *Matrix) clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, V: make([]float64, len(m.V))}
	copy(c.V, m.V)
	return c
}

// Graph is a PBQP instance under construction. Parallel edges are
// merged by summing their matrices, as the reduction algebra requires.
type Graph struct {
	costs [][]float64
	// adj[u][v] holds the edge matrix oriented with u's assignments as
	// rows; adj[v][u] holds the transposed view of the same values.
	adj []map[int]*Matrix
}

// NewGraph returns an empty instance.
func NewGraph() *Graph { return &Graph{} }

// AddNode appends a node with the given assignment cost vector and
// returns its id. The vector is copied.
func (g *Graph) AddNode(costs []float64) int {
	if len(costs) == 0 {
		panic("pbqp: node needs at least one assignment")
	}
	g.costs = append(g.costs, append([]float64(nil), costs...))
	g.adj = append(g.adj, map[int]*Matrix{})
	return len(g.costs) - 1
}

// NumNodes returns the number of nodes added so far.
func (g *Graph) NumNodes() int { return len(g.costs) }

// Degree returns the number of distinct neighbors of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// AddEdge attaches cost matrix m (rows = u's assignments, cols = v's)
// to the edge {u,v}, summing with any existing matrix on that edge.
func (g *Graph) AddEdge(u, v int, m *Matrix) {
	if u == v {
		panic("pbqp: self edge")
	}
	if u < 0 || v < 0 || u >= len(g.costs) || v >= len(g.costs) {
		panic(fmt.Sprintf("pbqp: edge (%d,%d) out of range", u, v))
	}
	if m.Rows != len(g.costs[u]) || m.Cols != len(g.costs[v]) {
		panic(fmt.Sprintf("pbqp: edge (%d,%d) matrix %d×%d does not match node domains %d,%d",
			u, v, m.Rows, m.Cols, len(g.costs[u]), len(g.costs[v])))
	}
	if ex := g.adj[u][v]; ex != nil {
		ex.add(m)
		g.adj[v][u].add(m.Transpose())
		return
	}
	g.adj[u][v] = m.clone()
	g.adj[v][u] = m.Transpose()
}

// Evaluate returns the total cost of a full assignment (selection[u] is
// node u's chosen index).
func (g *Graph) Evaluate(selection []int) float64 {
	if len(selection) != len(g.costs) {
		panic("pbqp: selection length mismatch")
	}
	total := 0.0
	for u, c := range g.costs {
		total += c[selection[u]]
	}
	for u := range g.costs {
		for v, m := range g.adj[u] {
			if u < v {
				total += m.At(selection[u], selection[v])
			}
		}
	}
	return total
}

// Solution is the solver's result.
type Solution struct {
	// Selection[u] is the chosen assignment index for node u.
	Selection []int
	// Cost is the total cost of the selection.
	Cost float64
	// Optimal reports whether the solution is provably optimal: true
	// when the instance was solved by R0–RII reductions alone or by
	// exact branch-and-bound.
	Optimal bool
	// Reductions counts applications of each reduction, keyed "R0",
	// "RI", "RII", "RN", "branch".
	Reductions map[string]int
}
