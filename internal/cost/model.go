package cost

import (
	"math"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/fft"
	"pbqpdnn/internal/tensor"
)

// Profiler prices primitives and layout transforms; it is the cost
// source consumed by the selector (paper §3.1). Implementations return
// seconds.
type Profiler interface {
	// Primitive returns the cost of executing p on scenario s with the
	// given thread count.
	Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64
	// Transform returns the cost of one direct layout transform applied
	// to a logical c×h×w tensor.
	Transform(tr tensor.Transform, c, h, w int) float64
}

// BatchProfiler is the batch-aware extension of the Profiler contract:
// it prices (primitive, scenario, N) triples, so the selector can solve
// a separate PBQP instance per serving batch bucket against costs that
// reflect batch amortization — the one-time kernel transform and pack
// work a batched implementation pays once per call, versus the
// streaming work it pays once per image. All three shipped profilers
// (the analytic Model, the wall-clock Measure, and the serialized
// Table) implement it; callers should go through PrimitiveN/TransformN,
// which fall back to linear scaling of the batch-1 cost for profilers
// that do not.
type BatchProfiler interface {
	Profiler
	// PrimitiveBatch returns the cost of executing p once over an
	// n-image minibatch (the whole batch, not per image).
	PrimitiveBatch(p *conv.Primitive, s conv.Scenario, threads, n int) float64
	// TransformBatch returns the cost of converting an n-image batch of
	// logical c×h×w tensors in one fused batched call.
	TransformBatch(tr tensor.Transform, c, h, w, n int) float64
}

// EpilogueProfiler is the optional fusion-aware extension of the
// Profiler contract: it prices the time a primitive saves by folding a
// single elementwise consumer (relu, residual add) into its output
// writeback instead of leaving it as a separate streaming pass over the
// output slab. The selector subtracts this credit from the node cost of
// every fusion-capable candidate whose layer feeds exactly one
// elementwise consumer, so re-selection can shift toward primitives the
// fusion pass can actually fuse.
type EpilogueProfiler interface {
	// EpilogueSaving returns the seconds saved per call by fusing one
	// elementwise epilogue into p's writeback, for an n-image batch.
	EpilogueSaving(p *conv.Primitive, s conv.Scenario, n int) float64
}

// EpilogueSavingN returns the fusion credit for p on s over an n-image
// batch, or 0 when the profiler has no epilogue model or the primitive
// cannot fuse (no credit may ever be claimed the fusion pass cannot
// realize).
func EpilogueSavingN(prof Profiler, p *conv.Primitive, s conv.Scenario, n int) float64 {
	if p == nil || !p.CanFuseEpilogue() {
		return 0
	}
	if ep, ok := prof.(EpilogueProfiler); ok {
		if n < 1 {
			n = 1
		}
		return ep.EpilogueSaving(p, s, n)
	}
	return 0
}

// PrimitiveN prices p over an n-image minibatch through prof,
// dispatching to the batch-aware contract when the profiler supports it
// and otherwise scaling the batch-1 cost linearly — the conservative
// model for a profiler that never saw a batch.
func PrimitiveN(prof Profiler, p *conv.Primitive, s conv.Scenario, threads, n int) float64 {
	if n <= 1 {
		return prof.Primitive(p, s, threads)
	}
	if bp, ok := prof.(BatchProfiler); ok {
		return bp.PrimitiveBatch(p, s, threads, n)
	}
	return float64(n) * prof.Primitive(p, s, threads)
}

// TransformN prices one layout conversion of an n-image batch through
// prof, with the same linear-scaling fallback as PrimitiveN.
func TransformN(prof Profiler, tr tensor.Transform, c, h, w, n int) float64 {
	if n <= 1 {
		return prof.Transform(tr, c, h, w)
	}
	if bp, ok := prof.(BatchProfiler); ok {
		return bp.TransformBatch(tr, c, h, w, n)
	}
	return float64(n) * prof.Transform(tr, c, h, w)
}

// Model is the analytic machine-model profiler. It is deterministic:
// the same (machine, primitive, scenario) triple always produces the
// same cost, which keeps the experiment harness reproducible.
type Model struct {
	M Machine
}

// NewModel returns an analytic profiler for the given machine.
func NewModel(m Machine) *Model { return &Model{M: m} }

// perCallOverhead is the fixed dispatch cost of one primitive call.
const perCallOverhead = 3e-6

// algOps estimates the arithmetic operation count of primitive p on
// scenario s. GEMM-based and direct families perform the full
// O(H'W'CK²M) work; Winograd and FFT are the "fast" algorithms whose
// operation counts genuinely shrink (paper §4).
func algOps(p *conv.Primitive, s conv.Scenario) float64 {
	oh, ow := float64(s.OutH()), float64(s.OutW())
	c, m := float64(s.C), float64(s.M)
	switch {
	case p.Family == conv.FamilyWinograd && p.Wino2D:
		wm, wr := float64(p.WinoM), float64(p.WinoR)
		t := wm + wr - 1
		tiles := math.Ceil(oh/wm) * math.Ceil(ow/wm)
		inputTrans := tiles * c * 4 * t * t * t
		pointwise := tiles * 2 * c * m * t * t
		outputTrans := tiles * m * 4 * wm * t * t
		kernelTrans := m * c * 2 * t * t * wr
		return inputTrans + pointwise + outputTrans + kernelTrans
	case p.Family == conv.FamilyWinograd:
		wm, wr := float64(p.WinoM), float64(p.WinoR)
		t := wm + wr - 1
		tilesX := math.Ceil(ow / wm)
		rows := oh
		inputTrans := rows * tilesX * c * wr * 2 * t * t
		pointwise := rows * tilesX * 2 * m * c * wr * t
		outputTrans := rows * tilesX * m * 2 * wm * t
		kernelTrans := m * c * wr * 2 * t * wr
		return inputTrans + pointwise + outputTrans + kernelTrans
	case p.Family == conv.FamilyFFT:
		n := float64(fft.NextPow2(s.W + 2*s.Pad + s.K - 1))
		lg := math.Log2(n)
		fwdRows := c * float64(s.H) * 5 * n * lg
		kernels := m * c * float64(s.K) * 5 * n * lg
		pointwise := m * oh * c * float64(s.K) * 8 * n
		inverse := m * oh * 5 * n * lg
		if p.Name == "fft1d-naive" {
			// Recomputes both spectra per (m,row,c,kh) quadruple.
			fwdRows = m * oh * c * float64(s.K) * 2 * 5 * n * lg
			kernels = 0
		}
		return fwdRows + kernels + pointwise + inverse
	default:
		ops := s.Flops()
		if p.Sparse && s.Sparsity > 0 {
			ops *= 1 - s.Sparsity
			ops += float64(s.M) * float64(s.C) * float64(s.K*s.K) * 2 // CSR build
		}
		return ops
	}
}

// vectorUtil returns the fraction of the machine's SIMD lanes a
// primitive with vector factor vf sustains. A VF wider than the machine
// is emulated with spill to stack, halving throughput — this is what
// steers the optimizer to VF4 variants on NEON and VF8 on AVX2.
func vectorUtil(vf, width int) float64 {
	if vf >= width {
		u := 1.0
		if vf > width {
			u = 0.55
		}
		return u
	}
	return float64(vf) / float64(width)
}

// parallelFraction is the parallelizable share of a primitive's runtime
// (Amdahl). The sum2d baseline is single-threaded by construction
// (paper §5.2).
func parallelFraction(p *conv.Primitive) float64 {
	switch p.Family {
	case conv.FamilySum2D:
		return 0
	case conv.FamilyIm2:
		return 0.88
	case conv.FamilyKn2:
		return 0.87
	case conv.FamilyWinograd:
		return 0.86
	case conv.FamilyFFT:
		return 0.85
	default:
		return 0.88
	}
}

// setupOps is the batch-invariant share of algOps: work a batched
// implementation performs once per call rather than once per image.
// For Winograd that is the kernel transform (the batched wino2d entry
// computes U once and streams it over every tile of every image); for
// the precomputing FFT variants it is the kernel spectra. GEMM-based
// and direct families have no algorithmic setup counted in algOps, so
// their batch economy comes from the amortized dispatch overhead (and,
// for memory, the kernel tensor being read once per call).
func setupOps(p *conv.Primitive, s conv.Scenario) float64 {
	c, m := float64(s.C), float64(s.M)
	switch {
	case p.Family == conv.FamilyWinograd && p.Wino2D:
		wm, wr := float64(p.WinoM), float64(p.WinoR)
		t := wm + wr - 1
		return m * c * 2 * t * t * wr
	case p.Family == conv.FamilyWinograd:
		wm, wr := float64(p.WinoM), float64(p.WinoR)
		t := wm + wr - 1
		return m * c * wr * 2 * t * wr
	case p.Family == conv.FamilyFFT && p.Name != "fft1d-naive":
		n := float64(fft.NextPow2(s.W + 2*s.Pad + s.K - 1))
		return m * c * float64(s.K) * 5 * n * math.Log2(n)
	}
	return 0
}

// time is the shared roofline core: max(compute, memory) for the given
// total operation count and memory traffic, with effMul scaling the
// sustained efficiency (1 for per-image execution; the batched path
// passes the calibrated batchGain uplift). The cache-thrash penalty is
// computed on the *per-image* working set: the batched implementations
// stream the batch axis (GEMM panels, per-image tile transforms), so
// the cache-resident inner-loop footprint does not grow with N.
func (mo *Model) time(p *conv.Primitive, s conv.Scenario, threads int, ops, traffic, effMul float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > mo.M.Cores {
		threads = mo.M.Cores
	}
	eff := baseEff(p) * scenarioEffMod(p, s) * mo.M.EffScale * vectorUtil(p.VF, mo.M.VecWidth) * effMul
	peak1 := mo.M.FreqGHz * 1e9 * float64(mo.M.VecWidth) * 2
	f := parallelFraction(p)
	scale := (1 - f) + f/float64(threads)
	computeTime := ops * scale / (peak1 * eff)

	// Cache-thrash penalty: when the algorithm's working set exceeds the
	// per-thread share of the last-level cache, its inner loops stall on
	// misses. This is the mechanism behind the paper's ARM-vs-Intel
	// Winograd dimensionality split (Figure 4).
	ws := p.Workspace(s)
	budget := mo.M.LLC
	if threads > 1 {
		budget = mo.M.LLC / int64(threads)
	}
	if ratio := float64(ws) / float64(budget); ratio > 1 {
		computeTime *= 1 + mo.M.ThrashKappa*(ratio-1)
	}

	memTime := traffic / (mo.M.MemBW * 1e9)
	return math.Max(computeTime, memTime)
}

// Primitive implements Profiler with the roofline-style model
// max(compute, memory) plus fixed overhead.
func (mo *Model) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	ops := algOps(p, s)
	traffic := float64(s.InputBytes() + s.OutputBytes() + s.KernelBytes() + 2*p.Workspace(s))
	if s.Batch > 1 {
		ops *= float64(s.Batch)
		traffic *= float64(s.Batch)
	}
	return mo.time(p, s, threads, ops, traffic, 1) + perCallOverhead
}

// PrimitiveBatch implements BatchProfiler with batch-amortization
// terms. A primitive with a real batched entry point pays its setup
// work (Winograd kernel transform, FFT kernel spectra), its kernel
// traffic and the dispatch overhead once per call, and only the
// per-image streaming work N times. A primitive without one executes
// through the per-image fallback — N independent dispatches with
// nothing amortized — so its batched cost scales linearly, which is
// exactly what makes the cost-optimal choice batch-dependent.
func (mo *Model) PrimitiveBatch(p *conv.Primitive, s conv.Scenario, threads, n int) float64 {
	if n <= 1 {
		return mo.Primitive(p, s, threads)
	}
	// A scenario carrying its own legacy Batch parameter (the §8
	// minibatch-in-the-scenario encoding) must not be amortized a
	// second time against the bucket size: price it linearly through
	// Primitive, which already scales by s.Batch.
	if s.Batch > 1 {
		return float64(n) * mo.Primitive(p, s, threads)
	}
	if p.RunBatch == nil {
		return float64(n) * mo.Primitive(p, s, threads)
	}
	setup := setupOps(p, s)
	perImage := algOps(p, s) - setup
	ops := setup + float64(n)*perImage
	ws := p.Workspace(s)
	traffic := float64(n)*float64(s.InputBytes()+s.OutputBytes()+2*ws) + float64(s.KernelBytes())
	effMul := 1 + batchGain(p)*(1-1/float64(n))
	return mo.time(p, s, threads, ops, traffic, effMul) + perCallOverhead
}

// EpilogueSaving implements EpilogueProfiler. A standalone elementwise
// pass streams the output slab through memory twice (read + write) and
// pays one dispatch; fusing it into the producing kernel's writeback
// makes both disappear — the epilogue is applied to rows already
// resident in registers. Scenarios carrying the legacy in-scenario
// batch encoding are priced conservatively at zero: their per-image
// amortization is already folded into Primitive and a second credit
// would double-count.
func (mo *Model) EpilogueSaving(p *conv.Primitive, s conv.Scenario, n int) float64 {
	if p == nil || !p.CanFuseEpilogue() || s.Batch > 1 {
		return 0
	}
	if n < 1 {
		n = 1
	}
	bytes := 2 * float64(n) * float64(s.OutputBytes())
	return bytes/(mo.M.MemBW*1e9) + perCallOverhead
}

// Transform implements Profiler. Layout permutations are strided
// gather/scatter traffic with poor locality, so their effective
// bandwidth is a small fraction of streaming bandwidth — the reason DT
// costs can dominate small layers (paper §5.8, the GoogleNet direct
// slowdown).
func (mo *Model) Transform(tr tensor.Transform, c, h, w int) float64 {
	bytes := float64(tensor.DataLen(tr.From, c, h, w)+tensor.DataLen(tr.To, c, h, w)) * 4
	return bytes*(transformFactor(tr)/16)/(mo.M.GatherBW*1e9) + 2e-6
}

// TransformBatch implements BatchProfiler. The executor fuses an
// edge's whole conversion chain into one batched call striding image by
// image, so gather/scatter traffic scales with n while the dispatch
// overhead is paid once per batch.
func (mo *Model) TransformBatch(tr tensor.Transform, c, h, w, n int) float64 {
	if n <= 1 {
		return mo.Transform(tr, c, h, w)
	}
	bytes := float64(n) * float64(tensor.DataLen(tr.From, c, h, w)+tensor.DataLen(tr.To, c, h, w)) * 4
	return bytes*(transformFactor(tr)/16)/(mo.M.GatherBW*1e9) + 2e-6
}
