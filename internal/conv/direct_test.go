package conv

import (
	"testing"

	"pbqpdnn/internal/tensor"
)

// diracKernel returns a kernel whose only non-zero tap is the center of
// plane (m=c), so a same-padded convolution is the identity on the
// first min(C,M) channels.
func diracKernel(m, c, k int) *Kernel {
	kr := NewKernel(m, c, k)
	for i := 0; i < m && i < c; i++ {
		kr.Set(i, i, k/2, k/2, 1)
	}
	return kr
}

// TestDirectIdentityKernel: with a Dirac kernel every direct variant
// must reproduce its input exactly — catches indexing bugs that random
// comparisons can average away.
func TestDirectIdentityKernel(t *testing.T) {
	s := Scenario{C: 4, H: 9, W: 7, Stride: 1, K: 3, M: 4, Pad: 1}
	k := diracKernel(4, 4, 3)
	base := tensor.New(tensor.CHW, 4, 9, 7)
	base.FillRandom(13)
	for _, p := range directPrimitives() {
		if !p.Supports(s) {
			continue
		}
		in := tensor.Convert(base, p.In)
		out := p.Run(in, k, s, 1)
		if !tensor.AlmostEqual(out, base, 1e-6) {
			t.Errorf("%s: Dirac kernel is not identity (diff %g)",
				p.Name, tensor.MaxAbsDiff(out, base))
		}
	}
}

// TestDirectShiftKernel: a kernel with its tap at the top-left corner
// shifts the image; verifies padding coordinates of every variant.
func TestDirectShiftKernel(t *testing.T) {
	s := Scenario{C: 1, H: 6, W: 6, Stride: 1, K: 3, M: 1, Pad: 1}
	k := NewKernel(1, 1, 3)
	k.Set(0, 0, 0, 0, 1) // top-left tap: out(y,x) = in(y-1, x-1)
	base := tensor.New(tensor.CHW, 1, 6, 6)
	base.FillRandom(3)
	want := Reference(base, k, s)
	// Spot-check the semantics itself once.
	if want.At(0, 3, 3) != base.At(0, 2, 2) {
		t.Fatal("reference shift semantics wrong")
	}
	if want.At(0, 0, 0) != 0 {
		t.Fatal("reference padding semantics wrong")
	}
	for _, p := range directPrimitives() {
		if !p.Supports(s) {
			continue
		}
		out := p.Run(tensor.Convert(base, p.In), k, s, 1)
		if !tensor.AlmostEqual(out, want, 1e-6) {
			t.Errorf("%s: shifted output wrong", p.Name)
		}
	}
}

// TestDirectStride3 covers an odd stride that the shared scenario grid
// does not.
func TestDirectStride3(t *testing.T) {
	s := Scenario{C: 2, H: 11, W: 11, Stride: 3, K: 3, M: 3, Pad: 1}
	in := tensor.New(tensor.CHW, 2, 11, 11)
	in.FillRandom(8)
	k := NewKernel(3, 2, 3)
	k.FillRandom(9)
	want := Reference(in, k, s)
	if want.H != 4 || want.W != 4 {
		t.Fatalf("stride-3 output %dx%d, want 4x4", want.H, want.W)
	}
	for _, p := range directPrimitives() {
		if !p.Supports(s) {
			continue
		}
		out := p.Run(tensor.Convert(in, p.In), k, s, 2)
		if d := tensor.MaxAbsDiff(out, want); d > tolFor(s) {
			t.Errorf("%s: stride-3 diff %g", p.Name, d)
		}
	}
}

// TestDirectThreadCountInvariance: results must be bit-identical across
// thread counts for the same variant (each output element is written by
// exactly one goroutine with a deterministic accumulation order).
func TestDirectThreadCountInvariance(t *testing.T) {
	s := Scenario{C: 3, H: 10, W: 10, Stride: 1, K: 3, M: 5, Pad: 1}
	in := tensor.New(tensor.CHW, 3, 10, 10)
	in.FillRandom(21)
	k := NewKernel(5, 3, 3)
	k.FillRandom(22)
	for _, p := range directPrimitives() {
		if !p.Supports(s) {
			continue
		}
		src := tensor.Convert(in, p.In)
		ref := p.Run(src, k, s, 1)
		for _, threads := range []int{2, 3, 8} {
			out := p.Run(src, k, s, threads)
			if !tensor.AlmostEqual(out, ref, 0) {
				t.Errorf("%s: threads=%d changed the result", p.Name, threads)
			}
		}
	}
}

// TestDirectRejectsWrongLayout: every variant must panic rather than
// silently misread data in the wrong layout.
func TestDirectRejectsWrongLayout(t *testing.T) {
	s := Scenario{C: 2, H: 4, W: 4, Stride: 1, K: 1, M: 2}
	k := NewKernel(2, 2, 1)
	for _, p := range directPrimitives() {
		wrong := tensor.CHW
		if p.In == tensor.CHW {
			wrong = tensor.HWC
		}
		in := tensor.New(wrong, 2, 4, 4)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: accepted %s input (wants %s)", p.Name, wrong, p.In)
				}
			}()
			p.Run(in, k, s, 1)
		}()
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, threads := range []int{0, 1, 2, 7, 64} {
		const n = 23
		hits := make([]int32, n)
		parallelFor(threads, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, h)
			}
		}
	}
	// Zero-size loops are fine.
	parallelFor(4, 0, func(int) { t.Fatal("must not be called") })
}
