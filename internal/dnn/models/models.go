// Package models reconstructs the public network architectures the
// paper evaluates (§5.2): AlexNet, the VGG B/C/D/E configurations
// (hand-reconstructed exactly following Simonyan & Zisserman, as the
// paper itself did for the unreleased variants), and GoogleNet with all
// nine inception modules.
package models

import (
	"fmt"

	"pbqpdnn/internal/dnn"
)

// Names lists the evaluation networks. The first six are the paper's
// (§5.2); resnet-18 is a post-paper workload exercising residual
// (elementwise-add) shortcuts. Experiments and benchmarks that iterate
// Names regenerate paper artifacts, so the demo-scale serving
// workloads live in DemoNames instead — Build accepts both.
func Names() []string {
	return []string{"alexnet", "vgg-b", "vgg-c", "vgg-d", "vgg-e", "googlenet", "resnet-18"}
}

// DemoNames lists the demo-scale workloads for serving smoke tests and
// load generation, where a full ImageNet network would drown the
// effect being measured.
func DemoNames() []string {
	return []string{"smallnet", "micronet"}
}

// Build returns the named network, or an error for unknown names.
func Build(name string) (*dnn.Graph, error) {
	switch name {
	case "alexnet":
		return AlexNet(), nil
	case "vgg-b":
		return VGG('B'), nil
	case "vgg-c":
		return VGG('C'), nil
	case "vgg-d":
		return VGG('D'), nil
	case "vgg-e":
		return VGG('E'), nil
	case "googlenet":
		return GoogleNet(), nil
	case "resnet-18":
		return ResNet18(), nil
	case "smallnet":
		return SmallNet(), nil
	case "micronet":
		return MicroNet(), nil
	}
	return nil, fmt.Errorf("models: unknown network %q (have %v and demo nets %v)",
		name, Names(), DemoNames())
}

// AlexNet is the BVLC Caffe AlexNet: five convolutions (K=11 δ=4, K=5,
// then three K=3) and three FC layers. Grouped convolutions are modeled
// as full convolutions, as the paper's scenario tuple has no group
// parameter.
func AlexNet() *dnn.Graph {
	b, x := dnn.NewBuilder("alexnet", 3, 227, 227)
	x = b.Conv(x, "conv1", 96, 11, 4, 0)
	x = b.ReLU(x, "relu1")
	x = b.LRN(x, "norm1")
	x = b.MaxPool(x, "pool1", 3, 2, 0)
	x = b.Conv(x, "conv2", 256, 5, 1, 2)
	x = b.ReLU(x, "relu2")
	x = b.LRN(x, "norm2")
	x = b.MaxPool(x, "pool2", 3, 2, 0)
	x = b.Conv(x, "conv3", 384, 3, 1, 1)
	x = b.ReLU(x, "relu3")
	x = b.Conv(x, "conv4", 384, 3, 1, 1)
	x = b.ReLU(x, "relu4")
	x = b.Conv(x, "conv5", 256, 3, 1, 1)
	x = b.ReLU(x, "relu5")
	x = b.MaxPool(x, "pool5", 3, 2, 0)
	x = b.FC(x, "fc6", 4096)
	x = b.ReLU(x, "relu6")
	x = b.Dropout(x, "drop6")
	x = b.FC(x, "fc7", 4096)
	x = b.ReLU(x, "relu7")
	x = b.Dropout(x, "drop7")
	x = b.FC(x, "fc8", 1000)
	b.Softmax(x, "prob")
	return b.Graph()
}

// vggBlock appends n K×K convolutions of m maps followed by a 2×2/2 max
// pool. k1 positions (1-based from the end) use 1×1 convolutions — the
// VGG-C peculiarity.
func vggBlock(b *dnn.Builder, x int, block string, m, n int, oneByOneLast bool) int {
	for i := 1; i <= n; i++ {
		k, pad := 3, 1
		if oneByOneLast && i == n {
			k, pad = 1, 0
		}
		x = b.Conv(x, fmt.Sprintf("conv%s_%d", block, i), m, k, 1, pad)
		x = b.ReLU(x, fmt.Sprintf("relu%s_%d", block, i))
	}
	return b.MaxPool(x, "pool"+block, 2, 2, 0)
}

// VGG builds configuration B, C, D or E from the VGG paper's Table 1.
func VGG(config byte) *dnn.Graph {
	var per [5]int  // convs per block
	var one [5]bool // last conv of block is 1×1 (config C)
	switch config {
	case 'B':
		per = [5]int{2, 2, 2, 2, 2}
	case 'C':
		per = [5]int{2, 2, 3, 3, 3}
		one = [5]bool{false, false, true, true, true}
	case 'D':
		per = [5]int{2, 2, 3, 3, 3}
	case 'E':
		per = [5]int{2, 2, 4, 4, 4}
	default:
		panic(fmt.Sprintf("models: unknown VGG config %q", config))
	}
	b, x := dnn.NewBuilder(fmt.Sprintf("vgg-%c", config+'a'-'A'), 3, 224, 224)
	maps := [5]int{64, 128, 256, 512, 512}
	for blk := 0; blk < 5; blk++ {
		x = vggBlock(b, x, fmt.Sprintf("%d", blk+1), maps[blk], per[blk], one[blk])
	}
	x = b.FC(x, "fc6", 4096)
	x = b.ReLU(x, "relu6")
	x = b.Dropout(x, "drop6")
	x = b.FC(x, "fc7", 4096)
	x = b.ReLU(x, "relu7")
	x = b.Dropout(x, "drop7")
	x = b.FC(x, "fc8", 1000)
	b.Softmax(x, "prob")
	return b.Graph()
}

// inception appends one GoogleNet inception module: four parallel
// branches (1×1; 1×1→3×3; 1×1→5×5; 3×3 maxpool→1×1) concatenated along
// channels. This is the Figure 3 DAG structure whose layout decisions
// make the selection problem hard.
func inception(b *dnn.Builder, x int, name string, b1, b2r, b2, b3r, b3, b4 int) int {
	p1 := b.Conv(x, name+"/1x1", b1, 1, 1, 0)
	p1 = b.ReLU(p1, name+"/relu_1x1")

	p2 := b.Conv(x, name+"/3x3_reduce", b2r, 1, 1, 0)
	p2 = b.ReLU(p2, name+"/relu_3x3_reduce")
	p2 = b.Conv(p2, name+"/3x3", b2, 3, 1, 1)
	p2 = b.ReLU(p2, name+"/relu_3x3")

	p3 := b.Conv(x, name+"/5x5_reduce", b3r, 1, 1, 0)
	p3 = b.ReLU(p3, name+"/relu_5x5_reduce")
	p3 = b.Conv(p3, name+"/5x5", b3, 5, 1, 2)
	p3 = b.ReLU(p3, name+"/relu_5x5")

	p4 := b.MaxPool(x, name+"/pool", 3, 1, 1)
	p4 = b.Conv(p4, name+"/pool_proj", b4, 1, 1, 0)
	p4 = b.ReLU(p4, name+"/relu_pool_proj")

	return b.Concat(name+"/output", p1, p2, p3, p4)
}

// GoogleNet is the 2014 ILSVRC GoogleNet (inference path, auxiliary
// classifiers omitted): 57 convolution layers across a stem and nine
// inception modules.
func GoogleNet() *dnn.Graph {
	b, x := dnn.NewBuilder("googlenet", 3, 224, 224)
	x = b.Conv(x, "conv1/7x7_s2", 64, 7, 2, 3)
	x = b.ReLU(x, "conv1/relu_7x7")
	x = b.MaxPool(x, "pool1/3x3_s2", 3, 2, 0)
	x = b.LRN(x, "pool1/norm1")
	x = b.Conv(x, "conv2/3x3_reduce", 64, 1, 1, 0)
	x = b.ReLU(x, "conv2/relu_3x3_reduce")
	x = b.Conv(x, "conv2/3x3", 192, 3, 1, 1)
	x = b.ReLU(x, "conv2/relu_3x3")
	x = b.LRN(x, "conv2/norm2")
	x = b.MaxPool(x, "pool2/3x3_s2", 3, 2, 0)

	x = inception(b, x, "inception_3a", 64, 96, 128, 16, 32, 32)
	x = inception(b, x, "inception_3b", 128, 128, 192, 32, 96, 64)
	x = b.MaxPool(x, "pool3/3x3_s2", 3, 2, 0)

	x = inception(b, x, "inception_4a", 192, 96, 208, 16, 48, 64)
	x = inception(b, x, "inception_4b", 160, 112, 224, 24, 64, 64)
	x = inception(b, x, "inception_4c", 128, 128, 256, 24, 64, 64)
	x = inception(b, x, "inception_4d", 112, 144, 288, 32, 64, 64)
	x = inception(b, x, "inception_4e", 256, 160, 320, 32, 128, 128)
	x = b.MaxPool(x, "pool4/3x3_s2", 3, 2, 0)

	x = inception(b, x, "inception_5a", 256, 160, 320, 32, 128, 128)
	x = inception(b, x, "inception_5b", 384, 192, 384, 48, 128, 128)
	x = b.AvgPool(x, "pool5/7x7_s1", 7, 1, 0)
	x = b.Dropout(x, "pool5/drop_7x7_s1")
	x = b.FC(x, "loss3/classifier", 1000)
	b.Softmax(x, "prob")
	return b.Graph()
}

// SmallNet is a demo-scale inception-style network (3×32×32 input, one
// two-branch module, 10-way classifier): big enough to exercise
// branch-parallel scheduling, layout conversions, and every wildcard
// operator, small enough that one inference runs in about a
// millisecond — the serving subsystem's default workload, where the
// dynamic batcher's amortization is visible rather than drowned by a
// full ImageNet network's compute.
func SmallNet() *dnn.Graph {
	b, x := dnn.NewBuilder("smallnet", 3, 32, 32)
	x = b.Conv(x, "stem", 8, 3, 1, 1)
	x = b.ReLU(x, "stem/relu")
	x = b.MaxPool(x, "pool1", 2, 2, 0) // 16×16

	p1 := b.Conv(x, "mix/1x1", 8, 1, 1, 0)
	p1 = b.ReLU(p1, "mix/relu_1x1")
	p2 := b.Conv(x, "mix/3x3_reduce", 4, 1, 1, 0)
	p2 = b.Conv(p2, "mix/3x3", 8, 3, 1, 1)
	p2 = b.ReLU(p2, "mix/relu_3x3")
	x = b.Concat("mix/output", p1, p2) // 16 channels

	x = b.MaxPool(x, "pool2", 2, 2, 0) // 8×8
	x = b.Conv(x, "conv3", 16, 3, 1, 1)
	x = b.ReLU(x, "conv3/relu")
	x = b.AvgPool(x, "gap", 8, 1, 0)
	x = b.FC(x, "fc", 10)
	b.Softmax(x, "prob")
	return b.Graph()
}

// MicroNet is the smallest serving workload: a three-convolution chain
// on a 3×16×16 input. It exists for CI smoke tests that must boot a
// server, run one inference, and exit in well under a second.
func MicroNet() *dnn.Graph {
	b, x := dnn.NewBuilder("micronet", 3, 16, 16)
	x = b.Conv(x, "c1", 4, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.Conv(x, "c2", 8, 3, 2, 1) // 8×8
	x = b.ReLU(x, "r2")
	x = b.MaxPool(x, "p1", 2, 2, 0) // 4×4
	x = b.Conv(x, "c3", 8, 3, 1, 1)
	x = b.AvgPool(x, "gap", 4, 1, 0)
	x = b.FC(x, "fc", 10)
	b.Softmax(x, "prob")
	return b.Graph()
}

// basicBlock appends one ResNet basic block (two 3×3 convolutions with
// a shortcut add). With stride > 1 or a channel change, the shortcut is
// a 1×1 strided projection convolution; otherwise it is the identity.
// Batch normalization is folded away — inference weights are fabricated
// anyway, and layer runtime does not depend on weight values.
func basicBlock(b *dnn.Builder, x int, name string, m, stride int) int {
	short := x
	if c, _, _ := b.Shape(x); stride != 1 || c != m {
		short = b.Conv(x, name+"/proj", m, 1, stride, 0)
	}
	y := b.Conv(x, name+"/conv1", m, 3, stride, 1)
	y = b.ReLU(y, name+"/relu1")
	y = b.Conv(y, name+"/conv2", m, 3, 1, 1)
	y = b.Add(name+"/add", y, short)
	return b.ReLU(y, name+"/relu2")
}

// ResNet18 is the 18-layer residual network of He et al. (CVPR 2016),
// inference path: a 7×7/2 stem, four stages of two basic blocks each
// (64, 128, 256, 512 maps; stages 2–4 downsample by 2 with projection
// shortcuts), global average pooling and a 1000-way classifier. It is
// not part of the paper's evaluation set; it exercises the residual
// add junctions the batched executor schedules as a DAG.
func ResNet18() *dnn.Graph {
	b, x := dnn.NewBuilder("resnet-18", 3, 224, 224)
	x = b.Conv(x, "conv1", 64, 7, 2, 3)
	x = b.ReLU(x, "conv1/relu")
	// Caffe ceil-mode pooling: 3×3/2 unpadded over 112 already yields
	// the canonical 56×56 stage-2 extent.
	x = b.MaxPool(x, "pool1", 3, 2, 0)

	maps := []int{64, 128, 256, 512}
	for stage, m := range maps {
		for blk := 0; blk < 2; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			x = basicBlock(b, x, fmt.Sprintf("res%d_%d", stage+2, blk+1), m, stride)
		}
	}

	_, h, _ := b.Shape(x)
	x = b.AvgPool(x, "pool5", h, 1, 0)
	x = b.FC(x, "fc1000", 1000)
	b.Softmax(x, "prob")
	return b.Graph()
}
