// Command dnnserver serves PBQP-optimized networks over HTTP with
// dynamic batching: every hosted model is selected and compiled exactly
// once at startup, then concurrent requests are collected into
// minibatches that share one compiled-program dispatch
// (exec.Engine.RunBatch).
//
// Serve:
//
//	dnnserver -models smallnet,alexnet -addr :8080
//	curl localhost:8080/models
//	curl -d '{"data":[...]}' localhost:8080/v1/models/smallnet/infer
//	curl localhost:8080/stats
//
// Observability: GET /metrics exposes the serving counters in
// Prometheus text format and GET /layers the per-layer
// predicted-vs-observed execution profile (sampled 1-in-N per
// -profile-sample). -debug-addr starts a second listener carrying
// net/http/pprof and expvar, kept off the serving address so profiling
// endpoints are never internet-facing by accident:
//
//	dnnserver -models smallnet -addr :8080 -debug-addr 127.0.0.1:6060
//	curl localhost:8080/metrics
//	curl localhost:6060/debug/pprof/profile?seconds=5 > cpu.pb.gz
//
// Load generation (the EXPERIMENTS.md acceptance run) drives N
// closed-loop clients in process — first through the dynamic batcher,
// then through a naive goroutine-per-request Engine.Run baseline — and
// prints achieved batch sizes and latency percentiles side by side:
//
//	dnnserver -loadgen -models smallnet -clients 16 -requests 16
//
// Selection uses the analytic Intel Haswell cost model unless -costs
// points at a serialized cost table (see examples/deploy for the §4
// profile-once-ship-the-table deployment story).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnnserver: ")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	debugAddr := flag.String("debug-addr", "",
		"optional second listen address for net/http/pprof and expvar (empty = disabled); keep it loopback-only in production")
	profileSample := flag.Int("profile-sample", 16,
		"per-instruction execution profiling: time one dispatched minibatch in every N (1 = every batch, 0 = disabled); tables on GET /layers")
	modelList := flag.String("models", "smallnet",
		fmt.Sprintf("comma-separated models to host (from %v)",
			append(models.Names(), models.DemoNames()...)))
	threads := flag.Int("threads", 0, "selection thread budget per engine (0 = GOMAXPROCS)")
	costsPath := flag.String("costs", "", "optional serialized cost table (JSON) to drive selection instead of the analytic model")
	calibrate := flag.Bool("calibrate", false,
		"calibrate-on-start: measure the real primitives at every batch bucket and select against the measured table; with -costs the table is persisted there and reused on restart")
	calReps := flag.Int("calibrate-reps", 1, "calibration: best-of repetitions per measurement")
	calTopK := flag.Int("calibrate-top", 4, "calibration: measure only the analytic model's k cheapest candidates per layer per bucket")

	maxBatch := flag.Int("max-batch", 8, "flush a minibatch at this many pending requests")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "flush a partial minibatch once its oldest request has waited this long")
	queueCap := flag.Int("queue", 0, "admission queue bound; overflow is rejected with 429 (0 = 4×max-batch)")
	inflight := flag.Int("inflight", 1, "concurrent engine dispatches per model")

	loadgen := flag.Bool("loadgen", false, "run the in-process load generator instead of serving, then exit")
	clients := flag.Int("clients", 16, "loadgen: concurrent clients")
	requests := flag.Int("requests", 16, "loadgen: requests per client")
	interval := flag.Duration("interval", 0,
		"loadgen: per-client arrival period for open-loop load (0 = closed loop); offered rps = clients/interval")
	deadline := flag.Duration("deadline", 0,
		"loadgen: per-request completion budget (0 = none); the batcher enforces it, the naive baseline is merely judged by it")
	jsonOut := flag.Bool("json", false, "loadgen: emit machine-readable JSON instead of the table")
	flag.Parse()

	// Validate everything up front: model selection and compilation can
	// take minutes per hosted network, so a typo'd model name or a
	// nonsense knob must fail before the registry starts, not after.
	names := strings.Split(*modelList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if err := validateModels(names); err != nil {
		log.Fatal(err)
	}
	for _, f := range [...]struct {
		name string
		val  int
		min  int
	}{
		{"-max-batch", *maxBatch, 1},
		{"-inflight", *inflight, 1},
		{"-threads", *threads, 0},
		{"-queue", *queueCap, 0},
		{"-profile-sample", *profileSample, 0},
		{"-calibrate-reps", *calReps, 1},
		{"-calibrate-top", *calTopK, 0},
		{"-clients", *clients, 1},
		{"-requests", *requests, 1},
	} {
		if f.val < f.min {
			log.Fatalf("%s %d: want ≥ %d", f.name, f.val, f.min)
		}
	}
	if *maxWait <= 0 {
		log.Fatalf("-max-wait %v: want a positive duration", *maxWait)
	}

	cfg := serve.Config{
		Threads:       *threads,
		ProfileSample: *profileSample,
		Batch: serve.BatchOptions{
			MaxBatch:    *maxBatch,
			MaxWait:     *maxWait,
			QueueCap:    *queueCap,
			MaxInFlight: *inflight,
		},
	}
	switch {
	case *calibrate:
		// Calibrate-on-start: the registry measures (or, when the file
		// already exists, reloads) the table itself.
		cfg.Calibrate = true
		cfg.TablePath = *costsPath
		cfg.CalibrateReps = *calReps
		cfg.CalibrateTopK = *calTopK
	case *costsPath != "":
		f, err := os.Open(*costsPath)
		if err != nil {
			log.Fatal(err)
		}
		table, err := cost.LoadTable(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading cost table %s: %v", *costsPath, err)
		}
		cfg.Prof = table
	}

	if *loadgen {
		// Loadgen drives exactly one model; don't pay selection and
		// compilation for the rest of the list.
		names = names[:1]
	}
	start := time.Now()
	reg, err := serve.NewRegistry(names, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range reg.Names() {
		m, _ := reg.Get(name)
		log.Printf("loaded %s: %d layers, input %d×%d×%d, pbqp optimal=%v",
			name, m.Net.NumLayers(), m.InC, m.InH, m.InW, m.Plan().Optimal)
	}
	log.Printf("registry ready in %v", time.Since(start).Round(time.Millisecond))

	if *loadgen {
		o := serve.LoadOptions{
			Clients: *clients, PerClient: *requests,
			Interval: *interval, Deadline: *deadline,
		}
		if err := runLoadgen(reg, names[0], o, *jsonOut); err != nil {
			log.Fatal(err)
		}
		reg.Close()
		return
	}

	serve.PublishExpvar(reg)
	if *debugAddr != "" {
		go func() {
			// A nil handler serves http.DefaultServeMux, which carries
			// the net/http/pprof handlers (via the blank import) and
			// expvar's /debug/vars — a separate listener so profiling
			// endpoints never share the serving address.
			log.Printf("debug endpoints (pprof, expvar) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewServer(reg))
	mux.Handle("GET /debug/vars", expvar.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}

	// Graceful drain: stop accepting connections, finish in-flight
	// HTTP requests, then drain every model's admitted batches.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down: draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		reg.Close()
	}()

	log.Printf("serving %v on %s", reg.Names(), *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// runLoadgen runs the acceptance comparison: dynamic batching versus a
// naive goroutine-per-request baseline on the same compiled engine.
func runLoadgen(reg *serve.Registry, model string, o serve.LoadOptions, jsonOut bool) error {
	m, ok := reg.Get(model)
	if !ok {
		return fmt.Errorf("model %q not hosted", model)
	}
	if o.Interval > 0 {
		log.Printf("open-loop: offering %.0f req/s for ~%v%s",
			float64(o.Clients)/o.Interval.Seconds(),
			(time.Duration(o.PerClient) * o.Interval).Round(time.Millisecond),
			deadlineNote(o.Deadline))
	}
	batched, err := serve.LoadTest(m, o)
	if err != nil {
		return err
	}
	naive, err := serve.NaiveLoadTest(m, o)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]serve.LoadReport{"batched": batched, "naive": naive})
	}
	fmt.Print(serve.FormatLoadComparison(model, batched, naive))
	if batched.Served == 0 || naive.Served == 0 {
		fmt.Printf("\nno latency comparison: served batched %d, naive %d — "+
			"lower the offered load or raise -deadline\n", batched.Served, naive.Served)
		return nil
	}
	fmt.Printf("\nmean latency (served): batched %v vs naive %v (%.2f× better), mean batch %.2f\n",
		batched.MeanLatency.Round(10*time.Microsecond),
		naive.MeanLatency.Round(10*time.Microsecond),
		float64(naive.MeanLatency)/float64(batched.MeanLatency),
		batched.MeanBatch)
	return nil
}

// validateModels rejects unknown model names before the registry pays
// for selection and compilation, listing every buildable network.
func validateModels(names []string) error {
	known := append(models.Names(), models.DemoNames()...)
	sort.Strings(known)
	set := make(map[string]bool, len(known))
	for _, n := range known {
		set[n] = true
	}
	for _, n := range names {
		if n == "" {
			return fmt.Errorf("-models: empty model name in list")
		}
		if !set[n] {
			return fmt.Errorf("unknown model %q (have %s)", n, strings.Join(known, ", "))
		}
	}
	return nil
}

func deadlineNote(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return fmt.Sprintf(", %v deadline per request", d)
}
