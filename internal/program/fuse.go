package program

import (
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// fuseInstructions is the instruction-fusion pass. It runs on the raw
// emitted stream — after every layer and legalized conversion has its
// instruction, before linking and liveness — and rewrites two
// patterns:
//
//   - Epilogue fusion: an elementwise consumer (ReLU, or a residual
//     Add with exactly one convolution producer) whose producer has no
//     other consumer is folded into the producing conv/FC instruction
//     as a gemm.Epilogue, so the output slab is written exactly once.
//     A ReLU over an already-fused EpiAdd convolution upgrades it to
//     EpiAddReLU. FC instructions take EpiReLU only.
//
//   - Conversion absorption: a single-step legalized conversion whose
//     sole consumer is a convolution's data input is absorbed into the
//     convolution's patch-building pack (CvtIn) when the primitive's
//     layout-general packer can gather the source layout directly.
//     Batched programs only — per-image primitives allocate and
//     convert on their original path.
//
// The merged instruction takes the epilogue's stream position (both
// the convolution's input and the residual operand topologically
// precede the epilogue, so the stream stays ordered), keeps the
// convolution's Layer (its costed scenario), and takes the fused-away
// layer's Name — the value it produces is that layer's value. The
// producer's old position is tombstoned and the stream compacted.
//
// Legality is local and conservative: the producer must have exactly
// one consumer (its value is never observable elsewhere), and the
// producer, residual and epilogue must agree physically on layout and
// element count. Slot soundness needs no extra rule: liveness runs
// after fusion, the residual stays an Args entry of the merged
// instruction (so it stays live through it), and OpConv never donates,
// so the merged instruction cannot overwrite its residual's buffer.
func (p *Program) fuseInstructions() {
	dead := make([]bool, len(p.Instrs))
	for {
		uses, consumer := p.usage(dead)
		mutated := false
		for j := range p.Instrs {
			if dead[j] {
				continue
			}
			if p.tryFuseEpilogue(j, dead, uses) || p.tryAbsorbConversion(j, dead, uses, consumer) {
				mutated = true
				break
			}
		}
		if !mutated {
			break
		}
	}
	p.compact(dead)
}

// usage counts, over the live instructions, how many times each value
// is consumed; consumer[v] is the sole consuming instruction when
// uses[v] == 1, else -1.
func (p *Program) usage(dead []bool) (uses, consumer []int) {
	n := len(p.Instrs)
	uses = make([]int, n)
	consumer = make([]int, n)
	for v := range consumer {
		consumer[v] = -1
	}
	for j := range p.Instrs {
		if dead[j] {
			continue
		}
		for _, a := range p.Instrs[j].Args {
			uses[a]++
			if uses[a] == 1 {
				consumer[a] = j
			} else {
				consumer[a] = -1
			}
		}
	}
	return uses, consumer
}

// tryFuseEpilogue folds the elementwise instruction at j into its
// producing conv/FC instruction, placing the merged instruction at j.
func (p *Program) tryFuseEpilogue(j int, dead []bool, uses []int) bool {
	e := &p.Instrs[j]
	if j == p.Output {
		// The network output must stay a fresh caller-owned allocation
		// produced by its own instruction.
		return false
	}
	var c, r int // producer value, residual value (-1 when none)
	var epi gemm.Epilogue
	switch e.Op {
	case OpReLU:
		c, r = e.Args[0], -1
		if uses[c] != 1 {
			return false
		}
		ci := &p.Instrs[c]
		switch {
		case ci.Op == OpConv && ci.Epi == gemm.EpiNone:
			epi = gemm.EpiReLU
		case ci.Op == OpConv && ci.Epi == gemm.EpiAdd:
			epi = gemm.EpiAddReLU
		case ci.Op == OpFC && ci.Epi == gemm.EpiNone:
			epi = gemm.EpiReLU
		default:
			return false
		}
	case OpAdd:
		if len(e.Args) != 2 {
			return false
		}
		c, r = -1, -1
		for k, a := range e.Args {
			ai := &p.Instrs[a]
			if ai.Op == OpConv && ai.Epi == gemm.EpiNone && uses[a] == 1 && c < 0 {
				c = a
				r = e.Args[1-k]
			}
		}
		if c < 0 {
			return false
		}
		epi = gemm.EpiAdd
	default:
		return false
	}
	ci := &p.Instrs[c]
	// Physical agreement: the merged instruction writes e's value into
	// ci's output geometry, and the residual is read slab-for-slab.
	if ci.Layout != e.Layout || ci.DataLen() != e.DataLen() {
		return false
	}
	if r >= 0 {
		if ri := &p.Instrs[r]; ri.Layout != e.Layout || ri.DataLen() != e.DataLen() {
			return false
		}
	}
	merged := *ci
	merged.ID = j
	merged.Name = e.Name
	merged.Epi = epi
	merged.EpiLayers = append(append([]*dnn.Layer(nil), ci.EpiLayers...), e.Layer)
	merged.Args = append([]int(nil), ci.Args...)
	if r >= 0 {
		merged.Args = []int{ci.Args[0], r}
	}
	p.Instrs[j] = merged
	dead[c] = true
	return true
}

// tryAbsorbConversion absorbs the single-step conversion at j into its
// sole consumer's convolution pack.
func (p *Program) tryAbsorbConversion(j int, dead []bool, uses, consumer []int) bool {
	v := &p.Instrs[j]
	if v.Op != OpConvert || p.Batch < 2 || len(v.Chain) != 1 {
		return false
	}
	if uses[j] != 1 || consumer[j] < 0 {
		return false
	}
	ki := &p.Instrs[consumer[j]]
	// Input side only: the residual operand of a fused EpiAdd is read
	// slab-for-slab by the epilogue, not gathered by the packer.
	if ki.Op != OpConv || len(ki.CvtIn) > 0 || len(ki.Args) == 0 || ki.Args[0] != j {
		return false
	}
	t := v.Chain[0]
	if t.To != ki.Prim.In || !ki.Prim.CanAbsorbInput(t.From) {
		return false
	}
	ki.CvtIn = []tensor.Transform{t}
	ki.Args[0] = v.Args[0]
	dead[j] = true
	return true
}

// compact removes tombstoned instructions, renumbers ids and argument
// references, and rebuilds the layer→instruction map (fused-away
// layers map to the instruction that carries them).
func (p *Program) compact(dead []bool) {
	remap := make([]int, len(p.Instrs))
	live := 0
	for i := range p.Instrs {
		if dead[i] {
			remap[i] = -1
			continue
		}
		remap[i] = live
		live++
	}
	out := make([]Instr, 0, live)
	for i := range p.Instrs {
		if dead[i] {
			continue
		}
		ins := p.Instrs[i]
		ins.ID = remap[i]
		for k, a := range ins.Args {
			ins.Args[k] = remap[a]
		}
		out = append(out, ins)
	}
	p.Instrs = out
	p.Output = remap[p.Output]
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Op == OpConvert {
			continue
		}
		p.InstrOf[ins.Layer.ID] = i
		for _, fl := range ins.EpiLayers {
			p.InstrOf[fl.ID] = i
		}
	}
}
