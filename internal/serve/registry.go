package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// Config configures model loading for a Registry.
type Config struct {
	// Threads is the selection-time thread budget per engine (the
	// engine itself caps its pool at GOMAXPROCS). Default: GOMAXPROCS.
	Threads int

	// Prof prices primitives and transforms during plan selection.
	// Default: the analytic Intel Haswell model. A deployment can pass
	// a cost.Table loaded from a serialized profile (examples/deploy's
	// §4 story) so the PBQP solve uses on-device measurements without
	// ever executing a primitive at startup.
	Prof cost.Profiler

	// Batch tunes every model's dynamic batcher.
	Batch BatchOptions
}

func (c *Config) defaults() {
	if c.Threads < 1 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Prof == nil {
		c.Prof = cost.NewModel(cost.IntelHaswell)
	}
}

// Model is one served network: its graph, the PBQP-selected plan, the
// per-batch-size program cache compiled from it (shared by all
// requests), and the dynamic batcher feeding those engines.
type Model struct {
	Name    string
	Net     *dnn.Graph
	Plan    *selector.Plan
	Weights *exec.Weights

	// Engine is the per-image (batch-1) engine: the naive
	// goroutine-per-request baseline path and the singleton-flush
	// fallback. It is Engines[0].
	Engine *exec.Engine
	// Engines is the per-batch-size program cache, ascending by
	// MaxBatch: one plan selection, one engine per batch-size bucket
	// (1, 2, 4, … MaxBatch). The program's memory plan is N-dependent
	// — slot frames scale with N and batched programs slot conv
	// outputs — so each bucket pre-plans its own program and the
	// dynamic batcher always dispatches into one that was compiled for
	// at least the flushed size.
	Engines []*exec.Engine

	Batcher *Batcher
	Metrics *Metrics

	InC, InH, InW    int // network input shape
	OutC, OutH, OutW int // network output shape
}

// batchBuckets enumerates the program-cache bucket sizes for a batcher
// limit: powers of two up to maxBatch, plus maxBatch itself.
func batchBuckets(maxBatch int) []int {
	var bs []int
	for b := 1; b < maxBatch; b *= 2 {
		bs = append(bs, b)
	}
	return append(bs, maxBatch)
}

// EngineFor returns the cached engine whose planned batch is the
// smallest bucket that fits n (the largest bucket for oversized n,
// which the engine then chunks).
func (m *Model) EngineFor(n int) *exec.Engine {
	for _, e := range m.Engines {
		if e.MaxBatch() >= n {
			return e
		}
	}
	return m.Engines[len(m.Engines)-1]
}

// LoadModel builds, selects, and compiles one named network (see
// models.Names) and wraps it in a running batcher. Selection happens
// exactly once; compilation happens once per batch-size bucket, all at
// startup, so no request ever waits on planning. The batcher routes
// every flush to the bucket engine covering its size.
func LoadModel(name string, cfg Config) (*Model, error) {
	cfg.defaults()
	bo := cfg.Batch
	bo.defaults()
	net, err := models.Build(name)
	if err != nil {
		return nil, err
	}
	plan, err := selector.Select(net, selector.Options{Prof: cfg.Prof, Threads: cfg.Threads})
	if err != nil {
		return nil, fmt.Errorf("serve: selecting plan for %s: %w", name, err)
	}
	w := exec.NewWeights(net)
	m := &Model{
		Name:    name,
		Net:     net,
		Plan:    plan,
		Weights: w,
	}
	for _, b := range batchBuckets(bo.MaxBatch) {
		eng, err := exec.NewEngineBatch(plan, w, b)
		if err != nil {
			return nil, fmt.Errorf("serve: compiling %s (batch %d): %w", name, b, err)
		}
		m.Engines = append(m.Engines, eng)
	}
	m.Engine = m.Engines[0]
	met := NewMetrics()
	m.Metrics = met
	m.Batcher = NewBatcher(func(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return m.EngineFor(len(ins)).RunBatch(ins)
	}, cfg.Batch, met)
	in := net.Layers[0]
	m.InC, m.InH, m.InW = in.OutC, in.OutH, in.OutW
	out := net.Layers[len(net.Layers)-1]
	m.OutC, m.OutH, m.OutW = out.OutC, out.OutH, out.OutW
	return m, nil
}

// Registry hosts multiple named models behind one server process.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
}

// NewRegistry loads every named model. On any failure it closes the
// models already loaded and returns the error.
func NewRegistry(names []string, cfg Config) (*Registry, error) {
	r := &Registry{models: make(map[string]*Model, len(names))}
	for _, name := range names {
		if _, ok := r.models[name]; ok {
			continue
		}
		m, err := LoadModel(name, cfg)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.models[name] = m
	}
	return r, nil
}

// Get returns the named model, if hosted.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Names lists hosted models in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close drains every model's batcher (graceful shutdown: admitted
// requests complete, new ones get ErrClosed).
func (r *Registry) Close() {
	r.mu.RLock()
	ms := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func(m *Model) {
			defer wg.Done()
			m.Batcher.Close()
		}(m)
	}
	wg.Wait()
}
