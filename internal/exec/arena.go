package exec

import (
	"sync"

	"pbqpdnn/internal/tensor"
)

// arena is a size-keyed recycling pool for intermediate tensor buffers.
// The batched executor produces one tensor per (image, layer) pair;
// without recycling, a GoogLeNet minibatch allocates hundreds of
// megabytes of short-lived garbage per run. The arena keys free buffers
// by exact element count — layer shapes repeat across images and runs,
// so hit rates approach 100% after the first image.
//
// Buffers are zeroed on checkout: operators only write logical
// elements, and the padding lanes of blocked layouts (CHW4/CHW8) must
// stay zero for downstream primitives that read whole blocks.
type arena struct {
	mu   sync.Mutex
	free map[int][][]float32

	// maxPerSize caps each free list's depth. Buffers released to the
	// arena include conv-primitive outputs and conversion temporaries
	// that were allocated fresh (not drawn from the arena), so without
	// a cap a long-lived engine's pooled inventory would ratchet up on
	// every run; beyond the cap, released buffers are dropped for the
	// GC to reclaim.
	maxPerSize int

	// gets and hits count checkouts and recycled checkouts (for tests
	// and tuning; reads outside the lock are for diagnostics only).
	gets, hits int64
}

// defaultArenaDepth bounds each size class at a small multiple of any
// plausible in-flight tensor count per shape.
const defaultArenaDepth = 16

func newArena() *arena {
	return &arena{free: make(map[int][][]float32), maxPerSize: defaultArenaDepth}
}

// get returns a zeroed buffer of exactly n elements, recycling a
// previously released one when available.
func (a *arena) get(n int) []float32 {
	return a.getZeroed(n, true)
}

// getZeroed returns a buffer of exactly n elements, optionally zeroed.
// Callers may skip zeroing only when they overwrite every element —
// the executor does so for non-blocked layouts, where every stored
// element is a logical element the operator writes.
func (a *arena) getZeroed(n int, zero bool) []float32 {
	a.mu.Lock()
	a.gets++
	if bufs := a.free[n]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		a.free[n] = bufs[:len(bufs)-1]
		a.hits++
		a.mu.Unlock()
		if zero {
			clear(buf)
		}
		return buf
	}
	a.mu.Unlock()
	return make([]float32, n)
}

// put releases a buffer back to the pool, dropping it when the size
// class is already at capacity. The caller must not retain any
// reference to it.
func (a *arena) put(buf []float32) {
	if buf == nil {
		return
	}
	a.mu.Lock()
	if len(a.free[len(buf)]) < a.maxPerSize {
		a.free[len(buf)] = append(a.free[len(buf)], buf)
	}
	a.mu.Unlock()
}

// putTensor releases a tensor's backing buffer back to the pool.
func (a *arena) putTensor(t *tensor.Tensor) {
	if t != nil {
		a.put(t.Data)
	}
}

// newTensor returns a tensor backed by an arena buffer, sized for the
// layer's output. Blocked layouts are zeroed — their padding lanes
// must hold zeros and no operator writes them — while plain layouts
// skip the memset because every element is a logical element the
// operator overwrites.
func (a *arena) newTensor(l tensor.Layout, c, h, w int) *tensor.Tensor {
	zero := l.BlockSize() > 0
	return tensor.NewWith(l, c, h, w, a.getZeroed(tensor.DataLen(l, c, h, w), zero))
}

// stats reports total and recycled checkouts.
func (a *arena) stats() (gets, hits int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.hits
}
