package exec

import (
	"fmt"
	"sort"
	"strings"

	"pbqpdnn/internal/selector"
)

// GenerateProgram emits the plan as a readable call-sequence program,
// the textual analogue of the paper's "simple code generator which
// emitted calls to primitive operations in our library" (§5.2). The
// output lists, in topological order, every primitive invocation and
// every legalizing layout transform.
func GenerateProgram(plan *selector.Plan) (string, error) {
	net := plan.Net
	order, err := net.TopoOrder()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// program for %s (strategy=%s threads=%d)\n", net.Name, plan.Strategy, plan.Threads)
	fmt.Fprintf(&b, "// predicted cost: %.3f ms (nodes %.3f + transforms %.3f)\n",
		plan.TotalCost()*1e3, plan.NodeCost*1e3, plan.EdgeCost*1e3)
	for _, id := range order {
		l := net.Layers[id]
		// Emit conversions feeding this layer, in a stable order.
		preds := append([]int(nil), net.Preds(id)...)
		sort.Ints(preds)
		for _, p := range preds {
			for _, tr := range plan.Conversions[[2]int{p, id}] {
				fmt.Fprintf(&b, "t_%s = %s(t_%s)\n", tr.To, tr.Name, tr.From)
			}
		}
		if prim, ok := plan.Primitives[id]; ok {
			fmt.Fprintf(&b, "%s = %s(%s)  // %s, %s→%s\n",
				l.Name, prim.Name, net.Layers[preds[0]].Name, l.Conv, prim.In, prim.Out)
			continue
		}
		var args []string
		for _, p := range preds {
			args = append(args, net.Layers[p].Name)
		}
		fmt.Fprintf(&b, "%s = %s(%s)  // %s\n", l.Name, l.Kind, strings.Join(args, ", "), plan.Layouts[id])
	}
	return b.String(), nil
}
