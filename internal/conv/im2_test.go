package conv

import (
	"testing"

	"pbqpdnn/internal/tensor"
)

// TestIm2colPatchMatrix checks the Toeplitz construction directly:
// patch rows are ordered (c, kh, kw) and columns enumerate output
// pixels row-major, with zero padding materialized.
func TestIm2colPatchMatrix(t *testing.T) {
	s := Scenario{C: 2, H: 3, W: 3, Stride: 1, K: 3, M: 1, Pad: 1}
	in := tensor.New(tensor.CHW, 2, 3, 3)
	v := float32(1)
	for c := 0; c < 2; c++ {
		for h := 0; h < 3; h++ {
			for w := 0; w < 3; w++ {
				in.Set(c, h, w, v)
				v++
			}
		}
	}
	p := im2colPatches(in, s)
	cols := 9 // 3×3 output
	rows := 2 * 9
	if len(p) != rows*cols {
		t.Fatalf("patch matrix %d elements, want %d", len(p), rows*cols)
	}
	// Row (c=0,kh=1,kw=1) is the center tap: equals the image itself.
	r := (0*3+1)*3 + 1
	for i := 0; i < cols; i++ {
		want := in.Data[i]
		if p[r*cols+i] != want {
			t.Errorf("center-tap row[%d] = %v, want %v", i, p[r*cols+i], want)
		}
	}
	// Row (c=0,kh=0,kw=0): top-left tap — first output pixel reads the
	// padded corner, so it must be zero.
	r = 0
	if p[r*cols+0] != 0 {
		t.Errorf("padded corner should be 0, got %v", p[r*cols])
	}
	// Output pixel (1,1) under tap (0,0) reads in(0,0)=1.
	if p[r*cols+4] != 1 {
		t.Errorf("tap(0,0) at out(1,1) = %v, want 1", p[r*cols+4])
	}
}

// TestIm2rowPatchMatrix checks the channels-inner row layout: each
// patch row enumerates (kh, kw, c).
func TestIm2rowPatchMatrix(t *testing.T) {
	s := Scenario{C: 3, H: 2, W: 2, Stride: 1, K: 1, M: 1, Pad: 0}
	in := tensor.New(tensor.HWC, 3, 2, 2)
	in.FillRandom(4)
	p := im2rowPatches(in, s)
	// K=1: the patch matrix is exactly the HWC image.
	if len(p) != len(in.Data) {
		t.Fatalf("K=1 patch matrix %d elements, want %d", len(p), len(in.Data))
	}
	for i := range p {
		if p[i] != in.Data[i] {
			t.Fatalf("K=1 im2row should be the identity copy (index %d)", i)
		}
	}
}

// TestKernelMatrixKKC checks the kernel reshape against direct
// indexing.
func TestKernelMatrixKKC(t *testing.T) {
	k := NewKernel(3, 2, 2)
	k.FillRandom(5)
	m := kernelMatrixKKC(k)
	for mm := 0; mm < 3; mm++ {
		for c := 0; c < 2; c++ {
			for kh := 0; kh < 2; kh++ {
				for kw := 0; kw < 2; kw++ {
					r := (kh*2+kw)*2 + c
					if m[r*3+mm] != k.At(mm, c, kh, kw) {
						t.Fatalf("KKC reshape wrong at m=%d c=%d kh=%d kw=%d", mm, c, kh, kw)
					}
				}
			}
		}
	}
}

// TestIm2FamilyOnPointwise: K=1 convolutions are plain GEMMs; all im2
// variants must agree with the reference on them (a common special
// case in GoogleNet).
func TestIm2FamilyOnPointwise(t *testing.T) {
	s := Scenario{C: 16, H: 7, W: 7, Stride: 1, K: 1, M: 8, Pad: 0}
	in := tensor.New(tensor.CHW, 16, 7, 7)
	in.FillRandom(6)
	k := NewKernel(8, 16, 1)
	k.FillRandom(7)
	want := Reference(in, k, s)
	for _, p := range im2Primitives() {
		if !p.Supports(s) {
			continue
		}
		out := p.Run(tensor.Convert(in, p.In), k, s, 1)
		if d := tensor.MaxAbsDiff(out, want); d > tolFor(s) {
			t.Errorf("%s: pointwise diff %g", p.Name, d)
		}
	}
}

// TestIm2WorkspaceGrowsWithImage pins the Table 1 "large image" bad
// case: workspace scales with H·W and K².
func TestIm2WorkspaceGrowsWithImage(t *testing.T) {
	small := Scenario{C: 8, H: 14, W: 14, Stride: 1, K: 3, M: 8, Pad: 1}
	large := Scenario{C: 8, H: 112, W: 112, Stride: 1, K: 3, M: 8, Pad: 1}
	if im2Workspace(large) != im2Workspace(small)*64 {
		t.Errorf("workspace should scale with H·W: %d vs %d", im2Workspace(large), im2Workspace(small))
	}
	k5 := small
	k5.K = 5
	if im2Workspace(k5) <= im2Workspace(small) {
		t.Error("workspace should grow with K²")
	}
}
