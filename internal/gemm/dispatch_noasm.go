//go:build !amd64 || purego

package gemm

// simdAvailable is constant false on builds without the assembly
// microkernel (non-amd64 targets, or amd64 under the `purego` tag), so
// the packed kernels always dispatch to the pure-Go packedRowK4 path
// and SetSIMD(true) is a no-op.
func simdAvailable() bool { return false }

// packedRowFMA is unreachable on pure-Go builds — dispatch is gated on
// simdAvailable — but must exist so pack.go compiles everywhere.
func packedRowFMA(ai *float32, kc int, bp, ci *float32, cols, ldb, epi int, r, bias *float32) {
	panic("gemm: packedRowFMA dispatched on a build without SIMD support")
}
