//go:build race

package exec

// raceEnabled reports whether this test binary was built with the race
// detector. Exact allocs/op pins are skipped under race: the runtime's
// sync.Pool deliberately drops a random 1-in-4 of Puts when race is
// enabled, so the pooled GEMM panels re-allocate nondeterministically
// and any exact per-run allocation count is unstable by construction.
const raceEnabled = true
