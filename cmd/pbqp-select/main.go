// Command pbqp-select runs the PBQP optimizer on a network and prints
// the per-layer primitive selection (the paper's Figure 4 view) and,
// optionally, the generated call-sequence program.
//
// Usage:
//
//	pbqp-select -net alexnet -platform both -threads 4
//	pbqp-select -net googlenet -platform arm -program
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/pbqp"
	"pbqpdnn/internal/selector"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pbqp-select: ")
	netName := flag.String("net", "alexnet", "network: "+fmt.Sprint(models.Names()))
	platform := flag.String("platform", "both", "platform: intel, arm or both")
	threads := flag.Int("threads", 4, "thread count to optimize for")
	program := flag.Bool("program", false, "also emit the generated call-sequence program")
	exact := flag.Bool("exact", false, "use exact branch-and-bound instead of the RN heuristic")
	flag.Parse()

	var machines []cost.Machine
	switch *platform {
	case "intel":
		machines = []cost.Machine{cost.IntelHaswell}
	case "arm":
		machines = []cost.Machine{cost.CortexA57}
	case "both":
		machines = []cost.Machine{cost.IntelHaswell, cost.CortexA57}
	default:
		log.Fatalf("unknown platform %q", *platform)
	}

	g, err := models.Build(*netName)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range machines {
		opts := selector.Options{Prof: cost.NewModel(m), Threads: *threads}
		if *exact {
			opts.Mode = pbqp.Exact
		}
		plan, err := selector.Select(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s on %s (threads=%d) ==\n", *netName, m.Name, *threads)
		fmt.Printf("predicted: %.2f ms (nodes %.2f + transforms %.2f), optimal=%v, solve=%v\n",
			plan.TotalCost()*1e3, plan.NodeCost*1e3, plan.EdgeCost*1e3, plan.Optimal, plan.SolveTime)
		for _, id := range g.ConvLayers() {
			p := plan.Primitives[id]
			fmt.Printf("  %-26s %-26s %s→%s\n", g.Layers[id].Name, p.Name, p.In, p.Out)
		}
		fmt.Printf("  layout conversions inserted: %d\n\n", len(plan.Conversions))
		if *program {
			prog, err := exec.GenerateProgram(plan)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(prog)
		}
	}
	_ = os.Stdout
}
