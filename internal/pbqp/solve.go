package pbqp

import "math"

// Mode selects the fallback strategy for irreducible (degree ≥ 3) nodes.
type Mode uint8

const (
	// Heuristic applies the RN reduction: fast, but the result may be
	// suboptimal and Solution.Optimal is false if RN was ever used.
	Heuristic Mode = iota
	// Exact branches over the assignments of irreducible nodes with
	// lower-bound pruning; always optimal, worst-case exponential.
	Exact
)

// state is the solver's mutable copy of the instance.
type state struct {
	costs [][]float64
	adj   []map[int]*Matrix
	alive []bool
	n     int // alive count
	// base accumulates cost mass removed from the graph entirely:
	// R0-chosen node costs and branch-fixed node costs. RI and RII fold
	// their mass into still-alive vectors/edges, so they don't touch it.
	base float64
}

func newState(g *Graph) *state {
	st := &state{
		costs: make([][]float64, len(g.costs)),
		adj:   make([]map[int]*Matrix, len(g.costs)),
		alive: make([]bool, len(g.costs)),
		n:     len(g.costs),
	}
	for u, c := range g.costs {
		st.costs[u] = append([]float64(nil), c...)
		st.adj[u] = make(map[int]*Matrix, len(g.adj[u]))
		for v, m := range g.adj[u] {
			st.adj[u][v] = m.clone()
		}
		st.alive[u] = true
	}
	return st
}

func (st *state) clone() *state {
	c := &state{
		costs: make([][]float64, len(st.costs)),
		adj:   make([]map[int]*Matrix, len(st.costs)),
		alive: append([]bool(nil), st.alive...),
		n:     st.n,
		base:  st.base,
	}
	for u := range st.costs {
		if !st.alive[u] {
			continue
		}
		c.costs[u] = append([]float64(nil), st.costs[u]...)
		c.adj[u] = make(map[int]*Matrix, len(st.adj[u]))
		for v, m := range st.adj[u] {
			c.adj[u][v] = m.clone()
		}
	}
	return c
}

// disconnect removes node u from the graph.
func (st *state) disconnect(u int) {
	for v := range st.adj[u] {
		delete(st.adj[v], u)
	}
	st.adj[u] = nil
	st.alive[u] = false
	st.n--
}

// addEdgeDelta accumulates delta (rows = v, cols = w) onto edge {v,w},
// creating it if needed.
func (st *state) addEdgeDelta(v, w int, delta *Matrix) {
	if ex := st.adj[v][w]; ex != nil {
		ex.add(delta)
		st.adj[w][v].add(delta.Transpose())
		return
	}
	st.adj[v][w] = delta.clone()
	st.adj[w][v] = delta.Transpose()
}

// record is one reduction on the trail; unwind computes the reduced
// node's assignment from its neighbors' (already unwound) assignments.
type record interface {
	unwind(sel []int)
}

// recFixed covers R0 and RN: the choice was decided at reduction time.
type recFixed struct {
	u, choice int
}

func (r recFixed) unwind(sel []int) { sel[r.u] = r.choice }

// recRI: u had single neighbor v; best[j] is u's best choice given v=j.
type recRI struct {
	u, v int
	best []int
}

func (r recRI) unwind(sel []int) { sel[r.u] = r.best[sel[r.v]] }

// recRII: u had neighbors v,w; best[j*kw+k] is u's best choice given
// v=j, w=k.
type recRII struct {
	u, v, w, kw int
	best        []int
}

func (r recRII) unwind(sel []int) { sel[r.u] = r.best[sel[r.v]*r.kw+sel[r.w]] }

// argmin returns the index of the smallest entry (ties to the lowest
// index, so results are deterministic).
func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// reduceR0 removes isolated node u, choosing its cheapest assignment.
func reduceR0(st *state, u int, trail *[]record, stats map[string]int) {
	choice := argmin(st.costs[u])
	st.base += st.costs[u][choice]
	*trail = append(*trail, recFixed{u, choice})
	st.disconnect(u)
	stats["R0"]++
}

// reduceRI folds degree-1 node u into its neighbor's cost vector.
func reduceRI(st *state, u int, trail *[]record, stats map[string]int) {
	var v int
	var m *Matrix
	for nv, nm := range st.adj[u] {
		v, m = nv, nm // exactly one
	}
	nu, nv := len(st.costs[u]), len(st.costs[v])
	best := make([]int, nv)
	for j := 0; j < nv; j++ {
		bi, bc := 0, math.Inf(1)
		for i := 0; i < nu; i++ {
			if c := st.costs[u][i] + m.At(i, j); c < bc {
				bi, bc = i, c
			}
		}
		best[j] = bi
		st.costs[v][j] += bc
	}
	*trail = append(*trail, recRI{u: u, v: v, best: best})
	st.disconnect(u)
	stats["RI"]++
}

// reduceRII folds degree-2 node u into a (possibly new) edge between its
// two neighbors.
func reduceRII(st *state, u int, trail *[]record, stats map[string]int) {
	neigh := make([]int, 0, 2)
	for nv := range st.adj[u] {
		neigh = append(neigh, nv)
	}
	v, w := neigh[0], neigh[1]
	if v > w {
		v, w = w, v
	}
	mv, mw := st.adj[u][v], st.adj[u][w]
	nu, nv, nw := len(st.costs[u]), len(st.costs[v]), len(st.costs[w])
	delta := NewMatrix(nv, nw)
	best := make([]int, nv*nw)
	for j := 0; j < nv; j++ {
		for k := 0; k < nw; k++ {
			bi, bc := 0, math.Inf(1)
			for i := 0; i < nu; i++ {
				if c := st.costs[u][i] + mv.At(i, j) + mw.At(i, k); c < bc {
					bi, bc = i, c
				}
			}
			best[j*nw+k] = bi
			delta.Set(j, k, bc)
		}
	}
	*trail = append(*trail, recRII{u: u, v: v, w: w, kw: nw, best: best})
	st.disconnect(u)
	st.addEdgeDelta(v, w, delta)
	stats["RII"]++
}

// reduceRN heuristically fixes the max-degree node to its locally best
// assignment and pushes its edge rows into the neighbors' vectors.
func reduceRN(st *state, u int, trail *[]record, stats map[string]int) {
	nu := len(st.costs[u])
	bi, bc := 0, math.Inf(1)
	for i := 0; i < nu; i++ {
		c := st.costs[u][i]
		for _, m := range st.adj[u] {
			rowMin := math.Inf(1)
			for j := 0; j < m.Cols; j++ {
				if v := m.At(i, j); v < rowMin {
					rowMin = v
				}
			}
			c += rowMin
		}
		if c < bc {
			bi, bc = i, c
		}
	}
	for v, m := range st.adj[u] {
		for j := range st.costs[v] {
			st.costs[v][j] += m.At(bi, j)
		}
	}
	*trail = append(*trail, recFixed{u, bi})
	st.disconnect(u)
	stats["RN"]++
}

// reduceAll applies R0–RII until none applies; returns an irreducible
// node of maximal degree, or -1 if the graph emptied.
func reduceAll(st *state, trail *[]record, stats map[string]int) int {
	for {
		progress := false
		maxDeg, maxNode := -1, -1
		for u := range st.costs {
			if !st.alive[u] {
				continue
			}
			switch d := len(st.adj[u]); d {
			case 0:
				reduceR0(st, u, trail, stats)
				progress = true
			case 1:
				reduceRI(st, u, trail, stats)
				progress = true
			case 2:
				reduceRII(st, u, trail, stats)
				progress = true
			default:
				if d > maxDeg {
					maxDeg, maxNode = d, u
				}
			}
			if progress {
				break // restart scan: degrees changed
			}
		}
		if progress {
			continue
		}
		return maxNode
	}
}

// Solve runs the reduction solver in the given mode.
func (g *Graph) Solve(mode Mode) *Solution {
	sol := &Solution{
		Selection:  make([]int, len(g.costs)),
		Reductions: map[string]int{},
	}
	if len(g.costs) == 0 {
		sol.Optimal = true
		return sol
	}
	st := newState(g)
	var trail []record
	optimal := true
	if mode == Exact {
		sel := make([]int, len(g.costs))
		solveExact(st, g, sel, &sol.Reductions)
		copy(sol.Selection, sel)
		sol.Cost = g.Evaluate(sel)
		sol.Optimal = true
		return sol
	}
	for {
		u := reduceAll(st, &trail, sol.Reductions)
		if u < 0 {
			break
		}
		reduceRN(st, u, &trail, sol.Reductions)
		optimal = false
	}
	for i := len(trail) - 1; i >= 0; i-- {
		trail[i].unwind(sol.Selection)
	}
	sol.Cost = g.Evaluate(sol.Selection)
	sol.Optimal = optimal
	return sol
}

// solveExact finds the optimal assignment of the state by reducing with
// R0–RII and branching on irreducible nodes with lower-bound pruning.
// The best full selection is written into bestSel. The trail accumulates
// along each root-to-leaf path (capped so branch siblings cannot alias
// each other's appends).
func solveExact(st *state, g *Graph, bestSel []int, stats *map[string]int) {
	best := math.Inf(1)
	var rec func(st *state, trail []record)
	rec = func(st *state, trail []record) {
		trail = trail[:len(trail):len(trail)]
		u := reduceAll(st, &trail, *stats)
		if u < 0 {
			// Fully reduced: unwind to a complete selection. Reverse
			// order guarantees every record's dependencies (nodes removed
			// after it, including branch fixes) are already decided.
			sel := make([]int, len(g.costs))
			for i := len(trail) - 1; i >= 0; i-- {
				trail[i].unwind(sel)
			}
			if c := g.Evaluate(sel); c < best {
				best = c
				copy(bestSel, sel)
			}
			return
		}
		(*stats)["branch"]++
		// Lower bound: removed cost mass plus alive node and edge minima.
		lb := st.base
		for n := range st.costs {
			if !st.alive[n] {
				continue
			}
			lb += minOf(st.costs[n])
			for v, m := range st.adj[n] {
				if n < v {
					lb += minOf(m.V)
				}
			}
		}
		if lb >= best {
			return
		}
		for i := range st.costs[u] {
			child := st.clone()
			// Fix u := i — fold its edge rows into the neighbors.
			child.base += child.costs[u][i]
			for v, m := range child.adj[u] {
				for j := range child.costs[v] {
					child.costs[v][j] += m.At(i, j)
				}
			}
			child.disconnect(u)
			rec(child, append(trail, recFixed{u, i}))
		}
	}
	rec(st, nil)
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
