package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// KernelAlias enforces the *Into kernel contract: a kernel named
// "...Into" writes results through caller-provided buffers (slot-backed
// tensors, recycled frames, in-place aliases) and must not retain
// memory reachable from its reference parameters beyond the call. The
// analyzer taints the pointer- and slice-typed parameters plus locals
// assigned from them and flags any route that could publish a tainted
// value: returning it, assigning it to a struct field or package-level
// variable, or sending it on a channel. Passing tainted values to other
// functions is deliberately not flagged — wrapping a caller's buffer in
// a temporary view (tensor.NewWith style) is the idiomatic way these
// kernels compose.
var KernelAlias = &Analyzer{
	Name: "kernelalias",
	Doc:  "report *Into kernels that retain or return caller-provided memory",
	Run:  runKernelAlias,
}

func runKernelAlias(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if len(name) <= len("Into") || name[len(name)-len("Into"):] != "Into" {
				continue
			}
			diags = append(diags, checkKernel(pkg, fd)...)
		}
	}
	return diags
}

func checkKernel(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	// tainted maps each variable that may alias caller memory to the
	// parameter it originates from.
	tainted := map[*types.Var]*types.Var{}
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok && isRefType(v.Type()) {
				tainted[v] = v
			}
		}
	}
	if len(tainted) == 0 {
		return nil
	}

	derived := func(e ast.Expr) *types.Var {
		return derivedFrom(pkg, tainted, e)
	}

	// Propagate taint through simple local assignments (x := dst.Data)
	// to a fixpoint; the body is small, so iterate until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				origin := derived(as.Rhs[i])
				if origin == nil {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && tainted[v] == nil {
					tainted[v] = origin
					changed = true
				}
			}
			return true
		})
	}

	var diags []Diagnostic
	report := func(n ast.Node, v *types.Var, how string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "kernelalias",
			Message:  fd.Name.Name + ": " + how + " memory derived from parameter " + v.Name(),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if v := derived(res); v != nil {
					report(n, v, "returns")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				v := derived(n.Rhs[i])
				if v == nil {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if pkg.Info.Selections[l] != nil { // field write, not a qualified ident
						report(n, v, "stores in a struct field")
					}
				case *ast.Ident:
					if obj, ok := pkg.Info.Uses[l].(*types.Var); ok && obj.Parent() == pkg.Types.Scope() {
						report(n, v, "stores in package variable "+l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if v := derived(n.Value); v != nil {
				report(n, v, "sends on a channel")
			}
		}
		return true
	})
	return diags
}

// derivedFrom resolves an expression to the originating tainted
// parameter it aliases through selectors, indexing, slicing,
// dereference and address-of; a function call breaks derivation (its
// result is the callee's memory).
func derivedFrom(pkg *Package, tainted map[*types.Var]*types.Var, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return tainted[v]
		}
	case *ast.SelectorExpr:
		return derivedFrom(pkg, tainted, e.X)
	case *ast.IndexExpr:
		return derivedFrom(pkg, tainted, e.X)
	case *ast.SliceExpr:
		return derivedFrom(pkg, tainted, e.X)
	case *ast.StarExpr:
		return derivedFrom(pkg, tainted, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return derivedFrom(pkg, tainted, e.X)
		}
	}
	return nil
}

// isRefType reports whether values of t can carry caller memory:
// pointers, slices, maps and channels qualify; scalars and pure value
// structs do not.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}
