package experiments

import (
	"strings"
	"testing"

	"pbqpdnn/internal/cost"
)

// TestExperimentalTrends asserts every §5.6–§5.8 trend claim holds on
// the regenerated data — the repository's headline reproduction gate.
func TestExperimentalTrends(t *testing.T) {
	trends, err := CheckTrends()
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) < 7 {
		t.Fatalf("only %d trends checked", len(trends))
	}
	for _, tr := range trends {
		if !tr.OK {
			t.Errorf("trend %q failed: %s", tr.Name, tr.Note)
		}
	}
}

// TestTable2Shape checks the Intel absolute-time table reproduces the
// paper's orderings and rough magnitudes (paper Table 2: AlexNet ST
// 711.75 / 231.75 / 100 / 419.565 ms).
func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table 2 has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if !(r.PBQP < r.LocalOpt && r.LocalOpt < r.Caffe && r.Caffe < r.Sum2D) {
			t.Errorf("(%s) %s: ordering violated: %+v", r.Threaded, r.Network, r)
		}
	}
	// Absolute magnitude: AlexNet sum2d single-threaded should land
	// within 2× of the paper's 711.75 ms — operation counts and clock
	// rates are real, so the model can't drift arbitrarily.
	var alexST TableRow
	for _, r := range rows {
		if r.Network == "alexnet" && r.Threaded == "S" {
			alexST = r
		}
	}
	if alexST.Sum2D < 711.75/2 || alexST.Sum2D > 711.75*2 {
		t.Errorf("AlexNet ST sum2d = %.1f ms, paper 711.75 ms (want within 2x)", alexST.Sum2D)
	}
	// Speedup ratio: paper PBQP/SUM2D ST ≈ 7.1×; allow a generous band.
	ratio := alexST.Sum2D / alexST.PBQP
	if ratio < 4 || ratio > 16 {
		t.Errorf("AlexNet ST sum2d/pbqp = %.1fx, paper 7.1x", ratio)
	}
}

// TestTable3Shape checks the ARM table (paper: AlexNet ST 2369.5 /
// 744.25 / 461 / 2341.09 ms — note Caffe ≈ sum2d on ARM ST).
func TestTable3Shape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.PBQP < r.LocalOpt && r.LocalOpt < r.Caffe && r.Caffe <= r.Sum2D) {
			t.Errorf("(%s) %s: ordering violated: %+v", r.Threaded, r.Network, r)
		}
	}
	var alexST TableRow
	for _, r := range rows {
		if r.Network == "alexnet" && r.Threaded == "S" {
			alexST = r
		}
	}
	if alexST.Sum2D < 2369.5/2 || alexST.Sum2D > 2369.5*2 {
		t.Errorf("ARM AlexNet ST sum2d = %.1f ms, paper 2369.5 ms (want within 2x)", alexST.Sum2D)
	}
}

func TestTable1Traits(t *testing.T) {
	rows := Table1(cost.IntelHaswell)
	if len(rows) != 5 {
		t.Fatalf("table 1 has %d rows, want 5 families", len(rows))
	}
	byFam := map[string]Table1Row{}
	for _, r := range rows {
		byFam[r.Family] = r
	}
	// Paper Table 1 anchor points.
	if byFam["winograd"].Time != "++" {
		t.Errorf("winograd time grade = %s, want ++", byFam["winograd"].Time)
	}
	if byFam["direct"].Strided != "++" || byFam["im2"].Strided != "++" {
		t.Error("direct and im2 must support striding")
	}
	if byFam["kn2"].Strided != "--" {
		t.Errorf("kn2 strided grade = %s, want --", byFam["kn2"].Strided)
	}
	if byFam["im2"].Memory != "-" {
		t.Errorf("im2 memory grade = %s, want - (Toeplitz matrix)", byFam["im2"].Memory)
	}
	if byFam["kn2"].BadCase != "Few channels" || byFam["fft"].BadCase != "Small kernel" {
		t.Error("bad-case column mismatch")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "winograd") {
		t.Error("FormatTable1 missing rows")
	}
}

// TestFigure2Example checks the worked §3.3 example: node-only optimum
// is B,C,B at 37; adding the printed edge matrices moves the optimum
// away from B for conv1 and raises the total.
func TestFigure2Example(t *testing.T) {
	r := Figure2()
	if r.NodeOnlyCost != 37 {
		t.Errorf("node-only cost = %v, want 37", r.NodeOnlyCost)
	}
	want := []string{"B", "C", "B"}
	for i, w := range want {
		if r.NodeOnlySelection[i] != w {
			t.Errorf("node-only selection[%d] = %s, want %s", i, r.NodeOnlySelection[i], w)
		}
	}
	if r.FullCost <= 37 {
		t.Errorf("full cost %v should exceed node-only 37", r.FullCost)
	}
	if r.FullCost != 42 {
		t.Errorf("full optimum = %v, enumeration of the printed tables gives 42", r.FullCost)
	}
}

// TestFigure4Format smoke-tests the selection map rendering.
func TestFigure4Format(t *testing.T) {
	intel, arm, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(intel) != 5 || len(arm) != 5 {
		t.Fatalf("AlexNet has 5 convs; got %d/%d rows", len(intel), len(arm))
	}
	out := FormatFigure4(intel, arm)
	if !strings.Contains(out, "conv1") || !strings.Contains(out, "ARM Cortex-A57") {
		t.Error("Figure 4 rendering incomplete")
	}
	// The qualitative platform split (detail-tested in selector): conv1
	// im2 on both; Intel winograd selections 2D; ARM majority 1D.
	if intel[0].Family != "im2" || arm[0].Family != "im2" {
		t.Error("conv1 should select the im2 family on both platforms")
	}
}

func TestWholeNetworkFormatting(t *testing.T) {
	nr, err := WholeNetwork("alexnet", cost.IntelHaswell, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatNetworkResult(nr)
	for _, want := range []string{"alexnet", "pbqp", "caffe", "baseline sum2d"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendering", want)
		}
	}
	if _, ok := nr.Get("pbqp"); !ok {
		t.Error("missing pbqp result")
	}
	if _, ok := nr.Get("nonexistent"); ok {
		t.Error("Get should miss unknown strategies")
	}
}

// TestSparsitySweep pins the §8 extension behaviour: no sparse
// primitive at 0% sparsity, sparse primitives adopted at high
// sparsity with real predicted gains, and gains monotone in sparsity.
func TestSparsitySweep(t *testing.T) {
	pts, err := SparsitySweep()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].UsedSparse {
		t.Error("dense kernel should not select a sparse primitive")
	}
	last := pts[len(pts)-1]
	if !last.UsedSparse {
		t.Errorf("99%% sparse kernel should select a sparse primitive, got %s", last.PrimaryName)
	}
	if last.SpeedupX <= 1.2 {
		t.Errorf("sparsity gain at 99%% = %.2fx, want > 1.2x", last.SpeedupX)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].SelectedMS > pts[i-1].SelectedMS*1.01 {
			t.Errorf("chosen cost should not grow with sparsity: %v", pts)
			break
		}
	}
	if out := FormatSparsitySweep(pts); !strings.Contains(out, "sparsity") {
		t.Error("sweep rendering broken")
	}
}

// TestMinibatchSweep: per-image cost should not grow with batch size
// (amortization), and total cost grows.
func TestMinibatchSweep(t *testing.T) {
	pts, err := MinibatchSweep()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TotalMS <= pts[i-1].TotalMS {
			t.Errorf("total cost should grow with batch: %+v", pts)
		}
		if pts[i].PerImageMS > pts[i-1].PerImageMS*1.05 {
			t.Errorf("per-image cost should amortize: %+v", pts)
		}
	}
	// The measured columns come from the real batched engine; wall
	// clock is noisy on shared hardware, so only pin what is robust:
	// every measurement is positive, and the largest batch takes longer
	// end to end than a single image.
	for _, p := range pts {
		if p.WallTotalMS <= 0 || p.WallPerImageMS <= 0 {
			t.Errorf("batch %d: non-positive measured time: %+v", p.Batch, p)
		}
	}
	// Generous margin: the batch-16 run does 16× the work of batch-1,
	// so even one-sample wall clock on a noisy shared runner should
	// comfortably clear half the single-image time.
	if first, last := pts[0], pts[len(pts)-1]; last.Batch > first.Batch &&
		last.WallTotalMS <= first.WallTotalMS*0.5 {
		t.Errorf("measured total should grow from batch %d (%.3fms) to %d (%.3fms)",
			first.Batch, first.WallTotalMS, last.Batch, last.WallTotalMS)
	}
	if out := FormatMinibatchSweep(pts); !strings.Contains(out, "batch") {
		t.Error("sweep rendering broken")
	}
}

// TestBatchSweep: the batched-vs-per-image comparison must run end to
// end on a real model and produce positive measurements with coherent
// speedup ratios; wall clock is noisy, so no ordering is pinned.
func TestBatchSweep(t *testing.T) {
	pts, err := BatchSweep("micronet", 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Net != "micronet" || p.Threads != 1 {
			t.Errorf("mislabeled point: %+v", p)
		}
		if p.BatchedNsPerImage <= 0 || p.PerImageNsPerImage <= 0 {
			t.Errorf("batch %d: non-positive measurement: %+v", p.Batch, p)
		}
		if want := p.PerImageNsPerImage / p.BatchedNsPerImage; p.SpeedupX != want {
			t.Errorf("batch %d: speedup %v inconsistent with ratio %v", p.Batch, p.SpeedupX, want)
		}
	}
	if out := FormatBatchSweep(pts); !strings.Contains(out, "per-image") {
		t.Error("sweep rendering broken")
	}
}

// TestFuseSweep: the fused-vs-unfused comparison must run end to end
// on the smallest model — one solve per batch, both compiles, two
// engines, measured ratio — with self-consistent program-shape stats,
// and its report must render.
func TestFuseSweep(t *testing.T) {
	pts, err := FuseSweep("micronet", 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Net != "micronet" || p.Threads != 1 {
			t.Errorf("mislabeled point: %+v", p)
		}
		if p.FusedNsPerImage <= 0 || p.UnfusedNsPerImage <= 0 {
			t.Errorf("batch %d: non-positive measurement: %+v", p.Batch, p)
		}
		if want := p.UnfusedNsPerImage / p.FusedNsPerImage; p.SpeedupX != want {
			t.Errorf("batch %d: speedup %v inconsistent with ratio %v", p.Batch, p.SpeedupX, want)
		}
		if p.Instructions > p.UnfusedInstructions {
			t.Errorf("batch %d: fused stream longer than unfused (%d vs %d)",
				p.Batch, p.Instructions, p.UnfusedInstructions)
		}
		if p.FusedEpilogues == 0 {
			t.Errorf("batch %d: micronet fused no epilogues", p.Batch)
		}
		if p.PeakBytes <= 0 || p.UnfusedPeakBytes <= 0 {
			t.Errorf("batch %d: missing peak-resident figures: %+v", p.Batch, p)
		}
	}
	if out := FormatFuseSweep(pts); !strings.Contains(out, "no-fuse compile") {
		t.Errorf("report misses the comparison header:\n%s", out)
	}
}

// TestPlanSweep: the batch-aware selection comparison must run end to
// end on the smallest model — calibration, two PBQP solves per batch,
// two compiled engines, measured ratio — and its report must render.
func TestPlanSweep(t *testing.T) {
	pts, err := PlanSweep("micronet", 1, []int{1, 2}, PlanSweepOptions{Reps: 1, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	for _, p := range pts {
		if !p.Calibrated {
			t.Error("default plansweep must calibrate measured costs")
		}
		if p.Batch1PlanNsPerImage <= 0 || p.BatchPlanNsPerImage <= 0 || p.SpeedupX <= 0 {
			t.Errorf("batch %d: non-positive measurement %+v", p.Batch, p)
		}
		if p.PredictedBatchMS <= 0 {
			t.Errorf("batch %d: missing prediction", p.Batch)
		}
	}
	if out := FormatPlanSweep(pts); !strings.Contains(out, "batch-N plan") {
		t.Errorf("report misses the comparison header:\n%s", out)
	}

	// The analytic-model path must run without measuring primitives.
	pts, err = PlanSweep("micronet", 1, []int{2}, PlanSweepOptions{
		Prof: cost.NewModel(cost.IntelHaswell)})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Calibrated {
		t.Error("explicit profiler must not be reported as calibrated")
	}
}
