package gemm

import (
	"os"
	"sync/atomic"
)

// Kernel-variant dispatch for the packed GEMM family.
//
// The packed kernels (Packed, PackedEpi, Accumulate, TransB,
// ParallelCols) run one of two interchangeable microkernels over the
// same KC×NC packed-B panel format:
//
//   - "avx2": the assembly microkernel in pack_amd64.s — 16 output
//     columns per pass held in two YMM accumulator rows, FMA for the
//     multiply-add, the fused epilogue applied while the output tile is
//     still register-resident. Selected at init when CPUID reports
//     AVX2+FMA and the OS has enabled YMM state.
//   - "go": the pure-Go row-streaming packedRowK4 microkernel — the
//     documented fallback, always compiled, and the only variant on
//     non-amd64 targets or under the `purego` build tag.
//
// FP-association contract (the determinism fine print): the two
// variants group partial products differently — packedRowK4 folds k in
// sequential groups of four straight into C, the AVX2 kernel keeps four
// independent k-strided accumulator chains per 8-lane group and
// combines them as ((q0+q1)+(q2+q3))+C — so float32 results agree
// across variants only within the library-wide 1e-4 equivalence
// tolerance, never bitwise. Within a variant every guarantee is as
// strong as it always was: repeated calls are bitwise stable (pooled
// pack buffers included), ParallelCols is bitwise identical to Packed
// for any thread count, and a fused epilogue is bitwise identical to
// the separate post-pass. Tests that pin bitwise behaviour therefore
// pin it per variant, and anything persisted across processes (golden
// outputs, calibration-free plan comparisons) must not assume the two
// variants interchange bitwise.
var simdEnabled atomic.Bool

func init() {
	// DNN_NOSIMD is the runtime escape hatch mirroring the compile-time
	// `purego` tag: any non-empty value forces the pure-Go microkernel
	// so the fallback is testable (and a misbehaving asm kernel is
	// bypassable) without rebuilding.
	simdEnabled.Store(simdAvailable() && os.Getenv("DNN_NOSIMD") == "")
}

// SIMDAvailable reports whether the AVX2/FMA microkernel is usable on
// this build and CPU: compiled in (amd64, no `purego` tag), the CPU
// advertises AVX2+FMA, and the OS saves YMM state. It ignores the
// DNN_NOSIMD override and SetSIMD — availability, not selection.
func SIMDAvailable() bool { return simdAvailable() }

// SIMDEnabled reports whether the packed kernels currently dispatch to
// the AVX2 microkernel.
func SIMDEnabled() bool { return simdEnabled.Load() }

// SetSIMD selects (true) or deselects (false) the AVX2 microkernel for
// subsequent packed-kernel calls and returns the previous setting.
// Enabling is a no-op when SIMDAvailable is false, so callers may
// toggle unconditionally. This is a test/benchmark knob for measuring
// and differential-testing both variants in one process; each kernel
// call reads the setting once at entry, so a concurrent toggle never
// mixes variants within a call, but production code should pick a
// variant at startup and leave it alone (cross-variant results are not
// bitwise comparable — see the FP-association contract above).
func SetSIMD(on bool) bool {
	prev := simdEnabled.Load()
	simdEnabled.Store(on && simdAvailable())
	return prev
}

// Variant names the microkernel the packed kernels currently dispatch
// to: "avx2" or "go". Benchmark records key measurements by this.
func Variant() string {
	if simdEnabled.Load() {
		return "avx2"
	}
	return "go"
}

// PackedVariants lists the microkernel variants runnable in this
// process, the dispatched one first — what a sweep should measure.
func PackedVariants() []string {
	if simdAvailable() {
		return []string{"avx2", "go"}
	}
	return []string{"go"}
}
