package conv

import (
	"strings"
	"testing"

	"pbqpdnn/internal/tensor"
)

// makeInputBatch fabricates n distinct images in the primitive's input
// layout.
func makeInputBatch(l tensor.Layout, n int, s Scenario) *tensor.Batch {
	b := tensor.NewBatch(l, n, s.C, s.H, s.W)
	for i := 0; i < n; i++ {
		b.Image(i).FillRandom(int64(100*i + 7))
	}
	return b
}

// batchScenarios is the geometry grid the batched entries are held to:
// 1×1 (the zero-copy im2row path), strided, padded, odd sizes.
func batchScenarios() []Scenario {
	return []Scenario{
		{C: 5, H: 9, W: 11, Stride: 1, K: 3, M: 7, Pad: 1},
		{C: 8, H: 12, W: 12, Stride: 1, K: 1, M: 6, Pad: 0},
		{C: 3, H: 13, W: 9, Stride: 2, K: 3, M: 4, Pad: 1},
		{C: 4, H: 10, W: 10, Stride: 1, K: 5, M: 5, Pad: 2},
	}
}

// TestBatchedEntriesMatchPerImageRun: every primitive carrying a
// batched implementation must compute, image for image, what its
// per-image Run computes. The batched restructure may reorder float
// work and run its pointwise stages in float32 (the wino2d GEMM), so
// the acceptance bar is the library-wide 1e-4 relative tolerance the
// engine equivalence harness uses.
func TestBatchedEntriesMatchPerImageRun(t *testing.T) {
	const n = 3
	for _, p := range Library() {
		if p.RunBatch == nil {
			continue
		}
		for _, s := range batchScenarios() {
			if !p.Supports(s) {
				continue
			}
			in := makeInputBatch(p.In, n, s)
			k := NewKernel(s.M, s.C, s.K)
			k.FillRandom(3)
			dst := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
			for _, threads := range []int{1, 3} {
				RunBatchInto(p, dst, in, k, s, threads)
				for i := 0; i < n; i++ {
					want := p.Run(in.Image(i), k, s, 1)
					if !tensor.WithinRel(dst.Image(i), want, 1e-4) {
						t.Errorf("%s %s threads=%d image %d: batched diverges by %g",
							p.Name, s, threads, i, tensor.MaxRelDiff(dst.Image(i), want))
					}
				}
			}
		}
	}
}

// TestRunBatchIntoFallback: a primitive with no batched entry runs per
// image through Run and lands in the right slabs.
func TestRunBatchIntoFallback(t *testing.T) {
	lib := Library()
	var fallbacks []*Primitive
	for _, p := range lib {
		if p.RunBatch == nil && (p.Family == FamilyDirect || p.Family == FamilyKn2) {
			fallbacks = append(fallbacks, p)
		}
	}
	if len(fallbacks) == 0 {
		t.Fatal("no fallback primitives to exercise")
	}
	s := Scenario{C: 4, H: 8, W: 8, Stride: 1, K: 3, M: 5, Pad: 1}
	tested := 0
	for _, p := range fallbacks {
		if !p.Supports(s) || p.In.BlockSize() > 0 || p.Out.BlockSize() > 0 {
			continue
		}
		in := makeInputBatch(p.In, 2, s)
		k := NewKernel(s.M, s.C, s.K)
		k.FillRandom(5)
		dst := tensor.NewBatch(p.Out, 2, s.M, s.OutH(), s.OutW())
		RunBatchInto(p, dst, in, k, s, 2)
		for i := 0; i < 2; i++ {
			want := p.Run(in.Image(i), k, s, 1)
			if !tensor.AlmostEqual(dst.Image(i), want, 0) {
				t.Errorf("%s image %d: fallback differs from per-image Run", p.Name, i)
			}
		}
		tested++
		if tested >= 4 {
			break
		}
	}
	if tested == 0 {
		t.Fatal("no fallback primitive supported the test scenario")
	}
}

// TestBatchedCoverage pins that the hot families carry batched
// implementations: every im2col/im2row and wino2d entry must have one.
func TestBatchedCoverage(t *testing.T) {
	for _, p := range Library() {
		batched := p.RunBatch != nil
		wantBatched := strings.HasPrefix(p.Name, "im2col-a") || strings.HasPrefix(p.Name, "im2col-b") ||
			strings.HasPrefix(p.Name, "im2col-n") || strings.HasPrefix(p.Name, "im2row-a") ||
			strings.HasPrefix(p.Name, "im2row-b") || strings.HasPrefix(p.Name, "im2row-n") ||
			strings.HasPrefix(p.Name, "wino2d-")
		if wantBatched && !batched {
			t.Errorf("%s: expected a batched entry point", p.Name)
		}
	}
}

// TestRunBatchIntoRejectsMismatch: geometry violations must panic, not
// silently compute garbage.
func TestRunBatchIntoRejectsMismatch(t *testing.T) {
	p, err := ByName(Library(), "im2row-blk")
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{C: 4, H: 8, W: 8, Stride: 1, K: 1, M: 5, Pad: 0}
	in := makeInputBatch(p.In, 2, s)
	k := NewKernel(s.M, s.C, s.K)
	dst := tensor.NewBatch(p.Out, 3, s.M, s.OutH(), s.OutW()) // wrong N
	defer func() {
		if recover() == nil {
			t.Error("mismatched batch sizes did not panic")
		}
	}()
	RunBatchInto(p, dst, in, k, s, 1)
}
