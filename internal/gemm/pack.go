package gemm

import (
	"runtime"
	"sync"
)

// Packed-GEMM blocking parameters. B is packed one KC×NC block at a
// time into a contiguous scratch buffer; the microkernel then streams
// rows of C against the resident block. KC is sized so a block's k-slab
// plus the A and C rows in flight stay L1/L2-resident; NC bounds the
// scratch at KC·NC floats (256 KiB) so a pooled buffer never regrows.
// The A operand needs no separate pack: row-major A already presents
// each row's k-slab as a contiguous panel (an MR=1 row panel), so
// "packing A" would be the identity copy and is elided. The transposed
// orientation is where packing really earns its keep: a B supplied as
// Bᵀ is un-transposed by packBT while it is staged, after which the one
// microkernel serves both orientations.
const (
	packKC = 128
	packNC = 512
)

// packPool recycles B-pack scratch across calls (and across the
// goroutines of ParallelCols, each of which draws its own buffer). The
// buffers are always full-size so a reused buffer never reallocates.
var packPool = sync.Pool{
	New: func() any {
		s := make([]float32, packKC*packNC)
		return &s
	},
}

// Packed computes C = A·B with the packed, register-tiled kernel: B is
// staged KC×NC blocks at a time into pooled scratch and each row of C
// is updated by the k-unrolled row-streaming microkernel packedRowK4.
// Every element's partial products accumulate in a fixed order
// (increasing k, grouped four at a time by the unroll), so results are
// bitwise stable across repeated calls with reused pack buffers —
// though the grouping rounds differently than Naive's one-product
// fold, so cross-kernel agreement is within tolerance, not bitwise.
// C is overwritten.
func Packed(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	packedRange(m, n, k, 0, n, a, b, c, false, false)
}

// Accumulate computes C += A·B — the fused-epilogue variant of Packed.
// It does not clear C first; the kn2 convolution family and the
// Winograd/FFT pointwise stages rely on this to sum partial products in
// place.
func Accumulate(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	packedRange(m, n, k, 0, n, a, b, c, true, false)
}

// TransB computes C = A·Bᵀ where bt holds B transposed as an n×k
// row-major matrix — the "BT" kernel variant the paper's Figure 4
// selects on ARM. A transposed B is just a different pack routine:
// packBT un-transposes each KC×NC block while staging it, and the same
// microkernel runs unchanged. Dimension checking is shared with every
// other kernel via checkDims (an n×k operand and a k×n operand have the
// same element count).
func TransB(m, n, k int, a, bt, c []float32) {
	checkDims(m, n, k, a, bt, c)
	packedRange(m, n, k, 0, n, a, bt, c, false, true)
}

// ParallelCols computes C = A·B splitting the *columns* of B across
// `threads` goroutines, each running the packed kernel on its own
// column stripe with its own pooled pack buffer. This is the
// batched-GEMM entry point: a minibatch widens the n dimension (images
// side by side as column blocks) while m — the filter count — stays
// fixed, so splitting rows (Parallel) runs out of parallelism exactly
// when batching creates more. Every element of C is written by exactly
// one goroutine in a fixed per-element order, so results are
// deterministic run to run.
func ParallelCols(threads, m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		packedRange(m, n, k, 0, n, a, b, c, false, false)
		return
	}
	var wg sync.WaitGroup
	cols := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		j0 := t * cols
		j1 := min(j0+cols, n)
		if j0 >= j1 {
			break
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			packedRange(m, n, k, j0, j1, a, b, c, false, false)
		}(j0, j1)
	}
	wg.Wait()
}

// packedRange runs the packed kernel on the [j0, j1) column stripe of
// C: stage a KC×NC block of B (or of Bᵀ, un-transposing), then stream
// every row of C against it. The KC blocks advance in increasing-k
// order and the unroll grouping depends only on p's alignment, never on
// the column stripe, so every element's accumulation sequence is the
// same no matter how the columns are split across goroutines.
func packedRange(m, n, k, j0, j1 int, a, b, c []float32, accumulate, transB bool) {
	if !accumulate {
		for i := 0; i < m; i++ {
			ci := c[i*n+j0 : i*n+j1]
			for j := range ci {
				ci[j] = 0
			}
		}
	}
	if m == 0 || k == 0 || j1 <= j0 {
		return
	}
	sp := packPool.Get().(*[]float32)
	buf := *sp
	for jc := j0; jc < j1; jc += packNC {
		nc := min(packNC, j1-jc)
		for pc := 0; pc < k; pc += packKC {
			kc := min(packKC, k-pc)
			bp := buf[:kc*nc]
			if transB {
				packBT(kc, nc, k, b[jc*k+pc:], bp)
			} else {
				packB(kc, nc, n, b[pc*n+jc:], bp)
			}
			for i := 0; i < m; i++ {
				packedRowK4(a[i*k+pc:][:kc], bp, c[i*n+jc:], nc)
			}
		}
	}
	packPool.Put(sp)
}

// packB stages a kc×nc block of row-major B (row stride ldb) into the
// contiguous pack buffer dst, one row copy per k step.
//
//dnn:hotpath
func packB(kc, nc, ldb int, src, dst []float32) {
	for p := 0; p < kc; p++ {
		copy(dst[p*nc:][:nc], src[p*ldb:][:nc])
	}
}

// packBT stages a kc×nc block of B from its transposed storage (src is
// Bᵀ: rows of src are columns of B, row stride ldb), un-transposing
// into the same layout packB produces. Columns are processed four at a
// time so the strided gather reads four source rows per pass; the
// four-element scatter into dst is a nested loop over a same-length
// pair of views, keeping the per-element stores check-free.
//
//dnn:hotpath
func packBT(kc, nc, ldb int, src, dst []float32) {
	for jq := 0; jq < nc; jq += 4 {
		w := nc - jq
		if w > 4 {
			w = 4
		}
		s0 := src[jq*ldb:][:kc]
		s1, s2, s3 := s0, s0, s0
		if w > 1 {
			s1 = src[(jq+1)*ldb:][:kc]
		}
		if w > 2 {
			s2 = src[(jq+2)*ldb:][:kc]
		}
		if w > 3 {
			s3 = src[(jq+3)*ldb:][:kc]
		}
		var t [4]float32
		for p, v0 := range s0 {
			t[0] = v0
			t[1] = s1[p]
			t[2] = s2[p]
			t[3] = s3[p]
			d := dst[p*nc+jq:][:w]
			tt := t[:w]
			for q, tv := range tt {
				d[q] = tv
			}
		}
	}
}

// packedRowK4 is the register-tiled microkernel: one C row updated
// against a resident kc×nc packed B block, with k unrolled by four so
// each pass over the row combines four B panel rows (eight FLOPs per
// element visit). The four a-scalars live in registers; every slice in
// the leaf loop is a [:nc] view sharing one length value, so the
// accumulation carries no bounds checks. The caller pre-zeroes C rows
// (or not, for the accumulate epilogue), which keeps overwrite and
// accumulate on this single kernel.
//
//dnn:hotpath
func packedRowK4(ai, bp, ci []float32, nc int) {
	ci = ci[:nc]
	kc := len(ai)
	p := 0
	for ; p+4 <= kc; p += 4 {
		a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
		b0 := bp[p*nc:][:nc]
		b1 := bp[(p+1)*nc:][:nc]
		b2 := bp[(p+2)*nc:][:nc]
		b3 := bp[(p+3)*nc:][:nc]
		for j, bv := range b0 {
			ci[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; p < kc; p++ {
		av := ai[p]
		b0 := bp[p*nc:][:nc]
		for j, bv := range b0 {
			ci[j] += av * bv
		}
	}
}
