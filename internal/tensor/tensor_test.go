package tensor

import (
	"testing"
	"testing/quick"
)

func TestLayoutString(t *testing.T) {
	want := map[Layout]string{
		CHW: "CHW", CWH: "CWH", HCW: "HCW", HWC: "HWC",
		WCH: "WCH", WHC: "WHC", CHW4: "CHW4", CHW8: "CHW8",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("Layout(%d).String() = %q, want %q", l, l.String(), s)
		}
		got, err := ParseLayout(s)
		if err != nil || got != l {
			t.Errorf("ParseLayout(%q) = %v, %v; want %v", s, got, err, l)
		}
	}
	if _, err := ParseLayout("XYZ"); err == nil {
		t.Error("ParseLayout(XYZ) should fail")
	}
}

func TestLayoutBlockSize(t *testing.T) {
	for _, l := range Layouts() {
		b := l.BlockSize()
		switch l {
		case CHW4:
			if b != 4 {
				t.Errorf("CHW4 block = %d", b)
			}
		case CHW8:
			if b != 8 {
				t.Errorf("CHW8 block = %d", b)
			}
		default:
			if b != 0 {
				t.Errorf("%s block = %d, want 0", l, b)
			}
		}
	}
}

func TestDataLen(t *testing.T) {
	if n := DataLen(CHW, 3, 5, 7); n != 105 {
		t.Errorf("DataLen(CHW,3,5,7) = %d", n)
	}
	// Blocked layouts round channels up to a whole block.
	if n := DataLen(CHW4, 3, 5, 7); n != 4*5*7 {
		t.Errorf("DataLen(CHW4,3,5,7) = %d", n)
	}
	if n := DataLen(CHW8, 9, 2, 2); n != 16*2*2 {
		t.Errorf("DataLen(CHW8,9,2,2) = %d", n)
	}
}

// TestIndexBijective verifies that every layout's indexing function is a
// bijection between logical coordinates and distinct storage offsets.
func TestIndexBijective(t *testing.T) {
	const c, h, w = 5, 4, 3
	for _, l := range Layouts() {
		tt := New(l, c, h, w)
		seen := make(map[int][3]int)
		for ci := 0; ci < c; ci++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					idx := tt.Index(ci, hi, wi)
					if idx < 0 || idx >= len(tt.Data) {
						t.Fatalf("%s: index out of range for (%d,%d,%d): %d", l, ci, hi, wi, idx)
					}
					if prev, dup := seen[idx]; dup {
						t.Fatalf("%s: offset %d reused by %v and (%d,%d,%d)", l, idx, prev, ci, hi, wi)
					}
					seen[idx] = [3]int{ci, hi, wi}
				}
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	for _, l := range Layouts() {
		tt := New(l, 3, 4, 5)
		val := float32(0)
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					tt.Set(c, h, w, val)
					val++
				}
			}
		}
		val = 0
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					if got := tt.At(c, h, w); got != val {
						t.Fatalf("%s: At(%d,%d,%d) = %v, want %v", l, c, h, w, got, val)
					}
					val++
				}
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(CHW, 2, 2, 2)
	a.FillRandom(1)
	b := a.Clone()
	b.Set(0, 0, 0, 99)
	if a.At(0, 0, 0) == 99 {
		t.Error("Clone shares storage with original")
	}
	if !AlmostEqual(a, a.Clone(), 0) {
		t.Error("Clone should be elementwise equal")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(HWC, 3, 3, 3)
	b := New(HWC, 3, 3, 3)
	a.FillRandom(42)
	b.FillRandom(42)
	if !AlmostEqual(a, b, 0) {
		t.Error("FillRandom with equal seeds should produce equal tensors")
	}
	b.FillRandom(43)
	if AlmostEqual(a, b, 0) {
		t.Error("FillRandom with different seeds should differ")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(CHW, 1, 2, 2)
	b := New(HWC, 1, 2, 2)
	b.Set(0, 1, 1, 2.5)
	if d := MaxAbsDiff(a, b); d != 2.5 {
		t.Errorf("MaxAbsDiff = %v, want 2.5", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxAbsDiff should panic on shape mismatch")
		}
	}()
	MaxAbsDiff(a, New(CHW, 2, 2, 2))
}

func TestAlmostEqualShapeMismatch(t *testing.T) {
	if AlmostEqual(New(CHW, 1, 1, 1), New(CHW, 1, 1, 2), 1e9) {
		t.Error("AlmostEqual must reject shape mismatch")
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { New(CHW, 0, 1, 1) },
		func() { New(CHW, 1, -1, 1) },
		func() { New(Layout(200), 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("New should panic on invalid arguments")
				}
			}()
			f()
		}()
	}
}

// TestConvertPreservesValues: property test — Convert to any layout and
// back preserves every element exactly.
func TestConvertPreservesValues(t *testing.T) {
	f := func(seed int64, li, lj uint8) bool {
		src := New(Layouts()[int(li)%numLayouts], 3, 4, 5)
		src.FillRandom(seed)
		to := Layouts()[int(lj)%numLayouts]
		round := Convert(Convert(src, to), src.Layout)
		return AlmostEqual(src, round, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestBytes(t *testing.T) {
	if b := New(CHW, 2, 3, 4).Bytes(); b != 2*3*4*4 {
		t.Errorf("Bytes = %d", b)
	}
	if b := New(CHW8, 2, 3, 4).Bytes(); b != 8*3*4*4 {
		t.Errorf("CHW8 Bytes = %d", b)
	}
}
