package selector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/pbqp"
	"pbqpdnn/internal/tensor"
)

// randomDAG builds a random small network: a stem, a fan-out of 2–4
// branches of random conv chains, a concat, and a tail — the structure
// space the paper's formulation must handle (chains, diamonds,
// inception-style modules).
func randomDAG(rng *rand.Rand) *dnn.Graph {
	b, x := dnn.NewBuilder("rand", 2+rng.Intn(6), 12+rng.Intn(9), 12+rng.Intn(9))
	stemK := []int{1, 3, 5}[rng.Intn(3)]
	x = b.Conv(x, "stem", 4+rng.Intn(8), stemK, 1, stemK/2)
	if rng.Intn(2) == 0 {
		x = b.ReLU(x, "stem-relu")
	}
	nBranch := 2 + rng.Intn(3)
	branches := make([]int, nBranch)
	for i := range branches {
		y := x
		depth := 1 + rng.Intn(2)
		for d := 0; d < depth; d++ {
			k := []int{1, 3}[rng.Intn(2)]
			y = b.Conv(y, name("b", i, d), 3+rng.Intn(6), k, 1, k/2)
		}
		branches[i] = y
	}
	x = b.Concat("cat", branches...)
	k := []int{1, 3, 5}[rng.Intn(3)]
	x = b.Conv(x, "tail", 4, k, 1, k/2)
	x = b.Softmax(x, "sm")
	return b.Graph()
}

func name(prefix string, i, d int) string {
	return prefix + string(rune('0'+i)) + "_" + string(rune('0'+d))
}

// TestRandomDAGInvariants is the selector's master property test over
// random DAG networks and both machine models:
//
//  1. the plan is structurally legal (checked by checkLegal);
//  2. the heuristic solution matches the exact branch-and-bound optimum
//     (and is flagged optimal — these instances are fully reducible);
//  3. PBQP's total cost is ≤ every baseline strategy's;
//  4. the reported node+edge cost decomposition is self-consistent.
func TestRandomDAGInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomDAG(rng)
		machine := cost.IntelHaswell
		if rng.Intn(2) == 0 {
			machine = cost.CortexA57
		}
		opts := Options{Prof: cost.NewModel(machine), Threads: 1 + rng.Intn(4)}

		plan, err := Select(net, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		checkLegal(t, plan)
		if !plan.Optimal {
			t.Logf("seed %d: not optimal", seed)
			return false
		}

		exactOpts := opts
		exactOpts.Mode = pbqp.Exact
		exact, err := Select(net, exactOpts)
		if err != nil {
			return false
		}
		if diff := plan.TotalCost() - exact.TotalCost(); diff > 1e-9 || diff < -1e-9 {
			t.Logf("seed %d: heuristic %g != exact %g", seed, plan.TotalCost(), exact.TotalCost())
			return false
		}

		for _, rival := range []func() (*Plan, error){
			func() (*Plan, error) { return Baseline(net, opts) },
			func() (*Plan, error) { return NoEdgeCost(net, opts) },
			func() (*Plan, error) { return LocalOptimal(net, tensor.CHW, opts) },
			func() (*Plan, error) { return FamilyBest(net, conv.FamilyIm2, opts) },
			func() (*Plan, error) { return FamilyBest(net, conv.FamilyWinograd, opts) },
		} {
			r, err := rival()
			if err != nil {
				return false
			}
			checkLegal(t, r)
			if plan.TotalCost() > r.TotalCost()*(1+1e-9) {
				t.Logf("seed %d: pbqp %g beaten by %s %g", seed, plan.TotalCost(), r.Strategy, r.TotalCost())
				return false
			}
		}

		if plan.TotalCost() != plan.NodeCost+plan.EdgeCost {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRandomDAGExecution end-to-end executes optimized plans for random
// DAGs and verifies numerical agreement with the reference network.
// (Kept separate from the invariant test because real execution is the
// expensive part.)
func TestRandomDAGPlanHasAllLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		net := randomDAG(rng)
		plan, err := Select(net, Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Primitives) != len(net.ConvLayers()) {
			t.Fatalf("trial %d: plan covers %d convs, net has %d", trial, len(plan.Primitives), len(net.ConvLayers()))
		}
		for _, l := range net.Layers {
			if _, ok := plan.Layouts[l.ID]; !ok {
				t.Fatalf("trial %d: layer %q has no layout", trial, l.Name)
			}
		}
	}
}

// TestTableProfilerMatchesLive: a cost.Table materialized from the
// model drives the selector to the identical plan (the deployment
// workflow of paper §4).
func TestTableProfilerMatchesLive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := randomDAG(rng)
	mo := cost.NewModel(cost.CortexA57)
	live, err := Select(net, Options{Prof: mo, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	table := cost.BuildTable(net, conv.Library(), mo, "arm", 4)
	fromTable, err := Select(net, Options{Prof: table, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if live.TotalCost() != fromTable.TotalCost() {
		t.Errorf("table-driven plan cost %g != live %g", fromTable.TotalCost(), live.TotalCost())
	}
	for id, p := range live.Primitives {
		if fromTable.Primitives[id].Name != p.Name {
			t.Errorf("layer %d: table picked %s, live picked %s", id, fromTable.Primitives[id].Name, p.Name)
		}
	}
}
