package program

import (
	"testing"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/selector"
)

// TestFusionFoldsEpilogues pins the fusion pass's rewrites on the
// planner DAG: the stem's conv+relu, branch 1's conv+relu, and the
// residual tail's conv+add+relu all collapse into their producing
// convolution, which keeps the conv's Layer (its costed scenario) and
// takes the fused-away value's name.
func TestFusionFoldsEpilogues(t *testing.T) {
	p := compile(t, inceptionNet(), 4)
	net := p.Plan.Net
	byName := map[string]*Instr{}
	for i := range p.Instrs {
		byName[p.Instrs[i].Name] = &p.Instrs[i]
	}
	for _, name := range []string{"stem-relu", "b1/relu"} {
		ins, ok := byName[name]
		if !ok {
			t.Fatalf("no instruction produces %q", name)
		}
		if ins.Op != OpConv || ins.Epi != gemm.EpiReLU || len(ins.EpiLayers) != 1 {
			t.Errorf("%q: op=%s epi=%s layers=%d, want fused conv+relu", name, ins.Op, ins.Epi, len(ins.EpiLayers))
		}
		if len(ins.Args) != 1 {
			t.Errorf("%q: %d args, want 1", name, len(ins.Args))
		}
	}
	ins, ok := byName["res/relu"]
	if !ok {
		t.Fatal("no instruction produces the residual relu value")
	}
	if ins.Op != OpConv || ins.Epi != gemm.EpiAddReLU {
		t.Fatalf("residual tail: op=%s epi=%s, want fused conv+add+relu", ins.Op, ins.Epi)
	}
	if len(ins.EpiLayers) != 2 || ins.EpiLayers[0].Name != "res/add" || ins.EpiLayers[1].Name != "res/relu" {
		t.Errorf("residual tail fuses %v, want [res/add res/relu]", ins.EpiLayers)
	}
	if len(ins.Args) != 2 {
		t.Fatalf("residual tail has %d args, want conv input + residual", len(ins.Args))
	}
	if res := &p.Instrs[ins.Args[1]]; res.Name != "cat" {
		t.Errorf("residual operand is %q, want the concat value", res.Name)
	}
	if ins.Layer.Name != "res/conv" {
		t.Errorf("fused instruction's scenario layer is %q, want res/conv", ins.Layer.Name)
	}
	if ins.ValueLayer().Name != "res/relu" {
		t.Errorf("fused instruction's value layer is %q, want res/relu", ins.ValueLayer().Name)
	}
	// Every fused-away layer maps to its carrying instruction.
	for _, l := range net.Layers {
		home := p.InstrOf[l.ID]
		found := false
		ci := &p.Instrs[home]
		if ci.Layer == l {
			found = true
		}
		for _, fl := range ci.EpiLayers {
			if fl == l {
				found = true
			}
		}
		if !found {
			t.Errorf("layer %q maps to instruction %q which does not carry it", l.Name, ci.Name)
		}
	}
}

// TestFusionSkipsMultiConsumerProducers: a convolution whose value
// feeds two consumers is observable and must not fuse into either.
func TestFusionSkipsMultiConsumerProducers(t *testing.T) {
	b, x := dnn.NewBuilder("fanout", 4, 8, 8)
	x = b.Conv(x, "c1", 4, 3, 1, 1)
	r1 := b.ReLU(x, "r1")
	r2 := b.ReLU(x, "r2")
	x = b.Add("sum", r1, r2)
	b.Softmax(x, "prob")
	p := compile(t, b.Graph(), 4)
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Epi != gemm.EpiNone || len(ins.EpiLayers) > 0 {
			t.Errorf("%q fused (%s) despite its producer having two consumers", ins.Name, ins.Epi)
		}
	}
	if p.Stats.FusedEpilogues != 0 {
		t.Errorf("stats report %d fused epilogues on the fanout net", p.Stats.FusedEpilogues)
	}
}

// TestFusionSkipsOutput: an elementwise layer producing the network
// output stays its own instruction (the output must remain a fresh,
// caller-owned allocation).
func TestFusionSkipsOutput(t *testing.T) {
	b, x := dnn.NewBuilder("relu-tail", 4, 8, 8)
	x = b.Conv(x, "c1", 4, 3, 1, 1)
	b.ReLU(x, "out-relu")
	p := compile(t, b.Graph(), 1)
	out := &p.Instrs[p.Output]
	if out.Op != OpReLU || out.Epi != gemm.EpiNone {
		t.Errorf("output instruction is %s epi=%s, want an unfused relu", out.Op, out.Epi)
	}
}

// TestNoFuseBaselineShape: CompileBatchNoFuse reproduces the
// pre-fusion stream — one instruction per layer plus one per legalized
// edge — and its stats carry no fusion deltas.
func TestNoFuseBaselineShape(t *testing.T) {
	p := compileNoFuse(t, inceptionNet(), 4)
	wantConv := 0
	for _, chain := range p.Plan.Conversions {
		if len(chain) > 0 {
			wantConv++
		}
	}
	if got, want := len(p.Instrs), p.Plan.Net.NumLayers()+wantConv; got != want {
		t.Errorf("%d instructions, want %d", got, want)
	}
	if p.Stats.FusedEpilogues != 0 || p.Stats.FusedConversions != 0 {
		t.Errorf("no-fuse program reports fusion: %d epilogues, %d conversions",
			p.Stats.FusedEpilogues, p.Stats.FusedConversions)
	}
	if p.Stats.UnfusedInstructions != p.Stats.Instructions || p.Stats.UnfusedPeakBytes != p.Stats.PeakBytes {
		t.Errorf("no-fuse baseline figures diverge from the program's own")
	}
}

// TestFusionReducesInstructionsOnModels: on the real model zoo, fusion
// must fold a substantial share of the stream (every conv feeding a
// single relu fuses) without growing peak residency, at batch 1 and 8.
func TestFusionReducesInstructionsOnModels(t *testing.T) {
	for _, name := range models.Names() {
		g, err := models.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 8} {
			plan, err := selector.SelectBatch(g, batch, selector.Options{
				Prof: cost.NewModel(cost.IntelHaswell), Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			p, err := CompileBatch(plan, batch)
			if err != nil {
				t.Fatal(err)
			}
			s := p.Stats
			if s.FusedEpilogues == 0 {
				t.Errorf("%s batch %d: no epilogues fused", name, batch)
			}
			if s.Instructions >= s.UnfusedInstructions {
				t.Errorf("%s batch %d: %d instructions, unfused %d — fusion shrank nothing",
					name, batch, s.Instructions, s.UnfusedInstructions)
			}
			if s.PeakBytes > s.UnfusedPeakBytes {
				t.Errorf("%s batch %d: fused peak %d B exceeds unfused %d B",
					name, batch, s.PeakBytes, s.UnfusedPeakBytes)
			}
			// No absorbable conversion may survive fusion: a remaining
			// convert feeding a conv's data input either has a multi-step
			// chain, another consumer, or a layout pair the primitive's
			// packer cannot gather.
			if batch > 1 {
				for i := range p.Instrs {
					v := &p.Instrs[i]
					if v.Op != OpConvert || len(v.Chain) != 1 {
						continue
					}
					var consumers []int
					for j := range p.Instrs {
						for _, a := range p.Instrs[j].Args {
							if a == i {
								consumers = append(consumers, j)
							}
						}
					}
					if len(consumers) != 1 {
						continue
					}
					k := &p.Instrs[consumers[0]]
					if k.Op == OpConv && len(k.CvtIn) == 0 && k.Args[0] == i &&
						v.Chain[0].To == k.Prim.In && k.Prim.CanAbsorbInput(v.Chain[0].From) {
						t.Errorf("%s batch %d: absorbable conversion %q survived fusion", name, batch, v.Name)
					}
				}
			}
			t.Logf("%s batch %d: %d→%d instrs (%d epi, %d cvt), peak %d→%d KB",
				name, batch, s.UnfusedInstructions, s.Instructions, s.FusedEpilogues,
				s.FusedConversions, s.UnfusedPeakBytes/1024, s.PeakBytes/1024)
		}
	}
}
