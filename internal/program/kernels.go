package program

// This file holds the compiled executor's layer operators, moved here
// from the exec package so the Program IR owns everything an
// instruction needs short of the weights. Unlike the oracle operators
// in exec — which go through At/Set logical indexing so they are
// obviously correct in every layout — these write into caller-provided
// destination tensors (slot-backed, recycled, or in-place aliases of an
// input) and carry layout-specialized fast paths that walk contiguous
// slabs for the CHW and HWC layouts. Every fast path is tested against
// its oracle counterpart across layouts in the exec package's tests.
//
// In-place contract: ReLUInto, CopyInto and AddInto tolerate dst
// sharing storage with their (first) input — they read each element
// before overwriting it and never read across elements. SoftmaxInto is
// likewise alias-safe (the max/sum passes complete before any write).
// LRNInto, PoolInto, ConcatInto and FCInto must NOT be run in place:
// they read neighborhoods or reshape, so writes would corrupt pending
// reads.

import (
	"math"

	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/tensor"
)

// ReLUInto clamps negatives elementwise. Layout-independent: dst and in
// share a layout, and the padding lanes of blocked layouts hold zeros,
// which relu maps to zero. The destination is clamped to the source
// length up front so the loop indexes two same-length slices with no
// bounds checks.
//
//dnn:hotpath
func ReLUInto(dst, in *tensor.Tensor) {
	d := dst.Data[:len(in.Data)]
	for i, v := range in.Data {
		if v < 0 {
			d[i] = 0
		} else {
			d[i] = v
		}
	}
}

// CopyInto copies in's payload into dst (dropout identity). dst and in
// share layout and shape, so the physical slabs correspond 1:1.
//
//dnn:hotpath
func CopyInto(dst, in *tensor.Tensor) {
	copy(dst.Data, in.Data)
}

// AddInto sums the inputs elementwise. When every input shares dst's
// layout — the legalized plan guarantees it — the physical slabs
// correspond and the sum runs over contiguous memory. dst may alias
// ins[0] (in-place accumulation) but no other input.
//
//dnn:hotpath
func AddInto(dst *tensor.Tensor, ins []*tensor.Tensor) {
	same := true
	for _, t := range ins {
		if t.Layout != dst.Layout {
			same = false
			break
		}
	}
	if same {
		copy(dst.Data, ins[0].Data)
		for _, t := range ins[1:] {
			d := dst.Data[:len(t.Data)]
			for i, v := range t.Data {
				d[i] += v
			}
		}
		return
	}
	for c := 0; c < dst.C; c++ {
		for h := 0; h < dst.H; h++ {
			for w := 0; w < dst.W; w++ {
				var acc float32
				for _, t := range ins {
					acc += t.At(c, h, w)
				}
				dst.Set(c, h, w, acc)
			}
		}
	}
}

// PoolInto pools in into dst with the layer's geometry, specializing
// the channel-planar CHW layout (window walks one contiguous plane per
// channel) and the channels-last HWC layout (window cells are
// contiguous C-runs).
//
//dnn:hotpath
func PoolInto(dst, in *tensor.Tensor, l *dnn.Layer, isMax bool) {
	switch {
	case in.Layout == tensor.CHW && dst.Layout == tensor.CHW:
		poolCHW(dst, in, l, isMax)
	case in.Layout == tensor.HWC && dst.Layout == tensor.HWC:
		poolHWC(dst, in, l, isMax)
	default:
		poolGeneric(dst, in, l, isMax)
	}
}

//dnn:hotpath
func poolCHW(dst, in *tensor.Tensor, l *dnn.Layer, isMax bool) {
	inHW, outHW := in.H*in.W, l.OutH*l.OutW
	for c := 0; c < l.OutC; c++ {
		src := in.Data[c*inHW : (c+1)*inHW]
		out := dst.Data[c*outHW : (c+1)*outHW]
		di := 0
		for y := 0; y < l.OutH; y++ {
			h0 := y*l.PoolStride - l.PoolPad
			hLo, hHi := clampWindow(h0, l.PoolK, in.H)
			for x := 0; x < l.OutW; x++ {
				w0 := x*l.PoolStride - l.PoolPad
				wLo, wHi := clampWindow(w0, l.PoolK, in.W)
				var acc float32
				if isMax {
					acc = float32(math.Inf(-1))
				}
				for hy := hLo; hy < hHi; hy++ {
					row := src[hy*in.W : hy*in.W+in.W]
					for wx := wLo; wx < wHi; wx++ {
						v := row[wx]
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
					}
				}
				if n := (hHi - hLo) * (wHi - wLo); !isMax && n > 0 {
					acc /= float32(n)
				}
				out[di] = acc
				di++
			}
		}
	}
}

//dnn:hotpath
func poolHWC(dst, in *tensor.Tensor, l *dnn.Layer, isMax bool) {
	C := in.C
	for y := 0; y < l.OutH; y++ {
		h0 := y*l.PoolStride - l.PoolPad
		hLo, hHi := clampWindow(h0, l.PoolK, in.H)
		for x := 0; x < l.OutW; x++ {
			w0 := x*l.PoolStride - l.PoolPad
			wLo, wHi := clampWindow(w0, l.PoolK, in.W)
			out := dst.Data[(y*l.OutW+x)*C : (y*l.OutW+x)*C+C]
			if isMax {
				negInf := float32(math.Inf(-1))
				for c := range out {
					out[c] = negInf
				}
				for hy := hLo; hy < hHi; hy++ {
					for wx := wLo; wx < wHi; wx++ {
						run := in.Data[(hy*in.W+wx)*C : (hy*in.W+wx)*C+C]
						for c, v := range run {
							if v > out[c] {
								out[c] = v
							}
						}
					}
				}
				continue
			}
			for c := range out {
				out[c] = 0
			}
			for hy := hLo; hy < hHi; hy++ {
				for wx := wLo; wx < wHi; wx++ {
					run := in.Data[(hy*in.W+wx)*C : (hy*in.W+wx)*C+C]
					for c, v := range run {
						out[c] += v
					}
				}
			}
			// Divide (not multiply-by-reciprocal) to stay bitwise
			// identical to the oracle operator.
			if n := (hHi - hLo) * (wHi - wLo); n > 0 {
				for c := range out {
					out[c] /= float32(n)
				}
			}
		}
	}
}

// clampWindow intersects the window [start, start+k) with [0, limit).
func clampWindow(start, k, limit int) (lo, hi int) {
	lo, hi = start, start+k
	if lo < 0 {
		lo = 0
	}
	if hi > limit {
		hi = limit
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func poolGeneric(dst, in *tensor.Tensor, l *dnn.Layer, isMax bool) {
	for c := 0; c < l.OutC; c++ {
		for y := 0; y < l.OutH; y++ {
			for x := 0; x < l.OutW; x++ {
				h0 := y*l.PoolStride - l.PoolPad
				w0 := x*l.PoolStride - l.PoolPad
				hLo, hHi := clampWindow(h0, l.PoolK, in.H)
				wLo, wHi := clampWindow(w0, l.PoolK, in.W)
				var acc float32
				if isMax {
					acc = float32(math.Inf(-1))
				}
				for hy := hLo; hy < hHi; hy++ {
					for wx := wLo; wx < wHi; wx++ {
						v := in.At(c, hy, wx)
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
					}
				}
				if n := (hHi - hLo) * (wHi - wLo); !isMax && n > 0 {
					acc /= float32(n)
				}
				dst.Set(c, y, x, acc)
			}
		}
	}
}

// lrnSize/lrnAlpha are the oracle's fixed AlexNet LRN parameters
// (β = 0.75 is baked into lrnScale's square-root form).
const (
	lrnSize  = 5
	lrnAlpha = 1e-4
)

// lrnScale is the LRN divisor (1 + α/size·Σv²)^0.75, computed as
// t^½·t^¼ — two hardware square roots per element instead of a
// math.Pow call, which profiled as the bulk of every LRN layer's
// runtime. The square-root form is the same real number to ~2 ulp in
// float64, far below the float32 results it divides into.
func lrnScale(sum float64) float64 {
	s := math.Sqrt(1 + lrnAlpha/lrnSize*sum)
	return s * math.Sqrt(s)
}

// LRNInto applies across-channel LRN with the oracle's fixed AlexNet
// parameters. The HWC path is the hot one (the selector's plans keep
// conv→LRN chains in HWC): each pixel's channels are contiguous, so
// the squared-sum window slides along the pixel row — two
// multiply-adds per element however wide the window. CHW keeps the
// strided directly-indexed column walk; anything else goes through
// the layout-blind accessors.
//
//dnn:hotpath
func LRNInto(dst, in *tensor.Tensor) {
	half := lrnSize / 2
	if in.Layout == tensor.HWC && dst.Layout == tensor.HWC {
		cC := in.C
		for p := 0; p < in.H*in.W; p++ {
			src := in.Data[p*cC:][:cC]
			d := dst.Data[p*cC:][:cC]
			var sum float64
			lead := half + 1
			if lead > cC {
				lead = cC
			}
			for cc := 0; cc < lead; cc++ {
				v := float64(src[cc])
				sum += v * v
			}
			for c := 0; c < cC; c++ {
				d[c] = float32(float64(src[c]) / lrnScale(sum))
				if nc := c + half + 1; nc < cC {
					v := float64(src[nc])
					sum += v * v
				}
				if oc := c - half; oc >= 0 {
					v := float64(src[oc])
					sum -= v * v
				}
			}
		}
		return
	}
	if in.Layout == tensor.CHW && dst.Layout == tensor.CHW {
		plane := in.H * in.W
		for off := 0; off < plane; off++ {
			for c := 0; c < in.C; c++ {
				var sum float64
				lo, hi := clampWindow(c-half, lrnSize, in.C)
				for cc := lo; cc < hi; cc++ {
					v := float64(in.Data[cc*plane+off])
					sum += v * v
				}
				dst.Data[c*plane+off] = float32(float64(in.Data[c*plane+off]) / lrnScale(sum))
			}
		}
		return
	}
	for h := 0; h < in.H; h++ {
		for w := 0; w < in.W; w++ {
			for c := 0; c < in.C; c++ {
				var sum float64
				lo, hi := clampWindow(c-half, lrnSize, in.C)
				for cc := lo; cc < hi; cc++ {
					v := float64(in.At(cc, h, w))
					sum += v * v
				}
				dst.Set(c, h, w, float32(float64(in.At(c, h, w))/lrnScale(sum)))
			}
		}
	}
}

// ConcatInto concatenates the inputs along channels. In CHW the inputs'
// payloads are whole contiguous slabs laid end to end; in HWC each
// pixel's destination row is the inputs' C-runs laid end to end.
//
//dnn:hotpath
func ConcatInto(dst *tensor.Tensor, ins []*tensor.Tensor) {
	same := true
	for _, t := range ins {
		if t.Layout != dst.Layout {
			same = false
			break
		}
	}
	switch {
	case same && dst.Layout == tensor.CHW:
		off := 0
		for _, t := range ins {
			off += copy(dst.Data[off:], t.Data)
		}
	case same && dst.Layout == tensor.HWC:
		hw := dst.H * dst.W
		base := 0
		for _, t := range ins {
			for p := 0; p < hw; p++ {
				copy(dst.Data[p*dst.C+base:p*dst.C+base+t.C], t.Data[p*t.C:(p+1)*t.C])
			}
			base += t.C
		}
	default:
		base := 0
		for _, t := range ins {
			for c := 0; c < t.C; c++ {
				for h := 0; h < t.H; h++ {
					for w := 0; w < t.W; w++ {
						dst.Set(base+c, h, w, t.At(c, h, w))
					}
				}
			}
			base += t.C
		}
	}
}

// FCInto applies a dense layer. In CHW the logical flatten order equals
// the storage order, so the input payload is used directly with no
// copy. The 1×1-spatial output indexes as Data[o] in every layout.
func FCInto(dst, in *tensor.Tensor, mat []float32, outN int) {
	inN := in.C * in.H * in.W
	var flat []float32
	if in.Layout == tensor.CHW {
		flat = in.Data
	} else {
		flat = make([]float32, inN)
		i := 0
		for c := 0; c < in.C; c++ {
			for h := 0; h < in.H; h++ {
				for w := 0; w < in.W; w++ {
					flat[i] = in.At(c, h, w)
					i++
				}
			}
		}
	}
	fcApply(dst.Data, flat, mat, outN, inN)
}

// fcApply is FCInto's arithmetic core: dst[o] = mat-row(o)·flat. Kept
// separate from the layout dispatch (which may allocate a flatten
// buffer) so the dot-product loop is allocation-free and, with the
// weight row re-sliced to flat's length, carries no bounds checks.
//
//dnn:hotpath
func fcApply(dst, flat, mat []float32, outN, inN int) {
	fl := flat[:inN]
	for o := 0; o < outN; o++ {
		var acc float32
		row := mat[o*inN:][:inN]
		for j, v := range fl {
			acc += v * row[j]
		}
		dst[o] = acc
	}
}

// SoftmaxInto normalizes across channels at each spatial position,
// specializing HWC (each pixel is one contiguous C-run) and CHW (the
// channel column has a fixed plane stride).
//
//dnn:hotpath
func SoftmaxInto(dst, in *tensor.Tensor) {
	switch {
	case in.Layout == tensor.HWC && dst.Layout == tensor.HWC:
		C := in.C
		for p := 0; p < in.H*in.W; p++ {
			softmaxRun(dst.Data[p*C:(p+1)*C], in.Data[p*C:(p+1)*C], 1)
		}
	case in.Layout == tensor.CHW && dst.Layout == tensor.CHW:
		plane := in.H * in.W
		for off := 0; off < plane; off++ {
			softmaxRun(dst.Data[off:off+(in.C-1)*plane+1], in.Data[off:off+(in.C-1)*plane+1], plane)
		}
	default:
		for h := 0; h < in.H; h++ {
			for w := 0; w < in.W; w++ {
				max := math.Inf(-1)
				for c := 0; c < in.C; c++ {
					if v := float64(in.At(c, h, w)); v > max {
						max = v
					}
				}
				var sum float64
				for c := 0; c < in.C; c++ {
					sum += math.Exp(float64(in.At(c, h, w)) - max)
				}
				for c := 0; c < in.C; c++ {
					dst.Set(c, h, w, float32(math.Exp(float64(in.At(c, h, w))-max)/sum))
				}
			}
		}
	}
}

// softmaxRun normalizes one channel column given as a strided slice
// (stride 1 for HWC runs, the plane size for CHW columns). The slice
// covers exactly the elements {0, stride, 2·stride, …}.
//
//dnn:hotpath
func softmaxRun(dst, src []float32, stride int) {
	max := math.Inf(-1)
	for i := 0; i < len(src); i += stride {
		if v := float64(src[i]); v > max {
			max = v
		}
	}
	var sum float64
	for i := 0; i < len(src); i += stride {
		sum += math.Exp(float64(src[i]) - max)
	}
	for i := 0; i < len(src); i += stride {
		dst[i] = float32(math.Exp(float64(src[i])-max) / sum)
	}
}
