// Quickstart: build a small network, run the PBQP optimizer against a
// machine model, print the generated program, then execute both the
// optimized plan and the textbook reference on real tensors and verify
// they agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// 1. Describe a network with the builder (shapes propagate
	// automatically, Caffe-style).
	b, x := dnn.NewBuilder("quickstart", 3, 32, 32)
	x = b.Conv(x, "conv1", 16, 3, 1, 1)
	x = b.ReLU(x, "relu1")
	x = b.MaxPool(x, "pool1", 2, 2, 0)
	x = b.Conv(x, "conv2", 32, 5, 1, 2)
	x = b.ReLU(x, "relu2")
	x = b.Conv(x, "conv3", 32, 3, 1, 1)
	x = b.AvgPool(x, "gap", 16, 1, 0)
	x = b.FC(x, "fc", 10)
	x = b.Softmax(x, "prob")
	net := b.Graph()

	// 2. Optimize: select one primitive per convolution, minimizing
	// execution plus layout-transformation cost on the modeled platform.
	plan, err := selector.Select(net, selector.Options{
		Prof:    cost.NewModel(cost.IntelHaswell),
		Threads: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted inference: %.3f ms (optimal=%v, solved in %v)\n\n",
		plan.TotalCost()*1e3, plan.Optimal, plan.SolveTime)

	// 3. Inspect the generated program.
	prog, err := exec.GenerateProgram(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog)

	// 4. Execute for real and verify against the textbook reference.
	w := exec.NewWeights(net)
	in := tensor.New(tensor.CHW, 3, 32, 32)
	in.FillRandom(42)
	got, err := exec.Run(plan, in.Clone(), w)
	if err != nil {
		log.Fatal(err)
	}
	want, err := exec.Reference(net, in, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |optimized - reference| = %.2e (tolerance 1e-3)\n",
		tensor.MaxAbsDiff(got, want))
	if !tensor.AlmostEqual(got, want, 1e-3) {
		log.Fatal("optimized plan diverged from reference!")
	}
	fmt.Println("optimized network computes the same function — ok")
}
