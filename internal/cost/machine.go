// Package cost prices (layer, primitive) pairs and layout transforms —
// the paper's §3.1 profiling stage. Two profilers are provided:
//
//   - Model: a deterministic analytic machine model parameterized by
//     platform (SIMD width, core count, cache hierarchy, bandwidth).
//     It substitutes for the paper's physical Intel Core i5-4570 and ARM
//     Cortex-A57 testbeds (see DESIGN.md §3): the mechanisms the paper
//     credits for its platform-dependent selections — vector width
//     matching the VF variants, cache capacity limiting the Winograd
//     workspace, bandwidth shared across cores — are modeled explicitly,
//     so the same selection crossovers emerge.
//
//   - Measure: wall-clock measurement of the real Go primitives on the
//     host, the literal analogue of the paper's layerwise profiling.
package cost

// Machine describes an execution platform for the analytic model.
type Machine struct {
	Name string
	// Cores is the number of physical cores (both testbeds have 4).
	Cores int
	// VecWidth is the FP32 SIMD lane count (8 for AVX2, 4 for NEON).
	VecWidth int
	// FreqGHz is the sustained clock.
	FreqGHz float64
	// L1D, L2, LLC are per-core L1 data, per-core L2, and last-level
	// cache capacities in bytes (LLC is shared).
	L1D, L2, LLC int64
	// MemBW is sustained DRAM bandwidth in GB/s (shared across cores).
	MemBW float64
	// GatherBW is the effective bandwidth of worst-case strided
	// gather/scatter traffic (layout permutations). Desktop cores with
	// deep OoO windows and big TLBs sustain a decent fraction of
	// streaming bandwidth; the embedded core collapses to a trickle,
	// which is why data-layout transformations can erase the direct
	// family's per-layer gains on GoogleNet (paper §5.8).
	GatherBW float64
	// EffScale globally derates sustained efficiency relative to the
	// Intel reference core (narrower issue, weaker prefetchers).
	EffScale float64
	// ThrashKappa is the compute-time penalty per unit of working-set /
	// cache-budget ratio beyond 1. An out-of-order desktop core with a
	// deep cache hierarchy and aggressive prefetchers tolerates
	// overruns far better than an embedded core whose L2 is the last
	// level — this asymmetry is what drives the paper's Figure 4 split
	// between 2D Winograd (Intel) and low-memory 1D Winograd (ARM).
	ThrashKappa float64
}

// IntelHaswell models the paper's Intel Core i5-4570 desktop testbed:
// 4 Haswell cores at 3.2 GHz with 8-wide FP32 AVX2 FMA, 6 MB shared LLC
// and dual-channel DDR3.
var IntelHaswell = Machine{
	Name:        "intel-haswell",
	Cores:       4,
	VecWidth:    8,
	FreqGHz:     3.2,
	L1D:         32 << 10,
	L2:          256 << 10,
	LLC:         6 << 20,
	MemBW:       21,
	GatherBW:    2.2,
	EffScale:    1.0,
	ThrashKappa: 0.02,
}

// CortexA57 models the paper's embedded testbed, the ARM Cortex-A57
// quad in the NVIDIA Tegra X1: 4 cores at 1.9 GHz with 4-wide FP32 NEON,
// a 2 MB shared L2 as the last cache level, and LPDDR4.
var CortexA57 = Machine{
	Name:        "arm-cortex-a57",
	Cores:       4,
	VecWidth:    4,
	FreqGHz:     1.9,
	L1D:         32 << 10,
	L2:          2 << 20,
	LLC:         2 << 20,
	MemBW:       12,
	GatherBW:    0.12,
	EffScale:    0.55,
	ThrashKappa: 0.10,
}

// Machines lists the modeled platforms.
func Machines() []Machine { return []Machine{IntelHaswell, CortexA57} }

// PeakFlops returns the machine's peak FP32 throughput in FLOP/s for the
// given thread count (FMA counts as two operations per lane per cycle).
func (m Machine) PeakFlops(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > m.Cores {
		threads = m.Cores
	}
	return m.FreqGHz * 1e9 * float64(m.VecWidth) * 2 * float64(threads)
}
