package serve

import (
	"sync"
	"testing"
	"time"

	"pbqpdnn/internal/tensor"
)

// TestPercentileEdgeCases pins the nearest-rank percentile at its
// boundaries: empty input, a single sample, and the p0/p100 extremes.
func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil, 50) = %v, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []int{0, 50, 100} {
		if got := percentile(one, p); got != 7*time.Millisecond {
			t.Errorf("percentile([7ms], %d) = %v, want 7ms", p, got)
		}
	}
	sorted := []time.Duration{1, 2, 3, 4, 5}
	if got := percentile(sorted, 0); got != 1 {
		t.Errorf("p0 = %v, want the minimum (1)", got)
	}
	if got := percentile(sorted, 100); got != 5 {
		t.Errorf("p100 = %v, want the maximum (5)", got)
	}
	if got := percentile(sorted, 101); got != 5 {
		t.Errorf("p>100 = %v, want clamped to the maximum (5)", got)
	}
}

// TestMetricsConcurrentSnapshot exercises every mutation path against
// concurrent Snapshot calls; under -race this is the proof that the
// atomic admission counters, the mutex-guarded batch state, and the
// lock-free phase histograms compose safely.
func TestMetricsConcurrentSnapshot(t *testing.T) {
	m := NewMetrics()
	m.mu.Lock()
	m.queueDepth = func() int { return 3 }
	m.mu.Unlock()

	const (
		workers = 4
		iters   = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lats := []time.Duration{time.Millisecond, 2 * time.Millisecond}
			for i := 0; i < iters; i++ {
				m.admit()
				m.admit()
				m.reject()
				m.expire(1)
				m.observeBatch(2, time.Millisecond, lats, nil)
				for p := range m.phases {
					m.phases[p].Observe(time.Duration(i) * time.Microsecond)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < workers*iters/4; i++ {
			m.Snapshot()
			m.PhaseSnapshots()
			m.ObservedNsPerImage(1, 8)
		}
	}()
	wg.Wait()

	s := m.Snapshot()
	total := int64(workers * iters)
	if s.Accepted != 2*total || s.Rejected != total || s.Expired != total {
		t.Errorf("admission counters %d/%d/%d, want %d/%d/%d",
			s.Accepted, s.Rejected, s.Expired, 2*total, total, total)
	}
	if s.Served != 2*total || s.Batches != total {
		t.Errorf("served %d batches %d, want %d/%d", s.Served, s.Batches, 2*total, total)
	}
	for name, ph := range s.Phases {
		if ph.Count != total {
			t.Errorf("phase %s count %d, want %d", name, ph.Count, total)
		}
	}
	if s.QueueDepth != 3 {
		t.Errorf("queue depth %d, want 3", s.QueueDepth)
	}
}

// TestBatcherRecordsPhases drives real requests through a batcher and
// checks each lifecycle phase accumulated plausible observations.
func TestBatcherRecordsPhases(t *testing.T) {
	met := NewMetrics()
	run := func(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
		time.Sleep(2 * time.Millisecond) // a visible engine phase
		outs := make([]*tensor.Tensor, len(ins))
		for i, in := range ins {
			outs[i] = in.Clone()
		}
		return outs, nil
	}
	b := NewBatcher(run, BatchOptions{
		MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 16,
	}, met)
	defer b.Close()

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Infer(t.Context(), testInput()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	s := met.Snapshot()
	for _, name := range PhaseNames {
		ph, ok := s.Phases[name]
		if !ok {
			t.Fatalf("phase %q missing from snapshot", name)
		}
		if ph.Count != n {
			t.Errorf("phase %s count %d, want %d", name, ph.Count, n)
		}
	}
	// The engine phase must reflect the runner's sleep; queue-wait and
	// assembly must be bounded by the flush policy rather than the sleep.
	if eng := s.Phases["engine"]; eng.MeanMS < 1 {
		t.Errorf("engine phase mean %.3fms, want ≥ the 2ms runner sleep (minus timer quantization)", eng.MeanMS)
	}
}
