package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential duration buckets: powers of
// two of a microsecond, 1µs·2⁰ … 1µs·2²⁴ (~16.8s), plus the implicit
// +Inf overflow bucket. Serving latencies span queue waits of
// microseconds to overloaded tails of seconds; doubling buckets hold
// the relative quantile error under ~50% per bucket boundary, plenty
// for p50/p99 overload diagnosis, at 26 atomic counters per phase.
const histBuckets = 25

// histBase is the first bucket's upper bound.
const histBase = time.Microsecond

// Histogram is a fixed-bucket, lock-free duration histogram: exponential
// upper bounds histBase·2^i, an overflow bucket, and sum/count for mean
// rates. Observe is a single atomic add per counter and never
// allocates; Snapshot copies the counters out for quantile estimation
// and Prometheus exposition. The zero value is NOT usable — construct
// with NewHistogram.
type Histogram struct {
	// counts[i] holds observations ≤ histBase·2^i; counts[histBuckets]
	// is the +Inf overflow. All element access goes through sync/atomic.
	counts [histBuckets + 1]int64
	sumNS  int64
	n      int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// HistogramBounds lists the bucket upper bounds (excluding +Inf),
// shared by every Histogram.
func HistogramBounds() []time.Duration {
	bounds := make([]time.Duration, histBuckets)
	for i := range bounds {
		bounds[i] = histBase << uint(i)
	}
	return bounds
}

// bucketOf locates the first bucket whose upper bound holds d.
//
//dnn:hotpath
func bucketOf(d time.Duration) int {
	b := histBase
	for i := 0; i < histBuckets; i++ {
		if d <= b {
			return i
		}
		b <<= 1
	}
	return histBuckets
}

// Observe records one duration. Safe for concurrent use; lock-free.
//
//dnn:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	atomic.AddInt64(&h.counts[bucketOf(d)], 1)
	atomic.AddInt64(&h.sumNS, int64(d))
	atomic.AddInt64(&h.n, 1)
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
type HistogramSnapshot struct {
	// Counts[i] is the number of observations ≤ HistogramBounds()[i];
	// the final element is the +Inf overflow bucket.
	Counts []int64 `json:"counts"`
	SumNS  int64   `json:"sum_ns"`
	Count  int64   `json:"count"`
}

// Snapshot copies the counters out. Concurrent Observes may land
// between element reads; the histogram is monotone, so quantiles remain
// valid estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Counts: make([]int64, histBuckets+1),
		SumNS:  atomic.LoadInt64(&h.sumNS),
		Count:  atomic.LoadInt64(&h.n),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	return s
}

// MeanMS returns the mean observation in milliseconds (0 when empty).
func (s HistogramSnapshot) MeanMS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count) / 1e6
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear
// interpolation within the holding bucket. Observations in the
// overflow bucket report the last finite bound (an underestimate,
// flagged by the bucket itself in full expositions).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank target, then interpolate inside the bucket between
	// its lower and upper bound by the rank's position in the bucket.
	rank := int64(q*float64(total) + 0.9999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i, c := range s.Counts {
		if seen+c < rank {
			seen += c
			continue
		}
		if i >= histBuckets {
			return histBase << uint(histBuckets-1)
		}
		hi := histBase << uint(i)
		lo := time.Duration(0)
		if i > 0 {
			lo = histBase << uint(i-1)
		}
		frac := float64(rank-seen) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return histBase << uint(histBuckets-1)
}

// String renders count/mean/p50/p99 for logs and tests.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.3fms p50=%v p99=%v",
		s.Count, s.MeanMS(), s.Quantile(0.50).Round(time.Microsecond), s.Quantile(0.99).Round(time.Microsecond))
}
