package experiments

import (
	"fmt"
	"strings"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/selector"
)

// This file implements the plansweep experiment: the end-to-end proof
// that batch-aware, profile-guided selection pays. For each batch size
// N it solves two PBQP instances over the same profiled costs — the
// per-image (batch-1) instance and the batch-N instance — compiles
// both plans at batch N, and measures the real batched engine on both.
// The per-layer plan diff shows *which* layers the optimizer moves when
// the minibatch amortizes setup work; the wall-clock ratio shows what
// that re-selection is worth on this machine.

// PlanSwitch records one conv layer whose selected primitive differs
// between the batch-1 plan and the batch-N plan.
type PlanSwitch struct {
	Layer  string `json:"layer"`
	Batch1 string `json:"batch1_primitive"`
	BatchN string `json:"batchn_primitive"`
}

// PlanSweepPoint is one row of the sweep: the plan diff at this batch
// size and the measured per-image cost of executing each plan at it.
type PlanSweepPoint struct {
	Net        string
	Batch      int
	Threads    int
	Calibrated bool // costs measured on this host vs the analytic model

	// Switches lists the conv layers whose primitive changes when the
	// PBQP instance is priced at this batch size.
	Switches []PlanSwitch

	// Batch1PlanNsPerImage executes the batch-1 plan compiled at batch
	// N (the pre-batch-aware serving configuration); BatchPlanNsPerImage
	// executes the batch-N plan. Both are min-of-batchSweepReps wall
	// times. SpeedupX > 1 means per-bucket selection wins.
	Batch1PlanNsPerImage float64
	BatchPlanNsPerImage  float64
	SpeedupX             float64

	// PredictedBatch1MS and PredictedBatchMS are the profiler's
	// per-image predictions for the two plans, both priced at this
	// batch size (the batch-1 plan's choices are re-priced with the
	// batched entry points they would actually execute, so the
	// predicted gap isolates the selection difference, exactly like
	// the measured one).
	PredictedBatch1MS float64
	PredictedBatchMS  float64
}

// planCostPerImageAt re-prices a plan's choices — node primitives and
// legalized conversion chains — at batch n, returning predicted
// seconds per image.
func planCostPerImageAt(prof cost.Profiler, plan *selector.Plan, threads, n int) float64 {
	g := plan.Net
	total := 0.0
	for _, id := range g.ConvLayers() {
		total += cost.PrimitiveN(prof, plan.Primitives[id], g.Layers[id].Conv, threads, n)
	}
	for e, chain := range plan.Conversions {
		lu := g.Layers[e[0]]
		for _, tr := range chain {
			total += cost.TransformN(prof, tr, lu.OutC, lu.OutH, lu.OutW, n)
		}
	}
	return total / float64(n)
}

// PlanSweepOptions tunes the sweep's profiling stage.
type PlanSweepOptions struct {
	// Prof, when non-nil, prices both instances (e.g. the analytic
	// model, or a pre-built table). When nil the sweep calibrates: it
	// measures the real primitives on this host at batch 1 and at every
	// swept batch size (top-K pruned), exactly the table dnnprof
	// -calibrate would ship.
	Prof cost.Profiler
	// Reps is the calibration best-of count (default 1).
	Reps int
	// TopK is the calibration shortlist per layer per batch; ≤ 0
	// measures every supporting primitive (the same semantics as
	// dnnprof -calibrate-top and cost.Table.AddNetTopK).
	TopK int
}

// PlanSweep runs the batch-aware-selection comparison on one of the
// model zoo networks.
func PlanSweep(netName string, threads int, batches []int, o PlanSweepOptions) ([]PlanSweepPoint, error) {
	g, err := models.Build(netName)
	if err != nil {
		return nil, err
	}
	calibrated := false
	prof := o.Prof
	if prof == nil {
		calibrated = true
		if o.Reps < 1 {
			o.Reps = 1
		}
		profiled := append([]int{1}, batches...)
		tab := cost.NewTable("plansweep-host", threads)
		tab.AddNetTopK(g, conv.Library(), cost.NewModel(cost.IntelHaswell),
			&cost.Measure{Reps: o.Reps, Threads: threads}, profiled, o.TopK)
		prof = tab
	}
	opts := selector.Options{Prof: prof, Threads: threads}
	base, err := selector.Select(g, opts)
	if err != nil {
		return nil, err
	}
	w := exec.NewWeights(g)

	var pts []PlanSweepPoint
	for _, batch := range batches {
		planN, err := selector.SelectBatch(g, batch, opts)
		if err != nil {
			return nil, err
		}
		pt := PlanSweepPoint{
			Net:               netName,
			Batch:             batch,
			Threads:           threads,
			Calibrated:        calibrated,
			PredictedBatch1MS: planCostPerImageAt(prof, base, threads, batch) * 1e3,
			PredictedBatchMS:  planN.CostPerImage() * 1e3,
		}
		for _, id := range g.ConvLayers() {
			if base.Primitives[id].Name != planN.Primitives[id].Name {
				pt.Switches = append(pt.Switches, PlanSwitch{
					Layer:  g.Layers[id].Name,
					Batch1: base.Primitives[id].Name,
					BatchN: planN.Primitives[id].Name,
				})
			}
		}

		inputs := makeBatch(g, batch)
		measure := func(plan *selector.Plan) (float64, error) {
			eng, err := exec.NewEngineBatch(plan, w, batch)
			if err != nil {
				return 0, err
			}
			if _, err := eng.RunBatch(inputs); err != nil { // warm
				return 0, err
			}
			total, err := minWallNs(batchSweepReps, func() error {
				_, err := eng.RunBatch(inputs)
				return err
			})
			if err != nil {
				return 0, err
			}
			return total / float64(batch), nil
		}
		if pt.Batch1PlanNsPerImage, err = measure(base); err != nil {
			return nil, err
		}
		if pt.BatchPlanNsPerImage, err = measure(planN); err != nil {
			return nil, err
		}
		pt.SpeedupX = pt.Batch1PlanNsPerImage / pt.BatchPlanNsPerImage
		pts = append(pts, pt)
	}
	return pts, nil
}

// FormatPlanSweep renders the comparison with the per-layer diffs.
func FormatPlanSweep(pts []PlanSweepPoint) string {
	var b strings.Builder
	if len(pts) > 0 {
		src := "analytic model"
		if pts[0].Calibrated {
			src = "measured on this host"
		}
		fmt.Fprintf(&b, "== batch-N plan vs batch-1 plan, both executed batched (%s, %d threads, costs %s) ==\n",
			pts[0].Net, pts[0].Threads, src)
	}
	fmt.Fprintf(&b, "%-7s %-9s %-19s %-19s %s\n",
		"batch", "switches", "batch-1 plan ms/img", "batch-N plan ms/img", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-7d %-9d %-19.1f %-19.1f %.2fx\n",
			p.Batch, len(p.Switches), p.Batch1PlanNsPerImage/1e6, p.BatchPlanNsPerImage/1e6, p.SpeedupX)
	}
	for _, p := range pts {
		for _, s := range p.Switches {
			fmt.Fprintf(&b, "  batch %-4d %-26s %s -> %s\n", p.Batch, s.Layer, s.Batch1, s.BatchN)
		}
	}
	return b.String()
}
