// Package conv implements the paper's DNN convolution primitive library:
// more than 70 routines drawn from six algorithm families (sum2d,
// direct-loop, im2, kn2, Winograd, FFT), each operating on specific
// input and output data layouts. Every primitive is a real, executable
// implementation whose output is validated against the textbook
// reference; the selector chooses among them per layer.
package conv

import (
	"fmt"
	"math/rand"
	"sync"

	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// Scenario is the paper's 6-tuple {C,H,W,δ,K,M} describing a
// convolutional layer: C input feature maps of H×W pixels, convolved
// with M C-channel K×K filters at stride δ (field Stride), plus the
// padding the public network models require. Batch and Sparsity carry
// the paper's future-work extensions (§8): minibatch size (0 or 1 means
// single inference) and the fraction of zero kernel weights.
type Scenario struct {
	C, H, W  int
	Stride   int
	K        int
	M        int
	Pad      int
	Batch    int
	Sparsity float64
}

// Validate reports whether the scenario is well formed and produces a
// non-empty output.
func (s Scenario) Validate() error {
	if s.C < 1 || s.H < 1 || s.W < 1 || s.K < 1 || s.M < 1 {
		return fmt.Errorf("conv: non-positive dimension in %+v", s)
	}
	if s.Stride < 1 {
		return fmt.Errorf("conv: stride %d < 1", s.Stride)
	}
	if s.Pad < 0 {
		return fmt.Errorf("conv: negative padding %d", s.Pad)
	}
	if s.OutH() < 1 || s.OutW() < 1 {
		return fmt.Errorf("conv: empty output for %+v", s)
	}
	if s.Sparsity < 0 || s.Sparsity >= 1 {
		return fmt.Errorf("conv: sparsity %v out of [0,1)", s.Sparsity)
	}
	return nil
}

// OutH returns the output feature-map height (H+2P-K)/δ+1.
func (s Scenario) OutH() int { return (s.H+2*s.Pad-s.K)/s.Stride + 1 }

// OutW returns the output feature-map width.
func (s Scenario) OutW() int { return (s.W+2*s.Pad-s.K)/s.Stride + 1 }

// Flops returns the number of multiply-accumulate operations (×2) of the
// direct algorithm: O(H'×W'×C×K²×M), the paper's §2.1 figure.
func (s Scenario) Flops() float64 {
	return 2 * float64(s.OutH()) * float64(s.OutW()) * float64(s.C) * float64(s.K) * float64(s.K) * float64(s.M)
}

// InputBytes returns the payload size of the input tensor.
func (s Scenario) InputBytes() int64 { return int64(s.C) * int64(s.H) * int64(s.W) * 4 }

// OutputBytes returns the payload size of the output tensor.
func (s Scenario) OutputBytes() int64 {
	return int64(s.M) * int64(s.OutH()) * int64(s.OutW()) * 4
}

// KernelBytes returns the payload size of the weight tensor.
func (s Scenario) KernelBytes() int64 { return int64(s.M) * int64(s.C) * int64(s.K) * int64(s.K) * 4 }

// String renders the scenario in the paper's tuple notation.
func (s Scenario) String() string {
	return fmt.Sprintf("{C=%d H=%d W=%d δ=%d K=%d M=%d P=%d}", s.C, s.H, s.W, s.Stride, s.K, s.M, s.Pad)
}

// Kernel is the 4D weight tensor of a convolution layer: M filters of C
// channels and K×K taps, stored MCKK row-major. Weight packing into
// algorithm-specific forms (Toeplitz matrices, Winograd-domain kernels,
// spectra) happens inside the primitives.
type Kernel struct {
	M, C, K int
	Data    []float32
}

// NewKernel allocates a zeroed kernel tensor.
func NewKernel(m, c, k int) *Kernel {
	if m < 1 || c < 1 || k < 1 {
		panic(fmt.Sprintf("conv: invalid kernel dims M=%d C=%d K=%d", m, c, k))
	}
	return &Kernel{M: m, C: c, K: k, Data: make([]float32, m*c*k*k)}
}

// Index returns the flat offset of tap (m,c,kh,kw).
func (k *Kernel) Index(m, c, kh, kw int) int {
	return ((m*k.C+c)*k.K+kh)*k.K + kw
}

// At returns weight (m,c,kh,kw).
func (k *Kernel) At(m, c, kh, kw int) float32 { return k.Data[k.Index(m, c, kh, kw)] }

// Set stores a weight.
func (k *Kernel) Set(m, c, kh, kw int, v float32) { k.Data[k.Index(m, c, kh, kw)] = v }

// FillRandom fills the kernel with deterministic pseudo-random weights.
func (k *Kernel) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range k.Data {
		k.Data[i] = rng.Float32()*2 - 1
	}
}

// FillSparse fills the kernel randomly and then zeroes weights with
// probability sparsity, for exercising the sparse primitives.
func (k *Kernel) FillSparse(seed int64, sparsity float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range k.Data {
		if rng.Float64() < sparsity {
			k.Data[i] = 0
		} else {
			k.Data[i] = rng.Float32()*2 - 1
		}
	}
}

// Family identifies one of the six convolution algorithm families of
// paper §4.
type Family uint8

const (
	// FamilySum2D is the textbook sum-of-single-channels baseline.
	FamilySum2D Family = iota
	// FamilyDirect is the direct six-deep loop nest family.
	FamilyDirect
	// FamilyIm2 is the im2col/im2row Toeplitz-plus-GEMM family.
	FamilyIm2
	// FamilyKn2 is the low-memory kn2row/kn2col sum-of-GEMMs family.
	FamilyKn2
	// FamilyWinograd is the Winograd fast-convolution family.
	FamilyWinograd
	// FamilyFFT computes convolution via the convolution theorem.
	FamilyFFT

	numFamilies
)

// Families lists every family in declaration order.
func Families() []Family {
	return []Family{FamilySum2D, FamilyDirect, FamilyIm2, FamilyKn2, FamilyWinograd, FamilyFFT}
}

// String returns the family's conventional lowercase name as used in the
// paper's figures.
func (f Family) String() string {
	switch f {
	case FamilySum2D:
		return "sum2d"
	case FamilyDirect:
		return "direct"
	case FamilyIm2:
		return "im2"
	case FamilyKn2:
		return "kn2"
	case FamilyWinograd:
		return "winograd"
	case FamilyFFT:
		return "fft"
	}
	return fmt.Sprintf("Family(%d)", uint8(f))
}

// Primitive is one entry of the library: an executable convolution
// routine plus the metadata the selector and cost model need. It mirrors
// the paper's 3-tuple {L_in, P, L_out} model — a primitive is only
// usable on an edge whose layouts match.
type Primitive struct {
	Name   string
	Family Family
	In     tensor.Layout
	Out    tensor.Layout

	// VF is the vector-factor hint (1, 4 or 8): how wide the innermost
	// accumulation is blocked. The cost model matches it against a
	// platform's SIMD width (paper §4, "VF4"/"VF8" variants).
	VF int

	// Strided reports whether the routine supports Stride > 1.
	Strided bool

	// Ks restricts supported kernel sizes; nil means any K.
	Ks []int

	// MinC is the smallest channel count the routine accepts (blocked
	// layouts need full blocks to pay off; 0 means no constraint).
	MinC int

	// Sparse marks primitives that exploit kernel sparsity.
	Sparse bool

	// WinoM and WinoR carry the F(m,r) tile parameters of Winograd
	// primitives (zero otherwise); Wino2D distinguishes the nested-2D
	// from the row-wise 1D algorithm. The analytic cost model uses them
	// to count the family's reduced multiplications.
	WinoM, WinoR int
	Wino2D       bool

	// Workspace returns the extra memory in bytes the routine allocates
	// beyond input, kernel and output; the cost model compares it with
	// cache capacities.
	Workspace func(s Scenario) int64

	// Run executes the convolution. The input tensor must be in layout
	// In; the result is produced in layout Out. threads ≤ 1 means
	// single-threaded.
	Run func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor

	// RunBatch, when non-nil, executes the convolution over a whole
	// minibatch in one call, writing into the caller-provided dst batch
	// (same layout/shape contract as Run, batched). Batched entries
	// amortize per-call kernel packing across the minibatch and feed
	// batch-wide matrices to GEMM; primitives without one fall back to
	// per-image Run via RunBatchInto.
	RunBatch func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int)

	// RunBatchFused, when non-nil, is the batched entry with the fused
	// epilogue and pack-absorbed input conversion (see fused.go). in
	// may be in p.In or a layout CanAbsorbInput accepts; epi/res follow
	// RunBatchFusedInto's contract. Primitives without one get the
	// post-pass fallback.
	RunBatchFused func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int, epi gemm.Epilogue, res *tensor.Batch)
}

// Supports reports whether the primitive can legally implement the
// scenario.
func (p *Primitive) Supports(s Scenario) bool {
	if s.Validate() != nil {
		return false
	}
	if s.Stride > 1 && !p.Strided {
		return false
	}
	if p.Ks != nil {
		ok := false
		for _, k := range p.Ks {
			if k == s.K {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if s.C < p.MinC {
		return false
	}
	return true
}

// String renders the primitive's identity tuple.
func (p *Primitive) String() string {
	return fmt.Sprintf("%s{%s→%s}", p.Name, p.In, p.Out)
}

// ParallelFor runs fn(i) for i in [0, n) across at most `threads`
// goroutines — the fork-join helper shared by the primitive library
// and the batched layer kernels in internal/program, so there is one
// chunking implementation to maintain.
func ParallelFor(threads, n int, fn func(i int)) { parallelFor(threads, n, fn) }

// parallelFor runs fn(i) for i in [0,n) across `threads` goroutines.
// With threads ≤ 1 it degenerates to a plain loop.
func parallelFor(threads, n int, fn func(i int)) {
	if threads <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if threads > n {
		threads = n
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// inputAt reads logical input pixel (c, h, w) where h and w are
// *unpadded* coordinates that may fall outside the image; out-of-range
// reads return 0, implementing zero padding.
func inputAt(in *tensor.Tensor, c, h, w int) float32 {
	if h < 0 || h >= in.H || w < 0 || w >= in.W {
		return 0
	}
	return in.At(c, h, w)
}

func checkLayout(in *tensor.Tensor, want tensor.Layout, name string) {
	if in.Layout != want {
		panic(fmt.Sprintf("conv: %s expects %s input, got %s", name, want, in.Layout))
	}
}

func checkScenario(in *tensor.Tensor, k *Kernel, s Scenario) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if in.C != s.C || in.H != s.H || in.W != s.W {
		panic(fmt.Sprintf("conv: input %s does not match scenario %s", in, s))
	}
	if k.M != s.M || k.C != s.C || k.K != s.K {
		panic(fmt.Sprintf("conv: kernel M=%d C=%d K=%d does not match scenario %s", k.M, k.C, k.K, s))
	}
}
