package program

import (
	"strings"
	"testing"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

func compile(t *testing.T, net *dnn.Graph, threads int) *Program {
	t.Helper()
	plan, err := selector.Select(net, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func compileNoFuse(t *testing.T, net *dnn.Graph, threads int) *Program {
	t.Helper()
	plan, err := selector.Select(net, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileBatchNoFuse(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// inceptionNet is a small inception-style DAG with parallel branches, a
// residual add and every wildcard operator — the planner's obstacle
// course.
func inceptionNet() *dnn.Graph {
	b, x := dnn.NewBuilder("planner-dag", 3, 20, 20)
	x = b.Conv(x, "stem", 8, 3, 1, 1)
	x = b.ReLU(x, "stem-relu")
	x = b.LRN(x, "stem-lrn")
	x = b.MaxPool(x, "pool1", 2, 2, 0)

	b1 := b.Conv(x, "b1/1x1", 4, 1, 1, 0)
	b1 = b.ReLU(b1, "b1/relu")
	b2 := b.Conv(x, "b2/reduce", 4, 1, 1, 0)
	b2 = b.Conv(b2, "b2/3x3", 8, 3, 1, 1)
	b3 := b.AvgPool(x, "b3/pool", 3, 1, 1)
	b3 = b.Conv(b3, "b3/proj", 4, 1, 1, 0)
	x = b.Concat("cat", b1, b2, b3)

	y := b.Conv(x, "res/conv", 16, 3, 1, 1)
	x = b.Add("res/add", y, x)
	x = b.ReLU(x, "res/relu")
	x = b.Dropout(x, "drop")
	x = b.FC(x, "fc", 10)
	x = b.Softmax(x, "prob")
	_ = x
	return b.Graph()
}

func TestCompileStructure(t *testing.T) {
	for _, threads := range []int{1, 4} {
		p := compile(t, inceptionNet(), threads)
		net := p.Plan.Net
		// One instruction per layer plus one per legalized edge, minus
		// what the fusion pass folded away.
		wantConv := 0
		for _, chain := range p.Plan.Conversions {
			if len(chain) > 0 {
				wantConv++
			}
		}
		unfused := net.NumLayers() + wantConv
		if p.Stats.UnfusedInstructions != unfused {
			t.Errorf("threads=%d: unfused baseline %d instructions, want %d layers + %d conversions",
				threads, p.Stats.UnfusedInstructions, net.NumLayers(), wantConv)
		}
		want := unfused - p.Stats.FusedEpilogues - p.Stats.FusedConversions
		if got := len(p.Instrs); got != want {
			t.Errorf("threads=%d: %d instructions, want %d (%d unfused - %d epilogues - %d conversions)",
				threads, got, want, unfused, p.Stats.FusedEpilogues, p.Stats.FusedConversions)
		}
		if p.Stats.Conversions != wantConv-p.Stats.FusedConversions {
			t.Errorf("stats count %d conversions, plan has %d of which %d absorbed",
				p.Stats.Conversions, wantConv, p.Stats.FusedConversions)
		}
		// The planner DAG has three fusable epilogues: conv+relu on the
		// stem and branch 1, and the residual conv+add+relu tail.
		if p.Stats.FusedEpilogues < 4 {
			t.Errorf("threads=%d: only %d epilogue layers fused", threads, p.Stats.FusedEpilogues)
		}
		// The output instruction is the last topological layer and a
		// fresh allocation.
		out := &p.Instrs[p.Output]
		if out.Layer.Kind != dnn.KindSoftmax {
			t.Errorf("output instruction is %s, want the softmax layer", out.Layer.Kind)
		}
		if out.Slot != NoSlot || out.Donor >= 0 {
			t.Errorf("output instruction must be fresh: slot %d donor %d", out.Slot, out.Donor)
		}
	}
}

// TestSlotReuse pins the headline property of the static memory plan:
// liveness-based assignment packs the wildcard intermediates of a big
// DAG into far fewer slots than instructions, and at least one slot has
// multiple tenants.
func TestSlotReuse(t *testing.T) {
	g, err := models.Build("googlenet")
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, g, 4)
	slotted := 0
	tenants := map[int]int{}
	for i := range p.Instrs {
		if p.Instrs[i].Slot >= 0 && p.Instrs[i].Donor < 0 {
			slotted++
			tenants[p.Instrs[i].Slot]++
		}
	}
	// The acceptance bound: peak slot count strictly below the layer
	// count (GoogLeNet has ~140 layers; the plan should need a small
	// fraction of that).
	if len(p.SlotCap) >= g.NumLayers() {
		t.Errorf("googlenet plan uses %d slots for %d layers — no reuse", len(p.SlotCap), g.NumLayers())
	}
	if slotted <= len(p.SlotCap) {
		t.Errorf("no slot has more than one tenant (%d tenancies in %d slots)", slotted, len(p.SlotCap))
	}
	reused := 0
	for _, n := range tenants {
		if n > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("no slot is reused by a second tenant")
	}
	t.Logf("googlenet: %d instrs, %d slotted tenancies in %d slots (%d reused), %d in-place, peak %d KB",
		len(p.Instrs), slotted, len(p.SlotCap), reused, p.Stats.InPlace, p.Stats.PeakBytes/1024)
}

// TestInPlaceMarking: a ReLU directly after its only producer runs in
// the producer's buffer, and GoogLeNet (a relu after every conv) gets
// substantial in-place coverage. Compiled without fusion — the fusion
// pass otherwise folds exactly these single-consumer relus away.
func TestInPlaceMarking(t *testing.T) {
	p := compileNoFuse(t, inceptionNet(), 4)
	foundRelu := false
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Op == OpReLU && ins.Donor >= 0 {
			foundRelu = true
			d := &p.Instrs[ins.Args[ins.Donor]]
			if d.Layout != ins.Layout || d.DataLen() != ins.DataLen() {
				t.Errorf("in-place relu %q donor %q mismatched", ins.Name, d.Name)
			}
		}
	}
	if !foundRelu {
		t.Error("no relu runs in place on the planner DAG")
	}
	if p.Stats.InPlace == 0 {
		t.Error("stats report zero in-place instructions")
	}
}

// TestInPlaceRejectedWhenValueStillLive: when a value feeds two
// parallel consumers, neither may overwrite it in place.
func TestInPlaceRejectedWhenValueStillLive(t *testing.T) {
	b, x := dnn.NewBuilder("fanout", 4, 8, 8)
	x = b.Conv(x, "c1", 4, 3, 1, 1)
	r1 := b.ReLU(x, "r1")
	r2 := b.ReLU(x, "r2")
	x = b.Add("sum", r1, r2)
	b.Softmax(x, "prob")
	p := compile(t, b.Graph(), 4)
	conv := p.InstrOf[p.Plan.Net.Layers[1].ID]
	for _, name := range []string{"r1", "r2"} {
		for i := range p.Instrs {
			ins := &p.Instrs[i]
			if ins.Name == name && ins.Donor >= 0 && ins.Args[ins.Donor] == conv {
				t.Errorf("%s overwrites the shared conv output in place", name)
			}
		}
	}
}

// TestMemoryPlanIsParallelSafe re-validates the compiled plans of all
// full-size models (Validate holds slot reuse to the ancestor
// discipline that makes it sound under the concurrent scheduler).
func TestMemoryPlanIsParallelSafe(t *testing.T) {
	for _, name := range models.Names() {
		g, err := models.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		p := compile(t, g, 4)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Stats.PeakBytes >= p.Stats.NaiveBytes {
			t.Errorf("%s: planned peak %d B is no better than unplanned %d B",
				name, p.Stats.PeakBytes, p.Stats.NaiveBytes)
		}
	}
}

// TestValidateCatchesCorruption: hand-corrupting the plan must fail
// validation.
func TestValidateCatchesCorruption(t *testing.T) {
	p := compile(t, inceptionNet(), 4)
	// Find two slotted instructions sharing no slot and force a
	// conflict: give the later one the earlier one's slot while the
	// earlier value is still live (its consumer is the later one's
	// sibling, not ancestor).
	var slotted []int
	for i := range p.Instrs {
		if p.Instrs[i].Slot >= 0 && p.Instrs[i].Donor < 0 {
			slotted = append(slotted, i)
		}
	}
	if len(slotted) < 2 {
		t.Skip("not enough slotted instructions")
	}
	save := p.Instrs[slotted[1]].Slot
	p.Instrs[slotted[1]].Slot = len(p.SlotCap) + 7
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range slot")
	}
	p.Instrs[slotted[1]].Slot = save

	out := &p.Instrs[p.Output]
	out.Slot = 0
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a slot-backed network output")
	}
	out.Slot = NoSlot
}

// TestSourceListing: the pretty-printer renders every instruction and
// the memory plan from the same stream the engine executes.
func TestSourceListing(t *testing.T) {
	p := compile(t, inceptionNet(), 4)
	src := p.Source()
	for _, want := range []string{
		"// program for planner-dag",
		"predicted cost",
		"instructions",
		"memory plan:",
		"cat = concat(",
		"prob = softmax(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("listing missing %q:\n%s", want, src)
		}
	}
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Prim == nil {
			continue
		}
		// A fused instruction renders its epilogue marker between the
		// primitive name and the argument list.
		call := ins.Prim.Name + "("
		if len(ins.EpiLayers) > 0 {
			call = ins.Prim.Name + "+" + ins.Epi.String() + "("
		}
		if !strings.Contains(src, call) {
			t.Errorf("listing does not call %s", call)
		}
	}
	// The planner DAG fuses epilogues, and the listing says so.
	if !strings.Contains(src, "+relu(") || !strings.Contains(src, "// fusion:") {
		t.Errorf("listing does not render fusion:\n%s", src)
	}
	// Conversion chains appear as their direct-transform calls.
	for i := range p.Instrs {
		for _, tr := range p.Instrs[i].Chain {
			if !strings.Contains(src, tr.Name+"(") {
				t.Errorf("listing does not show transform %s", tr.Name)
			}
		}
	}
}

// TestCompileRejectsCorruptPlan mirrors the engine-construction check:
// a plan whose layouts disagree with its primitives must not compile.
func TestCompileRejectsCorruptPlan(t *testing.T) {
	net := inceptionNet()
	plan, err := selector.Select(net, selector.Options{Prof: cost.NewModel(cost.IntelHaswell)})
	if err != nil {
		t.Fatal(err)
	}
	id := net.ConvLayers()[0]
	saved := plan.Layouts[id]
	plan.Layouts[id] = (saved + 1) % 8
	if _, err := Compile(plan); err == nil {
		t.Error("Compile accepted a plan whose layouts disagree with its primitives")
	}
	plan.Layouts[id] = saved
	if _, err := Compile(plan); err != nil {
		t.Errorf("restored plan should compile: %v", err)
	}
}

// TestConvertChainFusesToFinalLayout: a compiled conversion instruction
// is semantically one ConvertInto to the chain's final layout —
// executing it that way matches walking the chain hop by hop.
func TestConvertChainFusesToFinalLayout(t *testing.T) {
	for _, name := range []string{"alexnet"} {
		g, err := models.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		p := compile(t, g, 4)
		for i := range p.Instrs {
			ins := &p.Instrs[i]
			if ins.Op != OpConvert {
				continue
			}
			src := tensor.New(ins.Chain[0].From, ins.C, ins.H, ins.W)
			src.FillRandom(int64(i))
			hops := src
			for _, tr := range ins.Chain {
				hops = tr.Run(hops)
			}
			fused := tensor.Convert(src, ins.Layout)
			if !tensor.AlmostEqual(hops, fused, 0) {
				t.Errorf("%s: fused conversion differs from chained hops", ins.Name)
			}
		}
	}
}
