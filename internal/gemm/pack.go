package gemm

import (
	"fmt"
	"runtime"
	"sync"
)

// Packed-GEMM blocking parameters. B is packed one KC×NC block at a
// time into a contiguous scratch buffer; the microkernel then streams
// rows of C against the resident block. KC is sized so a block's k-slab
// plus the A and C rows in flight stay L1/L2-resident; NC bounds the
// scratch at KC·NC floats (256 KiB) so a pooled buffer never regrows.
// The A operand needs no separate pack: row-major A already presents
// each row's k-slab as a contiguous panel (an MR=1 row panel), so
// "packing A" would be the identity copy and is elided. The transposed
// orientation is where packing really earns its keep: a B supplied as
// Bᵀ is un-transposed by packBT while it is staged, after which the one
// microkernel serves both orientations.
const (
	packKC = 128
	packNC = 512
)

// packPool recycles B-pack scratch across calls (and across the
// goroutines of ParallelCols, each of which draws its own buffer). The
// buffers are always full-size so a reused buffer never reallocates.
var packPool = sync.Pool{
	New: func() any {
		s := make([]float32, packKC*packNC)
		return &s
	},
}

// Epilogue selects a fused elementwise post-pass the packed kernel
// applies to each output stripe immediately after its accumulation
// completes, while the stripe is still cache-resident — the
// generalization of the fused-Accumulate mechanism. The operand
// conventions match the conv-as-GEMM orientations: Bias adds a
// per-column vector (output channels sit in columns for the im2row and
// FC/TransB orientations), Add/AddReLU add a residual slab r aligned
// element-for-element with C.
type Epilogue int

const (
	EpiNone    Epilogue = iota
	EpiReLU             // C = max(C, 0)
	EpiBias             // C[i,j] += bias[j]
	EpiAdd              // C += R
	EpiAddReLU          // C = max(C + R, 0)
)

// String names the epilogue the way program listings render it.
func (e Epilogue) String() string {
	switch e {
	case EpiNone:
		return "none"
	case EpiReLU:
		return "relu"
	case EpiBias:
		return "bias"
	case EpiAdd:
		return "add"
	case EpiAddReLU:
		return "add+relu"
	}
	return "epi?"
}

// checkEpi validates the epilogue operands against the output shape,
// mirroring checkDims' panic-on-misuse contract.
func checkEpi(m, n int, epi Epilogue, r, bias []float32) {
	switch epi {
	case EpiAdd, EpiAddReLU:
		if len(r) < m*n {
			panic(fmt.Sprintf("gemm: epilogue %v residual too small for m=%d n=%d (r=%d)",
				epi, m, n, len(r)))
		}
	case EpiBias:
		if len(bias) < n {
			panic(fmt.Sprintf("gemm: epilogue bias too small for n=%d (bias=%d)", n, len(bias)))
		}
	}
}

// Packed computes C = A·B with the packed, register-tiled kernel: B is
// staged KC×NC blocks at a time into pooled scratch and each row of C
// is updated by the dispatched microkernel — the AVX2/FMA assembly
// kernel when the CPU has it, the k-unrolled row-streaming pure-Go
// packedRowK4 otherwise (see Variant and the FP-association contract
// in dispatch.go). Within either variant every element's partial
// products accumulate in a fixed order, so results are bitwise stable
// across repeated calls with reused pack buffers — though each
// variant's grouping rounds differently than Naive's one-product fold
// (and than the other variant's), so cross-kernel agreement is within
// tolerance, not bitwise. C is overwritten.
func Packed(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	packedRange(m, n, k, 0, n, a, b, c, false, false, EpiNone, nil, nil)
}

// PackedEpi is Packed with a fused epilogue: each output stripe gets
// the elementwise post-pass applied right after its last partial
// product lands, so the slab is written once instead of
// written-then-rewalked. The epilogue runs per fully-accumulated
// column stripe (the jc loop is outermost) — on the SIMD path it is
// folded into the final KC block's writeback while the 16-column tile
// is still register-resident — so it sees exactly the values Packed
// would have produced: under either microkernel variant, a fused ReLU
// or residual add is bitwise identical to running the separate pass
// afterwards.
func PackedEpi(m, n, k int, a, b, c []float32, epi Epilogue, r, bias []float32) {
	checkDims(m, n, k, a, b, c)
	checkEpi(m, n, epi, r, bias)
	packedRange(m, n, k, 0, n, a, b, c, false, false, epi, r, bias)
}

// Accumulate computes C += A·B — the fused-epilogue variant of Packed.
// It does not clear C first; the kn2 convolution family and the
// Winograd/FFT pointwise stages rely on this to sum partial products in
// place.
func Accumulate(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	packedRange(m, n, k, 0, n, a, b, c, true, false, EpiNone, nil, nil)
}

// TransB computes C = A·Bᵀ where bt holds B transposed as an n×k
// row-major matrix — the "BT" kernel variant the paper's Figure 4
// selects on ARM. A transposed B is just a different pack routine:
// packBT un-transposes each KC×NC block while staging it, and the same
// microkernel runs unchanged. Dimension checking is shared with every
// other kernel via checkDims (an n×k operand and a k×n operand have the
// same element count).
func TransB(m, n, k int, a, bt, c []float32) {
	checkDims(m, n, k, a, bt, c)
	packedRange(m, n, k, 0, n, a, bt, c, false, true, EpiNone, nil, nil)
}

// TransBEpi is TransB with a fused epilogue (see PackedEpi).
func TransBEpi(m, n, k int, a, bt, c []float32, epi Epilogue, r, bias []float32) {
	checkDims(m, n, k, a, bt, c)
	checkEpi(m, n, epi, r, bias)
	packedRange(m, n, k, 0, n, a, bt, c, false, true, epi, r, bias)
}

// ParallelCols computes C = A·B splitting the *columns* of B across
// `threads` goroutines, each running the packed kernel on its own
// column stripe with its own pooled pack buffer. This is the
// batched-GEMM entry point: a minibatch widens the n dimension (images
// side by side as column blocks) while m — the filter count — stays
// fixed, so splitting rows (Parallel) runs out of parallelism exactly
// when batching creates more. Every element of C is written by exactly
// one goroutine in a fixed per-element order, so results are
// deterministic run to run.
func ParallelCols(threads, m, n, k int, a, b, c []float32) {
	ParallelColsEpi(threads, m, n, k, a, b, c, EpiNone, nil, nil)
}

// ParallelColsEpi is ParallelCols with a fused epilogue. The epilogue
// is elementwise and each output element belongs to exactly one column
// stripe, so each goroutine applies it to its own stripe with no
// cross-stripe dependency — determinism and the per-element write-once
// discipline are unchanged.
func ParallelColsEpi(threads, m, n, k int, a, b, c []float32, epi Epilogue, r, bias []float32) {
	checkDims(m, n, k, a, b, c)
	checkEpi(m, n, epi, r, bias)
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		packedRange(m, n, k, 0, n, a, b, c, false, false, epi, r, bias)
		return
	}
	var wg sync.WaitGroup
	cols := (n + threads - 1) / threads
	// Stripe boundaries are rounded up to 16-column alignment so the
	// SIMD microkernel's 16-wide tiles (and the scalar columns past the
	// last 16-aligned one) land on the same global columns no matter
	// how the split falls — the structural fact that keeps ParallelCols
	// bitwise identical to Packed under both microkernel variants.
	cols = (cols + 15) &^ 15
	for t := 0; t < threads; t++ {
		j0 := t * cols
		j1 := min(j0+cols, n)
		if j0 >= j1 {
			break
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			packedRange(m, n, k, j0, j1, a, b, c, false, false, epi, r, bias)
		}(j0, j1)
	}
	wg.Wait()
}

// packedRange runs the packed kernel on the [j0, j1) column stripe of
// C: stage a KC×NC block of B (or of Bᵀ, un-transposing), then stream
// every row of C against it with the dispatched microkernel. The KC
// blocks advance in increasing-k order and each variant's per-element
// accumulation structure depends only on p's alignment and the
// element's *global* column (the SIMD path aligns its 16-wide tiles to
// global column indices and ParallelCols splits on 16-column
// boundaries), never on the column stripe, so every element's
// accumulation sequence is the same no matter how the columns are
// split across goroutines. The epilogue is applied to each NC stripe
// right after its pc loop ends — the jc loop is outermost, so every
// element of the stripe is fully accumulated there and still warm in
// cache; the SIMD path goes one step further and folds it into the
// final KC block's register-resident writeback, which by the
// add-then-store ordering produces bitwise the same values.
func packedRange(m, n, k, j0, j1 int, a, b, c []float32, accumulate, transB bool, epi Epilogue, r, bias []float32) {
	if !accumulate {
		for i := 0; i < m; i++ {
			ci := c[i*n+j0 : i*n+j1]
			for j := range ci {
				ci[j] = 0
			}
		}
	}
	if m == 0 || k == 0 || j1 <= j0 {
		// Degenerate product: C's stripe is all zeros (or untouched
		// under accumulate) but the epilogue still owes its pass.
		if epi != EpiNone {
			for i := 0; i < m; i++ {
				applyEpiRow(epi, c[i*n+j0:i*n+j1], epiResidual(epi, r, i*n+j0, j1-j0), epiBias(epi, bias, j0, j1-j0))
			}
		}
		return
	}
	simd := simdEnabled.Load()
	sp := packPool.Get().(*[]float32)
	buf := *sp
	for jc := j0; jc < j1; jc += packNC {
		nc := min(packNC, j1-jc)
		for pc := 0; pc < k; pc += packKC {
			kc := min(packKC, k-pc)
			bp := buf[:kc*nc]
			if transB {
				packBT(kc, nc, k, b[jc*k+pc:], bp)
			} else {
				packB(kc, nc, n, b[pc*n+jc:], bp)
			}
			if simd {
				rowEpi := EpiNone
				if pc+kc == k {
					rowEpi = epi // last KC block: fold the epilogue into the writeback
				}
				for i := 0; i < m; i++ {
					packedRowSIMD(a[i*k+pc:][:kc], bp, c[i*n+jc:], jc, nc, rowEpi,
						epiResidual(rowEpi, r, i*n+jc, nc), epiBias(rowEpi, bias, jc, nc))
				}
			} else {
				for i := 0; i < m; i++ {
					packedRowK4(a[i*k+pc:][:kc], bp, c[i*n+jc:], nc)
				}
			}
		}
		if !simd && epi != EpiNone {
			for i := 0; i < m; i++ {
				applyEpiRow(epi, c[i*n+jc:][:nc], epiResidual(epi, r, i*n+jc, nc), epiBias(epi, bias, jc, nc))
			}
		}
	}
	packPool.Put(sp)
}

// packedRowSIMD updates one C row stripe against the packed panel with
// the AVX2 microkernel. ci is the row's stripe view starting at global
// column jc; the assembly kernel covers the 16-aligned tile run — tiles
// are aligned to *global* columns, not to the stripe, so a ParallelCols
// split never changes which tile (or which scalar edge) an element
// belongs to — and packedRowPart picks up the ragged head (j0 unaligned;
// never hit by the exported entry points) and the final global tail.
// epi is EpiNone except on the last KC block, where the fused epilogue
// is applied tile-by-tile while the sums are register-resident; ri and
// bv are the stripe-aligned residual/bias views (nil when unused).
func packedRowSIMD(ai, bp, ci []float32, jc, nc int, epi Epilogue, ri, bv []float32) {
	ci = ci[:nc]
	head := (16 - jc&15) & 15
	if head > nc {
		head = nc
	}
	full := (nc - head) &^ 15
	if head > 0 {
		packedRowPart(ai, bp, ci, 0, head, nc)
		if epi != EpiNone {
			applyEpiRow(epi, ci[:head], epiSub(ri, 0, head), epiSub(bv, 0, head))
		}
	}
	if full > 0 {
		var rp, bp2 *float32
		if ri != nil {
			rp = &ri[head]
		}
		if bv != nil {
			bp2 = &bv[head]
		}
		packedRowFMA(&ai[0], len(ai), &bp[head], &ci[head], full, nc, int(epi), rp, bp2)
	}
	if lo := head + full; lo < nc {
		packedRowPart(ai, bp, ci, lo, nc, nc)
		if epi != EpiNone {
			applyEpiRow(epi, ci[lo:nc], epiSub(ri, lo, nc), epiSub(bv, lo, nc))
		}
	}
}

// packedRowPart accumulates the scalar ragged columns [lo, hi) of one C
// row against the packed panel — the <16-wide head/tail the SIMD
// microkernel cannot tile. Partial products fold sequentially in
// increasing k; which columns take this path depends only on global
// column indices, so the order is stable across stripe splits.
//
//dnn:hotpath
func packedRowPart(ai, bp, ci []float32, lo, hi, nc int) {
	w := ci[lo:hi]
	for p, av := range ai {
		row := bp[p*nc+lo:][:len(w)]
		for j, bv := range row {
			w[j] += av * bv
		}
	}
}

// epiSub narrows a per-stripe epilogue operand view to a sub-segment,
// tolerating the nil an unused operand arrives as.
func epiSub(s []float32, lo, hi int) []float32 {
	if s == nil {
		return nil
	}
	return s[lo:hi]
}

// epiResidual slices the residual operand aligned with a C row segment,
// tolerating nil when the epilogue doesn't read it.
func epiResidual(epi Epilogue, r []float32, off, nc int) []float32 {
	if epi != EpiAdd && epi != EpiAddReLU {
		return nil
	}
	return r[off:][:nc]
}

// epiBias slices the per-column bias aligned with a C row segment,
// tolerating nil when the epilogue doesn't read it.
func epiBias(epi Epilogue, bias []float32, jc, nc int) []float32 {
	if epi != EpiBias {
		return nil
	}
	return bias[jc:][:nc]
}

// ApplyEpi applies the epilogue to an m×n output slab as a standalone
// post-pass — the fallback for kernel variants without a fused form.
// The arithmetic is identical to the fused application, so fused and
// post-pass results agree bitwise.
func ApplyEpi(epi Epilogue, m, n int, c, r, bias []float32) {
	if epi == EpiNone {
		return
	}
	checkEpi(m, n, epi, r, bias)
	for i := 0; i < m; i++ {
		applyEpiRow(epi, c[i*n:][:n], epiResidual(epi, r, i*n, n), epiBias(epi, bias, 0, n))
	}
}

// applyEpiRow applies the fused epilogue to one fully-accumulated row
// segment of C. ri and bv (when the epilogue reads them) are views of
// exactly len(ci) elements, so the paired indexing carries no bounds
// checks.
//
//dnn:hotpath
func applyEpiRow(epi Epilogue, ci, ri, bv []float32) {
	switch epi {
	case EpiReLU:
		for j, v := range ci {
			if v < 0 {
				ci[j] = 0
			}
		}
	case EpiBias:
		bv = bv[:len(ci)]
		for j := range ci {
			ci[j] += bv[j]
		}
	case EpiAdd:
		ri = ri[:len(ci)]
		for j := range ci {
			ci[j] += ri[j]
		}
	case EpiAddReLU:
		ri = ri[:len(ci)]
		for j := range ci {
			v := ci[j] + ri[j]
			if v < 0 {
				v = 0
			}
			ci[j] = v
		}
	}
}

// packB stages a kc×nc block of row-major B (row stride ldb) into the
// contiguous pack buffer dst, one row copy per k step.
//
//dnn:hotpath
func packB(kc, nc, ldb int, src, dst []float32) {
	for p := 0; p < kc; p++ {
		copy(dst[p*nc:][:nc], src[p*ldb:][:nc])
	}
}

// packBT stages a kc×nc block of B from its transposed storage (src is
// Bᵀ: rows of src are columns of B, row stride ldb), un-transposing
// into the same layout packB produces. Columns are processed four at a
// time so the strided gather reads four source rows per pass; the
// four-element scatter into dst is a nested loop over a same-length
// pair of views, keeping the per-element stores check-free.
//
//dnn:hotpath
func packBT(kc, nc, ldb int, src, dst []float32) {
	for jq := 0; jq < nc; jq += 4 {
		w := nc - jq
		if w > 4 {
			w = 4
		}
		s0 := src[jq*ldb:][:kc]
		s1, s2, s3 := s0, s0, s0
		if w > 1 {
			s1 = src[(jq+1)*ldb:][:kc]
		}
		if w > 2 {
			s2 = src[(jq+2)*ldb:][:kc]
		}
		if w > 3 {
			s3 = src[(jq+3)*ldb:][:kc]
		}
		var t [4]float32
		for p, v0 := range s0 {
			t[0] = v0
			t[1] = s1[p]
			t[2] = s2[p]
			t[3] = s3[p]
			d := dst[p*nc+jq:][:w]
			tt := t[:w]
			for q, tv := range tt {
				d[q] = tv
			}
		}
	}
}

// packedRowK4 is the pure-Go microkernel — the documented fallback the
// dispatcher selects on non-amd64 targets, under the `purego` build
// tag, with DNN_NOSIMD set, or when the CPU lacks AVX2/FMA (and the
// variant gemmsweep/differential tests force on any box via SetSIMD).
// One C row is updated
// against a resident kc×nc packed B block, with k unrolled by four so
// each pass over the row combines four B panel rows (eight FLOPs per
// element visit). The four a-scalars live in registers; every slice in
// the leaf loop is a [:nc] view sharing one length value, so the
// accumulation carries no bounds checks. The caller pre-zeroes C rows
// (or not, for the accumulate epilogue), which keeps overwrite and
// accumulate on this single kernel.
//
//dnn:hotpath
func packedRowK4(ai, bp, ci []float32, nc int) {
	ci = ci[:nc]
	kc := len(ai)
	p := 0
	for ; p+4 <= kc; p += 4 {
		a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
		b0 := bp[p*nc:][:nc]
		b1 := bp[(p+1)*nc:][:nc]
		b2 := bp[(p+2)*nc:][:nc]
		b3 := bp[(p+3)*nc:][:nc]
		for j, bv := range b0 {
			ci[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; p < kc; p++ {
		av := ai[p]
		b0 := bp[p*nc:][:nc]
		for j, bv := range b0 {
			ci[j] += av * bv
		}
	}
}
