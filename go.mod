module pbqpdnn

go 1.24
