package conv

import (
	"fmt"

	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// This file holds the fused batched entry points: RunBatchFusedInto
// executes a conv with work absorbed from neighboring instructions —
// an elementwise epilogue (ReLU / residual add, the gemm.Epilogue
// enum) applied while the output stripe is still cache-resident, and
// an input-side layout conversion absorbed into the im2 patch pack so
// the standalone conversion walk disappears. Primitives with a native
// fused implementation expose it via Primitive.RunBatchFused; every
// other primitive falls back to the plain batched entry plus a
// post-pass, which preserves the instruction-count and slot-tenancy
// wins even where the cache-residency win isn't available.

// CanFuseEpilogue reports whether the primitive's batched entry
// applies the epilogue inside its own output write (the GEMM unpack
// loop), rather than via the post-pass fallback. The cost model uses
// this to price fused candidates as saved streaming traffic.
func (p *Primitive) CanFuseEpilogue() bool { return p.RunBatchFused != nil }

// CanAbsorbInput reports whether the primitive's patch pack can read
// the given input layout directly, absorbing a legalized CHW↔HWC
// conversion into the pack: im2row's patch builder can gather from
// CHW, im2col's from HWC. Blocked layouts (CHW4) keep their explicit
// conversion instructions.
func (p *Primitive) CanAbsorbInput(from tensor.Layout) bool {
	if p.RunBatchFused == nil {
		return false
	}
	return (p.In == tensor.HWC && from == tensor.CHW) ||
		(p.In == tensor.CHW && from == tensor.HWC)
}

// checkFusedBatch is checkBatch relaxed for fusion: the input layout
// may be one the primitive's pack absorbs, and the residual operand
// (when the epilogue reads one) must align elementwise with dst.
func checkFusedBatch(p *Primitive, dst, in *tensor.Batch, k *Kernel, s Scenario, epi gemm.Epilogue, res *tensor.Batch) {
	if in.Layout != p.In && !p.CanAbsorbInput(in.Layout) {
		panic(fmt.Sprintf("conv: %s cannot absorb input layout %s", p.Name, in.Layout))
	}
	if in.N != dst.N {
		panic(fmt.Sprintf("conv: batch size mismatch in=%d dst=%d", in.N, dst.N))
	}
	if dst.Layout != p.Out {
		panic(fmt.Sprintf("conv: %s produces %s, dst is %s", p.Name, p.Out, dst.Layout))
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if in.C != s.C || in.H != s.H || in.W != s.W {
		panic(fmt.Sprintf("conv: input %s does not match scenario %s", in, s))
	}
	if dst.C != s.M || dst.H != s.OutH() || dst.W != s.OutW() {
		panic(fmt.Sprintf("conv: dst %s does not match scenario %s", dst, s))
	}
	if k.M != s.M || k.C != s.C || k.K != s.K {
		panic(fmt.Sprintf("conv: kernel M=%d C=%d K=%d does not match scenario %s", k.M, k.C, k.K, s))
	}
	switch epi {
	case gemm.EpiAdd, gemm.EpiAddReLU:
		if res == nil || res.Layout != dst.Layout || len(res.Data) < len(dst.Data) {
			panic(fmt.Sprintf("conv: %s epilogue %v residual does not align with dst", p.Name, epi))
		}
	case gemm.EpiBias:
		panic("conv: bias epilogue is a kernel-level capability, not a batched-program one")
	}
}

// RunBatchFusedInto executes the primitive over the minibatch with the
// given fused work: epi (with residual res for the add forms) is
// applied to dst as part of the output write, and when in.Layout
// differs from p.In the conversion is absorbed into the patch pack.
// The fused result is bitwise identical to running the plain batched
// entry followed by the separate elementwise pass — fusion only moves
// work, never changes arithmetic.
func RunBatchFusedInto(p *Primitive, dst, in *tensor.Batch, k *Kernel, s Scenario, threads int, epi gemm.Epilogue, res *tensor.Batch) {
	if epi == gemm.EpiNone && in.Layout == p.In {
		RunBatchInto(p, dst, in, k, s, threads)
		return
	}
	checkFusedBatch(p, dst, in, k, s, epi, res)
	if p.RunBatchFused != nil && (in.Layout == p.In || p.CanAbsorbInput(in.Layout)) {
		p.RunBatchFused(dst, in, k, s, threads, epi, res)
		return
	}
	// Fallback: un-absorb the conversion into a temporary batch, run
	// the plain entry, then walk the epilogue as a post-pass. Still one
	// instruction from the program's point of view.
	if in.Layout != p.In {
		tmp := tensor.NewBatch(p.In, in.N, in.C, in.H, in.W)
		parallelFor(threads, in.N, func(i int) {
			t := tmp.Image(i)
			tensor.ConvertInto(t, in.Image(i))
		})
		in = tmp
	}
	RunBatchInto(p, dst, in, k, s, threads)
	ApplyEpilogueBatch(dst, epi, res, threads)
}

// ApplyEpilogueBatch applies the epilogue to a full output batch as a
// standalone post-pass — the fallback for primitives without a native
// fused kernel, and the batch-1 path (where conv outputs are dynamic
// allocations, the epilogue runs in place on the fresh tensor).
func ApplyEpilogueBatch(dst *tensor.Batch, epi gemm.Epilogue, res *tensor.Batch, threads int) {
	if epi == gemm.EpiNone {
		return
	}
	if epi == gemm.EpiBias {
		panic("conv: bias epilogue has no layout-blind batch post-pass")
	}
	parallelFor(threads, dst.N, func(i int) {
		slab := dst.Slab(i)
		var r []float32
		if res != nil {
			r = res.Slab(i)
		}
		gemm.ApplyEpi(epi, 1, len(slab), slab, r, nil)
	})
}

// gemmRowsEpi is gemmRows with the epilogue fused into each row slab's
// output write: the packed and transB kinds run their native fused
// variants; scalar kinds apply the epilogue as a per-slab post-pass.
// Each output row belongs to exactly one slab, so the epilogue keeps
// the write-once discipline under the threaded split.
func gemmRowsEpi(kind gemmKind, threads, m, n, k int, a, b, bt, c []float32, epi gemm.Epilogue, r []float32) {
	if epi == gemm.EpiNone {
		gemmRows(kind, threads, m, n, k, a, b, bt, c)
		return
	}
	if threads > m {
		threads = m
	}
	if threads <= 1 {
		gemmSlabEpi(kind, m, n, k, a, b, bt, c, epi, r)
		return
	}
	rows := (m + threads - 1) / threads
	var slabs [][2]int
	for lo := 0; lo < m; lo += rows {
		hi := lo + rows
		if hi > m {
			hi = m
		}
		slabs = append(slabs, [2]int{lo, hi})
	}
	parallelFor(threads, len(slabs), func(i int) {
		lo, hi := slabs[i][0], slabs[i][1]
		var rs []float32
		if r != nil {
			rs = r[lo*n:]
		}
		gemmSlabEpi(kind, hi-lo, n, k, a[lo*k:], b, bt, c[lo*n:], epi, rs)
	})
}

// gemmSlabEpi runs one row slab with the plan-selected kernel variant
// and its epilogue.
func gemmSlabEpi(kind gemmKind, m, n, k int, a, b, bt, c []float32, epi gemm.Epilogue, r []float32) {
	switch kind {
	case gemmPacked:
		gemm.PackedEpi(m, n, k, a, b, c, epi, r, nil)
	case gemmTransB:
		gemm.TransBEpi(m, n, k, a, bt, c, epi, r, nil)
	default:
		gemmKernel(kind, m, n, k, a, b, bt, c)
		gemm.ApplyEpi(epi, m, n, c, r, nil)
	}
}

// epiWritebackRow copies one de-interleaved result row into its
// destination slab row with the epilogue applied in the same pass —
// the im2col N>1 writeback's fused form. src and r (when the epilogue
// reads it) are views of exactly len(dst) elements, so the paired
// indexing carries no bounds checks.
//
//dnn:hotpath
func epiWritebackRow(epi gemm.Epilogue, dst, src, r []float32) {
	src = src[:len(dst)]
	switch epi {
	case gemm.EpiReLU:
		for j, v := range src {
			if v < 0 {
				v = 0
			}
			dst[j] = v
		}
	case gemm.EpiAdd:
		r = r[:len(dst)]
		for j, v := range src {
			dst[j] = v + r[j]
		}
	case gemm.EpiAddReLU:
		r = r[:len(dst)]
		for j, v := range src {
			v += r[j]
			if v < 0 {
				v = 0
			}
			dst[j] = v
		}
	default:
		copy(dst, src)
	}
}

// im2rowPatchesFromCHWInto is im2rowPatchesInto reading CHW input: the
// patch matrix it builds is identical ((Ho·Wo)×(K²C), channel
// innermost), but each in-range tap gathers the channel vector with
// stride H·W instead of copying a contiguous one — the pack-fused form
// of a CHW→HWC conversion feeding an im2row conv.
//
//dnn:hotpath
func im2rowPatchesFromCHWInto(p []float32, in *tensor.Tensor, s Scenario) {
	oh, ow := s.OutH(), s.OutW()
	cC := s.C
	cols := s.K * s.K * cC
	hw := s.H * s.W
	data := in.Data
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			dst := p[(y*ow+x)*cols:][:cols]
			i := 0
			for kh := 0; kh < s.K; kh++ {
				ih := y*s.Stride - s.Pad + kh
				if ih < 0 || ih >= s.H {
					i += s.K * cC // whole kernel row out of range: stays zero
					continue
				}
				for kw := 0; kw < s.K; kw++ {
					iw := x*s.Stride - s.Pad + kw
					if iw >= 0 && iw < s.W {
						src := data[ih*s.W+iw:]
						d := dst[i:][:cC]
						si := 0
						for cc := range d {
							// One unsigned compare carries both bounds of
							// the strided gather for the prover.
							if uint(si) >= uint(len(src)) {
								break
							}
							d[cc] = src[si]
							si += hw
						}
					}
					i += cC
				}
			}
		}
	}
}

// im2colPatchesFromHWCIntoCols is im2colPatchesIntoCols reading HWC
// input: same (C·K²)×cols patch matrix, but each tap reads the
// channel-strided HWC pixel row — the pack-fused form of an HWC→CHW
// conversion feeding an im2col conv.
//
//dnn:hotpath
func im2colPatchesFromHWCIntoCols(p []float32, totalCols, colOff int, in *tensor.Tensor, s Scenario) {
	oh, ow := s.OutH(), s.OutW()
	sW, stride, pad := s.W, s.Stride, s.Pad
	cC := s.C
	data := in.Data
	for c := 0; c < cC; c++ {
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				r := (c*s.K+kh)*s.K + kw
				dst := p[r*totalCols+colOff:][:oh*ow]
				for y := 0; y < oh; y++ {
					ih := y*stride - pad + kh
					if ih < 0 || ih >= s.H {
						continue // whole row out of range: stays zero
					}
					drow := dst[y*ow:][:ow]
					srcRow := data[ih*sW*cC:][:sW*cC]
					// Clip to the x range whose taps land in-bounds
					// (out-of-range taps stay zero), then walk both
					// buffers under loop-condition bounds so the strided
					// gather compiles check-free.
					x0 := 0
					if pad > kw {
						x0 = (pad - kw + stride - 1) / stride
					}
					if x0 < 0 {
						x0 = 0
					}
					x1 := (sW-1-kw+pad)/stride + 1
					if x1 > len(drow) {
						x1 = len(drow)
					}
					step := stride * cC
					si := (x0*stride-pad+kw)*cC + c
					for x := x0; x < x1; x++ {
						// One unsigned compare carries both bounds of the
						// strided gather for the prover.
						if uint(si) >= uint(len(srcRow)) {
							break
						}
						drow[x] = srcRow[si]
						si += step
					}
				}
			}
		}
	}
}
