// Package obs is the observability layer: low-overhead instrumentation
// primitives threaded through the execution engine and the serving
// stack, and the report types that join what the engine *observed*
// against what the cost model *predicted*.
//
// The PBQP selector's whole premise is that per-layer cost predictions
// drive global primitive selection — yet until this package the runtime
// observed only end-to-end batch latency, so a plan that mispredicts
// one layer was indistinguishable from a plan that mispredicts all of
// them. The pieces here close that gap:
//
//   - Profile: a lock-free per-instruction timer. The engine samples
//     whole RunBatch chunks (1-in-K in serving, always-on in bench) and
//     accumulates observed ns per instruction with atomic adds — no
//     locks, no allocation, near-zero cost when disabled (two nil
//     checks on the task path, pinned by a benchmark).
//   - Histogram: a fixed-bucket, atomic duration histogram for the
//     request-lifecycle phases (queue-wait / batch-assembly / engine /
//     respond) and for Prometheus exposition.
//   - LayerTable: the per-layer predicted-vs-observed join — per
//     (instruction, batch bucket), the plan's predicted ns against the
//     profile's measured ns. This table is the calibration data an
//     online adaptive re-selection controller will consume (ROADMAP
//     "close the predicted-vs-observed loop").
//
// The package deliberately depends on nothing but the standard library
// so every layer of the system (exec, serve, cmd) can use it without
// import cycles.
package obs

import "sync/atomic"

// Profile accumulates observed execution time per instruction of one
// compiled program, for one batch bucket (the engine that owns the
// profile is compiled for exactly one bucket, so the (instruction,
// bucket) key of the aggregation is the (index, owner) pair).
//
// All methods are safe for concurrent use. The hot-path methods —
// SampleChunk and Observe — are lock-free single atomics and never
// allocate; Snapshot is the slow path for exposition.
type Profile struct {
	every uint32 // sample 1 chunk in every; 1 = always-on
	tick  atomic.Uint32

	// ns and samples accumulate per instruction, atomically. The slices
	// are sized at construction and never resized; all element access
	// goes through sync/atomic.
	ns      []int64
	samples []int64

	chunks int64 // sampled RunBatch chunks
	images int64 // images carried by sampled chunks
	wallNS int64 // engine wall ns of sampled chunks
}

// NewProfile returns a profile for a program of n instructions that
// samples one RunBatch chunk in every k (k ≤ 1 means always-on). A
// sampled chunk times every instruction it executes, so per-layer
// ratios stay exact within a chunk; skipped chunks pay only one atomic
// increment.
func NewProfile(n, k int) *Profile {
	if k < 1 {
		k = 1
	}
	return &Profile{
		every:   uint32(k),
		ns:      make([]int64, n),
		samples: make([]int64, n),
	}
}

// Every reports the sampling period (1 = always-on).
func (p *Profile) Every() int { return int(p.every) }

// Len reports the instruction count the profile was sized for.
func (p *Profile) Len() int { return len(p.ns) }

// SampleChunk decides whether the next RunBatch chunk is sampled: true
// once per `every` calls. The decision is made per chunk, not per
// instruction, so a sampled chunk yields a complete per-layer breakdown
// of one real dispatch.
//
//dnn:hotpath
func (p *Profile) SampleChunk() bool {
	return p.tick.Add(1)%p.every == 0
}

// Observe accumulates one sampled instruction execution.
//
//dnn:hotpath
func (p *Profile) Observe(i int, ns int64) {
	atomic.AddInt64(&p.ns[i], ns)
	atomic.AddInt64(&p.samples[i], 1)
}

// ObserveChunk accumulates one sampled chunk's engine wall time and
// image count — the denominator that turns per-instruction totals into
// per-image costs and the reference the per-layer sum is checked
// against.
func (p *Profile) ObserveChunk(images int, wallNS int64) {
	atomic.AddInt64(&p.chunks, 1)
	atomic.AddInt64(&p.images, int64(images))
	atomic.AddInt64(&p.wallNS, wallNS)
}

// ProfileSnapshot is a consistent-enough copy of a profile's counters
// (each counter is read atomically; the set is not a single linearized
// cut, which per-layer aggregation tolerates).
type ProfileSnapshot struct {
	Every   int     `json:"sample_every"`
	Chunks  int64   `json:"sampled_chunks"`
	Images  int64   `json:"sampled_images"`
	WallNS  int64   `json:"engine_wall_ns"`
	NS      []int64 `json:"instr_ns"`
	Samples []int64 `json:"instr_samples"`
}

// Snapshot copies the accumulated counters out for reporting.
func (p *Profile) Snapshot() ProfileSnapshot {
	s := ProfileSnapshot{
		Every:   int(p.every),
		Chunks:  atomic.LoadInt64(&p.chunks),
		Images:  atomic.LoadInt64(&p.images),
		WallNS:  atomic.LoadInt64(&p.wallNS),
		NS:      make([]int64, len(p.ns)),
		Samples: make([]int64, len(p.samples)),
	}
	for i := range p.ns {
		s.NS[i] = atomic.LoadInt64(&p.ns[i])
		s.Samples[i] = atomic.LoadInt64(&p.samples[i])
	}
	return s
}
