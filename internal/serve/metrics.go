package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbqpdnn/internal/obs"
)

// latencyWindow bounds the per-model latency sample ring. 8k samples
// keep percentile estimates stable at serving rates while capping the
// snapshot sort at well under a millisecond.
const latencyWindow = 8192

// Metrics aggregates one batcher's serving counters. All methods are
// safe for concurrent use; Snapshot returns a consistent copy suitable
// for JSON encoding (the /stats endpoint and expvar publish it).
type Metrics struct {
	mu sync.Mutex

	start time.Time

	// The admission counters sit on every request's entry path and are
	// bumped lock-free; all access goes through sync/atomic.
	accepted int64 // admitted into the queue
	rejected int64 // turned away at admission (queue full)
	expired  int64 // pruned at flush time: request deadline passed while queued

	served int64 // completed through the engine
	failed int64 // completed with an engine error

	batches   int64   // RunBatch dispatches
	batchSum  int64   // sum of dispatched batch sizes
	batchHist []int64 // index = batch size; [0] unused

	// engNS and engImages accumulate, per dispatched batch size, the
	// engine wall time and images served through successful dispatches —
	// the observability for the batching-efficiency claim: ns/image
	// should fall as the dispatched batch size grows.
	engNS     []int64 // index = batch size; [0] unused
	engImages []int64 // index = batch size; [0] unused

	// latencies is a ring of enqueue→completion times for served
	// requests; percentiles are computed over the window on demand.
	latencies []time.Duration
	latIdx    int

	// phases are the request-lifecycle histograms, one per dispatch
	// phase (see PhaseNames): time spent queued behind the collector,
	// time inside batch assembly (the MaxWait window), engine
	// execution, and reply fan-out. They are lock-free — the batcher
	// observes them outside m.mu — so overload diagnosis (queueing vs
	// compute) costs the hot path one atomic add per phase.
	phases [numPhases]*obs.Histogram

	queueDepth func() int // reads the live queue length, set by the batcher
}

// The request-lifecycle phases, in dispatch order.
const (
	phaseQueueWait = iota
	phaseAssembly
	phaseEngine
	phaseRespond
	numPhases
)

// PhaseNames labels the lifecycle phases, indexed like Metrics.phases.
var PhaseNames = [numPhases]string{"queue_wait", "batch_assembly", "engine", "respond"}

// NewMetrics returns an empty metrics aggregate.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now()}
	for i := range m.phases {
		m.phases[i] = obs.NewHistogram()
	}
	return m
}

// PhaseSnapshots copies the lifecycle-phase histograms out, keyed by
// PhaseNames — the raw buckets the Prometheus exposition renders.
func (m *Metrics) PhaseSnapshots() map[string]obs.HistogramSnapshot {
	out := make(map[string]obs.HistogramSnapshot, numPhases)
	for i, h := range m.phases {
		out[PhaseNames[i]] = h.Snapshot()
	}
	return out
}

func (m *Metrics) admit() { atomic.AddInt64(&m.accepted, 1) }

func (m *Metrics) reject() { atomic.AddInt64(&m.rejected, 1) }

func (m *Metrics) expire(n int) { atomic.AddInt64(&m.expired, int64(n)) }

// observeBatch records one engine dispatch: its size, the engine wall
// time the dispatch spent in RunBatch, and, per request, the
// enqueue→completion latency (or a failure).
func (m *Metrics) observeBatch(size int, engine time.Duration, latencies []time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchSum += int64(size)
	for len(m.batchHist) <= size {
		m.batchHist = append(m.batchHist, 0)
		m.engNS = append(m.engNS, 0)
		m.engImages = append(m.engImages, 0)
	}
	m.batchHist[size]++
	if err != nil {
		m.failed += int64(size)
		return
	}
	m.engNS[size] += engine.Nanoseconds()
	m.engImages[size] += int64(size)
	m.served += int64(size)
	for _, d := range latencies {
		if len(m.latencies) < latencyWindow {
			m.latencies = append(m.latencies, d)
		} else {
			m.latencies[m.latIdx] = d
			m.latIdx = (m.latIdx + 1) % latencyWindow
		}
	}
}

// ObservedNsPerImage returns the measured mean engine wall time per
// image across the dispatched batch sizes in [lo, hi] — the sizes one
// batch bucket serves — or 0 when none of those sizes has completed a
// dispatch yet.
func (m *Metrics) ObservedNsPerImage(lo, hi int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ns, images int64
	for b := lo; b <= hi && b < len(m.engNS); b++ {
		if b < 1 {
			continue
		}
		ns += m.engNS[b]
		images += m.engImages[b]
	}
	if images == 0 {
		return 0
	}
	return float64(ns) / float64(images)
}

// Stats is a point-in-time JSON-friendly view of a batcher's counters.
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`

	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Expired  int64 `json:"expired"`
	Served   int64 `json:"served"`
	Failed   int64 `json:"failed"`

	QueueDepth int `json:"queue_depth"`

	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	BatchHist []int64 `json:"batch_hist"` // index = batch size; [0] unused
	// NsPerImageByBatch is the mean engine wall time per image for each
	// dispatched batch size (index = batch size; 0 where that size has
	// not been dispatched). Falling values as the index grows are the
	// batching-efficiency claim made observable.
	NsPerImageByBatch []float64 `json:"ns_per_image_by_batch"`
	ThroughputRPS     float64   `json:"throughput_rps"`
	LatencyMeanMS     float64   `json:"latency_mean_ms"`
	LatencyP50MS      float64   `json:"latency_p50_ms"`
	LatencyP99MS      float64   `json:"latency_p99_ms"`
	LatencySamples    int       `json:"latency_samples"`

	// Phases summarizes the request-lifecycle histograms (PhaseNames
	// order): where a dispatched request's time went. Under overload,
	// queue_wait ballooning while engine stays flat means admission is
	// the bottleneck; the reverse means compute.
	Phases map[string]PhaseSummary `json:"phases"`
}

// PhaseSummary is one lifecycle phase's latency digest.
type PhaseSummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Snapshot returns a consistent copy of the counters with derived
// aggregates (mean batch size, windowed latency percentiles,
// whole-lifetime throughput).
func (m *Metrics) Snapshot() Stats {
	m.mu.Lock()
	s := Stats{
		UptimeSec: time.Since(m.start).Seconds(),
		Accepted:  atomic.LoadInt64(&m.accepted),
		Rejected:  atomic.LoadInt64(&m.rejected),
		Expired:   atomic.LoadInt64(&m.expired),
		Served:    m.served,
		Failed:    m.failed,
		Batches:   m.batches,
		BatchHist: append([]int64(nil), m.batchHist...),
	}
	s.NsPerImageByBatch = make([]float64, len(m.engNS))
	for b := range m.engNS {
		if m.engImages[b] > 0 {
			s.NsPerImageByBatch[b] = float64(m.engNS[b]) / float64(m.engImages[b])
		}
	}
	if m.batches > 0 {
		s.MeanBatch = float64(m.batchSum) / float64(m.batches)
	}
	if s.UptimeSec > 0 {
		s.ThroughputRPS = float64(m.served) / s.UptimeSec
	}
	lats := append([]time.Duration(nil), m.latencies...)
	depth := m.queueDepth
	m.mu.Unlock()

	if depth != nil {
		s.QueueDepth = depth()
	}
	s.Phases = make(map[string]PhaseSummary, numPhases)
	for i, h := range m.phases {
		hs := h.Snapshot()
		s.Phases[PhaseNames[i]] = PhaseSummary{
			Count:  hs.Count,
			MeanMS: hs.MeanMS(),
			P50MS:  float64(hs.Quantile(0.50).Nanoseconds()) / 1e6,
			P99MS:  float64(hs.Quantile(0.99).Nanoseconds()) / 1e6,
		}
	}
	s.LatencySamples = len(lats)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		s.LatencyMeanMS = float64(sum.Nanoseconds()) / float64(len(lats)) / 1e6
		s.LatencyP50MS = float64(percentile(lats, 50).Nanoseconds()) / 1e6
		s.LatencyP99MS = float64(percentile(lats, 99).Nanoseconds()) / 1e6
	}
	return s
}

// percentile reads the p-th percentile (nearest-rank) from a sorted
// sample set.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
