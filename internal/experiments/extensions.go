package experiments

import (
	"fmt"
	"strings"
	"time"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// This file implements the paper's §8 future-work experiments, which
// the formulation supports "with the addition of a parameter": a
// kernel-sparsity sweep showing where the selector switches from dense
// to sparse primitives, and a minibatch sweep showing per-layer batch
// scaling.

// SparsityPoint is one row of the sparsity sweep.
type SparsityPoint struct {
	Sparsity    float64
	DenseMS     float64 // best selection with sparse primitives excluded
	SelectedMS  float64 // full-library selection
	UsedSparse  bool    // did the optimizer pick a sparse primitive
	SpeedupX    float64
	PrimaryName string
}

// sparsityNet is a mid-sized layer stack typical of a pruned model.
func sparsityNet(sparsity float64) *dnn.Graph {
	b, x := dnn.NewBuilder("pruned-net", 128, 28, 28)
	x = b.Conv(x, "c1", 128, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.Conv(x, "c2", 128, 3, 1, 1)
	x = b.Softmax(x, "sm")
	g := b.Graph()
	for _, id := range g.ConvLayers() {
		g.Layers[id].Conv.Sparsity = sparsity
	}
	return g
}

// SparsitySweep runs the §8 dense-vs-sparse decision across kernel
// sparsity levels on the Intel model.
func SparsitySweep() ([]SparsityPoint, error) {
	var pts []SparsityPoint
	prof := cost.NewModel(cost.IntelHaswell)
	for _, sp := range []float64{0, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99} {
		g := sparsityNet(sp)
		opts := selector.Options{Prof: prof, Threads: 1}

		full, err := selector.Select(g, opts)
		if err != nil {
			return nil, err
		}
		denseOpts := opts
		denseOpts.Lib = denseLibrary()
		dense, err := selector.Select(g, denseOpts)
		if err != nil {
			return nil, err
		}
		used := false
		name := ""
		for _, id := range g.ConvLayers() {
			p := full.Primitives[id]
			if p.Sparse {
				used = true
			}
			name = p.Name
		}
		pts = append(pts, SparsityPoint{
			Sparsity:    sp,
			DenseMS:     dense.TotalCost() * 1e3,
			SelectedMS:  full.TotalCost() * 1e3,
			UsedSparse:  used,
			SpeedupX:    dense.TotalCost() / full.TotalCost(),
			PrimaryName: name,
		})
	}
	return pts, nil
}

// denseLibrary is the primitive library with the sparsity-exploiting
// entries removed — the ablation side of the sweep.
func denseLibrary() []*conv.Primitive {
	var out []*conv.Primitive
	for _, p := range conv.Library() {
		if !p.Sparse {
			out = append(out, p)
		}
	}
	return out
}

// MinibatchPoint is one row of the §8 minibatch sweep. TotalMS and
// PerImageMS are the cost model's predictions for the
// batch-parameterized plan; WallTotalMS and WallPerImageMS are
// measured wall-clock times of the real batched execution engine
// (exec.RunBatch) reusing one legalized plan across the minibatch.
type MinibatchPoint struct {
	Batch          int
	TotalMS        float64
	PerImageMS     float64
	WallTotalMS    float64
	WallPerImageMS float64
}

// batchedNet is the sweep's workload: a two-convolution stack at a
// mid-network size. batch parameterizes the cost model only; execution
// always processes per-image tensors.
func batchedNet(batch int) *dnn.Graph {
	b, x := dnn.NewBuilder("batched-net", 64, 28, 28)
	x = b.Conv(x, "c1", 64, 3, 1, 1)
	x = b.Conv(x, "c2", 64, 3, 1, 1)
	x = b.Softmax(x, "sm")
	g := b.Graph()
	for _, id := range g.ConvLayers() {
		g.Layers[id].Conv.Batch = batch
	}
	return g
}

// MinibatchSweep runs MinibatchSweepOpts at the paper-style defaults
// (4 threads, batches 1–16).
func MinibatchSweep() ([]MinibatchPoint, error) {
	return MinibatchSweepOpts(4, []int{1, 2, 4, 8, 16})
}

// MinibatchSweepOpts scales the batch parameter and reports per-image
// amortization: predicted by the cost model (plans re-selected per
// batch-parameterized graph) and measured by executing the real
// batched engine on the minibatch. One engine — and thus one warm
// buffer arena — serves all batch sizes, mirroring a serving process.
func MinibatchSweepOpts(threads int, batches []int) ([]MinibatchPoint, error) {
	prof := cost.NewModel(cost.IntelHaswell)

	// The executed plan: batch-free graph (execution is per-image),
	// selected once and reused across every batch size.
	execNet := batchedNet(0)
	execPlan, err := selector.Select(execNet, selector.Options{Prof: prof, Threads: threads})
	if err != nil {
		return nil, err
	}
	w := exec.NewWeights(execNet)
	eng, err := exec.NewEngine(execPlan, w)
	if err != nil {
		return nil, err
	}
	warm := makeBatch(execNet, 1)
	if _, err := eng.RunBatch(warm); err != nil { // warm the arena
		return nil, err
	}

	var pts []MinibatchPoint
	for _, batch := range batches {
		g := batchedNet(batch)
		plan, err := selector.Select(g, selector.Options{Prof: prof, Threads: threads})
		if err != nil {
			return nil, err
		}
		inputs := makeBatch(execNet, batch)
		start := time.Now()
		if _, err := eng.RunBatch(inputs); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds() * 1e3
		pts = append(pts, MinibatchPoint{
			Batch:          batch,
			TotalMS:        plan.TotalCost() * 1e3,
			PerImageMS:     plan.TotalCost() * 1e3 / float64(batch),
			WallTotalMS:    wall,
			WallPerImageMS: wall / float64(batch),
		})
	}
	return pts, nil
}

// makeBatch fabricates n deterministic input images for the network.
func makeBatch(g *dnn.Graph, n int) []*tensor.Tensor {
	l := g.Layers[0]
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = tensor.New(tensor.CHW, l.OutC, l.OutH, l.OutW)
		ins[i].FillRandom(int64(i + 1))
	}
	return ins
}

// FormatSparsitySweep renders the sweep.
func FormatSparsitySweep(pts []SparsityPoint) string {
	var b strings.Builder
	b.WriteString("== §8 extension: dense-vs-sparse selection sweep (Intel model) ==\n")
	fmt.Fprintf(&b, "%-9s %-11s %-11s %-8s %-9s %s\n",
		"sparsity", "dense ms", "chosen ms", "gain", "sparse?", "selection")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-9.2f %-11.3f %-11.3f %-8.2f %-9v %s\n",
			p.Sparsity, p.DenseMS, p.SelectedMS, p.SpeedupX, p.UsedSparse, p.PrimaryName)
	}
	return b.String()
}

// FormatMinibatchSweep renders the sweep.
func FormatMinibatchSweep(pts []MinibatchPoint) string {
	var b strings.Builder
	b.WriteString("== §8 extension: minibatch scaling (Intel model + measured batched engine) ==\n")
	fmt.Fprintf(&b, "%-7s %-11s %-14s %-11s %s\n",
		"batch", "model ms", "model ms/img", "wall ms", "wall ms/img")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-7d %-11.3f %-14.3f %-11.3f %.3f\n",
			p.Batch, p.TotalMS, p.PerImageMS, p.WallTotalMS, p.WallPerImageMS)
	}
	return b.String()
}
