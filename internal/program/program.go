// Package program lowers a checked selector.Plan into an executable
// Program IR: a topologically ordered instruction stream in which every
// instruction carries its pre-resolved work — the selected convolution
// primitive, a fast-path layer operator, or a fused layout-conversion
// chain — plus a static memory plan computed by liveness analysis.
//
// The paper's §5.2 "simple code generator" mapped a PBQP solution to a
// straight-line sequence of primitive and layout-transform calls; this
// package is that code generator made real. Compiling once replaces the
// per-task map lookups and type switches the interpreting executor paid
// on the hot path, and the fixed topological schedule makes static
// buffer reuse possible: instructions are assigned to a small set of
// reusable buffer slots, with in-place execution for ReLU, elementwise
// add and dropout where the executor's no-alias contract allows it.
//
// The slot plan is safe under parallel execution, not just the
// sequential schedule: a slot freed by a dead value may be reassigned
// to instruction j only if everything that touched the old buffer is a
// strict ancestor of j in the dependency DAG, so no concurrently
// runnable instruction can observe the reuse. The exec package's
// batched engine relies on this when it dispatches independent branches
// onto its worker pool.
package program

import (
	"fmt"
	"sort"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// Op enumerates the instruction kinds of the IR.
type Op uint8

const (
	// OpInput copies (and, if needed, layout-converts) the caller's
	// input tensor into engine-owned storage.
	OpInput Op = iota
	// OpConv invokes the layer's selected convolution primitive.
	OpConv
	// OpReLU through OpAdd are the wildcard layer operators.
	OpReLU
	OpLRN
	OpMaxPool
	OpAvgPool
	OpDropout
	OpSoftmax
	OpFC
	OpConcat
	OpAdd
	// OpConvert applies one legalized edge's fused conversion chain.
	OpConvert
)

// String names the op like the layer kinds it mirrors.
func (o Op) String() string {
	switch o {
	case OpInput:
		return "input"
	case OpConv:
		return "conv"
	case OpReLU:
		return "relu"
	case OpLRN:
		return "lrn"
	case OpMaxPool:
		return "maxpool"
	case OpAvgPool:
		return "avgpool"
	case OpDropout:
		return "dropout"
	case OpSoftmax:
		return "softmax"
	case OpFC:
		return "fc"
	case OpConcat:
		return "concat"
	case OpAdd:
		return "add"
	case OpConvert:
		return "convert"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// NoSlot marks a value that does not live in a planned slot: the
// primitive-allocated output of a convolution, or the caller-owned
// network output (which must be freshly allocated every run so returned
// tensors are never recycled underneath the caller).
const NoSlot = -1

// Instr is one instruction of the stream. Its ID doubles as the id of
// the value it produces; Args name the value ids it consumes.
type Instr struct {
	ID   int
	Op   Op
	Name string

	// Layer is the network layer this instruction computes. For
	// OpConvert it is the consumer layer whose incoming edge the chain
	// legalizes (the instruction's shape is the producer's).
	Layer *dnn.Layer

	// Args lists the consumed value ids in operator order.
	Args []int

	// Slot is the buffer slot holding this instruction's output value,
	// or NoSlot for dynamically allocated values. An in-place
	// instruction records the slot its donor occupies.
	Slot int
	// Donor, when ≥ 0, is the index into Args whose buffer this
	// instruction overwrites in place (the donated value is dead after
	// this instruction by construction).
	Donor int
	// Alias marks an in-place identity (dropout): the output value IS
	// the donor tensor; no kernel runs at all.
	Alias bool

	// C, H, W and Layout describe the produced value.
	C, H, W int
	Layout  tensor.Layout

	// Prim is the selected primitive (OpConv only).
	Prim *conv.Primitive
	// Chain is the legalized conversion chain (OpConvert only); it is
	// executed as one fused ConvertInto from Chain[0].From to
	// Chain[last].To.
	Chain []tensor.Transform

	// Epi is the fused epilogue (OpConv and OpFC only): the elementwise
	// consumer folded into this instruction's output write by the fusion
	// pass. EpiAdd/EpiAddReLU instructions carry the residual operand as
	// Args[1]. EpiLayers lists the fused-away network layers in
	// application order (e.g. [add, relu] for EpiAddReLU); the value this
	// instruction produces is the LAST fused layer's value.
	Epi       gemm.Epilogue
	EpiLayers []*dnn.Layer

	// CvtIn, when non-empty, is a legalized input-conversion chain the
	// fusion pass absorbed into the convolution's patch-building pack
	// (OpConv at batch > 1 only): Args[0] arrives in CvtIn[0].From and the
	// layout-general packer gathers it directly, so the intermediate
	// converted slab is never materialized.
	CvtIn []tensor.Transform

	// NumDeps is the number of distinct producing instructions; Succs
	// lists the distinct consuming instructions. The engine's
	// dependency-counting scheduler reads both without recomputation.
	NumDeps int
	Succs   []int
}

// DataLen returns the physical element count of the produced value.
func (in *Instr) DataLen() int {
	return tensor.DataLen(in.Layout, in.C, in.H, in.W)
}

// ValueLayer returns the network layer whose value this instruction
// produces: the last fused epilogue layer when the instruction carries
// one, else its own layer.
func (in *Instr) ValueLayer() *dnn.Layer {
	if n := len(in.EpiLayers); n > 0 {
		return in.EpiLayers[n-1]
	}
	return in.Layer
}

// Bytes returns the payload size of the produced value in bytes.
func (in *Instr) Bytes() int64 { return int64(in.DataLen()) * 4 }

// Stats summarizes a compiled program for reporting. All byte figures
// are totals for the program's planned batch of N images — a batched
// program's slots hold N-image slabs, so memory reporting must scale
// with N (a batch-8 plan resident in a serving process really does
// hold 8× the batch-1 slot bytes).
type Stats struct {
	// Batch is the minibatch size N the program was planned for.
	Batch int
	// Instructions is the total instruction count; Conversions counts
	// the OpConvert instructions among them.
	Instructions int
	Conversions  int
	// Slots is the number of planned buffer slots; InPlace counts
	// instructions executing in their donor's buffer.
	Slots   int
	InPlace int
	// SlotBytes is the resident footprint of the batch's slot frame
	// (per-image slot capacities × N).
	SlotBytes int64
	// DynamicPeakBytes is the peak of concurrently live dynamic values
	// (per-image convolution outputs in batch-1 programs, and the
	// caller-owned network output) under the sequential topological
	// schedule, scaled by N. Parallel branch execution can hold more
	// dynamic values live at once, so this is a lower bound on
	// worst-case residency, not a ceiling.
	DynamicPeakBytes int64
	// PeakBytes is SlotBytes + DynamicPeakBytes: the batch's peak
	// resident payload on the sequential schedule.
	PeakBytes int64
	// NaiveBytes is the sum of every value's payload across the batch —
	// what an executor without buffer reuse or in-place execution
	// would hold.
	NaiveBytes int64
	// FusedEpilogues counts the elementwise layers folded into conv/FC
	// output writes; FusedConversions counts the conversion instructions
	// absorbed into convolution packs.
	FusedEpilogues   int
	FusedConversions int
	// UnfusedInstructions and UnfusedPeakBytes are the instruction count
	// and peak resident bytes the same plan compiles to with the fusion
	// pass disabled — the baseline the fusion deltas are reported
	// against. For CompileBatchNoFuse programs they equal the program's
	// own figures.
	UnfusedInstructions int
	UnfusedPeakBytes    int64
}

// Program is a compiled, executable lowering of one selector.Plan for
// a fixed minibatch size.
type Program struct {
	Plan *selector.Plan

	// Batch is the minibatch size N this program was compiled for. The
	// instruction stream is N-independent, but the memory plan is not:
	// slot frames are sized by N, and batched programs (N > 1) plan
	// convolution outputs into slots too, because batched conv kernels
	// write into caller-provided destinations instead of allocating.
	Batch int

	// Instrs is the topologically ordered instruction stream; an
	// instruction's ID is its index.
	Instrs []Instr
	// SlotCap gives each planned slot's *per-image* capacity in float32
	// elements (the max DataLen over its tenants). A slot's physical
	// buffer holds SlotCap[s] × Batch elements.
	SlotCap []int
	// InstrOf maps each layer id to the instruction computing it.
	InstrOf []int
	// Output is the instruction producing the network output.
	Output int

	Stats Stats
}

func opOf(k dnn.Kind) (Op, error) {
	switch k {
	case dnn.KindInput:
		return OpInput, nil
	case dnn.KindConv:
		return OpConv, nil
	case dnn.KindReLU:
		return OpReLU, nil
	case dnn.KindLRN:
		return OpLRN, nil
	case dnn.KindMaxPool:
		return OpMaxPool, nil
	case dnn.KindAvgPool:
		return OpAvgPool, nil
	case dnn.KindDropout:
		return OpDropout, nil
	case dnn.KindSoftmax:
		return OpSoftmax, nil
	case dnn.KindFC:
		return OpFC, nil
	case dnn.KindConcat:
		return OpConcat, nil
	case dnn.KindAdd:
		return OpAdd, nil
	}
	return 0, fmt.Errorf("program: unsupported layer kind %s", k)
}

// inPlaceable reports whether the op's kernel tolerates dst aliasing
// its donor input (see the kernel contract in kernels.go). Dropout
// in-place degenerates to a pure alias.
func inPlaceable(o Op) bool {
	return o == OpReLU || o == OpAdd || o == OpDropout
}

// DebugVerify, when non-nil, is invoked on every program CompileBatch
// produces, after Validate has accepted it. The independent translation
// validator (internal/verify) registers itself here in tests, so every
// program the suite compiles is re-checked from first principles by
// code that shares nothing with the compiler that built it. Production
// builds leave it nil; it must be set before any Compile call and never
// mutated concurrently with compilation.
var DebugVerify func(*Program) error

// Clone returns a deep copy of the program: the instruction stream,
// per-instruction Args/Succs/Chain slices, slot capacities and layer
// map are all fresh storage. The immutable referents — the Plan, the
// network layers, the primitives — are shared. Mutation tests and
// future plan hot-swapping corrupt or patch clones without touching
// the engine-owned original.
func (p *Program) Clone() *Program {
	q := *p
	q.Instrs = append([]Instr(nil), p.Instrs...)
	for i := range q.Instrs {
		ins := &q.Instrs[i]
		ins.Args = append([]int(nil), ins.Args...)
		ins.Succs = append([]int(nil), ins.Succs...)
		ins.Chain = append([]tensor.Transform(nil), ins.Chain...)
		ins.EpiLayers = append([]*dnn.Layer(nil), ins.EpiLayers...)
		ins.CvtIn = append([]tensor.Transform(nil), ins.CvtIn...)
	}
	q.SlotCap = append([]int(nil), p.SlotCap...)
	q.InstrOf = append([]int(nil), p.InstrOf...)
	return &q
}

// Compile lowers a checked plan into the batch-1 Program IR: the
// per-image program whose convolution outputs are primitive-allocated.
// It is CompileBatch at N = 1.
func Compile(plan *selector.Plan) (*Program, error) {
	return CompileBatch(plan, 1)
}

// CompileBatch lowers a checked plan into the Program IR for an
// N-image minibatch: emit one instruction per layer (plus one fused
// conversion instruction per legalized edge), link the dependency
// structure, run the liveness analysis that assigns values to reusable
// slots and marks in-place execution, and validate the result.
//
// The plan may be the bucket's own batch-optimized plan (selected by
// selector.SelectBatch at this N) or a batch-agnostic per-image plan;
// a plan selected for a *different* batch bucket is rejected by
// Plan.CheckBatch, so a serving registry cannot silently execute one
// bucket against another bucket's optimization.
//
// The instruction stream is identical for every N; the memory plan is
// not. At N = 1 convolution outputs stay dynamic (the per-image
// primitives allocate their own outputs, preserving the original
// per-image execution path); at N > 1 the batched kernels write into
// caller-provided destinations, so convolution outputs join the
// wildcard values in the planned slots and the whole batch executes
// against a statically planned, arena-recycled frame.
func CompileBatch(plan *selector.Plan, batch int) (*Program, error) {
	return compilePlan(plan, batch, true)
}

// CompileBatchNoFuse is CompileBatch with the instruction-fusion pass
// disabled: every epilogue layer and legalized conversion stays a
// separate instruction. It is the baseline arm for fused-vs-unfused
// comparisons (dnnbench -exp fusesweep) and for tests that pin the
// pre-fusion stream shape.
func CompileBatchNoFuse(plan *selector.Plan, batch int) (*Program, error) {
	return compilePlan(plan, batch, false)
}

func compilePlan(plan *selector.Plan, batch int, fuse bool) (*Program, error) {
	if batch < 1 {
		return nil, fmt.Errorf("program: invalid batch size %d", batch)
	}
	if err := plan.CheckBatch(batch); err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	net := plan.Net
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := &Program{
		Plan:    plan,
		Batch:   batch,
		InstrOf: make([]int, net.NumLayers()),
	}
	emit := func(ins Instr) int {
		ins.ID = len(p.Instrs)
		ins.Donor = -1
		p.Instrs = append(p.Instrs, ins)
		return ins.ID
	}
	for _, id := range order {
		l := net.Layers[id]
		op, err := opOf(l.Kind)
		if err != nil {
			return nil, err
		}
		// Predecessors stay in declared graph order: for concat the
		// argument order IS the channel order (and for add, the float
		// summation order), exactly as the sequential oracle executes
		// them.
		preds := net.Preds(id)
		args := make([]int, 0, len(preds))
		for _, pr := range preds {
			v := p.InstrOf[pr]
			if chain := plan.Conversions[[2]int{pr, id}]; len(chain) > 0 {
				pl := net.Layers[pr]
				to := chain[len(chain)-1].To
				v = emit(Instr{
					Op:     OpConvert,
					Name:   pl.Name + "." + to.String(),
					Layer:  l,
					Args:   []int{v},
					C:      pl.OutC,
					H:      pl.OutH,
					W:      pl.OutW,
					Layout: to,
					Chain:  chain,
				})
			}
			args = append(args, v)
		}
		ins := Instr{
			Op:     op,
			Name:   l.Name,
			Layer:  l,
			Args:   args,
			C:      l.OutC,
			H:      l.OutH,
			W:      l.OutW,
			Layout: plan.Layouts[id],
		}
		if l.IsConv() {
			ins.Prim = plan.Primitives[id]
		}
		p.InstrOf[id] = emit(ins)
	}
	p.Output = p.InstrOf[order[len(order)-1]]
	var base *Program
	if fuse {
		base = p.unfusedBaseline()
		p.fuseInstructions()
	}
	p.link()
	p.planMemory()
	p.computeStats()
	if base != nil {
		p.Stats.UnfusedInstructions = base.Stats.Instructions
		p.Stats.UnfusedPeakBytes = base.Stats.PeakBytes
	} else {
		p.Stats.UnfusedInstructions = p.Stats.Instructions
		p.Stats.UnfusedPeakBytes = p.Stats.PeakBytes
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if DebugVerify != nil {
		if err := DebugVerify(p); err != nil {
			return nil, fmt.Errorf("program: translation validation: %w", err)
		}
	}
	return p, nil
}

// unfusedBaseline snapshots the raw pre-fusion stream and runs the
// rest of the compilation pipeline on the copy, yielding the
// instruction count and memory plan the plan would have without
// fusion. Called before fuseInstructions mutates the stream.
func (p *Program) unfusedBaseline() *Program {
	q := &Program{
		Plan:    p.Plan,
		Batch:   p.Batch,
		Output:  p.Output,
		InstrOf: append([]int(nil), p.InstrOf...),
		Instrs:  append([]Instr(nil), p.Instrs...),
	}
	for i := range q.Instrs {
		q.Instrs[i].Args = append([]int(nil), q.Instrs[i].Args...)
	}
	q.link()
	q.planMemory()
	q.computeStats()
	return q
}

// link fills NumDeps and Succs from the argument lists.
func (p *Program) link() {
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		for _, a := range distinct(ins.Args) {
			ins.NumDeps++
			p.Instrs[a].Succs = append(p.Instrs[a].Succs, i)
		}
	}
}

func distinct(ids []int) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		dup := false
		for _, o := range out {
			if o == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// ancestry is the transitive-closure bitset: one row of words per
// instruction, bit i of row j set iff instruction i must complete
// before instruction j can start.
type ancestry struct {
	words int
	bits  []uint64
}

func (p *Program) ancestry() *ancestry {
	n := len(p.Instrs)
	a := &ancestry{words: (n + 63) / 64}
	a.bits = make([]uint64, n*a.words)
	for j := range p.Instrs {
		row := a.bits[j*a.words : (j+1)*a.words]
		for _, pr := range distinct(p.Instrs[j].Args) {
			prow := a.bits[pr*a.words : (pr+1)*a.words]
			for w := range row {
				row[w] |= prow[w]
			}
			row[pr/64] |= 1 << (pr % 64)
		}
	}
	return a
}

// has reports whether i is a strict ancestor of j.
func (a *ancestry) has(j, i int) bool {
	return a.bits[j*a.words+i/64]&(1<<(i%64)) != 0
}

// planMemory runs the liveness analysis: in topological order, decide
// in-place execution, assign out-of-place values to reusable slots, and
// release slots when their tenant's last consumer has been scheduled.
// Slot reuse and in-place donation are both gated on the ancestry
// closure so the plan stays sound when the engine executes independent
// branches concurrently.
func (p *Program) planMemory() {
	n := len(p.Instrs)
	anc := p.ancestry()

	// lastUse[v] is the topologically last consumer of value v (-1 when
	// unconsumed — only the network output).
	lastUse := make([]int, n)
	for v := range lastUse {
		lastUse[v] = -1
	}
	for j := range p.Instrs {
		for _, a := range p.Instrs[j].Args {
			lastUse[a] = j
		}
	}

	type freeSlot struct {
		slot   int
		guards []int // instructions that must be strict ancestors of the next tenant
	}
	var free []freeSlot
	donated := make([]bool, n)

	guardsOK := func(j int, guards []int) bool {
		for _, g := range guards {
			if !anc.has(j, g) {
				return false
			}
		}
		return true
	}

	for j := 0; j < n; j++ {
		ins := &p.Instrs[j]
		ins.Slot = NoSlot

		// In-place: overwrite a dying input's buffer. The donor value
		// must match the output physically, every other consumer of it
		// must be a strict ancestor (so its reads are sealed before this
		// instruction can be dispatched), and the network output is
		// excluded — it must be a fresh, caller-owned allocation.
		if j != p.Output && inPlaceable(ins.Op) {
			for k, a := range ins.Args {
				if k > 0 && (ins.Op != OpAdd || len(ins.Args) != 2) {
					break
				}
				d := &p.Instrs[a]
				if donated[a] || d.Layout != ins.Layout || d.DataLen() != ins.DataLen() {
					continue
				}
				ok := true
				for _, c := range d.Succs {
					if c != j && !anc.has(j, c) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				// AddInto may alias its first input only; a two-input
				// add is commutative bitwise, so promote the donor.
				if k == 1 {
					ins.Args[0], ins.Args[1] = ins.Args[1], ins.Args[0]
					k = 0
				}
				ins.Donor = k
				ins.Alias = ins.Op == OpDropout
				ins.Slot = d.Slot
				donated[a] = true
				break
			}
		}

		if ins.Donor < 0 && (ins.Op != OpConv || p.Batch > 1) && j != p.Output {
			// Out-of-place value: claim a reusable slot whose guards are
			// all strict ancestors, preferring the tightest capacity fit;
			// grow or open a slot otherwise. Batch-1 programs exclude
			// convolutions (their per-image primitives allocate outputs);
			// batched programs slot them, since batched kernels write
			// into provided destinations.
			need := ins.DataLen()
			best, bestWaste := -1, 0
			for k, f := range free {
				if !guardsOK(j, f.guards) {
					continue
				}
				waste := p.SlotCap[f.slot] - need
				if waste < 0 {
					// Reusing a smaller slot grows it; treat growth as
					// waste so an exact fit wins.
					waste = -waste
				}
				if best < 0 || waste < bestWaste {
					best, bestWaste = k, waste
				}
			}
			if best >= 0 {
				f := free[best]
				free = append(free[:best], free[best+1:]...)
				if p.SlotCap[f.slot] < need {
					p.SlotCap[f.slot] = need
				}
				ins.Slot = f.slot
			} else {
				ins.Slot = len(p.SlotCap)
				p.SlotCap = append(p.SlotCap, need)
			}
		}

		// Deaths: every argument value whose last consumer is this
		// instruction releases its slot (unless its buffer was just
		// donated onward). The guards are the dead value's consumers —
		// once they are ancestors of a future tenant, nothing can still
		// touch the buffer concurrently.
		for _, a := range distinct(ins.Args) {
			if lastUse[a] != j || donated[a] || p.Instrs[a].Slot == NoSlot {
				continue
			}
			free = append(free, freeSlot{slot: p.Instrs[a].Slot, guards: p.Instrs[a].Succs})
		}
	}
}

// computeStats fills p.Stats from the planned stream. Byte figures are
// per-image sums scaled by the planned batch size at the end — every
// value of a batched program is an N-image slab.
func (p *Program) computeStats() {
	s := &p.Stats
	s.Batch = p.Batch
	s.Instructions = len(p.Instrs)
	s.Slots = len(p.SlotCap)
	for _, c := range p.SlotCap {
		s.SlotBytes += int64(c) * 4
	}
	// Simulate the sequential schedule to find the dynamic peak.
	lastUse := make([]int, len(p.Instrs))
	for v := range lastUse {
		lastUse[v] = -1
	}
	donated := make([]bool, len(p.Instrs))
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		for _, a := range ins.Args {
			lastUse[a] = j
		}
		if ins.Donor >= 0 {
			donated[ins.Args[ins.Donor]] = true
		}
	}
	var live, peak int64
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		s.NaiveBytes += ins.Bytes()
		switch {
		case ins.Op == OpConvert:
			s.Conversions++
		case ins.Donor >= 0:
			s.InPlace++
		}
		s.FusedEpilogues += len(ins.EpiLayers)
		if len(ins.CvtIn) > 0 {
			s.FusedConversions++
		}
		if ins.Slot == NoSlot && ins.Donor < 0 {
			live += ins.Bytes()
			if live > peak {
				peak = live
			}
		}
		for _, a := range distinct(ins.Args) {
			if lastUse[a] != j || donated[a] {
				continue
			}
			// Walk back through any donation chain to the allocating
			// instruction to decide whether a dynamic buffer just died.
			v := a
			for p.Instrs[v].Donor >= 0 {
				v = p.Instrs[v].Args[p.Instrs[v].Donor]
			}
			if p.Instrs[v].Slot == NoSlot {
				live -= p.Instrs[v].Bytes()
			}
		}
	}
	n := int64(p.Batch)
	s.SlotBytes *= n
	s.DynamicPeakBytes = peak * n
	s.NaiveBytes *= n
	s.PeakBytes = s.SlotBytes + s.DynamicPeakBytes
}

// validateFused checks the fused-instruction invariants: which ops may
// carry an epilogue, the epilogue↔EpiLayers↔Args shape coupling, the
// residual operand's physical match, and that absorbed input
// conversions appear only on convolutions.
func (p *Program) validateFused(ins *Instr) error {
	switch ins.Epi {
	case gemm.EpiNone:
		if len(ins.EpiLayers) != 0 {
			return fmt.Errorf("program: instr %q has %d fused layers but no epilogue", ins.Name, len(ins.EpiLayers))
		}
	case gemm.EpiReLU, gemm.EpiAdd, gemm.EpiAddReLU:
		if ins.Op != OpConv && ins.Op != OpFC {
			return fmt.Errorf("program: instr %q (%s) cannot carry epilogue %s", ins.Name, ins.Op, ins.Epi)
		}
		if ins.Op == OpFC && ins.Epi != gemm.EpiReLU {
			return fmt.Errorf("program: fc instr %q carries epilogue %s (relu only)", ins.Name, ins.Epi)
		}
		wantLayers := 1
		if ins.Epi == gemm.EpiAddReLU {
			wantLayers = 2
		}
		if len(ins.EpiLayers) != wantLayers {
			return fmt.Errorf("program: instr %q epilogue %s records %d fused layers, wants %d",
				ins.Name, ins.Epi, len(ins.EpiLayers), wantLayers)
		}
		if ins.Epi == gemm.EpiAdd || ins.Epi == gemm.EpiAddReLU {
			if len(ins.Args) != 2 {
				return fmt.Errorf("program: instr %q epilogue %s has no residual operand", ins.Name, ins.Epi)
			}
			r := &p.Instrs[ins.Args[1]]
			if r.Layout != ins.Layout || r.DataLen() != ins.DataLen() {
				return fmt.Errorf("program: instr %q residual %q mismatches (%s/%d vs %s/%d)",
					ins.Name, r.Name, r.Layout, r.DataLen(), ins.Layout, ins.DataLen())
			}
		}
	default:
		return fmt.Errorf("program: instr %q carries unsupported epilogue %s", ins.Name, ins.Epi)
	}
	if len(ins.CvtIn) > 0 && ins.Op != OpConv {
		return fmt.Errorf("program: instr %q (%s) absorbs an input conversion", ins.Name, ins.Op)
	}
	return nil
}

// Validate checks the structural invariants of the compiled stream,
// including the parallel-safety of the memory plan: any two tenancies
// of one slot must be fully ordered by the dependency DAG, counting
// every instruction that touches the buffer (the tenant, its in-place
// donees, and all their consumers).
func (p *Program) Validate() error {
	n := len(p.Instrs)
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.ID != j {
			return fmt.Errorf("program: instr %d carries id %d", j, ins.ID)
		}
		for _, a := range ins.Args {
			if a < 0 || a >= j {
				return fmt.Errorf("program: instr %d (%s) consumes out-of-order value %d", j, ins.Name, a)
			}
		}
		switch ins.Op {
		case OpInput:
			if len(ins.Args) != 0 {
				return fmt.Errorf("program: input instr %q has arguments", ins.Name)
			}
		case OpConv:
			if ins.Prim == nil {
				return fmt.Errorf("program: conv instr %q has no primitive", ins.Name)
			}
			wantArgs := 1
			if ins.Epi == gemm.EpiAdd || ins.Epi == gemm.EpiAddReLU {
				wantArgs = 2
			}
			if len(ins.Args) != wantArgs {
				return fmt.Errorf("program: conv instr %q has %d args, wants %d", ins.Name, len(ins.Args), wantArgs)
			}
			wantIn := ins.Prim.In
			if len(ins.CvtIn) > 0 {
				if p.Batch < 2 {
					return fmt.Errorf("program: conv instr %q absorbs a conversion in a batch-1 program", ins.Name)
				}
				if len(ins.CvtIn) != 1 {
					return fmt.Errorf("program: conv instr %q absorbs a %d-step chain", ins.Name, len(ins.CvtIn))
				}
				if ins.CvtIn[0].To != ins.Prim.In {
					return fmt.Errorf("program: conv instr %q absorbed chain ends at %s, primitive %s wants %s",
						ins.Name, ins.CvtIn[0].To, ins.Prim.Name, ins.Prim.In)
				}
				if !ins.Prim.CanAbsorbInput(ins.CvtIn[0].From) {
					return fmt.Errorf("program: conv instr %q: primitive %s cannot absorb %s input",
						ins.Name, ins.Prim.Name, ins.CvtIn[0].From)
				}
				wantIn = ins.CvtIn[0].From
			}
			if got := p.Instrs[ins.Args[0]].Layout; got != wantIn {
				return fmt.Errorf("program: conv instr %q receives %s, primitive %s wants %s",
					ins.Name, got, ins.Prim.Name, wantIn)
			}
			if ins.Prim.Out != ins.Layout {
				return fmt.Errorf("program: conv instr %q produces %s, primitive emits %s",
					ins.Name, ins.Layout, ins.Prim.Out)
			}
		case OpConvert:
			if len(ins.Chain) == 0 || len(ins.Args) != 1 {
				return fmt.Errorf("program: convert instr %q malformed", ins.Name)
			}
			if got := p.Instrs[ins.Args[0]].Layout; got != ins.Chain[0].From {
				return fmt.Errorf("program: convert instr %q receives %s, chain starts at %s",
					ins.Name, got, ins.Chain[0].From)
			}
			if to := ins.Chain[len(ins.Chain)-1].To; to != ins.Layout {
				return fmt.Errorf("program: convert instr %q produces %s, chain ends at %s",
					ins.Name, ins.Layout, to)
			}
		}
		if err := p.validateFused(ins); err != nil {
			return err
		}
		if ins.Donor >= 0 {
			if !inPlaceable(ins.Op) {
				return fmt.Errorf("program: instr %q (%s) cannot run in place", ins.Name, ins.Op)
			}
			if j == p.Output {
				return fmt.Errorf("program: output instr %q runs in place", ins.Name)
			}
			d := &p.Instrs[ins.Args[ins.Donor]]
			if d.Layout != ins.Layout || d.DataLen() != ins.DataLen() {
				return fmt.Errorf("program: instr %q overwrites mismatched donor %q in place", ins.Name, d.Name)
			}
		}
		if ins.Slot >= 0 {
			if ins.Slot >= len(p.SlotCap) {
				return fmt.Errorf("program: instr %q uses unknown slot %d", ins.Name, ins.Slot)
			}
			if ins.DataLen() > p.SlotCap[ins.Slot] {
				return fmt.Errorf("program: instr %q needs %d elements, slot %d holds %d",
					ins.Name, ins.DataLen(), ins.Slot, p.SlotCap[ins.Slot])
			}
		}
	}
	if p.Instrs[p.Output].Slot != NoSlot || p.Instrs[p.Output].Donor >= 0 {
		return fmt.Errorf("program: output instr %q is not a fresh allocation", p.Instrs[p.Output].Name)
	}

	// Parallel-safety of slot reuse: collect each slot's tenancies (an
	// out-of-place slotted value plus its donation chain) and require
	// every toucher of an earlier tenancy to be a strict ancestor of a
	// later tenancy's allocating instruction.
	anc := p.ancestry()
	donees := make([][]int, n)
	for j := range p.Instrs {
		if ins := &p.Instrs[j]; ins.Donor >= 0 {
			donees[ins.Args[ins.Donor]] = append(donees[ins.Args[ins.Donor]], j)
		}
	}
	touchers := func(alloc int) []int {
		var ts []int
		stack := []int{alloc}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ts = append(ts, v)
			ts = append(ts, p.Instrs[v].Succs...)
			stack = append(stack, donees[v]...)
		}
		return ts
	}
	bySlot := make(map[int][]int)
	for j := range p.Instrs {
		if ins := &p.Instrs[j]; ins.Slot >= 0 && ins.Donor < 0 {
			bySlot[ins.Slot] = append(bySlot[ins.Slot], j)
		}
	}
	for slot, tenants := range bySlot {
		sort.Ints(tenants)
		for i := 0; i < len(tenants); i++ {
			ts := touchers(tenants[i])
			for k := i + 1; k < len(tenants); k++ {
				for _, t := range ts {
					if !anc.has(tenants[k], t) {
						return fmt.Errorf(
							"program: slot %d reused by %q while %q may still touch it concurrently",
							slot, p.Instrs[tenants[k]].Name, p.Instrs[t].Name)
					}
				}
			}
		}
	}
	return nil
}
