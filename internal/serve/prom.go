package serve

// Prometheus text exposition (version 0.0.4), hand-rolled over the
// stdlib: the serving metrics this package already aggregates, rendered
// in the format every Prometheus-compatible scraper speaks. No client
// library — the format is lines of `name{labels} value`, and writing it
// directly keeps the dependency footprint at zero while making the
// exposition an honest projection of Metrics.Snapshot/BucketStats
// rather than a second bookkeeping system that could drift.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"pbqpdnn/internal/obs"
)

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promWriter accumulates exposition lines, emitting each metric's
// HELP/TYPE header once.
type promWriter struct {
	b      strings.Builder
	headed map[string]bool
}

func newPromWriter() *promWriter {
	return &promWriter{headed: make(map[string]bool)}
}

func (p *promWriter) head(name, typ, help string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line. Labels are key-value pairs, already in
// the desired order; values are escaped here.
func (p *promWriter) sample(name string, labels [][2]string, value float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, `%s="%s"`, kv[0], promEscape(kv[1]))
		}
		p.b.WriteByte('}')
	}
	fmt.Fprintf(&p.b, " %g\n", value)
}

// writeProm renders the full exposition for every hosted model.
func writeProm(p *promWriter, reg *Registry) {
	for _, name := range reg.Names() {
		m, _ := reg.Get(name)
		s := m.Metrics.Snapshot()
		model := [][2]string{{"model", name}}

		p.head("dnn_uptime_seconds", "gauge", "Seconds since the model's metrics began accumulating.")
		p.sample("dnn_uptime_seconds", model, s.UptimeSec)

		p.head("dnn_requests_total", "counter", "Requests by admission/completion result.")
		for _, rc := range [...]struct {
			result string
			n      int64
		}{
			{"accepted", s.Accepted},
			{"rejected", s.Rejected},
			{"expired", s.Expired},
			{"served", s.Served},
			{"failed", s.Failed},
		} {
			p.sample("dnn_requests_total", [][2]string{{"model", name}, {"result", rc.result}}, float64(rc.n))
		}

		p.head("dnn_queue_depth", "gauge", "Requests currently waiting in the admission queue.")
		p.sample("dnn_queue_depth", model, float64(s.QueueDepth))

		p.head("dnn_batches_total", "counter", "Engine minibatch dispatches.")
		p.sample("dnn_batches_total", model, float64(s.Batches))

		p.head("dnn_batch_size_total", "counter", "Dispatches by minibatch size.")
		for size, n := range s.BatchHist {
			if size == 0 || n == 0 {
				continue
			}
			p.sample("dnn_batch_size_total",
				[][2]string{{"model", name}, {"size", fmt.Sprint(size)}}, float64(n))
		}

		p.head("dnn_engine_ns_per_image", "gauge",
			"Mean engine wall time per image by batch bucket; falling values as batch grows are amortization working.")
		for _, b := range m.BucketStats() {
			if b.ObservedNsPerImage == 0 {
				continue
			}
			p.sample("dnn_engine_ns_per_image",
				[][2]string{{"model", name}, {"batch", fmt.Sprint(b.Batch)}}, b.ObservedNsPerImage)
		}

		writePromPhases(p, name, m.Metrics)
		writePromLayers(p, name, m.LayerTables())
	}
}

// writePromPhases renders the request-lifecycle histograms. Prometheus
// histogram buckets are *cumulative* ≤ le and the series must end with
// le="+Inf" equal to _count; the internal histogram stores per-bucket
// counts in nanoseconds, so convert both here.
func writePromPhases(p *promWriter, model string, met *Metrics) {
	p.head("dnn_request_phase_seconds", "histogram",
		"Request lifecycle phase durations: queue_wait, batch_assembly, engine, respond.")
	bounds := obs.HistogramBounds()
	phases := met.PhaseSnapshots()
	names := make([]string, 0, len(phases))
	for ph := range phases {
		names = append(names, ph)
	}
	sort.Strings(names)
	for _, ph := range names {
		hs := phases[ph]
		cum := int64(0)
		for i, c := range hs.Counts {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = fmt.Sprintf("%g", bounds[i].Seconds())
			}
			p.sample("dnn_request_phase_seconds_bucket",
				[][2]string{{"model", model}, {"phase", ph}, {"le", le}}, float64(cum))
		}
		p.sample("dnn_request_phase_seconds_sum",
			[][2]string{{"model", model}, {"phase", ph}}, float64(hs.SumNS)/1e9)
		p.sample("dnn_request_phase_seconds_count",
			[][2]string{{"model", model}, {"phase", ph}}, float64(hs.Count))
	}
}

// writePromLayers renders the per-instruction execution profile as
// counters: accumulated observed nanoseconds and sample counts per
// (model, batch bucket, instruction). Zero-sample rows are skipped —
// with sparse sampling most scrape intervals add no samples, and the
// series would otherwise balloon before the first sampled chunk.
func writePromLayers(p *promWriter, model string, tables []*obs.LayerTable) {
	if len(tables) == 0 {
		return
	}
	p.head("dnn_layer_observed_ns_total", "counter",
		"Accumulated observed execution nanoseconds per instruction (sampled chunks only).")
	p.head("dnn_layer_samples_total", "counter",
		"Sampled executions per instruction.")
	for _, t := range tables {
		batch := fmt.Sprint(t.Batch)
		for _, row := range t.Rows {
			if row.Samples == 0 {
				continue
			}
			labels := [][2]string{
				{"model", model}, {"batch", batch},
				{"layer", row.Layer}, {"op", row.Op},
			}
			p.sample("dnn_layer_observed_ns_total", labels, float64(row.ObservedNS))
			p.sample("dnn_layer_samples_total", labels, float64(row.Samples))
		}
	}
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func handleMetrics(reg *Registry, w http.ResponseWriter, _ *http.Request) {
	p := newPromWriter()
	writeProm(p, reg)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}

// handleLayers serves GET /layers: the per-layer predicted-vs-observed
// profile tables, one per (model, batch bucket), as JSON. Empty map
// when profiling is disabled.
func handleLayers(reg *Registry, w http.ResponseWriter, _ *http.Request) {
	out := map[string][]*obs.LayerTable{}
	for _, name := range reg.Names() {
		m, _ := reg.Get(name)
		if ts := m.LayerTables(); len(ts) > 0 {
			out[name] = ts
		}
	}
	writeJSON(w, http.StatusOK, out)
}
