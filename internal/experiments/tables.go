package experiments

import (
	"fmt"
	"strings"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// TableRow is one row of Table 2 or Table 3: absolute single-inference
// times in model ms for the four headline strategies.
type TableRow struct {
	Network  string
	Threaded string // "S" or "M"
	Sum2D    float64
	LocalOpt float64
	PBQP     float64
	Caffe    float64
}

// absoluteTimes computes the SUM2D / L.OPT / PBQP / CAFFE columns for
// one network and thread count.
func absoluteTimes(netName string, m cost.Machine, threads int) (TableRow, error) {
	prof := cost.NewModel(m)
	opts := selector.Options{Prof: prof, Threads: threads}
	row := TableRow{Network: netName, Threaded: "S"}
	if threads > 1 {
		row.Threaded = "M"
	}
	g, err := models.Build(netName)
	if err != nil {
		return row, err
	}
	base, err := selector.Baseline(g, opts)
	if err != nil {
		return row, err
	}
	lopt, err := selector.LocalOptimal(g, tensor.CHW, opts)
	if err != nil {
		return row, err
	}
	pb, err := selector.Select(g, opts)
	if err != nil {
		return row, err
	}
	cf, err := selector.CaffeProxy(g, opts)
	if err != nil {
		return row, err
	}
	row.Sum2D = base.TotalCost() * 1e3
	row.LocalOpt = lopt.TotalCost() * 1e3
	row.PBQP = pb.TotalCost() * 1e3
	row.Caffe = cf.TotalCost() * 1e3
	return row, nil
}

// tableNets are the networks that run on both platforms (§5.5).
var tableNets = []string{"alexnet", "googlenet"}

// Table2 regenerates the Intel absolute-time table.
func Table2() ([]TableRow, error) { return table(cost.IntelHaswell) }

// Table3 regenerates the ARM absolute-time table.
func Table3() ([]TableRow, error) { return table(cost.CortexA57) }

func table(m cost.Machine) ([]TableRow, error) {
	var rows []TableRow
	for _, threads := range []int{1, 4} {
		for _, n := range tableNets {
			r, err := absoluteTimes(n, m, threads)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// FormatTable renders rows in the paper's Table 2/3 shape.
func FormatTable(title string, rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s\n", "Network", "SUM2D", "L.OPT", "PBQP", "CAFFE")
	for _, r := range rows {
		fmt.Fprintf(&b, "(%s) %-12s %10.2f %10.2f %10.2f %10.2f\n",
			r.Threaded, r.Network, r.Sum2D, r.LocalOpt, r.PBQP, r.Caffe)
	}
	return b.String()
}

// Table1Row is one family row of the qualitative traits table.
type Table1Row struct {
	Family  string
	Time    string // -, +, ++
	Memory  string
	Strided string
	BadCase string
}

// table1Probes is a probe grid spanning the regimes Table 1 talks
// about: small/large images, few/many channels, small/large kernels.
var table1Probes = []conv.Scenario{
	{C: 64, H: 56, W: 56, Stride: 1, K: 3, M: 64, Pad: 1},
	{C: 128, H: 28, W: 28, Stride: 1, K: 3, M: 128, Pad: 1},
	{C: 32, H: 112, W: 112, Stride: 1, K: 3, M: 32, Pad: 1},
	{C: 48, H: 28, W: 28, Stride: 1, K: 5, M: 64, Pad: 2},
	{C: 96, H: 14, W: 14, Stride: 1, K: 5, M: 96, Pad: 2},
}

// Table1 derives the paper's qualitative strengths/weaknesses table
// from the cost model itself: mean relative speed over the probe grid
// maps to the time column, workspace to the memory column, and the
// stride capability is read off the primitive metadata.
func Table1(m cost.Machine) []Table1Row {
	prof := cost.NewModel(m)
	lib := conv.Library()
	type agg struct {
		rel    float64
		n      int
		wsMax  int64
		stride bool
	}
	fams := map[conv.Family]*agg{}
	for _, f := range conv.Families() {
		fams[f] = &agg{}
		for _, p := range conv.ByFamily(lib, f) {
			if p.Strided {
				fams[f].stride = true
			}
		}
	}
	for _, s := range table1Probes {
		best := map[conv.Family]float64{}
		var globalBest float64
		for _, p := range lib {
			if !p.Supports(s) {
				continue
			}
			c := prof.Primitive(p, s, 1)
			if b, ok := best[p.Family]; !ok || c < b {
				best[p.Family] = c
			}
			if globalBest == 0 || c < globalBest {
				globalBest = c
			}
			if ws := p.Workspace(s); ws > fams[p.Family].wsMax {
				fams[p.Family].wsMax = ws
			}
		}
		for f, c := range best {
			fams[f].rel += c / globalBest
			fams[f].n++
		}
	}
	grade := func(rel float64) string {
		switch {
		case rel < 1.3:
			return "++"
		case rel < 2.5:
			return "+"
		default:
			return "-"
		}
	}
	memGrade := func(ws int64) string {
		switch {
		case ws == 0:
			return "++"
		case ws < 4<<20:
			return "+"
		default:
			return "-"
		}
	}
	badCases := map[conv.Family]string{
		conv.FamilySum2D:    "Everything",
		conv.FamilyDirect:   "Non-strided",
		conv.FamilyIm2:      "Large image",
		conv.FamilyKn2:      "Few channels",
		conv.FamilyWinograd: "Unpredictable",
		conv.FamilyFFT:      "Small kernel",
	}
	var rows []Table1Row
	for _, f := range conv.Families() {
		if f == conv.FamilySum2D {
			continue
		}
		a := fams[f]
		st := "--"
		if a.stride {
			st = "++"
		}
		rows = append(rows, Table1Row{
			Family:  f.String(),
			Time:    grade(a.rel / float64(a.n)),
			Memory:  memGrade(a.wsMax),
			Strided: st,
			BadCase: badCases[f],
		})
	}
	return rows
}

// FormatTable1 renders the derived traits table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("== Table 1: algorithm strengths and weaknesses (derived) ==\n")
	fmt.Fprintf(&b, "%-10s %-6s %-8s %-8s %s\n", "Algorithm", "Time", "Memory", "Strided", "Bad cases")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %-8s %-8s %s\n", r.Family, r.Time, r.Memory, r.Strided, r.BadCase)
	}
	return b.String()
}
