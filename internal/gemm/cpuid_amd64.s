//go:build amd64 && !purego

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
//
// Reads XCR0 (extended control register 0). Callers must have checked
// CPUID.1:ECX.OSXSAVE first or XGETBV faults.
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
