// Package lintme is the analyzers' fixture: every construct below is a
// deliberate violation — or a deliberate non-violation — that the lint
// tests assert on. It lives under testdata so the real tree's ./...
// sweep never matches it.
package lintme

import (
	"fmt"
	"sync/atomic"
)

// hotAlloc violates hotpathalloc three ways: make, a composite
// literal, and boxing ints into Sprintf's ...any.
//
//dnn:hotpath
func hotAlloc(n int) []float32 {
	buf := make([]float32, n)
	pair := [2]int{n, n}
	_ = fmt.Sprintf("n=%d", pair[0])
	return buf
}

// hotDefer violates hotpathalloc with defer (and its closure literal)
// and a map iteration.
//
//dnn:hotpath
func hotDefer(m map[string]int) int {
	defer func() {}()
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// hotAllowed allocates, but the finding is suppressed on its line.
//
//dnn:hotpath
func hotAllowed(n int) []float32 {
	return make([]float32, n) //dnn:allow preallocation, measured harmless
}

// hotClean is the negative control: slice views, a range loop, and a
// panic whose argument concatenation must not be flagged.
//
//dnn:hotpath
func hotClean(dst, src []float32) {
	if len(dst) < len(src) {
		panic("lintme: short dst " + "for copy")
	}
	d := dst[:len(src)]
	for i, v := range src {
		d[i] = v
	}
}

var leaked []float32

type sink struct {
	buf []float32
	ch  chan []float32
}

// BadInto violates kernelalias four ways: field store, package-variable
// store, channel send, and returning a taint-propagated local.
func BadInto(dst []float32, s *sink) []float32 {
	s.buf = dst[1:]
	leaked = dst
	s.ch <- dst[:1]
	d := dst[:2]
	return d
}

// GoodInto is the negative control: it writes through its parameters
// and passes a derived view to a callee, both allowed.
func GoodInto(dst, src []float32) {
	copy(dst, src)
	clearAll(dst[:len(dst)/2])
}

func clearAll(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

type counters struct {
	hits  int64
	total int64
	deps  []int32
}

func (c *counters) bump() { atomic.AddInt64(&c.hits, 1) }

func (c *counters) bumpDep(i int) { atomic.AddInt32(&c.deps[i], 1) }

// read violates atomicfield: c.hits is atomically written in bump but
// read plainly here. c.total (never atomic) and c.deps (element-wise
// atomics only) are fine.
func (c *counters) read() int64 {
	return c.hits + c.total + int64(len(c.deps))
}
