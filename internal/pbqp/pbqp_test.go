package pbqp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// bruteForce enumerates every assignment — the test oracle.
func bruteForce(g *Graph) ([]int, float64) {
	n := g.NumNodes()
	sel := make([]int, n)
	best := make([]int, n)
	bestCost := math.Inf(1)
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			if c := g.Evaluate(sel); c < bestCost {
				bestCost = c
				copy(best, sel)
			}
			return
		}
		for i := 0; i < len(g.costs[u]); i++ {
			sel[u] = i
			rec(u + 1)
		}
	}
	rec(0)
	return best, bestCost
}

func matrixFrom(rows, cols int, vals ...float64) *Matrix {
	m := NewMatrix(rows, cols)
	copy(m.V, vals)
	return m
}

// paperFigure2 builds the worked example of the paper's Figure 2: a
// three-node chain with node costs (8,6,10), (17,19,14), (20,17,22) and
// the two 3×3 edge matrices shown in Figure 2b.
func paperFigure2() *Graph {
	g := NewGraph()
	c1 := g.AddNode([]float64{8, 6, 10})
	c2 := g.AddNode([]float64{17, 19, 14})
	c3 := g.AddNode([]float64{20, 17, 22})
	g.AddEdge(c1, c2, matrixFrom(3, 3,
		0, 2, 4,
		4, 0, 5,
		2, 1, 0))
	g.AddEdge(c2, c3, matrixFrom(3, 3,
		0, 3, 5,
		6, 0, 5,
		1, 5, 0))
	return g
}

// TestPaperFigure2NodeOnly reproduces Figure 2a: without edge costs the
// optimum picks each node's cheapest primitive — B, C, B with total 37.
func TestPaperFigure2NodeOnly(t *testing.T) {
	g := NewGraph()
	g.AddNode([]float64{8, 6, 10})
	g.AddNode([]float64{17, 19, 14})
	g.AddNode([]float64{20, 17, 22})
	sol := g.Solve(Heuristic)
	if !sol.Optimal {
		t.Error("edgeless instance must be solved optimally")
	}
	if sol.Cost != 37 {
		t.Errorf("cost = %v, want 37", sol.Cost)
	}
	want := []int{1, 2, 1} // B, C, B
	for i, w := range want {
		if sol.Selection[i] != w {
			t.Errorf("node %d selection = %d, want %d", i, sol.Selection[i], w)
		}
	}
}

// TestPaperFigure2WithEdges solves the full Figure 2b instance. With
// edge costs the node-only optimum (B,C,B = 37+edges) is no longer
// optimal — exactly the paper's point. We assert the solver matches
// exhaustive search. (The figure annotates its drawing with total 45;
// enumerating the printed tables gives an optimum of 42 — see
// EXPERIMENTS.md — so we pin against enumeration, not the annotation.)
func TestPaperFigure2WithEdges(t *testing.T) {
	g := paperFigure2()
	wantSel, wantCost := bruteForce(g)
	for _, mode := range []Mode{Heuristic, Exact} {
		sol := g.Solve(mode)
		if sol.Cost != wantCost {
			t.Errorf("mode %d: cost %v, want %v (brute force)", mode, sol.Cost, wantCost)
		}
		if g.Evaluate(sol.Selection) != sol.Cost {
			t.Errorf("mode %d: reported cost inconsistent with selection", mode)
		}
		if !sol.Optimal {
			t.Errorf("mode %d: chain instance should be provably optimal", mode)
		}
	}
	// The node-only optimum (B,C,B) must cost strictly more here.
	if c := g.Evaluate([]int{1, 2, 1}); c <= wantCost {
		t.Errorf("node-only selection costs %v, expected worse than %v", c, wantCost)
	}
	_ = wantSel
}

func TestEmptyGraph(t *testing.T) {
	sol := NewGraph().Solve(Heuristic)
	if sol.Cost != 0 || !sol.Optimal || len(sol.Selection) != 0 {
		t.Errorf("empty graph: %+v", sol)
	}
}

func TestSingleNode(t *testing.T) {
	g := NewGraph()
	g.AddNode([]float64{5, 3, 9})
	sol := g.Solve(Heuristic)
	if sol.Cost != 3 || sol.Selection[0] != 1 || !sol.Optimal {
		t.Errorf("single node: %+v", sol)
	}
}

func TestParallelEdgesMerge(t *testing.T) {
	g := NewGraph()
	u := g.AddNode([]float64{0, 0})
	v := g.AddNode([]float64{0, 0})
	g.AddEdge(u, v, matrixFrom(2, 2, 1, 2, 3, 4))
	g.AddEdge(u, v, matrixFrom(2, 2, 10, 20, 30, 40))
	if c := g.Evaluate([]int{1, 0}); c != 33 {
		t.Errorf("merged edge cost = %v, want 33", c)
	}
	// Reversed orientation accumulates transposed.
	g2 := NewGraph()
	a := g2.AddNode([]float64{0, 0})
	b := g2.AddNode([]float64{0, 0})
	g2.AddEdge(a, b, matrixFrom(2, 2, 1, 2, 3, 4))
	g2.AddEdge(b, a, matrixFrom(2, 2, 0, 100, 0, 0))
	// The (b,a)-oriented matrix charges 100 when b=0 and a=1.
	if c := g2.Evaluate([]int{1, 0}); c != 3+100 {
		t.Errorf("cost = %v, want 103", c)
	}
	if c := g2.Evaluate([]int{0, 1}); c != 2+0 {
		t.Errorf("cost = %v, want 2", c)
	}
}

func TestInfForbidsAssignments(t *testing.T) {
	g := NewGraph()
	u := g.AddNode([]float64{1, 100})
	v := g.AddNode([]float64{1, 100})
	m := NewMatrix(2, 2)
	m.Set(0, 0, Inf) // cheap-cheap is forbidden
	g.AddEdge(u, v, m)
	sol := g.Solve(Heuristic)
	if math.IsInf(sol.Cost, 1) {
		t.Fatal("solver chose a forbidden pair")
	}
	if sol.Cost != 101 {
		t.Errorf("cost = %v, want 101", sol.Cost)
	}
}

// TestDiamondDAG exercises RII on the shape that DNN concat/split
// structures produce: a 4-cycle (after chain collapsing) like an
// inception module.
func TestDiamondDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		g := NewGraph()
		n := make([]int, 4)
		for i := range n {
			n[i] = g.AddNode([]float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10})
		}
		edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
		for _, e := range edges {
			m := NewMatrix(3, 3)
			for i := range m.V {
				m.V[i] = rng.Float64() * 10
			}
			g.AddEdge(n[e[0]], n[e[1]], m)
		}
		_, wantCost := bruteForce(g)
		solH := g.Solve(Heuristic)
		solE := g.Solve(Exact)
		if math.Abs(solE.Cost-wantCost) > 1e-9 {
			t.Fatalf("trial %d: exact cost %v, want %v", trial, solE.Cost, wantCost)
		}
		// A 4-cycle is fully RII-reducible, so even the heuristic is
		// provably optimal here.
		if !solH.Optimal || math.Abs(solH.Cost-wantCost) > 1e-9 {
			t.Fatalf("trial %d: heuristic %v (optimal=%v), want %v", trial, solH.Cost, solH.Optimal, wantCost)
		}
	}
}

// TestRandomGraphsExactMatchesBruteForce: property test over random
// dense-ish graphs including negative costs.
func TestRandomGraphsExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 2 + rng.Intn(5)
		g := NewGraph()
		doms := make([]int, nNodes)
		for i := range doms {
			doms[i] = 1 + rng.Intn(3)
			costs := make([]float64, doms[i])
			for j := range costs {
				costs[j] = rng.Float64()*20 - 5
			}
			g.AddNode(costs)
		}
		for u := 0; u < nNodes; u++ {
			for v := u + 1; v < nNodes; v++ {
				if rng.Float64() < 0.5 {
					m := NewMatrix(doms[u], doms[v])
					for i := range m.V {
						m.V[i] = rng.Float64()*20 - 5
					}
					g.AddEdge(u, v, m)
				}
			}
		}
		_, wantCost := bruteForce(g)
		sol := g.Solve(Exact)
		return math.Abs(sol.Cost-wantCost) < 1e-9 &&
			math.Abs(g.Evaluate(sol.Selection)-wantCost) < 1e-9 && sol.Optimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestHeuristicNeverBeatenByExactAndClose: the RN heuristic yields a
// valid (if possibly suboptimal) solution whose cost is ≥ optimal.
func TestHeuristicSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 3 + rng.Intn(4)
		g := NewGraph()
		for i := 0; i < nNodes; i++ {
			g.AddNode([]float64{rng.Float64() * 10, rng.Float64() * 10})
		}
		for u := 0; u < nNodes; u++ {
			for v := u + 1; v < nNodes; v++ {
				m := NewMatrix(2, 2)
				for i := range m.V {
					m.V[i] = rng.Float64() * 10
				}
				g.AddEdge(u, v, m)
			}
		}
		_, wantCost := bruteForce(g)
		sol := g.Solve(Heuristic)
		return sol.Cost >= wantCost-1e-9 && math.Abs(g.Evaluate(sol.Selection)-sol.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLongChainReducesOptimally mimics a VGG-style linear network: long
// chains must be solved exactly by RI reductions alone and quickly.
func TestLongChainReducesOptimally(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := NewGraph()
	const n = 60
	prev := -1
	for i := 0; i < n; i++ {
		costs := make([]float64, 8)
		for j := range costs {
			costs[j] = rng.Float64() * 100
		}
		u := g.AddNode(costs)
		if prev >= 0 {
			m := NewMatrix(8, 8)
			for j := range m.V {
				m.V[j] = rng.Float64() * 50
			}
			g.AddEdge(prev, u, m)
		}
		prev = u
	}
	sol := g.Solve(Heuristic)
	if !sol.Optimal {
		t.Error("chain must be solved without RN")
	}
	if sol.Reductions["RN"] != 0 || sol.Reductions["RI"] == 0 {
		t.Errorf("unexpected reduction profile: %v", sol.Reductions)
	}
	exact := g.Solve(Exact)
	if math.Abs(sol.Cost-exact.Cost) > 1e-9 {
		t.Errorf("chain heuristic %v != exact %v", sol.Cost, exact.Cost)
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	u := g.AddNode([]float64{1})
	v := g.AddNode([]float64{1, 2})
	for _, f := range []func(){
		func() { g.AddNode(nil) },
		func() { g.AddEdge(u, u, NewMatrix(1, 1)) },
		func() { g.AddEdge(u, 5, NewMatrix(1, 1)) },
		func() { g.AddEdge(u, v, NewMatrix(2, 2)) },
		func() { NewMatrix(0, 1) },
		func() { g.Evaluate([]int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := matrixFrom(2, 3, 1, 2, 3, 4, 5, 6)
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %d×%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Error("transpose values wrong")
	}
}

func BenchmarkSolveChain100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGraph()
	prev := -1
	for i := 0; i < 100; i++ {
		costs := make([]float64, 16)
		for j := range costs {
			costs[j] = rng.Float64()
		}
		u := g.AddNode(costs)
		if prev >= 0 {
			m := NewMatrix(16, 16)
			for j := range m.V {
				m.V[j] = rng.Float64()
			}
			g.AddEdge(prev, u, m)
		}
		prev = u
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Solve(Heuristic)
	}
}

func TestDOTExport(t *testing.T) {
	g := paperFigure2()
	dot := g.DOT("fig2", []string{"conv1", "conv2", "conv3"})
	for _, want := range []string{"graph \"fig2\"", "conv1", "n0 -- n1", "3×3"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Long vectors are elided.
	g2 := NewGraph()
	g2.AddNode(make([]float64, 20))
	if dot2 := g2.DOT("big", nil); !strings.Contains(dot2, "…(20)") {
		t.Error("long cost vectors should be elided")
	}
}
