package exec

import (
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/verify"
)

// init arms the compiler's DebugVerify hook for the whole exec test
// suite: every program NewEngine/NewEngineBatch compiles here — every
// model, batch size and strategy the engine tests exercise — is
// re-checked by the independent translation validator before a single
// kernel is bound.
func init() {
	program.DebugVerify = verify.Program
}
