package cost

import (
	"time"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/tensor"
)

// Measure is the wall-clock profiler: it executes the real Go
// implementation of each primitive on random tensors of the layer's
// shape and takes the best of Reps runs — the literal analogue of the
// paper's layerwise profiling step, which exploits the observation that
// DNN layer runtime depends on input dimensions, not values (§2.2).
// Batched costs come from wall-clocking the real batched entry points
// (conv.RunBatchInto on an N-image tensor.Batch), so the serialized
// table prices exactly what the compiled batched engine executes.
type Measure struct {
	// Reps is the number of timed repetitions (best-of). Values < 1
	// mean 1.
	Reps int
	// Threads caps the goroutine count handed to primitives. It is the
	// default thread budget when a call site passes threads < 1, and an
	// upper bound otherwise; zero means no cap (call sites decide).
	Threads int
}

// NewMeasure returns a measurement profiler taking best-of-reps timings.
func NewMeasure(reps int) *Measure { return &Measure{Reps: reps} }

func (me *Measure) reps() int {
	if me.Reps < 1 {
		return 1
	}
	return me.Reps
}

// threadBudget resolves a call site's thread argument against the
// profiler's Threads cap: threads < 1 defaults to the cap (or 1 when
// none is set), and explicit requests are clamped to it.
func (me *Measure) threadBudget(threads int) int {
	if threads < 1 {
		if me.Threads > 0 {
			return me.Threads
		}
		return 1
	}
	if me.Threads > 0 && threads > me.Threads {
		return me.Threads
	}
	return threads
}

// bestOf times fn reps times and returns the minimum in seconds.
func (me *Measure) bestOf(fn func()) float64 {
	best := 0.0
	for r := 0; r < me.reps(); r++ {
		start := time.Now()
		fn()
		el := time.Since(start).Seconds()
		if r == 0 || el < best {
			best = el
		}
	}
	return best
}

// measureKernel fabricates the weight tensor for a scenario.
func measureKernel(s conv.Scenario) *conv.Kernel {
	k := conv.NewKernel(s.M, s.C, s.K)
	if s.Sparsity > 0 {
		k.FillSparse(2, s.Sparsity)
	} else {
		k.FillRandom(2)
	}
	return k
}

// Primitive times a real execution of p on scenario s.
func (me *Measure) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	threads = me.threadBudget(threads)
	in := tensor.New(p.In, s.C, s.H, s.W)
	in.FillRandom(1)
	k := measureKernel(s)
	return me.bestOf(func() { p.Run(in, k, s, threads) })
}

// PrimitiveBatch implements BatchProfiler by wall-clocking the real
// batched entry point: one conv.RunBatchInto call over an n-image
// batch slab, writing into a pre-allocated destination batch — the
// exact call the compiled batched engine issues per conv instruction.
// Primitives without a batched implementation go through RunBatchInto's
// per-image fallback, so their measured cost honestly reflects the
// executor's fallback path too.
func (me *Measure) PrimitiveBatch(p *conv.Primitive, s conv.Scenario, threads, n int) float64 {
	if n <= 1 {
		return me.Primitive(p, s, threads)
	}
	// Scenarios carrying the legacy Batch parameter are priced linearly
	// (see Model.PrimitiveBatch): the batched slabs here are sized by
	// the n argument alone, so honoring both would double-count.
	if s.Batch > 1 {
		return float64(n) * me.Primitive(p, s, threads)
	}
	threads = me.threadBudget(threads)
	in := tensor.NewBatch(p.In, n, s.C, s.H, s.W)
	for i := 0; i < n; i++ {
		in.Image(i).FillRandom(int64(i + 1))
	}
	k := measureKernel(s)
	dst := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
	return me.bestOf(func() { conv.RunBatchInto(p, dst, in, k, s, threads) })
}

// Transform times a real layout transform on a c×h×w tensor.
func (me *Measure) Transform(tr tensor.Transform, c, h, w int) float64 {
	src := tensor.New(tr.From, c, h, w)
	src.FillRandom(3)
	return me.bestOf(func() { tr.Run(src) })
}

// TransformBatch implements BatchProfiler by timing the conversion of
// an n-image batch the way the engine executes it: one per-image
// ConvertInto per slab, striding over the batch, with no intermediate
// allocations.
func (me *Measure) TransformBatch(tr tensor.Transform, c, h, w, n int) float64 {
	if n <= 1 {
		return me.Transform(tr, c, h, w)
	}
	src := tensor.NewBatch(tr.From, n, c, h, w)
	for i := 0; i < n; i++ {
		src.Image(i).FillRandom(int64(i + 3))
	}
	dst := tensor.NewBatch(tr.To, n, c, h, w)
	return me.bestOf(func() {
		for i := 0; i < n; i++ {
			tensor.ConvertInto(dst.Image(i), src.Image(i))
		}
	})
}
