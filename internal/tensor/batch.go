package tensor

import "fmt"

// Batch is an N-image minibatch of logical C×H×W volumes sharing one
// physical layout and one contiguous backing slab: image i occupies
// Data[i*Stride : (i+1)*Stride], where Stride is the per-image element
// count DataLen(Layout, C, H, W). Because every layout in the library
// stores one image contiguously, stacking images back to back makes the
// batch dimension a pure outer stride — batched kernels walk the whole
// slab in one pass (relu, copy, add), stride image by image (layout
// conversions, pooling), or treat the slab as one tall matrix (the im2
// family's batched GEMM, where an HWC batch IS the 1×1 patch matrix).
type Batch struct {
	N       int
	C, H, W int
	Layout  Layout
	// Stride is the per-image element count; Data holds N*Stride
	// elements.
	Stride int
	Data   []float32
}

// BatchDataLen returns the number of float32 elements required to store
// an n-image batch of c×h×w volumes in layout l.
func BatchDataLen(l Layout, n, c, h, w int) int {
	return n * DataLen(l, c, h, w)
}

// NewBatch allocates a zero-filled n-image batch.
func NewBatch(l Layout, n, c, h, w int) *Batch {
	if n <= 0 {
		panic(fmt.Sprintf("tensor: invalid batch size %d", n))
	}
	if c <= 0 || h <= 0 || w <= 0 || !l.Valid() {
		panic(fmt.Sprintf("tensor: invalid batch %d×%d×%d×%d %s", n, c, h, w, l))
	}
	stride := DataLen(l, c, h, w)
	return &Batch{N: n, C: c, H: h, W: w, Layout: l, Stride: stride,
		Data: make([]float32, n*stride)}
}

// NewBatchWith wraps an existing buffer as an n-image batch without
// allocating. The buffer must hold exactly BatchDataLen elements;
// callers recycling buffers for blocked layouts are responsible for
// zeroing the padding lanes first (as with NewWith).
func NewBatchWith(l Layout, n, c, h, w int, data []float32) *Batch {
	if n <= 0 {
		panic(fmt.Sprintf("tensor: invalid batch size %d", n))
	}
	stride := DataLen(l, c, h, w)
	if want := n * stride; len(data) != want {
		panic(fmt.Sprintf("tensor: batch buffer has %d elements, want %d for %d×%d×%d×%d %s",
			len(data), want, n, c, h, w, l))
	}
	if c <= 0 || h <= 0 || w <= 0 || !l.Valid() {
		panic(fmt.Sprintf("tensor: invalid batch %d×%d×%d×%d %s", n, c, h, w, l))
	}
	return &Batch{N: n, C: c, H: h, W: w, Layout: l, Stride: stride, Data: data}
}

// Image returns a tensor view over image i's slab. The view shares
// storage with the batch: writes through it are writes into the batch.
func (b *Batch) Image(i int) *Tensor {
	return &Tensor{C: b.C, H: b.H, W: b.W, Layout: b.Layout,
		Data: b.Data[i*b.Stride : (i+1)*b.Stride : (i+1)*b.Stride]}
}

// Slab returns image i's raw backing slice.
func (b *Batch) Slab(i int) []float32 {
	return b.Data[i*b.Stride : (i+1)*b.Stride : (i+1)*b.Stride]
}

// Bytes returns the payload size of the whole batch in bytes.
func (b *Batch) Bytes() int64 { return int64(len(b.Data)) * 4 }

// String summarizes the batch shape and layout.
func (b *Batch) String() string {
	return fmt.Sprintf("Batch(%d×%d×%d×%d %s)", b.N, b.C, b.H, b.W, b.Layout)
}

// Batch-wide layout conversion lives in internal/program
// (ConvertBatchInto), alongside the other batched kernels, so there is
// exactly one implementation to keep in sync with the per-image
// ConvertInto fast paths.
