// Custom-primitive example: the paper's §8 extensibility claims in
// action. We register a user-supplied convolution routine — a
// pointwise (1×1) specialist from a hypothetical second library that
// only speaks the WHC layout — alongside the built-in library, and let
// the optimizer decide per layer whether crossing into the "foreign"
// library (paying the layout-conversion toll on the way in and out) is
// worth it. This is the cross-library ensemble of §8: it works because
// at least one DT-graph path connects the libraries' layouts.
//
//	go run ./examples/custom-primitive
package main

import (
	"fmt"
	"log"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// pointwiseWHC is the foreign library's 1×1 convolution: a single GEMM
// over WHC-layout activations.
func pointwiseWHC(in *tensor.Tensor, k *conv.Kernel, s conv.Scenario, threads int) *tensor.Tensor {
	out := tensor.New(tensor.WHC, s.M, s.H, s.W)
	// Kernel as M×C matrix; image as C×(W·H) logical columns.
	a := make([]float32, s.M*s.C)
	for m := 0; m < s.M; m++ {
		for c := 0; c < s.C; c++ {
			a[m*s.C+c] = k.At(m, c, 0, 0)
		}
	}
	cols := s.H * s.W
	b := make([]float32, s.C*cols)
	for w := 0; w < s.W; w++ {
		for h := 0; h < s.H; h++ {
			for c := 0; c < s.C; c++ {
				b[c*cols+w*s.H+h] = in.At(c, h, w)
			}
		}
	}
	flat := make([]float32, s.M*cols)
	gemm.Parallel(threads, s.M, cols, s.C, a, b, flat)
	for m := 0; m < s.M; m++ {
		for w := 0; w < s.W; w++ {
			for h := 0; h < s.H; h++ {
				out.Set(m, h, w, flat[m*cols+w*s.H+h])
			}
		}
	}
	return out
}

// boostedProfiler wraps the machine model, pricing the foreign
// library's JIT-compiled pointwise kernel at the throughput its vendor
// advertises (substantially above our generic GEMM). Cost sources are
// pluggable — exactly how the paper attaches *measured* times to
// foreign routines it cannot model.
type boostedProfiler struct {
	inner cost.Profiler
}

func (b boostedProfiler) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	c := b.inner.Primitive(p, s, threads)
	if p.Name == "ensemble-pointwise-whc" {
		return c * 0.3
	}
	return c
}

func (b boostedProfiler) Transform(tr tensor.Transform, c, h, w int) float64 {
	return b.inner.Transform(tr, c, h, w)
}

func main() {
	log.SetFlags(0)

	custom := &conv.Primitive{
		Name:   "ensemble-pointwise-whc",
		Family: conv.FamilyIm2,
		In:     tensor.WHC,
		Out:    tensor.WHC,
		VF:     8,
		Ks:     []int{1}, // pointwise only
		Workspace: func(s conv.Scenario) int64 {
			return int64(s.C)*int64(s.H)*int64(s.W)*4 + s.OutputBytes()
		},
		Run: pointwiseWHC,
	}
	lib := append(conv.Library(), custom)

	// A 1×1-heavy bottleneck network where the specialist should win.
	b, x := dnn.NewBuilder("bottlenecks", 64, 28, 28)
	x = b.Conv(x, "squeeze1", 16, 1, 1, 0)
	x = b.Conv(x, "expand1", 64, 3, 1, 1)
	x = b.Conv(x, "squeeze2", 16, 1, 1, 0)
	x = b.Conv(x, "expand2", 64, 3, 1, 1)
	x = b.Conv(x, "proj", 32, 1, 1, 0)
	x = b.Softmax(x, "prob")
	net := b.Graph()

	for _, withCustom := range []bool{false, true} {
		opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 4}
		if withCustom {
			opts.Lib = lib
			opts.Prof = boostedProfiler{inner: opts.Prof}
		}
		plan, err := selector.Select(net, opts)
		if err != nil {
			log.Fatal(err)
		}
		tag := "built-in library only"
		if withCustom {
			tag = "with foreign pointwise primitive"
		}
		fmt.Printf("== %s: %.3f ms predicted ==\n", tag, plan.TotalCost()*1e3)
		for _, id := range net.ConvLayers() {
			p := plan.Primitives[id]
			fmt.Printf("  %-10s %-26s %s→%s\n", net.Layers[id].Name, p.Name, p.In, p.Out)
		}
		fmt.Printf("  conversions: %d\n\n", len(plan.Conversions))
		if withCustom {
			// Verify the ensemble still computes the right function.
			w := exec.NewWeights(net)
			in := tensor.New(tensor.CHW, 64, 28, 28)
			in.FillRandom(3)
			got, err := exec.Run(plan, in.Clone(), w)
			if err != nil {
				log.Fatal(err)
			}
			want, err := exec.Reference(net, in, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("ensemble output matches reference within %.2e\n",
				tensor.MaxAbsDiff(got, want))
		}
	}
}
