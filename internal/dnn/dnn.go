// Package dnn provides the network intermediate representation: a
// directed acyclic graph of layers executed in topological order (paper
// §2). Convolution layers carry the paper's {C,H,W,δ,K,M} scenario;
// every other layer kind (pooling, activation, LRN, concat, FC, …) is a
// "dummy" node for the optimizer — it accepts any layout and has zero
// selection cost (paper §5.2) — but still participates in shape
// propagation and real execution.
package dnn

import (
	"fmt"

	"pbqpdnn/internal/conv"
)

// Kind enumerates the layer operators needed by the paper's three
// network families.
type Kind uint8

const (
	// KindInput is the network entry point.
	KindInput Kind = iota
	// KindConv is a convolution layer — the only kind the optimizer
	// selects primitives for.
	KindConv
	// KindReLU is rectified-linear activation.
	KindReLU
	// KindMaxPool is max pooling.
	KindMaxPool
	// KindAvgPool is average pooling.
	KindAvgPool
	// KindLRN is local response normalization.
	KindLRN
	// KindConcat concatenates inputs along the channel dimension
	// (inception modules).
	KindConcat
	// KindFC is a fully-connected layer.
	KindFC
	// KindDropout is inference-time identity.
	KindDropout
	// KindSoftmax is the output distribution.
	KindSoftmax
	// KindAdd sums its inputs elementwise (residual shortcuts).
	KindAdd
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConv:
		return "conv"
	case KindReLU:
		return "relu"
	case KindMaxPool:
		return "maxpool"
	case KindAvgPool:
		return "avgpool"
	case KindLRN:
		return "lrn"
	case KindConcat:
		return "concat"
	case KindFC:
		return "fc"
	case KindDropout:
		return "dropout"
	case KindSoftmax:
		return "softmax"
	case KindAdd:
		return "add"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Layer is one node of the network graph.
type Layer struct {
	ID   int
	Name string
	Kind Kind

	// Conv holds the convolutional scenario when Kind == KindConv.
	Conv conv.Scenario

	// Pooling geometry when Kind is a pool.
	PoolK, PoolStride, PoolPad int

	// FCOut is the output width of a fully-connected layer.
	FCOut int

	// OutC, OutH, OutW is the propagated output shape.
	OutC, OutH, OutW int
}

// IsConv reports whether the optimizer selects a primitive for this
// layer.
func (l *Layer) IsConv() bool { return l.Kind == KindConv }

// Graph is a DAG of layers.
type Graph struct {
	Name   string
	Layers []*Layer
	succs  [][]int
	preds  [][]int
}

// NumLayers returns the node count.
func (g *Graph) NumLayers() int { return len(g.Layers) }

// Succs returns the successor layer ids of u.
func (g *Graph) Succs(u int) []int { return g.succs[u] }

// Preds returns the predecessor layer ids of u.
func (g *Graph) Preds(u int) []int { return g.preds[u] }

// Edges returns every directed edge as (from, to) pairs.
func (g *Graph) Edges() [][2]int {
	var es [][2]int
	for u := range g.succs {
		for _, v := range g.succs[u] {
			es = append(es, [2]int{u, v})
		}
	}
	return es
}

// ConvLayers returns the ids of all convolution layers in id order.
func (g *Graph) ConvLayers() []int {
	var ids []int
	for _, l := range g.Layers {
		if l.IsConv() {
			ids = append(ids, l.ID)
		}
	}
	return ids
}

// TopoOrder returns the layer ids in a topological order, or an error if
// the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.Layers))
	for u := range g.succs {
		for range g.preds[u] {
			indeg[u]++
		}
	}
	var queue, order []int
	for u, d := range indeg {
		if d == 0 {
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(g.Layers) {
		return nil, fmt.Errorf("dnn: graph %q contains a cycle", g.Name)
	}
	return order, nil
}

// Validate checks structural invariants: one input, connected shapes,
// concat arity.
func (g *Graph) Validate() error {
	if len(g.Layers) == 0 {
		return fmt.Errorf("dnn: empty graph %q", g.Name)
	}
	inputs := 0
	for _, l := range g.Layers {
		switch l.Kind {
		case KindInput:
			inputs++
			if len(g.preds[l.ID]) != 0 {
				return fmt.Errorf("dnn: input layer %q has predecessors", l.Name)
			}
		case KindConcat:
			if len(g.preds[l.ID]) < 2 {
				return fmt.Errorf("dnn: concat layer %q has %d inputs", l.Name, len(g.preds[l.ID]))
			}
		case KindAdd:
			if len(g.preds[l.ID]) < 2 {
				return fmt.Errorf("dnn: add layer %q has %d inputs", l.Name, len(g.preds[l.ID]))
			}
			for _, p := range g.preds[l.ID] {
				pl := g.Layers[p]
				if pl.OutC != l.OutC || pl.OutH != l.OutH || pl.OutW != l.OutW {
					return fmt.Errorf("dnn: add layer %q input %q shape %d×%d×%d != %d×%d×%d",
						l.Name, pl.Name, pl.OutC, pl.OutH, pl.OutW, l.OutC, l.OutH, l.OutW)
				}
			}
		default:
			if len(g.preds[l.ID]) != 1 {
				return fmt.Errorf("dnn: layer %q (%s) has %d inputs, want 1", l.Name, l.Kind, len(g.preds[l.ID]))
			}
		}
		if l.OutC < 1 || l.OutH < 1 || l.OutW < 1 {
			return fmt.Errorf("dnn: layer %q has invalid shape %d×%d×%d", l.Name, l.OutC, l.OutH, l.OutW)
		}
		if l.IsConv() {
			if err := l.Conv.Validate(); err != nil {
				return fmt.Errorf("dnn: layer %q: %w", l.Name, err)
			}
		}
	}
	if inputs != 1 {
		return fmt.Errorf("dnn: graph %q has %d input layers, want 1", g.Name, inputs)
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TotalConvFlops sums the direct-algorithm operation counts of all
// convolution layers.
func (g *Graph) TotalConvFlops() float64 {
	var total float64
	for _, id := range g.ConvLayers() {
		total += g.Layers[id].Conv.Flops()
	}
	return total
}
