package selector

import (
	"math"
	"strings"
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/pbqp"
	"pbqpdnn/internal/tensor"
)

func intelOpts(threads int) Options {
	return Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: threads}
}

func armOpts(threads int) Options {
	return Options{Prof: cost.NewModel(cost.CortexA57), Threads: threads}
}

func mustNet(t *testing.T, name string) *dnn.Graph {
	t.Helper()
	g, err := models.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkLegal asserts the plan's structural soundness: every conv layer
// has a primitive supporting its scenario, and every edge is
// layout-consistent after conversions.
func checkLegal(t *testing.T, plan *Plan) {
	t.Helper()
	net := plan.Net
	for _, id := range net.ConvLayers() {
		p := plan.Primitives[id]
		if p == nil {
			t.Fatalf("layer %q has no primitive", net.Layers[id].Name)
		}
		if !p.Supports(net.Layers[id].Conv) {
			t.Fatalf("layer %q: %s does not support %s", net.Layers[id].Name, p.Name, net.Layers[id].Conv)
		}
		if plan.Layouts[id] != p.Out {
			t.Fatalf("layer %q: plan layout %s != primitive out %s", net.Layers[id].Name, plan.Layouts[id], p.Out)
		}
	}
	for _, e := range net.Edges() {
		from := plan.Layouts[e[0]]
		var to tensor.Layout
		if p := plan.Primitives[e[1]]; p != nil {
			to = p.In
		} else {
			to = plan.Layouts[e[1]]
		}
		chain := plan.Conversions[e]
		cur := from
		for _, tr := range chain {
			if tr.From != cur {
				t.Fatalf("edge %v: broken chain at %s (have %s)", e, tr.Name, cur)
			}
			cur = tr.To
		}
		if cur != to {
			t.Fatalf("edge %v: ends at %s, consumer wants %s", e, cur, to)
		}
	}
}

func TestSelectAlexNetIsLegalAndOptimal(t *testing.T) {
	net := mustNet(t, "alexnet")
	plan, err := Select(net, intelOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, plan)
	if !plan.Optimal {
		t.Error("AlexNet chain should be solved provably optimally (paper §5.4)")
	}
	if plan.TotalCost() <= 0 {
		t.Error("plan must have positive predicted cost")
	}
}

func TestSelectGoogleNetIsLegalAndOptimal(t *testing.T) {
	net := mustNet(t, "googlenet")
	plan, err := Select(net, intelOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, plan)
	// The paper reports the solver found the optimum for every network;
	// inception DAGs reduce fully via RI/RII.
	if !plan.Optimal {
		t.Error("GoogleNet should be solved provably optimally")
	}
	if plan.SolveTime.Seconds() >= 1 {
		t.Errorf("solve took %v, paper requires < 1s (§5.4)", plan.SolveTime)
	}
}

// TestPBQPBeatsEveryBaseline is the paper's headline property: the
// global optimum is at least as good as every other strategy, on every
// platform and thread count.
func TestPBQPBeatsEveryBaseline(t *testing.T) {
	for _, netName := range []string{"alexnet", "vgg-b", "googlenet"} {
		net := mustNet(t, netName)
		for _, opts := range []Options{intelOpts(1), intelOpts(4), armOpts(1), armOpts(4)} {
			best, err := Select(net, opts)
			if err != nil {
				t.Fatal(err)
			}
			rivals := map[string]*Plan{}
			for _, fam := range conv.Families() {
				if fam == conv.FamilySum2D {
					continue
				}
				p, err := FamilyBest(net, fam, opts)
				if err != nil {
					t.Fatal(err)
				}
				rivals[fam.String()] = p
			}
			if p, err := LocalOptimal(net, tensor.CHW, opts); err == nil {
				rivals["local-opt"] = p
			} else {
				t.Fatal(err)
			}
			if p, err := NoEdgeCost(net, opts); err == nil {
				rivals["no-edge"] = p
			} else {
				t.Fatal(err)
			}
			if p, err := Baseline(net, opts); err == nil {
				rivals["sum2d"] = p
			} else {
				t.Fatal(err)
			}
			for name, r := range rivals {
				checkLegal(t, r)
				if best.TotalCost() > r.TotalCost()*(1+1e-9) {
					t.Errorf("%s/%s threads=%d: PBQP %g worse than %s %g",
						netName, opts.Prof.(*cost.Model).M.Name, opts.Threads,
						best.TotalCost(), name, r.TotalCost())
				}
			}
		}
	}
}

// TestFigure4SelectionShape reproduces the qualitative content of the
// paper's Figure 4 (multithreaded AlexNet selections): the first layer
// (K=11, strided) goes to the im2 family on both platforms; the
// remaining four layers all go to Winograd; Intel selects 2D Winograd
// variants while ARM mostly selects the low-memory 1D variants; and the
// vector factors match the platforms' SIMD widths.
func TestFigure4SelectionShape(t *testing.T) {
	net := mustNet(t, "alexnet")
	convs := net.ConvLayers()

	// Figure 4 was measured against the paper's stock-BLAS backend; the
	// packed register-tiled variants added later out-price Winograd and
	// (correctly) shift selections — that tuned-backend story lives in
	// EXPERIMENTS.md. This fixture pins the paper's library, so the
	// tuned -pack variants sit out.
	stock := func(opts Options) Options {
		for _, p := range conv.Library() {
			if !strings.HasSuffix(p.Name, "-pack") {
				opts.Lib = append(opts.Lib, p)
			}
		}
		return opts
	}

	intelPlan, err := Select(net, stock(intelOpts(4)))
	if err != nil {
		t.Fatal(err)
	}
	armPlan, err := Select(net, stock(armOpts(4)))
	if err != nil {
		t.Fatal(err)
	}

	for _, plan := range []*Plan{intelPlan, armPlan} {
		if fam := plan.Primitives[convs[0]].Family; fam != conv.FamilyIm2 {
			t.Errorf("conv1 selected %s family, want im2 (Figure 4)", fam)
		}
		for i, id := range convs[1:] {
			if fam := plan.Primitives[id].Family; fam != conv.FamilyWinograd {
				t.Errorf("conv%d selected %s (%s), want winograd (Figure 4)",
					i+2, plan.Primitives[id].Name, fam)
			}
		}
	}

	intel2D, arm1D := 0, 0
	for _, id := range convs[1:] {
		ip, ap := intelPlan.Primitives[id], armPlan.Primitives[id]
		if ip.Wino2D {
			intel2D++
		}
		if !ap.Wino2D {
			arm1D++
		}
		if ip.VF != 8 {
			t.Errorf("Intel selection %s has VF%d, want VF8 (AVX2)", ip.Name, ip.VF)
		}
		if ap.VF != 4 {
			t.Errorf("ARM selection %s has VF%d, want VF4 (NEON)", ap.Name, ap.VF)
		}
	}
	if intel2D != 4 {
		t.Errorf("Intel selected %d/4 2D winograd layers, want 4 (Figure 4)", intel2D)
	}
	if arm1D < 2 {
		t.Errorf("ARM selected %d/4 1D winograd layers, want majority (Figure 4: 3 of 4)", arm1D)
	}
}

func TestBaselineIsAllSum2D(t *testing.T) {
	net := mustNet(t, "alexnet")
	plan, err := Baseline(net, intelOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range plan.Primitives {
		if p.Name != "sum2d" {
			t.Errorf("layer %d: baseline picked %s", id, p.Name)
		}
	}
	if plan.EdgeCost != 0 {
		t.Errorf("baseline should need no conversions, EdgeCost=%g", plan.EdgeCost)
	}
	if plan.Threads != 1 {
		t.Error("baseline must be single-threaded")
	}
}

func TestLocalOptimalStaysInLayout(t *testing.T) {
	net := mustNet(t, "googlenet")
	plan, err := LocalOptimal(net, tensor.CHW, intelOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, plan)
	for id, p := range plan.Primitives {
		if p.In != tensor.CHW || p.Out != tensor.CHW {
			t.Errorf("layer %d: %s leaves the canonical layout", id, p.Name)
		}
	}
	if plan.EdgeCost != 0 {
		t.Errorf("canonical strategy has no DT costs, got %g", plan.EdgeCost)
	}
}

// TestNoEdgeCostAblation: ignoring DT costs during selection must never
// beat the full formulation, and on DAG-shaped GoogleNet it must be
// strictly worse — §5.8's experimental point.
func TestNoEdgeCostAblation(t *testing.T) {
	net := mustNet(t, "googlenet")
	opts := armOpts(4)
	full, err := Select(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	noEdge, err := NoEdgeCost(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, noEdge)
	if noEdge.TotalCost() < full.TotalCost() {
		t.Errorf("no-edge ablation %g beat full PBQP %g", noEdge.TotalCost(), full.TotalCost())
	}
}

func TestVendorProxies(t *testing.T) {
	net := mustNet(t, "alexnet")
	intel := intelOpts(4)
	caffe, err := CaffeProxy(net, intel)
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, caffe)
	mkl, err := MKLDNNProxy(net, intel)
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, mkl)
	armcl, err := ARMCLProxy(net, armOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, armcl)

	pbqpPlan, err := Select(net, intel)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: PBQP beats the vendor proxies, and the
	// vendor library beats naive Caffe.
	if pbqpPlan.TotalCost() >= mkl.TotalCost() {
		t.Errorf("PBQP (%g) should beat mkldnn proxy (%g)", pbqpPlan.TotalCost(), mkl.TotalCost())
	}
	if mkl.TotalCost() >= caffe.TotalCost() {
		t.Errorf("mkldnn proxy (%g) should beat caffe proxy (%g)", mkl.TotalCost(), caffe.TotalCost())
	}
}

func TestSelectWithExactModeAgrees(t *testing.T) {
	net := mustNet(t, "alexnet")
	opts := intelOpts(4)
	h, err := Select(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Mode = pbqp.Exact
	e, err := Select(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := h.TotalCost() - e.TotalCost(); d > 1e-12 || d < -1e-12 {
		t.Errorf("heuristic %g != exact %g on a chain network", h.TotalCost(), e.TotalCost())
	}
}

// TestSparsitySelection: the §8 extension — with a highly sparse
// kernel, the selector switches some layer to a sparse primitive.
func TestSparsitySelection(t *testing.T) {
	b, x := dnn.NewBuilder("sparse-net", 64, 28, 28)
	x = b.Conv(x, "c1", 64, 3, 1, 1)
	g := func() *dnn.Graph { b.Softmax(x, "sm"); return b.Graph() }()
	id := g.ConvLayers()[0]
	opts := intelOpts(1)

	dense, err := Select(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Primitives[id].Sparse {
		t.Error("dense scenario should not pick a sparse primitive")
	}

	g.Layers[id].Conv.Sparsity = 0.95
	sparse, err := Select(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Primitives[id].Sparse {
		t.Errorf("95%% sparse kernel should select a sparse primitive, got %s",
			sparse.Primitives[id].Name)
	}
}

// TestMinibatchSelection: the batch parameter scales costs but yields a
// legal plan.
func TestMinibatchSelection(t *testing.T) {
	b, x := dnn.NewBuilder("batch-net", 32, 28, 28)
	x = b.Conv(x, "c1", 32, 3, 1, 1)
	g := func() *dnn.Graph { b.Softmax(x, "sm"); return b.Graph() }()
	g.Layers[g.ConvLayers()[0]].Conv.Batch = 8
	plan, err := Select(g, intelOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, plan)
}

// countingProfiler counts Transform pricing calls to pin the DT-cache
// sharing between PBQP assembly and legalization.
type countingProfiler struct {
	inner      cost.Profiler
	transforms map[[4]int]int // (from, to, c, h·w) → calls — keyed per (transform, shape)
}

func (c *countingProfiler) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	return c.inner.Primitive(p, s, threads)
}

func (c *countingProfiler) Transform(tr tensor.Transform, cc, h, w int) float64 {
	c.transforms[[4]int{int(tr.From), int(tr.To), cc, h*1000 + w}]++
	return c.inner.Transform(tr, cc, h, w)
}

// TestDTCacheSharedAcrossBuildAndFinish: the DT closures built while
// assembling the PBQP instance are reused during legalization, so every
// (transform, shape) pair is priced exactly once per selection run.
func TestDTCacheSharedAcrossBuildAndFinish(t *testing.T) {
	g := mustNet(t, "alexnet")
	prof := &countingProfiler{inner: cost.NewModel(cost.IntelHaswell), transforms: map[[4]int]int{}}
	if _, err := Select(g, Options{Prof: prof, Threads: 4}); err != nil {
		t.Fatal(err)
	}
	if len(prof.transforms) == 0 {
		t.Fatal("profiler saw no transform pricing at all")
	}
	for key, n := range prof.transforms {
		if n > 1 {
			t.Errorf("transform/shape %v priced %d times; the DT cache should be shared", key, n)
		}
	}
}

// TestSelectBatchRecordsBucket: per-bucket selection stamps the plan
// with its batch, stays legal, and CheckBatch ties it to the bucket.
func TestSelectBatchRecordsBucket(t *testing.T) {
	g := mustNet(t, "smallnet")
	plan, err := SelectBatch(g, 8, intelOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, plan)
	if plan.Batch != 8 {
		t.Fatalf("Plan.Batch = %d, want 8", plan.Batch)
	}
	if err := plan.CheckBatch(8); err != nil {
		t.Errorf("CheckBatch(8) on a batch-8 plan: %v", err)
	}
	if err := plan.CheckBatch(4); err == nil {
		t.Error("CheckBatch(4) on a batch-8 plan should fail")
	}
	if plan.CostPerImage() <= 0 || plan.CostPerImage() >= plan.TotalCost() {
		t.Errorf("CostPerImage %g should divide TotalCost %g by the batch", plan.CostPerImage(), plan.TotalCost())
	}

	// A batch-agnostic plan executes at any bucket.
	b1, err := Select(g, intelOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if b1.Batch != 1 {
		t.Fatalf("Select plan Batch = %d, want 1", b1.Batch)
	}
	for _, n := range []int{1, 3, 8} {
		if err := b1.CheckBatch(n); err != nil {
			t.Errorf("batch-1 plan CheckBatch(%d): %v", n, err)
		}
	}
	if _, err := SelectBatch(g, 0, intelOpts(1)); err == nil {
		t.Error("SelectBatch(0) should be rejected")
	}
}

// TestSelectBatchChangesPlan: the point of per-bucket selection — the
// batch-8 PBQP instance prices genuinely different costs, so its plan
// predicts a cheaper whole-batch execution than running the batch-1
// plan's choices 8 times, and on GoogLeNet (whose layer-shape spread
// puts several layers near the im2row/wino margin) at least one layer
// switches primitive under the analytic model alone. Measured
// (calibrated-table) selection switches more — that path is exercised
// by the plansweep experiment and the serve calibration tests.
func TestSelectBatchChangesPlan(t *testing.T) {
	for _, name := range []string{"googlenet", "resnet-18"} {
		g := mustNet(t, name)
		opts := intelOpts(1)
		b1, err := Select(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := SelectBatch(g, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		switched := 0
		for _, id := range g.ConvLayers() {
			if b1.Primitives[id].Name != b8.Primitives[id].Name {
				switched++
			}
		}
		t.Logf("%s: %d of %d conv layers switch primitive at batch 8", name, switched, len(g.ConvLayers()))
		if name == "googlenet" && switched == 0 {
			t.Error("googlenet: batch-8 plan selects identical primitives to batch-1; batch amortization is not reaching the PBQP instance")
		}
		if b8.TotalCost() >= 8*b1.TotalCost() {
			t.Errorf("%s: batch-8 plan cost %g should beat 8 × batch-1 cost %g", name, b8.TotalCost(), 8*b1.TotalCost())
		}
	}
}

// TestSelectBatchPrunesUnpricedCandidates: selection over a top-K
// calibrated table must confine the PBQP instance to the measured
// candidates (missing entries are +Inf, not solver inputs) and still
// produce a legal plan.
func TestSelectBatchPrunesUnpricedCandidates(t *testing.T) {
	g := mustNet(t, "micronet")
	mo := cost.NewModel(cost.IntelHaswell)
	tab := cost.NewTable("test-host", 1)
	tab.AddNetTopK(g, conv.Library(), mo, mo, []int{1, 2}, 3)
	for _, b := range []int{1, 2} {
		plan, err := SelectBatch(g, b, Options{Prof: tab, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		checkLegal(t, plan)
		for _, id := range g.ConvLayers() {
			s := g.Layers[id].Conv
			if c := cost.PrimitiveN(tab, plan.Primitives[id], s, 1, b); c <= 0 || c != c || c > 1e9 {
				t.Errorf("batch %d: selected primitive %s has unpriced cost %g", b, plan.Primitives[id].Name, c)
			}
		}
	}
}

// TestPlanCostBreakdowns: the per-layer and per-edge cost maps the
// observability layer joins against must be an exact partition of the
// aggregate NodeCost/EdgeCost — for plain selection, for batch-aware
// selection, and through the vendor proxies' overhead scaling.
func TestPlanCostBreakdowns(t *testing.T) {
	net := mustNet(t, "alexnet")
	opts := intelOpts(4)
	plans := map[string]*Plan{}
	var err error
	if plans["select"], err = Select(net, opts); err != nil {
		t.Fatal(err)
	}
	if plans["batch8"], err = SelectBatch(net, 8, opts); err != nil {
		t.Fatal(err)
	}
	if plans["caffe"], err = CaffeProxy(net, opts); err != nil {
		t.Fatal(err)
	}
	if plans["mkldnn"], err = MKLDNNProxy(net, opts); err != nil {
		t.Fatal(err)
	}
	for name, plan := range plans {
		if len(plan.LayerCost) != len(net.ConvLayers()) {
			t.Errorf("%s: LayerCost has %d entries, want one per conv layer (%d)",
				name, len(plan.LayerCost), len(net.ConvLayers()))
		}
		var nodeSum float64
		for id, c := range plan.LayerCost {
			if c < 0 {
				t.Errorf("%s: negative layer cost for %d", name, id)
			}
			nodeSum += c
		}
		if rel := math.Abs(nodeSum-plan.NodeCost) / plan.NodeCost; rel > 1e-9 {
			t.Errorf("%s: LayerCost sums to %g, NodeCost is %g", name, nodeSum, plan.NodeCost)
		}
		var edgeSum float64
		for _, c := range plan.EdgeCosts {
			edgeSum += c
		}
		if math.Abs(edgeSum-plan.EdgeCost) > 1e-9*math.Max(1, plan.EdgeCost) {
			t.Errorf("%s: EdgeCosts sums to %g, EdgeCost is %g", name, edgeSum, plan.EdgeCost)
		}
		// The fusion credit must already be folded into the partition:
		// adding it back reproduces the raw primitive prices exactly, so
		// the credit is attributed to producer layers, never invented.
		// Vendor proxies model frameworks without epilogue fusion (their
		// wrapped profiler claims no savings), so only the PBQP plans
		// carry credit.
		if name == "caffe" || name == "mkldnn" {
			if plan.FusionCredit != 0 {
				t.Errorf("%s: vendor proxy claims fusion credit %g", name, plan.FusionCredit)
			}
			continue
		}
		if plan.FusionCredit <= 0 {
			t.Errorf("%s: no fusion credit on alexnet (every conv feeds a single relu)", name)
		}
		b := plan.Batch
		if b < 1 {
			b = 1
		}
		var raw float64
		for _, id := range net.ConvLayers() {
			raw += cost.PrimitiveN(opts.Prof, plan.Primitives[id], net.Layers[id].Conv, opts.Threads, b)
		}
		if rel := math.Abs(raw-(plan.NodeCost+plan.FusionCredit)) / raw; rel > 1e-9 {
			t.Errorf("%s: raw primitive prices sum to %g, NodeCost %g + FusionCredit %g diverges",
				name, raw, plan.NodeCost, plan.FusionCredit)
		}
	}
}
