package conv

import (
	"fmt"

	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
	"pbqpdnn/internal/winograd"
)

// This file holds the minibatch entry points of the primitive library.
// Where Run computes one image, RunBatchInto computes a whole N-image
// batch in one call, writing into a caller-provided destination batch —
// the contract the compiled batched program (internal/program) binds
// its conv instructions to. Batched implementations restructure the
// work so the minibatch buys kernel-level economy, not just repetition:
//
//   - im2row: all N images' patch rows stack into one tall Toeplitz
//     matrix feeding a single GEMM whose output rows ARE the HWC batch
//     slab (for 1×1/stride-1 convolutions the input batch slab IS the
//     patch matrix, so the whole layer is exactly one GEMM call);
//   - im2col: images lie side by side as column blocks of one wide
//     patch matrix, one GEMM, then a per-image writeback;
//   - wino2d: the kernel transform is computed once for the batch and
//     the pointwise stage becomes one M×(C)·(C×tiles·N) GEMM per
//     Winograd-domain point — the transformed kernel is amortized over
//     every tile of every image.
//
// Primitives without a batched implementation fall back to per-image
// Run, parallelized across images.

// checkBatch validates the batched call's geometry against the
// scenario and the primitive's layouts.
func checkBatch(p *Primitive, dst, in *tensor.Batch, k *Kernel, s Scenario) {
	if in.N != dst.N {
		panic(fmt.Sprintf("conv: batch size mismatch in=%d dst=%d", in.N, dst.N))
	}
	if in.Layout != p.In || dst.Layout != p.Out {
		panic(fmt.Sprintf("conv: %s expects %s→%s, got %s→%s", p.Name, p.In, p.Out, in.Layout, dst.Layout))
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if in.C != s.C || in.H != s.H || in.W != s.W {
		panic(fmt.Sprintf("conv: input %s does not match scenario %s", in, s))
	}
	if dst.C != s.M || dst.H != s.OutH() || dst.W != s.OutW() {
		panic(fmt.Sprintf("conv: dst %s does not match scenario %s", dst, s))
	}
	if k.M != s.M || k.C != s.C || k.K != s.K {
		panic(fmt.Sprintf("conv: kernel M=%d C=%d K=%d does not match scenario %s", k.M, k.C, k.K, s))
	}
}

// RunBatchInto executes the primitive over the whole minibatch,
// writing image i's output into dst.Image(i). It dispatches to the
// primitive's batched implementation when one exists; otherwise each
// image runs through the per-image Run (in parallel across images when
// threads allow) and is copied into its destination slab.
func RunBatchInto(p *Primitive, dst, in *tensor.Batch, k *Kernel, s Scenario, threads int) {
	checkBatch(p, dst, in, k, s)
	if p.RunBatch != nil {
		p.RunBatch(dst, in, k, s, threads)
		return
	}
	if in.N == 1 {
		out := p.Run(in.Image(0), k, s, threads)
		copy(dst.Slab(0), out.Data)
		return
	}
	parallelFor(threads, in.N, func(i int) {
		out := p.Run(in.Image(i), k, s, 1)
		copy(dst.Slab(i), out.Data)
	})
}

// gemmKernel runs one C = A·B multiply with the plan-selected kernel
// variant (bt, when non-nil, is B pre-transposed for the abt variant).
// Every variant is deterministic run to run; the scalar variants agree
// bitwise with each other, while the packed kernel's k-unrolled product
// grouping rounds slightly differently (within the library's 1e-4
// equivalence tolerance).
func gemmKernel(kind gemmKind, m, n, k int, a, b, bt, c []float32) {
	switch kind {
	case gemmNaive:
		gemm.Naive(m, n, k, a, b, c)
	case gemmBlocked:
		gemm.Blocked(m, n, k, 0, a, b, c)
	case gemmTransB:
		gemm.TransB(m, n, k, a, bt, c)
	case gemmPacked:
		gemm.Packed(m, n, k, a, b, c)
	default:
		gemm.IKJ(m, n, k, a, b, c)
	}
}

// gemmRows runs C = A·B splitting A's rows across the thread budget,
// each worker applying the plan-selected kernel variant to its
// contiguous row slab — the batched split preserves what the PBQP
// cost model priced, unlike collapsing every variant to one parallel
// kernel.
func gemmRows(kind gemmKind, threads, m, n, k int, a, b, bt, c []float32) {
	if threads > m {
		threads = m
	}
	if threads <= 1 {
		gemmKernel(kind, m, n, k, a, b, bt, c)
		return
	}
	rows := (m + threads - 1) / threads
	var slabs [][2]int
	for lo := 0; lo < m; lo += rows {
		hi := lo + rows
		if hi > m {
			hi = m
		}
		slabs = append(slabs, [2]int{lo, hi})
	}
	parallelFor(threads, len(slabs), func(i int) {
		lo, hi := slabs[i][0], slabs[i][1]
		gemmKernel(kind, hi-lo, n, k, a[lo*k:], b, bt, c[lo*n:])
	})
}

// im2rowBatch builds the plain batched im2row entry as the fused one
// with no fused work.
func im2rowBatch(kind gemmKind) func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int) {
	f := im2rowBatchFused(kind)
	return func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int) {
		f(dst, in, k, s, threads, gemm.EpiNone, nil)
	}
}

// im2rowBatchFused builds the batched im2row entry: one tall patch
// matrix (N·Ho·Wo)×(C·K²) — the input batch slab itself for
// 1×1/stride-1 HWC input — and one GEMM writing directly into the HWC
// output batch slab, with the epilogue applied inside the GEMM's
// output write. CHW input is absorbed by the pack: the patch builder
// gathers from the CHW slab directly, replacing the standalone
// conversion instruction.
func im2rowBatchFused(kind gemmKind) func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int, epi gemm.Epilogue, res *tensor.Batch) {
	return func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int, epi gemm.Epilogue, res *tensor.Batch) {
		oh, ow := s.OutH(), s.OutW()
		rowsPerImage := oh * ow
		m, n, kk := in.N*rowsPerImage, s.M, s.K*s.K*s.C
		fromCHW := in.Layout == tensor.CHW
		var patches []float32
		if !fromCHW && s.K == 1 && s.Stride == 1 && s.Pad == 0 {
			// A 1×1 window at stride 1 makes every HWC pixel row its own
			// patch row: the batch slab is already the Toeplitz matrix.
			patches = in.Data[:m*kk]
		} else {
			patches = make([]float32, m*kk)
			parallelFor(threads, in.N, func(img int) {
				seg := patches[img*rowsPerImage*kk : (img+1)*rowsPerImage*kk]
				if fromCHW {
					im2rowPatchesFromCHWInto(seg, in.Image(img), s)
				} else {
					im2rowPatchesInto(seg, in.Image(img), s)
				}
			})
		}
		b := kernelMatrixKKC(k) // packed once per batch, not per image
		var bt []float32
		if kind == gemmTransB {
			bt = transposeMat(kk, n, b)
		}
		// The HWC output slab rows ARE the GEMM result rows, so the
		// residual batch aligns elementwise with C.
		var r []float32
		if res != nil {
			r = res.Data[:m*n]
		}
		// The patch-row dimension m = N·Ho·Wo is the tall axis, so the
		// thread split is always by rows, with the selected variant run
		// on each slab.
		gemmRowsEpi(kind, threads, m, n, kk, patches, b, bt, dst.Data[:m*n], epi, r)
	}
}

// im2colBatch builds the plain batched im2col entry as the fused one
// with no fused work.
func im2colBatch(kind gemmKind) func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int) {
	f := im2colBatchFused(kind)
	return func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int) {
		f(dst, in, k, s, threads, gemm.EpiNone, nil)
	}
}

// im2colBatchFused builds the batched im2col entry: images side by
// side as column blocks of one (C·K²)×(N·Ho·Wo) patch matrix, one
// GEMM, and a slab writeback de-interleaving the M×(N·Ho·Wo) result
// into per-image CHW planes. HWC input is absorbed by the pack. The
// epilogue rides the GEMM output write when the result lands in dst
// directly (N == 1); for N > 1 the interleaved flat result cannot
// align with per-image residual slabs, so the epilogue fuses into the
// de-interleaving writeback instead — still exactly one walk over dst.
func im2colBatchFused(kind gemmKind) func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int, epi gemm.Epilogue, res *tensor.Batch) {
	return func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int, epi gemm.Epilogue, res *tensor.Batch) {
		oh, ow := s.OutH(), s.OutW()
		colsPerImage := oh * ow
		m, n, kk := s.M, in.N*colsPerImage, s.C*s.K*s.K
		fromHWC := in.Layout == tensor.HWC
		patches := make([]float32, kk*n)
		parallelFor(threads, in.N, func(img int) {
			if fromHWC {
				im2colPatchesFromHWCIntoCols(patches, n, img*colsPerImage, in.Image(img), s)
			} else {
				im2colPatchesIntoCols(patches, n, img*colsPerImage, in.Image(img), s)
			}
		})
		a := kernelMatrixMCK(k)
		// The M×(N·Ho·Wo) result interleaves images within each filter
		// row, so N > 1 needs a de-interleaving writeback; a single-image
		// chunk is exactly the CHW output slab and GEMMs straight into it.
		flat := dst.Slab(0)
		gemmEpi := epi
		var r []float32
		if in.N > 1 {
			flat = make([]float32, m*n)
			gemmEpi = gemm.EpiNone // epilogue fuses into the writeback below
		} else if res != nil {
			r = res.Slab(0)
		}
		if threads > 1 && m < threads {
			// Too few filter rows to feed the pool: split the batch-wide
			// column axis instead. ParallelCols runs the packed kernel on
			// per-goroutine column stripes, so this (rare) shape collapses
			// the kernel variant to packed; row counts M ≥ threads — every
			// real model here — keep the selected one.
			gemm.ParallelColsEpi(threads, m, n, kk, a, patches, flat, gemmEpi, r, nil)
		} else {
			var pt []float32
			if kind == gemmTransB {
				pt = transposeMat(kk, n, patches)
			}
			gemmRowsEpi(kind, threads, m, n, kk, a, patches, pt, flat, gemmEpi, r)
		}
		if in.N == 1 {
			return
		}
		parallelFor(threads, in.N, func(img int) {
			slab := dst.Slab(img)
			var rs []float32
			if res != nil {
				rs = res.Slab(img)
			}
			for mm := 0; mm < m; mm++ {
				dstRow := slab[mm*colsPerImage : (mm+1)*colsPerImage]
				srcRow := flat[mm*n+img*colsPerImage : mm*n+(img+1)*colsPerImage]
				var rrow []float32
				if rs != nil {
					rrow = rs[mm*colsPerImage : (mm+1)*colsPerImage]
				}
				epiWritebackRow(epi, dstRow, srcRow, rrow)
			}
		})
	}
}

// wino2DBatch builds the batched 2D Winograd entry. The kernel
// transform runs once per call and is shared by every tile of every
// image; the pointwise stage is restructured from per-tile channel
// loops into one GEMM per Winograd-domain point. The VF4/VF8 lane
// variants of the per-image primitive deliberately share this one
// batched implementation: the GEMM subsumes lane blocking, so the
// vector factor only differentiates the cost model's pricing, not the
// batched execution.
//
// The pointwise stage per Winograd-domain point i is
//
//	Y_i[M×T] = U_i[M×C] · V_i[C×T],  T = N · tilesY · tilesX,
//
// so the transformed kernel panel U_i is streamed over the whole
// minibatch's tiles at once. Transforms stay in float64 (numerical
// headroom, as in the per-image primitive); the pointwise accumulation
// runs in float32 like the GEMM-backed families.
func wino2DBatch(m, r int, layout tensor.Layout) func(dst, in *tensor.Batch, k *Kernel, s Scenario, threads int) {
	plan := winograd.NewPlan(m, r)
	return func(dst, in *tensor.Batch, kern *Kernel, s Scenario, threads int) {
		if s.Stride != 1 || s.K != r {
			panic(fmt.Sprintf("wino2d F(%d,%d): unsupported scenario %s", m, r, s))
		}
		oh, ow := s.OutH(), s.OutW()
		t := plan.T
		tt := t * t
		tilesY := (oh + m - 1) / m
		tilesX := (ow + m - 1) / m
		tilesPerImage := tilesY * tilesX
		T := in.N * tilesPerImage
		M, C := s.M, s.C

		// Kernel transform once per batch: U[i] is an M×C row-major panel.
		u := make([]float32, tt*M*C)
		g := make([]float32, r*r)
		for mm := 0; mm < M; mm++ {
			for c := 0; c < C; c++ {
				for kh := 0; kh < r; kh++ {
					for kw := 0; kw < r; kw++ {
						g[kh*r+kw] = kern.At(mm, c, kh, kw)
					}
				}
				uk := plan.KernelTransform2D(g)
				for i := 0; i < tt; i++ {
					u[i*M*C+mm*C+c] = float32(uk[i])
				}
			}
		}

		// Input transform: V[i] is a C×T row-major panel; tile columns
		// are image-major so each image's tiles stay contiguous.
		v := make([]float32, tt*C*T)
		parallelFor(threads, in.N, func(img int) {
			d := make([]float64, tt)
			src := in.Image(img)
			for c := 0; c < C; c++ {
				for ty := 0; ty < tilesY; ty++ {
					for tx := 0; tx < tilesX; tx++ {
						gatherTile2D(src, c, ty*m, tx*m, t, s.Pad, d)
						vt := plan.InputTransform2D(d)
						col := img*tilesPerImage + ty*tilesX + tx
						for i := 0; i < tt; i++ {
							v[i*C*T+c*T+col] = float32(vt[i])
						}
					}
				}
			}
		})

		// Pointwise stage: tt independent GEMMs (one per Winograd-domain
		// point) — the batch's parallelism axis. T = N·tiles is the wide
		// axis, so each point's multiply rides the packed kernel.
		y := make([]float32, tt*M*T)
		parallelFor(threads, tt, func(i int) {
			gemm.Packed(M, T, C, u[i*M*C:(i+1)*M*C], v[i*C*T:(i+1)*C*T], y[i*M*T:(i+1)*M*T])
		})

		// Output transform and scatter into per-image tiles.
		parallelFor(threads, in.N, func(img int) {
			sum := make([]float64, tt)
			out := dst.Image(img)
			for mm := 0; mm < M; mm++ {
				for ty := 0; ty < tilesY; ty++ {
					for tx := 0; tx < tilesX; tx++ {
						col := img*tilesPerImage + ty*tilesX + tx
						for i := 0; i < tt; i++ {
							sum[i] = float64(y[i*M*T+mm*T+col])
						}
						yv := plan.OutputTransform2D(sum)
						y0, x0 := ty*m, tx*m
						for i := 0; i < m && y0+i < oh; i++ {
							for j := 0; j < m && x0+j < ow; j++ {
								out.Set(mm, y0+i, x0+j, float32(yv[i*m+j]))
							}
						}
					}
				}
			}
		})
	}
}
