//go:build !race

package exec

// raceEnabled reports whether the race detector is compiled in. The
// full-model equivalence tests consult it: race instrumentation slows
// whole-network inference by an order of magnitude, so the heaviest
// models only run without it.
const raceEnabled = false
