// Package dtgraph implements the paper's data-layout transformation (DT)
// graph (§3.1): data layouts are nodes, the library's direct conversion
// routines are weighted directed edges, and the cost of converting
// between an arbitrary pair of layouts is the shortest path in the
// graph's transitive closure — possibly a multi-hop chain, or +Inf when
// no path exists.
package dtgraph

import (
	"fmt"
	"math"

	"pbqpdnn/internal/tensor"
)

// CostFunc prices one direct transform routine, typically for a specific
// tensor shape (measured or modeled execution time in seconds).
type CostFunc func(tr tensor.Transform) float64

// Graph is the DT graph together with its all-pairs shortest-path
// closure for one tensor shape.
type Graph struct {
	layouts []tensor.Layout
	index   map[tensor.Layout]int
	trs     []tensor.Transform
	// dist is the closed shortest-path cost; via[i][j] is the index into
	// trs of the first hop on the best i→j path, or -1.
	dist [][]float64
	via  [][]int
}

// New builds the closure over the given direct transforms. Costs must
// be non-negative; Floyd–Warshall computes the all-pairs closure ahead
// of time, as §3.1 prescribes.
func New(transforms []tensor.Transform, cost CostFunc) *Graph {
	g := &Graph{index: map[tensor.Layout]int{}, trs: transforms}
	for _, l := range tensor.Layouts() {
		g.index[l] = len(g.layouts)
		g.layouts = append(g.layouts, l)
	}
	n := len(g.layouts)
	g.dist = make([][]float64, n)
	g.via = make([][]int, n)
	for i := range g.dist {
		g.dist[i] = make([]float64, n)
		g.via[i] = make([]int, n)
		for j := range g.dist[i] {
			if i == j {
				g.dist[i][j] = 0
			} else {
				g.dist[i][j] = math.Inf(1)
			}
			g.via[i][j] = -1
		}
	}
	for ti, tr := range transforms {
		c := cost(tr)
		if c < 0 {
			panic(fmt.Sprintf("dtgraph: negative cost %g for %s", c, tr.Name))
		}
		i, j := g.index[tr.From], g.index[tr.To]
		if c < g.dist[i][j] {
			g.dist[i][j] = c
			g.via[i][j] = ti
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := g.dist[i][k] + g.dist[k][j]; d < g.dist[i][j] {
					g.dist[i][j] = d
					g.via[i][j] = g.via[i][k]
				}
			}
		}
	}
	return g
}

// Cost returns the least cost of converting from one layout to another
// (0 for identical layouts, +Inf when unreachable).
func (g *Graph) Cost(from, to tensor.Layout) float64 {
	return g.dist[g.index[from]][g.index[to]]
}

// Path returns the chain of direct transforms realizing the least-cost
// conversion, empty for identical layouts, or an error when unreachable.
func (g *Graph) Path(from, to tensor.Layout) ([]tensor.Transform, error) {
	if from == to {
		return nil, nil
	}
	i, j := g.index[from], g.index[to]
	if math.IsInf(g.dist[i][j], 1) {
		return nil, fmt.Errorf("dtgraph: no transform chain %s→%s", from, to)
	}
	var chain []tensor.Transform
	for i != j {
		ti := g.via[i][j]
		if ti < 0 {
			return nil, fmt.Errorf("dtgraph: broken path %s→%s", from, to)
		}
		tr := g.trs[ti]
		chain = append(chain, tr)
		i = g.index[tr.To]
		if len(chain) > len(g.layouts) {
			return nil, fmt.Errorf("dtgraph: path %s→%s does not terminate", from, to)
		}
	}
	return chain, nil
}

// Apply converts t to the target layout along the least-cost chain.
func (g *Graph) Apply(t *tensor.Tensor, to tensor.Layout) (*tensor.Tensor, error) {
	chain, err := g.Path(t.Layout, to)
	if err != nil {
		return nil, err
	}
	for _, tr := range chain {
		t = tr.Run(t)
	}
	return t, nil
}

// Layouts returns the node set.
func (g *Graph) Layouts() []tensor.Layout { return g.layouts }
