// Command dnnserver serves PBQP-optimized networks over HTTP with
// dynamic batching: every hosted model is selected and compiled exactly
// once at startup, then concurrent requests are collected into
// minibatches that share one compiled-program dispatch
// (exec.Engine.RunBatch).
//
// Serve:
//
//	dnnserver -models smallnet,alexnet -addr :8080
//	curl localhost:8080/models
//	curl -d '{"data":[...]}' localhost:8080/v1/models/smallnet/infer
//	curl localhost:8080/stats
//
// Load generation (the EXPERIMENTS.md acceptance run) drives N
// closed-loop clients in process — first through the dynamic batcher,
// then through a naive goroutine-per-request Engine.Run baseline — and
// prints achieved batch sizes and latency percentiles side by side:
//
//	dnnserver -loadgen -models smallnet -clients 16 -requests 16
//
// Selection uses the analytic Intel Haswell cost model unless -costs
// points at a serialized cost table (see examples/deploy for the §4
// profile-once-ship-the-table deployment story).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnnserver: ")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	modelList := flag.String("models", "smallnet",
		fmt.Sprintf("comma-separated models to host (from %v)",
			append(models.Names(), models.DemoNames()...)))
	threads := flag.Int("threads", 0, "selection thread budget per engine (0 = GOMAXPROCS)")
	costsPath := flag.String("costs", "", "optional serialized cost table (JSON) to drive selection instead of the analytic model")
	calibrate := flag.Bool("calibrate", false,
		"calibrate-on-start: measure the real primitives at every batch bucket and select against the measured table; with -costs the table is persisted there and reused on restart")
	calReps := flag.Int("calibrate-reps", 1, "calibration: best-of repetitions per measurement")
	calTopK := flag.Int("calibrate-top", 4, "calibration: measure only the analytic model's k cheapest candidates per layer per bucket")

	maxBatch := flag.Int("max-batch", 8, "flush a minibatch at this many pending requests")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "flush a partial minibatch once its oldest request has waited this long")
	queueCap := flag.Int("queue", 0, "admission queue bound; overflow is rejected with 429 (0 = 4×max-batch)")
	inflight := flag.Int("inflight", 1, "concurrent engine dispatches per model")

	loadgen := flag.Bool("loadgen", false, "run the in-process load generator instead of serving, then exit")
	clients := flag.Int("clients", 16, "loadgen: concurrent clients")
	requests := flag.Int("requests", 16, "loadgen: requests per client")
	interval := flag.Duration("interval", 0,
		"loadgen: per-client arrival period for open-loop load (0 = closed loop); offered rps = clients/interval")
	deadline := flag.Duration("deadline", 0,
		"loadgen: per-request completion budget (0 = none); the batcher enforces it, the naive baseline is merely judged by it")
	jsonOut := flag.Bool("json", false, "loadgen: emit machine-readable JSON instead of the table")
	flag.Parse()

	cfg := serve.Config{
		Threads: *threads,
		Batch: serve.BatchOptions{
			MaxBatch:    *maxBatch,
			MaxWait:     *maxWait,
			QueueCap:    *queueCap,
			MaxInFlight: *inflight,
		},
	}
	switch {
	case *calibrate:
		// Calibrate-on-start: the registry measures (or, when the file
		// already exists, reloads) the table itself.
		cfg.Calibrate = true
		cfg.TablePath = *costsPath
		cfg.CalibrateReps = *calReps
		cfg.CalibrateTopK = *calTopK
	case *costsPath != "":
		f, err := os.Open(*costsPath)
		if err != nil {
			log.Fatal(err)
		}
		table, err := cost.LoadTable(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading cost table %s: %v", *costsPath, err)
		}
		cfg.Prof = table
	}

	names := strings.Split(*modelList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if *loadgen {
		// Loadgen drives exactly one model; don't pay selection and
		// compilation for the rest of the list.
		names = names[:1]
	}
	start := time.Now()
	reg, err := serve.NewRegistry(names, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range reg.Names() {
		m, _ := reg.Get(name)
		log.Printf("loaded %s: %d layers, input %d×%d×%d, pbqp optimal=%v",
			name, m.Net.NumLayers(), m.InC, m.InH, m.InW, m.Plan().Optimal)
	}
	log.Printf("registry ready in %v", time.Since(start).Round(time.Millisecond))

	if *loadgen {
		o := serve.LoadOptions{
			Clients: *clients, PerClient: *requests,
			Interval: *interval, Deadline: *deadline,
		}
		if err := runLoadgen(reg, names[0], o, *jsonOut); err != nil {
			log.Fatal(err)
		}
		reg.Close()
		return
	}

	serve.PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewServer(reg))
	mux.Handle("GET /debug/vars", expvar.Handler())
	srv := &http.Server{Addr: *addr, Handler: mux}

	// Graceful drain: stop accepting connections, finish in-flight
	// HTTP requests, then drain every model's admitted batches.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down: draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		reg.Close()
	}()

	log.Printf("serving %v on %s", reg.Names(), *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// runLoadgen runs the acceptance comparison: dynamic batching versus a
// naive goroutine-per-request baseline on the same compiled engine.
func runLoadgen(reg *serve.Registry, model string, o serve.LoadOptions, jsonOut bool) error {
	m, ok := reg.Get(model)
	if !ok {
		return fmt.Errorf("model %q not hosted", model)
	}
	if o.Interval > 0 {
		log.Printf("open-loop: offering %.0f req/s for ~%v%s",
			float64(o.Clients)/o.Interval.Seconds(),
			(time.Duration(o.PerClient) * o.Interval).Round(time.Millisecond),
			deadlineNote(o.Deadline))
	}
	batched, err := serve.LoadTest(m, o)
	if err != nil {
		return err
	}
	naive, err := serve.NaiveLoadTest(m, o)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]serve.LoadReport{"batched": batched, "naive": naive})
	}
	fmt.Print(serve.FormatLoadComparison(model, batched, naive))
	if batched.Served == 0 || naive.Served == 0 {
		fmt.Printf("\nno latency comparison: served batched %d, naive %d — "+
			"lower the offered load or raise -deadline\n", batched.Served, naive.Served)
		return nil
	}
	fmt.Printf("\nmean latency (served): batched %v vs naive %v (%.2f× better), mean batch %.2f\n",
		batched.MeanLatency.Round(10*time.Microsecond),
		naive.MeanLatency.Round(10*time.Microsecond),
		float64(naive.MeanLatency)/float64(batched.MeanLatency),
		batched.MeanBatch)
	return nil
}

func deadlineNote(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return fmt.Sprintf(", %v deadline per request", d)
}
