package conv

import (
	"pbqpdnn/internal/fft"
	"pbqpdnn/internal/tensor"
)

// The fft family (paper §4): convolution via the convolution theorem,
// computed as a sum of 1D FFT convolutions — less space than a 2D FFT at
// the cost of more operations. Correlation is obtained by convolving
// with the reversed kernel row. Only sometimes competitive (Table 1:
// weak on small kernels) but occasionally a large win, which is exactly
// why it belongs in the library.

// reverseRow returns the reversed kernel row (m,c,kh).
func reverseRow(k *Kernel, m, c, kh int) []float32 {
	r := make([]float32, k.K)
	for kw := 0; kw < k.K; kw++ {
		r[k.K-1-kw] = k.At(m, c, kh, kw)
	}
	return r
}

// paddedRow extracts input row (c, ih) with s.Pad zeros on both sides;
// rows outside the image are all-zero.
func paddedRow(in *tensor.Tensor, s Scenario, c, ih int) []float32 {
	row := make([]float32, s.W+2*s.Pad)
	if ih < 0 || ih >= s.H {
		return row
	}
	for w := 0; w < s.W; w++ {
		row[s.Pad+w] = in.At(c, ih, w)
	}
	return row
}

// fft1dNaive recomputes every FFT on demand: one ConvolveReal per
// (m, y, c, kh) quadruple.
func fft1dNaive(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "fft1d-naive")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	parallelFor(threads, s.M, func(m int) {
		for y := 0; y < oh; y++ {
			dst := out.Data[(m*oh+y)*ow : (m*oh+y)*ow+ow]
			for c := 0; c < s.C; c++ {
				for kh := 0; kh < s.K; kh++ {
					row := paddedRow(in, s, c, y+kh-s.Pad)
					conv := fft.ConvolveReal(row, reverseRow(k, m, c, kh))
					for x := 0; x < ow; x++ {
						dst[x] += conv[s.K-1+x]
					}
				}
			}
		}
	})
	return out
}

// fftPre holds the shared precomputation of the "-pre" variants: row
// spectra of the input and kernel-row spectra, so each output row costs
// one inverse FFT after frequency-domain accumulation.
func fft1dPre(layout tensor.Layout) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, layout, "fft1d-pre")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		n := fft.NextPow2(s.W + 2*s.Pad + s.K - 1)
		// Input row spectra: one per (c, h).
		rowSpec := make([][]complex128, s.C*s.H)
		parallelFor(threads, s.C, func(c int) {
			for h := 0; h < s.H; h++ {
				rowSpec[c*s.H+h] = fft.Forward(paddedRow(in, s, c, h), n)
			}
		})
		// Kernel row spectra: one per (m, c, kh), reversed for correlation.
		kSpec := make([][]complex128, s.M*s.C*s.K)
		parallelFor(threads, s.M, func(m int) {
			for c := 0; c < s.C; c++ {
				for kh := 0; kh < s.K; kh++ {
					kSpec[(m*s.C+c)*s.K+kh] = fft.Forward(reverseRow(k, m, c, kh), n)
				}
			}
		})
		out := tensor.New(layout, s.M, oh, ow)
		parallelFor(threads, s.M, func(m int) {
			acc := make([]complex128, n)
			for y := 0; y < oh; y++ {
				for i := range acc {
					acc[i] = 0
				}
				for c := 0; c < s.C; c++ {
					for kh := 0; kh < s.K; kh++ {
						ih := y + kh - s.Pad
						if ih < 0 || ih >= s.H {
							continue
						}
						rs := rowSpec[c*s.H+ih]
						ks := kSpec[(m*s.C+c)*s.K+kh]
						for i := range acc {
							acc[i] += rs[i] * ks[i]
						}
					}
				}
				fft.InPlace(acc, true)
				for x := 0; x < ow; x++ {
					out.Set(m, y, x, float32(real(acc[s.K-1+x])))
				}
				// Restore acc for reuse: re-zeroed at loop head. The inverse
				// transform destroyed the accumulation buffer contents.
			}
		})
		return out
	}
}

// fftWorkspace models the spectra storage of the precomputing variants.
func fftWorkspace(s Scenario) int64 {
	n := int64(fft.NextPow2(s.W + 2*s.Pad + s.K - 1))
	rows := int64(s.C)*int64(s.H) + int64(s.M)*int64(s.C)*int64(s.K)
	return rows * n * 16
}

// fftPrimitives assembles the fft family. All stride-1 only.
func fftPrimitives() []*Primitive {
	small := func(s Scenario) int64 {
		return int64(fft.NextPow2(s.W+2*s.Pad+s.K-1)) * 16 * 3
	}
	return []*Primitive{
		{Name: "fft1d-naive", Family: FamilyFFT, In: tensor.CHW, Out: tensor.CHW, VF: 1, Workspace: small, Run: fft1dNaive},
		{Name: "fft1d-pre", Family: FamilyFFT, In: tensor.CHW, Out: tensor.CHW, VF: 4, Workspace: fftWorkspace, Run: fft1dPre(tensor.CHW)},
		{Name: "fft1d-pre-hcw", Family: FamilyFFT, In: tensor.HCW, Out: tensor.HCW, VF: 4, Workspace: fftWorkspace, Run: fft1dPre(tensor.HCW)},
		{Name: "fft1d-pre-cwh", Family: FamilyFFT, In: tensor.CWH, Out: tensor.CWH, VF: 4, Workspace: fftWorkspace, Run: fft1dPre(tensor.CWH)},
	}
}
