// Package gemm is the matrix-multiplication substrate standing in for
// OpenBLAS in the paper's primitive library. All matrices are dense
// row-major float32 slices. Several kernels with different blocking and
// threading strategies are provided; the im2 and kn2 convolution
// families are built on top of them.
package gemm

import (
	"fmt"
	"runtime"
	"sync"
)

// The packed, register-tiled kernel family (Packed, Accumulate, TransB,
// ParallelCols) lives in pack.go.

func checkDims(m, n, k int, a, b, c []float32) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("gemm: negative dims m=%d n=%d k=%d", m, n, k))
	}
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("gemm: buffer too small for m=%d n=%d k=%d (a=%d b=%d c=%d)",
			m, n, k, len(a), len(b), len(c)))
	}
}

// Naive computes C = A·B with the textbook triple loop (ijk order).
// A is m×k, B is k×n, C is m×n, all row-major. C is overwritten.
func Naive(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// IKJ computes C = A·B with the cache-friendlier ikj loop order, which
// streams both B and C rows. C is overwritten. Row views are taken as
// x[off:][:n] so every panel shares the one length value n and the
// accumulation loops carry no bounds checks.
//
//dnn:hotpath
func IKJ(m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	for i := 0; i < m; i++ {
		ai := a[i*k:][:k]
		ci := c[i*n:][:n]
		for j := range ci {
			ci[j] = 0
		}
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n:][:n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// DefaultBlock is the tile edge used by Blocked when the caller passes a
// non-positive block size.
const DefaultBlock = 48

// Blocked computes C = A·B with three-level loop tiling (block×block
// tiles, ikj inside each tile). C is overwritten. The innermost loop
// ranges over the tile's B sub-row while writing a same-length C
// sub-row view, so the accumulation carries no bounds checks.
//
//dnn:hotpath
func Blocked(m, n, k, block int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	if block <= 0 {
		block = DefaultBlock
	}
	cc := c[:m*n]
	for i := range cc {
		cc[i] = 0
	}
	for i0 := 0; i0 < m; i0 += block {
		imax := min(i0+block, m)
		for p0 := 0; p0 < k; p0 += block {
			pmax := min(p0+block, k)
			for j0 := 0; j0 < n; j0 += block {
				jmax := min(j0+block, n)
				for i := i0; i < imax; i++ {
					ci := c[i*n:][:n]
					ai := a[i*k:][:k]
					for p := p0; p < pmax; p++ {
						av := ai[p]
						if av == 0 {
							continue
						}
						cb := ci[j0:jmax]
						bb := b[p*n:][:n][j0:jmax]
						for j, bv := range bb {
							cb[j] += av * bv
						}
					}
				}
			}
		}
	}
}

// Parallel computes C = A·B splitting the rows of A across `threads`
// goroutines (each worker uses the ikj kernel on its row slab). A
// non-positive thread count uses GOMAXPROCS.
func Parallel(threads, m, n, k int, a, b, c []float32) {
	checkDims(m, n, k, a, b, c)
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > m {
		threads = m
	}
	if threads <= 1 {
		IKJ(m, n, k, a, b, c)
		return
	}
	var wg sync.WaitGroup
	rows := (m + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * rows
		hi := min(lo+rows, m)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			IKJ(hi-lo, n, k, a[lo*k:], b, c[lo*n:])
		}(lo, hi)
	}
	wg.Wait()
}
