package exec

// This file is the engine side of the observability layer: attaching a
// per-instruction timing profile (internal/obs) to a compiled engine
// and joining its observations against the plan's per-layer cost
// predictions. The join is the calibration data the ROADMAP's online
// adaptive re-selection controller consumes — per (instruction, batch
// bucket), what the PBQP solve predicted versus what this machine
// actually delivered.

import (
	"pbqpdnn/internal/obs"
	"pbqpdnn/internal/program"
)

// EnableProfiling attaches a per-instruction profile that samples one
// RunBatch chunk in every k (k ≤ 1 = always-on, the bench setting;
// serving samples sparsely). It must be called after construction and
// before the engine is shared — the engine's concurrent-use contract
// covers prof only once it is set — and at most once. Returns the
// profile for snapshotting.
func (e *Engine) EnableProfiling(k int) *obs.Profile {
	e.prof = obs.NewProfile(len(e.prog.Instrs), k)
	return e.prof
}

// Profile returns the attached profile, or nil when profiling is
// disabled.
func (e *Engine) Profile() *obs.Profile { return e.prof }

// LayerTable joins the profile's observed per-instruction times against
// the plan's predicted per-layer costs, returning the per-layer
// predicted-vs-observed table for this engine's batch bucket (nil when
// profiling is disabled). Conv rows carry the plan's node-cost
// prediction for the selected primitive, convert rows the legalized
// edge's DT-closure prediction; wildcard operators are priced at zero
// by the model and so carry no prediction — their observed share of
// runtime is exactly the table's news.
//
// For a batch-aware plan (Plan.Batch = bucket) predictions are the
// bucket costs scaled to one image; a batch-agnostic per-image plan
// executed batched keeps its per-image predictions, which then
// *overstate* amortizable layers — visible as ratios below 1.
func (e *Engine) LayerTable() *obs.LayerTable {
	if e.prof == nil {
		return nil
	}
	snap := e.prof.Snapshot()
	plan := e.prog.Plan
	denom := float64(plan.Batch)
	if denom < 1 {
		denom = 1
	}
	t := &obs.LayerTable{
		Net:           plan.Net.Name,
		Batch:         e.maxBatch,
		Threads:       e.workers,
		SampleEvery:   snap.Every,
		SampledChunks: snap.Chunks,
		SampledImages: snap.Images,
		EngineWallNS:  snap.WallNS,
	}
	t.Rows = make([]obs.LayerRow, len(e.prog.Instrs))
	for i := range e.prog.Instrs {
		ins := &e.prog.Instrs[i]
		row := &t.Rows[i]
		row.Instr = i
		row.Layer = ins.Name
		row.Op = ins.Op.String()
		row.Samples = snap.Samples[i]
		row.ObservedNS = snap.NS[i]
		switch ins.Op {
		case program.OpConv:
			row.Primitive = ins.Prim.Name
			// A fused instruction computes its conv layer plus the folded
			// epilogue layers, and an absorbed input conversion folds the
			// legalized edge's cost in too — its prediction is the sum of
			// everything it executes, so the fused row compares observed
			// time against the whole fused chain's prediction (and the
			// absorbed edge's prediction is not orphaned on a row no
			// instruction backs).
			pred := plan.LayerCost[ins.Layer.ID]
			for _, fl := range ins.EpiLayers {
				pred += plan.LayerCost[fl.ID]
			}
			if len(ins.CvtIn) > 0 {
				if preds := plan.Net.Preds(ins.Layer.ID); len(preds) == 1 {
					pred += plan.EdgeCosts[[2]int{preds[0], ins.Layer.ID}]
				}
			}
			row.PredictedNSPerImage = pred / denom * 1e9
		case program.OpConvert:
			// The convert instruction legalizes the edge from its
			// producer (its sole argument's layer) to its consumer (its
			// own Layer); the plan priced that edge in EdgeCosts.
			prod := e.prog.Instrs[ins.Args[0]].Layer.ID
			row.PredictedNSPerImage = plan.EdgeCosts[[2]int{prod, ins.Layer.ID}] / denom * 1e9
		}
	}
	t.Finish()
	return t
}
