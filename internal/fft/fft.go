// Package fft provides the Fourier-transform substrate for the paper's
// fft convolution family: an iterative radix-2 complex FFT and 1D linear
// convolution via the convolution theorem. The primitives compute 2D DNN
// convolution as a sum of 1D FFT convolutions (paper §4), which needs
// less space than a full 2D FFT at the cost of more operations.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// InPlace computes the in-place radix-2 Cooley–Tukey FFT of x, whose
// length must be a power of two. If inverse is true the inverse DFT is
// computed, including the 1/N normalization.
func InPlace(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wn := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wn
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// Forward returns the DFT of x padded to the next power of two ≥ size.
func Forward(x []float32, size int) []complex128 {
	n := NextPow2(size)
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(float64(v), 0)
	}
	InPlace(out, false)
	return out
}

// ConvolveReal returns the full linear convolution of a and b
// (length len(a)+len(b)-1) computed via the convolution theorem.
func ConvolveReal(a, b []float32) []float32 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(float64(v), 0)
	}
	for i, v := range b {
		fb[i] = complex(float64(v), 0)
	}
	InPlace(fa, false)
	InPlace(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	InPlace(fa, true)
	out := make([]float32, outLen)
	for i := range out {
		out[i] = float32(real(fa[i]))
	}
	return out
}

// Pointwise multiplies spectrum a by spectrum b elementwise into a.
// Both spectra must have equal power-of-two length.
func Pointwise(a, b []complex128) {
	if len(a) != len(b) {
		panic("fft: spectrum length mismatch")
	}
	for i := range a {
		a[i] *= b[i]
	}
}

// ConvolveRealPre performs linear convolution of signal a against a
// kernel whose forward spectrum fb (of power-of-two length n ≥
// len(a)+kLen-1) has been precomputed with Forward. This lets a
// convolution primitive transform each kernel row once and reuse it for
// every image row.
func ConvolveRealPre(a []float32, fb []complex128, kLen int) []float32 {
	outLen := len(a) + kLen - 1
	n := len(fb)
	if !IsPow2(n) || n < outLen {
		panic(fmt.Sprintf("fft: precomputed spectrum length %d too small for output %d", n, outLen))
	}
	fa := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(float64(v), 0)
	}
	InPlace(fa, false)
	Pointwise(fa, fb)
	InPlace(fa, true)
	out := make([]float32, outLen)
	for i := range out {
		out[i] = float32(real(fa[i]))
	}
	return out
}
