package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"pbqpdnn/internal/gemm"
)

// GemmSweep benchmarks the GEMM kernel variants the primitive library
// dispatches to, over a grid of sizes, so the raw-GEMM trajectory is a
// per-commit CI artifact alongside batchsweep/plansweep. Each (kernel,
// size) point is the minimum of `reps` wall-clocked runs — min-of-N is
// the noise-robust statistic for a single-tenant box. Naive is skipped
// above 256 (it alone would dominate the sweep's runtime without
// informing the packed-vs-blocked trend CI tracks).

// GemmSweepPoint is one (kernel, variant, m, n, k) measurement.
// Variant names the dispatched microkernel for the packed family
// ("avx2" or "go"); the non-packed kernels are pure Go by construction
// and always report "go".
type GemmSweepPoint struct {
	Kernel  string
	Variant string
	M, N, K int
	Reps    int
	MinNs   float64
	GFLOPS  float64
}

// gemmSweepKernels enumerates the swept kernels. TransB receives the
// same logical B, pre-transposed outside the timed region; ParallelCols
// uses the caller's thread budget. packedFamily marks the kernels that
// dispatch through the SIMD/pure-Go microkernel switch — the sweep
// times those once per available variant.
func gemmSweepKernels(threads int) []struct {
	name         string
	packedFamily bool
	run          func(m, n, k int, a, b, bt, c []float32)
} {
	return []struct {
		name         string
		packedFamily bool
		run          func(m, n, k int, a, b, bt, c []float32)
	}{
		{"naive", false, func(m, n, k int, a, b, bt, c []float32) { gemm.Naive(m, n, k, a, b, c) }},
		{"ikj", false, func(m, n, k int, a, b, bt, c []float32) { gemm.IKJ(m, n, k, a, b, c) }},
		{"blocked", false, func(m, n, k int, a, b, bt, c []float32) { gemm.Blocked(m, n, k, 0, a, b, c) }},
		{"transb", true, func(m, n, k int, a, b, bt, c []float32) { gemm.TransB(m, n, k, a, bt, c) }},
		{"packed", true, func(m, n, k int, a, b, bt, c []float32) { gemm.Packed(m, n, k, a, b, c) }},
		{"parallelcols", true, func(m, n, k int, a, b, bt, c []float32) {
			gemm.ParallelCols(threads, m, n, k, a, b, c)
		}},
	}
}

// GemmSweep runs the kernel × variant × size grid. Sizes are square
// (m=n=k=s); the conv-shaped panels are covered by plansweep's
// whole-net runs. The packed-family kernels are timed once per
// available microkernel variant; the dispatch state is restored on
// return.
func GemmSweep(sizes []int, threads, reps int) []GemmSweepPoint {
	if reps < 1 {
		reps = 1
	}
	defer gemm.SetSIMD(gemm.SIMDEnabled())
	var pts []GemmSweepPoint
	rng := rand.New(rand.NewSource(42))
	for _, s := range sizes {
		m, n, k := s, s, s
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		bt := transposeSlice(k, n, b)
		c := make([]float32, m*n)
		for _, kv := range gemmSweepKernels(threads) {
			if kv.name == "naive" && s > 256 {
				continue
			}
			variants := []string{"go"}
			if kv.packedFamily {
				variants = gemm.PackedVariants()
			}
			for _, variant := range variants {
				if kv.packedFamily {
					gemm.SetSIMD(variant == "avx2")
				}
				minNs := 0.0
				for r := 0; r < reps; r++ {
					start := time.Now()
					kv.run(m, n, k, a, b, bt, c)
					ns := float64(time.Since(start).Nanoseconds())
					if r == 0 || ns < minNs {
						minNs = ns
					}
				}
				pts = append(pts, GemmSweepPoint{
					Kernel: kv.name, Variant: variant, M: m, N: n, K: k,
					Reps:  reps,
					MinNs: minNs,
					GFLOPS: 2 * float64(m) * float64(n) * float64(k) /
						minNs,
				})
			}
		}
	}
	return pts
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func transposeSlice(rows, cols int, a []float32) []float32 {
	t := make([]float32, len(a))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			t[j*rows+i] = a[i*cols+j]
		}
	}
	return t
}

// FormatGemmSweep renders the sweep as a table with per-size speedups
// of the packed kernel over blocked, and of the SIMD packed variant
// over the pure-Go one — the ratios the acceptance criteria track.
func FormatGemmSweep(pts []GemmSweepPoint) string {
	var sb strings.Builder
	sb.WriteString("== GEMM kernel sweep (square sizes, min-of-reps wall clock) ==\n")
	bySize := map[int][]GemmSweepPoint{}
	var sizes []int
	for _, p := range pts {
		if len(bySize[p.N]) == 0 {
			sizes = append(sizes, p.N)
		}
		bySize[p.N] = append(bySize[p.N], p)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		var blocked, packedGo, packedSIMD float64
		sb.WriteString(fmt.Sprintf("  %d×%d×%d:\n", s, s, s))
		for _, p := range bySize[s] {
			label := p.Kernel
			if p.Variant != "" {
				label += "[" + p.Variant + "]"
			}
			sb.WriteString(fmt.Sprintf("    %-19s %8.2f ms  %6.2f GFLOP/s\n",
				label, p.MinNs/1e6, p.GFLOPS))
			switch {
			case p.Kernel == "blocked":
				blocked = p.GFLOPS
			case p.Kernel == "packed" && p.Variant == "avx2":
				packedSIMD = p.GFLOPS
			case p.Kernel == "packed":
				packedGo = p.GFLOPS
			}
		}
		if blocked > 0 && packedGo > 0 {
			sb.WriteString(fmt.Sprintf("    packed[go]/blocked: %.2f×\n", packedGo/blocked))
		}
		if packedSIMD > 0 && packedGo > 0 {
			sb.WriteString(fmt.Sprintf("    packed[avx2]/packed[go]: %.2f×\n", packedSIMD/packedGo))
		}
	}
	return sb.String()
}
