// Package lint implements the repository's custom static analyzers and
// the bounds-check-elimination guard behind cmd/dnnlint. The analyzers
// enforce contracts the compiler and runtime rely on but go vet cannot
// see:
//
//   - hotpathalloc: functions annotated //dnn:hotpath (the compiled
//     executor's leaf kernels and scheduler inner loops) must not
//     allocate, iterate maps, defer, or convert to interfaces;
//   - kernelalias: *Into kernels write through caller-provided buffers
//     and must not retain or return memory derived from their
//     reference parameters;
//   - atomicfield: a struct field accessed through sync/atomic anywhere
//     must be accessed through sync/atomic everywhere.
//
// Everything here is built on the standard library's go/ast and
// go/types only — the loader shells out to `go list` for package
// structure and export data instead of depending on golang.org/x/tools.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is a named check run over one typechecked package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// All is the analyzer suite cmd/dnnlint runs by default.
var All = []*Analyzer{HotPathAlloc, KernelAlias, AtomicField}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position, with //dnn:allow-suppressed lines
// removed.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowedLines(pkg)
		for _, a := range analyzers {
			for _, d := range a.Run(pkg) {
				if allowed[d.Pos.Filename+":"+fmt.Sprint(d.Pos.Line)] {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Pos.Column < diags[j].Pos.Column
	})
	return diags
}

// allowedLines collects the file:line positions carrying a //dnn:allow
// comment, which suppresses any diagnostic reported on that line.
func allowedLines(pkg *Package) map[string]bool {
	allowed := map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//dnn:allow") {
					p := pkg.Fset.Position(c.Pos())
					allowed[p.Filename+":"+fmt.Sprint(p.Line)] = true
				}
			}
		}
	}
	return allowed
}

// hasDirective reports whether a function's doc comment carries the
// given //-style directive (directives are invisible to CommentGroup
// Text, so the raw list is scanned).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}
