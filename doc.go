// Package pbqpdnn reproduces "Optimal DNN Primitive Selection with
// Partitioned Boolean Quadratic Programming" (Anderson & Gregg, CGO
// 2018): a library of 70+ convolution primitives over multiple data
// layouts, a PBQP solver, and a global optimizer that picks a primitive
// per network layer while accounting for data-layout transformation
// costs.
//
// Beyond the paper, the runtime grew a batched, branch-parallel
// execution engine (internal/exec.Engine) over a compiled Program IR
// in which the minibatch is a first-class dimension: batched kernels
// (tall-GEMM im2row/im2col, batch-amortized Winograd), an N-scaled
// static memory plan, a dependency-counting DAG scheduler over a
// worker pool, and a size-keyed buffer arena — verified against the
// sequential reference executor on AlexNet, VGG, GoogleNet and
// ResNet-18 at batch sizes 1, 3 and 8. An online serving layer
// (internal/serve) dispatches dynamically formed minibatches into a
// per-batch-size program cache.
//
// See README.md for the architecture overview and how to run the
// dnnbench command, DESIGN.md for the system inventory and experiment
// index, and EXPERIMENTS.md for the paper-versus-reproduction record.
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation.
package pbqpdnn
