package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/tensor"
)

func TestBatchBuckets(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
	}
	for _, c := range cases {
		if got := batchBuckets(c.max); !reflect.DeepEqual(got, c.want) {
			t.Errorf("batchBuckets(%d) = %v, want %v", c.max, got, c.want)
		}
	}
}

// TestModelEnginesPerBucket: LoadModel pre-compiles one engine per
// batch-size bucket, and EngineFor routes a flush size to the smallest
// covering bucket — never an under-planned program, never a fresh
// compilation on the dispatch path.
func TestModelEnginesPerBucket(t *testing.T) {
	m, err := LoadModel("micronet", Config{
		Threads: 1,
		Batch:   BatchOptions{MaxBatch: 6, MaxWait: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Batcher.Close()

	var got []int
	for _, b := range m.Buckets {
		got = append(got, b.Engine.MaxBatch())
	}
	if want := []int{1, 2, 4, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket engines %v, want %v", got, want)
	}
	if m.Engine() != m.Buckets[0].Engine || m.Engine().MaxBatch() != 1 {
		t.Error("Model.Engine is not the per-image bucket")
	}
	for n, wantBucket := range map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 6, 6: 6, 9: 6} {
		if got := m.EngineFor(n).MaxBatch(); got != wantBucket {
			t.Errorf("EngineFor(%d) planned for %d, want %d", n, got, wantBucket)
		}
	}
}

// TestModelDispatchesThroughBucketEngines drives enough concurrent
// traffic through the batcher to flush at several sizes and checks
// every request is answered correctly — the end-to-end proof that the
// per-batch-size cache serves mixed batch sizes.
func TestModelDispatchesThroughBucketEngines(t *testing.T) {
	m, err := LoadModel("micronet", Config{
		Threads: 1,
		Batch:   BatchOptions{MaxBatch: 4, MaxWait: 2 * time.Millisecond, QueueCap: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Batcher.Close()

	in := tensor.New(tensor.CHW, m.InC, m.InH, m.InW)
	in.FillRandom(3)
	want, err := m.Engine().Run(in)
	if err != nil {
		t.Fatal(err)
	}

	const requests = 24
	var wg sync.WaitGroup
	errc := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := m.Batcher.Infer(context.Background(), in)
			if err != nil {
				errc <- err
				return
			}
			if !tensor.WithinRel(out, want, 1e-4) {
				errc <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	s := m.Metrics.Snapshot()
	if s.Served != requests {
		t.Fatalf("served %d of %d", s.Served, requests)
	}
	// ns/image must be populated for every dispatched batch size.
	for b, count := range s.BatchHist {
		if b == 0 || count == 0 {
			continue
		}
		if s.NsPerImageByBatch[b] <= 0 {
			t.Errorf("batch size %d dispatched %d times but ns_per_image_by_batch is empty", b, count)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "batched output diverges from per-image engine" }

// TestLoadModelSelectsPerBucket: every bucket carries its own plan,
// stamped with the bucket's batch size, and the compiled engine matches.
func TestLoadModelSelectsPerBucket(t *testing.T) {
	m, err := LoadModel("micronet", Config{
		Threads: 1,
		Batch:   BatchOptions{MaxBatch: 4, MaxWait: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Batcher.Close()

	if len(m.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3 (1, 2, 4)", len(m.Buckets))
	}
	for i, b := range m.Buckets {
		wantBatch := []int{1, 2, 4}[i]
		if b.Batch != wantBatch {
			t.Errorf("bucket %d: Batch = %d, want %d", i, b.Batch, wantBatch)
		}
		if b.Plan.Batch != wantBatch {
			t.Errorf("bucket %d: plan selected at batch %d, want %d", i, b.Plan.Batch, wantBatch)
		}
		if b.Engine.MaxBatch() != wantBatch {
			t.Errorf("bucket %d: engine planned for %d, want %d", i, b.Engine.MaxBatch(), wantBatch)
		}
	}
	if m.Plan() != m.Buckets[0].Plan {
		t.Error("Model.Plan is not the batch-1 bucket's plan")
	}
}

// TestRegistryCalibrateOnStart: calibrate-on-start measures the real
// primitives once, persists the table, and a restarted registry reuses
// the persisted file instead of re-profiling.
func TestRegistryCalibrateOnStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calibration.json")
	cfg := Config{
		Threads:       1,
		Calibrate:     true,
		TablePath:     path,
		CalibrateReps: 1,
		CalibrateTopK: 2,
		Batch:         BatchOptions{MaxBatch: 2, MaxWait: time.Millisecond},
	}
	reg, err := NewRegistry([]string{"micronet"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("calibration was not persisted: %v", err)
	}
	tab, err := cost.LoadTable(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2}; !reflect.DeepEqual(tab.Batches, want) {
		t.Errorf("calibrated table batches = %v, want %v", tab.Batches, want)
	}
	if tab.NumEntries() == 0 {
		t.Fatal("calibrated table is empty")
	}

	// Restart: the persisted file must be reused byte for byte (no
	// re-measurement, which would rewrite it with fresh timings).
	reg2, err := NewRegistry([]string{"micronet"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	raw2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("restart rewrote the calibration table; it should reuse the persisted file")
	}

	// The reloaded registry's plans priced against the measured table:
	// every bucket plan must be present and bucket-stamped.
	m, _ := reg2.Get("micronet")
	for i, b := range m.Buckets {
		if b.Plan.Batch != []int{1, 2}[i] {
			t.Errorf("bucket %d plan batch = %d", i, b.Plan.Batch)
		}
	}
	reg2.Close()

	// Restart with a larger batcher limit: the reused table is topped
	// up with the missing batch-4 bucket (measured and merged, not
	// linearly extrapolated) and persisted back.
	cfg.Batch.MaxBatch = 4
	reg3, err := NewRegistry([]string{"micronet"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg3.Close()
	raw3, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tab3, err := cost.LoadTable(bytes.NewReader(raw3))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 4}; !reflect.DeepEqual(tab3.Batches, want) {
		t.Errorf("topped-up table batches = %v, want %v", tab3.Batches, want)
	}
	if tab3.NumEntries() <= tab.NumEntries() {
		t.Error("top-up added no measured entries for the new bucket")
	}
}

// TestModelBucketStats: /stats' per-bucket view — selected primitives
// per conv layer, a positive predicted ns/image, and an observed
// ns/image that fills in once the bucket has served a batch.
func TestModelBucketStats(t *testing.T) {
	m, err := LoadModel("micronet", Config{
		Threads: 1,
		Batch:   BatchOptions{MaxBatch: 2, MaxWait: time.Millisecond, QueueCap: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Batcher.Close()

	in := tensor.New(tensor.CHW, m.InC, m.InH, m.InW)
	in.FillRandom(5)
	if _, err := m.Batcher.Infer(context.Background(), in); err != nil {
		t.Fatal(err)
	}

	bs := m.BucketStats()
	if len(bs) != 2 {
		t.Fatalf("bucket stats = %d entries, want 2", len(bs))
	}
	convLayers := 0
	for _, l := range m.Net.Layers {
		if l.IsConv() {
			convLayers++
		}
	}
	for _, b := range bs {
		if len(b.Primitives) != convLayers {
			t.Errorf("bucket %d: %d primitives reported, want %d", b.Batch, len(b.Primitives), convLayers)
		}
		if b.PredictedNsPerImage <= 0 {
			t.Errorf("bucket %d: predicted ns/image %g", b.Batch, b.PredictedNsPerImage)
		}
	}
	// The singleton flush went through bucket 1: its observed ns/image
	// must be populated.
	if bs[0].ObservedNsPerImage <= 0 {
		t.Errorf("bucket 1 served a request but observed ns/image is %g", bs[0].ObservedNsPerImage)
	}
}
