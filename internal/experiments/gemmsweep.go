package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"pbqpdnn/internal/gemm"
)

// GemmSweep benchmarks the GEMM kernel variants the primitive library
// dispatches to, over a grid of sizes, so the raw-GEMM trajectory is a
// per-commit CI artifact alongside batchsweep/plansweep. Each (kernel,
// size) point is the minimum of `reps` wall-clocked runs — min-of-N is
// the noise-robust statistic for a single-tenant box. Naive is skipped
// above 256 (it alone would dominate the sweep's runtime without
// informing the packed-vs-blocked trend CI tracks).

// GemmSweepPoint is one (kernel, m, n, k) measurement.
type GemmSweepPoint struct {
	Kernel  string
	M, N, K int
	Reps    int
	MinNs   float64
	GFLOPS  float64
}

// gemmSweepKernels enumerates the swept variants. TransB receives the
// same logical B, pre-transposed outside the timed region; ParallelCols
// uses the caller's thread budget.
func gemmSweepKernels(threads int) []struct {
	name string
	run  func(m, n, k int, a, b, bt, c []float32)
} {
	return []struct {
		name string
		run  func(m, n, k int, a, b, bt, c []float32)
	}{
		{"naive", func(m, n, k int, a, b, bt, c []float32) { gemm.Naive(m, n, k, a, b, c) }},
		{"ikj", func(m, n, k int, a, b, bt, c []float32) { gemm.IKJ(m, n, k, a, b, c) }},
		{"blocked", func(m, n, k int, a, b, bt, c []float32) { gemm.Blocked(m, n, k, 0, a, b, c) }},
		{"transb", func(m, n, k int, a, b, bt, c []float32) { gemm.TransB(m, n, k, a, bt, c) }},
		{"packed", func(m, n, k int, a, b, bt, c []float32) { gemm.Packed(m, n, k, a, b, c) }},
		{"parallelcols", func(m, n, k int, a, b, bt, c []float32) {
			gemm.ParallelCols(threads, m, n, k, a, b, c)
		}},
	}
}

// GemmSweep runs the kernel × size grid. Sizes are square (m=n=k=s);
// the conv-shaped panels are covered by plansweep's whole-net runs.
func GemmSweep(sizes []int, threads, reps int) []GemmSweepPoint {
	if reps < 1 {
		reps = 1
	}
	var pts []GemmSweepPoint
	rng := rand.New(rand.NewSource(42))
	for _, s := range sizes {
		m, n, k := s, s, s
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		bt := transposeSlice(k, n, b)
		c := make([]float32, m*n)
		for _, kv := range gemmSweepKernels(threads) {
			if kv.name == "naive" && s > 256 {
				continue
			}
			minNs := 0.0
			for r := 0; r < reps; r++ {
				start := time.Now()
				kv.run(m, n, k, a, b, bt, c)
				ns := float64(time.Since(start).Nanoseconds())
				if r == 0 || ns < minNs {
					minNs = ns
				}
			}
			pts = append(pts, GemmSweepPoint{
				Kernel: kv.name, M: m, N: n, K: k,
				Reps:  reps,
				MinNs: minNs,
				GFLOPS: 2 * float64(m) * float64(n) * float64(k) /
					minNs,
			})
		}
	}
	return pts
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func transposeSlice(rows, cols int, a []float32) []float32 {
	t := make([]float32, len(a))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			t[j*rows+i] = a[i*cols+j]
		}
	}
	return t
}

// FormatGemmSweep renders the sweep as a table with per-size speedup
// of the packed kernel over blocked — the ratio the acceptance
// criterion tracks.
func FormatGemmSweep(pts []GemmSweepPoint) string {
	var sb strings.Builder
	sb.WriteString("== GEMM kernel sweep (square sizes, min-of-reps wall clock) ==\n")
	bySize := map[int][]GemmSweepPoint{}
	var sizes []int
	for _, p := range pts {
		if len(bySize[p.N]) == 0 {
			sizes = append(sizes, p.N)
		}
		bySize[p.N] = append(bySize[p.N], p)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		var blocked, packed float64
		sb.WriteString(fmt.Sprintf("  %d×%d×%d:\n", s, s, s))
		for _, p := range bySize[s] {
			sb.WriteString(fmt.Sprintf("    %-13s %8.2f ms  %6.2f GFLOP/s\n",
				p.Kernel, p.MinNs/1e6, p.GFLOPS))
			switch p.Kernel {
			case "blocked":
				blocked = p.GFLOPS
			case "packed":
				packed = p.GFLOPS
			}
		}
		if blocked > 0 && packed > 0 {
			sb.WriteString(fmt.Sprintf("    packed/blocked: %.2f×\n", packed/blocked))
		}
	}
	return sb.String()
}
