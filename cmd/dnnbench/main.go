// Command dnnbench regenerates the paper's evaluation artifacts: every
// whole-network figure, the absolute-time tables, the qualitative
// family-traits table, the worked PBQP example, the selection maps and
// the §5.8 trend checks.
//
// Usage:
//
//	dnnbench -exp all
//	dnnbench -exp fig6
//	dnnbench -exp table3
//	dnnbench -exp trends
//	dnnbench -exp minibatch -threads 8 -batch 1,4,32
//	dnnbench -exp minibatch -json
//	dnnbench -dump-program -net googlenet -strategy pbqp
//
// The -threads and -batch flags size the batched execution engine the
// minibatch experiment measures; -json switches the minibatch
// experiment to machine-readable output (one record per batch size
// with net, threads, and measured ns/op) so the perf trajectory can be
// tracked across commits. -dump-program compiles the chosen network's
// plan once and prints the executable Program IR — the instruction
// stream the engine runs, with its static memory plan and stats
// (instructions, slots, peak resident bytes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/experiments"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnnbench: ")
	exp := flag.String("exp", "all",
		"experiment: table1, table2, table3, fig2, fig4, fig5, fig6, fig7a, fig7b, solver, sparsity, minibatch, trends, all; "+
			"plus batchsweep, plansweep, fusesweep, gemmsweep and layerprof (excluded from 'all': they execute real workloads, minutes on the full models)")
	threads := flag.Int("threads", 4, "execution thread budget for the minibatch/batchsweep engines")
	batch := flag.String("batch", "1,2,4,8,16", "comma-separated minibatch sizes for the minibatch/batchsweep experiments")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON records (supported by -exp minibatch, batchsweep, plansweep, fusesweep and gemmsweep)")
	sizes := flag.String("sizes", "256,512", "comma-separated square GEMM sizes for -exp gemmsweep")
	dump := flag.Bool("dump-program", false, "compile -net under -strategy and print the Program IR (instructions + memory plan), then exit")
	netName := flag.String("net", "googlenet", "network for -dump-program and -exp batchsweep/plansweep/fusesweep (alexnet, vgg-b/c/d/e, googlenet, resnet-18, smallnet, micronet)")
	model := flag.Bool("model", false, "plansweep: select against the analytic Intel model instead of calibrating measured costs on this host")
	reps := flag.Int("reps", 1, "plansweep: calibration measurement repetitions (best-of); layerprof: profiled engine runs per batch size")
	topK := flag.Int("calibrate-top", 4, "plansweep: measure only the analytic model's k cheapest candidates per layer per batch (0 = all)")
	strategy := flag.String("strategy", "pbqp",
		"selection strategy for -dump-program: pbqp, baseline, local-opt, no-edge-cost, mkldnn, armcl, caffe, direct, im2, kn2, winograd, fft")
	flag.Parse()

	if *dump {
		if err := validateNet(*netName); err != nil {
			log.Fatal(err)
		}
		if err := dumpProgram(*netName, *strategy, *threads); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *exp == "batchsweep" || *exp == "plansweep" || *exp == "fusesweep" || *exp == "layerprof" {
		if err := validateNet(*netName); err != nil {
			log.Fatal(err)
		}
	}
	batches, err := parseBatches(*batch)
	if err != nil {
		log.Fatal(err)
	}
	if *threads < 1 {
		log.Fatalf("-threads must be ≥ 1, got %d", *threads)
	}

	runners := map[string]func() error{
		"table1": func() error {
			fmt.Print(experiments.FormatTable1(experiments.Table1(cost.IntelHaswell)))
			return nil
		},
		"table2": func() error {
			rows, err := experiments.Table2()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable("Table 2: single inference on Intel Core i5-4570 (model ms)", rows))
			return nil
		},
		"table3": func() error {
			rows, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable("Table 3: single inference on ARM Cortex-A57 (model ms)", rows))
			return nil
		},
		"fig2": func() error {
			r := experiments.Figure2()
			fmt.Println("== Figure 2: worked PBQP example ==")
			fmt.Printf("node costs only: selection %v, total %.0f\n", r.NodeOnlySelection, r.NodeOnlyCost)
			fmt.Printf("with edge costs: selection %v, total %.0f\n", r.FullSelection, r.FullCost)
			return nil
		},
		"fig4": func() error {
			intel, arm, err := experiments.Figure4()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFigure4(intel, arm))
			return nil
		},
		"fig5":  figure("Figure 5: single-threaded, Intel Haswell", experiments.Figure5),
		"fig6":  figure("Figure 6: multithreaded, Intel Haswell", experiments.Figure6),
		"fig7a": figure("Figure 7a: single-threaded, ARM Cortex-A57", experiments.Figure7a),
		"fig7b": figure("Figure 7b: multithreaded, ARM Cortex-A57", experiments.Figure7b),
		"solver": func() error {
			ov, err := experiments.SolverOverheads(cost.IntelHaswell, 4)
			if err != nil {
				return err
			}
			fmt.Println("== §5.4 solver overheads ==")
			for n, r := range ov {
				fmt.Printf("  %-10s solve %.2f ms, optimal=%v\n", n, r.SolveMS, r.Optimal)
			}
			return nil
		},
		"sparsity": func() error {
			pts, err := experiments.SparsitySweep()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSparsitySweep(pts))
			return nil
		},
		"minibatch": func() error {
			pts, err := experiments.MinibatchSweepOpts(*threads, batches)
			if err != nil {
				return err
			}
			if *jsonOut {
				return writeBenchJSON(pts, *threads)
			}
			fmt.Print(experiments.FormatMinibatchSweep(pts))
			return nil
		},
		"batchsweep": func() error {
			pts, err := experiments.BatchSweep(*netName, *threads, batches)
			if err != nil {
				return err
			}
			if *jsonOut {
				return writeBatchSweepJSON(pts)
			}
			fmt.Print(experiments.FormatBatchSweep(pts))
			return nil
		},
		"plansweep": func() error {
			o := experiments.PlanSweepOptions{Reps: *reps, TopK: *topK}
			if *model {
				o.Prof = cost.NewModel(cost.IntelHaswell)
			}
			pts, err := experiments.PlanSweep(*netName, *threads, batches, o)
			if err != nil {
				return err
			}
			if *jsonOut {
				return writePlanSweepJSON(pts)
			}
			fmt.Print(experiments.FormatPlanSweep(pts))
			return nil
		},
		"fusesweep": func() error {
			pts, err := experiments.FuseSweep(*netName, *threads, batches)
			if err != nil {
				return err
			}
			if *jsonOut {
				return writeFuseSweepJSON(pts)
			}
			fmt.Print(experiments.FormatFuseSweep(pts))
			return nil
		},
		"layerprof": func() error {
			tables, err := experiments.LayerProf(*netName, *threads, batches, *reps)
			if err != nil {
				return err
			}
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(tables)
			}
			fmt.Print(experiments.FormatLayerProf(tables))
			return nil
		},
		"gemmsweep": func() error {
			ns, err := parseBatches(*sizes)
			if err != nil {
				return fmt.Errorf("-sizes: %v", err)
			}
			pts := experiments.GemmSweep(ns, *threads, *reps)
			if *jsonOut {
				return writeGemmSweepJSON(pts, *threads)
			}
			fmt.Print(experiments.FormatGemmSweep(pts))
			return nil
		},
		"trends": func() error {
			ts, err := experiments.CheckTrends()
			if err != nil {
				return err
			}
			fmt.Println("== §5.6–§5.8 trend checks ==")
			for _, t := range ts {
				status := "PASS"
				if !t.OK {
					status = "FAIL"
				}
				fmt.Printf("  [%s] %-38s %s\n", status, t.Name, t.Note)
			}
			return nil
		},
	}
	order := []string{"table1", "fig2", "fig4", "fig5", "fig6", "fig7a", "fig7b",
		"table2", "table3", "solver", "sparsity", "minibatch", "trends"}

	if *jsonOut && *exp != "minibatch" && *exp != "batchsweep" && *exp != "plansweep" && *exp != "fusesweep" && *exp != "gemmsweep" && *exp != "layerprof" {
		log.Fatalf("-json is supported for -exp minibatch, batchsweep, plansweep, fusesweep, gemmsweep and layerprof (got -exp %s)", *exp)
	}
	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q (have %v, all, batchsweep, plansweep, fusesweep, gemmsweep, layerprof)", *exp, order)
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// benchRecord is one machine-readable measurement: the schema perf
// tracking scripts diff across commits.
type benchRecord struct {
	Benchmark  string  `json:"benchmark"`
	Net        string  `json:"net"`
	Batch      int     `json:"batch"`
	Threads    int     `json:"threads"`
	NsPerOp    float64 `json:"ns_per_op"` // wall ns per image through the batched engine
	TotalNs    float64 `json:"total_ns"`  // wall ns for the whole minibatch
	ModelMSOp  float64 `json:"model_ms_per_image"`
	ModelMSTot float64 `json:"model_ms_total"`
}

// writeBenchJSON emits the minibatch sweep as one JSON array of
// records: benchmark name, net, batch, threads, measured ns/op, plus
// the cost model's predictions for drift comparison.
func writeBenchJSON(pts []experiments.MinibatchPoint, threads int) error {
	recs := make([]benchRecord, len(pts))
	for i, p := range pts {
		recs[i] = benchRecord{
			Benchmark:  "minibatch",
			Net:        "batched-net",
			Batch:      p.Batch,
			Threads:    threads,
			NsPerOp:    p.WallPerImageMS * 1e6,
			TotalNs:    p.WallTotalMS * 1e6,
			ModelMSOp:  p.PerImageMS,
			ModelMSTot: p.TotalMS,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// batchSweepRecord is one machine-readable batched-vs-per-image
// measurement: the schema CI archives per commit so the batching
// speedup is diffable across the project's history.
type batchSweepRecord struct {
	Benchmark       string  `json:"benchmark"`
	Net             string  `json:"net"`
	Batch           int     `json:"batch"`
	Threads         int     `json:"threads"`
	NsPerOp         float64 `json:"ns_per_op"`           // batched engine, wall ns per image
	PerImageNsPerOp float64 `json:"per_image_ns_per_op"` // batch-1 engine looped, wall ns per image
	BatchedSpeedupX float64 `json:"batched_speedup_x"`
	BatchedTotalNs  float64 `json:"batched_total_ns"`
	PerImageTotalNs float64 `json:"per_image_total_ns"`
}

// writeBatchSweepJSON emits the batched-vs-per-image sweep as one JSON
// array of records.
func writeBatchSweepJSON(pts []experiments.BatchSweepPoint) error {
	recs := make([]batchSweepRecord, len(pts))
	for i, p := range pts {
		recs[i] = batchSweepRecord{
			Benchmark:       "batchsweep",
			Net:             p.Net,
			Batch:           p.Batch,
			Threads:         p.Threads,
			NsPerOp:         p.BatchedNsPerImage,
			PerImageNsPerOp: p.PerImageNsPerImage,
			BatchedSpeedupX: p.SpeedupX,
			BatchedTotalNs:  p.BatchedNsPerImage * float64(p.Batch),
			PerImageTotalNs: p.PerImageNsPerImage * float64(p.Batch),
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// planSweepRecord is one machine-readable plan-vs-plan measurement:
// per batch size, the layers that switch primitive under batch-aware
// selection and the measured per-image speedup of the batch-N plan
// over the batch-1 plan, both executed by the batched engine. CI
// archives these records per commit.
type planSweepRecord struct {
	Benchmark            string                   `json:"benchmark"`
	Net                  string                   `json:"net"`
	Batch                int                      `json:"batch"`
	Threads              int                      `json:"threads"`
	Calibrated           bool                     `json:"calibrated"`
	Switches             []experiments.PlanSwitch `json:"switches"`
	Batch1PlanNsPerImage float64                  `json:"batch1_plan_ns_per_image"`
	BatchPlanNsPerImage  float64                  `json:"batchn_plan_ns_per_image"`
	SpeedupX             float64                  `json:"batchn_plan_speedup_x"`
	PredictedBatch1MS    float64                  `json:"predicted_batch1_ms_per_image"`
	PredictedBatchMS     float64                  `json:"predicted_batchn_ms_per_image"`
}

// writePlanSweepJSON emits the plan sweep as one JSON array of records.
func writePlanSweepJSON(pts []experiments.PlanSweepPoint) error {
	recs := make([]planSweepRecord, len(pts))
	for i, p := range pts {
		recs[i] = planSweepRecord{
			Benchmark:            "plansweep",
			Net:                  p.Net,
			Batch:                p.Batch,
			Threads:              p.Threads,
			Calibrated:           p.Calibrated,
			Switches:             p.Switches,
			Batch1PlanNsPerImage: p.Batch1PlanNsPerImage,
			BatchPlanNsPerImage:  p.BatchPlanNsPerImage,
			SpeedupX:             p.SpeedupX,
			PredictedBatch1MS:    p.PredictedBatch1MS,
			PredictedBatchMS:     p.PredictedBatchMS,
		}
		if recs[i].Switches == nil {
			recs[i].Switches = []experiments.PlanSwitch{}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// fuseSweepRecord is one machine-readable fused-vs-unfused
// measurement: the same batch-N plan compiled with and without the
// fusion pass, both executed by the batched engine. CI archives these
// records per commit so the fusion win (and the program-shape deltas
// behind it) is diffable across the project's history.
type fuseSweepRecord struct {
	Benchmark           string  `json:"benchmark"`
	Net                 string  `json:"net"`
	Batch               int     `json:"batch"`
	Threads             int     `json:"threads"`
	NsPerOp             float64 `json:"ns_per_op"` // fused engine, wall ns per image
	UnfusedNsPerOp      float64 `json:"unfused_ns_per_op"`
	FusedSpeedupX       float64 `json:"fused_speedup_x"`
	Instructions        int     `json:"instructions"`
	UnfusedInstructions int     `json:"unfused_instructions"`
	FusedEpilogues      int     `json:"fused_epilogues"`
	FusedConversions    int     `json:"fused_conversions"`
	PeakBytes           int64   `json:"peak_bytes"`
	UnfusedPeakBytes    int64   `json:"unfused_peak_bytes"`
}

// writeFuseSweepJSON emits the fusion sweep as one JSON array of
// records.
func writeFuseSweepJSON(pts []experiments.FuseSweepPoint) error {
	recs := make([]fuseSweepRecord, len(pts))
	for i, p := range pts {
		recs[i] = fuseSweepRecord{
			Benchmark:           "fusesweep",
			Net:                 p.Net,
			Batch:               p.Batch,
			Threads:             p.Threads,
			NsPerOp:             p.FusedNsPerImage,
			UnfusedNsPerOp:      p.UnfusedNsPerImage,
			FusedSpeedupX:       p.SpeedupX,
			Instructions:        p.Instructions,
			UnfusedInstructions: p.UnfusedInstructions,
			FusedEpilogues:      p.FusedEpilogues,
			FusedConversions:    p.FusedConversions,
			PeakBytes:           p.PeakBytes,
			UnfusedPeakBytes:    p.UnfusedPeakBytes,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// gemmSweepRecord is one machine-readable raw-GEMM measurement:
// kernel × microkernel variant × square size, min-of-reps wall clock.
// Variant is "avx2" or "go" for the packed family (which dispatches
// through the SIMD switch) and "go" for the always-pure-Go kernels.
// CI archives these per commit — from both the SIMD and purego legs —
// so each variant's GFLOP/s trajectory (and the avx2/go ratio) is
// diffable across the project's history.
type gemmSweepRecord struct {
	Benchmark string  `json:"benchmark"`
	Kernel    string  `json:"kernel"`
	Variant   string  `json:"variant"`
	M         int     `json:"m"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Threads   int     `json:"threads"`
	Reps      int     `json:"reps"`
	MinNs     float64 `json:"min_ns"`
	GFLOPS    float64 `json:"gflops"`
}

// writeGemmSweepJSON emits the GEMM sweep as one JSON array of records.
func writeGemmSweepJSON(pts []experiments.GemmSweepPoint, threads int) error {
	recs := make([]gemmSweepRecord, len(pts))
	for i, p := range pts {
		recs[i] = gemmSweepRecord{
			Benchmark: "gemmsweep",
			Kernel:    p.Kernel,
			Variant:   p.Variant,
			M:         p.M, N: p.N, K: p.K,
			Threads: threads,
			Reps:    p.Reps,
			MinNs:   p.MinNs,
			GFLOPS:  p.GFLOPS,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// dumpProgram compiles one network's plan under the chosen strategy
// and prints the executable Program IR with its static memory plan.
func dumpProgram(netName, strategy string, threads int) error {
	g, err := models.Build(netName)
	if err != nil {
		return err
	}
	opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: threads}
	builders := map[string]func() (*selector.Plan, error){
		"pbqp":         func() (*selector.Plan, error) { return selector.Select(g, opts) },
		"baseline":     func() (*selector.Plan, error) { return selector.Baseline(g, opts) },
		"local-opt":    func() (*selector.Plan, error) { return selector.LocalOptimal(g, tensor.CHW, opts) },
		"no-edge-cost": func() (*selector.Plan, error) { return selector.NoEdgeCost(g, opts) },
		"mkldnn":       func() (*selector.Plan, error) { return selector.MKLDNNProxy(g, opts) },
		"armcl":        func() (*selector.Plan, error) { return selector.ARMCLProxy(g, opts) },
		"caffe":        func() (*selector.Plan, error) { return selector.CaffeProxy(g, opts) },
	}
	families := map[string]conv.Family{
		"direct": conv.FamilyDirect, "im2": conv.FamilyIm2, "kn2": conv.FamilyKn2,
		"winograd": conv.FamilyWinograd, "fft": conv.FamilyFFT,
	}
	build, ok := builders[strategy]
	if !ok {
		fam, okf := families[strategy]
		if !okf {
			names := make([]string, 0, len(builders)+len(families))
			for n := range builders {
				names = append(names, n)
			}
			for n := range families {
				names = append(names, n)
			}
			sort.Strings(names)
			return fmt.Errorf("unknown strategy %q (have %s)", strategy, strings.Join(names, ", "))
		}
		build = func() (*selector.Plan, error) { return selector.FamilyBest(g, fam, opts) }
	}
	plan, err := build()
	if err != nil {
		return err
	}
	prog, err := program.Compile(plan)
	if err != nil {
		return err
	}
	fmt.Print(prog.Source())
	return nil
}

// validateNet rejects unknown -net values up front, listing every
// buildable network so a typo fails before minutes of sweeping.
func validateNet(name string) error {
	known := append(models.Names(), models.DemoNames()...)
	for _, n := range known {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown -net %q (have %s)", name, strings.Join(known, ", "))
}

// parseBatches parses the -batch flag's comma-separated size list.
func parseBatches(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-batch: %q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-batch: empty size list")
	}
	return out, nil
}

func figure(title string, gen func() ([]*experiments.NetworkResult, error)) func() error {
	return func() error {
		nrs, err := gen()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure(title, nrs))
		return nil
	}
}
