package exec

import (
	"strings"
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// tinyDAG builds a small inception-style DAG that exercises conv, relu,
// both pools, LRN, concat, fc and softmax at testable sizes.
func tinyDAG() *dnn.Graph {
	b, x := dnn.NewBuilder("tiny-dag", 3, 20, 20)
	x = b.Conv(x, "stem", 8, 3, 1, 1)
	x = b.ReLU(x, "stem-relu")
	x = b.LRN(x, "stem-lrn")
	x = b.MaxPool(x, "pool1", 2, 2, 0) // 10×10

	b1 := b.Conv(x, "b1/1x1", 4, 1, 1, 0)
	b2 := b.Conv(x, "b2/reduce", 4, 1, 1, 0)
	b2 = b.Conv(b2, "b2/3x3", 8, 3, 1, 1)
	b3 := b.Conv(x, "b3/5x5", 4, 5, 1, 2)
	b4 := b.MaxPool(x, "b4/pool", 3, 1, 1)
	b4 = b.Conv(b4, "b4/proj", 4, 1, 1, 0)
	x = b.Concat("cat", b1, b2, b3, b4) // 20 channels

	x = b.AvgPool(x, "gap", 10, 1, 0) // 1×1
	x = b.FC(x, "fc", 10)
	x = b.Softmax(x, "prob")
	return func() *dnn.Graph { return b.Graph() }()
}

func tinyChain() *dnn.Graph {
	b, x := dnn.NewBuilder("tiny-chain", 4, 16, 16)
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.Conv(x, "c2", 8, 5, 1, 2)
	x = b.MaxPool(x, "p1", 2, 2, 0)
	x = b.Conv(x, "c3", 6, 3, 2, 1) // strided
	x = b.Softmax(x, "sm")
	return func() *dnn.Graph { return b.Graph() }()
}

func runBoth(t *testing.T, net *dnn.Graph, opts selector.Options) (*tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	w := NewWeights(net)
	in := tensor.New(tensor.CHW, net.Layers[0].OutC, net.Layers[0].OutH, net.Layers[0].OutW)
	in.FillRandom(99)
	plan, err := selector.Select(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(plan, in.Clone(), w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(net, in.Clone(), w)
	if err != nil {
		t.Fatal(err)
	}
	return got, want
}

// TestOptimizedPlanMatchesReference is the end-to-end soundness gate:
// whatever primitives and layout chains the optimizer picks, the
// network must compute the same function as the textbook reference.
func TestOptimizedPlanMatchesReference(t *testing.T) {
	for _, net := range []*dnn.Graph{tinyChain(), tinyDAG()} {
		for _, m := range cost.Machines() {
			for _, threads := range []int{1, 4} {
				got, want := runBoth(t, net, selector.Options{Prof: cost.NewModel(m), Threads: threads})
				if !tensor.AlmostEqual(got, want, 1e-3) {
					t.Errorf("%s on %s (threads=%d): output diverges by %g",
						net.Name, m.Name, threads, tensor.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

// TestAllStrategiesComputeSameFunction runs every evaluation strategy
// end to end on the DAG network.
func TestAllStrategiesComputeSameFunction(t *testing.T) {
	net := tinyDAG()
	opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 2}
	w := NewWeights(net)
	in := tensor.New(tensor.CHW, 3, 20, 20)
	in.FillRandom(5)
	want, err := Reference(net, in.Clone(), w)
	if err != nil {
		t.Fatal(err)
	}
	plans := map[string]func() (*selector.Plan, error){
		"pbqp":      func() (*selector.Plan, error) { return selector.Select(net, opts) },
		"winograd":  func() (*selector.Plan, error) { return selector.FamilyBest(net, conv.FamilyWinograd, opts) },
		"im2":       func() (*selector.Plan, error) { return selector.FamilyBest(net, conv.FamilyIm2, opts) },
		"kn2":       func() (*selector.Plan, error) { return selector.FamilyBest(net, conv.FamilyKn2, opts) },
		"direct":    func() (*selector.Plan, error) { return selector.FamilyBest(net, conv.FamilyDirect, opts) },
		"fft":       func() (*selector.Plan, error) { return selector.FamilyBest(net, conv.FamilyFFT, opts) },
		"local-opt": func() (*selector.Plan, error) { return selector.LocalOptimal(net, tensor.CHW, opts) },
		"no-edge":   func() (*selector.Plan, error) { return selector.NoEdgeCost(net, opts) },
		"caffe":     func() (*selector.Plan, error) { return selector.CaffeProxy(net, opts) },
		"mkldnn":    func() (*selector.Plan, error) { return selector.MKLDNNProxy(net, opts) },
		"armcl":     func() (*selector.Plan, error) { return selector.ARMCLProxy(net, opts) },
	}
	for name, mk := range plans {
		plan, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Run(plan, in.Clone(), w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tensor.AlmostEqual(got, want, 1e-3) {
			t.Errorf("%s: output diverges by %g", name, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestSoftmaxOutputIsDistribution(t *testing.T) {
	net := tinyChain()
	w := NewWeights(net)
	in := tensor.New(tensor.CHW, 4, 16, 16)
	in.FillRandom(1)
	out, err := Reference(net, in, w)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < out.H; h++ {
		for x := 0; x < out.W; x++ {
			var sum float64
			for c := 0; c < out.C; c++ {
				v := out.At(c, h, x)
				if v < 0 || v > 1 {
					t.Fatalf("softmax value %v out of range", v)
				}
				sum += float64(v)
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("softmax column sums to %v", sum)
			}
		}
	}
}

func TestRunRejectsWrongInput(t *testing.T) {
	net := tinyChain()
	w := NewWeights(net)
	plan, err := selector.Select(net, selector.Options{Prof: cost.NewModel(cost.IntelHaswell)})
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(tensor.CHW, 3, 16, 16) // wrong channel count
	if _, err := Run(plan, bad, w); err == nil {
		t.Error("expected error for mismatched input")
	}
}

func TestWeightsDeterministic(t *testing.T) {
	net := tinyChain()
	a, b := NewWeights(net), NewWeights(net)
	for id, k := range a.Kernels {
		for i := range k.Data {
			if k.Data[i] != b.Kernels[id].Data[i] {
				t.Fatal("kernel weights not deterministic")
			}
		}
	}
}

func TestGenerateProgram(t *testing.T) {
	net := tinyDAG()
	plan, err := selector.Select(net, selector.Options{Prof: cost.NewModel(cost.CortexA57), Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := GenerateProgram(plan)
	if err != nil {
		t.Fatal(err)
	}
	// The stem conv fuses its relu, so the value carries the relu's name
	// and the call site renders the epilogue marker.
	for _, want := range []string{"// program for tiny-dag", "stem-relu =", "+relu(", "cat = concat", "prob = softmax"} {
		if !strings.Contains(prog, want) {
			t.Errorf("program missing %q:\n%s", want, prog)
		}
	}
	// Every selected primitive appears in the emitted program, fused or
	// not.
	for _, p := range plan.Primitives {
		if !strings.Contains(prog, p.Name+"(") && !strings.Contains(prog, p.Name+"+") {
			t.Errorf("program does not call %s", p.Name)
		}
	}
}

func TestAvgPoolCounts(t *testing.T) {
	in := tensor.New(tensor.CHW, 1, 4, 4)
	for i := range in.Data {
		in.Data[i] = 2
	}
	l := &dnn.Layer{OutC: 1, OutH: 2, OutW: 2, PoolK: 2, PoolStride: 2}
	out := pool(in, l, false)
	for _, v := range out.Data {
		if v != 2 {
			t.Errorf("avg of constant 2 = %v", v)
		}
	}
	outMax := pool(in, l, true)
	for _, v := range outMax.Data {
		if v != 2 {
			t.Errorf("max of constant 2 = %v", v)
		}
	}
}
