package verify

import (
	"math"
	"testing"

	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/tensor"
)

// fuzzBase is one compiled program plus everything needed to execute
// its mutants: the weights and a deterministic input set.
type fuzzBase struct {
	name   string
	prog   *program.Program
	w      *exec.Weights
	inputs []*tensor.Tensor
}

func fuzzBases(t testing.TB) []*fuzzBase {
	var bases []*fuzzBase
	for _, cfg := range []struct {
		model string
		batch int
	}{
		{"micronet", 1},
		{"micronet", 3},
		{"smallnet", 3},
		// Residual adds fuse into conv+add+relu instructions here, so
		// the fusion fields are in the mutation surface.
		{"resnet-18", 3},
	} {
		p := compileFor(t, cfg.model, "pbqp", cfg.batch)
		net, err := models.Build(cfg.model)
		if err != nil {
			t.Fatal(err)
		}
		b := &fuzzBase{name: cfg.model, prog: p, w: exec.NewWeights(net)}
		il := net.Layers[0]
		for i := 0; i < cfg.batch; i++ {
			in := tensor.New(tensor.CHW, il.OutC, il.OutH, il.OutW)
			in.FillRandom(int64(42 + i))
			b.inputs = append(b.inputs, in)
		}
		bases = append(bases, b)
	}
	// The crafted absorbed-conversion program: the only program shape
	// with a populated CvtIn (real plans select layout-consistent
	// chains), so conversion-absorption mutants get a live target.
	cp := cvtInProgram(t, 3)
	cnet := cp.Plan.Net
	cb := &fuzzBase{name: "cvtin", prog: cp, w: exec.NewWeights(cnet)}
	il := cnet.Layers[0]
	for i := 0; i < 3; i++ {
		in := tensor.New(tensor.CHW, il.OutC, il.OutH, il.OutW)
		in.FillRandom(int64(99 + i))
		cb.inputs = append(cb.inputs, in)
	}
	bases = append(bases, cb)
	return bases
}

// applyMutations decodes the fuzz input as a sequence of 4-byte
// (opcode, a, b, c) corruption ops over the cloned program. Every op is
// total — arithmetic is reduced modulo the live sizes — so arbitrary
// bytes always decode to some mutation.
func applyMutations(q *program.Program, data []byte) {
	n := len(q.Instrs)
	for len(data) >= 4 {
		op, a, b, c := data[0], int(data[1]), int(data[2]), int(data[3])
		data = data[4:]
		ins := &q.Instrs[a%n]
		switch op % 10 {
		case 0: // move or unslot a value
			ins.Slot = b%(len(q.SlotCap)+1) - 1
		case 1: // flip donor / alias bits
			ins.Donor = b%3 - 1
			ins.Alias = c%2 == 1
		case 2: // resize a slot
			if len(q.SlotCap) > 0 {
				s := a % len(q.SlotCap)
				q.SlotCap[s] = q.SlotCap[s] * (b + 1) / 16
			}
		case 3: // re-declare the batch
			q.Batch = 1 + b%8
		case 4: // rewire an argument
			if len(ins.Args) > 0 && ins.ID > 0 {
				ins.Args[b%len(ins.Args)] = c % ins.ID
			}
		case 5: // lie about the produced shape
			ins.C = 1 + b%64
		case 6: // corrupt scheduler metadata
			if c%2 == 0 {
				ins.NumDeps = b % 4
			} else if len(ins.Succs) > 0 {
				ins.Succs = ins.Succs[:len(ins.Succs)-1]
			}
		case 7: // re-declare the layout
			ins.Layout = tensor.Layout(b % 8)
		case 8: // corrupt the fusion epilogue enum
			ins.Epi = gemm.Epilogue(b % 6)
		case 9: // drop a fused layer or the absorbed conversion
			if len(ins.EpiLayers) > 0 && c%2 == 0 {
				ins.EpiLayers = ins.EpiLayers[:len(ins.EpiLayers)-1]
			} else {
				ins.CvtIn = nil
			}
		}
	}
}

// FuzzVerifyProgram is the verifier's soundness fuzz: no mutated
// program may be accepted by the verifier yet fault the engine. A
// mutant the verifier rejects is fine (that is the verifier working); a
// mutant it accepts must construct an engine, execute the micronet/
// smallnet inputs without panicking or erroring, and produce finite
// outputs.
func FuzzVerifyProgram(f *testing.F) {
	bases := fuzzBases(f)

	f.Add([]byte{})
	f.Add([]byte{0, 6, 2, 0})             // unslot a value
	f.Add([]byte{1, 5, 1, 0})             // fabricate a donor
	f.Add([]byte{2, 3, 1, 0})             // shrink a slot
	f.Add([]byte{3, 0, 4, 0})             // re-declare the batch
	f.Add([]byte{4, 9, 0, 3})             // rewire an argument
	f.Add([]byte{5, 7, 9, 0})             // lie about a shape
	f.Add([]byte{6, 2, 1, 0})             // corrupt a dep count
	f.Add([]byte{7, 4, 3, 0})             // re-declare a layout
	f.Add([]byte{8, 3, 2, 0})             // corrupt an epilogue enum
	f.Add([]byte{9, 2, 0, 0})             // drop a fused layer
	f.Add([]byte{9, 1, 0, 1})             // drop an absorbed conversion
	f.Add([]byte{3, 0, 2, 0, 0, 1, 0, 0}) // compound: rebatch then unslot

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, base := range bases {
			q := base.prog.Clone()
			applyMutations(q, data)
			if err := Program(q); err != nil {
				continue // rejected: the verifier did its job
			}
			runAccepted(t, base, q, data)
		}
	})
}

// runAccepted executes a verifier-accepted mutant and fails the fuzz on
// any engine fault: construction error, run error, panic, or non-finite
// output.
func runAccepted(t *testing.T, base *fuzzBase, q *program.Program, data []byte) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: accepted mutant %v panicked the engine: %v", base.name, data, r)
		}
	}()
	e, err := exec.NewEngineFromProgram(q, base.w)
	if err != nil {
		t.Fatalf("%s: accepted mutant %v rejected by engine construction: %v", base.name, data, err)
	}
	inputs := base.inputs
	// The mutant may have legally re-declared the batch (a batched
	// program's structure is N-agnostic for N > 1); feed it exactly its
	// declared batch.
	for len(inputs) < q.Batch {
		inputs = append(inputs, base.inputs[len(inputs)%len(base.inputs)])
	}
	inputs = inputs[:q.Batch]
	outs, err := e.RunBatch(inputs)
	if err != nil {
		t.Fatalf("%s: accepted mutant %v faulted the engine: %v", base.name, data, err)
	}
	if len(outs) != len(inputs) {
		t.Fatalf("%s: accepted mutant %v produced %d outputs for %d inputs", base.name, data, len(outs), len(inputs))
	}
	for i, out := range outs {
		for _, v := range out.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: accepted mutant %v produced non-finite output in image %d", base.name, data, i)
			}
		}
	}
}
