// Package exec runs a legalized selection plan on real tensors: the
// runtime counterpart of the paper's simple code generator (§5.2),
// which mapped PBQP solutions to calls into the primitive library. It
// also implements the non-convolution layer operators (pooling, ReLU,
// LRN, concat, FC, softmax) so whole networks execute end to end, and a
// reference executor used to verify that optimized plans compute the
// same function as the textbook network.
package exec

import (
	"fmt"
	"math"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// Weights holds the deterministic random parameters of a network.
type Weights struct {
	Kernels map[int]*conv.Kernel // conv layer id → kernel tensor
	FC      map[int][]float32    // fc layer id → out×in row-major matrix
}

// NewWeights fabricates deterministic weights for every parametric
// layer (seeded by layer id), standing in for a trained model — layer
// runtime does not depend on weight values (§2.2).
func NewWeights(net *dnn.Graph) *Weights {
	w := &Weights{Kernels: map[int]*conv.Kernel{}, FC: map[int][]float32{}}
	for _, l := range net.Layers {
		switch {
		case l.IsConv():
			k := conv.NewKernel(l.Conv.M, l.Conv.C, l.Conv.K)
			if l.Conv.Sparsity > 0 {
				k.FillSparse(int64(l.ID), l.Conv.Sparsity)
			} else {
				k.FillRandom(int64(l.ID))
			}
			w.Kernels[l.ID] = k
		case l.Kind == dnn.KindFC:
			in := inputShapeOf(net, l)
			mat := make([]float32, l.FCOut*in)
			fillRandom(mat, int64(l.ID))
			w.FC[l.ID] = mat
		}
	}
	return w
}

func inputShapeOf(net *dnn.Graph, l *dnn.Layer) int {
	p := net.Layers[net.Preds(l.ID)[0]]
	return p.OutC * p.OutH * p.OutW
}

func fillRandom(dst []float32, seed int64) {
	// xorshift-style deterministic fill, scaled to [-0.1, 0.1) to keep
	// deep activations bounded.
	x := uint64(seed)*2654435761 + 1
	for i := range dst {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		dst[i] = (float32(x%2000)/1000 - 1) * 0.1
	}
}

// Run executes the plan on the given input (which must match the
// network's input shape; its layout is converted as needed). It returns
// the network output tensor.
//
// No-alias contract: the returned tensor — and every intermediate Run
// produces — never shares backing storage with the caller's input.
// Identity-shaped layers (dropout, and an input layer whose layout
// already matches the plan) copy rather than alias, so mutating the
// returned output can never corrupt caller-owned tensors, and Run never
// mutates its input. RunBatch and Engine honor the same contract.
func Run(plan *selector.Plan, input *tensor.Tensor, w *Weights) (*tensor.Tensor, error) {
	net := plan.Net
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	outs := make(map[int]*tensor.Tensor, net.NumLayers())

	// fetch returns pred's output converted along the plan's legalized
	// chain for edge (pred → id).
	fetch := func(pred, id int) *tensor.Tensor {
		tns := outs[pred]
		for _, tr := range plan.Conversions[[2]int{pred, id}] {
			tns = tr.Run(tns)
		}
		return tns
	}

	var last *tensor.Tensor
	for _, id := range order {
		l := net.Layers[id]
		var out *tensor.Tensor
		switch l.Kind {
		case dnn.KindInput:
			if input.C != l.OutC || input.H != l.OutH || input.W != l.OutW {
				return nil, fmt.Errorf("exec: input %s does not match network input %d×%d×%d",
					input, l.OutC, l.OutH, l.OutW)
			}
			if input.Layout != plan.Layouts[id] {
				out = tensor.Convert(input, plan.Layouts[id])
			} else {
				// Copy-on-identity: downstream tensors must never alias
				// the caller's input.
				out = input.Clone()
			}
		case dnn.KindConv:
			in := fetch(net.Preds(id)[0], id)
			p := plan.Primitives[id]
			if in.Layout != p.In {
				return nil, fmt.Errorf("exec: layer %q: got %s input, primitive %s wants %s",
					l.Name, in.Layout, p.Name, p.In)
			}
			out = p.Run(in, w.Kernels[id], l.Conv, plan.Threads)
		case dnn.KindReLU:
			out = relu(fetch(net.Preds(id)[0], id))
		case dnn.KindMaxPool:
			out = pool(fetch(net.Preds(id)[0], id), l, true)
		case dnn.KindAvgPool:
			out = pool(fetch(net.Preds(id)[0], id), l, false)
		case dnn.KindLRN:
			out = lrn(fetch(net.Preds(id)[0], id))
		case dnn.KindConcat:
			ins := make([]*tensor.Tensor, 0, len(net.Preds(id)))
			for _, p := range net.Preds(id) {
				ins = append(ins, fetch(p, id))
			}
			out = concat(ins, plan.Layouts[id])
		case dnn.KindFC:
			out = fc(fetch(net.Preds(id)[0], id), w.FC[id], l.FCOut)
		case dnn.KindDropout:
			// Inference identity, but copy-on-identity: aliasing the
			// predecessor's tensor would let a mutation of this layer's
			// output corrupt it (and, transitively, the caller's data).
			out = fetch(net.Preds(id)[0], id).Clone()
		case dnn.KindAdd:
			ins := make([]*tensor.Tensor, 0, len(net.Preds(id)))
			for _, p := range net.Preds(id) {
				ins = append(ins, fetch(p, id))
			}
			out = add(ins, plan.Layouts[id])
		case dnn.KindSoftmax:
			out = softmax(fetch(net.Preds(id)[0], id))
		default:
			return nil, fmt.Errorf("exec: unsupported layer kind %s", l.Kind)
		}
		if out.C != l.OutC || out.H != l.OutH || out.W != l.OutW {
			return nil, fmt.Errorf("exec: layer %q produced %s, want %d×%d×%d",
				l.Name, out, l.OutC, l.OutH, l.OutW)
		}
		outs[id] = out
		last = out
	}
	return last, nil
}

// Reference executes the network with the textbook algorithm in the
// canonical layout — the correctness oracle for optimized plans.
func Reference(net *dnn.Graph, input *tensor.Tensor, w *Weights) (*tensor.Tensor, error) {
	plan, err := selector.Baseline(net, selector.Options{Prof: zeroProfiler{}})
	if err != nil {
		return nil, err
	}
	return Run(plan, input, w)
}

// zeroProfiler satisfies cost.Profiler for plan construction when only
// structure (not cost) matters.
type zeroProfiler struct{}

func (zeroProfiler) Primitive(*conv.Primitive, conv.Scenario, int) float64 { return 1 }
func (zeroProfiler) Transform(tensor.Transform, int, int, int) float64     { return 1 }

// --- layer operators (layout-agnostic via logical indexing) ---

func relu(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

func pool(in *tensor.Tensor, l *dnn.Layer, isMax bool) *tensor.Tensor {
	out := tensor.New(in.Layout, l.OutC, l.OutH, l.OutW)
	for c := 0; c < l.OutC; c++ {
		for y := 0; y < l.OutH; y++ {
			for x := 0; x < l.OutW; x++ {
				h0 := y*l.PoolStride - l.PoolPad
				w0 := x*l.PoolStride - l.PoolPad
				var acc float32
				if isMax {
					acc = float32(math.Inf(-1))
				}
				n := 0
				for dy := 0; dy < l.PoolK; dy++ {
					for dx := 0; dx < l.PoolK; dx++ {
						hy, wx := h0+dy, w0+dx
						if hy < 0 || hy >= in.H || wx < 0 || wx >= in.W {
							continue
						}
						v := in.At(c, hy, wx)
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						n++
					}
				}
				if !isMax && n > 0 {
					acc /= float32(n)
				}
				out.Set(c, y, x, acc)
			}
		}
	}
	return out
}

// lrn implements Caffe's across-channel local response normalization
// with the standard AlexNet parameters (local_size=5, α=1e-4, β=0.75).
func lrn(in *tensor.Tensor) *tensor.Tensor {
	const (
		size  = 5
		alpha = 1e-4
		beta  = 0.75
	)
	out := tensor.New(in.Layout, in.C, in.H, in.W)
	half := size / 2
	for h := 0; h < in.H; h++ {
		for w := 0; w < in.W; w++ {
			for c := 0; c < in.C; c++ {
				var sum float64
				for d := -half; d <= half; d++ {
					if cc := c + d; cc >= 0 && cc < in.C {
						v := float64(in.At(cc, h, w))
						sum += v * v
					}
				}
				scale := math.Pow(1+alpha/size*sum, beta)
				out.Set(c, h, w, float32(float64(in.At(c, h, w))/scale))
			}
		}
	}
	return out
}

func concat(ins []*tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	totalC := 0
	for _, t := range ins {
		totalC += t.C
	}
	out := tensor.New(layout, totalC, ins[0].H, ins[0].W)
	base := 0
	for _, t := range ins {
		for c := 0; c < t.C; c++ {
			for h := 0; h < t.H; h++ {
				for w := 0; w < t.W; w++ {
					out.Set(base+c, h, w, t.At(c, h, w))
				}
			}
		}
		base += t.C
	}
	return out
}

// add sums the inputs elementwise (residual shortcut junction).
func add(ins []*tensor.Tensor, layout tensor.Layout) *tensor.Tensor {
	out := tensor.New(layout, ins[0].C, ins[0].H, ins[0].W)
	for c := 0; c < out.C; c++ {
		for h := 0; h < out.H; h++ {
			for w := 0; w < out.W; w++ {
				var acc float32
				for _, t := range ins {
					acc += t.At(c, h, w)
				}
				out.Set(c, h, w, acc)
			}
		}
	}
	return out
}

// fc flattens the input in logical CHW order and applies a dense layer.
func fc(in *tensor.Tensor, mat []float32, outN int) *tensor.Tensor {
	inN := in.C * in.H * in.W
	flat := make([]float32, inN)
	i := 0
	for c := 0; c < in.C; c++ {
		for h := 0; h < in.H; h++ {
			for w := 0; w < in.W; w++ {
				flat[i] = in.At(c, h, w)
				i++
			}
		}
	}
	out := tensor.New(in.Layout, outN, 1, 1)
	for o := 0; o < outN; o++ {
		var acc float32
		row := mat[o*inN : o*inN+inN]
		for j, v := range flat {
			acc += v * row[j]
		}
		out.Set(o, 0, 0, acc)
	}
	return out
}

func softmax(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Layout, in.C, in.H, in.W)
	for h := 0; h < in.H; h++ {
		for w := 0; w < in.W; w++ {
			max := math.Inf(-1)
			for c := 0; c < in.C; c++ {
				if v := float64(in.At(c, h, w)); v > max {
					max = v
				}
			}
			var sum float64
			for c := 0; c < in.C; c++ {
				sum += math.Exp(float64(in.At(c, h, w)) - max)
			}
			for c := 0; c < in.C; c++ {
				out.Set(c, h, w, float32(math.Exp(float64(in.At(c, h, w))-max)/sum))
			}
		}
	}
	return out
}
