package gemm

import (
	"math/rand"
	"sync"
	"testing"
)

// packedDims is the dimension sweep for the packed-kernel equivalence
// tests: everything around the microkernel's k-unroll of 4 (1..5,
// 2·4±1), small primes, a zero size, and shapes that cross the packKC
// and packNC block boundaries so ragged final blocks are exercised.
var packedDims = []int{0, 1, 2, 3, 4, 5, 7, 9, 11, 13, 31}

// forEachVariant runs fn once per microkernel variant runnable in this
// process, forcing dispatch to that variant for the duration — on a
// SIMD-capable box every packed-kernel contract is checked against
// both the assembly and the pure-Go microkernel; on a purego build (or
// non-amd64) only "go" exists and the SIMD leg simply isn't listed.
func forEachVariant(t *testing.T, fn func(t *testing.T)) {
	for _, v := range PackedVariants() {
		t.Run("variant="+v, func(t *testing.T) {
			prev := SetSIMD(v == "avx2")
			defer SetSIMD(prev)
			fn(t)
		})
	}
}

// TestPackedEquivalence sweeps the packed kernel (overwrite, accumulate
// and transposed-B entries) against Naive over the full small-dimension
// cross product, including zero sizes and ragged edges — under each
// microkernel variant.
func TestPackedEquivalence(t *testing.T) {
	forEachVariant(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for _, m := range packedDims {
			for _, n := range packedDims {
				for _, k := range packedDims {
					checkPackedShape(t, rng, m, n, k)
				}
			}
		}
	})
}

// TestPackedBlockBoundaries covers shapes straddling the KC=128 and
// NC=512 block edges, where the last pack block is ragged (and, for the
// SIMD microkernel, the 16-column tiling's scalar tail).
func TestPackedBlockBoundaries(t *testing.T) {
	forEachVariant(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(12))
		shapes := [][3]int{
			{2, 513, 129}, {3, 511, 127}, {5, 520, 131},
			{130, 17, 128}, {9, 1025, 5}, {4, 512, 128},
		}
		for _, s := range shapes {
			checkPackedShape(t, rng, s[0], s[1], s[2])
		}
	})
}

// TestPackedVariantsAgree is the deterministic cross-variant check: the
// assembly and pure-Go microkernels compute the same products with
// different FP association, so they must agree within the library-wide
// 1e-4 tolerance (bitwise agreement is explicitly NOT the contract —
// that pin is per-variant, see TestPackedBitwiseStable). Skipped where
// only one variant is runnable; FuzzPackedGEMM carries the same
// comparison through random shapes and NaN/Inf operands.
func TestPackedVariantsAgree(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("only one microkernel variant runnable on this build/box")
	}
	rng := rand.New(rand.NewSource(16))
	shapes := [][3]int{
		{1, 1, 1}, {3, 17, 5}, {17, 33, 29}, {64, 530, 140}, {5, 1025, 7}, {2, 513, 129},
	}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a, b := randMat(rng, m*k), randMat(rng, k*n)
		simd := make([]float32, m*n)
		pure := make([]float32, m*n)
		prev := SetSIMD(true)
		Packed(m, n, k, a, b, simd)
		SetSIMD(false)
		Packed(m, n, k, a, b, pure)
		SetSIMD(prev)
		if d := maxDiff(simd, pure); d > 1e-4 {
			t.Errorf("variants disagree at (%d,%d,%d): diff %g", m, n, k, d)
		}
	}
}

func checkPackedShape(t *testing.T, rng *rand.Rand, m, n, k int) {
	t.Helper()
	a, b := randMat(rng, m*k), randMat(rng, k*n)
	want := make([]float32, m*n)
	Naive(m, n, k, a, b, want)

	got := make([]float32, m*n)
	Packed(m, n, k, a, b, got)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("Packed (%d,%d,%d): diff %g", m, n, k, d)
	}

	// Accumulate: seed C with a bias, expect want+bias.
	acc := make([]float32, m*n)
	wantAcc := make([]float32, m*n)
	for i := range acc {
		acc[i] = float32(i%5) - 2
		wantAcc[i] = want[i] + acc[i]
	}
	Accumulate(m, n, k, a, b, acc)
	if d := maxDiff(acc, wantAcc); d > 1e-4 {
		t.Errorf("Accumulate (%d,%d,%d): diff %g", m, n, k, d)
	}

	// TransB rides the packBT pack routine; n%4 != 0 exercises its
	// ragged column tail.
	TransB(m, n, k, a, transpose(k, n, b), got)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("TransB (%d,%d,%d): diff %g", m, n, k, d)
	}

	for _, th := range []int{2, 3, 7} {
		ParallelCols(th, m, n, k, a, b, got)
		if d := maxDiff(got, want); d > 1e-4 {
			t.Errorf("ParallelCols(%d) (%d,%d,%d): diff %g", th, m, n, k, d)
		}
	}
}

// TestPackedBitwiseStable: the bitwise-stability pin, scoped to one
// microkernel variant at a time — the two variants associate partial
// products differently, so "bitwise" is only ever meaningful within a
// variant, never across them (the cross-variant contract is the 1e-4
// tolerance, TestPackedVariantsAgree/FuzzPackedGEMM). Within each
// variant: repeated calls with reused (pooled) pack buffers must
// produce bitwise-identical results — the pack scratch is fully
// overwritten before use, and per-element accumulation order is fixed.
// The threaded path only moves column-stripe boundaries, which (with
// stripes split on 16-column alignment) never changes any element's
// accumulation sequence, so ParallelCols must match Packed bitwise as
// well — again per variant (the product grouping differs from Naive's
// one-product-at-a-time fold, so agreement with Naive is within
// tolerance, not bitwise — TestPackedEquivalence covers that).
func TestPackedBitwiseStable(t *testing.T) {
	forEachVariant(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		shapes := [][3]int{{17, 33, 29}, {64, 530, 140}, {5, 1025, 7}}
		for _, s := range shapes {
			m, n, k := s[0], s[1], s[2]
			a, b := randMat(rng, m*k), randMat(rng, k*n)
			ref := make([]float32, m*n)
			Packed(m, n, k, a, b, ref)
			out := make([]float32, m*n)
			for rep := 0; rep < 3; rep++ {
				// Poison the output so stale contents would show.
				for i := range out {
					out[i] = float32(rep) * 1e9
				}
				Packed(m, n, k, a, b, out)
				for i := range out {
					if out[i] != ref[i] {
						t.Fatalf("Packed (%d,%d,%d) rep %d: out[%d]=%x want %x (not bitwise stable)",
							m, n, k, rep, i, out[i], ref[i])
					}
				}
			}
			for rep := 0; rep < 3; rep++ {
				for _, th := range []int{2, 4} {
					ParallelCols(th, m, n, k, a, b, out)
					for i := range out {
						if out[i] != ref[i] {
							t.Fatalf("ParallelCols(%d) (%d,%d,%d) rep %d: out[%d] differs from Packed",
								th, m, n, k, rep, i)
						}
					}
				}
			}
		}
	})
}

// TestPackedConcurrentCalls drives many simultaneous Packed and
// ParallelCols calls sharing input operands (run under -race in CI):
// the pooled pack buffers must never be shared between live calls.
func TestPackedConcurrentCalls(t *testing.T) {
	forEachVariant(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(14))
		m, n, k := 23, 517, 131
		a, b := randMat(rng, m*k), randMat(rng, k*n)
		want := make([]float32, m*n)
		Naive(m, n, k, a, b, want)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				out := make([]float32, m*n)
				for rep := 0; rep < 4; rep++ {
					if g%2 == 0 {
						Packed(m, n, k, a, b, out)
					} else {
						ParallelCols(3, m, n, k, a, b, out)
					}
					if d := maxDiff(out, want); d > 1e-4 {
						t.Errorf("goroutine %d rep %d: diff %g", g, rep, d)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// TestPackedEpilogues: every fused epilogue must be bitwise identical
// to running the plain packed kernel and then the separate elementwise
// pass — the fusion only moves the pass to when the stripe is cache-
// (or, on the SIMD path, register-) resident, never changes any
// arithmetic. The pin is per microkernel variant, like every bitwise
// contract here. Sweep covers ragged block edges, a zero-k degenerate
// product (the epilogue still owes its pass over the zeroed output),
// and the threaded column split.
func TestPackedEpilogues(t *testing.T) {
	forEachVariant(t, testPackedEpilogues)
}

func testPackedEpilogues(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	shapes := [][3]int{
		{3, 5, 4}, {2, 513, 129}, {17, 33, 29}, {5, 1025, 7}, {4, 9, 0},
	}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a, b := randMat(rng, m*k), randMat(rng, k*n)
		r, bias := randMat(rng, m*n), randMat(rng, n)
		bt := transpose(k, n, b)
		plain := make([]float32, m*n)
		Packed(m, n, k, a, b, plain)
		for _, epi := range []Epilogue{EpiReLU, EpiBias, EpiAdd, EpiAddReLU} {
			want := make([]float32, m*n)
			copy(want, plain)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					v := want[i*n+j]
					switch epi {
					case EpiBias:
						v += bias[j]
					case EpiAdd:
						v += r[i*n+j]
					case EpiAddReLU:
						v += r[i*n+j]
					}
					if epi == EpiReLU || epi == EpiAddReLU {
						if v < 0 {
							v = 0
						}
					}
					want[i*n+j] = v
				}
			}
			got := make([]float32, m*n)
			PackedEpi(m, n, k, a, b, got, epi, r, bias)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("PackedEpi %v (%d,%d,%d): out[%d]=%v want %v (not bitwise)",
						epi, m, n, k, i, got[i], want[i])
				}
			}
			TransBEpi(m, n, k, a, bt, got, epi, r, bias)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("TransBEpi %v (%d,%d,%d): out[%d]=%v want %v", epi, m, n, k, i, got[i], want[i])
				}
			}
			for _, th := range []int{2, 5} {
				ParallelColsEpi(th, m, n, k, a, b, got, epi, r, bias)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("ParallelColsEpi(%d) %v (%d,%d,%d): out[%d]=%v want %v",
							th, epi, m, n, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestEpiPanicsOnShortOperands: the epilogue operand checks share
// checkDims' panic contract.
func TestEpiPanicsOnShortOperands(t *testing.T) {
	a, b, c := make([]float32, 4), make([]float32, 4), make([]float32, 4)
	for name, call := range map[string]func(){
		"short-residual": func() { PackedEpi(2, 2, 2, a, b, c, EpiAdd, make([]float32, 3), nil) },
		"short-bias":     func() { TransBEpi(2, 2, 2, a, b, c, EpiBias, nil, make([]float32, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			call()
		}()
	}
}

// TestPackedPanicsOnShortBuffers: the packed entries share checkDims
// with every other kernel — including TransB, which used to carry its
// own panic.
func TestPackedPanicsOnShortBuffers(t *testing.T) {
	for name, call := range map[string]func(){
		"Packed":     func() { Packed(2, 2, 2, make([]float32, 3), make([]float32, 4), make([]float32, 4)) },
		"Accumulate": func() { Accumulate(2, 2, 2, make([]float32, 4), make([]float32, 3), make([]float32, 4)) },
		"TransB":     func() { TransB(2, 2, 2, make([]float32, 4), make([]float32, 4), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on short buffer", name)
				}
			}()
			call()
		}()
	}
}

func BenchmarkGemmPacked64(b *testing.B)  { benchGemm(b, Packed, 64) }
func BenchmarkGemmPacked512(b *testing.B) { benchGemm(b, Packed, 512) }
