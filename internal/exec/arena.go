package exec

import "sync"

// arena is a size-keyed recycling pool for the engine's slot-frame
// buffers. Every RunBatch checks one frame per image out of the pool —
// one buffer per slot of the compiled program's static memory plan —
// and returns the buffers when the batch completes, so steady-state
// runs allocate nothing for wildcard intermediates. Slot capacities
// repeat across images and runs, so hit rates approach 100% after the
// first batch.
//
// Buffers are handed out as-is, with no zeroing: blocked-layout slot
// tenants clear their view on entry (their padding lanes must stay
// zero), and plain-layout kernels overwrite every element.
type arena struct {
	mu   sync.Mutex
	free map[int][][]float32

	// maxPerSize caps each free list's depth: an oversized batch checks
	// out more frames than the cap and drops the excess on release for
	// the GC to reclaim, so a long-lived engine's pooled inventory
	// cannot ratchet up without bound.
	maxPerSize int

	// gets and hits count checkouts and recycled checkouts (for tests
	// and tuning; reads outside the lock are for diagnostics only).
	gets, hits int64
}

// defaultArenaDepth bounds each size class at a small multiple of any
// plausible concurrent frame count per slot capacity.
const defaultArenaDepth = 16

func newArena() *arena {
	return &arena{free: make(map[int][][]float32), maxPerSize: defaultArenaDepth}
}

// get returns a buffer of exactly n elements, recycling a previously
// released one when available. The contents are unspecified.
func (a *arena) get(n int) []float32 {
	a.mu.Lock()
	a.gets++
	if bufs := a.free[n]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		a.free[n] = bufs[:len(bufs)-1]
		a.hits++
		a.mu.Unlock()
		return buf
	}
	a.mu.Unlock()
	return make([]float32, n)
}

// put releases a buffer back to the pool, dropping it when the size
// class is already at capacity. The caller must not retain any
// reference to it.
func (a *arena) put(buf []float32) {
	if buf == nil {
		return
	}
	a.mu.Lock()
	if len(a.free[len(buf)]) < a.maxPerSize {
		a.free[len(buf)] = append(a.free[len(buf)], buf)
	}
	a.mu.Unlock()
}

// stats reports total and recycled checkouts.
func (a *arena) stats() (gets, hits int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.hits
}
