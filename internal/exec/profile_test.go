package exec

import (
	"fmt"
	"testing"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// profiledEngine compiles micronet at the given batch with a real
// PBQP-selected plan — the smallest full-pipeline engine a profiling
// test can drive in milliseconds.
func profiledEngine(t testing.TB, batch, threads int) (*Engine, []*tensor.Tensor) {
	t.Helper()
	g, err := models.Build("micronet")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := selector.SelectBatch(g, batch, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: threads,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineBatch(plan, NewWeights(g), batch)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]*tensor.Tensor, batch)
	for i := range ins {
		ins[i] = newInput(g, int64(i+1))
	}
	return eng, ins
}

// TestProfileCoverageMicronet is the tentpole acceptance at test scale:
// with always-on profiling, the summed per-instruction time must
// account for (almost) all of the engine wall time — on the sequential
// schedule only frame setup and output extraction live outside the
// instrumented instructions.
func TestProfileCoverageMicronet(t *testing.T) {
	eng, ins := profiledEngine(t, 4, 1)
	if eng.Profile() != nil {
		t.Fatal("profile attached before EnableProfiling")
	}
	if eng.LayerTable() != nil {
		t.Fatal("LayerTable non-nil with profiling disabled")
	}

	if _, err := eng.RunBatch(ins); err != nil { // warm, unprofiled
		t.Fatal(err)
	}
	eng.EnableProfiling(1)
	const reps = 5
	for i := 0; i < reps; i++ {
		if _, err := eng.RunBatch(ins); err != nil {
			t.Fatal(err)
		}
	}

	tab := eng.LayerTable()
	if tab == nil {
		t.Fatal("LayerTable nil with profiling enabled")
	}
	if tab.SampledChunks != reps || tab.SampledImages != reps*4 {
		t.Fatalf("sampled %d chunks / %d images, want %d / %d",
			tab.SampledChunks, tab.SampledImages, reps, reps*4)
	}
	// Coverage: the per-layer sum versus engine wall. The floor is
	// deliberately loose — tiny layers cost ~µs each and timer overhead
	// is real at that scale — but well above anything a broken join
	// would produce; the ceiling allows scheduling noise only.
	if tab.Coverage < 0.80 || tab.Coverage > 1.10 {
		t.Errorf("per-layer sum covers %.1f%% of wall, want 80%%–110%%\n%s",
			tab.Coverage*100, tab.Format())
	}
	// Every conv row carries its selected primitive and a positive
	// prediction; the join against Plan.LayerCost must not miss.
	convs := 0
	for _, r := range tab.Rows {
		if r.Op != program.OpConv.String() {
			continue
		}
		convs++
		if r.Primitive == "" {
			t.Errorf("conv row %s has no primitive", r.Layer)
		}
		if r.PredictedNSPerImage <= 0 {
			t.Errorf("conv row %s has no prediction", r.Layer)
		}
		if r.Samples != reps {
			t.Errorf("conv row %s sampled %d times, want %d", r.Layer, r.Samples, reps)
		}
	}
	if convs == 0 {
		t.Error("no conv rows in the table")
	}
}

// TestProfileSparseSampling checks the 1-in-K serving configuration:
// K chunks yield exactly one sampled breakdown.
func TestProfileSparseSampling(t *testing.T) {
	eng, ins := profiledEngine(t, 2, 1)
	eng.EnableProfiling(4)
	for i := 0; i < 8; i++ {
		if _, err := eng.RunBatch(ins); err != nil {
			t.Fatal(err)
		}
	}
	tab := eng.LayerTable()
	if tab.SampledChunks != 2 {
		t.Errorf("sampled %d chunks of 8 at 1-in-4, want 2", tab.SampledChunks)
	}
	if tab.SampleEvery != 4 {
		t.Errorf("SampleEvery = %d, want 4", tab.SampleEvery)
	}
}

// TestProfileDisabledAllocsUnchanged pins the disabled path's cost: an
// engine with no profile attached — and one whose profile never
// samples — must allocate exactly as much per RunBatch as before the
// instrumentation existed (the hook is two nil checks; hotpathalloc
// verifies the no-allocation property statically, this verifies it
// dynamically).
func TestProfileDisabledAllocsUnchanged(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocs/op is nondeterministic under the race detector: sync.Pool drops a random 1-in-4 of Puts when race is enabled, so the pooled GEMM panels re-allocate at random; the non-race leg pins the count and hotpathalloc pins it statically")
	}
	off, insOff := profiledEngine(t, 2, 1)
	cold, insCold := profiledEngine(t, 2, 1)
	// 1<<30 ≫ the run count: SampleChunk ticks but never fires, so this
	// measures the enabled-but-unsampled fast path.
	cold.EnableProfiling(1 << 30)

	run := func(e *Engine, ins []*tensor.Tensor) float64 {
		if _, err := e.RunBatch(ins); err != nil { // warm
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := e.RunBatch(ins); err != nil {
				t.Fatal(err)
			}
		})
	}
	aOff, aCold := run(off, insOff), run(cold, insCold)
	if aOff != aCold {
		t.Errorf("allocs/op: disabled %v vs attached-but-unsampled %v — the unsampled hook must be allocation-free", aOff, aCold)
	}
}

// BenchmarkEngineObservationOverhead pins the cost of the instruction
// timer hook in its three states: no profile attached, attached but
// sampling sparsely (the serving default), and always-on (the bench
// setting). The disabled and sparse numbers must stay within noise of
// each other — that closeness is the "near-zero overhead when
// disabled" acceptance, recorded in EXPERIMENTS.md.
func BenchmarkEngineObservationOverhead(b *testing.B) {
	for _, cfg := range []struct {
		name string
		k    int // 0 = no profile
	}{
		{"disabled", 0},
		{"sampled-1-in-16", 16},
		{"always-on", 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng, ins := profiledEngine(b, 8, 1)
			if cfg.k > 0 {
				eng.EnableProfiling(cfg.k)
			}
			if _, err := eng.RunBatch(ins); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunBatch(ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ExampleEngine_LayerTable keeps the exported profiling API honest in
// docs: enable, run, snapshot.
func ExampleEngine_LayerTable() {
	g, _ := models.Build("micronet")
	plan, _ := selector.SelectBatch(g, 1, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: 1,
	})
	eng, _ := NewEngineBatch(plan, NewWeights(g), 1)
	eng.EnableProfiling(1)
	in := tensor.New(tensor.CHW, 3, 16, 16)
	in.FillRandom(1)
	eng.RunBatch([]*tensor.Tensor{in})
	tab := eng.LayerTable()
	fmt.Println(tab.Net, tab.Batch, tab.SampledChunks)
	// Output: micronet 1 1
}
