package dtgraph

import (
	"math"
	"testing"
	"testing/quick"

	"pbqpdnn/internal/tensor"
)

func unitCost(tensor.Transform) float64 { return 1 }

func TestIdentityIsFree(t *testing.T) {
	g := New(tensor.DirectTransforms(), unitCost)
	for _, l := range tensor.Layouts() {
		if c := g.Cost(l, l); c != 0 {
			t.Errorf("Cost(%s,%s) = %v", l, l, c)
		}
		p, err := g.Path(l, l)
		if err != nil || len(p) != 0 {
			t.Errorf("Path(%s,%s) = %v, %v", l, l, p, err)
		}
	}
}

func TestDirectEdgeCost(t *testing.T) {
	g := New(tensor.DirectTransforms(), unitCost)
	if c := g.Cost(tensor.CHW, tensor.HWC); c != 1 {
		t.Errorf("CHW→HWC = %v, want 1 (direct)", c)
	}
}

func TestChainsRequired(t *testing.T) {
	g := New(tensor.DirectTransforms(), unitCost)
	// CHW→WCH has no direct routine; best chain is CHW→CWH→WCH.
	if c := g.Cost(tensor.CHW, tensor.WCH); c != 2 {
		t.Errorf("CHW→WCH = %v, want 2", c)
	}
	p, err := g.Path(tensor.CHW, tensor.WCH)
	if err != nil || len(p) != 2 {
		t.Fatalf("Path = %v, %v", p, err)
	}
	if p[0].From != tensor.CHW || p[1].To != tensor.WCH || p[0].To != p[1].From {
		t.Errorf("chain not contiguous: %v", p)
	}
	// CHW8 can only unpack via CHW4.
	if c := g.Cost(tensor.CHW8, tensor.CHW); c != 2 {
		t.Errorf("CHW8→CHW = %v, want 2", c)
	}
}

func TestFullReachability(t *testing.T) {
	// The shipped transform set connects every pair of layouts, possibly
	// via chains — the paper's setting where the closure is finite.
	g := New(tensor.DirectTransforms(), unitCost)
	for _, a := range tensor.Layouts() {
		for _, b := range tensor.Layouts() {
			if math.IsInf(g.Cost(a, b), 1) {
				t.Errorf("%s→%s unreachable", a, b)
			}
		}
	}
}

func TestUnreachableIsInf(t *testing.T) {
	// With only one direct routine, most pairs are unreachable.
	trs := tensor.DirectTransforms()[:1] // CHW→HWC
	g := New(trs, unitCost)
	if !math.IsInf(g.Cost(tensor.HWC, tensor.CHW), 1) {
		t.Error("reverse should be unreachable")
	}
	if _, err := g.Path(tensor.HWC, tensor.CHW); err == nil {
		t.Error("Path should fail when unreachable")
	}
}

// TestTriangleInequality: property test — the closure must satisfy
// dist(a,c) ≤ dist(a,b)+dist(b,c) for any cost assignment.
func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		costs := map[string]float64{}
		rng := seed
		for _, tr := range tensor.DirectTransforms() {
			rng = rng*6364136223846793005 + 1442695040888963407
			costs[tr.Name] = float64(uint64(rng)%1000) / 100
		}
		g := New(tensor.DirectTransforms(), func(tr tensor.Transform) float64 {
			return costs[tr.Name]
		})
		for _, a := range tensor.Layouts() {
			for _, b := range tensor.Layouts() {
				for _, c := range tensor.Layouts() {
					if g.Cost(a, c) > g.Cost(a, b)+g.Cost(b, c)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPathCostConsistency: the materialized chain's summed edge costs
// equal the closed-form distance.
func TestPathCostConsistency(t *testing.T) {
	costs := map[string]float64{}
	v := 1.0
	for _, tr := range tensor.DirectTransforms() {
		costs[tr.Name] = v
		v += 0.7
	}
	cf := func(tr tensor.Transform) float64 { return costs[tr.Name] }
	g := New(tensor.DirectTransforms(), cf)
	for _, a := range tensor.Layouts() {
		for _, b := range tensor.Layouts() {
			p, err := g.Path(a, b)
			if err != nil {
				t.Fatalf("%s→%s: %v", a, b, err)
			}
			sum := 0.0
			for _, tr := range p {
				sum += costs[tr.Name]
			}
			if math.Abs(sum-g.Cost(a, b)) > 1e-9 {
				t.Errorf("%s→%s: path sum %v != dist %v", a, b, sum, g.Cost(a, b))
			}
		}
	}
}

// TestApplyPreservesData: converting a tensor along any closure path
// preserves all values.
func TestApplyPreservesData(t *testing.T) {
	g := New(tensor.DirectTransforms(), unitCost)
	src := tensor.New(tensor.CHW, 5, 6, 7)
	src.FillRandom(11)
	for _, to := range tensor.Layouts() {
		got, err := g.Apply(src.Clone(), to)
		if err != nil {
			t.Fatalf("Apply to %s: %v", to, err)
		}
		if got.Layout != to {
			t.Errorf("Apply to %s produced %s", to, got.Layout)
		}
		if !tensor.AlmostEqual(src, got, 0) {
			t.Errorf("Apply to %s corrupted data", to)
		}
	}
}

func TestNegativeCostRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative cost should panic")
		}
	}()
	New(tensor.DirectTransforms(), func(tensor.Transform) float64 { return -1 })
}
