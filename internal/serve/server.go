package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pbqpdnn/internal/tensor"
)

// InferRequest is the JSON body of POST /v1/models/{model}/infer: the
// input image flattened in logical C-major (CHW) order, length C·H·W.
type InferRequest struct {
	Data []float32 `json:"data"`
}

// InferResponse is the JSON reply: the output tensor flattened in
// logical CHW order plus its shape and the server-side latency.
type InferResponse struct {
	Model     string    `json:"model"`
	Shape     [3]int    `json:"shape"` // C, H, W
	Output    []float32 `json:"output"`
	LatencyMS float64   `json:"latency_ms"`
}

// modelInfo describes one hosted model on GET /models.
type modelInfo struct {
	Name        string `json:"name"`
	InputShape  [3]int `json:"input_shape"`
	OutputShape [3]int `json:"output_shape"`
	Layers      int    `json:"layers"`
	Optimal     bool   `json:"pbqp_optimal"`
}

// ModelStats is one model's /stats entry: the batcher's serving
// counters plus, per batch bucket, the bucket's selected primitives and
// its predicted versus observed ns/image — the live view of whether the
// per-bucket PBQP plans deliver what the cost model promised.
type ModelStats struct {
	Stats
	Buckets []BucketStats `json:"buckets"`
}

func modelStats(reg *Registry) map[string]ModelStats {
	stats := map[string]ModelStats{}
	for _, name := range reg.Names() {
		m, _ := reg.Get(name)
		stats[name] = ModelStats{
			Stats:   m.Metrics.Snapshot(),
			Buckets: m.BucketStats(),
		}
	}
	return stats
}

// NewServer wires a Registry into an http.Handler:
//
//	GET  /healthz                     liveness probe
//	GET  /models                      hosted models and their shapes
//	GET  /stats                       per-model serving metrics (JSON),
//	                                  including per-bucket plans and
//	                                  predicted vs observed ns/image
//	GET  /metrics                     the same counters in Prometheus
//	                                  text format (see prom.go)
//	GET  /layers                      per-layer predicted-vs-observed
//	                                  profile tables per batch bucket
//	                                  (empty until profiling is enabled)
//	POST /v1/models/{model}/infer     one inference through the batcher
//
// Inference honors an optional ?timeout_ms= deadline: expired requests
// are answered 504 and, if still queued at flush time, are pruned
// without touching the engine.
func NewServer(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		infos := make([]modelInfo, 0)
		for _, name := range reg.Names() {
			m, _ := reg.Get(name)
			infos = append(infos, modelInfo{
				Name:        m.Name,
				InputShape:  [3]int{m.InC, m.InH, m.InW},
				OutputShape: [3]int{m.OutC, m.OutH, m.OutW},
				Layers:      m.Net.NumLayers(),
				Optimal:     m.Plan().Optimal,
			})
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, modelStats(reg))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(reg, w, r)
	})
	mux.HandleFunc("GET /layers", func(w http.ResponseWriter, r *http.Request) {
		handleLayers(reg, w, r)
	})
	mux.HandleFunc("POST /v1/models/{model}/infer", func(w http.ResponseWriter, r *http.Request) {
		handleInfer(reg, w, r)
	})
	return mux
}

// PublishExpvar exposes every model's metrics snapshot under the expvar
// map "serve" (readable at /debug/vars when the process also mounts
// expvar.Handler). Call at most once per process.
func PublishExpvar(reg *Registry) {
	expvar.Publish("serve", expvar.Func(func() any {
		return modelStats(reg)
	}))
}

func handleInfer(reg *Registry, w http.ResponseWriter, r *http.Request) {
	m, ok := reg.Get(r.PathValue("model"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown model %q (have %v)", r.PathValue("model"), reg.Names())
		return
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	want := m.InC * m.InH * m.InW
	if len(req.Data) != want {
		httpError(w, http.StatusBadRequest, "input has %d elements, want %d (%d×%d×%d CHW)",
			len(req.Data), want, m.InC, m.InH, m.InW)
		return
	}
	in := tensor.NewWith(tensor.CHW, m.InC, m.InH, m.InW, req.Data)

	ctx := r.Context()
	if tm := r.URL.Query().Get("timeout_ms"); tm != "" {
		ms, err := strconv.Atoi(tm)
		if err != nil || ms <= 0 {
			httpError(w, http.StatusBadRequest, "bad timeout_ms %q: want a positive integer of milliseconds", tm)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	start := time.Now()
	out, err := m.Batcher.Infer(ctx, in)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			httpError(w, http.StatusGatewayTimeout, "%v", err)
		case errors.Is(err, context.Canceled):
			// The client went away while queued: not a server error.
			// 499 is nginx's "client closed request" convention; nobody
			// is listening, but access logs should not count a 500.
			httpError(w, 499, "%v", err)
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, InferResponse{
		Model:     m.Name,
		Shape:     [3]int{out.C, out.H, out.W},
		Output:    flattenCHW(out),
		LatencyMS: float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

// flattenCHW reads a tensor into logical C-major order regardless of
// its physical layout (the plan decides the output layout; the wire
// format should not).
func flattenCHW(t *tensor.Tensor) []float32 {
	out := make([]float32, 0, t.C*t.H*t.W)
	for c := 0; c < t.C; c++ {
		for h := 0; h < t.H; h++ {
			for w := 0; w < t.W; w++ {
				out = append(out, t.At(c, h, w))
			}
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
