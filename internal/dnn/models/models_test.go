package models

import (
	"strings"
	"testing"

	"pbqpdnn/internal/dnn"
)

func TestBuildAllModels(t *testing.T) {
	for _, name := range append(Names(), DemoNames()...) {
		g, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := Build("resnet"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestAlexNetStructure(t *testing.T) {
	g := AlexNet()
	convs := g.ConvLayers()
	if len(convs) != 5 {
		t.Fatalf("AlexNet has %d convs, want 5", len(convs))
	}
	c1 := g.Layers[convs[0]].Conv
	if c1.K != 11 || c1.Stride != 4 || c1.M != 96 || c1.OutH() != 55 {
		t.Errorf("conv1 = %s (out %d)", c1, c1.OutH())
	}
	c2 := g.Layers[convs[1]].Conv
	if c2.K != 5 || c2.C != 96 || c2.M != 256 || c2.H != 27 {
		t.Errorf("conv2 = %s", c2)
	}
	for i, id := range convs[2:] {
		if k := g.Layers[id].Conv.K; k != 3 {
			t.Errorf("conv%d K = %d, want 3", i+3, k)
		}
	}
	c5 := g.Layers[convs[4]].Conv
	if c5.H != 13 || c5.M != 256 {
		t.Errorf("conv5 = %s", c5)
	}
}

func TestVGGStructure(t *testing.T) {
	wantConvs := map[byte]int{'B': 10, 'C': 13, 'D': 13, 'E': 16}
	for cfg, want := range wantConvs {
		g := VGG(cfg)
		if got := len(g.ConvLayers()); got != want {
			t.Errorf("VGG-%c has %d convs, want %d", cfg, got, want)
		}
		// All spatial extents halve exactly five times: final conv block
		// output is 14×14 before the last pool (512 maps).
		last := g.ConvLayers()[len(g.ConvLayers())-1]
		l := g.Layers[last]
		if l.OutC != 512 || l.OutH != 14 || l.OutW != 14 {
			t.Errorf("VGG-%c last conv shape %d×%d×%d", cfg, l.OutC, l.OutH, l.OutW)
		}
	}
	// VGG-C has exactly three 1×1 convolutions; VGG-D none.
	count1x1 := func(g *dnn.Graph) int {
		n := 0
		for _, id := range g.ConvLayers() {
			if g.Layers[id].Conv.K == 1 {
				n++
			}
		}
		return n
	}
	if n := count1x1(VGG('C')); n != 3 {
		t.Errorf("VGG-C 1×1 convs = %d, want 3", n)
	}
	if n := count1x1(VGG('D')); n != 0 {
		t.Errorf("VGG-D 1×1 convs = %d, want 0", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("VGG('Z') should panic")
		}
	}()
	VGG('Z')
}

func TestGoogleNetStructure(t *testing.T) {
	g := GoogleNet()
	convs := g.ConvLayers()
	// Stem has 3 convs; each of 9 inception modules has 6.
	if len(convs) != 3+9*6 {
		t.Errorf("GoogleNet has %d convs, want 57", len(convs))
	}
	// Inception 3a output is 256 channels at 28×28.
	var out3a *dnn.Layer
	for _, l := range g.Layers {
		if l.Name == "inception_3a/output" {
			out3a = l
		}
	}
	if out3a == nil {
		t.Fatal("missing inception_3a/output")
	}
	if out3a.OutC != 256 || out3a.OutH != 28 || out3a.OutW != 28 {
		t.Errorf("3a output %d×%d×%d, want 256×28×28", out3a.OutC, out3a.OutH, out3a.OutW)
	}
	// 5b output is 1024×7×7.
	for _, l := range g.Layers {
		if l.Name == "inception_5b/output" {
			if l.OutC != 1024 || l.OutH != 7 {
				t.Errorf("5b output %d×%d×%d, want 1024×7×7", l.OutC, l.OutH, l.OutW)
			}
		}
	}
	// The graph is a genuine DAG: concat layers have 4 predecessors.
	nConcat := 0
	for _, l := range g.Layers {
		if l.Kind == dnn.KindConcat {
			nConcat++
			if len(g.Preds(l.ID)) != 4 {
				t.Errorf("%s has %d preds, want 4", l.Name, len(g.Preds(l.ID)))
			}
		}
	}
	if nConcat != 9 {
		t.Errorf("GoogleNet has %d inception concats, want 9", nConcat)
	}
}

// TestFlopOrdering pins a well-known fact the evaluation relies on:
// VGG-E is by far the heaviest network, AlexNet the lightest.
func TestFlopOrdering(t *testing.T) {
	flops := map[string]float64{}
	for _, n := range []string{"alexnet", "vgg-b", "vgg-e", "googlenet"} {
		g, err := Build(n)
		if err != nil {
			t.Fatal(err)
		}
		flops[n] = g.TotalConvFlops()
	}
	if !(flops["vgg-e"] > flops["vgg-b"] && flops["vgg-b"] > flops["googlenet"] &&
		flops["googlenet"] > flops["alexnet"]) {
		t.Errorf("unexpected flop ordering: %v", flops)
	}
}

func TestInceptionBranchNames(t *testing.T) {
	g := GoogleNet()
	want := []string{"inception_4e/1x1", "inception_4e/3x3", "inception_4e/5x5", "inception_4e/pool_proj"}
	found := 0
	for _, l := range g.Layers {
		for _, w := range want {
			if l.Name == w {
				found++
			}
		}
		if strings.HasPrefix(l.Name, "inception_4e/5x5") && l.IsConv() && l.Conv.K == 5 {
			if l.Conv.Pad != 2 {
				t.Errorf("5x5 conv pad = %d, want 2", l.Conv.Pad)
			}
		}
	}
	if found != len(want) {
		t.Errorf("found %d/%d expected 4e branch layers", found, len(want))
	}
}

// TestDemoNetStructure pins the serving demo workloads: both end in a
// 10-way softmax, SmallNet has a genuine two-branch concat DAG, and
// MicroNet stays chain-shaped and tiny.
func TestDemoNetStructure(t *testing.T) {
	small := SmallNet()
	if got := len(small.ConvLayers()); got != 5 {
		t.Errorf("SmallNet has %d convs, want 5", got)
	}
	concats := 0
	for _, l := range small.Layers {
		if l.Kind == dnn.KindConcat {
			concats++
			if len(small.Preds(l.ID)) != 2 {
				t.Errorf("%s has %d preds, want 2", l.Name, len(small.Preds(l.ID)))
			}
		}
	}
	if concats != 1 {
		t.Errorf("SmallNet has %d concats, want 1", concats)
	}

	micro := MicroNet()
	if got := len(micro.ConvLayers()); got != 3 {
		t.Errorf("MicroNet has %d convs, want 3", got)
	}
	for _, g := range []*dnn.Graph{small, micro} {
		last := g.Layers[len(g.Layers)-1]
		if last.Kind != dnn.KindSoftmax || last.OutC != 10 || last.OutH != 1 || last.OutW != 1 {
			t.Errorf("%s output layer %s %d×%d×%d, want softmax 10×1×1",
				g.Name, last.Kind, last.OutC, last.OutH, last.OutW)
		}
	}
}

func TestResNet18Structure(t *testing.T) {
	g := ResNet18()
	// 1 stem + 16 block convs + 3 projection shortcuts.
	if got := len(g.ConvLayers()); got != 20 {
		t.Errorf("ResNet-18 has %d convs, want 20", got)
	}
	adds := 0
	for _, l := range g.Layers {
		if l.Kind == dnn.KindAdd {
			adds++
			if len(g.Preds(l.ID)) != 2 {
				t.Errorf("%s has %d preds, want 2", l.Name, len(g.Preds(l.ID)))
			}
		}
	}
	if adds != 8 {
		t.Errorf("ResNet-18 has %d add junctions, want 8", adds)
	}
	// Stage outputs halve spatially and double in channels.
	want := map[string][3]int{
		"res2_2/relu2": {64, 56, 56},
		"res3_1/relu2": {128, 28, 28},
		"res4_1/relu2": {256, 14, 14},
		"res5_2/relu2": {512, 7, 7},
	}
	for _, l := range g.Layers {
		if s, ok := want[l.Name]; ok {
			if l.OutC != s[0] || l.OutH != s[1] || l.OutW != s[2] {
				t.Errorf("%s shape %d×%d×%d, want %d×%d×%d",
					l.Name, l.OutC, l.OutH, l.OutW, s[0], s[1], s[2])
			}
			delete(want, l.Name)
		}
	}
	for name := range want {
		t.Errorf("missing layer %q", name)
	}
}
