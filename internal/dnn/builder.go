package dnn

import (
	"fmt"

	"pbqpdnn/internal/conv"
)

// Builder constructs a Graph layer by layer with automatic shape
// propagation, in the style of a Caffe prototxt.
type Builder struct {
	g *Graph
}

// NewBuilder starts a network with a single input of shape c×h×w.
func NewBuilder(name string, c, h, w int) (*Builder, int) {
	b := &Builder{g: &Graph{Name: name}}
	id := b.add(&Layer{Name: "data", Kind: KindInput, OutC: c, OutH: h, OutW: w})
	return b, id
}

func (b *Builder) add(l *Layer, preds ...int) int {
	l.ID = len(b.g.Layers)
	b.g.Layers = append(b.g.Layers, l)
	b.g.succs = append(b.g.succs, nil)
	b.g.preds = append(b.g.preds, nil)
	for _, p := range preds {
		b.g.succs[p] = append(b.g.succs[p], l.ID)
		b.g.preds[l.ID] = append(b.g.preds[l.ID], p)
	}
	return l.ID
}

func (b *Builder) shape(id int) (c, h, w int) {
	l := b.g.Layers[id]
	return l.OutC, l.OutH, l.OutW
}

// Shape returns the propagated output shape of an already-added layer,
// letting model builders size shape-dependent layers (global pooling,
// projection shortcuts) without tracking dimensions by hand.
func (b *Builder) Shape(id int) (c, h, w int) { return b.shape(id) }

// Conv appends a convolution of m filters, k×k taps, given stride and
// padding, fed by layer `from`.
func (b *Builder) Conv(from int, name string, m, k, stride, pad int) int {
	c, h, w := b.shape(from)
	s := conv.Scenario{C: c, H: h, W: w, Stride: stride, K: k, M: m, Pad: pad}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("dnn: conv %q: %v", name, err))
	}
	return b.add(&Layer{Name: name, Kind: KindConv, Conv: s,
		OutC: m, OutH: s.OutH(), OutW: s.OutW()}, from)
}

// ReLU appends an activation.
func (b *Builder) ReLU(from int, name string) int {
	c, h, w := b.shape(from)
	return b.add(&Layer{Name: name, Kind: KindReLU, OutC: c, OutH: h, OutW: w}, from)
}

// LRN appends local response normalization.
func (b *Builder) LRN(from int, name string) int {
	c, h, w := b.shape(from)
	return b.add(&Layer{Name: name, Kind: KindLRN, OutC: c, OutH: h, OutW: w}, from)
}

// poolOut implements Caffe's ceil-mode pooled extent.
func poolOut(in, k, stride, pad int) int {
	out := (in+2*pad-k+stride-1)/stride + 1
	if pad > 0 && (out-1)*stride >= in+pad {
		out--
	}
	return out
}

// MaxPool appends a max pooling layer (Caffe ceil semantics).
func (b *Builder) MaxPool(from int, name string, k, stride, pad int) int {
	c, h, w := b.shape(from)
	return b.add(&Layer{Name: name, Kind: KindMaxPool, PoolK: k, PoolStride: stride, PoolPad: pad,
		OutC: c, OutH: poolOut(h, k, stride, pad), OutW: poolOut(w, k, stride, pad)}, from)
}

// AvgPool appends an average pooling layer.
func (b *Builder) AvgPool(from int, name string, k, stride, pad int) int {
	c, h, w := b.shape(from)
	return b.add(&Layer{Name: name, Kind: KindAvgPool, PoolK: k, PoolStride: stride, PoolPad: pad,
		OutC: c, OutH: poolOut(h, k, stride, pad), OutW: poolOut(w, k, stride, pad)}, from)
}

// Concat appends a channel-dimension concatenation of the given layers,
// which must agree on spatial extent.
func (b *Builder) Concat(name string, from ...int) int {
	if len(from) < 2 {
		panic(fmt.Sprintf("dnn: concat %q needs ≥ 2 inputs", name))
	}
	_, h0, w0 := b.shape(from[0])
	totalC := 0
	for _, f := range from {
		c, h, w := b.shape(f)
		if h != h0 || w != w0 {
			panic(fmt.Sprintf("dnn: concat %q: spatial mismatch %dx%d vs %dx%d", name, h, w, h0, w0))
		}
		totalC += c
	}
	return b.add(&Layer{Name: name, Kind: KindConcat, OutC: totalC, OutH: h0, OutW: w0}, from...)
}

// Add appends an elementwise sum of the given layers (a residual
// shortcut junction), which must agree on shape.
func (b *Builder) Add(name string, from ...int) int {
	if len(from) < 2 {
		panic(fmt.Sprintf("dnn: add %q needs ≥ 2 inputs", name))
	}
	c0, h0, w0 := b.shape(from[0])
	for _, f := range from[1:] {
		c, h, w := b.shape(f)
		if c != c0 || h != h0 || w != w0 {
			panic(fmt.Sprintf("dnn: add %q: shape mismatch %dx%dx%d vs %dx%dx%d",
				name, c, h, w, c0, h0, w0))
		}
	}
	return b.add(&Layer{Name: name, Kind: KindAdd, OutC: c0, OutH: h0, OutW: w0}, from...)
}

// FC appends a fully-connected layer of n outputs.
func (b *Builder) FC(from int, name string, n int) int {
	return b.add(&Layer{Name: name, Kind: KindFC, FCOut: n, OutC: n, OutH: 1, OutW: 1}, from)
}

// Dropout appends an inference-time identity dropout layer.
func (b *Builder) Dropout(from int, name string) int {
	c, h, w := b.shape(from)
	return b.add(&Layer{Name: name, Kind: KindDropout, OutC: c, OutH: h, OutW: w}, from)
}

// Softmax appends the output distribution layer.
func (b *Builder) Softmax(from int, name string) int {
	c, h, w := b.shape(from)
	return b.add(&Layer{Name: name, Kind: KindSoftmax, OutC: c, OutH: h, OutW: w}, from)
}

// Graph finalizes and validates the network.
func (b *Builder) Graph() *Graph {
	if err := b.g.Validate(); err != nil {
		panic(err)
	}
	return b.g
}
