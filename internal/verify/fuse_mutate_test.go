package verify

// Fusion mutation tests: one surgical illegal fusion per legality rule
// the verifier recomputes from graph + plan alone. Each corruption is
// one the compiler can never emit — the point is that a corrupted or
// adversarial program claiming an unsound fusion is caught by the
// independent checker, whatever Program.Validate thinks of it.

import (
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// expectVerifierRejects asserts the independent verifier rejects the
// mutant (Validate's verdict is logged but not required either way —
// fusion legality is the verifier's contract).
func expectVerifierRejects(t *testing.T, q *program.Program, desc string) {
	t.Helper()
	err := Program(q)
	if err == nil {
		t.Fatalf("%s: the verifier accepts the corrupted fusion", desc)
	}
	if verr := q.Validate(); verr != nil {
		t.Logf("%s: rejected: %v (Validate also catches: %v)", desc, err, verr)
	} else {
		t.Logf("%s: rejected: %v (Validate-clean)", desc, err)
	}
}

// chainNet is two fusable conv+relu links in a row, ending in a pool so
// neither relu is the network output.
func chainNet() *dnn.Graph {
	b, x := dnn.NewBuilder("chain", 3, 12, 12)
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.Conv(x, "c2", 8, 3, 1, 1)
	x = b.ReLU(x, "r2")
	b.MaxPool(x, "tail", 2, 2, 0)
	return b.Graph()
}

func compileNet(t *testing.T, net *dnn.Graph, batch int) *program.Program {
	t.Helper()
	plan, err := selector.SelectBatch(net, batch, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := program.CompileBatch(plan, batch)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func layerByName(t *testing.T, net *dnn.Graph, name string) *dnn.Layer {
	t.Helper()
	for _, l := range net.Layers {
		if l.Name == name {
			return l
		}
	}
	t.Fatalf("no layer %q", name)
	return nil
}

// TestMutationFusionWrongConsumer: swap the fused relus of two
// conv+relu links. Each instruction still carries a relu of the right
// kind with consistent InstrOf bookkeeping, but the grafted relu is not
// its producer's graph successor — the single-consumer rule, recomputed
// from the graph, must reject both directions.
func TestMutationFusionWrongConsumer(t *testing.T) {
	p := compileNet(t, chainNet(), 3)
	net := p.Plan.Net
	r1, r2 := layerByName(t, net, "r1"), layerByName(t, net, "r2")
	j1, j2 := p.InstrOf[r1.ID], p.InstrOf[r2.ID]
	if j1 == j2 || len(p.Instrs[j1].EpiLayers) != 1 || len(p.Instrs[j2].EpiLayers) != 1 {
		t.Fatalf("chain net did not fuse both conv+relu links")
	}
	q := p.Clone()
	q.Instrs[j1].EpiLayers = []*dnn.Layer{r2}
	q.Instrs[j2].EpiLayers = []*dnn.Layer{r1}
	q.InstrOf[r1.ID], q.InstrOf[r2.ID] = j2, j1
	expectVerifierRejects(t, q, "fusion-wrong-consumer")
}

// TestMutationFusionLayoutMismatch: re-declare the fused relu's
// selected layout. The fused edge now hides a layout change the
// epilogue cannot perform — the layout-pair rule must reject.
func TestMutationFusionLayoutMismatch(t *testing.T) {
	// Fresh compile: the corruption edits the shared plan, so no Clone.
	p := compileNet(t, chainNet(), 3)
	r1 := layerByName(t, p.Plan.Net, "r1")
	was := p.Plan.Layouts[r1.ID]
	p.Plan.Layouts[r1.ID] = (was + 1) % 8
	expectVerifierRejects(t, p, "fusion-layout-mismatch")
}

// TestMutationFusionHiddenConversion: claim a legalized chain on the
// fused producer→epilogue edge. A conversion can never hide inside a
// fused instruction — the conversion-free-edge rule must reject.
func TestMutationFusionHiddenConversion(t *testing.T) {
	p := compileNet(t, chainNet(), 3)
	net := p.Plan.Net
	c1, r1 := layerByName(t, net, "c1"), layerByName(t, net, "r1")
	tr := tensor.DirectTransforms()[0]
	p.Plan.Conversions[[2]int{c1.ID, r1.ID}] = []tensor.Transform{tr}
	expectVerifierRejects(t, p, "fusion-hidden-conversion")
}

// TestMutationFusionResidualSlotConflict: move a fused conv+add+relu
// instruction into its residual operand's slot. The epilogue reads the
// residual while the GEMM is writing the very same buffer — the
// adversarial-interleaving slot discipline must reject.
func TestMutationFusionResidualSlotConflict(t *testing.T) {
	p := compileFor(t, "resnet-18", "pbqp", 3)
	found := false
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.Epi != gemm.EpiAdd && ins.Epi != gemm.EpiAddReLU {
			continue
		}
		res := &p.Instrs[ins.Args[1]]
		if ins.Slot < 0 || res.Slot < 0 || ins.Slot == res.Slot {
			continue
		}
		q := p.Clone()
		q.Instrs[j].Slot = res.Slot
		expectVerifierRejects(t, q, "fusion-residual-slot-conflict")
		found = true
		break
	}
	if !found {
		t.Fatal("no slotted fused residual instruction found; mutation class untested")
	}
}

// cvtInProgram compiles a crafted plan whose convolution absorbs its
// input conversion: an all-HWC selection with the network input pinned
// to CHW and the conv pinned to an im2row primitive, whose patch pack
// gathers CHW directly. Real model plans pick layout-consistent chains,
// so absorbed-conversion coverage comes from this crafted plan.
func cvtInProgram(t testing.TB, batch int) *program.Program {
	t.Helper()
	b, x := dnn.NewBuilder("cvtin", 3, 12, 12)
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.ReLU(x, "r1")
	b.MaxPool(x, "tail", 2, 2, 0)
	net := b.Graph()
	plan, err := selector.LocalOptimal(net, tensor.HWC, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var prim *conv.Primitive
	for _, p := range conv.Library() {
		if p.Name == "im2row-pack" {
			prim = p
		}
	}
	if prim == nil || !prim.CanAbsorbInput(tensor.CHW) {
		t.Fatal("im2row-pack missing or cannot absorb CHW input")
	}
	convID := net.ConvLayers()[0]
	if !prim.Supports(net.Layers[convID].Conv) {
		t.Fatalf("im2row-pack does not support %s", net.Layers[convID].Conv)
	}
	plan.Primitives[convID] = prim
	plan.Layouts[convID] = prim.Out
	inID := net.Layers[0].ID
	plan.Layouts[inID] = tensor.CHW
	var chw2hwc *tensor.Transform
	for _, d := range tensor.DirectTransforms() {
		if d.From == tensor.CHW && d.To == tensor.HWC {
			d := d
			chw2hwc = &d
		}
	}
	if chw2hwc == nil {
		t.Fatal("no direct CHW→HWC transform in the library")
	}
	plan.Conversions[[2]int{inID, convID}] = []tensor.Transform{*chw2hwc}
	p, err := program.CompileBatch(plan, batch)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVerifyAcceptsAbsorbedConversion: the crafted absorbed-conversion
// program passes the independent verifier (CompileBatch already ran it
// via DebugVerify; this re-checks the returned value and pins the
// absorption actually happened).
func TestVerifyAcceptsAbsorbedConversion(t *testing.T) {
	p := cvtInProgram(t, 3)
	if p.Stats.FusedConversions != 1 {
		t.Fatalf("crafted plan absorbed %d conversions, want 1", p.Stats.FusedConversions)
	}
	var fused *program.Instr
	for j := range p.Instrs {
		if len(p.Instrs[j].CvtIn) > 0 {
			fused = &p.Instrs[j]
		}
	}
	if fused == nil {
		t.Fatal("no instruction carries the absorbed conversion")
	}
	if fused.CvtIn[0].From != tensor.CHW || fused.CvtIn[0].To != tensor.HWC {
		t.Fatalf("absorbed chain is %s→%s, want CHW→HWC", fused.CvtIn[0].From, fused.CvtIn[0].To)
	}
	if err := Program(p); err != nil {
		t.Fatalf("verifier rejects the absorbed-conversion program: %v", err)
	}
}

// TestMutationFusionUnabsorbablePair: re-declare the absorbed chain —
// in both the plan and the instruction, so they agree — as a layout
// pair no patch pack can gather (CHW4→HWC). The absorption-capability
// rule, recomputed against the selected primitive, must reject.
func TestMutationFusionUnabsorbablePair(t *testing.T) {
	p := cvtInProgram(t, 3)
	bogus := tensor.Transform{Name: "chw4-hwc", From: tensor.CHW4, To: tensor.HWC}
	for j := range p.Instrs {
		if len(p.Instrs[j].CvtIn) > 0 {
			p.Instrs[j].CvtIn[0] = bogus
		}
	}
	inID := p.Plan.Net.Layers[0].ID
	convID := p.Plan.Net.ConvLayers()[0]
	p.Plan.Conversions[[2]int{inID, convID}] = []tensor.Transform{bogus}
	expectVerifierRejects(t, p, "fusion-unabsorbable-pair")
}

// TestMutationFusionChainDisagrees: the absorbed chain must BE the
// plan's chain for the edge; an instruction absorbing a different
// transform than the plan legalized is rejected.
func TestMutationFusionChainDisagrees(t *testing.T) {
	p := cvtInProgram(t, 3)
	for j := range p.Instrs {
		if len(p.Instrs[j].CvtIn) > 0 {
			p.Instrs[j].CvtIn[0].Name = "not-the-plan-chain"
		}
	}
	expectVerifierRejects(t, p, "fusion-chain-disagrees")
}
