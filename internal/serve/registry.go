package serve

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/obs"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// Config configures model loading for a Registry.
type Config struct {
	// Threads is the selection-time thread budget per engine (the
	// engine itself caps its pool at GOMAXPROCS). Default: GOMAXPROCS.
	Threads int

	// Prof prices primitives and transforms during plan selection.
	// Default: the analytic Intel Haswell model. A deployment can pass
	// a cost.Table loaded from a serialized profile (examples/deploy's
	// §4 story) so the PBQP solve uses on-device measurements without
	// ever executing a primitive at startup.
	Prof cost.Profiler

	// Calibrate enables calibrate-on-start: before any model loads, the
	// registry runs the measured profiler (cost.Measure, wall-clocking
	// the real primitives — batched entry points included) over every
	// hosted network at every batch bucket, and selection runs against
	// the resulting table instead of Prof. When TablePath names an
	// existing file the measured table is loaded from it instead of
	// re-profiled, so a restarted server reuses its previous
	// calibration; a fresh calibration is persisted there.
	Calibrate bool
	// TablePath is where the calibration table is persisted/reloaded.
	// Empty means calibrate in memory only (measured every start).
	TablePath string
	// CalibrateReps is the best-of repetition count per measurement
	// (default 1: calibration runs every primitive at every bucket, so
	// startup time matters more than single-run jitter).
	CalibrateReps int
	// CalibrateTopK bounds measurement per scenario to the analytic
	// model's k cheapest candidates per bucket (default 4; ≤ 0 keeps
	// the default — measuring all ~70 library entries on a full-size
	// network costs hours).
	CalibrateTopK int

	// ProfileSample enables per-instruction execution profiling on every
	// bucket engine, timing one dispatched chunk in every ProfileSample
	// (1 = always-on, the bench setting; serving defaults pick a sparse
	// rate like 16 so the hot path pays one atomic counter bump per
	// unsampled chunk). 0 disables profiling entirely: the engines carry
	// no profile and the per-instruction path allocates and times
	// nothing. The aggregated predicted-vs-observed tables surface on
	// GET /layers and feed the ROADMAP's adaptive re-selection loop.
	ProfileSample int

	// Batch tunes every model's dynamic batcher.
	Batch BatchOptions
}

func (c *Config) defaults() {
	if c.Threads < 1 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Prof == nil {
		c.Prof = cost.NewModel(cost.IntelHaswell)
	}
	if c.CalibrateReps < 1 {
		c.CalibrateReps = 1
	}
	if c.CalibrateTopK < 1 {
		c.CalibrateTopK = 4
	}
}

// Bucket is one batch-size bucket of a served model: the bucket's own
// PBQP plan — selected against costs priced at exactly this batch size
// — and the engine compiled from it.
type Bucket struct {
	// Batch is the bucket's maximum batch size (the N its program's
	// memory plan and its plan's costs were computed for).
	Batch  int
	Plan   *selector.Plan
	Engine *exec.Engine
}

// Model is one served network: its graph, the per-bucket PBQP plans and
// the engines compiled from them (shared by all requests), and the
// dynamic batcher feeding those engines. The Buckets slice is the
// single source of truth for plans and engines; Plan/Engine/EngineFor
// are views over it.
type Model struct {
	Name    string
	Net     *dnn.Graph
	Weights *exec.Weights

	// Buckets holds one entry per batch-size bucket, ascending
	// (1, 2, 4, … MaxBatch): each bucket selects its own plan against
	// batch-N costs and compiles its own program — the memory plan is
	// N-dependent, and so is the cost-optimal primitive per layer.
	Buckets []Bucket

	Batcher *Batcher
	Metrics *Metrics

	InC, InH, InW    int // network input shape
	OutC, OutH, OutW int // network output shape
}

// Plan returns the batch-1 (per-image) plan — what the naive baseline
// and single-image paths report against.
func (m *Model) Plan() *selector.Plan { return m.Buckets[0].Plan }

// Engine returns the per-image (batch-1) engine: the naive
// goroutine-per-request baseline path and the singleton-flush fallback.
func (m *Model) Engine() *exec.Engine { return m.Buckets[0].Engine }

// batchBuckets enumerates the program-cache bucket sizes for a batcher
// limit: powers of two up to maxBatch, plus maxBatch itself.
func batchBuckets(maxBatch int) []int {
	var bs []int
	for b := 1; b < maxBatch; b *= 2 {
		bs = append(bs, b)
	}
	return append(bs, maxBatch)
}

// EngineFor returns the cached engine whose planned batch is the
// smallest bucket that fits n (the largest bucket for oversized n,
// which the engine then chunks).
func (m *Model) EngineFor(n int) *exec.Engine {
	for _, b := range m.Buckets {
		if b.Engine.MaxBatch() >= n {
			return b.Engine
		}
	}
	return m.Buckets[len(m.Buckets)-1].Engine
}

// LoadModel builds, selects, and compiles one named network (see
// models.Names) and wraps it in a running batcher. Selection and
// compilation happen once per batch-size bucket, all at startup, so no
// request ever waits on planning: each bucket gets its own PBQP solve
// against costs priced at that batch size (selector.SelectBatch) and
// its own compiled program. The batcher routes every flush to the
// bucket engine covering its size.
func LoadModel(name string, cfg Config) (*Model, error) {
	cfg.defaults()
	bo := cfg.Batch
	bo.defaults()
	net, err := models.Build(name)
	if err != nil {
		return nil, err
	}
	w := exec.NewWeights(net)
	m := &Model{
		Name:    name,
		Net:     net,
		Weights: w,
	}
	for _, b := range batchBuckets(bo.MaxBatch) {
		plan, err := selector.SelectBatch(net, b, selector.Options{Prof: cfg.Prof, Threads: cfg.Threads})
		if err != nil {
			return nil, fmt.Errorf("serve: selecting plan for %s (batch %d): %w", name, b, err)
		}
		eng, err := exec.NewEngineBatch(plan, w, b)
		if err != nil {
			return nil, fmt.Errorf("serve: compiling %s (batch %d): %w", name, b, err)
		}
		if cfg.ProfileSample > 0 {
			eng.EnableProfiling(cfg.ProfileSample)
		}
		m.Buckets = append(m.Buckets, Bucket{Batch: b, Plan: plan, Engine: eng})
	}
	met := NewMetrics()
	m.Metrics = met
	m.Batcher = NewBatcher(func(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
		return m.EngineFor(len(ins)).RunBatch(ins)
	}, cfg.Batch, met)
	in := net.Layers[0]
	m.InC, m.InH, m.InW = in.OutC, in.OutH, in.OutW
	out := net.Layers[len(net.Layers)-1]
	m.OutC, m.OutH, m.OutW = out.OutC, out.OutH, out.OutW
	return m, nil
}

// LayerTables snapshots every bucket engine's per-layer
// predicted-vs-observed profile table, ascending by bucket size. Nil
// when profiling is disabled (Config.ProfileSample = 0); buckets that
// have not yet sampled a chunk still appear, with zero observations.
func (m *Model) LayerTables() []*obs.LayerTable {
	var out []*obs.LayerTable
	for _, b := range m.Buckets {
		if t := b.Engine.LayerTable(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// BucketStats describes one bucket's selection for /stats: which
// primitive each conv layer runs at this batch size, and the predicted
// versus observed per-image cost — the closed loop between the §3.1
// profile, the PBQP solve, and what the engine actually delivers.
type BucketStats struct {
	Batch int `json:"batch"`
	// Primitives maps conv layer name → selected primitive name.
	Primitives map[string]string `json:"primitives"`
	// PredictedNsPerImage is the plan's TotalCost scaled to one image.
	PredictedNsPerImage float64 `json:"predicted_ns_per_image"`
	// ObservedNsPerImage is the measured mean engine wall time per
	// image over the dispatched batch sizes this bucket serves (0 until
	// the bucket has served a batch).
	ObservedNsPerImage float64 `json:"observed_ns_per_image"`
	// Optimal reports whether the bucket's PBQP solve proved optimality.
	Optimal bool `json:"pbqp_optimal"`
}

// BucketStats snapshots every bucket's selection and its predicted vs
// observed per-image cost. A bucket serves the dispatched batch sizes
// in (previous bucket, this bucket], mirroring EngineFor's routing.
func (m *Model) BucketStats() []BucketStats {
	out := make([]BucketStats, 0, len(m.Buckets))
	lo := 1
	for _, b := range m.Buckets {
		prims := make(map[string]string, len(b.Plan.Primitives))
		for id, p := range b.Plan.Primitives {
			prims[m.Net.Layers[id].Name] = p.Name
		}
		out = append(out, BucketStats{
			Batch:               b.Batch,
			Primitives:          prims,
			PredictedNsPerImage: b.Plan.CostPerImage() * 1e9,
			ObservedNsPerImage:  m.Metrics.ObservedNsPerImage(lo, b.Batch),
			Optimal:             b.Plan.Optimal,
		})
		lo = b.Batch + 1
	}
	return out
}

// Registry hosts multiple named models behind one server process.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
}

// calibrationProfiler resolves the profiler a calibrating registry
// selects against: the table at cfg.TablePath when it exists (a
// restarted server reuses its previous calibration), else a fresh
// measured calibration, persisted to cfg.TablePath when set. A reused
// table is topped up, not trusted blindly: every hosted network is
// merged at every current batch bucket (Table.AddNetTopK skips entries
// already measured), so a restart with a larger -max-batch or a newly
// hosted model measures exactly the missing entries — instead of
// silently selecting non-amortized fallback plans for uncovered
// buckets, or failing startup on an uncovered model — and the enriched
// table is persisted back.
func calibrationProfiler(names []string, cfg *Config) (*cost.Table, error) {
	var tab *cost.Table
	if cfg.TablePath != "" {
		if f, err := os.Open(cfg.TablePath); err == nil {
			tab, err = cost.LoadTable(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("serve: reusing calibration %s: %w", cfg.TablePath, err)
			}
		}
	}
	fresh := tab == nil
	if fresh {
		tab = cost.NewTable("calibrated-"+runtime.GOOS+"-"+runtime.GOARCH, cfg.Threads)
	}
	before := tab.NumEntries()

	bo := cfg.Batch
	bo.defaults()
	buckets := batchBuckets(bo.MaxBatch)
	ranker := cfg.Prof
	meas := &cost.Measure{Reps: cfg.CalibrateReps, Threads: cfg.Threads}
	lib := conv.Library()
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		net, err := models.Build(name)
		if err != nil {
			return nil, err
		}
		tab.AddNetTopK(net, lib, ranker, meas, buckets, cfg.CalibrateTopK)
	}

	if cfg.TablePath != "" && (fresh || tab.NumEntries() != before) {
		f, err := os.Create(cfg.TablePath)
		if err != nil {
			return nil, fmt.Errorf("serve: persisting calibration: %w", err)
		}
		defer f.Close()
		if err := tab.Save(f); err != nil {
			return nil, fmt.Errorf("serve: persisting calibration: %w", err)
		}
	}
	return tab, nil
}

// NewRegistry loads every named model. With cfg.Calibrate it first
// resolves the measured cost table (reused from cfg.TablePath or
// profiled on the spot and persisted there) and selects every bucket
// plan against it. On any failure it closes the models already loaded
// and returns the error.
func NewRegistry(names []string, cfg Config) (*Registry, error) {
	cfg.defaults()
	if cfg.Calibrate {
		tab, err := calibrationProfiler(names, &cfg)
		if err != nil {
			return nil, err
		}
		cfg.Prof = tab
	}
	r := &Registry{models: make(map[string]*Model, len(names))}
	for _, name := range names {
		if _, ok := r.models[name]; ok {
			continue
		}
		m, err := LoadModel(name, cfg)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.models[name] = m
	}
	return r, nil
}

// Get returns the named model, if hosted.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Names lists hosted models in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close drains every model's batcher (graceful shutdown: admitted
// requests complete, new ones get ErrClosed).
func (r *Registry) Close() {
	r.mu.RLock()
	ms := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func(m *Model) {
			defer wg.Done()
			m.Batcher.Close()
		}(m)
	}
	wg.Wait()
}
