//go:build amd64 && !purego

package gemm

// cpuidex and xgetbv0 are the two-instruction stubs in cpuid_amd64.s —
// the stdlib-only replacement for a cpu-feature dependency.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// packedRowFMA is the AVX2/FMA microkernel in pack_amd64.s: it adds one
// A-row × packed-B-panel product into a C row, 16 columns (two YMM
// registers) per pass, and applies the fused epilogue to each 16-column
// tile while it is register-resident. ai points at the row's kc-long
// k-slab, bp at the first panel element of the first column to process,
// ci at the matching C element; cols (a multiple of 16) is how many
// columns to update and ldb the panel's row stride. r and bias likewise
// point at the first element their epilogue reads, and may be nil when
// epi reads neither.
//
// The //dnn:hotpath annotation is declarative here: hotpathalloc and
// the BCE guard both exempt bodyless (assembly) declarations by
// construction — there is no Go body to audit — so the hot-loop
// contract for this kernel is enforced by the differential fuzz and
// the gemmsweep trend instead of by lint.
//
//dnn:hotpath
//go:noescape
func packedRowFMA(ai *float32, kc int, bp, ci *float32, cols, ldb, epi int, r, bias *float32)

// simdAvailable reports CPU+OS support for the AVX2/FMA microkernel,
// detected once at startup.
func simdAvailable() bool { return hasAVX2FMA }

var hasAVX2FMA = detectAVX2FMA()

// detectAVX2FMA is the textbook runtime feature check: FMA3 and AVX
// with OSXSAVE on leaf 1, YMM (and XMM) state enabled in XCR0, and AVX2
// on leaf 7 — all four must hold before the kernel's VEX-256 FMA
// instructions are safe to execute.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fma     = 1 << 12 // CPUID.1:ECX.FMA
		osxsave = 1 << 27 // CPUID.1:ECX.OSXSAVE — XGETBV is usable
		avx     = 1 << 28 // CPUID.1:ECX.AVX
	)
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM): the OS context-switches
	// the registers the kernel clobbers.
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5 // CPUID.7.0:EBX.AVX2
	return ebx7&avx2 != 0
}
