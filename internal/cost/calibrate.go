package cost

import (
	"math"
	"strings"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/tensor"
)

// This file concentrates every calibration constant of the analytic
// model. The efficiency values are sustained fractions of a core's
// per-lane peak ("what share of peak does this inner loop reach when
// its data is cache resident"), chosen so the *relative* behaviour
// matches the paper's measurements: GEMM-based families sustain more
// than naive loop nests, blocked beats unblocked, pathological loop
// orders crawl, and each algorithm has a natural layout it vectorizes
// best in. Absolute times then land in the paper's ballpark because
// operation counts and peak rates are real (e.g. sum2d on AlexNet
// models to ≈1 s single-threaded on the Haswell machine versus the
// paper's measured 712 ms).

// familyBaseEff is the fallback efficiency per family.
var familyBaseEff = map[conv.Family]float64{
	conv.FamilySum2D:    0.34, // tight textbook loop, compiler-friendly
	conv.FamilyDirect:   0.15,
	conv.FamilyIm2:      0.19,
	conv.FamilyKn2:      0.18,
	conv.FamilyWinograd: 0.21,
	conv.FamilyFFT:      0.14,
}

// nameBaseEff overrides the family default for specific variants.
var nameBaseEff = map[string]float64{
	// Direct family: loop order and tiling quality spread.
	"direct-mchw":    0.20,
	"direct-cmhw":    0.13,
	"direct-hwmc":    0.11,
	"direct-mhwc":    0.17,
	"direct-hcw":     0.16,
	"direct-cwh":     0.06, // cache-hostile column order
	"direct-wch":     0.06,
	"direct-kkmc":    0.19,
	"direct-strided": 0.24, "direct-reg2x2": 0.22,
	"im2col-strip":   0.17,
	"direct-tiled-8": 0.21, "direct-tiled-16": 0.23, "direct-tiled-32": 0.22,
	"direct-hwc-vf4": 0.092, "direct-hwc-vf8": 0.092,
	"direct-chw-wvf4": 0.09, "direct-chw-wvf8": 0.09,
	"direct-chw4": 0.09, "direct-chw8": 0.095,

	// im2: the GEMM engine dominates; naive GEMM is the outlier. The
	// packed register-tiled kernel sustains ~3.2× the blocked kernel's
	// GFLOP/s on square panels (measured min-of-3, 512–1024 sweep on the
	// reference box, pure-Go microkernel); the -pack entries carry that
	// ratio, derated slightly for the conv-shaped panels' pack overhead.
	// The -abt entries keep their stock-backend values even though TransB
	// now rides the packed path, and the entries deliberately do NOT
	// carry the AVX2/FMA microkernel's further ~4.4× (doing so makes
	// im2-pack dominate every layer and erases the paper's selection
	// spread): this analytic table models the *paper's* platforms and
	// relative GEMM ratios (Figure 4's story), while the tuned Go backend
	// — whichever microkernel variant it dispatches to — is priced by
	// wall-clock calibration (Measure/AddNetTopK) wherever selection
	// consumes real measured costs. Calibrated cost tables are therefore
	// variant-specific; Table.GemmVariant records the provenance.
	"im2col-ab": 0.15, "im2col-abt": 0.145, "im2col-blk": 0.20,
	"im2col-pack":  0.45,
	"im2col-naive": 0.05,
	"im2row-ab":    0.155, "im2row-abt": 0.15, "im2row-blk": 0.20,
	"im2row-pack":   0.46,
	"im2row-naive":  0.05,
	"im2col-hwcout": 0.145, "im2row-chwout": 0.145, "im2col-chw4": 0.19,
	"im2col-sparse": 0.13,

	// kn2: slightly below im2 (more GEMM launches, shift-add pass). The
	// packed variant's per-tap GEMMs are small, so it keeps less of the
	// packed kernel's headroom than the im2 slab GEMMs do.
	"kn2row-ab": 0.14, "kn2row-abt": 0.135, "kn2row-blk": 0.155,
	"kn2row-pack": 0.35,
	"kn2row-par":  0.15, "kn2col-ab": 0.135, "kn2col-abt": 0.13,
	"kn2-fused": 0.10, "kn2-sparse": 0.10,

	// fft: the precomputing variants amortize spectra.
	"fft1d-naive": 0.04, "fft1d-pre": 0.18,
	"fft1d-pre-hcw": 0.18, "fft1d-pre-cwh": 0.15,
}

// baseEff returns the sustained-efficiency fraction for a primitive.
// Winograd variants carry a layout-naturalness factor: the 2D
// algorithm's pointwise stage vectorizes over channels and so wants
// channels-last (HWC) data; the row-wise 1D algorithm wants
// row-contiguous rows (HCW/CHW). Off-layout variants exist but pay for
// strided gathers.
func baseEff(p *conv.Primitive) float64 {
	if e, ok := nameBaseEff[p.Name]; ok {
		return e
	}
	if p.Family == conv.FamilyWinograd {
		e := familyBaseEff[p.Family]
		if p.Wino2D {
			switch p.In {
			case tensor.HWC:
				// natural
			case tensor.CHW:
				e *= 0.60
			default:
				e *= 0.55
			}
		} else {
			// The row-sum construction re-reads its output accumulators
			// once per kernel row: a flat ~15% tax on top of layout.
			e *= 0.85
			switch p.In {
			case tensor.HCW:
				// natural
			case tensor.CHW:
				e *= 0.80 // row base pointers strided by a full plane
			default:
				e *= 0.60
			}
		}
		return e
	}
	return familyBaseEff[p.Family]
}

// scenarioEffMod derates a primitive's efficiency for layer shapes its
// inner loop handles badly — the mechanism that makes the fastest
// variant *layer-dependent*, as the paper observes (§1: "some
// algorithms perform well across a range of inputs, whereas others …
// perform extremely well in particular cases").
func scenarioEffMod(p *conv.Primitive, s conv.Scenario) float64 {
	mod := 1.0
	switch p.Family {
	case conv.FamilyDirect:
		// Channel-inner variants need enough channels to fill lanes.
		if p.In == tensor.HWC || p.In.BlockSize() > 0 {
			mod *= float64(s.C) / float64(s.C+12)
		}
		// Row-inner vectorized variants need wide rows, and striding
		// turns their contiguous vector loads into gathers.
		if strings.Contains(p.Name, "wvf") {
			mod *= float64(s.OutW()) / float64(s.OutW()+8)
			if s.Stride > 1 {
				mod /= math.Sqrt(float64(s.Stride))
			}
		}
	case conv.FamilyKn2:
		// Thin C makes the per-tap GEMM panels degenerate (Table 1:
		// "bad case: few channels").
		mod *= float64(s.C) / float64(s.C+6)
	case conv.FamilyWinograd:
		// Boundary tiles waste work on small maps; bigger tiles waste
		// more. 1D only tiles along the row.
		wm := p.WinoM
		fracW := float64(s.OutW()) / float64(((s.OutW()+wm-1)/wm)*wm)
		mod *= fracW
		if p.Wino2D {
			fracH := float64(s.OutH()) / float64(((s.OutH()+wm-1)/wm)*wm)
			mod *= fracH
		}
		// The pointwise stage vectorizes over channels.
		mod *= float64(s.C) / float64(s.C+4)
	case conv.FamilyFFT:
		// Short rows drown in transform overhead.
		mod *= float64(s.W) / float64(s.W+16)
	}
	if mod < 0.05 {
		mod = 0.05
	}
	return mod
}

// batchGain is the batched-execution efficiency headroom of a
// primitive's RunBatch implementation over N per-image dispatches,
// beyond what operation counts capture: the batched cost model applies
// 1 + batchGain·(1 − 1/N) as an efficiency multiplier. Calibrated from
// wall-clock measurements of the real Go entry points on the reference
// box (cost.Measure, best-of-3, batch 8 vs 8 × batch 1):
//
//   - batched wino2d restructures the per-tile pointwise loops into one
//     blocked GEMM per Winograd-domain point streaming all N images'
//     tiles — measured 2.2–4.4× per image over the per-image primitive
//     (on top of the kernel-transform amortization setupOps counts);
//   - batched im2row feeds one tall patch matrix to a single GEMM,
//     a modest measured gain (~0.9× per-image cost at batch 8);
//   - batched im2col's de-interleaving writeback cancels its single
//     wide GEMM's advantage — measured batch-neutral, so no gain.
//
// Primitives without a RunBatch implementation execute through the
// per-image fallback and get no gain by construction.
func batchGain(p *conv.Primitive) float64 {
	if p.RunBatch == nil {
		return 0
	}
	switch {
	case p.Family == conv.FamilyWinograd && p.Wino2D:
		return 1.4
	case p.Family == conv.FamilyIm2 && strings.HasPrefix(p.Name, "im2row"):
		return 0.10
	}
	return 0
}

// transformFactorByName maps each direct layout-transform routine to
// its slowdown versus streaming memcpy bandwidth. Row-block moves keep
// whole cache lines; per-element permutations (channel interleaves,
// in-plane transposes) are strided gathers that miss constantly.
var transformFactorByName = map[string]float64{
	"chw2hcw": 7, "hcw2chw": 7, // row-granular shuffles
	"hwc2whc": 7, "whc2hwc": 7,
	"cwh2wch": 7, "wch2cwh": 7,
	"chw2hwc": 16, "hwc2chw": 16, // full channel interleave
	"chw2cwh": 14, "cwh2chw": 14, // in-plane transpose
	"chw2chw4": 9, "chw42chw": 9, // block pack/unpack
	"chw42chw8": 8, "chw82chw4": 8,
	"hwc2chw8": 12,
}

// transformFactor prices a transform routine relative to streaming.
func transformFactor(tr tensor.Transform) float64 {
	if f, ok := transformFactorByName[tr.Name]; ok {
		return f
	}
	return 14
}
