package program

import (
	"fmt"
	"strings"
)

// Source renders the program as the readable call-sequence listing the
// paper's §5.2 code generator would emit — one line per instruction,
// in execution order, annotated with the memory plan. The same
// instruction stream the engine executes produces this listing, so the
// printout can never drift from what actually runs.
func (p *Program) Source() string {
	var b strings.Builder
	plan := p.Plan
	fmt.Fprintf(&b, "// program for %s (strategy=%s threads=%d)\n",
		plan.Net.Name, plan.Strategy, plan.Threads)
	fmt.Fprintf(&b, "// predicted cost: %.3f ms (nodes %.3f + transforms %.3f)\n",
		plan.TotalCost()*1e3, plan.NodeCost*1e3, plan.EdgeCost*1e3)
	s := p.Stats
	fmt.Fprintf(&b, "// %d instructions (%d conversions, %d in-place), %d slots, batch %d\n",
		s.Instructions, s.Conversions, s.InPlace, s.Slots, p.Batch)
	if s.FusedEpilogues > 0 || s.FusedConversions > 0 {
		fmt.Fprintf(&b, "// fusion: %d epilogue layers + %d conversions folded; %d instructions vs %d unfused (Δ%d), peak resident %s vs %s unfused\n",
			s.FusedEpilogues, s.FusedConversions, s.Instructions, s.UnfusedInstructions,
			s.UnfusedInstructions-s.Instructions, fmtBytes(s.PeakBytes), fmtBytes(s.UnfusedPeakBytes))
	}
	// Byte figures are batch totals: a batched program's slots hold
	// N-image slabs, so what actually sits resident scales with N.
	per := ""
	if p.Batch > 1 {
		per = fmt.Sprintf(" [%s/image]", fmtBytes(s.PeakBytes/int64(p.Batch)))
	}
	fmt.Fprintf(&b, "// peak resident %s for the batch%s on the sequential schedule (slots %s + dynamic %s; unplanned would hold %s)\n",
		fmtBytes(s.PeakBytes), per, fmtBytes(s.SlotBytes), fmtBytes(s.DynamicPeakBytes), fmtBytes(s.NaiveBytes))
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		fmt.Fprintf(&b, "%s = %s  // %s\n", ins.Name, p.call(ins), p.annotate(ins))
	}
	fmt.Fprintf(&b, "// memory plan: %d slots, %s for batch %d\n", len(p.SlotCap), fmtBytes(s.SlotBytes), p.Batch)
	for slot, cap := range p.SlotCap {
		var tenants []string
		for i := range p.Instrs {
			if p.Instrs[i].Slot == slot {
				tenants = append(tenants, p.Instrs[i].Name)
			}
		}
		fmt.Fprintf(&b, "//   slot %2d: %9d B  %s\n", slot, int64(cap)*4*int64(p.Batch), strings.Join(tenants, ", "))
	}
	return b.String()
}

// call renders an instruction's right-hand side. Fused instructions
// render explicitly: an epilogue appends "+relu"/"+add"/"+add+relu" to
// the callee, an absorbed input conversion inserts a ⟨cvt-in:FROM⟩
// marker, and an EpiAdd residual appears as a second argument.
func (p *Program) call(ins *Instr) string {
	names := make([]string, len(ins.Args))
	for i, a := range ins.Args {
		names[i] = p.Instrs[a].Name
	}
	args := strings.Join(names, ", ")
	switch ins.Op {
	case OpInput:
		return "input()"
	case OpConv:
		callee := ins.Prim.Name
		if len(ins.CvtIn) > 0 {
			callee += fmt.Sprintf("⟨cvt-in:%s⟩", ins.CvtIn[0].From)
		}
		callee += epiSuffix(ins)
		return fmt.Sprintf("%s(%s)", callee, args)
	case OpConvert:
		// A fused chain renders as nested direct-transform calls.
		arg := names[0]
		for _, tr := range ins.Chain {
			arg = fmt.Sprintf("%s(%s)", tr.Name, arg)
		}
		return arg
	default:
		return fmt.Sprintf("%s%s(%s)", ins.Op, epiSuffix(ins), args)
	}
}

// epiSuffix renders the fused-epilogue marker ("+relu", "+add",
// "+add+relu"), empty for unfused instructions.
func epiSuffix(ins *Instr) string {
	if len(ins.EpiLayers) == 0 {
		return ""
	}
	return "+" + ins.Epi.String()
}

// annotate renders an instruction's trailing comment: operator detail,
// value shape and layout, and where its output lives.
func (p *Program) annotate(ins *Instr) string {
	var parts []string
	switch ins.Op {
	case OpConv:
		parts = append(parts, fmt.Sprintf("%s, %s→%s", ins.Layer.Conv, ins.Prim.In, ins.Prim.Out))
	case OpConvert:
		parts = append(parts, fmt.Sprintf("%s→%s", ins.Chain[0].From, ins.Layout))
	default:
		parts = append(parts, ins.Layout.String())
	}
	parts = append(parts, fmt.Sprintf("%d×%d×%d", ins.C, ins.H, ins.W))
	if len(ins.EpiLayers) > 0 {
		names := make([]string, len(ins.EpiLayers))
		for i, fl := range ins.EpiLayers {
			names[i] = fl.Name
		}
		parts = append(parts, "fuses "+strings.Join(names, "+"))
	}
	switch {
	case ins.Alias:
		parts = append(parts, fmt.Sprintf("alias of %s", p.Instrs[ins.Args[ins.Donor]].Name))
	case ins.Donor >= 0:
		parts = append(parts, fmt.Sprintf("in-place over %s", p.Instrs[ins.Args[ins.Donor]].Name))
	case ins.ID == p.Output:
		parts = append(parts, "fresh (caller-owned)")
	case ins.Slot == NoSlot:
		parts = append(parts, "dynamic")
	default:
		parts = append(parts, fmt.Sprintf("slot %d", ins.Slot))
	}
	return strings.Join(parts, ", ")
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
