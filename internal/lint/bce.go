package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// BCERegistry names the hot leaf kernels whose innermost loops must
// compile without bounds checks. These are the loops that execute once
// per multiply-accumulate of an inference; a regression that reintroduces
// a per-element check there is a real slowdown the test suite cannot
// see. Registration is per package path so the guard rebuilds only what
// it audits.
//
// Assembly kernels (packedRowFMA and the CPUID stubs in internal/gemm)
// are exempt by construction: they have no Go body, so the compiler
// emits no bounds checks for them and the index below never sees them
// (buildBCEIndex skips bodyless declarations). Their Go-side tail and
// head handling — packedRowPart — is registered instead.
var BCERegistry = map[string][]string{
	"pbqpdnn/internal/gemm": {"IKJ", "Blocked", "packedRowK4", "packedRowPart", "packB", "packBT", "applyEpiRow"},
	"pbqpdnn/internal/conv": {"im2colPatchesIntoCols", "im2rowPatchesInto", "winoAccumRow",
		"epiWritebackRow", "im2rowPatchesFromCHWInto", "im2colPatchesFromHWCIntoCols"},
	"pbqpdnn/internal/program": {"ReLUInto", "AddInto", "fcApply"},
}

// BCECheck is one compiler-reported bounds check, classified against
// the registry.
type BCECheck struct {
	File      string
	Line, Col int
	Kind      string // IsInBounds or IsSliceInBounds
	Func      string // enclosing function, "" if none found
	Violation bool
	Why       string // classification rationale
}

// BCEReport is the full audit: every check the compiler reported in the
// registry's packages, with the violations (checks inside a registered
// function's leaf loops) counted out.
type BCEReport struct {
	Checks     []BCECheck
	Violations int
}

// RunBCE rebuilds the registry's packages with the compiler's
// check_bce debug pass and classifies every reported bounds check. A
// check is a violation only when it sits inside a registered hot
// function AND inside a leaf loop — an innermost loop with no nested
// loops and no function calls. Checks hoisted to row-view slice
// expressions in outer loops, at function entry, or dragged in by an
// inlined callee are the accepted cost of the idiom; checks in the
// per-element loops are not. dir is the module root.
func RunBCE(dir string) (*BCEReport, error) {
	pkgs := make([]string, 0, len(BCERegistry))
	for p := range BCERegistry {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	// -a defeats the build cache: diagnostics only print when the
	// compiler actually runs.
	args := []string{"build", "-a"}
	for _, p := range pkgs {
		args = append(args, "-gcflags="+p+"=-d=ssa/check_bce/debug=1")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: bce build: %v\n%s", err, stderr.String())
	}

	idx, err := buildBCEIndex(dir, pkgs)
	if err != nil {
		return nil, err
	}

	report := &BCEReport{}
	sc := bufio.NewScanner(&stderr)
	for sc.Scan() {
		line := sc.Text()
		c, ok := parseBCELine(line)
		if !ok {
			continue
		}
		idx.classify(&c)
		if c.Violation {
			report.Violations++
		}
		report.Checks = append(report.Checks, c)
	}
	return report, nil
}

// parseBCELine parses "path/file.go:line:col: Found IsInBounds".
func parseBCELine(line string) (BCECheck, bool) {
	i := strings.Index(line, ": Found ")
	if i < 0 {
		return BCECheck{}, false
	}
	kind := strings.TrimSpace(line[i+len(": Found "):])
	parts := strings.Split(line[:i], ":")
	if len(parts) < 3 {
		return BCECheck{}, false
	}
	col, err1 := strconv.Atoi(parts[len(parts)-1])
	ln, err2 := strconv.Atoi(parts[len(parts)-2])
	if err1 != nil || err2 != nil {
		return BCECheck{}, false
	}
	return BCECheck{
		File: strings.Join(parts[:len(parts)-2], ":"),
		Line: ln,
		Col:  col,
		Kind: kind,
	}, true
}

// loopSpan is one for/range loop's line extent and its leaf-loop
// verdict.
type loopSpan struct {
	start, end int
	nested     bool // contains another loop
	calls      bool // contains a real function call (incl. copy/append)
}

// funcSpan is one function's line extent with its loops.
type funcSpan struct {
	name       string
	registered bool
	start, end int
	loops      []loopSpan
}

type bceIndex struct {
	funcs map[string][]funcSpan // relative file path → functions
}

// buildBCEIndex parses the registry packages' sources (syntax only) and
// records, per file, the function and loop line spans needed to
// classify check positions.
func buildBCEIndex(dir string, pkgs []string) (*bceIndex, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list for bce index: %v", err)
	}
	idx := &bceIndex{funcs: map[string][]funcSpan{}}
	fset := token.NewFileSet()
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		registered := map[string]bool{}
		for _, name := range BCERegistry[e.ImportPath] {
			registered[name] = true
		}
		for _, name := range e.GoFiles {
			abs := filepath.Join(e.Dir, name)
			rel, err := filepath.Rel(dir, abs)
			if err != nil {
				rel = abs
			}
			f, err := parser.ParseFile(fset, abs, nil, 0)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %v", rel, err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fs := funcSpan{
					name:       fd.Name.Name,
					registered: registered[fd.Name.Name],
					start:      fset.Position(fd.Pos()).Line,
					end:        fset.Position(fd.End()).Line,
				}
				collectLoops(fset, fd.Body, &fs.loops)
				idx.funcs[rel] = append(idx.funcs[rel], fs)
			}
		}
	}
	return idx, nil
}

// collectLoops records every for/range loop under n with its nesting
// and call content.
func collectLoops(fset *token.FileSet, n ast.Node, out *[]loopSpan) {
	ast.Inspect(n, func(node ast.Node) bool {
		var body *ast.BlockStmt
		switch l := node.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		span := loopSpan{
			start: fset.Position(node.Pos()).Line,
			end:   fset.Position(node.End()).Line,
		}
		ast.Inspect(body, func(inner ast.Node) bool {
			switch c := inner.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				span.nested = true
			case *ast.CallExpr:
				if isRealCall(c) {
					span.calls = true
				}
			}
			return true
		})
		*out = append(*out, span)
		return true
	})
}

// isRealCall distinguishes function calls — whose inlined bodies may
// legitimately carry checks into a loop — from type conversions and the
// len/cap builtins, which do not. This is a syntax-only judgment:
// selector calls and non-type identifiers count as calls; identifiers
// naming builtin types (and composite type expressions) are
// conversions.
func isRealCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "len", "cap",
			"bool", "string", "byte", "rune", "uintptr",
			"int", "int8", "int16", "int32", "int64",
			"uint", "uint8", "uint16", "uint32", "uint64",
			"float32", "float64", "complex64", "complex128":
			return false
		}
		return true
	case *ast.SelectorExpr:
		return true
	}
	return false // *ast.ArrayType etc.: a conversion
}

// classify fills in the enclosing function and the leaf-loop verdict
// for one reported check.
func (idx *bceIndex) classify(c *BCECheck) {
	var fn *funcSpan
	for i := range idx.funcs[c.File] {
		f := &idx.funcs[c.File][i]
		if c.Line >= f.start && c.Line <= f.end {
			fn = f
			break
		}
	}
	if fn == nil {
		c.Why = "outside any function"
		return
	}
	c.Func = fn.name
	if !fn.registered {
		c.Why = "function not registered"
		return
	}
	var loop *loopSpan
	for i := range fn.loops {
		l := &fn.loops[i]
		if c.Line < l.start || c.Line > l.end {
			continue
		}
		if loop == nil || l.start > loop.start {
			loop = l // innermost: latest-starting containing loop
		}
	}
	switch {
	case loop == nil:
		c.Why = "outside any loop (function-level setup)"
	case loop.nested:
		c.Why = "non-leaf loop (row/tile setup)"
	case loop.calls:
		c.Why = "leaf loop with calls (inlined callee checks)"
	default:
		c.Violation = true
		c.Why = "bounds check in registered hot leaf loop"
	}
}
