package exec

// Crafted absorbed-conversion equivalence: real model plans pick
// layout-consistent chains, so the pack-fused conversion path
// (Instr.CvtIn — the im2row patch builder gathering CHW input
// directly) never fires on them. This harness doctors a plan the same
// way internal/verify's coverage does — all-HWC selection, the conv
// pinned to im2row-pack, the network input pinned to CHW with a
// legalized one-step CHW→HWC chain — and proves the absorbed gather
// computes the same function as the textbook reference executor.

import (
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// cvtInPlan builds the doctored plan whose convolution absorbs its
// input conversion into the patch pack.
func cvtInPlan(t *testing.T, threads int) *selector.Plan {
	t.Helper()
	b, x := dnn.NewBuilder("cvtin", 3, 12, 12)
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.ReLU(x, "r1")
	b.MaxPool(x, "tail", 2, 2, 0)
	net := b.Graph()
	plan, err := selector.LocalOptimal(net, tensor.HWC, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	var prim *conv.Primitive
	for _, p := range conv.Library() {
		if p.Name == "im2row-pack" {
			prim = p
		}
	}
	if prim == nil || !prim.CanAbsorbInput(tensor.CHW) {
		t.Fatal("im2row-pack missing or cannot absorb CHW input")
	}
	convID := net.ConvLayers()[0]
	if !prim.Supports(net.Layers[convID].Conv) {
		t.Fatalf("im2row-pack does not support %s", net.Layers[convID].Conv)
	}
	plan.Primitives[convID] = prim
	plan.Layouts[convID] = prim.Out
	inID := net.Layers[0].ID
	plan.Layouts[inID] = tensor.CHW
	for _, d := range tensor.DirectTransforms() {
		if d.From == tensor.CHW && d.To == tensor.HWC {
			plan.Conversions[[2]int{inID, convID}] = []tensor.Transform{d}
		}
	}
	if len(plan.Conversions[[2]int{inID, convID}]) != 1 {
		t.Fatal("no direct CHW→HWC transform in the library")
	}
	return plan
}

// TestEngineAbsorbedConversionMatchesReference executes the crafted
// plan batched (where the compiler absorbs the conversion) and
// image-by-image (where it does not — batch-1 programs keep explicit
// conversions), checking both against the reference on distinct images.
func TestEngineAbsorbedConversionMatchesReference(t *testing.T) {
	for _, threads := range []int{1, 2} {
		plan := cvtInPlan(t, threads)
		net := plan.Net
		w := NewWeights(net)
		inputs := []*tensor.Tensor{
			newInput(net, 41), newInput(net, 42), newInput(net, 43),
		}
		want := make([]*tensor.Tensor, len(inputs))
		for i, in := range inputs {
			ref, err := Reference(net, in, w)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = ref
		}
		for _, maxBatch := range []int{1, len(inputs)} {
			eng, err := NewEngineBatch(plan, w, maxBatch)
			if err != nil {
				t.Fatal(err)
			}
			if maxBatch > 1 && eng.prog.Stats.FusedConversions != 1 {
				t.Fatalf("batched crafted plan absorbed %d conversions, want 1",
					eng.prog.Stats.FusedConversions)
			}
			outs, err := eng.RunBatch(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range inputs {
				if !tensor.WithinRel(outs[i], want[i], relTol) {
					t.Errorf("cvtin (threads=%d maxBatch=%d): image %d diverges from reference by %g",
						threads, maxBatch, i, tensor.MaxRelDiff(outs[i], want[i]))
				}
			}
		}
	}
}
