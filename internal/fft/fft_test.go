package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1 << 20} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 12} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, sign*2*math.Pi*float64(k*j)/float64(n)))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		InPlace(got, false)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), rng.Float64())
		}
		y := append([]complex128(nil), x...)
		InPlace(y, false)
		InPlace(y, true)
		for i := range y {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two length")
		}
	}()
	InPlace(make([]complex128, 6), false)
}

func naiveConv(a, b []float32) []float32 {
	out := make([]float32, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			out[i+j] += a[i] * b[j]
		}
	}
	return out
}

func TestConvolveReal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, pair := range [][2]int{{1, 1}, {4, 3}, {7, 5}, {16, 11}, {31, 3}, {1, 9}} {
		a := make([]float32, pair[0])
		b := make([]float32, pair[1])
		for i := range a {
			a[i] = rng.Float32()*2 - 1
		}
		for i := range b {
			b[i] = rng.Float32()*2 - 1
		}
		got := ConvolveReal(a, b)
		want := naiveConv(a, b)
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("conv %v: out[%d] = %v, want %v", pair, i, got[i], want[i])
			}
		}
	}
	if out := ConvolveReal(nil, []float32{1}); out != nil {
		t.Error("empty input should give nil")
	}
}

func TestConvolveRealPre(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := make([]float32, 20)
	k := make([]float32, 5)
	for i := range a {
		a[i] = rng.Float32()
	}
	for i := range k {
		k[i] = rng.Float32()
	}
	n := NextPow2(len(a) + len(k) - 1)
	fk := Forward(k, n)
	got := ConvolveRealPre(a, fk, len(k))
	want := naiveConv(a, k)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPointwiseMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Pointwise(make([]complex128, 4), make([]complex128, 8))
}

// TestParsevalEnergy: property test — the DFT preserves energy up to the
// 1/N normalization (Parseval's theorem).
func TestParsevalEnergy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(6))
		x := make([]complex128, n)
		var te float64
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, 0)
			te += real(x[i]) * real(x[i])
		}
		InPlace(x, false)
		var fe float64
		for i := range x {
			fe += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		return math.Abs(te-fe/float64(n)) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		y := append([]complex128(nil), x...)
		InPlace(y, false)
	}
}
