package exec

// This file implements the batched, branch-parallel execution engine.
// Where Run (exec.go) walks the network one layer at a time with a
// fresh allocation per operator — the correctness oracle — the Engine
// is the production path. Construction compiles the legalized plan into
// the Program IR (internal/program): a topologically ordered
// instruction stream whose kernels, dependency counts and buffer slots
// are all resolved once, so per-run work is only the layer computations
// themselves. A dependency-counting DAG scheduler dispatches ready
// instructions onto a worker pool sized by the plan's Threads budget
// (so independent inception branches, residual shortcuts, and minibatch
// images run concurrently), and each image's intermediates live in a
// statically planned slot frame checked out of the engine's arena —
// there is no per-task map traffic, type switching, or refcounting.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// Engine executes one compiled program repeatedly. An Engine is safe
// for concurrent use — the serving layer (internal/serve) depends on
// this, and TestEngineConcurrentRunBatch pins it under the race
// detector. The audit trail for the contract:
//
//   - prog, kerns and w are written only during NewEngine and read-only
//     afterwards;
//   - every Run/RunBatch call owns its scheduler state (batchState) and
//     its per-image frames, so calls share no mutable structures;
//   - the arena, the one shared mutable structure, synchronizes get/put
//     internally, and frame buffers are returned to it only after the
//     batch's outputs (always fresh, never slot-backed) are extracted.
//
// The plan and weights must not be mutated while the Engine is in use.
// One caveat for concurrent callers: each RunBatch call runs its own
// worker pool, so K concurrent calls schedule up to K×workers
// CPU-bound goroutines — safe, but past GOMAXPROCS they only dilute
// each other. Callers wanting one shared dispatch pipeline should
// multiplex through a single RunBatch stream (serve.Batcher does
// exactly this).
//
// Threading model: the worker pool has plan.Threads workers and
// primitives run single-threaded inside a task — inter-instruction (and
// inter-image) parallelism replaces the intra-primitive parallelism
// Run uses. When the DAG leaves a worker alone (a chain network at
// batch 1), the scheduler hands that task the full thread budget so no
// part of the budget idles.
type Engine struct {
	prog    *program.Program
	w       *Weights
	workers int

	// kerns holds one bound kernel per instruction: the primitive call,
	// fast-path operator, or fused conversion, with weights and
	// destination policy resolved at construction.
	kerns []kernelFn

	arena *arena
}

// kernelFn executes one instruction for one image and returns the
// produced value. input is the image's caller-provided tensor (used by
// the OpInput kernel only).
type kernelFn func(fr *frame, input *tensor.Tensor, threads int) (*tensor.Tensor, error)

// frame is one image's execution state: the value table, the remaining
// dependency counts, and the slot buffers of the static memory plan.
type frame struct {
	vals []*tensor.Tensor
	deps []int32
	bufs [][]float32 // per planned slot, arena-owned
}

// NewEngine compiles the plan into the Program IR and binds every
// instruction's kernel.
func NewEngine(plan *selector.Plan, w *Weights) (*Engine, error) {
	prog, err := program.Compile(plan)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	// The plan's Threads value is a budget, not a mandate: running more
	// CPU-bound tasks than the runtime has processors only interleaves
	// half-finished convolutions on the same core and thrashes its
	// caches, so the pool is capped at GOMAXPROCS.
	workers := plan.Threads
	if workers < 1 {
		workers = 1
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	e := &Engine{
		prog:    prog,
		w:       w,
		workers: workers,
		arena:   newArena(),
	}
	if err := e.bindKernels(); err != nil {
		return nil, err
	}
	return e, nil
}

// Program exposes the compiled IR (for stats reporting and tests).
func (e *Engine) Program() *program.Program { return e.prog }

// dst materializes the destination tensor for an out-of-place
// instruction: the tenant view of its planned slot, or a fresh
// caller-owned allocation for the network output. Blocked-layout slot
// tenants clear the buffer first — their padding lanes must hold zeros
// and their kernels write only logical elements; plain layouts skip the
// memset because every physical element is a logical element the
// kernel overwrites.
func (e *Engine) dst(fr *frame, ins *program.Instr) *tensor.Tensor {
	if ins.Slot == program.NoSlot {
		return tensor.New(ins.Layout, ins.C, ins.H, ins.W)
	}
	buf := fr.bufs[ins.Slot][:ins.DataLen()]
	if ins.Layout.BlockSize() > 0 {
		clear(buf)
	}
	return tensor.NewWith(ins.Layout, ins.C, ins.H, ins.W, buf)
}

// out materializes any instruction's destination, honoring in-place
// donation: an in-place instruction writes straight into its donor's
// tensor, which the memory planner proved dead.
func (e *Engine) out(fr *frame, ins *program.Instr) *tensor.Tensor {
	if ins.Donor >= 0 {
		return fr.vals[ins.Args[ins.Donor]]
	}
	return e.dst(fr, ins)
}

// bindKernels resolves every instruction to a closure over its
// pre-fetched primitive, weights, and geometry — the one type switch,
// paid at construction instead of per task.
func (e *Engine) bindKernels() error {
	e.kerns = make([]kernelFn, len(e.prog.Instrs))
	for i := range e.prog.Instrs {
		ins := &e.prog.Instrs[i]
		l := ins.Layer
		switch ins.Op {
		case program.OpInput:
			e.kerns[i] = func(fr *frame, input *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				// Copy-on-identity into engine-owned storage: outputs and
				// intermediates must never alias the caller's input.
				// ConvertInto degenerates to a straight copy when the
				// caller's layout already matches the plan's.
				out := e.out(fr, ins)
				tensor.ConvertInto(out, input)
				return out, nil
			}

		case program.OpConv:
			prim, sc := ins.Prim, l.Conv
			k := e.w.Kernels[l.ID]
			if k == nil {
				return fmt.Errorf("exec: no weights for conv layer %q", l.Name)
			}
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, threads int) (*tensor.Tensor, error) {
				in := fr.vals[ins.Args[0]]
				if in.Layout != prim.In {
					return nil, fmt.Errorf("exec: layer %q: got %s input, primitive %s wants %s",
						l.Name, in.Layout, prim.Name, prim.In)
				}
				out := prim.Run(in, k, sc, threads)
				if out.C != l.OutC || out.H != l.OutH || out.W != l.OutW {
					return nil, fmt.Errorf("exec: layer %q produced %s, want %d×%d×%d",
						l.Name, out, l.OutC, l.OutH, l.OutW)
				}
				return out, nil
			}

		case program.OpConvert:
			// The whole legalization chain is a layout permutation, so it
			// fuses into one specialized ConvertInto with no chain
			// temporaries. (The plan priced the chain hop by hop, so its
			// edge cost is an upper bound on this fused execution.)
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				out := e.out(fr, ins)
				tensor.ConvertInto(out, fr.vals[ins.Args[0]])
				return out, nil
			}

		case program.OpReLU:
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				out := e.out(fr, ins)
				program.ReLUInto(out, fr.vals[ins.Args[0]])
				return out, nil
			}

		case program.OpDropout:
			if ins.Alias {
				e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
					return fr.vals[ins.Args[0]], nil
				}
				break
			}
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				out := e.out(fr, ins)
				program.CopyInto(out, fr.vals[ins.Args[0]])
				return out, nil
			}

		case program.OpLRN:
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				out := e.out(fr, ins)
				program.LRNInto(out, fr.vals[ins.Args[0]])
				return out, nil
			}

		case program.OpMaxPool, program.OpAvgPool:
			isMax := ins.Op == program.OpMaxPool
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				out := e.out(fr, ins)
				program.PoolInto(out, fr.vals[ins.Args[0]], l, isMax)
				return out, nil
			}

		case program.OpSoftmax:
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				out := e.out(fr, ins)
				program.SoftmaxInto(out, fr.vals[ins.Args[0]])
				return out, nil
			}

		case program.OpFC:
			mat := e.w.FC[l.ID]
			if mat == nil {
				return fmt.Errorf("exec: no weights for fc layer %q", l.Name)
			}
			outN := l.FCOut
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				out := e.out(fr, ins)
				program.FCInto(out, fr.vals[ins.Args[0]], mat, outN)
				return out, nil
			}

		case program.OpConcat, program.OpAdd:
			isConcat := ins.Op == program.OpConcat
			e.kerns[i] = func(fr *frame, _ *tensor.Tensor, _ int) (*tensor.Tensor, error) {
				ins2 := make([]*tensor.Tensor, len(ins.Args))
				for k, a := range ins.Args {
					ins2[k] = fr.vals[a]
				}
				out := e.out(fr, ins)
				if isConcat {
					program.ConcatInto(out, ins2)
				} else {
					program.AddInto(out, ins2)
				}
				return out, nil
			}

		default:
			return fmt.Errorf("exec: unsupported instruction %s", ins.Op)
		}
	}
	return nil
}

// newFrame checks one image's frame out of the arena: slot buffers at
// the planned capacities plus fresh value/dependency tables.
func (e *Engine) newFrame() *frame {
	n := len(e.prog.Instrs)
	fr := &frame{
		vals: make([]*tensor.Tensor, n),
		deps: make([]int32, n),
		bufs: make([][]float32, len(e.prog.SlotCap)),
	}
	for i := range e.prog.Instrs {
		fr.deps[i] = int32(e.prog.Instrs[i].NumDeps)
	}
	for s, cap := range e.prog.SlotCap {
		fr.bufs[s] = e.arena.get(cap)
	}
	return fr
}

// releaseFrame returns the frame's slot buffers to the arena.
func (e *Engine) releaseFrame(fr *frame) {
	for _, buf := range fr.bufs {
		e.arena.put(buf)
	}
}

// Run executes the program on a single image. It is equivalent to
// RunBatch with a batch of one.
func (e *Engine) Run(input *tensor.Tensor) (*tensor.Tensor, error) {
	outs, err := e.RunBatch([]*tensor.Tensor{input})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RunBatch executes the program on an N-image minibatch, reusing the
// one compiled program (and the engine's buffer arena) across all
// images. Every (image, instruction) pair is an independently
// schedulable task; tasks from different images interleave freely on
// the worker pool, so the minibatch dimension parallelizes even for
// chain networks. The returned slice holds each image's output in input
// order. Outputs honor Run's no-alias contract: they never share
// storage with the caller's inputs, and they are never recycled —
// the compiled output instruction is always a fresh allocation.
func (e *Engine) RunBatch(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: empty batch")
	}
	// The first instruction is the topologically first layer: the input.
	il := e.prog.Instrs[0].Layer
	for _, in := range inputs {
		if in.C != il.OutC || in.H != il.OutH || in.W != il.OutW {
			return nil, fmt.Errorf("exec: input %s does not match network input %d×%d×%d",
				in, il.OutC, il.OutH, il.OutW)
		}
	}

	n := len(e.prog.Instrs)
	st := &batchState{
		inputs: inputs,
		frames: make([]*frame, len(inputs)),
		tasks:  make(chan task, len(inputs)*n),
		stop:   make(chan struct{}),
		total:  int64(len(inputs) * n),
	}
	for img := range inputs {
		st.frames[img] = e.newFrame()
	}
	// Seed the queue: the input instruction of every image is ready at
	// once — this is what lets a 4-worker pool overlap 4 images of a
	// chain network from the first dispatch.
	for img := range inputs {
		for i := range e.prog.Instrs {
			if e.prog.Instrs[i].NumDeps == 0 {
				st.tasks <- task{img: img, instr: i}
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-st.stop:
					return
				case t := <-st.tasks:
					e.runTask(st, t)
				}
			}
		}()
	}
	wg.Wait()
	if err := st.loadErr(); err != nil {
		for _, fr := range st.frames {
			e.releaseFrame(fr)
		}
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(inputs))
	for img := range inputs {
		outs[img] = st.frames[img].vals[e.prog.Output]
		e.releaseFrame(st.frames[img])
	}
	return outs, nil
}

// task identifies one unit of schedulable work: one instruction of one
// image.
type task struct {
	img, instr int
}

// batchState is the per-RunBatch scheduler state.
type batchState struct {
	inputs []*tensor.Tensor
	frames []*frame

	tasks chan task     // buffered to the task total: sends never block
	stop  chan struct{} // closed on completion or first error

	total     int64
	completed int64
	running   int32

	errOnce sync.Once
	err     atomic.Value // error
	done    sync.Once
}

func (st *batchState) fail(err error) {
	st.errOnce.Do(func() { st.err.Store(err) })
	st.done.Do(func() { close(st.stop) })
}

func (st *batchState) loadErr() error {
	if v := st.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// runTask executes one (image, instruction) unit and unlocks
// successors. The heavy lifting — conversions, destination policy,
// kernel dispatch — was all resolved at compile time; nothing here
// consults a map or switches on a type.
func (e *Engine) runTask(st *batchState, t task) {
	atomic.AddInt32(&st.running, 1)
	defer atomic.AddInt32(&st.running, -1)

	fr := st.frames[t.img]
	out, err := e.kerns[t.instr](fr, st.inputs[t.img], e.primThreads(st))
	if err != nil {
		st.fail(err)
		return
	}
	fr.vals[t.instr] = out

	for _, s := range e.prog.Instrs[t.instr].Succs {
		if atomic.AddInt32(&fr.deps[s], -1) == 0 {
			st.tasks <- task{img: t.img, instr: s}
		}
	}
	if atomic.AddInt64(&st.completed, 1) == st.total {
		st.done.Do(func() { close(st.stop) })
	}
}

// primThreads decides the intra-primitive thread budget for one task:
// normally 1 (the pool itself is the parallelism), but a task running
// alone with an empty queue inherits the whole budget so chain
// segments of the DAG do not serialize onto a single worker.
func (e *Engine) primThreads(st *batchState) int {
	if e.workers > 1 && atomic.LoadInt32(&st.running) == 1 && len(st.tasks) == 0 {
		return e.workers
	}
	return 1
}

// RunBatch executes the plan on a minibatch with a freshly constructed
// engine — the convenience entry point mirroring Run. Callers that
// execute a plan repeatedly should construct one Engine and reuse it,
// keeping the compiled program and its arena warm across calls.
func RunBatch(plan *selector.Plan, inputs []*tensor.Tensor, w *Weights) ([]*tensor.Tensor, error) {
	e, err := NewEngine(plan, w)
	if err != nil {
		return nil, err
	}
	return e.RunBatch(inputs)
}
