package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pbqpdnn/internal/tensor"
)

// LoadOptions sizes a load-generation run.
//
// With Interval zero the run is closed-loop: each client submits, waits
// for the reply, and immediately submits again — useful as a smoke test
// and a pure throughput probe, but note that a closed loop's mean
// latency is pinned to throughput by Little's law (16 clients over W
// seconds *is* 16/throughput), so it cannot distinguish queueing
// disciplines.
//
// With Interval set the run is open-loop: each client fires one request
// every Interval on a fixed schedule regardless of completions (wrk2
// style), and latency is measured from the *scheduled* arrival — so
// time a request spends waiting because the system fell behind counts
// against the system, not the generator (coordinated-omission
// correction). Offered load = Clients/Interval requests per second;
// set it above the engine's capacity to compare overload behavior:
// the batcher sheds load at admission while a naive
// goroutine-per-request server queues without bound.
type LoadOptions struct {
	Clients   int
	PerClient int

	// Interval is each client's arrival period (0 = closed loop).
	Interval time.Duration

	// Deadline, when set, gives every request a completion budget from
	// its scheduled arrival. The batched path enforces it (expired
	// requests are pruned before touching the engine); the naive path
	// cannot — Engine.Run has no deadline — so its overdue completions
	// are counted late instead.
	Deadline time.Duration
}

// LoadReport summarizes one load-generation run. Latency statistics
// cover served requests only; Rejected (admission), Expired (deadline
// enforced before service) and Late (served, but completing after the
// deadline) are reported alongside so the modes' different failure
// disciplines stay visible. Both modes can go late: the naive path
// cannot shed at all, and the batched path prunes only up to dispatch —
// a request that enters the engine near its deadline still completes
// past it (the recorded overload runs show exactly this).
type LoadReport struct {
	Mode       string  `json:"mode"` // "batched" or "naive"
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	OfferedRPS float64 `json:"offered_rps"` // 0 for closed loop

	Served   int `json:"served"`
	Rejected int `json:"rejected"` // ErrQueueFull at admission
	Expired  int `json:"expired"`  // deadline enforced before service
	Errors   int `json:"errors"`   // everything else
	Late     int `json:"late"`     // served, but after the deadline

	Wall        time.Duration `json:"wall_ns"`
	MeanBatch   float64       `json:"mean_batch"` // achieved engine batch size (1.0 for naive)
	MeanLatency time.Duration `json:"latency_mean_ns"`
	P50         time.Duration `json:"latency_p50_ns"`
	P99         time.Duration `json:"latency_p99_ns"`
	Throughput  float64       `json:"throughput_rps"` // served / wall
	GoodputRPS  float64       `json:"goodput_rps"`    // served on time / wall
}

// LoadTest drives the model's dynamic batcher and reports achieved
// batch sizes and latency percentiles. Inputs are deterministic per
// client.
func LoadTest(m *Model, o LoadOptions) (LoadReport, error) {
	before := m.Metrics.Snapshot()
	rep, err := drive(m, o, "batched", func(ctx context.Context, in *tensor.Tensor) (*tensor.Tensor, error) {
		return m.Batcher.Infer(ctx, in)
	})
	if err != nil {
		return rep, err
	}
	after := m.Metrics.Snapshot()
	if batches := after.Batches - before.Batches; batches > 0 {
		rep.MeanBatch = float64(after.Served-before.Served) / float64(batches)
	}
	return rep, nil
}

// NaiveLoadTest is the baseline the batcher is judged against: the same
// arrival process, but every request immediately runs Engine.Run in its
// own goroutine — no batching, no admission bound, no deadline
// enforcement. exec.Engine is safe for concurrent use, so this is the
// obvious first serving architecture anyone would write.
func NaiveLoadTest(m *Model, o LoadOptions) (LoadReport, error) {
	rep, err := drive(m, o, "naive", func(_ context.Context, in *tensor.Tensor) (*tensor.Tensor, error) {
		return m.Engine().Run(in)
	})
	rep.MeanBatch = 1
	return rep, err
}

type submitFunc func(context.Context, *tensor.Tensor) (*tensor.Tensor, error)

// drive generates the arrival process, fans requests out to submit, and
// aggregates latencies.
func drive(m *Model, o LoadOptions, mode string, submit submitFunc) (LoadReport, error) {
	if o.Clients < 1 || o.PerClient < 1 {
		return LoadReport{}, fmt.Errorf("serve: loadtest needs ≥1 client and ≥1 request per client")
	}
	rep := LoadReport{
		Mode:     mode,
		Clients:  o.Clients,
		Requests: o.Clients * o.PerClient,
	}
	if o.Interval > 0 {
		rep.OfferedRPS = float64(o.Clients) / o.Interval.Seconds()
	}

	type outcome struct {
		lat time.Duration
		err error
	}
	outcomes := make(chan outcome, rep.Requests)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			in := tensor.New(tensor.CHW, m.InC, m.InH, m.InW)
			in.FillRandom(int64(c + 1))
			// Stagger clients across one interval so open-loop arrivals
			// spread instead of beating in lockstep.
			offset := time.Duration(0)
			if o.Interval > 0 {
				offset = o.Interval * time.Duration(c) / time.Duration(o.Clients)
			}
			var reqWG sync.WaitGroup
			for i := 0; i < o.PerClient; i++ {
				sched := start.Add(offset + time.Duration(i)*o.Interval)
				if o.Interval > 0 {
					time.Sleep(time.Until(sched))
				} else {
					sched = time.Now()
				}
				do := func() {
					ctx := context.Background()
					if o.Deadline > 0 {
						var cancel context.CancelFunc
						ctx, cancel = context.WithDeadline(ctx, sched.Add(o.Deadline))
						defer cancel()
					}
					_, err := submit(ctx, in)
					outcomes <- outcome{lat: time.Since(sched), err: err}
				}
				if o.Interval > 0 {
					// Open loop: never wait for the reply before the
					// next scheduled arrival.
					reqWG.Add(1)
					go func() { defer reqWG.Done(); do() }()
				} else {
					do()
				}
			}
			reqWG.Wait()
		}(c)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	close(outcomes)

	var lats []time.Duration
	var firstErr error
	for out := range outcomes {
		switch {
		case out.err == nil:
			rep.Served++
			lats = append(lats, out.lat)
			if o.Deadline > 0 && out.lat > o.Deadline {
				rep.Late++
			}
		case errors.Is(out.err, ErrQueueFull):
			rep.Rejected++
		case errors.Is(out.err, context.DeadlineExceeded):
			rep.Expired++
		default:
			rep.Errors++
			if firstErr == nil {
				firstErr = out.err
			}
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, d := range lats {
			sum += d
		}
		rep.MeanLatency = sum / time.Duration(len(lats))
		rep.P50 = percentile(lats, 50)
		rep.P99 = percentile(lats, 99)
		rep.Throughput = float64(len(lats)) / rep.Wall.Seconds()
		rep.GoodputRPS = float64(len(lats)-rep.Late) / rep.Wall.Seconds()
	}
	if rep.Served == 0 && firstErr != nil {
		return rep, fmt.Errorf("serve: every loadtest request failed: %w", firstErr)
	}
	return rep, nil
}

// FormatLoadComparison renders the batched-versus-naive comparison the
// acceptance experiment records in EXPERIMENTS.md.
func FormatLoadComparison(model string, reports ...LoadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== load generation: %s ==\n", model)
	fmt.Fprintf(&b, "%-8s %8s %7s %7s %7s %6s %10s %10s %10s %10s %9s %9s\n",
		"mode", "requests", "served", "reject", "expire", "late",
		"mean batch", "mean lat", "p50", "p99", "req/s", "good/s")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-8s %8d %7d %7d %7d %6d %10.2f %10s %10s %10s %9.1f %9.1f\n",
			r.Mode, r.Requests, r.Served, r.Rejected, r.Expired, r.Late, r.MeanBatch,
			fmtDur(r.MeanLatency), fmtDur(r.P50), fmtDur(r.P99), r.Throughput, r.GoodputRPS)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
