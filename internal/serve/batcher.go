// Package serve is the online inference serving layer: it turns the
// batched execution engine (exec.Engine.RunBatch) into a throughput
// system for concurrent clients. The paper's deployment story (§4)
// ends with a PBQP-optimized plan solved once per device;
// this package is what runs that plan under load. Its pieces:
//
//   - Batcher: a dynamic batcher that collects in-flight requests and
//     flushes a minibatch to the engine when it reaches MaxBatch or the
//     oldest request has waited MaxWait, whichever comes first —
//     independent requests share one compiled-program dispatch.
//   - Admission control: a bounded queue that rejects immediately when
//     full (fast 429s beat slow timeouts), per-request deadlines pruned
//     before dispatch, and a graceful drain on shutdown.
//   - Registry: hosts multiple named networks, each selected and
//     compiled exactly once at startup and shared by all workers.
//   - Metrics: queue depth, batch-size histogram, windowed latency
//     percentiles, throughput — published as JSON and expvar.
//   - LoadTest: an in-process load generator driving N closed-loop
//     clients, with a naive goroutine-per-request baseline for
//     comparison.
//
// The HTTP front end over all of this lives in NewServer and is wired
// up by cmd/dnnserver.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"pbqpdnn/internal/tensor"
)

var (
	// ErrQueueFull is returned by Infer when the admission queue is at
	// capacity. It is intentionally immediate: under overload the
	// cheapest thing to do with work that cannot be served in time is
	// to say so now (HTTP maps it to 429).
	ErrQueueFull = errors.New("serve: admission queue full")

	// ErrClosed is returned by Infer after Close has begun: the batcher
	// drains what it admitted, but admits nothing new.
	ErrClosed = errors.New("serve: batcher closed")
)

// BatchOptions tunes a Batcher. The zero value is usable: it becomes
// {MaxBatch: 8, MaxWait: 2ms, QueueCap: 4*MaxBatch, MaxInFlight: 1}.
type BatchOptions struct {
	// MaxBatch flushes a minibatch as soon as this many requests are
	// pending. It should not exceed what the engine's memory plan can
	// hold comfortably: each image checks a slot frame out of the arena.
	MaxBatch int

	// MaxWait flushes whatever has accumulated once the *first* request
	// of the forming batch has waited this long. It is the knob trading
	// tail latency (small MaxWait) against batch amortization (large).
	MaxWait time.Duration

	// QueueCap bounds the admission queue; Infer rejects with
	// ErrQueueFull beyond it. Backpressure, not buffering: the queue
	// only needs to cover the batches the dispatcher is behind by.
	QueueCap int

	// MaxInFlight bounds concurrent RunBatch dispatches. 1 serializes
	// the engine (best on machines where one batch already saturates
	// the cores); >1 overlaps the next batch's collection with the
	// current batch's execution on bigger hosts.
	MaxInFlight int
}

func (o *BatchOptions) defaults() {
	if o.MaxBatch < 1 {
		o.MaxBatch = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.QueueCap < 1 {
		o.QueueCap = 4 * o.MaxBatch
	}
	if o.MaxInFlight < 1 {
		o.MaxInFlight = 1
	}
}

// RunBatchFunc is the engine-facing contract: execute one minibatch,
// returning one output per input in order. exec.Engine.RunBatch
// satisfies it; tests substitute fakes with controlled timing.
type RunBatchFunc func(inputs []*tensor.Tensor) ([]*tensor.Tensor, error)

// request is one queued inference: the input, the submitting context
// (whose deadline is honored up to dispatch), and the reply channel.
// enq stamps admission; deq stamps the collector pulling the request
// out of the queue — the boundary between the queue-wait and
// batch-assembly lifecycle phases.
type request struct {
	in  *tensor.Tensor
	ctx context.Context
	enq time.Time
	deq time.Time
	out chan result
}

type result struct {
	t   *tensor.Tensor
	err error
}

// Batcher collects concurrent Infer calls into minibatches for one
// engine. All methods are safe for concurrent use.
type Batcher struct {
	run  RunBatchFunc
	opts BatchOptions
	met  *Metrics

	queue chan *request
	quit  chan struct{} // closed by Close: stop collecting, start draining

	mu     sync.Mutex // guards closed and the closed-vs-enqueue race
	closed bool

	collectorDone chan struct{}
	dispatches    sync.WaitGroup
	sem           chan struct{} // MaxInFlight tokens
}

// NewBatcher starts a batcher over the given batch runner. The caller
// owns met (pass NewMetrics(); a nil met panics early rather than deep
// in the hot path). Close releases the collector goroutine.
func NewBatcher(run RunBatchFunc, opts BatchOptions, met *Metrics) *Batcher {
	opts.defaults()
	b := &Batcher{
		run:           run,
		opts:          opts,
		met:           met,
		queue:         make(chan *request, opts.QueueCap),
		quit:          make(chan struct{}),
		collectorDone: make(chan struct{}),
		sem:           make(chan struct{}, opts.MaxInFlight),
	}
	met.mu.Lock()
	met.queueDepth = func() int { return len(b.queue) }
	met.mu.Unlock()
	go b.collect()
	return b
}

// Infer submits one input and blocks until its minibatch completes, the
// context expires, or admission fails. The input must match the model's
// input shape (the engine validates); the returned tensor is
// caller-owned and never aliases engine or input storage.
func (b *Batcher) Infer(ctx context.Context, in *tensor.Tensor) (*tensor.Tensor, error) {
	r := &request{in: in, ctx: ctx, enq: time.Now(), out: make(chan result, 1)}

	// Admission happens under the lock so no request can slip into the
	// queue after Close has decided the drain is complete.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case b.queue <- r:
		b.mu.Unlock()
		b.met.admit()
	default:
		b.mu.Unlock()
		b.met.reject()
		return nil, ErrQueueFull
	}

	select {
	case res := <-r.out:
		return res.t, res.err
	case <-ctx.Done():
		// The request stays queued; the collector prunes it at flush
		// time (r.out is buffered, so the late reply never blocks).
		return nil, ctx.Err()
	}
}

// Close stops admission, drains every already-admitted request through
// the engine, waits for in-flight batches, and returns. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.quit)
	}
	<-b.collectorDone
	b.dispatches.Wait()
}

// collect is the batcher's single collector goroutine: form batches,
// hand them to dispatch, and on quit drain the queue into final batches
// (admission has already stopped, so the drain terminates).
func (b *Batcher) collect() {
	defer close(b.collectorDone)
	for {
		select {
		case first := <-b.queue:
			first.deq = time.Now()
			b.dispatch(b.fill(first, false))
		case <-b.quit:
			for {
				select {
				case first := <-b.queue:
					first.deq = time.Now()
					b.dispatch(b.fill(first, true))
				default:
					return
				}
			}
		}
	}
}

// fill grows a batch seeded with first until MaxBatch, MaxWait (clocked
// from the seed request's *enqueue*, so time the seed already spent
// queued behind a busy engine counts against the wait budget), or
// shutdown. When draining — or when the seed's budget is already
// spent — it takes only what is immediately available.
func (b *Batcher) fill(first *request, draining bool) []*request {
	batch := make([]*request, 1, b.opts.MaxBatch)
	batch[0] = first
	wait := b.opts.MaxWait - time.Since(first.enq)
	if draining || wait <= 0 {
		for len(batch) < b.opts.MaxBatch {
			select {
			case r := <-b.queue:
				r.deq = time.Now()
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for len(batch) < b.opts.MaxBatch {
		select {
		case r := <-b.queue:
			r.deq = time.Now()
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-b.quit:
			// Flush what we have; the drain loop picks up the rest.
			return batch
		}
	}
	return batch
}

// dispatch prunes requests whose deadline passed while they queued,
// then runs the survivors as one engine minibatch. The MaxInFlight
// semaphore is acquired on the collector goroutine, so a backed-up
// engine stalls collection and surfaces as queue growth → rejection:
// overload sheds load at admission instead of accumulating latency.
func (b *Batcher) dispatch(batch []*request) {
	live := batch[:0]
	expired := 0
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.out <- result{err: err}
			expired++
			continue
		}
		live = append(live, r)
	}
	if expired > 0 {
		b.met.expire(expired)
	}
	if len(live) == 0 {
		return
	}

	b.sem <- struct{}{}
	b.dispatches.Add(1)
	go func() {
		defer func() {
			<-b.sem
			b.dispatches.Done()
		}()
		ins := make([]*tensor.Tensor, len(live))
		for i, r := range live {
			ins[i] = r.in
		}
		start := time.Now()
		outs, err := b.run(ins)
		now := time.Now()
		engine := now.Sub(start)
		// Per-request lifecycle phases: enq→deq queued behind the
		// collector, deq→dispatch assembling the batch, then the shared
		// engine wall time. The respond phase closes after fan-out.
		for _, r := range live {
			b.met.phases[phaseQueueWait].Observe(r.deq.Sub(r.enq))
			b.met.phases[phaseAssembly].Observe(start.Sub(r.deq))
			b.met.phases[phaseEngine].Observe(engine)
		}
		if err != nil {
			b.met.observeBatch(len(live), engine, nil, err)
			for _, r := range live {
				r.out <- result{err: err}
			}
			respond := time.Since(now)
			for range live {
				b.met.phases[phaseRespond].Observe(respond)
			}
			return
		}
		// Record metrics before unblocking callers: a caller that reads
		// /stats right after its reply must see itself served.
		lats := make([]time.Duration, len(live))
		for i, r := range live {
			lats[i] = now.Sub(r.enq)
		}
		b.met.observeBatch(len(live), engine, lats, nil)
		for i, r := range live {
			r.out <- result{t: outs[i]}
		}
		respond := time.Since(now)
		for range live {
			b.met.phases[phaseRespond].Observe(respond)
		}
	}()
}
