package conv

import (
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// Sparsity-aware primitives (paper §8, future work): when many kernel
// weights are zero — e.g. after magnitude pruning — the im2col GEMM can
// run on a compressed kernel matrix in time proportional to the
// non-zeros. The selector decides per layer whether a sparse or dense
// implementation wins, driven by the scenario's Sparsity parameter.

// im2colSparse builds the Toeplitz patch matrix and multiplies it by the
// CSR-compressed kernel matrix.
func im2colSparse(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "im2col-sparse")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	patches := im2colPatches(in, s)
	csr := gemm.NewCSR(s.M, s.C*s.K*s.K, kernelMatrixMCK(k))
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	csr.SpMM(oh*ow, patches, out.Data)
	return out
}

// kn2Sparse runs the kn2row tap loop but skips all-zero kernel slices
// entirely and uses CSR slices otherwise.
func kn2Sparse(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "kn2-sparse")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	hw := s.H * s.W
	partial := make([]float32, s.M*hw)
	for kh := 0; kh < s.K; kh++ {
		for kw := 0; kw < s.K; kw++ {
			slice := kernelSlice(k, kh, kw)
			csr := gemm.NewCSR(s.M, s.C, slice)
			if csr.NNZ() == 0 {
				continue
			}
			csr.SpMM(hw, in.Data, partial)
			shiftAccumulate(out, partial, s, kh-s.Pad, kw-s.Pad)
		}
	}
	return out
}

// sparsePrimitives assembles the sparsity-exploiting entries.
func sparsePrimitives() []*Primitive {
	return []*Primitive{
		{Name: "im2col-sparse", Family: FamilyIm2, In: tensor.CHW, Out: tensor.CHW, VF: 4,
			Strided: true, Sparse: true, Workspace: im2Workspace, Run: im2colSparse},
		{Name: "kn2-sparse", Family: FamilyKn2, In: tensor.CHW, Out: tensor.CHW, VF: 4,
			Sparse: true, Workspace: kn2Workspace, Run: kn2Sparse},
	}
}
