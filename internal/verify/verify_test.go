package verify

import (
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// init wires the verifier into the compiler for every program this
// package's tests (including the fuzz harness) compile.
func init() {
	program.DebugVerify = Program
}

// strategyFns names every selection strategy the acceptance matrix
// runs. FamilyBest is pinned to im2, the one family whose primitives
// cover every scenario in the evaluation networks.
func strategyFns() map[string]func(net *dnn.Graph, opts selector.Options) (*selector.Plan, error) {
	return map[string]func(net *dnn.Graph, opts selector.Options) (*selector.Plan, error){
		"pbqp":         selector.Select,
		"baseline":     selector.Baseline,
		"no-edge-cost": selector.NoEdgeCost,
		"mkldnn-proxy": selector.MKLDNNProxy,
		"armcl-proxy":  selector.ARMCLProxy,
		"caffe-proxy":  selector.CaffeProxy,
		"local-chw": func(net *dnn.Graph, opts selector.Options) (*selector.Plan, error) {
			return selector.LocalOptimal(net, tensor.CHW, opts)
		},
		"family-im2": func(net *dnn.Graph, opts selector.Options) (*selector.Plan, error) {
			return selector.FamilyBest(net, conv.FamilyIm2, opts)
		},
	}
}

func planFor(t testing.TB, model, strategy string) *selector.Plan {
	t.Helper()
	net, err := models.Build(model)
	if err != nil {
		t.Fatal(err)
	}
	fn := strategyFns()[strategy]
	if fn == nil {
		t.Fatalf("unknown strategy %q", strategy)
	}
	plan, err := fn(net, selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
	if err != nil {
		t.Fatalf("%s/%s: %v", model, strategy, err)
	}
	return plan
}

func compileFor(t testing.TB, model, strategy string, batch int) *program.Program {
	t.Helper()
	p, err := program.CompileBatch(planFor(t, model, strategy), batch)
	if err != nil {
		t.Fatalf("%s/%s@%d: %v", model, strategy, batch, err)
	}
	return p
}

// compileUnfused compiles without the fusion pass — some mutation
// classes target the in-place donation machinery, whose relu and add
// donees the fusion pass otherwise folds into their producers.
func compileUnfused(t testing.TB, model, strategy string, batch int) *program.Program {
	t.Helper()
	p, err := program.CompileBatchNoFuse(planFor(t, model, strategy), batch)
	if err != nil {
		t.Fatalf("%s/%s@%d (nofuse): %v", model, strategy, batch, err)
	}
	return p
}

// TestVerifyAcceptsAllPrograms is the acceptance matrix: every
// evaluation and demo model, at batch 1, 3 and 8, under every selection
// strategy, must compile to a program the independent verifier accepts
// (CompileBatch runs it via the DebugVerify hook; the explicit call
// re-checks the returned value).
func TestVerifyAcceptsAllPrograms(t *testing.T) {
	names := append(append([]string{}, models.Names()...), models.DemoNames()...)
	for strategy := range strategyFns() {
		for _, model := range names {
			plan := planFor(t, model, strategy)
			for _, batch := range []int{1, 3, 8} {
				p, err := program.CompileBatch(plan, batch)
				if err != nil {
					t.Fatalf("%s/%s@%d: compile: %v", model, strategy, batch, err)
				}
				if err := Program(p); err != nil {
					t.Errorf("%s/%s@%d: verifier rejects compiled program: %v", model, strategy, batch, err)
				}
			}
		}
	}
}

// TestVerifyRejectsNil covers the trivial guard.
func TestVerifyRejectsNil(t *testing.T) {
	if err := Program(nil); err == nil {
		t.Fatal("verifier accepted a nil program")
	}
}

// TestCloneIsDeep asserts mutating a clone leaves the original intact —
// the property every mutation test below depends on.
func TestCloneIsDeep(t *testing.T) {
	p := compileFor(t, "micronet", "pbqp", 3)
	q := p.Clone()
	for j := range q.Instrs {
		ins := &q.Instrs[j]
		ins.Slot = 99
		ins.Donor = 7
		for k := range ins.Args {
			ins.Args[k] = -1
		}
		for k := range ins.Succs {
			ins.Succs[k] = -1
		}
	}
	for s := range q.SlotCap {
		q.SlotCap[s] = 0
	}
	q.Batch = 64
	if err := p.Validate(); err != nil {
		t.Fatalf("original corrupted through clone: %v", err)
	}
	if err := Program(p); err != nil {
		t.Fatalf("original rejected after clone mutation: %v", err)
	}
}
