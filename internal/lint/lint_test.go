package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Clean(filepath.Join(dir, "..", ".."))
}

// loadFixture typechecks the deliberately-broken testdata package.
func loadFixture(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load(moduleRoot(t), "./internal/lint/testdata/src/lintme")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs
}

// expectFindings asserts that each wanted substring matches at least
// one diagnostic and that no diagnostic mentions a forbidden name.
func expectFindings(t *testing.T, diags []Diagnostic, wanted, forbidden []string) {
	t.Helper()
	for _, w := range wanted {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in:\n%s", w, render(diags))
		}
	}
	for _, f := range forbidden {
		for _, d := range diags {
			if strings.Contains(d.Message, f) {
				t.Errorf("unexpected diagnostic mentioning %q: %s", f, d)
			}
		}
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestHotPathAllocFindsFixtureViolations(t *testing.T) {
	diags := RunAnalyzers([]*Analyzer{HotPathAlloc}, loadFixture(t))
	expectFindings(t, diags,
		[]string{
			"hotAlloc: make allocates",
			"hotAlloc: composite literal",
			"hotAlloc: argument boxed into interface parameter",
			"hotDefer: defer in hot path",
			"hotDefer: function literal",
			"hotDefer: map iteration",
		},
		[]string{"hotAllowed", "hotClean"})
	if len(diags) != 6 {
		t.Errorf("got %d findings, want 6:\n%s", len(diags), render(diags))
	}
}

func TestKernelAliasFindsFixtureViolations(t *testing.T) {
	diags := RunAnalyzers([]*Analyzer{KernelAlias}, loadFixture(t))
	expectFindings(t, diags,
		[]string{
			"BadInto: stores in a struct field memory derived from parameter dst",
			"BadInto: stores in package variable leaked memory derived from parameter dst",
			"BadInto: sends on a channel memory derived from parameter dst",
			"BadInto: returns memory derived from parameter dst",
		},
		[]string{"GoodInto"})
	if len(diags) != 4 {
		t.Errorf("got %d findings, want 4:\n%s", len(diags), render(diags))
	}
}

func TestAtomicFieldFindsFixtureViolations(t *testing.T) {
	diags := RunAnalyzers([]*Analyzer{AtomicField}, loadFixture(t))
	expectFindings(t, diags,
		[]string{"field hits is accessed via sync/atomic elsewhere"},
		[]string{"total", "deps"})
	if len(diags) != 1 {
		t.Errorf("got %d findings, want 1:\n%s", len(diags), render(diags))
	}
}

// TestRealTreeClean is satellite #1's enforcement: the analyzer suite
// must pass over the whole module, and not vacuously — the hot-path
// annotations it audits must actually be present.
func TestRealTreeClean(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(All, pkgs); len(diags) != 0 {
		t.Errorf("analyzer findings on the real tree:\n%s", render(diags))
	}
	annotated := 0
	for _, pkg := range pkgs {
		annotated += countHotpath(pkg)
	}
	if annotated < 15 {
		t.Errorf("only %d //dnn:hotpath functions found; the hotpathalloc sweep looks vacuous", annotated)
	}
}

// countHotpath counts the //dnn:hotpath-annotated functions in a
// package.
func countHotpath(pkg *Package) int {
	n := 0
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd.Doc, "//dnn:hotpath") {
				n++
			}
		}
	}
	return n
}

func TestBCEClassification(t *testing.T) {
	root := moduleRoot(t)
	idx, err := buildBCEIndex(root, []string{"pbqpdnn/internal/gemm"})
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(root, "internal", "gemm", "gemm.go"))
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(needle string) int {
		for i, l := range strings.Split(string(src), "\n") {
			if strings.Contains(l, needle) {
				return i + 1
			}
		}
		t.Fatalf("pattern %q not found in gemm.go", needle)
		return 0
	}

	// A check on the accumulation statement of IKJ's leaf loop is a
	// violation.
	c := BCECheck{File: "internal/gemm/gemm.go", Line: lineOf("ci[j] += av * bv"), Col: 5, Kind: "IsInBounds"}
	idx.classify(&c)
	if !c.Violation || c.Func != "IKJ" {
		t.Errorf("leaf-loop check misclassified: %+v", c)
	}

	// A check on the hoisted row view sits in a non-leaf loop.
	c = BCECheck{File: "internal/gemm/gemm.go", Line: lineOf("bp := b[p*n:][:n]"), Col: 5, Kind: "IsSliceInBounds"}
	idx.classify(&c)
	if c.Violation || !strings.Contains(c.Why, "non-leaf") {
		t.Errorf("row-view check misclassified: %+v", c)
	}

	// Naive is deliberately unregistered: its checks are reported but
	// never violations.
	c = BCECheck{File: "internal/gemm/gemm.go", Line: lineOf("s += a[i*k+p] * b[p*n+j]"), Col: 5, Kind: "IsInBounds"}
	idx.classify(&c)
	if c.Violation || c.Func != "Naive" {
		t.Errorf("unregistered-function check misclassified: %+v", c)
	}
}

func TestParseBCELine(t *testing.T) {
	c, ok := parseBCELine("internal/gemm/gemm.go:48:10: Found IsSliceInBounds")
	if !ok || c.File != "internal/gemm/gemm.go" || c.Line != 48 || c.Col != 10 || c.Kind != "IsSliceInBounds" {
		t.Errorf("parse: got %+v ok=%v", c, ok)
	}
	if _, ok := parseBCELine("# pbqpdnn/internal/gemm"); ok {
		t.Error("package header line should not parse as a check")
	}
}
