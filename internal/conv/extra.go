package conv

import (
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// Two additional variants rounding out the library: a strip-mined
// im2col that trades one huge Toeplitz matrix for per-strip panels
// (bounding the im2 family's "large image" weakness), and a
// register-blocked direct microkernel computing a 2×2 output patch per
// inner iteration.

// stripRows is the number of output rows materialized per im2col strip.
const stripRows = 8

// im2colStrip builds the patch matrix for strips of output rows and
// GEMMs each strip directly into the output — the workspace is K²·C
// columns for only stripRows·W_out pixels at a time.
func im2colStrip(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "im2col-strip")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	rows := s.C * s.K * s.K
	a := kernelMatrixMCK(k)
	nStrips := (oh + stripRows - 1) / stripRows
	parallelFor(threads, nStrips, func(strip int) {
		y0 := strip * stripRows
		y1 := min(y0+stripRows, oh)
		cols := (y1 - y0) * ow
		patches := make([]float32, rows*cols)
		for c := 0; c < s.C; c++ {
			for kh := 0; kh < s.K; kh++ {
				for kw := 0; kw < s.K; kw++ {
					r := (c*s.K+kh)*s.K + kw
					dst := patches[r*cols : r*cols+cols]
					i := 0
					for y := y0; y < y1; y++ {
						ih := y*s.Stride - s.Pad + kh
						for x := 0; x < ow; x++ {
							iw := x*s.Stride - s.Pad + kw
							if ih >= 0 && ih < s.H && iw >= 0 && iw < s.W {
								dst[i] = in.Data[(c*s.H+ih)*s.W+iw]
							}
							i++
						}
					}
				}
			}
		}
		flat := make([]float32, s.M*cols)
		gemm.IKJ(s.M, cols, rows, a, patches, flat)
		for m := 0; m < s.M; m++ {
			copy(out.Data[(m*oh+y0)*ow:(m*oh+y1)*ow], flat[m*cols:(m+1)*cols])
		}
	})
	return out
}

// im2StripWorkspace is the strip-bounded Toeplitz footprint.
func im2StripWorkspace(s Scenario) int64 {
	rows := int64(s.C) * int64(s.K) * int64(s.K)
	strip := int64(min(stripRows, s.OutH())) * int64(s.OutW())
	return rows*strip*4 + int64(s.M)*strip*4
}

// directReg2x2 computes a 2×2 output patch per iteration with four
// accumulators held in registers — the classic register-blocking
// schedule. Odd extents fall back to single-pixel tails.
func directReg2x2(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "direct-reg2x2")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	pixel := func(m, c, y, x int) float32 {
		hb, wb := y*s.Stride-s.Pad, x*s.Stride-s.Pad
		var acc float32
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				acc += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
			}
		}
		return acc
	}
	parallelFor(threads, s.M, func(m int) {
		for c := 0; c < s.C; c++ {
			y := 0
			for ; y+2 <= oh; y += 2 {
				x := 0
				for ; x+2 <= ow; x += 2 {
					var a00, a01, a10, a11 float32
					hb0, hb1 := y*s.Stride-s.Pad, (y+1)*s.Stride-s.Pad
					wb0, wb1 := x*s.Stride-s.Pad, (x+1)*s.Stride-s.Pad
					for kh := 0; kh < s.K; kh++ {
						for kw := 0; kw < s.K; kw++ {
							kv := k.At(m, c, kh, kw)
							a00 += kv * inputAt(in, c, hb0+kh, wb0+kw)
							a01 += kv * inputAt(in, c, hb0+kh, wb1+kw)
							a10 += kv * inputAt(in, c, hb1+kh, wb0+kw)
							a11 += kv * inputAt(in, c, hb1+kh, wb1+kw)
						}
					}
					out.Data[(m*oh+y)*ow+x] += a00
					out.Data[(m*oh+y)*ow+x+1] += a01
					out.Data[(m*oh+y+1)*ow+x] += a10
					out.Data[(m*oh+y+1)*ow+x+1] += a11
				}
				for ; x < ow; x++ {
					out.Data[(m*oh+y)*ow+x] += pixel(m, c, y, x)
					out.Data[(m*oh+y+1)*ow+x] += pixel(m, c, y+1, x)
				}
			}
			for ; y < oh; y++ {
				for x := 0; x < ow; x++ {
					out.Data[(m*oh+y)*ow+x] += pixel(m, c, y, x)
				}
			}
		}
	})
	return out
}

// extraPrimitives assembles the additional variants.
func extraPrimitives() []*Primitive {
	return []*Primitive{
		{Name: "im2col-strip", Family: FamilyIm2, In: tensor.CHW, Out: tensor.CHW,
			VF: 4, Strided: true, Workspace: im2StripWorkspace, Run: im2colStrip},
		{Name: "direct-reg2x2", Family: FamilyDirect, In: tensor.CHW, Out: tensor.CHW,
			VF: 1, Strided: true, Workspace: func(Scenario) int64 { return 0 }, Run: directReg2x2},
	}
}
