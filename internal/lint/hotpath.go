package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the //dnn:hotpath contract: the compiled
// executor's per-instruction kernels and the scheduler's inner loops
// run once per instruction per inference, so they must not allocate or
// touch runtime machinery with unpredictable cost. Flagged inside an
// annotated function's body: make/new/append, composite and function
// literals, defer and go statements, map iteration, string
// concatenation, string conversions, and implicit boxing at interface
// conversions or interface-typed call arguments. Arguments to panic are
// exempt (a panicking hot path is already cold), and a //dnn:allow
// comment on the offending line suppresses a finding. The check is
// body-only: calls to unannotated helpers are the callee's business.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "report allocations and runtime hazards in //dnn:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "//dnn:hotpath") {
				continue
			}
			diags = append(diags, checkHotBody(pkg, fd)...)
		}
	}
	return diags
}

func checkHotBody(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "hotpathalloc",
			Message:  fd.Name.Name + ": " + msg,
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(pkg, n); ok {
				switch name {
				case "panic":
					return false // cold path: its arguments may allocate
				case "make", "new", "append":
					report(n, name+" allocates in hot path")
				}
				return true
			}
			if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
				diags = append(diags, checkConversion(pkg, fd, n)...)
				return true
			}
			diags = append(diags, checkCallBoxing(pkg, fd, n)...)
		case *ast.CompositeLit:
			report(n, "composite literal allocates in hot path")
		case *ast.FuncLit:
			report(n, "function literal in hot path (closure allocation)")
			return false // the closure body is not the hot body
		case *ast.DeferStmt:
			report(n, "defer in hot path")
		case *ast.GoStmt:
			report(n, "go statement in hot path (goroutine spawn)")
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(n, "map iteration in hot path")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pkg.Info.TypeOf(n)) {
				report(n, "string concatenation allocates in hot path")
			}
		}
		return true
	})
	return diags
}

// checkConversion flags conversions that allocate or box: concrete →
// interface, and the copying string ⇄ []byte/[]rune conversions.
func checkConversion(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr) []Diagnostic {
	if len(call.Args) != 1 {
		return nil
	}
	dst := pkg.Info.TypeOf(call)
	src := pkg.Info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return nil
	}
	pos := pkg.Fset.Position(call.Pos())
	if types.IsInterface(dst) && !types.IsInterface(src) {
		return []Diagnostic{{Pos: pos, Analyzer: "hotpathalloc",
			Message: fd.Name.Name + ": conversion to interface boxes in hot path"}}
	}
	if (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src)) {
		return []Diagnostic{{Pos: pos, Analyzer: "hotpathalloc",
			Message: fd.Name.Name + ": string conversion copies in hot path"}}
	}
	return nil
}

// checkCallBoxing flags concrete (or untyped-constant) arguments passed
// to interface-typed parameters, including the variadic ...any of the
// fmt functions — each such argument is a heap box.
func checkCallBoxing(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr) []Diagnostic {
	sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var diags []Diagnostic
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice itself, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		tv := pkg.Info.Types[arg]
		if tv.IsNil() || (tv.Type != nil && types.IsInterface(tv.Type)) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(arg.Pos()),
			Analyzer: "hotpathalloc",
			Message:  fd.Name.Name + ": argument boxed into interface parameter in hot path",
		})
	}
	return diags
}

func builtinName(pkg *Package, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
