// Package verify is the independent translation validator for the
// Program IR. It re-checks a compiled program from first principles:
// every derived fact — instruction arguments, shapes, layouts, the
// dependency links, the in-place donations and the slot plan — is
// recomputed here from the network graph and the selection plan alone,
// never trusted from the fields Compile wrote. The package deliberately
// shares no helper code with internal/program: its kind→op mapping,
// layout arithmetic, ancestry closure and liveness model are all
// written twice on purpose, so a bug in the compiler's copy cannot
// hide itself in the checker.
//
// Where Program.Validate asserts local structural invariants (the ones
// the compiler promises itself), this verifier asserts the translation
// contract: the program must be a faithful lowering of plan × batch,
// and its memory plan must be sound under an adversarial scheduler —
// any topological interleaving the branch-parallel engine could
// exhibit, not just the sequential ID order.
//
// Tests register it behind program.DebugVerify so every program the
// suite compiles is re-checked at build time.
package verify

import (
	"fmt"
	"sort"

	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/tensor"
)

// noSlot mirrors program.NoSlot without importing the constant's
// meaning from the code under test (the value is part of the public IR
// contract, so referencing the named constant is fine).
const noSlot = program.NoSlot

// Program checks that p is a faithful and memory-sound lowering of
// p.Plan at p.Batch. It returns the first violation found, or nil.
func Program(p *program.Program) error {
	if p == nil {
		return fmt.Errorf("verify: nil program")
	}
	v := &verifier{p: p}
	for _, step := range []func() error{
		v.checkPlanBatch,
		v.checkStructure,
		v.checkTranslation,
		v.checkShapes,
		v.checkLinks,
		v.checkOutput,
		v.checkDonations,
		v.checkSlots,
	} {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

type verifier struct {
	p *program.Program

	// order is the verifier's own topological order of the layer graph.
	order []int
	// edgeOf attributes each OpConvert instruction to the graph edge it
	// legalizes; layer instructions map to -1,-1.
	edgeOf map[int][2]int
	// anc[j][i] reports that instruction i must complete before j can
	// start (computed here, not by the compiler's bitset).
	anc [][]bool
}

// dataLen recomputes the physical element count of a value — the
// verifier's own copy of the layout arithmetic.
func dataLen(l tensor.Layout, c, h, w int) int {
	switch l {
	case tensor.CHW4:
		return ((c + 3) / 4) * 4 * h * w
	case tensor.CHW8:
		return ((c + 7) / 8) * 8 * h * w
	default:
		return c * h * w
	}
}

// opFor is the verifier's own layer-kind → opcode mapping.
func opFor(k dnn.Kind) (program.Op, bool) {
	switch k {
	case dnn.KindInput:
		return program.OpInput, true
	case dnn.KindConv:
		return program.OpConv, true
	case dnn.KindReLU:
		return program.OpReLU, true
	case dnn.KindLRN:
		return program.OpLRN, true
	case dnn.KindMaxPool:
		return program.OpMaxPool, true
	case dnn.KindAvgPool:
		return program.OpAvgPool, true
	case dnn.KindDropout:
		return program.OpDropout, true
	case dnn.KindSoftmax:
		return program.OpSoftmax, true
	case dnn.KindFC:
		return program.OpFC, true
	case dnn.KindConcat:
		return program.OpConcat, true
	case dnn.KindAdd:
		return program.OpAdd, true
	}
	return 0, false
}

// mayRunInPlace is the verifier's copy of the kernel aliasing whitelist
// from the contract documented in program/kernels.go: only ReLU,
// elementwise add (first operand) and dropout tolerate dst == src.
func mayRunInPlace(o program.Op) bool {
	return o == program.OpReLU || o == program.OpAdd || o == program.OpDropout
}

// checkPlanBatch re-asserts the plan/batch agreement rule: a plan
// selected against batch-N costs executes at exactly N; a per-image
// plan executes at any N ≥ 1.
func (v *verifier) checkPlanBatch() error {
	p := v.p
	if p.Plan == nil || p.Plan.Net == nil {
		return fmt.Errorf("verify: program carries no plan")
	}
	if p.Batch < 1 {
		return fmt.Errorf("verify: batch %d < 1", p.Batch)
	}
	if p.Plan.Batch > 1 && p.Plan.Batch != p.Batch {
		return fmt.Errorf("verify: plan selected at batch %d, program compiled at %d", p.Plan.Batch, p.Batch)
	}
	return nil
}

// checkStructure asserts the ID/index identity and that every argument
// precedes its consumer — the precondition for the forward ancestry
// pass everything later relies on. It also computes the verifier's own
// topological order of the layer graph.
func (v *verifier) checkStructure() error {
	p := v.p
	net := p.Plan.Net
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.ID != j {
			return fmt.Errorf("verify: instr at index %d carries id %d", j, ins.ID)
		}
		for _, a := range ins.Args {
			if a < 0 || a >= j {
				return fmt.Errorf("verify: instr %d (%s) consumes value %d not strictly before it", j, ins.Name, a)
			}
		}
	}

	// Kahn's algorithm over the layer graph, independently of
	// net.TopoOrder.
	n := net.NumLayers()
	indeg := make([]int, n)
	for id := 0; id < n; id++ {
		indeg[id] = len(net.Preds(id))
	}
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		v.order = append(v.order, u)
		for _, s := range net.Succs(u) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(v.order) != n {
		return fmt.Errorf("verify: layer graph %q is cyclic", net.Name)
	}

	// The forward ancestry closure: anc[j] ⊇ anc[a] ∪ {a} for each arg.
	// Sound because args strictly precede consumers (checked above).
	m := len(p.Instrs)
	v.anc = make([][]bool, m)
	for j := 0; j < m; j++ {
		row := make([]bool, m)
		for _, a := range p.Instrs[j].Args {
			row[a] = true
			for i, ok := range v.anc[a] {
				if ok {
					row[i] = true
				}
			}
		}
		v.anc[j] = row
	}
	return nil
}

// checkTranslation re-derives the whole instruction stream from the
// net and the plan: one instruction per layer with arguments in
// declared predecessor order, plus exactly one convert instruction per
// legalized edge, whose chain matches the plan's chain transform by
// transform. Fused instructions are re-derived too: an instruction may
// carry extra layers only as a legal epilogue fusion (checkFusion),
// and may absorb its input conversion only under the absorption rules.
func (v *verifier) checkTranslation() error {
	p := v.p
	net := p.Plan.Net
	plan := p.Plan

	if len(p.InstrOf) != net.NumLayers() {
		return fmt.Errorf("verify: InstrOf covers %d layers, net has %d", len(p.InstrOf), net.NumLayers())
	}
	for id := 0; id < net.NumLayers(); id++ {
		if j := p.InstrOf[id]; j < 0 || j >= len(p.Instrs) {
			return fmt.Errorf("verify: layer %d maps to out-of-range instr %d", id, j)
		}
	}

	// Every non-convert instruction claims its base layer plus its fused
	// epilogue layers; every layer must be claimed by exactly one
	// instruction, the one InstrOf names.
	claimed := make([]int, net.NumLayers())
	for id := range claimed {
		claimed[id] = -1
	}
	claim := func(l *dnn.Layer, j int) error {
		if l == nil || l.ID < 0 || l.ID >= net.NumLayers() || net.Layers[l.ID] != l {
			return fmt.Errorf("verify: instr %d carries a layer not in net %q", j, net.Name)
		}
		if prev := claimed[l.ID]; prev >= 0 {
			return fmt.Errorf("verify: layer %q computed by both instr %d and %d", l.Name, prev, j)
		}
		claimed[l.ID] = j
		return nil
	}
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.Op == program.OpConvert {
			continue
		}
		if err := claim(ins.Layer, j); err != nil {
			return err
		}
		want, ok := opFor(ins.Layer.Kind)
		if !ok {
			return fmt.Errorf("verify: layer %q has untranslatable kind %s", ins.Layer.Name, ins.Layer.Kind)
		}
		if ins.Op != want {
			return fmt.Errorf("verify: layer %q (%s) lowered to op %s, want %s", ins.Layer.Name, ins.Layer.Kind, ins.Op, want)
		}
		if err := v.checkFusion(j); err != nil {
			return err
		}
		for _, fl := range ins.EpiLayers {
			if err := claim(fl, j); err != nil {
				return err
			}
		}
	}
	for id := 0; id < net.NumLayers(); id++ {
		if claimed[id] != p.InstrOf[id] {
			return fmt.Errorf("verify: layer %q computed by instr %d, InstrOf says %d",
				net.Layers[id].Name, claimed[id], p.InstrOf[id])
		}
	}

	// Re-derive every layer instruction's argument list. A convert
	// instruction is legal only where the plan legalizes an edge with a
	// non-empty chain, and is consumed exactly once, by that edge's
	// consumer. An absorbed conversion (CvtIn) replaces the convert for
	// the convolution's data edge; a fused residual appends the residual
	// value (or its convert) as the second argument.
	v.edgeOf = make(map[int][2]int)
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.Op == program.OpConvert {
			continue
		}
		id := ins.Layer.ID
		preds := net.Preds(id)

		want := make([]int, len(preds))
		for k, pr := range preds {
			src := p.InstrOf[pr]
			chain := plan.Conversions[[2]int{pr, id}]
			if k == 0 && len(ins.CvtIn) > 0 {
				// The absorbed conversion must BE the plan's chain for
				// this edge; the instruction then consumes the producer's
				// raw value.
				if len(chain) != 1 || !transformEqual(ins.CvtIn[0], chain[0]) {
					return fmt.Errorf("verify: conv %q absorbed chain does not match plan edge %d→%d",
						ins.Name, pr, id)
				}
				want[k] = src
				continue
			}
			if len(chain) > 0 {
				// The arg must be a convert instruction applying exactly
				// this chain to the producer's value.
				ci, err := v.matchConvert(ins, preds, k, src, chain, id)
				if err != nil {
					return err
				}
				want[k] = ci
			} else {
				want[k] = src
			}
		}
		if len(ins.EpiLayers) > 0 && (ins.Epi == gemm.EpiAdd || ins.Epi == gemm.EpiAddReLU) {
			// The residual operand re-derives from the fused add layer's
			// other predecessor (checkFusion proved there is exactly one).
			addL := ins.EpiLayers[0]
			rp := -1
			for _, ap := range net.Preds(addL.ID) {
				if ap != id {
					rp = ap
				}
			}
			if rp < 0 {
				return fmt.Errorf("verify: fused add %q has no residual predecessor", addL.Name)
			}
			rsrc := p.InstrOf[rp]
			if rchain := plan.Conversions[[2]int{rp, addL.ID}]; len(rchain) > 0 {
				ci, err := v.matchResidualConvert(ins, rp, rsrc, rchain, addL.ID)
				if err != nil {
					return err
				}
				want = append(want, ci)
			} else {
				want = append(want, rsrc)
			}
		}
		if !argsMatch(ins, want) {
			return fmt.Errorf("verify: layer %q args %v do not re-derive from predecessors %v (want %v)",
				ins.Name, ins.Args, preds, want)
		}
	}

	// Every instruction must be accounted for: a layer instruction or a
	// claimed convert. Strays are fabrications.
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.Op == program.OpConvert {
			if _, isConv := v.edgeOf[j]; !isConv {
				return fmt.Errorf("verify: convert instr %d (%s) legalizes no plan edge", j, ins.Name)
			}
		}
	}
	return nil
}

func transformEqual(a, b tensor.Transform) bool {
	return a.Name == b.Name && a.From == b.From && a.To == b.To
}

// checkFusion re-derives the legality of instruction j's fusion fields
// from the graph and the plan alone. An unfused instruction passes
// trivially; a fused one must walk a chain of single-successor,
// conversion-free, layout-stable epilogue layers of the right kinds,
// and an absorbed input conversion must be a one-step chain the
// selected primitive's packer can gather.
func (v *verifier) checkFusion(j int) error {
	p := v.p
	net := p.Plan.Net
	plan := p.Plan
	ins := &p.Instrs[j]

	// Epilogue ↔ op ↔ fused-layer-kind coupling.
	var wantKinds []dnn.Kind
	switch ins.Epi {
	case gemm.EpiNone:
		if len(ins.EpiLayers) != 0 {
			return fmt.Errorf("verify: instr %d (%s) has fused layers but no epilogue", j, ins.Name)
		}
	case gemm.EpiReLU:
		if ins.Op != program.OpConv && ins.Op != program.OpFC {
			return fmt.Errorf("verify: instr %d (%s %s) cannot carry a relu epilogue", j, ins.Op, ins.Name)
		}
		wantKinds = []dnn.Kind{dnn.KindReLU}
	case gemm.EpiAdd:
		if ins.Op != program.OpConv {
			return fmt.Errorf("verify: instr %d (%s %s) cannot carry an add epilogue", j, ins.Op, ins.Name)
		}
		wantKinds = []dnn.Kind{dnn.KindAdd}
	case gemm.EpiAddReLU:
		if ins.Op != program.OpConv {
			return fmt.Errorf("verify: instr %d (%s %s) cannot carry an add+relu epilogue", j, ins.Op, ins.Name)
		}
		wantKinds = []dnn.Kind{dnn.KindAdd, dnn.KindReLU}
	default:
		return fmt.Errorf("verify: instr %d (%s) carries unknown epilogue %v", j, ins.Name, ins.Epi)
	}
	if len(ins.EpiLayers) != len(wantKinds) {
		return fmt.Errorf("verify: instr %d (%s) epilogue %s fuses %d layers, wants %d",
			j, ins.Name, ins.Epi, len(ins.EpiLayers), len(wantKinds))
	}

	// Walk the fused chain: each fused layer must be its producer's ONLY
	// graph successor (the producer's value is observable nowhere else),
	// on an edge the plan does not legalize (no conversion may hide
	// between producer and epilogue), with both sides selected into the
	// same layout.
	cur := ins.Layer
	for i, fl := range ins.EpiLayers {
		if fl.Kind != wantKinds[i] {
			return fmt.Errorf("verify: instr %d (%s) fuses %s layer %q, position %d wants %s",
				j, ins.Name, fl.Kind, fl.Name, i, wantKinds[i])
		}
		succs := net.Succs(cur.ID)
		if len(succs) != 1 || succs[0] != fl.ID {
			return fmt.Errorf("verify: instr %d fuses %q over producer %q which has other consumers %v",
				j, fl.Name, cur.Name, succs)
		}
		if len(plan.Conversions[[2]int{cur.ID, fl.ID}]) > 0 {
			return fmt.Errorf("verify: instr %d fuses %q across legalized edge %d→%d", j, fl.Name, cur.ID, fl.ID)
		}
		la, oka := plan.Layouts[cur.ID]
		lb, okb := plan.Layouts[fl.ID]
		if !oka || !okb || la != lb {
			return fmt.Errorf("verify: instr %d fuses %q over a layout change (%s→%s)", j, fl.Name, la, lb)
		}
		cur = fl
	}

	// A fused add must have exactly two predecessors (one the producer),
	// and the residual operand must physically match the output slab —
	// the epilogue reads it element for element.
	if ins.Epi == gemm.EpiAdd || ins.Epi == gemm.EpiAddReLU {
		addL := ins.EpiLayers[0]
		apreds := net.Preds(addL.ID)
		if len(apreds) != 2 {
			return fmt.Errorf("verify: fused add %q has %d predecessors, want 2", addL.Name, len(apreds))
		}
		if len(ins.Args) != 2 {
			return fmt.Errorf("verify: instr %d (%s) epilogue %s carries %d args, wants producer input + residual",
				j, ins.Name, ins.Epi, len(ins.Args))
		}
		r := &p.Instrs[ins.Args[1]]
		if r.Layout != ins.Layout || dataLen(r.Layout, r.C, r.H, r.W) != dataLen(ins.Layout, ins.C, ins.H, ins.W) {
			return fmt.Errorf("verify: instr %d (%s) residual %q does not physically match its output", j, ins.Name, r.Name)
		}
	}

	// Absorbed input conversion: convolutions in batched programs only,
	// one-step chains only, and the primitive's layout-general packer
	// must support the source layout.
	if len(ins.CvtIn) > 0 {
		if ins.Op != program.OpConv {
			return fmt.Errorf("verify: instr %d (%s %s) absorbs an input conversion", j, ins.Op, ins.Name)
		}
		if p.Batch < 2 {
			return fmt.Errorf("verify: instr %d (%s) absorbs a conversion in a batch-1 program", j, ins.Name)
		}
		if len(ins.CvtIn) != 1 {
			return fmt.Errorf("verify: instr %d (%s) absorbs a %d-step chain", j, ins.Name, len(ins.CvtIn))
		}
		if ins.Prim == nil {
			return fmt.Errorf("verify: instr %d (%s) absorbs a conversion without a primitive", j, ins.Name)
		}
		if ins.CvtIn[0].To != ins.Prim.In || !ins.Prim.CanAbsorbInput(ins.CvtIn[0].From) {
			return fmt.Errorf("verify: instr %d (%s): primitive %s cannot absorb %s input",
				j, ins.Name, ins.Prim.Name, ins.CvtIn[0].From)
		}
	}
	return nil
}

// matchConvert locates and checks the convert instruction feeding
// argument position k of the consumer: it must consume the producer's
// value, carry the plan's chain for that edge (compared by Name, From
// and To), produce the producer's shape in the chain's final layout,
// and serve exactly one edge. consID is the consuming layer's id (the
// instruction's own layer).
func (v *verifier) matchConvert(consumer *program.Instr, preds []int, k, src int, chain []tensor.Transform, consID int) (int, error) {
	if k >= len(consumer.Args) {
		return -1, fmt.Errorf("verify: layer %q has %d args for %d predecessors", consumer.Name, len(consumer.Args), len(preds))
	}
	// The consumer's k-th arg should be the convert — except that a
	// two-operand add may have had its operands swapped by donor
	// promotion, so search both positions for an OpConvert consuming
	// src.
	cand := []int{consumer.Args[k]}
	if consumer.Op == program.OpAdd && len(consumer.Args) == 2 {
		cand = consumer.Args
	}
	for _, ci := range cand {
		if err := v.checkConvertMatch(ci, src, chain, preds[k], consID); err == nil {
			return ci, nil
		}
	}
	return -1, fmt.Errorf("verify: edge %s→%s is legalized by the plan but layer %q consumes no matching convert",
		v.p.Plan.Net.Layers[preds[k]].Name, consumer.Name, consumer.Name)
}

// matchResidualConvert checks the fused residual operand against the
// plan's legalized chain for the residual edge into the fused add.
func (v *verifier) matchResidualConvert(ins *program.Instr, prodID, src int, chain []tensor.Transform, addID int) (int, error) {
	ci := ins.Args[1]
	if err := v.checkConvertMatch(ci, src, chain, prodID, addID); err != nil {
		return -1, fmt.Errorf("verify: fused residual of %q: %w", ins.Name, err)
	}
	return ci, nil
}

// checkConvertMatch checks that instruction ci is the convert
// legalizing edge prodID→consID: consuming src, applying exactly
// chain, with the producer's shape and the chain's endpoint layouts.
// On success the edge is claimed in edgeOf.
func (v *verifier) checkConvertMatch(ci, src int, chain []tensor.Transform, prodID, consID int) error {
	p := v.p
	net := p.Plan.Net
	if ci < 0 || ci >= len(p.Instrs) {
		return fmt.Errorf("verify: convert candidate %d out of range", ci)
	}
	ins := &p.Instrs[ci]
	if ins.Op != program.OpConvert || len(ins.Args) != 1 || ins.Args[0] != src {
		return fmt.Errorf("verify: instr %d is no convert of value %d", ci, src)
	}
	if prev, claimed := v.edgeOf[ci]; claimed {
		return fmt.Errorf("verify: convert instr %d serves edges %v and %d→%d", ci, prev, prodID, consID)
	}
	if len(ins.Chain) != len(chain) {
		return fmt.Errorf("verify: convert instr %d applies %d transforms, plan edge %d→%d has %d",
			ci, len(ins.Chain), prodID, consID, len(chain))
	}
	for i := range chain {
		if !transformEqual(ins.Chain[i], chain[i]) {
			got, want := ins.Chain[i], chain[i]
			return fmt.Errorf("verify: convert instr %d chain[%d] is %s(%s→%s), plan has %s(%s→%s)",
				ci, i, got.Name, got.From, got.To, want.Name, want.From, want.To)
		}
	}
	pl := net.Layers[prodID]
	if ins.C != pl.OutC || ins.H != pl.OutH || ins.W != pl.OutW {
		return fmt.Errorf("verify: convert instr %d shape %d×%d×%d, producer %q is %d×%d×%d",
			ci, ins.C, ins.H, ins.W, pl.Name, pl.OutC, pl.OutH, pl.OutW)
	}
	if got := p.Instrs[src].Layout; got != chain[0].From {
		return fmt.Errorf("verify: convert instr %d consumes %s value, chain starts at %s", ci, got, chain[0].From)
	}
	if ins.Layout != chain[len(chain)-1].To {
		return fmt.Errorf("verify: convert instr %d produces %s, chain ends at %s", ci, ins.Layout, chain[len(chain)-1].To)
	}
	v.edgeOf[ci] = [2]int{prodID, consID}
	return nil
}

// argsMatch compares a layer instruction's arguments against the
// re-derived list, tolerating the one rewrite the compiler may apply:
// operand swap on a two-input add (donor promotion; bitwise-safe
// because two-operand float add is commutative).
func argsMatch(ins *program.Instr, want []int) bool {
	if len(ins.Args) != len(want) {
		return false
	}
	for i := range want {
		if ins.Args[i] != want[i] {
			if ins.Op == program.OpAdd && len(want) == 2 &&
				ins.Args[0] == want[1] && ins.Args[1] == want[0] {
				return true
			}
			return false
		}
	}
	return true
}

// checkShapes re-derives every instruction's shape and layout from the
// layer table and the plan, and re-checks primitive legality — notably
// Prim.Supports(scenario), which the compiler never re-asserts after
// selection.
func (v *verifier) checkShapes() error {
	p := v.p
	net := p.Plan.Net
	plan := p.Plan
	for id := 0; id < net.NumLayers(); id++ {
		l := net.Layers[id]
		ins := &p.Instrs[p.InstrOf[id]]
		if ins.C != l.OutC || ins.H != l.OutH || ins.W != l.OutW {
			return fmt.Errorf("verify: layer %q instr shape %d×%d×%d, net says %d×%d×%d",
				l.Name, ins.C, ins.H, ins.W, l.OutC, l.OutH, l.OutW)
		}
		wantL, ok := plan.Layouts[id]
		if !ok {
			return fmt.Errorf("verify: plan assigns no layout to layer %q", l.Name)
		}
		if ins.Layout != wantL {
			return fmt.Errorf("verify: layer %q produces %s, plan selected %s", l.Name, ins.Layout, wantL)
		}
		if ins.Layer != l {
			// A fused-away epilogue layer: its value is the carrying
			// instruction's output, whose shape and layout were just
			// checked to agree with this layer too (checkTranslation
			// proved the fusion chain, including layout stability). The
			// per-instruction checks below run once, for the base layer.
			continue
		}

		switch {
		case l.Kind == dnn.KindInput:
			if len(ins.Args) != 0 {
				return fmt.Errorf("verify: input layer %q consumes %d values", l.Name, len(ins.Args))
			}
			continue
		case l.IsConv():
			prim := plan.Primitives[id]
			if prim == nil {
				return fmt.Errorf("verify: plan selects no primitive for conv layer %q", l.Name)
			}
			if ins.Prim != prim {
				return fmt.Errorf("verify: conv layer %q instr carries primitive %v, plan selected %s", l.Name, ins.Prim, prim)
			}
			// Scenario arithmetic: the layer's propagated shape must be
			// the scenario's, and the primitive must actually support the
			// scenario.
			s := l.Conv
			if s.M != l.OutC || s.OutH() != l.OutH || s.OutW() != l.OutW {
				return fmt.Errorf("verify: conv layer %q shape %d×%d×%d disagrees with scenario %s",
					l.Name, l.OutC, l.OutH, l.OutW, s)
			}
			if !prim.Supports(s) {
				return fmt.Errorf("verify: conv layer %q: selected primitive %s does not support %s", l.Name, prim.Name, s)
			}
			if prim.Out != ins.Layout {
				return fmt.Errorf("verify: conv layer %q: primitive %s emits %s, instr produces %s",
					l.Name, prim.Name, prim.Out, ins.Layout)
			}
		default:
			if ins.Prim != nil {
				return fmt.Errorf("verify: non-conv layer %q carries a primitive", l.Name)
			}
		}

		// Every incoming value — post-conversion — must arrive in the
		// layer's working layout (the primitive's input layout for conv,
		// the selected layout for wildcards) with the producer's shape.
		wantIn := wantL
		if l.IsConv() {
			wantIn = plan.Primitives[id].In
			if len(ins.CvtIn) > 0 {
				// The absorbed conversion's packer gathers straight from
				// the producer's layout.
				wantIn = ins.CvtIn[0].From
			}
		}
		preds := net.Preds(id)
		nargs := len(ins.Args)
		if ins.Epi == gemm.EpiAdd || ins.Epi == gemm.EpiAddReLU {
			// The trailing residual operand is read in the OUTPUT layout
			// by the epilogue, not the primitive's input layout; its
			// physical match was proven by checkFusion.
			nargs--
		}
		for k := 0; k < nargs; k++ {
			a := &p.Instrs[ins.Args[k]]
			if a.Layout != wantIn {
				return fmt.Errorf("verify: layer %q receives arg %d in %s, needs %s", l.Name, k, a.Layout, wantIn)
			}
			// Arg order may only deviate by the two-input-add swap, so
			// position k corresponds to preds[k] (or the other pred).
			if len(preds) == nargs {
				pl := net.Layers[preds[k]]
				if ins.Op == program.OpAdd && len(preds) == 2 && (a.C != pl.OutC || a.H != pl.OutH || a.W != pl.OutW) {
					pl = net.Layers[preds[1-k]]
				}
				if a.C != pl.OutC || a.H != pl.OutH || a.W != pl.OutW {
					return fmt.Errorf("verify: layer %q arg %d shape %d×%d×%d, producer %q is %d×%d×%d",
						l.Name, k, a.C, a.H, a.W, pl.Name, pl.OutC, pl.OutH, pl.OutW)
				}
			}
		}
	}
	return nil
}

// checkLinks re-derives the dependency metadata the engine's scheduler
// trusts: NumDeps must count distinct producers, and Succs must list
// exactly the distinct consumers.
func (v *verifier) checkLinks() error {
	p := v.p
	succs := make([][]int, len(p.Instrs))
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		deps := map[int]bool{}
		for _, a := range ins.Args {
			if !deps[a] {
				deps[a] = true
				succs[a] = append(succs[a], j)
			}
		}
		if ins.NumDeps != len(deps) {
			return fmt.Errorf("verify: instr %d (%s) records %d deps, has %d distinct producers", j, ins.Name, ins.NumDeps, len(deps))
		}
	}
	for j := range p.Instrs {
		got := append([]int(nil), p.Instrs[j].Succs...)
		sort.Ints(got)
		want := succs[j]
		sort.Ints(want)
		if len(got) != len(want) {
			return fmt.Errorf("verify: instr %d (%s) records %d successors, has %d consumers", j, p.Instrs[j].Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("verify: instr %d (%s) successor list %v, consumers are %v", j, p.Instrs[j].Name, got, want)
			}
		}
	}
	return nil
}

// checkOutput locates the network sink independently and asserts the
// program returns it as a fresh, caller-owned allocation, and that no
// other value is computed for nothing.
func (v *verifier) checkOutput() error {
	p := v.p
	net := p.Plan.Net
	sink := -1
	for id := 0; id < net.NumLayers(); id++ {
		if len(net.Succs(id)) == 0 {
			if sink >= 0 {
				return fmt.Errorf("verify: net %q has multiple sinks (%d and %d)", net.Name, sink, id)
			}
			sink = id
		}
	}
	if sink < 0 {
		return fmt.Errorf("verify: net %q has no sink", net.Name)
	}
	if p.Output != p.InstrOf[sink] {
		return fmt.Errorf("verify: program output is instr %d, net sink %q compiles to %d",
			p.Output, net.Layers[sink].Name, p.InstrOf[sink])
	}
	out := &p.Instrs[p.Output]
	if out.Slot != noSlot || out.Donor >= 0 || out.Alias {
		return fmt.Errorf("verify: output %q is not a fresh allocation (slot %d, donor %d)", out.Name, out.Slot, out.Donor)
	}
	for j := range p.Instrs {
		if j != p.Output && len(p.Instrs[j].Succs) == 0 {
			return fmt.Errorf("verify: non-output instr %d (%s) has no consumer", j, p.Instrs[j].Name)
		}
	}
	return nil
}

// checkDonations re-checks in-place execution against the kernel
// aliasing contract and the adversarial scheduler: a donated buffer may
// be overwritten only once every other reader of it is a strict
// ancestor of the overwriter — on every topological interleaving, not
// just the sequential one.
func (v *verifier) checkDonations() error {
	p := v.p
	donatedBy := make(map[int]int) // value id → donee instr
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.Donor < 0 {
			if ins.Alias {
				return fmt.Errorf("verify: instr %d (%s) aliases without a donor", j, ins.Name)
			}
			continue
		}
		if !mayRunInPlace(ins.Op) {
			return fmt.Errorf("verify: instr %d (%s %s) runs in place but its kernel does not tolerate aliasing", j, ins.Op, ins.Name)
		}
		if ins.Donor >= len(ins.Args) {
			return fmt.Errorf("verify: instr %d (%s) donates arg %d of %d", j, ins.Name, ins.Donor, len(ins.Args))
		}
		// The aliasing contract allows dst to share only the FIRST
		// operand (AddInto accumulates onto it); donor promotion must
		// have moved the donated value to position 0.
		if ins.Donor != 0 {
			return fmt.Errorf("verify: instr %d (%s) donates arg %d; kernels tolerate aliasing only the first operand", j, ins.Name, ins.Donor)
		}
		if wantAlias := ins.Op == program.OpDropout; ins.Alias != wantAlias {
			return fmt.Errorf("verify: instr %d (%s) alias flag %v, want %v", j, ins.Name, ins.Alias, wantAlias)
		}
		d := ins.Args[0]
		dv := &p.Instrs[d]
		if prev, dup := donatedBy[d]; dup {
			return fmt.Errorf("verify: value %d donated to both instr %d and %d", d, prev, j)
		}
		donatedBy[d] = j
		if dv.Layout != ins.Layout {
			return fmt.Errorf("verify: instr %d (%s) overwrites %s donor in place, produces %s", j, ins.Name, dv.Layout, ins.Layout)
		}
		if dataLen(dv.Layout, dv.C, dv.H, dv.W) != dataLen(ins.Layout, ins.C, ins.H, ins.W) {
			return fmt.Errorf("verify: instr %d (%s) output does not physically match donor %d", j, ins.Name, d)
		}
		if ins.Slot != dv.Slot {
			return fmt.Errorf("verify: instr %d (%s) records slot %d, its donor occupies %d", j, ins.Name, ins.Slot, dv.Slot)
		}
		// Every other consumer of the donated value must be sealed — a
		// strict ancestor of the overwriter — or a concurrent branch
		// could read the buffer mid-overwrite.
		for _, c := range p.Instrs[d].Succs {
			if c != j && !v.anc[j][c] {
				return fmt.Errorf("verify: instr %d (%s) overwrites value %d while consumer %d (%s) is not ordered before it",
					j, ins.Name, d, c, p.Instrs[c].Name)
			}
		}
	}
	return nil
}

// checkSlots re-derives the batch-dependent placement rules and
// simulates slot occupancy under the adversarial scheduler: any two
// tenancies of one slot must be totally ordered, counting every
// instruction that can touch the buffer (the tenant, its donees, and
// all their consumers).
func (v *verifier) checkSlots() error {
	p := v.p

	// Placement rules.
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if j == p.Output || ins.Donor >= 0 {
			continue
		}
		switch {
		case ins.Op == program.OpConv && p.Batch == 1:
			if ins.Slot != noSlot {
				return fmt.Errorf("verify: batch-1 program slots conv output %q (slot %d); per-image primitives allocate their own",
					ins.Name, ins.Slot)
			}
		default:
			if ins.Slot == noSlot {
				return fmt.Errorf("verify: instr %d (%s) is unslotted; at batch %d it must write a planned slot",
					j, ins.Name, p.Batch)
			}
		}
	}

	// Capacity: a slot must hold its largest tenant's batch-scaled
	// value. SlotCap is per image; the engine multiplies by Batch, so
	// per-image capacity must dominate every tenant's per-image length.
	need := make([]int, len(p.SlotCap))
	for j := range p.Instrs {
		ins := &p.Instrs[j]
		if ins.Slot < 0 {
			continue
		}
		if ins.Slot >= len(p.SlotCap) {
			return fmt.Errorf("verify: instr %d (%s) uses slot %d of %d", j, ins.Name, ins.Slot, len(p.SlotCap))
		}
		n := dataLen(ins.Layout, ins.C, ins.H, ins.W)
		if n > p.SlotCap[ins.Slot] {
			return fmt.Errorf("verify: instr %d (%s) needs %d elements, slot %d holds %d",
				j, ins.Name, n, ins.Slot, p.SlotCap[ins.Slot])
		}
		if n > need[ins.Slot] {
			need[ins.Slot] = n
		}
	}
	for s, c := range p.SlotCap {
		if need[s] == 0 {
			return fmt.Errorf("verify: slot %d has no tenant", s)
		}
		if c != need[s] {
			return fmt.Errorf("verify: slot %d capacity %d, largest tenant needs %d", s, c, need[s])
		}
	}

	// Adversarial occupancy: group tenancies (out-of-place slotted
	// values and their donation chains) per slot; every pair must be
	// fully ordered one way or the other.
	donees := make([][]int, len(p.Instrs))
	for j := range p.Instrs {
		if ins := &p.Instrs[j]; ins.Donor >= 0 {
			donees[ins.Args[0]] = append(donees[ins.Args[0]], j)
		}
	}
	touchers := func(alloc int) []int {
		var ts []int
		stack := []int{alloc}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ts = append(ts, u)
			ts = append(ts, p.Instrs[u].Succs...)
			stack = append(stack, donees[u]...)
		}
		return ts
	}
	ordered := func(a, b int) bool { // every toucher of tenancy a precedes b's allocation
		for _, t := range touchers(a) {
			if !v.anc[b][t] {
				return false
			}
		}
		return true
	}
	bySlot := map[int][]int{}
	for j := range p.Instrs {
		if ins := &p.Instrs[j]; ins.Slot >= 0 && ins.Donor < 0 {
			bySlot[ins.Slot] = append(bySlot[ins.Slot], j)
		}
	}
	for slot, tenants := range bySlot {
		for i := 0; i < len(tenants); i++ {
			for k := i + 1; k < len(tenants); k++ {
				if !ordered(tenants[i], tenants[k]) && !ordered(tenants[k], tenants[i]) {
					return fmt.Errorf("verify: slot %d tenants %q and %q can overlap under a parallel schedule",
						slot, p.Instrs[tenants[i]].Name, p.Instrs[tenants[k]].Name)
				}
			}
		}
	}
	return nil
}
