package obs

import (
	"fmt"
	"sort"
	"strings"
)

// LayerRow is one instruction's predicted-vs-observed join: the data an
// adaptive re-selection controller needs to decide whether *this
// layer's* cost entry is lying on this machine.
type LayerRow struct {
	Instr int    `json:"instr"`
	Layer string `json:"layer"`
	Op    string `json:"op"`
	// Primitive is the selected convolution primitive (conv rows only).
	Primitive string `json:"primitive,omitempty"`

	// Samples counts the sampled executions; ObservedNS their total.
	Samples    int64 `json:"samples"`
	ObservedNS int64 `json:"observed_ns_total"`

	// ObservedNSPerImage is ObservedNS divided by the images the
	// sampled chunks carried; PredictedNSPerImage is the plan's cost
	// model prediction for this instruction (0 for wildcard operators
	// the model prices at zero). Ratio is observed/predicted where a
	// prediction exists, else 0.
	ObservedNSPerImage  float64 `json:"observed_ns_per_image"`
	PredictedNSPerImage float64 `json:"predicted_ns_per_image"`
	Ratio               float64 `json:"observed_over_predicted,omitempty"`

	// Share is this row's fraction of the summed per-instruction time.
	Share float64 `json:"share_of_runtime"`
}

// LayerTable is the per-layer profile of one (program, batch bucket):
// every instruction's observed time joined against the plan's
// prediction, plus the totals that anchor the table to reality — the
// engine wall time of the sampled chunks and the coverage ratio
// (observed sum / wall) that proves the per-layer numbers account for
// the whole execution.
type LayerTable struct {
	Net     string `json:"net"`
	Batch   int    `json:"batch"`
	Threads int    `json:"threads"`

	SampleEvery   int   `json:"sample_every"`
	SampledChunks int64 `json:"sampled_chunks"`
	SampledImages int64 `json:"sampled_images"`

	// EngineWallNS is the summed engine wall time of the sampled
	// chunks; ObservedTotalNS the summed per-instruction time of the
	// same chunks. Coverage = ObservedTotalNS / EngineWallNS. On a
	// sequential schedule coverage approaches 1 from below (frame
	// setup and output extraction are outside any instruction); under
	// branch-parallel execution overlapped instructions can push it
	// above 1 — per-instruction times are busy time, wall is not.
	EngineWallNS    int64   `json:"engine_wall_ns"`
	ObservedTotalNS int64   `json:"observed_ns_total"`
	Coverage        float64 `json:"observed_over_wall"`

	// PredictedTotalNSPerImage sums the per-image predictions;
	// ObservedNSPerImage is the wall time per sampled image.
	PredictedTotalNSPerImage float64 `json:"predicted_ns_per_image_total"`
	ObservedNSPerImage       float64 `json:"observed_ns_per_image"`

	Rows []LayerRow `json:"rows"`
}

// Finish derives the aggregate fields from the populated rows and
// chunk totals: per-image costs, shares, ratios, coverage. Callers fill
// Rows (Samples/ObservedNS/PredictedNSPerImage), the Sampled* totals
// and EngineWallNS, then call Finish once.
func (t *LayerTable) Finish() {
	t.ObservedTotalNS = 0
	t.PredictedTotalNSPerImage = 0
	for i := range t.Rows {
		t.ObservedTotalNS += t.Rows[i].ObservedNS
		t.PredictedTotalNSPerImage += t.Rows[i].PredictedNSPerImage
	}
	for i := range t.Rows {
		r := &t.Rows[i]
		if t.SampledImages > 0 {
			r.ObservedNSPerImage = float64(r.ObservedNS) / float64(t.SampledImages)
		}
		if r.PredictedNSPerImage > 0 {
			r.Ratio = r.ObservedNSPerImage / r.PredictedNSPerImage
		}
		if t.ObservedTotalNS > 0 {
			r.Share = float64(r.ObservedNS) / float64(t.ObservedTotalNS)
		}
	}
	if t.EngineWallNS > 0 {
		t.Coverage = float64(t.ObservedTotalNS) / float64(t.EngineWallNS)
	}
	if t.SampledImages > 0 {
		t.ObservedNSPerImage = float64(t.EngineWallNS) / float64(t.SampledImages)
	}
}

// Format renders the table for terminals: rows sorted by share of
// runtime, with the coverage line that ties the per-layer breakdown to
// the engine wall clock.
func (t *LayerTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== per-layer profile: %s batch %d, %d thread(s), sampling 1-in-%d ==\n",
		t.Net, t.Batch, t.Threads, t.SampleEvery)
	fmt.Fprintf(&b, "sampled %d chunk(s) / %d image(s); engine wall %.3f ms/img; per-layer sum covers %.1f%% of wall\n",
		t.SampledChunks, t.SampledImages, t.ObservedNSPerImage/1e6, t.Coverage*100)
	fmt.Fprintf(&b, "%-26s %-9s %-22s %7s %12s %12s %9s %7s\n",
		"layer", "op", "primitive", "samples", "obs ns/img", "pred ns/img", "obs/pred", "share")
	rows := append([]LayerRow(nil), t.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].ObservedNS > rows[j].ObservedNS })
	for _, r := range rows {
		if r.Samples == 0 && r.ObservedNS == 0 {
			continue
		}
		ratio := "-"
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%.2f", r.Ratio)
		}
		fmt.Fprintf(&b, "%-26s %-9s %-22s %7d %12.0f %12.0f %9s %6.1f%%\n",
			r.Layer, r.Op, r.Primitive, r.Samples, r.ObservedNSPerImage, r.PredictedNSPerImage, ratio, r.Share*100)
	}
	return b.String()
}
