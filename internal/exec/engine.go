package exec

// This file implements the batched, branch-parallel execution engine.
// Where Run (exec.go) walks the network one layer at a time with a
// fresh allocation per operator — the correctness oracle — the Engine
// is the production path. Construction compiles the legalized plan into
// the Program IR (internal/program) for a fixed maximum batch size: a
// topologically ordered instruction stream whose kernels, dependency
// counts and buffer slots are all resolved once, with the memory plan
// sized by N so the whole minibatch executes against one statically
// planned slot frame.
//
// The batch dimension is first-class: each instruction processes the
// entire minibatch in one kernel call (im2col across N feeding one
// tall GEMM, the Winograd kernel transform amortized over every
// image's tiles, slab operators striding over N), rather than the
// per-image frame loop of the earlier engine, which ran every
// instruction N times. A dependency-counting DAG scheduler dispatches
// ready instructions onto a worker pool sized by the plan's Threads
// budget — independent inception branches and residual shortcuts still
// run concurrently — and a batched instruction left alone on the pool
// inherits the whole thread budget, splitting its images, GEMM rows or
// Winograd points across the idle workers so chain networks cannot
// strand the budget. The per-image path is retained as the batch-1
// special case: a maxBatch-1 engine binds the original per-image
// primitives (convolution outputs primitive-allocated, exactly the old
// execution), which keeps it both the serving fallback for singleton
// flushes and the comparison baseline for the batched path.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/obs"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// Engine executes one compiled program repeatedly. An Engine is safe
// for concurrent use — the serving layer (internal/serve) depends on
// this. The audit trail for the contract:
//
//   - prog, kerns and w are written only during construction and
//     read-only afterwards;
//   - every RunBatch call owns its scheduler state (batchState),
//     including its slot-frame buffers, so calls share no mutable
//     structures;
//   - the arena, the one shared mutable structure, synchronizes get/put
//     internally, and frame buffers are returned to it only after the
//     batch's outputs (always fresh, never slot-backed) are extracted.
//
// The plan and weights must not be mutated while the Engine is in use.
// One caveat for concurrent callers: each RunBatch call runs its own
// worker pool, so K concurrent calls schedule up to K×workers
// CPU-bound goroutines — safe, but past GOMAXPROCS they only dilute
// each other. Callers wanting one shared dispatch pipeline should
// multiplex through a single RunBatch stream (serve.Batcher does
// exactly this).
type Engine struct {
	prog     *program.Program
	w        *Weights
	workers  int
	maxBatch int

	// kerns holds one bound kernel per instruction: the batched (or,
	// at maxBatch 1, per-image) primitive call, batched layer operator,
	// or fused conversion, with weights and destination policy resolved
	// at construction.
	kerns []kernelFn

	arena *arena

	// prof, when non-nil, is the per-instruction timing profile
	// (internal/obs): sampled RunBatch chunks time every instruction
	// with lock-free atomic accumulation. Set once via EnableProfiling
	// before the engine is shared; nil keeps the hot path at two nil
	// checks per task and zero allocations.
	prof *obs.Profile
}

// kernelFn executes one instruction over the whole minibatch of one
// RunBatch chunk and returns the produced batched value.
type kernelFn func(st *batchState, threads int) (*tensor.Batch, error)

// NewEngine compiles the plan into the batch-1 Program IR — the
// per-image execution path. It is NewEngineBatch at maxBatch 1.
func NewEngine(plan *selector.Plan, w *Weights) (*Engine, error) {
	return NewEngineBatch(plan, w, 1)
}

// NewEngineBatch compiles the plan into the Program IR for minibatches
// of up to maxBatch images and binds every instruction's kernel. The
// memory plan — slot capacities, in-place marks, conv-output slotting —
// is sized by maxBatch; RunBatch calls with fewer images execute
// against the same frame (using a prefix of each slot), and calls with
// more images are split into maxBatch-sized chunks. Serving processes
// that see several batch sizes should hold one engine per batch-size
// bucket (serve.Registry does) so every dispatch lands on a
// pre-planned program.
func NewEngineBatch(plan *selector.Plan, w *Weights, maxBatch int) (*Engine, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("exec: invalid max batch %d", maxBatch)
	}
	prog, err := program.CompileBatch(plan, maxBatch)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	// The plan's Threads value is a budget, not a mandate: running more
	// CPU-bound tasks than the runtime has processors only interleaves
	// half-finished convolutions on the same core and thrashes its
	// caches, so the pool is capped at GOMAXPROCS.
	workers := plan.Threads
	if workers < 1 {
		workers = 1
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	e := &Engine{
		prog:     prog,
		w:        w,
		workers:  workers,
		maxBatch: maxBatch,
		arena:    newArena(),
	}
	if err := e.bindKernels(); err != nil {
		return nil, err
	}
	return e, nil
}

// NewEngineFromProgram binds kernels over an already-compiled program,
// skipping compilation. It exists for the translation validator's fuzz
// and mutation harnesses, which need to execute instruction streams
// that never came out of CompileBatch. The program must be structurally
// sound (Validate-level) or construction and execution may panic; the
// worker budget comes from the program's plan, capped at GOMAXPROCS
// like NewEngineBatch.
func NewEngineFromProgram(prog *program.Program, w *Weights) (*Engine, error) {
	if prog == nil || prog.Plan == nil {
		return nil, fmt.Errorf("exec: nil program")
	}
	if prog.Batch < 1 {
		return nil, fmt.Errorf("exec: program compiled for invalid batch %d", prog.Batch)
	}
	workers := prog.Plan.Threads
	if workers < 1 {
		workers = 1
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	e := &Engine{
		prog:     prog,
		w:        w,
		workers:  workers,
		maxBatch: prog.Batch,
		arena:    newArena(),
	}
	if err := e.bindKernels(); err != nil {
		return nil, err
	}
	return e, nil
}

// Program exposes the compiled IR (for stats reporting and tests).
func (e *Engine) Program() *program.Program { return e.prog }

// MaxBatch reports the batch size the program's memory plan was sized
// for (larger RunBatch calls are chunked).
func (e *Engine) MaxBatch() int { return e.maxBatch }

// dst materializes the destination batch for an out-of-place
// instruction: the tenant view of its planned slot, or a fresh
// caller-owned allocation for the network output (and, in batch-1
// programs, nothing — conv outputs there are primitive-allocated and
// never pass through dst). Blocked-layout slot tenants clear their
// view first — their padding lanes must hold zeros and their kernels
// write only logical elements; plain layouts skip the memset because
// every physical element is a logical element the kernel overwrites.
func (e *Engine) dst(st *batchState, ins *program.Instr) *tensor.Batch {
	if ins.Slot == program.NoSlot {
		return tensor.NewBatch(ins.Layout, st.n, ins.C, ins.H, ins.W)
	}
	buf := st.bufs[ins.Slot][:ins.DataLen()*st.n]
	if ins.Layout.BlockSize() > 0 {
		clear(buf)
	}
	return tensor.NewBatchWith(ins.Layout, st.n, ins.C, ins.H, ins.W, buf)
}

// out materializes any instruction's destination, honoring in-place
// donation: an in-place instruction writes straight into its donor's
// batch, which the memory planner proved dead.
func (e *Engine) out(st *batchState, ins *program.Instr) *tensor.Batch {
	if ins.Donor >= 0 {
		return st.vals[ins.Args[ins.Donor]]
	}
	return e.dst(st, ins)
}

// bindKernels resolves every instruction to a closure over its
// pre-fetched primitive, weights, and geometry — the one type switch,
// paid at construction instead of per task.
func (e *Engine) bindKernels() error {
	e.kerns = make([]kernelFn, len(e.prog.Instrs))
	for i := range e.prog.Instrs {
		ins := &e.prog.Instrs[i]
		l := ins.Layer
		switch ins.Op {
		case program.OpInput:
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				// Copy-on-identity into engine-owned storage: outputs and
				// intermediates must never alias the caller's inputs.
				// ConvertInto degenerates to a straight copy when a
				// caller's layout already matches the plan's.
				out := e.out(st, ins)
				program.InputBatchInto(out, st.inputs, threads)
				return out, nil
			}

		case program.OpConv:
			prim, sc := ins.Prim, l.Conv
			k := e.w.Kernels[l.ID]
			if k == nil {
				return fmt.Errorf("exec: no weights for conv layer %q", l.Name)
			}
			// Bind-time geometry validation: the batched kernels write
			// into engine-provided destinations and treat mismatches as
			// programming errors (panics), so anything a corrupted plan
			// or weight set could get wrong must fail engine
			// construction with an error instead — the behavior the
			// per-image path's run-time checks gave the serving layer.
			if sc.M != l.OutC || sc.OutH() != l.OutH || sc.OutW() != l.OutW {
				return fmt.Errorf("exec: layer %q scenario %s produces %d×%d×%d, layer wants %d×%d×%d",
					l.Name, sc, sc.M, sc.OutH(), sc.OutW(), l.OutC, l.OutH, l.OutW)
			}
			if k.M != sc.M || k.C != sc.C || k.K != sc.K {
				return fmt.Errorf("exec: layer %q kernel M=%d C=%d K=%d does not match scenario %s",
					l.Name, k.M, k.C, k.K, sc)
			}
			// Fused-instruction geometry is validated at bind time too:
			// the fused kernels treat mismatches as panics, so a program
			// that reaches execution (fuzz-accepted mutants included) must
			// have failed construction first if its fusion fields are
			// inconsistent.
			epi := ins.Epi
			hasRes := epi == gemm.EpiAdd || epi == gemm.EpiAddReLU
			switch epi {
			case gemm.EpiNone, gemm.EpiReLU, gemm.EpiAdd, gemm.EpiAddReLU:
			default:
				return fmt.Errorf("exec: layer %q carries unsupported epilogue %s", l.Name, epi)
			}
			if hasRes {
				if len(ins.Args) != 2 {
					return fmt.Errorf("exec: layer %q epilogue %s has no residual operand", l.Name, epi)
				}
				r := &e.prog.Instrs[ins.Args[1]]
				if r.Layout != ins.Layout || r.DataLen() != ins.DataLen() {
					return fmt.Errorf("exec: layer %q residual %q mismatches output geometry", l.Name, r.Name)
				}
			} else if len(ins.Args) != 1 {
				return fmt.Errorf("exec: layer %q conv has %d args", l.Name, len(ins.Args))
			}
			wantIn := prim.In
			if len(ins.CvtIn) > 0 {
				if e.maxBatch == 1 {
					return fmt.Errorf("exec: layer %q absorbs a conversion in a per-image engine", l.Name)
				}
				if len(ins.CvtIn) != 1 || ins.CvtIn[0].To != prim.In || !prim.CanAbsorbInput(ins.CvtIn[0].From) {
					return fmt.Errorf("exec: layer %q: primitive %s cannot absorb input conversion", l.Name, prim.Name)
				}
				wantIn = ins.CvtIn[0].From
			}
			if e.maxBatch == 1 {
				// The per-image path: the primitive allocates its own
				// output, exactly as the original engine executed; a fused
				// epilogue is applied in place on the fresh allocation,
				// which is bitwise what the separate instruction computed.
				e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
					in := st.vals[ins.Args[0]].Image(0)
					if in.Layout != prim.In {
						return nil, fmt.Errorf("exec: layer %q: got %s input, primitive %s wants %s",
							l.Name, in.Layout, prim.Name, prim.In)
					}
					out := prim.Run(in, k, sc, threads)
					if out.C != l.OutC || out.H != l.OutH || out.W != l.OutW {
						return nil, fmt.Errorf("exec: layer %q produced %s, want %d×%d×%d",
							l.Name, out, l.OutC, l.OutH, l.OutW)
					}
					ob := tensor.NewBatchWith(out.Layout, 1, out.C, out.H, out.W, out.Data)
					if epi != gemm.EpiNone {
						var res *tensor.Batch
						if hasRes {
							res = st.vals[ins.Args[1]]
							if res.Layout != ob.Layout || len(res.Data) < len(ob.Data) {
								return nil, fmt.Errorf("exec: layer %q: residual batch mismatches output", l.Name)
							}
						}
						conv.ApplyEpilogueBatch(ob, epi, res, threads)
					}
					return ob, nil
				}
				break
			}
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				in := st.vals[ins.Args[0]]
				if in.Layout != wantIn {
					return nil, fmt.Errorf("exec: layer %q: got %s input, primitive %s wants %s",
						l.Name, in.Layout, prim.Name, wantIn)
				}
				if in.C != sc.C || in.H != sc.H || in.W != sc.W {
					return nil, fmt.Errorf("exec: layer %q: input %s does not match scenario %s",
						l.Name, in, sc)
				}
				out := e.out(st, ins)
				var res *tensor.Batch
				if hasRes {
					res = st.vals[ins.Args[1]]
					if res.Layout != out.Layout || res.N != st.n || len(res.Data) < len(out.Data) {
						return nil, fmt.Errorf("exec: layer %q: residual batch mismatches output", l.Name)
					}
				}
				if epi == gemm.EpiNone && len(ins.CvtIn) == 0 {
					conv.RunBatchInto(prim, out, in, k, sc, threads)
				} else {
					conv.RunBatchFusedInto(prim, out, in, k, sc, threads, epi, res)
				}
				return out, nil
			}

		case program.OpConvert:
			// The whole legalization chain is a layout permutation, so it
			// fuses into one specialized per-image ConvertInto striding
			// over the batch, with no chain temporaries. (The plan priced
			// the chain hop by hop, so its edge cost is an upper bound on
			// this fused execution.)
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				out := e.out(st, ins)
				program.ConvertBatchInto(out, st.vals[ins.Args[0]], threads)
				return out, nil
			}

		case program.OpReLU:
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				out := e.out(st, ins)
				program.ReLUBatchInto(out, st.vals[ins.Args[0]], threads)
				return out, nil
			}

		case program.OpDropout:
			if ins.Alias {
				e.kerns[i] = func(st *batchState, _ int) (*tensor.Batch, error) {
					return st.vals[ins.Args[0]], nil
				}
				break
			}
			e.kerns[i] = func(st *batchState, _ int) (*tensor.Batch, error) {
				out := e.out(st, ins)
				program.CopyBatchInto(out, st.vals[ins.Args[0]])
				return out, nil
			}

		case program.OpLRN:
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				out := e.out(st, ins)
				program.LRNBatchInto(out, st.vals[ins.Args[0]], threads)
				return out, nil
			}

		case program.OpMaxPool, program.OpAvgPool:
			isMax := ins.Op == program.OpMaxPool
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				out := e.out(st, ins)
				program.PoolBatchInto(out, st.vals[ins.Args[0]], l, isMax, threads)
				return out, nil
			}

		case program.OpSoftmax:
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				out := e.out(st, ins)
				program.SoftmaxBatchInto(out, st.vals[ins.Args[0]], threads)
				return out, nil
			}

		case program.OpFC:
			mat := e.w.FC[l.ID]
			if mat == nil {
				return fmt.Errorf("exec: no weights for fc layer %q", l.Name)
			}
			if ins.Epi != gemm.EpiNone && ins.Epi != gemm.EpiReLU {
				return fmt.Errorf("exec: fc layer %q carries epilogue %s (relu only)", l.Name, ins.Epi)
			}
			outN := l.FCOut
			fcEpi := ins.Epi
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				out := e.out(st, ins)
				program.FCBatchEpiInto(out, st.vals[ins.Args[0]], mat, outN, threads, fcEpi)
				return out, nil
			}

		case program.OpConcat, program.OpAdd:
			isConcat := ins.Op == program.OpConcat
			e.kerns[i] = func(st *batchState, threads int) (*tensor.Batch, error) {
				ins2 := make([]*tensor.Batch, len(ins.Args))
				for k, a := range ins.Args {
					ins2[k] = st.vals[a]
				}
				out := e.out(st, ins)
				if isConcat {
					program.ConcatBatchInto(out, ins2, threads)
				} else {
					program.AddBatchInto(out, ins2, threads)
				}
				return out, nil
			}

		default:
			return fmt.Errorf("exec: unsupported instruction %s", ins.Op)
		}
	}
	return nil
}

// Run executes the program on a single image. It is equivalent to
// RunBatch with a batch of one.
func (e *Engine) Run(input *tensor.Tensor) (*tensor.Tensor, error) {
	outs, err := e.RunBatch([]*tensor.Tensor{input})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RunBatch executes the program on an N-image minibatch: one batched
// frame per call, every instruction processing the whole minibatch in
// one kernel invocation. Calls with more images than the engine's
// planned maxBatch are split into maxBatch-sized chunks executed in
// order. The returned slice holds each image's output in input order.
// Outputs honor Run's no-alias contract: they never share storage with
// the caller's inputs, and they are never recycled — the compiled
// output instruction is always a fresh allocation.
func (e *Engine) RunBatch(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: empty batch")
	}
	// The first instruction is the topologically first layer: the input.
	il := e.prog.Instrs[0].Layer
	for _, in := range inputs {
		if in.C != il.OutC || in.H != il.OutH || in.W != il.OutW {
			return nil, fmt.Errorf("exec: input %s does not match network input %d×%d×%d",
				in, il.OutC, il.OutH, il.OutW)
		}
	}
	outs := make([]*tensor.Tensor, 0, len(inputs))
	for len(inputs) > 0 {
		n := len(inputs)
		if n > e.maxBatch {
			n = e.maxBatch
		}
		chunk, err := e.runChunk(inputs[:n])
		if err != nil {
			return nil, err
		}
		outs = append(outs, chunk...)
		inputs = inputs[n:]
	}
	return outs, nil
}

// runChunk executes one ≤ maxBatch minibatch against a freshly checked
// out slot frame.
func (e *Engine) runChunk(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	n := len(e.prog.Instrs)
	st := &batchState{
		n:      len(inputs),
		inputs: inputs,
		vals:   make([]*tensor.Batch, n),
		bufs:   make([][]float32, len(e.prog.SlotCap)),
	}
	// Slot buffers are checked out at the *planned* capacity — per-image
	// slot size × maxBatch — regardless of how many images this call
	// carries. Keeping the checkout size keyed to the batch bucket means
	// a server alternating between batch sizes recycles the same
	// buffers instead of churning the allocator (smaller calls simply
	// use a prefix of each slot).
	for s, cap := range e.prog.SlotCap {
		st.bufs[s] = e.arena.get(cap * e.maxBatch)
	}
	defer func() {
		for _, buf := range st.bufs {
			e.arena.put(buf)
		}
	}()

	// Observability, both opt-in and off the hot path when idle: a
	// sampled chunk (1-in-K, decided per chunk so every sampled dispatch
	// yields a complete per-layer breakdown) times each instruction and
	// the chunk's engine wall clock; an active runtime/trace session
	// wraps the chunk in a trace task and every instruction in a region,
	// so `go tool trace` shows the DAG schedule across the worker pool.
	if p := e.prof; p != nil && p.SampleChunk() {
		st.prof = p
	}
	if trace.IsEnabled() {
		ctx, task := trace.NewTask(context.Background(), "exec.RunBatch")
		st.ctx = ctx
		defer task.End()
	}
	var t0 time.Time
	if st.prof != nil {
		t0 = time.Now()
	}

	var err error
	if e.workers <= 1 {
		err = e.runSequential(st)
	} else {
		err = e.runParallel(st)
	}
	if st.prof != nil {
		st.prof.ObserveChunk(st.n, int64(time.Since(t0)))
	}
	if err != nil {
		return nil, err
	}
	outBatch := st.vals[e.prog.Output]
	outs := make([]*tensor.Tensor, st.n)
	for i := range outs {
		outs[i] = outBatch.Image(i)
	}
	return outs, nil
}

// runSequential executes the instruction stream in topological order on
// the calling goroutine — the single-worker fast path (no channels, no
// atomics).
func (e *Engine) runSequential(st *batchState) error {
	for i := range e.prog.Instrs {
		out, err := e.runInstr(st, i, 1)
		if err != nil {
			return err
		}
		st.vals[i] = out
	}
	return nil
}

// runInstr executes one instruction's bound kernel, timing it when this
// chunk is sampled and wrapping it in a trace region when a trace
// session is active. Disabled observability costs two nil checks and
// nothing else — no allocation, no atomics (the hotpathalloc analyzer
// enforces the former; BenchmarkEngineObservationOverhead pins both).
//
//dnn:hotpath
func (e *Engine) runInstr(st *batchState, t, threads int) (*tensor.Batch, error) {
	var reg *trace.Region
	if st.ctx != nil {
		reg = trace.StartRegion(st.ctx, e.prog.Instrs[t].Name)
	}
	var start time.Time
	if st.prof != nil {
		start = time.Now()
	}
	out, err := e.kerns[t](st, threads)
	if st.prof != nil {
		st.prof.Observe(t, int64(time.Since(start)))
	}
	if reg != nil {
		reg.End()
	}
	return out, err
}

// runParallel executes the stream with the dependency-counting DAG
// scheduler: every instruction whose producers have completed is a
// ready task; independent branches dispatch onto the worker pool
// concurrently, and a task running alone inherits the whole thread
// budget for its intra-kernel (image/row/point) split.
func (e *Engine) runParallel(st *batchState) error {
	n := len(e.prog.Instrs)
	st.deps = make([]int32, n)
	st.tasks = make(chan int, n)
	st.stop = make(chan struct{})
	st.total = int64(n)
	// Bound once here so the completion check in runTask passes a
	// prebuilt func to sync.Once instead of allocating a closure per
	// task.
	st.closeStop = func() { close(st.stop) }
	for i := range e.prog.Instrs {
		st.deps[i] = int32(e.prog.Instrs[i].NumDeps)
		if e.prog.Instrs[i].NumDeps == 0 {
			st.tasks <- i
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-st.stop:
					return
				case t := <-st.tasks:
					e.runTask(st, t)
				}
			}
		}()
	}
	wg.Wait()
	return st.loadErr()
}

// batchState is the per-chunk execution state: the minibatch's value
// table, the slot buffers of the static memory plan, and (under the
// parallel scheduler) the remaining dependency counts and task queue.
type batchState struct {
	n      int
	inputs []*tensor.Tensor
	vals   []*tensor.Batch
	bufs   [][]float32 // per planned slot, arena-owned

	// prof is non-nil iff this chunk was sampled for per-instruction
	// profiling; ctx is non-nil iff a runtime/trace session is active
	// (the chunk's trace task context, parent of every instruction
	// region).
	prof *obs.Profile
	ctx  context.Context

	deps  []int32
	tasks chan int      // buffered to the instruction count: sends never block
	stop  chan struct{} // closed on completion or first error

	total     int64
	completed int64
	running   int32

	errOnce sync.Once
	err     atomic.Value // error
	done    sync.Once
	// closeStop closes stop; hoisted into a field so the per-task
	// completion path stays allocation-free.
	closeStop func()
}

func (st *batchState) fail(err error) {
	st.errOnce.Do(func() { st.err.Store(err) })
	st.done.Do(st.closeStop)
}

func (st *batchState) loadErr() error {
	if v := st.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// runTask executes one batched instruction and unlocks successors. The
// heavy lifting — conversions, destination policy, kernel dispatch —
// was all resolved at compile time; nothing here consults a map or
// switches on a type.
//
//dnn:hotpath
func (e *Engine) runTask(st *batchState, t int) {
	atomic.AddInt32(&st.running, 1)
	out, err := e.runInstr(st, t, e.taskThreads(st))
	atomic.AddInt32(&st.running, -1)
	if err != nil {
		st.fail(err)
		return
	}
	st.vals[t] = out

	for _, s := range e.prog.Instrs[t].Succs {
		if atomic.AddInt32(&st.deps[s], -1) == 0 {
			st.tasks <- s
		}
	}
	if atomic.AddInt64(&st.completed, 1) == st.total {
		st.done.Do(st.closeStop)
	}
}

// taskThreads decides the intra-kernel thread budget for one task:
// normally 1 (the pool itself is the parallelism, across DAG
// branches), but a task running alone with an empty queue inherits the
// whole budget — its batched kernel then splits images, GEMM rows or
// Winograd points across the pool, so chain segments of the DAG do not
// serialize the minibatch onto a single worker.
//
//dnn:hotpath
func (e *Engine) taskThreads(st *batchState) int {
	if e.workers > 1 && atomic.LoadInt32(&st.running) == 1 && len(st.tasks) == 0 {
		return e.workers
	}
	return 1
}

// RunBatch executes the plan on a minibatch with a freshly constructed
// batched engine sized to the batch — the convenience entry point
// mirroring Run. Callers that execute a plan repeatedly should
// construct one Engine (per batch-size bucket) and reuse it, keeping
// the compiled program and its arena warm across calls.
func RunBatch(plan *selector.Plan, inputs []*tensor.Tensor, w *Weights) ([]*tensor.Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: empty batch")
	}
	e, err := NewEngineBatch(plan, w, len(inputs))
	if err != nil {
		return nil, err
	}
	return e.RunBatch(inputs)
}
