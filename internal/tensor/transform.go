package tensor

import "fmt"

// Transform is a direct data-layout transformation routine: it rewrites a
// tensor from one physical layout into another. The set of direct
// transforms is deliberately *incomplete* — exactly as in the paper,
// where a library ships conversion routines only between selected layout
// pairs, and converting between other pairs requires a chain of direct
// transforms found by shortest-path search over the DT graph.
type Transform struct {
	From, To Layout
	Name     string
	Run      func(src *Tensor) *Tensor
}

// Convert converts a tensor into the given layout, allocating the
// destination. The copy itself is ConvertInto, which dispatches to a
// specialized routine when one exists for the layout pair.
func Convert(src *Tensor, to Layout) *Tensor {
	dst := New(to, src.C, src.H, src.W)
	ConvertInto(dst, src)
	return dst
}

// ConvertInto copies src's logical elements into dst, which must have
// the same logical shape (any layout). Layout pairs covered by the
// transform library take a specialized slab-walking path; any other
// pair falls back to the generic element-wise logical copy. Callers
// providing recycled destination buffers in a blocked layout are
// responsible for their padding lanes, which this copy does not touch.
func ConvertInto(dst, src *Tensor) {
	if dst.C != src.C || dst.H != src.H || dst.W != src.W {
		panic(fmt.Sprintf("tensor: shape mismatch %s vs %s", dst, src))
	}
	if dst.Layout == src.Layout {
		copy(dst.Data, src.Data)
		return
	}
	switch {
	case src.Layout == CHW && dst.Layout == HWC:
		chwIntoHWC(dst, src)
	case src.Layout == HWC && dst.Layout == CHW:
		hwcIntoCHW(dst, src)
	case src.Layout == CHW && dst.Layout == HCW:
		chwIntoHCW(dst, src)
	case src.Layout == HCW && dst.Layout == CHW:
		hcwIntoCHW(dst, src)
	case src.Layout == CHW && dst.Layout == CWH:
		chwIntoCWH(dst, src)
	case src.Layout == CWH && dst.Layout == CHW:
		cwhIntoCHW(dst, src)
	case src.Layout == HWC && dst.Layout == WHC:
		hwcIntoWHC(dst, src)
	case src.Layout == WHC && dst.Layout == HWC:
		whcIntoHWC(dst, src)
	case src.Layout == CWH && dst.Layout == WCH:
		cwhIntoWCH(dst, src)
	case src.Layout == WCH && dst.Layout == CWH:
		wchIntoCWH(dst, src)
	case src.Layout == CHW && dst.Layout.BlockSize() > 0:
		chwIntoBlocked(dst, src)
	case src.Layout.BlockSize() > 0 && dst.Layout == CHW:
		blockedIntoCHW(dst, src)
	case src.Layout == HWC && dst.Layout == CHW8:
		hwcIntoCHW8(dst, src)
	default:
		convertIntoGeneric(dst, src)
	}
}

// convertIntoGeneric is the element-wise logical copy that works between
// any pair of layouts — the correctness oracle for the specialized
// routines above, and the materializer of last resort.
func convertIntoGeneric(dst, src *Tensor) {
	for c := 0; c < src.C; c++ {
		for h := 0; h < src.H; h++ {
			for w := 0; w < src.W; w++ {
				dst.Set(c, h, w, src.At(c, h, w))
			}
		}
	}
}

func mustBe(src *Tensor, l Layout) {
	if src.Layout != l {
		panic(fmt.Sprintf("tensor: transform expects %s input, got %s", l, src.Layout))
	}
}

// chwIntoHWC walks the destination in storage order so writes are
// sequential.
func chwIntoHWC(dst, src *Tensor) {
	d := dst.Data
	plane := src.H * src.W
	i := 0
	for h := 0; h < src.H; h++ {
		rowBase := h * src.W
		for w := 0; w < src.W; w++ {
			off := rowBase + w
			for c := 0; c < src.C; c++ {
				d[i] = src.Data[c*plane+off]
				i++
			}
		}
	}
}

func hwcIntoCHW(dst, src *Tensor) {
	d := dst.Data
	plane := src.H * src.W
	i := 0
	for h := 0; h < src.H; h++ {
		for w := 0; w < src.W; w++ {
			off := h*src.W + w
			for c := 0; c < src.C; c++ {
				d[c*plane+off] = src.Data[i]
				i++
			}
		}
	}
}

func chwIntoHCW(dst, src *Tensor) {
	for c := 0; c < src.C; c++ {
		for h := 0; h < src.H; h++ {
			srcRow := (c*src.H + h) * src.W
			dstRow := (h*src.C + c) * src.W
			copy(dst.Data[dstRow:dstRow+src.W], src.Data[srcRow:srcRow+src.W])
		}
	}
}

func hcwIntoCHW(dst, src *Tensor) {
	for h := 0; h < src.H; h++ {
		for c := 0; c < src.C; c++ {
			srcRow := (h*src.C + c) * src.W
			dstRow := (c*src.H + h) * src.W
			copy(dst.Data[dstRow:dstRow+src.W], src.Data[srcRow:srcRow+src.W])
		}
	}
}

func chwIntoCWH(dst, src *Tensor) {
	for c := 0; c < src.C; c++ {
		cs := c * src.H * src.W
		cd := c * src.W * src.H
		for h := 0; h < src.H; h++ {
			for w := 0; w < src.W; w++ {
				dst.Data[cd+w*src.H+h] = src.Data[cs+h*src.W+w]
			}
		}
	}
}

func cwhIntoCHW(dst, src *Tensor) {
	for c := 0; c < src.C; c++ {
		cs := c * src.W * src.H
		cd := c * src.H * src.W
		for w := 0; w < src.W; w++ {
			for h := 0; h < src.H; h++ {
				dst.Data[cd+h*src.W+w] = src.Data[cs+w*src.H+h]
			}
		}
	}
}

func hwcIntoWHC(dst, src *Tensor) {
	for h := 0; h < src.H; h++ {
		for w := 0; w < src.W; w++ {
			s := (h*src.W + w) * src.C
			d := (w*src.H + h) * src.C
			copy(dst.Data[d:d+src.C], src.Data[s:s+src.C])
		}
	}
}

func whcIntoHWC(dst, src *Tensor) {
	for w := 0; w < src.W; w++ {
		for h := 0; h < src.H; h++ {
			s := (w*src.H + h) * src.C
			d := (h*src.W + w) * src.C
			copy(dst.Data[d:d+src.C], src.Data[s:s+src.C])
		}
	}
}

func cwhIntoWCH(dst, src *Tensor) {
	for c := 0; c < src.C; c++ {
		for w := 0; w < src.W; w++ {
			s := (c*src.W + w) * src.H
			d := (w*src.C + c) * src.H
			copy(dst.Data[d:d+src.H], src.Data[s:s+src.H])
		}
	}
}

func wchIntoCWH(dst, src *Tensor) {
	for w := 0; w < src.W; w++ {
		for c := 0; c < src.C; c++ {
			s := (w*src.C + c) * src.H
			d := (c*src.W + w) * src.H
			copy(dst.Data[d:d+src.H], src.Data[s:s+src.H])
		}
	}
}

// chwIntoBlocked packs canonical CHW into a channel-blocked layout,
// reading contiguous source rows and scattering them across block
// lanes. Padding lanes of dst are not touched.
func chwIntoBlocked(dst, src *Tensor) {
	b := dst.Layout.BlockSize()
	for c := 0; c < src.C; c++ {
		lane := c % b
		blockBase := (c / b) * src.H * src.W * b
		for h := 0; h < src.H; h++ {
			srcRow := (c*src.H + h) * src.W
			dstRow := blockBase + h*src.W*b + lane
			for w := 0; w < src.W; w++ {
				dst.Data[dstRow+w*b] = src.Data[srcRow+w]
			}
		}
	}
}

// blockedIntoCHW unpacks a channel-blocked layout into canonical CHW,
// writing contiguous destination rows.
func blockedIntoCHW(dst, src *Tensor) {
	b := src.Layout.BlockSize()
	for c := 0; c < src.C; c++ {
		lane := c % b
		blockBase := (c / b) * src.H * src.W * b
		for h := 0; h < src.H; h++ {
			srcRow := blockBase + h*src.W*b + lane
			dstRow := (c*src.H + h) * src.W
			for w := 0; w < src.W; w++ {
				dst.Data[dstRow+w] = src.Data[srcRow+w*b]
			}
		}
	}
}

// hwcIntoCHW8 packs channels-last data directly into the vendor
// 8-blocked layout, the packing step a JIT-style vendor library performs
// on entry.
func hwcIntoCHW8(dst, src *Tensor) {
	for h := 0; h < src.H; h++ {
		for w := 0; w < src.W; w++ {
			s := (h*src.W + w) * src.C
			for c := 0; c < src.C; c++ {
				dst.Data[((c/8*src.H+h)*src.W+w)*8+c%8] = src.Data[s+c]
			}
		}
	}
}

// direct converts a library routine's (from, to) pair into a Transform
// Run function: assert the input layout, then convert through the
// specialized ConvertInto dispatch above.
func direct(from, to Layout) func(src *Tensor) *Tensor {
	return func(src *Tensor) *Tensor {
		mustBe(src, from)
		return Convert(src, to)
	}
}

// DirectTransforms returns the library's direct layout-conversion
// routines. The pair coverage is intentionally sparse: WCH is reachable
// only through CWH, WHC only through HWC, and CHW8 cannot be unpacked
// except via CHW4, so the DT graph genuinely requires multi-hop chains.
func DirectTransforms() []Transform {
	return []Transform{
		{CHW, HWC, "chw2hwc", direct(CHW, HWC)},
		{HWC, CHW, "hwc2chw", direct(HWC, CHW)},
		{CHW, HCW, "chw2hcw", direct(CHW, HCW)},
		{HCW, CHW, "hcw2chw", direct(HCW, CHW)},
		{CHW, CWH, "chw2cwh", direct(CHW, CWH)},
		{CWH, CHW, "cwh2chw", direct(CWH, CHW)},
		{HWC, WHC, "hwc2whc", direct(HWC, WHC)},
		{WHC, HWC, "whc2hwc", direct(WHC, HWC)},
		{CWH, WCH, "cwh2wch", direct(CWH, WCH)},
		{WCH, CWH, "wch2cwh", direct(WCH, CWH)},
		{CHW, CHW4, "chw2chw4", direct(CHW, CHW4)},
		{CHW4, CHW, "chw42chw", direct(CHW4, CHW)},
		{CHW4, CHW8, "chw42chw8", direct(CHW4, CHW8)},
		{CHW8, CHW4, "chw82chw4", direct(CHW8, CHW4)},
		{HWC, CHW8, "hwc2chw8", direct(HWC, CHW8)},
	}
}
