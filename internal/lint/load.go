package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one typechecked target package: syntax plus full type
// information, ready for the analyzers.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load typechecks the packages matched by the patterns (relative to
// dir; "./..." when none) from source. Dependencies — standard library
// and module-internal alike — are resolved from compiled export data
// reported by `go list -deps -export`, so the loader needs nothing
// beyond the standard library and an installed go toolchain.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, errb.String())
	}

	exports := map[string]string{}
	var targets []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f := exports[path]
		if f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, e := range targets {
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typechecking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: e.ImportPath,
			Dir:     e.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}
