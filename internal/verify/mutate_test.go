package verify

// Mutation tests: corrupt valid compiled programs in ways
// Program.Validate is known to tolerate, and assert the independent
// verifier rejects every class. Each test documents the Validate gap it
// exploits; if a future Validate learns a check and starts rejecting
// the mutant, the test still passes (the candidate is skipped), but the
// class must produce at least one Validate-clean mutant somewhere in
// the scanned configurations or the test fails loudly — that keeps the
// suite honest about what the verifier alone is catching.

import (
	"testing"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/program"
	"pbqpdnn/internal/selector"
)

// relink rebuilds NumDeps and Succs from Args — the tests' own copy of
// the compiler's link pass, used after rewiring arguments.
func relink(p *program.Program) {
	for j := range p.Instrs {
		p.Instrs[j].NumDeps = 0
		p.Instrs[j].Succs = nil
	}
	for j := range p.Instrs {
		seen := map[int]bool{}
		for _, a := range p.Instrs[j].Args {
			if !seen[a] {
				seen[a] = true
				p.Instrs[j].NumDeps++
				p.Instrs[a].Succs = append(p.Instrs[a].Succs, j)
			}
		}
	}
}

// expectRejected asserts the mutant slips past Validate but not the
// verifier. It returns false (without failing) when Validate already
// catches it, so scans can move to the next candidate.
func expectRejected(t *testing.T, q *program.Program, desc string) bool {
	t.Helper()
	if err := q.Validate(); err != nil {
		return false
	}
	if err := Program(q); err == nil {
		t.Fatalf("%s: Validate and the verifier both accept the corrupted program", desc)
	} else {
		t.Logf("%s: rejected: %v", desc, err)
	}
	return true
}

// TestMutationFlipDonor flips a two-operand add's donor from the
// promoted first operand to the second. Validate only compares the
// donor's layout and physical length — both operands of an add match —
// so it accepts the flip; but AddInto's contract tolerates dst aliasing
// its FIRST input only, so the mutant would accumulate into a buffer it
// is still reading as the second operand. The verifier pins Donor to
// the promoted position.
func TestMutationFlipDonor(t *testing.T) {
	found := 0
	for _, model := range []string{"resnet-18", "smallnet"} {
		for _, batch := range []int{1, 3, 8} {
			// Unfused: the fusion pass folds residual adds into their
			// producing convolutions, leaving no add donee to corrupt.
			p := compileUnfused(t, model, "pbqp", batch)
			for j := range p.Instrs {
				ins := &p.Instrs[j]
				if ins.Op != program.OpAdd || len(ins.Args) != 2 || ins.Donor != 0 {
					continue
				}
				q := p.Clone()
				q.Instrs[j].Donor = 1
				if expectRejected(t, q, "flip-donor "+model) {
					found++
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no flippable donor found in any scanned program; mutation class untested")
	}
}

// TestMutationDonorSlotAndAlias corrupts existing donations in two
// ways Validate tolerates: (a) an in-place instruction records a slot
// other than its donor's — Validate only checks the recorded slot's
// capacity, while the IR contract says a donee occupies exactly its
// donor's buffer; (b) a ReLU donee flips its Alias bit — Validate
// never reads Alias, but the engine would skip the kernel entirely and
// pass the un-rectified donor through as the "result".
func TestMutationDonorSlotAndAlias(t *testing.T) {
	foundSlot, foundAlias := 0, 0
	for _, model := range []string{"resnet-18", "alexnet", "smallnet", "micronet"} {
		for _, batch := range []int{1, 3, 8} {
			// Unfused: in-place relus — the alias-flip targets — fuse
			// into their producers otherwise.
			p := compileUnfused(t, model, "pbqp", batch)
			for j := range p.Instrs {
				ins := &p.Instrs[j]
				if ins.Donor != 0 {
					continue
				}
				donorSlot := p.Instrs[ins.Args[0]].Slot
				for s := range p.SlotCap {
					if s == donorSlot || p.SlotCap[s] < ins.DataLen() {
						continue
					}
					q := p.Clone()
					q.Instrs[j].Slot = s
					if expectRejected(t, q, "donor-slot-lie "+model) {
						foundSlot++
					}
					break
				}
				if ins.Op != program.OpDropout {
					q := p.Clone()
					q.Instrs[j].Alias = true
					if expectRejected(t, q, "alias-flip "+model) {
						foundAlias++
					}
				}
			}
		}
	}
	if foundSlot == 0 {
		t.Fatal("no donee with an alternative slot found; slot-lie mutation untested")
	}
	if foundAlias == 0 {
		t.Fatal("no non-dropout donee found; alias-flip mutation untested")
	}
}

// TestMutationShrinkSlot shrinks a slot together with its sole tenant's
// declared channel count, so the tenant still "fits" and Validate's
// local capacity check passes — but the instruction no longer produces
// the layer's shape, and at run time the kernel would write past the
// shrunken buffer. The verifier re-derives shapes from the network.
func TestMutationShrinkSlot(t *testing.T) {
	found := 0
	for _, model := range []string{"micronet", "smallnet", "alexnet"} {
		for _, batch := range []int{1, 3, 8} {
			p := compileFor(t, model, "pbqp", batch)
			tenants := make([]int, len(p.SlotCap))
			for j := range p.Instrs {
				if p.Instrs[j].Slot >= 0 {
					tenants[p.Instrs[j].Slot]++
				}
			}
			for j := range p.Instrs {
				ins := &p.Instrs[j]
				if ins.Slot < 0 || ins.Donor >= 0 || ins.C < 2 || tenants[ins.Slot] != 1 {
					continue
				}
				q := p.Clone()
				m := &q.Instrs[j]
				for m.C > 1 {
					m.C--
					if m.DataLen() < ins.DataLen() {
						break
					}
				}
				if m.DataLen() == ins.DataLen() {
					continue
				}
				q.SlotCap[m.Slot] = m.DataLen()
				if expectRejected(t, q, "shrink-slot "+model) {
					found++
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no shrinkable slot found in any scanned program; mutation class untested")
	}
}

// TestMutationRewireArg redirects an instruction's argument to an
// earlier value of identical shape and layout and relinks the
// dependency metadata consistently. Every local invariant Validate
// checks still holds — args are in order, layouts agree, the links are
// self-consistent — but the program now computes a different function
// than the plan; the verifier re-derives arguments from the network's
// predecessor lists and rejects.
func TestMutationRewireArg(t *testing.T) {
	found := 0
scan:
	for _, model := range []string{"vgg-b", "smallnet", "micronet"} {
		for _, batch := range []int{1, 3} {
			p := compileFor(t, model, "pbqp", batch)
			for j := range p.Instrs {
				ins := &p.Instrs[j]
				for k, a := range ins.Args {
					av := &p.Instrs[a]
					for alt := 0; alt < j; alt++ {
						if alt == a {
							continue
						}
						cand := &p.Instrs[alt]
						if cand.C != av.C || cand.H != av.H || cand.W != av.W || cand.Layout != av.Layout {
							continue
						}
						dup := false
						for _, other := range ins.Args {
							if other == alt {
								dup = true
								break
							}
						}
						if dup {
							continue
						}
						q := p.Clone()
						q.Instrs[j].Args[k] = alt
						relink(q)
						if expectRejected(t, q, "rewire-arg "+model) {
							found++
							continue scan
						}
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no rewirable argument found in any scanned program; mutation class untested")
	}
}

// TestMutationMisScaledBatch re-declares a compiled program's batch
// size. Validate has no notion of batch scaling at all; the verifier
// re-derives the batch-dependent placement rules (batch-1 conv outputs
// are primitive-allocated, batched conv outputs must be slotted) and
// the plan/batch bucket agreement.
func TestMutationMisScaledBatch(t *testing.T) {
	// A per-image program re-declared as batched: its conv outputs are
	// unslotted, so the batched kernels would have no destination.
	p1 := compileFor(t, "micronet", "pbqp", 1)
	q := p1.Clone()
	q.Batch = 3
	if !expectRejected(t, q, "batch 1→3") {
		t.Fatal("Validate caught the batch re-declaration; mutation class untested")
	}

	// A batched program re-declared per-image: its conv outputs sit in
	// slots the per-image primitives would ignore, leaking the frame
	// contract.
	p3 := compileFor(t, "micronet", "pbqp", 3)
	q = p3.Clone()
	q.Batch = 1
	if !expectRejected(t, q, "batch 3→1") {
		t.Fatal("Validate caught the batch re-declaration; mutation class untested")
	}

	// A batch-aware plan executed at the wrong bucket: the program's
	// structure is batch-agnostic, but the plan's costs are not.
	net, err := models.Build("micronet")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := selector.SelectBatch(net, 3, selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := program.CompileBatch(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	q = pb.Clone()
	q.Batch = 8
	if !expectRejected(t, q, "bucket 3→8") {
		t.Fatal("Validate caught the bucket mismatch; mutation class untested")
	}
}
