package conv

import (
	"testing"

	"pbqpdnn/internal/tensor"
)

// TestGatherTile2DPadding checks the tile gatherer's zero-padding
// behaviour at all four image corners.
func TestGatherTile2DPadding(t *testing.T) {
	in := tensor.New(tensor.CHW, 1, 4, 4)
	v := float32(1)
	for h := 0; h < 4; h++ {
		for w := 0; w < 4; w++ {
			in.Set(0, h, w, v)
			v++
		}
	}
	dst := make([]float64, 16)
	// Tile anchored at output (0,0) with pad 1 reads one padded row and
	// column.
	gatherTile2D(in, 0, 0, 0, 4, 1, dst)
	if dst[0] != 0 || dst[3] != 0 || dst[12] != 0 {
		t.Error("top/left padding not zero")
	}
	if dst[5] != 1 || dst[6] != 2 {
		t.Errorf("interior wrong: %v", dst)
	}
	// Tile hanging off the bottom-right.
	gatherTile2D(in, 0, 3, 3, 4, 1, dst)
	if dst[0] != float64(in.At(0, 2, 2)) {
		t.Errorf("anchored read wrong: %v", dst[0])
	}
	for i := 0; i < 4; i++ {
		if dst[3*4+i] != 0 || dst[i*4+3] != 0 {
			t.Error("bottom/right padding not zero")
		}
	}
}

// TestWinoNonDivisibleTiles exercises output extents that are not
// multiples of the tile size (boundary tiles write partially).
func TestWinoNonDivisibleTiles(t *testing.T) {
	for _, s := range []Scenario{
		{C: 2, H: 7, W: 5, Stride: 1, K: 3, M: 3, Pad: 1},  // 7×5 out, m∤
		{C: 3, H: 9, W: 11, Stride: 1, K: 5, M: 2, Pad: 2}, // 9×11 out
		{C: 1, H: 3, W: 3, Stride: 1, K: 3, M: 1, Pad: 1},  // single partial tile
	} {
		in := tensor.New(tensor.CHW, s.C, s.H, s.W)
		in.FillRandom(int64(s.H))
		k := NewKernel(s.M, s.C, s.K)
		k.FillRandom(int64(s.W))
		want := Reference(in, k, s)
		for _, p := range winoPrimitives() {
			if !p.Supports(s) {
				continue
			}
			out := p.Run(tensor.Convert(in, p.In), k, s, 2)
			if d := tensor.MaxAbsDiff(out, want); d > tolFor(s) {
				t.Errorf("%s on %s: diff %g", p.Name, s, d)
			}
		}
	}
}

// TestWinoMetadata: every Winograd primitive carries consistent tile
// parameters and constraints.
func TestWinoMetadata(t *testing.T) {
	for _, p := range winoPrimitives() {
		if p.WinoM < 1 || p.WinoR < 3 {
			t.Errorf("%s: bad tile F(%d,%d)", p.Name, p.WinoM, p.WinoR)
		}
		if len(p.Ks) != 1 || p.Ks[0] != p.WinoR {
			t.Errorf("%s: Ks %v inconsistent with radix %d", p.Name, p.Ks, p.WinoR)
		}
		if p.Strided {
			t.Errorf("%s: winograd cannot stride", p.Name)
		}
		if p.Workspace(Scenario{C: 8, H: 8, W: 8, Stride: 1, K: p.WinoR, M: 8, Pad: p.WinoR / 2}) <= 0 {
			t.Errorf("%s: workspace must be positive", p.Name)
		}
	}
}

// TestWino1DLessWorkspaceThan2D: for the same F(m,r) the 1D algorithm's
// resident set is about r× smaller — the ARM-vs-Intel mechanism.
func TestWino1DLessWorkspaceThan2D(t *testing.T) {
	s := Scenario{C: 64, H: 28, W: 28, Stride: 1, K: 3, M: 64, Pad: 1}
	w2 := winoWorkspace2D(4, 3)(s)
	w1 := winoWorkspace1D(4, 3)(s)
	if w1*4 > w2*3 { // at least ~4/3 smaller; actually ≈ r·t/t = 3×
		t.Errorf("1D workspace %d not sufficiently below 2D %d", w1, w2)
	}
}

// TestFFTRowHelpers covers the fft family's row extraction.
func TestFFTRowHelpers(t *testing.T) {
	k := NewKernel(1, 1, 3)
	k.Set(0, 0, 0, 0, 1)
	k.Set(0, 0, 0, 1, 2)
	k.Set(0, 0, 0, 2, 3)
	r := reverseRow(k, 0, 0, 0)
	if r[0] != 3 || r[1] != 2 || r[2] != 1 {
		t.Errorf("reverseRow = %v", r)
	}

	s := Scenario{C: 1, H: 2, W: 3, Stride: 1, K: 3, M: 1, Pad: 2}
	in := tensor.New(tensor.CHW, 1, 2, 3)
	in.Set(0, 1, 0, 7)
	row := paddedRow(in, s, 0, 1)
	if len(row) != 3+4 {
		t.Fatalf("padded row length %d", len(row))
	}
	if row[0] != 0 || row[1] != 0 || row[2] != 7 {
		t.Errorf("padding misplaced: %v", row)
	}
	// Out-of-image rows are all zero.
	for _, v := range paddedRow(in, s, 0, -1) {
		if v != 0 {
			t.Error("out-of-image row should be zero")
		}
	}
}

// TestFFTLargeKernel: the fft family's raison d'être — correctness on a
// big kernel where other fast algorithms don't apply.
func TestFFTLargeKernel(t *testing.T) {
	s := Scenario{C: 2, H: 9, W: 16, Stride: 1, K: 9, M: 2, Pad: 4}
	in := tensor.New(tensor.CHW, 2, 9, 16)
	in.FillRandom(11)
	k := NewKernel(2, 2, 9)
	k.FillRandom(12)
	want := Reference(in, k, s)
	for _, p := range fftPrimitives() {
		if !p.Supports(s) {
			continue
		}
		out := p.Run(tensor.Convert(in, p.In), k, s, 2)
		if d := tensor.MaxAbsDiff(out, want); d > tolFor(s) {
			t.Errorf("%s: K=9 diff %g", p.Name, d)
		}
	}
}
