package dnn

import (
	"fmt"
	"strings"
)

// DOT renders the network in Graphviz dot format; convolution layers
// show their scenario tuple. Useful for inspecting the model zoo and
// for documenting plans.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name)
	for _, l := range g.Layers {
		label := fmt.Sprintf("%s\\n%s", l.Name, l.Kind)
		shape := "box"
		switch l.Kind {
		case KindConv:
			label = fmt.Sprintf("%s\\n%s", l.Name, l.Conv)
			shape = "box3d"
		case KindConcat:
			shape = "trapezium"
		case KindInput:
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", shape=%s];\n", l.ID, label, shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}
