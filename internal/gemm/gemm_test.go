package gemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = rng.Float32()*2 - 1
	}
	return m
}

func transpose(rows, cols int, a []float32) []float32 {
	t := make([]float32, len(a))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			t[j*rows+i] = a[i*cols+j]
		}
	}
	return t
}

func maxDiff(a, b []float32) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i] - b[i])); v > d {
			d = v
		}
	}
	return d
}

// TestKernelsAgree checks every GEMM kernel against Naive on a grid of
// shapes, including degenerate and non-square ones.
func TestKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 1, 9}, {1, 8, 3},
		{16, 16, 16}, {33, 17, 29}, {50, 50, 50}, {64, 3, 64}}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a, b := randMat(rng, m*k), randMat(rng, k*n)
		want := make([]float32, m*n)
		Naive(m, n, k, a, b, want)

		got := make([]float32, m*n)
		IKJ(m, n, k, a, b, got)
		if d := maxDiff(got, want); d > 1e-4 {
			t.Errorf("IKJ %v: diff %g", s, d)
		}

		for i := range got {
			got[i] = 0
		}
		Accumulate(m, n, k, a, b, got)
		if d := maxDiff(got, want); d > 1e-4 {
			t.Errorf("Accumulate %v: diff %g", s, d)
		}

		TransB(m, n, k, a, transpose(k, n, b), got)
		if d := maxDiff(got, want); d > 1e-4 {
			t.Errorf("TransB %v: diff %g", s, d)
		}

		for _, block := range []int{0, 1, 4, 8, 64} {
			Blocked(m, n, k, block, a, b, got)
			if d := maxDiff(got, want); d > 1e-4 {
				t.Errorf("Blocked(%d) %v: diff %g", block, s, d)
			}
		}

		for _, th := range []int{1, 2, 4, 9} {
			Parallel(th, m, n, k, a, b, got)
			if d := maxDiff(got, want); d > 1e-4 {
				t.Errorf("Parallel(%d) %v: diff %g", th, s, d)
			}
		}

		for _, th := range []int{1, 2, 4, 9} {
			// The column-split kernel accumulates in the same p order as
			// IKJ, so its result is bitwise identical, not just close.
			ParallelCols(th, m, n, k, a, b, got)
			if d := maxDiff(got, want); d > 1e-4 {
				t.Errorf("ParallelCols(%d) %v: diff %g", th, s, d)
			}
		}
	}
}

// TestAccumulateAdds verifies Accumulate really adds onto existing C
// contents instead of clearing them.
func TestAccumulateAdds(t *testing.T) {
	a := []float32{1, 2, 3, 4} // 2×2
	b := []float32{5, 6, 7, 8}
	c := []float32{100, 100, 100, 100}
	Accumulate(2, 2, 2, a, b, c)
	want := []float32{100 + 19, 100 + 22, 100 + 43, 100 + 50}
	if maxDiff(c, want) != 0 {
		t.Errorf("Accumulate got %v, want %v", c, want)
	}
}

func TestGemmPanicsOnShortBuffers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on short buffer")
		}
	}()
	Naive(2, 2, 2, make([]float32, 3), make([]float32, 4), make([]float32, 4))
}

// TestGemmLinearity: property test — GEMM is linear in A, so
// (A1+A2)·B = A1·B + A2·B.
func TestGemmLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a1, a2, b := randMat(rng, m*k), randMat(rng, m*k), randMat(rng, k*n)
		sum := make([]float32, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		cs := make([]float32, m*n)
		IKJ(m, n, k, a1, b, c1)
		IKJ(m, n, k, a2, b, c2)
		IKJ(m, n, k, sum, b, cs)
		for i := range cs {
			if math.Abs(float64(cs[i]-(c1[i]+c2[i]))) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows, cols := 13, 9
	a := make([]float32, rows*cols)
	for i := range a {
		if rng.Float64() < 0.3 {
			a[i] = rng.Float32()
		}
	}
	s := NewCSR(rows, cols, a)
	if s.NNZ() == 0 {
		t.Fatal("expected some non-zeros")
	}
	if d := s.Density(); d <= 0 || d > 1 {
		t.Errorf("Density = %v", d)
	}
	n := 7
	b := randMat(rng, cols*n)
	want := make([]float32, rows*n)
	Naive(rows, n, cols, a, b, want)
	got := make([]float32, rows*n)
	s.SpMM(n, b, got)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("SpMM diff %g", d)
	}
	// SpMMAcc adds on top.
	s.SpMMAcc(n, b, got)
	for i := range got {
		want[i] *= 2
	}
	if d := maxDiff(got, want); d > 1e-4 {
		t.Errorf("SpMMAcc diff %g", d)
	}
}

func TestCSREmptyMatrix(t *testing.T) {
	s := NewCSR(0, 0, nil)
	if s.Density() != 0 || s.NNZ() != 0 {
		t.Error("empty CSR should have zero density and nnz")
	}
}

func BenchmarkGemmNaive64(b *testing.B) { benchGemm(b, Naive, 64) }
func BenchmarkGemmIKJ64(b *testing.B)   { benchGemm(b, IKJ, 64) }
func BenchmarkGemmBlocked64(b *testing.B) {
	benchGemm(b, func(m, n, k int, x, y, z []float32) { Blocked(m, n, k, 0, x, y, z) }, 64)
}

func benchGemm(b *testing.B, f func(m, n, k int, a, x, c []float32), n int) {
	rng := rand.New(rand.NewSource(1))
	a, x, c := randMat(rng, n*n), randMat(rng, n*n), make([]float32, n*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f(n, n, n, a, x, c)
	}
}
