package cost

import (
	"testing"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/tensor"
)

func prim(t *testing.T, name string) *conv.Primitive {
	t.Helper()
	p, err := conv.ByName(conv.Library(), name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var vggLayer = conv.Scenario{C: 128, H: 56, W: 56, Stride: 1, K: 3, M: 256, Pad: 1}
var alexConv1 = conv.Scenario{C: 3, H: 227, W: 227, Stride: 4, K: 11, M: 96, Pad: 0}

func TestMachines(t *testing.T) {
	for _, m := range Machines() {
		if m.Cores != 4 {
			t.Errorf("%s: cores = %d, want 4 (both paper testbeds)", m.Name, m.Cores)
		}
		if m.PeakFlops(1) <= 0 || m.PeakFlops(4) != 4*m.PeakFlops(1) {
			t.Errorf("%s: peak flops inconsistent", m.Name)
		}
		if m.PeakFlops(0) != m.PeakFlops(1) || m.PeakFlops(99) != m.PeakFlops(4) {
			t.Errorf("%s: thread clamping wrong", m.Name)
		}
	}
	if IntelHaswell.VecWidth != 8 || CortexA57.VecWidth != 4 {
		t.Error("vector widths must match AVX2/NEON FP32")
	}
	if CortexA57.LLC >= IntelHaswell.LLC {
		t.Error("the embedded core must have the smaller cache (paper §4)")
	}
}

func TestModelBasicSanity(t *testing.T) {
	mo := NewModel(IntelHaswell)
	for _, p := range conv.Library() {
		for _, s := range []conv.Scenario{vggLayer, alexConv1} {
			if !p.Supports(s) {
				continue
			}
			c1 := mo.Primitive(p, s, 1)
			c4 := mo.Primitive(p, s, 4)
			if c1 <= 0 || c4 <= 0 {
				t.Fatalf("%s: non-positive cost", p.Name)
			}
			if c4 > c1*1.01 {
				t.Errorf("%s: 4-thread cost %g exceeds single-thread %g", p.Name, c4, c1)
			}
		}
	}
}

func TestModelDeterministic(t *testing.T) {
	mo := NewModel(CortexA57)
	p := prim(t, "im2col-ab")
	if mo.Primitive(p, vggLayer, 2) != mo.Primitive(p, vggLayer, 2) {
		t.Error("model must be deterministic")
	}
}

// TestFastAlgorithmsWin pins Table 1's "time" column on a friendly K=3
// layer: Winograd < im2 < sum2d single-threaded on Intel.
func TestFastAlgorithmsWin(t *testing.T) {
	mo := NewModel(IntelHaswell)
	wino := mo.Primitive(prim(t, "wino2d-m4-k3-vf8"), vggLayer, 1)
	im2 := mo.Primitive(prim(t, "im2col-blk"), vggLayer, 1)
	sum := mo.Primitive(prim(t, "sum2d"), vggLayer, 1)
	if !(wino < im2 && im2 < sum) {
		t.Errorf("expected wino (%g) < im2 (%g) < sum2d (%g)", wino, im2, sum)
	}
	// Speedup of the right order of magnitude (paper: up to ~10x ST).
	if r := sum / wino; r < 3 || r > 60 {
		t.Errorf("wino speedup vs sum2d = %.1f, outside plausible band", r)
	}
}

// TestFFTBadForSmallKernels pins Table 1's fft "small kernel" weakness:
// fft loses to im2 on K=3 but closes the gap dramatically on K=11.
func TestFFTBadForSmallKernels(t *testing.T) {
	mo := NewModel(IntelHaswell)
	fftP, im2P := prim(t, "fft1d-pre"), prim(t, "im2col-blk")
	k3 := vggLayer
	k11 := conv.Scenario{C: 64, H: 56, W: 56, Stride: 1, K: 11, M: 64, Pad: 5}
	ratio3 := mo.Primitive(fftP, k3, 1) / mo.Primitive(im2P, k3, 1)
	ratio11 := mo.Primitive(fftP, k11, 1) / mo.Primitive(im2P, k11, 1)
	if ratio3 < 1 {
		t.Errorf("fft should lose on K=3 (ratio %.2f)", ratio3)
	}
	if ratio11 >= ratio3 {
		t.Errorf("fft should gain ground as K grows: K3 ratio %.2f, K11 ratio %.2f", ratio3, ratio11)
	}
}

// TestVectorFactorMatchesPlatform pins the Figure 4 mechanism: VF8
// Winograd wins on 8-wide Haswell, VF4 on 4-wide NEON.
func TestVectorFactorMatchesPlatform(t *testing.T) {
	vf4, vf8 := prim(t, "wino2d-m4-k3-vf4"), prim(t, "wino2d-m4-k3-vf8")
	intel := NewModel(IntelHaswell)
	arm := NewModel(CortexA57)
	if intel.Primitive(vf8, vggLayer, 4) >= intel.Primitive(vf4, vggLayer, 4) {
		t.Error("Haswell should prefer the VF8 variant")
	}
	if arm.Primitive(vf4, vggLayer, 4) >= arm.Primitive(vf8, vggLayer, 4) {
		t.Error("Cortex-A57 should prefer the VF4 variant")
	}
}

// bestWino returns the cheapest Winograd primitive of the given
// dimensionality for scenario s — what the selector would see.
func bestWino(mo *Model, s conv.Scenario, twoD bool, threads int) float64 {
	best := 0.0
	found := false
	for _, p := range conv.Library() {
		if p.Family != conv.FamilyWinograd || p.Wino2D != twoD || !p.Supports(s) {
			continue
		}
		c := mo.Primitive(p, s, threads)
		if !found || c < best {
			best, found = c, true
		}
	}
	return best
}

// TestARMPrefers1DWinogradMT pins the second Figure 4 mechanism: with
// four threads sharing the small ARM cache, the low-memory 1D Winograd
// family beats the 2D algorithm, while Intel's larger LLC keeps 2D
// ahead.
func TestARMPrefers1DWinogradMT(t *testing.T) {
	// AlexNet conv3-like layer, the shape Figure 4 shows.
	s := conv.Scenario{C: 256, H: 13, W: 13, Stride: 1, K: 3, M: 384, Pad: 1}
	arm := NewModel(CortexA57)
	if d1, d2 := bestWino(arm, s, false, 4), bestWino(arm, s, true, 4); d1 >= d2 {
		t.Errorf("ARM MT should prefer 1D winograd: 1d=%g 2d=%g", d1, d2)
	}
	intel := NewModel(IntelHaswell)
	if d1, d2 := bestWino(intel, s, false, 4), bestWino(intel, s, true, 4); d2 >= d1 {
		t.Errorf("Intel MT should prefer 2D winograd: 2d=%g 1d=%g", d2, d1)
	}
}

// TestKn2LowMemoryNiche pins kn2's Table 1 profile: less workspace than
// im2 and competitive on large-image layers.
func TestKn2LowMemoryNiche(t *testing.T) {
	mo := NewModel(CortexA57)
	big := conv.Scenario{C: 64, H: 112, W: 112, Stride: 1, K: 3, M: 64, Pad: 1}
	kn2 := mo.Primitive(prim(t, "kn2row-blk"), big, 1)
	im2 := mo.Primitive(prim(t, "im2col-blk"), big, 1)
	if kn2 > im2*1.5 {
		t.Errorf("kn2 should be competitive on large images: kn2=%g im2=%g", kn2, im2)
	}
}

func TestTransformCostScalesWithSize(t *testing.T) {
	mo := NewModel(IntelHaswell)
	tr := tensor.DirectTransforms()[0]
	small := mo.Transform(tr, 16, 28, 28)
	large := mo.Transform(tr, 256, 56, 56)
	if large <= small {
		t.Error("transform cost must grow with tensor size")
	}
	if small <= 0 {
		t.Error("transform cost must be positive")
	}
}

func TestTransformSlowerOnARM(t *testing.T) {
	tr := tensor.DirectTransforms()[0]
	if NewModel(CortexA57).Transform(tr, 64, 56, 56) <= NewModel(IntelHaswell).Transform(tr, 64, 56, 56) {
		t.Error("lower-bandwidth platform must pay more for transforms")
	}
}

// TestSparsityReducesCost: the future-work extension — a sparse
// primitive gets cheaper as kernel sparsity rises, a dense one doesn't.
func TestSparsityReducesCost(t *testing.T) {
	mo := NewModel(IntelHaswell)
	sp := prim(t, "im2col-sparse")
	dense := prim(t, "im2col-ab")
	s0 := vggLayer
	s9 := vggLayer
	s9.Sparsity = 0.9
	if mo.Primitive(sp, s9, 1) >= mo.Primitive(sp, s0, 1) {
		t.Error("sparse primitive should benefit from sparsity")
	}
	if mo.Primitive(dense, s9, 1) != mo.Primitive(dense, s0, 1) {
		t.Error("dense primitive cost should ignore sparsity")
	}
}

// TestMinibatchScalesCost: the other §8 extension.
func TestMinibatchScalesCost(t *testing.T) {
	mo := NewModel(IntelHaswell)
	p := prim(t, "im2col-ab")
	b1, b8 := vggLayer, vggLayer
	b8.Batch = 8
	c1, c8 := mo.Primitive(p, b1, 1), mo.Primitive(p, b8, 1)
	if c8 < 6*c1 || c8 > 10*c1 {
		t.Errorf("batch-8 cost %g should be ≈8× batch-1 cost %g", c8, c1)
	}
}

func TestMeasureProfiler(t *testing.T) {
	me := NewMeasure(2)
	s := conv.Scenario{C: 4, H: 12, W: 12, Stride: 1, K: 3, M: 4, Pad: 1}
	c := me.Primitive(prim(t, "im2col-ab"), s, 1)
	if c <= 0 {
		t.Error("measured primitive cost must be positive")
	}
	tr := tensor.DirectTransforms()[0]
	if me.Transform(tr, 4, 12, 12) <= 0 {
		t.Error("measured transform cost must be positive")
	}
}

// TestEveryPrimitiveHasCalibration ensures no library entry silently
// falls through to a zero efficiency.
func TestEveryPrimitiveHasCalibration(t *testing.T) {
	for _, p := range conv.Library() {
		if e := baseEff(p); e <= 0 || e > 1 {
			t.Errorf("%s: baseEff = %v", p.Name, e)
		}
	}
	for _, tr := range tensor.DirectTransforms() {
		if f := transformFactor(tr); f < 1 {
			t.Errorf("%s: transform factor %v", tr.Name, f)
		}
	}
}
