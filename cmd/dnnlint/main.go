// Command dnnlint runs the repository's custom static analyzers and
// the bounds-check-elimination guard.
//
// Usage:
//
//	dnnlint [packages]          # run the analyzer suite (default ./...)
//	dnnlint -bce                # audit bounds checks in the hot kernels
//	dnnlint -bce -v             # ... and print every classified check
//
// The analyzer suite enforces three contracts go vet cannot see:
// //dnn:hotpath functions must not allocate (hotpathalloc), *Into
// kernels must not retain caller memory (kernelalias), and fields
// accessed via sync/atomic must never be accessed plainly
// (atomicfield). Findings print as file:line:col: analyzer: message
// and make the command exit nonzero.
//
// -bce rebuilds the registered hot packages with the compiler's
// check_bce diagnostic and fails if any bounds check lands inside a
// registered function's leaf loop — the per-element loops that run once
// per multiply-accumulate. Checks hoisted to row-view setup in outer
// loops are reported but accepted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pbqpdnn/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dnnlint: ")
	bce := flag.Bool("bce", false, "run the bounds-check-elimination guard instead of the analyzers")
	verbose := flag.Bool("v", false, "with -bce: print every classified check, not just violations")
	flag.Parse()

	dir, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}

	if *bce {
		os.Exit(runBCE(dir, *verbose))
	}
	os.Exit(runAnalyzers(dir, flag.Args()))
}

func runAnalyzers(dir string, patterns []string) int {
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		log.Fatal(err)
	}
	diags := lint.RunAnalyzers(lint.All, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Printf("dnnlint: %d finding(s)\n", len(diags))
		return 1
	}
	fmt.Printf("dnnlint: %d package(s) clean\n", len(pkgs))
	return 0
}

func runBCE(dir string, verbose bool) int {
	report, err := lint.RunBCE(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range report.Checks {
		if verbose || c.Violation {
			status := "ok"
			if c.Violation {
				status = "FAIL"
			}
			fmt.Printf("%s:%d:%d: %s in %s [%s] %s\n", c.File, c.Line, c.Col, c.Kind,
				orUnknown(c.Func), status, c.Why)
		}
	}
	fmt.Printf("dnnlint -bce: %d bounds check(s) reported, %d violation(s) in registered hot leaf loops\n",
		len(report.Checks), report.Violations)
	if report.Violations > 0 {
		return 1
	}
	return 0
}

func orUnknown(s string) string {
	if s == "" {
		return "<no function>"
	}
	return s
}
