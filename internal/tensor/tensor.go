// Package tensor provides the dense float32 tensor substrate used by the
// DNN primitive library. A tensor is a logical C×H×W volume (channels,
// height, width) whose elements may be stored in any of several physical
// data layouts. Primitives consume and produce tensors in specific
// layouts; converting between layouts is the job of the transform
// routines in this package, whose costs drive the paper's data-layout
// transformation (DT) graph.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Layout identifies a physical memory layout for a logical C×H×W tensor.
// The first six values are the six permutations of the {C,H,W} axes, with
// the last-named axis contiguous in memory (e.g. CHW is channel-major with
// w innermost, the Caffe canonical layout). CHW4 and CHW8 are
// vendor-style channel-blocked layouts: channels are grouped into blocks
// of 4 or 8 that form the innermost dimension.
type Layout uint8

const (
	// CHW is the canonical Caffe layout: c outermost, w innermost.
	CHW Layout = iota
	// CWH stores c outermost, h innermost.
	CWH
	// HCW stores h outermost, w innermost.
	HCW
	// HWC stores h outermost, c innermost (the "channels-last" layout).
	HWC
	// WCH stores w outermost, h innermost.
	WCH
	// WHC stores w outermost, c innermost.
	WHC
	// CHW4 blocks channels in groups of 4: [⌈C/4⌉][H][W][4].
	CHW4
	// CHW8 blocks channels in groups of 8: [⌈C/8⌉][H][W][8].
	CHW8

	numLayouts = 8
)

// Layouts lists every layout known to the package, in declaration order.
func Layouts() []Layout {
	return []Layout{CHW, CWH, HCW, HWC, WCH, WHC, CHW4, CHW8}
}

// String returns the conventional name of the layout.
func (l Layout) String() string {
	switch l {
	case CHW:
		return "CHW"
	case CWH:
		return "CWH"
	case HCW:
		return "HCW"
	case HWC:
		return "HWC"
	case WCH:
		return "WCH"
	case WHC:
		return "WHC"
	case CHW4:
		return "CHW4"
	case CHW8:
		return "CHW8"
	}
	return fmt.Sprintf("Layout(%d)", uint8(l))
}

// ParseLayout converts a layout name as produced by String back to a
// Layout value.
func ParseLayout(s string) (Layout, error) {
	for _, l := range Layouts() {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("tensor: unknown layout %q", s)
}

// BlockSize reports the channel block size of a blocked layout, or 0 for
// the plain permutation layouts.
func (l Layout) BlockSize() int {
	switch l {
	case CHW4:
		return 4
	case CHW8:
		return 8
	}
	return 0
}

// Valid reports whether l is one of the known layouts.
func (l Layout) Valid() bool { return l < numLayouts }

// Tensor is a logical C×H×W volume of float32 data stored in a specific
// physical layout. The zero value is not usable; construct tensors with
// New.
type Tensor struct {
	C, H, W int
	Layout  Layout
	Data    []float32
}

// DataLen returns the number of float32 elements required to store a
// logical c×h×w volume in layout l (blocked layouts round the channel
// dimension up to a whole number of blocks).
func DataLen(l Layout, c, h, w int) int {
	if b := l.BlockSize(); b > 0 {
		return ((c + b - 1) / b) * b * h * w
	}
	return c * h * w
}

// New allocates a zero-filled tensor with the given logical dimensions
// and physical layout.
func New(l Layout, c, h, w int) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid dims %d×%d×%d", c, h, w))
	}
	if !l.Valid() {
		panic(fmt.Sprintf("tensor: invalid layout %d", l))
	}
	return &Tensor{C: c, H: h, W: w, Layout: l, Data: make([]float32, DataLen(l, c, h, w))}
}

// NewWith wraps an existing buffer as a tensor with the given logical
// dimensions and physical layout, without allocating. The buffer must
// have exactly DataLen(l, c, h, w) elements; callers that recycle
// buffers (the executor's arena) are responsible for zeroing them
// first, since blocked layouts carry padding lanes that must stay zero.
func NewWith(l Layout, c, h, w int, data []float32) *Tensor {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid dims %d×%d×%d", c, h, w))
	}
	if !l.Valid() {
		panic(fmt.Sprintf("tensor: invalid layout %d", l))
	}
	if want := DataLen(l, c, h, w); len(data) != want {
		panic(fmt.Sprintf("tensor: buffer has %d elements, want %d for %d×%d×%d %s",
			len(data), want, c, h, w, l))
	}
	return &Tensor{C: c, H: h, W: w, Layout: l, Data: data}
}

// Index returns the offset of logical element (c,h,w) within Data.
func (t *Tensor) Index(c, h, w int) int {
	switch t.Layout {
	case CHW:
		return (c*t.H+h)*t.W + w
	case CWH:
		return (c*t.W+w)*t.H + h
	case HCW:
		return (h*t.C+c)*t.W + w
	case HWC:
		return (h*t.W+w)*t.C + c
	case WCH:
		return (w*t.C+c)*t.H + h
	case WHC:
		return (w*t.H+h)*t.C + c
	case CHW4:
		return ((c/4*t.H+h)*t.W+w)*4 + c%4
	case CHW8:
		return ((c/8*t.H+h)*t.W+w)*8 + c%8
	}
	panic("tensor: invalid layout")
}

// At returns the logical element (c,h,w).
func (t *Tensor) At(c, h, w int) float32 { return t.Data[t.Index(c, h, w)] }

// Set stores v at logical position (c,h,w).
func (t *Tensor) Set(c, h, w int, v float32) { t.Data[t.Index(c, h, w)] = v }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := *t
	c.Data = make([]float32, len(t.Data))
	copy(c.Data, t.Data)
	return &c
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [-1, 1) derived from seed.
func (t *Tensor) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < t.C; c++ {
		for h := 0; h < t.H; h++ {
			for w := 0; w < t.W; w++ {
				t.Set(c, h, w, rng.Float32()*2-1)
			}
		}
	}
}

// String summarizes the tensor shape and layout.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%d×%d×%d %s)", t.C, t.H, t.W, t.Layout)
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two tensors of identical logical shape, irrespective of their layouts.
// It panics if shapes differ.
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		panic(fmt.Sprintf("tensor: shape mismatch %s vs %s", a, b))
	}
	var max float64
	for c := 0; c < a.C; c++ {
		for h := 0; h < a.H; h++ {
			for w := 0; w < a.W; w++ {
				d := math.Abs(float64(a.At(c, h, w)) - float64(b.At(c, h, w)))
				if d > max {
					max = d
				}
			}
		}
	}
	return max
}

// MaxRelDiff returns the largest elementwise relative difference
// |a−b| / max(1, |a|, |b|) between two tensors of identical logical
// shape, irrespective of their layouts. The max(1, …) denominator makes
// the measure behave like an absolute tolerance for small magnitudes
// (softmax probabilities) and a relative one for large activations. It
// panics if shapes differ.
func MaxRelDiff(a, b *Tensor) float64 {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		panic(fmt.Sprintf("tensor: shape mismatch %s vs %s", a, b))
	}
	var max float64
	for c := 0; c < a.C; c++ {
		for h := 0; h < a.H; h++ {
			for w := 0; w < a.W; w++ {
				va, vb := float64(a.At(c, h, w)), float64(b.At(c, h, w))
				den := 1.0
				if m := math.Abs(va); m > den {
					den = m
				}
				if m := math.Abs(vb); m > den {
					den = m
				}
				if d := math.Abs(va-vb) / den; d > max {
					max = d
				}
			}
		}
	}
	return max
}

// WithinRel reports whether a and b agree elementwise within the given
// relative tolerance (as measured by MaxRelDiff), irrespective of their
// physical layouts.
func WithinRel(a, b *Tensor, tol float64) bool {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		return false
	}
	return MaxRelDiff(a, b) <= tol
}

// AlmostEqual reports whether a and b agree elementwise within tol,
// irrespective of their physical layouts.
func AlmostEqual(a, b *Tensor, tol float64) bool {
	if a.C != b.C || a.H != b.H || a.W != b.W {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// Bytes returns the size of the tensor payload in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }
