package dnn

import (
	"strings"
	"testing"
)

func buildTiny() *Graph {
	b, x := NewBuilder("tiny", 3, 16, 16)
	x = b.Conv(x, "c1", 8, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.MaxPool(x, "p1", 2, 2, 0)
	x = b.Conv(x, "c2", 4, 3, 1, 1)
	return func() *Graph { b.Softmax(x, "sm"); return b.Graph() }()
}

func TestBuilderShapes(t *testing.T) {
	g := buildTiny()
	byName := map[string]*Layer{}
	for _, l := range g.Layers {
		byName[l.Name] = l
	}
	if l := byName["c1"]; l.OutC != 8 || l.OutH != 16 || l.OutW != 16 {
		t.Errorf("c1 shape %d×%d×%d", l.OutC, l.OutH, l.OutW)
	}
	if l := byName["p1"]; l.OutH != 8 || l.OutW != 8 {
		t.Errorf("p1 shape %d×%d", l.OutH, l.OutW)
	}
	if l := byName["c2"]; l.OutC != 4 || l.OutH != 8 {
		t.Errorf("c2 shape %d×%d×%d", l.OutC, l.OutH, l.OutW)
	}
}

func TestTopoOrder(t *testing.T) {
	g := buildTiny()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order", e)
		}
	}
}

func TestConvLayers(t *testing.T) {
	g := buildTiny()
	convs := g.ConvLayers()
	if len(convs) != 2 {
		t.Fatalf("conv layers = %d, want 2", len(convs))
	}
	for _, id := range convs {
		if !g.Layers[id].IsConv() {
			t.Errorf("layer %d not conv", id)
		}
	}
	if g.TotalConvFlops() <= 0 {
		t.Error("TotalConvFlops should be positive")
	}
}

func TestConcatValidation(t *testing.T) {
	b, x := NewBuilder("cat", 3, 8, 8)
	a := b.Conv(x, "a", 4, 1, 1, 0)
	c := b.Conv(x, "c", 6, 3, 1, 1)
	cat := b.Concat("cat1", a, c)
	g := func() *Graph { b.Softmax(cat, "sm"); return b.Graph() }()
	l := g.Layers[cat]
	if l.OutC != 10 || l.OutH != 8 {
		t.Errorf("concat shape %d×%d×%d", l.OutC, l.OutH, l.OutW)
	}
	if len(g.Preds(cat)) != 2 {
		t.Errorf("concat preds = %d", len(g.Preds(cat)))
	}
}

func TestBuilderPanics(t *testing.T) {
	for _, f := range []func(){
		func() { // conv bigger than input
			b, x := NewBuilder("bad", 1, 2, 2)
			b.Conv(x, "c", 1, 5, 1, 0)
		},
		func() { // concat spatial mismatch
			b, x := NewBuilder("bad", 3, 8, 8)
			a := b.MaxPool(x, "p", 2, 2, 0)
			b.Concat("cat", x, a)
		},
		func() { // concat arity
			b, x := NewBuilder("bad", 3, 8, 8)
			b.Concat("cat", x)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected builder panic")
				}
			}()
			f()
		}()
	}
}

func TestPoolCeilSemantics(t *testing.T) {
	// Caffe AlexNet: 55 → pool 3/2 → 27 (ceil((55-3)/2)+1).
	if got := poolOut(55, 3, 2, 0); got != 27 {
		t.Errorf("poolOut(55,3,2,0) = %d, want 27", got)
	}
	// GoogleNet: 112 → pool 3/2 → 56.
	if got := poolOut(112, 3, 2, 0); got != 56 {
		t.Errorf("poolOut(112,3,2,0) = %d, want 56", got)
	}
	// Padded pooling must not start a window beyond the input.
	if got := poolOut(14, 3, 1, 1); got != 14 {
		t.Errorf("poolOut(14,3,1,1) = %d, want 14", got)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindInput, KindConv, KindReLU, KindMaxPool, KindAvgPool,
		KindLRN, KindConcat, KindFC, KindDropout, KindSoftmax}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestDOTExport(t *testing.T) {
	g := buildTiny()
	dot := g.DOT()
	for _, want := range []string{"digraph \"tiny\"", "box3d", "n0 -> n1", "ellipse"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Edge count matches the graph.
	if got := strings.Count(dot, "->"); got != len(g.Edges()) {
		t.Errorf("DOT has %d edges, graph has %d", got, len(g.Edges()))
	}
}
