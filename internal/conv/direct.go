package conv

import (
	"fmt"

	"pbqpdnn/internal/tensor"
)

// The direct-loop family: multi-channel multi-kernel convolution as a
// six-deep loop nest (paper §4), in many variants with different loop
// orders, tilings, unrollings and layouts. All direct variants support
// arbitrary stride — the family's strength in Table 1.

// directMCHW: loop order M×C×H×W×K×K on CHW data, parallel over output
// maps.
func directMCHW(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "direct-mchw")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	parallelFor(threads, s.M, func(m int) {
		for c := 0; c < s.C; c++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var acc float32
					hb, wb := y*s.Stride-s.Pad, x*s.Stride-s.Pad
					for kh := 0; kh < s.K; kh++ {
						for kw := 0; kw < s.K; kw++ {
							acc += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
						}
					}
					out.Data[(m*oh+y)*ow+x] += acc
				}
			}
		}
	})
	return out
}

// directCMHW: channels outermost — better kernel reuse, worse output
// locality. Parallel over output rows to keep writes disjoint.
func directCMHW(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "direct-cmhw")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	parallelFor(threads, oh, func(y int) {
		for c := 0; c < s.C; c++ {
			for m := 0; m < s.M; m++ {
				row := out.Data[(m*oh+y)*ow : (m*oh+y)*ow+ow]
				hb := y*s.Stride - s.Pad
				for x := 0; x < ow; x++ {
					wb := x*s.Stride - s.Pad
					var acc float32
					for kh := 0; kh < s.K; kh++ {
						for kw := 0; kw < s.K; kw++ {
							acc += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
						}
					}
					row[x] += acc
				}
			}
		}
	})
	return out
}

// directHWMC: output-pixel outermost on channels-last data; the whole
// kernel stack is re-read per pixel but each output pixel finishes in
// one pass (good store behaviour).
func directHWMC(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.HWC, "direct-hwmc")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.HWC, s.M, oh, ow)
	parallelFor(threads, oh, func(y int) {
		for x := 0; x < ow; x++ {
			base := (y*ow + x) * s.M
			hb, wb := y*s.Stride-s.Pad, x*s.Stride-s.Pad
			for m := 0; m < s.M; m++ {
				var acc float32
				for c := 0; c < s.C; c++ {
					for kh := 0; kh < s.K; kh++ {
						for kw := 0; kw < s.K; kw++ {
							acc += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
						}
					}
				}
				out.Data[base+m] = acc
			}
		}
	})
	return out
}

// directMHWC: m outer, per-pixel channel-inner dot product exploiting
// HWC contiguity — for each tap, input channels are contiguous.
func directMHWC(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.HWC, "direct-mhwc")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.HWC, s.M, oh, ow)
	parallelFor(threads, s.M, func(m int) {
		kbase := m * s.C * s.K * s.K
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var acc float32
				hb, wb := y*s.Stride-s.Pad, x*s.Stride-s.Pad
				for kh := 0; kh < s.K; kh++ {
					ih := hb + kh
					if ih < 0 || ih >= s.H {
						continue
					}
					for kw := 0; kw < s.K; kw++ {
						iw := wb + kw
						if iw < 0 || iw >= s.W {
							continue
						}
						px := in.Data[(ih*s.W+iw)*s.C : (ih*s.W+iw)*s.C+s.C]
						for c, v := range px {
							acc += v * k.Data[kbase+c*s.K*s.K+kh*s.K+kw]
						}
					}
				}
				out.Data[(y*ow+x)*s.M+m] = acc
			}
		}
	})
	return out
}

// directHCW operates on row-interleaved HCW data: for each output row,
// all channels of the contributing input rows are adjacent.
func directHCW(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.HCW, "direct-hcw")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.HCW, s.M, oh, ow)
	parallelFor(threads, oh, func(y int) {
		hb := y*s.Stride - s.Pad
		for m := 0; m < s.M; m++ {
			row := out.Data[(y*s.M+m)*ow : (y*s.M+m)*ow+ow]
			for kh := 0; kh < s.K; kh++ {
				ih := hb + kh
				if ih < 0 || ih >= s.H {
					continue
				}
				for c := 0; c < s.C; c++ {
					src := in.Data[(ih*s.C+c)*s.W : (ih*s.C+c)*s.W+s.W]
					for kw := 0; kw < s.K; kw++ {
						kv := k.At(m, c, kh, kw)
						if kv == 0 {
							continue
						}
						for x := 0; x < ow; x++ {
							iw := x*s.Stride - s.Pad + kw
							if iw < 0 || iw >= s.W {
								continue
							}
							row[x] += kv * src[iw]
						}
					}
				}
			}
		}
	})
	return out
}

// directCWH walks column-major CWH data; a deliberately cache-hostile
// order on row-dominant kernels that the profiler should rank low.
func directCWH(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CWH, "direct-cwh")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CWH, s.M, oh, ow)
	parallelFor(threads, s.M, func(m int) {
		for c := 0; c < s.C; c++ {
			for x := 0; x < ow; x++ {
				for y := 0; y < oh; y++ {
					var acc float32
					hb, wb := y*s.Stride-s.Pad, x*s.Stride-s.Pad
					for kw := 0; kw < s.K; kw++ {
						for kh := 0; kh < s.K; kh++ {
							acc += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
						}
					}
					out.Data[(m*ow+x)*oh+y] += acc
				}
			}
		}
	})
	return out
}

// directWCH: width-outermost on WCH data.
func directWCH(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.WCH, "direct-wch")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.WCH, s.M, oh, ow)
	parallelFor(threads, ow, func(x int) {
		wb := x*s.Stride - s.Pad
		for m := 0; m < s.M; m++ {
			col := out.Data[(x*s.M+m)*oh : (x*s.M+m)*oh+oh]
			for c := 0; c < s.C; c++ {
				for y := 0; y < oh; y++ {
					hb := y*s.Stride - s.Pad
					var acc float32
					for kh := 0; kh < s.K; kh++ {
						for kw := 0; kw < s.K; kw++ {
							acc += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
						}
					}
					col[y] += acc
				}
			}
		}
	})
	return out
}

// directTiled tiles the output plane into tile×tile blocks (spatial
// blocking for locality); returns a closure for the requested tile edge.
func directTiled(tile int) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, tensor.CHW, "direct-tiled")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		out := tensor.New(tensor.CHW, s.M, oh, ow)
		tilesY := (oh + tile - 1) / tile
		tilesX := (ow + tile - 1) / tile
		parallelFor(threads, tilesY*tilesX, func(t int) {
			y0 := (t / tilesX) * tile
			x0 := (t % tilesX) * tile
			y1, x1 := min(y0+tile, oh), min(x0+tile, ow)
			for m := 0; m < s.M; m++ {
				for c := 0; c < s.C; c++ {
					for y := y0; y < y1; y++ {
						hb := y*s.Stride - s.Pad
						for x := x0; x < x1; x++ {
							wb := x*s.Stride - s.Pad
							var acc float32
							for kh := 0; kh < s.K; kh++ {
								for kw := 0; kw < s.K; kw++ {
									acc += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
								}
							}
							out.Data[(m*oh+y)*ow+x] += acc
						}
					}
				}
			}
		})
		return out
	}
}

// directUnrollC returns an HWC variant whose channel accumulation is
// blocked by vf lanes (the scalar analogue of a vf-wide SIMD dot
// product).
func directUnrollC(vf int) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, tensor.HWC, "direct-unrollc")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		out := tensor.New(tensor.HWC, s.M, oh, ow)
		lanes := make([]float32, vf)
		_ = lanes
		parallelFor(threads, oh, func(y int) {
			acc := make([]float32, vf)
			for x := 0; x < ow; x++ {
				hb, wb := y*s.Stride-s.Pad, x*s.Stride-s.Pad
				for m := 0; m < s.M; m++ {
					for i := range acc {
						acc[i] = 0
					}
					var tail float32
					for kh := 0; kh < s.K; kh++ {
						ih := hb + kh
						if ih < 0 || ih >= s.H {
							continue
						}
						for kw := 0; kw < s.K; kw++ {
							iw := wb + kw
							if iw < 0 || iw >= s.W {
								continue
							}
							px := in.Data[(ih*s.W+iw)*s.C : (ih*s.W+iw)*s.C+s.C]
							kb := ((m*s.C)*s.K+kh)*s.K + kw
							c := 0
							for ; c+vf <= s.C; c += vf {
								for l := 0; l < vf; l++ {
									acc[l] += px[c+l] * k.Data[kb+(c+l)*s.K*s.K]
								}
							}
							for ; c < s.C; c++ {
								tail += px[c] * k.Data[kb+c*s.K*s.K]
							}
						}
					}
					sum := tail
					for _, v := range acc {
						sum += v
					}
					out.Data[(y*ow+x)*s.M+m] = sum
				}
			}
		})
		return out
	}
}

// directUnrollW returns a CHW variant whose output-width loop is blocked
// by vf (SIMD along the image row).
func directUnrollW(vf int) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, tensor.CHW, "direct-unrollw")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		out := tensor.New(tensor.CHW, s.M, oh, ow)
		parallelFor(threads, s.M, func(m int) {
			acc := make([]float32, vf)
			for c := 0; c < s.C; c++ {
				for y := 0; y < oh; y++ {
					hb := y*s.Stride - s.Pad
					row := out.Data[(m*oh+y)*ow : (m*oh+y)*ow+ow]
					x := 0
					for ; x+vf <= ow; x += vf {
						for l := range acc {
							acc[l] = 0
						}
						for kh := 0; kh < s.K; kh++ {
							ih := hb + kh
							if ih < 0 || ih >= s.H {
								continue
							}
							for kw := 0; kw < s.K; kw++ {
								kv := k.At(m, c, kh, kw)
								for l := 0; l < vf; l++ {
									iw := (x+l)*s.Stride - s.Pad + kw
									if iw >= 0 && iw < s.W {
										acc[l] += kv * in.Data[(c*s.H+ih)*s.W+iw]
									}
								}
							}
						}
						for l := 0; l < vf; l++ {
							row[x+l] += acc[l]
						}
					}
					for ; x < ow; x++ {
						wb := x*s.Stride - s.Pad
						var a float32
						for kh := 0; kh < s.K; kh++ {
							for kw := 0; kw < s.K; kw++ {
								a += inputAt(in, c, hb+kh, wb+kw) * k.At(m, c, kh, kw)
							}
						}
						row[x] += a
					}
				}
			}
		})
		return out
	}
}

// directBlocked returns a variant working natively on channel-blocked
// CHWb data (vendor-style): the inner loop runs over the b channels of a
// block, which sit contiguously.
func directBlocked(layout tensor.Layout) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	b := layout.BlockSize()
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, layout, "direct-blocked")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		out := tensor.New(layout, s.M, oh, ow)
		blocksC := (s.C + b - 1) / b
		parallelFor(threads, s.M, func(m int) {
			for cb := 0; cb < blocksC; cb++ {
				cMax := min((cb+1)*b, s.C)
				for y := 0; y < oh; y++ {
					hb := y*s.Stride - s.Pad
					for x := 0; x < ow; x++ {
						wb := x*s.Stride - s.Pad
						var acc float32
						for kh := 0; kh < s.K; kh++ {
							ih := hb + kh
							if ih < 0 || ih >= s.H {
								continue
							}
							for kw := 0; kw < s.K; kw++ {
								iw := wb + kw
								if iw < 0 || iw >= s.W {
									continue
								}
								base := ((cb*s.H+ih)*s.W + iw) * b
								for c := cb * b; c < cMax; c++ {
									acc += in.Data[base+c-cb*b] * k.At(m, c, kh, kw)
								}
							}
						}
						out.Set(m, y, x, out.At(m, y, x)+acc)
					}
				}
			}
		})
		return out
	}
}

// directStrided is specialized for strided scenarios: the kernel tap
// bounds are precomputed per output row so the inner loops are
// branch-free.
func directStrided(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "direct-strided")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	parallelFor(threads, s.M, func(m int) {
		for c := 0; c < s.C; c++ {
			for y := 0; y < oh; y++ {
				hb := y*s.Stride - s.Pad
				kh0, kh1 := 0, s.K
				if hb < 0 {
					kh0 = -hb
				}
				if hb+s.K > s.H {
					kh1 = s.H - hb
				}
				for x := 0; x < ow; x++ {
					wb := x*s.Stride - s.Pad
					kw0, kw1 := 0, s.K
					if wb < 0 {
						kw0 = -wb
					}
					if wb+s.K > s.W {
						kw1 = s.W - wb
					}
					var acc float32
					for kh := kh0; kh < kh1; kh++ {
						src := in.Data[(c*s.H+hb+kh)*s.W : (c*s.H+hb+kh+1)*s.W]
						kr := k.Data[((m*s.C+c)*s.K+kh)*s.K : ((m*s.C+c)*s.K+kh+1)*s.K]
						for kw := kw0; kw < kw1; kw++ {
							acc += src[wb+kw] * kr[kw]
						}
					}
					out.Data[(m*oh+y)*ow+x] += acc
				}
			}
		}
	})
	return out
}

// directKKMC puts the kernel taps outermost: each tap contributes a
// shifted scaled copy of the input plane (a stencil-style schedule).
func directKKMC(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "direct-kkmc")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	parallelFor(threads, s.M, func(m int) {
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				for c := 0; c < s.C; c++ {
					kv := k.At(m, c, kh, kw)
					if kv == 0 {
						continue
					}
					for y := 0; y < oh; y++ {
						ih := y*s.Stride - s.Pad + kh
						if ih < 0 || ih >= s.H {
							continue
						}
						dst := out.Data[(m*oh+y)*ow : (m*oh+y)*ow+ow]
						src := in.Data[(c*s.H+ih)*s.W : (c*s.H+ih)*s.W+s.W]
						for x := 0; x < ow; x++ {
							iw := x*s.Stride - s.Pad + kw
							if iw >= 0 && iw < s.W {
								dst[x] += kv * src[iw]
							}
						}
					}
				}
			}
		}
	})
	return out
}

// directPrimitives assembles the direct-loop family entries.
func directPrimitives() []*Primitive {
	noWS := func(Scenario) int64 { return 0 }
	ps := []*Primitive{
		{Name: "direct-mchw", Family: FamilyDirect, In: tensor.CHW, Out: tensor.CHW, VF: 1, Strided: true, Workspace: noWS, Run: directMCHW},
		{Name: "direct-cmhw", Family: FamilyDirect, In: tensor.CHW, Out: tensor.CHW, VF: 1, Strided: true, Workspace: noWS, Run: directCMHW},
		{Name: "direct-hwmc", Family: FamilyDirect, In: tensor.HWC, Out: tensor.HWC, VF: 1, Strided: true, Workspace: noWS, Run: directHWMC},
		{Name: "direct-mhwc", Family: FamilyDirect, In: tensor.HWC, Out: tensor.HWC, VF: 1, Strided: true, Workspace: noWS, Run: directMHWC},
		{Name: "direct-hcw", Family: FamilyDirect, In: tensor.HCW, Out: tensor.HCW, VF: 1, Strided: true, Workspace: noWS, Run: directHCW},
		{Name: "direct-cwh", Family: FamilyDirect, In: tensor.CWH, Out: tensor.CWH, VF: 1, Strided: true, Workspace: noWS, Run: directCWH},
		{Name: "direct-wch", Family: FamilyDirect, In: tensor.WCH, Out: tensor.WCH, VF: 1, Strided: true, Workspace: noWS, Run: directWCH},
		{Name: "direct-strided", Family: FamilyDirect, In: tensor.CHW, Out: tensor.CHW, VF: 1, Strided: true, Workspace: noWS, Run: directStrided},
		{Name: "direct-kkmc", Family: FamilyDirect, In: tensor.CHW, Out: tensor.CHW, VF: 1, Strided: true, Workspace: noWS, Run: directKKMC},
	}
	for _, tile := range []int{8, 16, 32} {
		ps = append(ps, &Primitive{
			Name: fmt.Sprintf("direct-tiled-%d", tile), Family: FamilyDirect,
			In: tensor.CHW, Out: tensor.CHW, VF: 1, Strided: true,
			Workspace: noWS, Run: directTiled(tile),
		})
	}
	for _, vf := range []int{4, 8} {
		ps = append(ps, &Primitive{
			Name: fmt.Sprintf("direct-hwc-vf%d", vf), Family: FamilyDirect,
			In: tensor.HWC, Out: tensor.HWC, VF: vf, Strided: true, MinC: vf,
			Workspace: noWS, Run: directUnrollC(vf),
		})
		ps = append(ps, &Primitive{
			Name: fmt.Sprintf("direct-chw-wvf%d", vf), Family: FamilyDirect,
			In: tensor.CHW, Out: tensor.CHW, VF: vf, Strided: true,
			Workspace: noWS, Run: directUnrollW(vf),
		})
	}
	ps = append(ps,
		&Primitive{Name: "direct-chw4", Family: FamilyDirect, In: tensor.CHW4, Out: tensor.CHW4,
			VF: 4, Strided: true, MinC: 4, Workspace: noWS, Run: directBlocked(tensor.CHW4)},
		&Primitive{Name: "direct-chw8", Family: FamilyDirect, In: tensor.CHW8, Out: tensor.CHW8,
			VF: 8, Strided: true, MinC: 8, Workspace: noWS, Run: directBlocked(tensor.CHW8)},
	)
	return ps
}
