package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// This file implements the paper's §8 future-work experiments, which
// the formulation supports "with the addition of a parameter": a
// kernel-sparsity sweep showing where the selector switches from dense
// to sparse primitives, and a minibatch sweep showing per-layer batch
// scaling.

// SparsityPoint is one row of the sparsity sweep.
type SparsityPoint struct {
	Sparsity    float64
	DenseMS     float64 // best selection with sparse primitives excluded
	SelectedMS  float64 // full-library selection
	UsedSparse  bool    // did the optimizer pick a sparse primitive
	SpeedupX    float64
	PrimaryName string
}

// sparsityNet is a mid-sized layer stack typical of a pruned model.
func sparsityNet(sparsity float64) *dnn.Graph {
	b, x := dnn.NewBuilder("pruned-net", 128, 28, 28)
	x = b.Conv(x, "c1", 128, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.Conv(x, "c2", 128, 3, 1, 1)
	x = b.Softmax(x, "sm")
	g := b.Graph()
	for _, id := range g.ConvLayers() {
		g.Layers[id].Conv.Sparsity = sparsity
	}
	return g
}

// SparsitySweep runs the §8 dense-vs-sparse decision across kernel
// sparsity levels on the Intel model.
func SparsitySweep() ([]SparsityPoint, error) {
	var pts []SparsityPoint
	prof := cost.NewModel(cost.IntelHaswell)
	for _, sp := range []float64{0, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99} {
		g := sparsityNet(sp)
		opts := selector.Options{Prof: prof, Threads: 1}

		full, err := selector.Select(g, opts)
		if err != nil {
			return nil, err
		}
		denseOpts := opts
		denseOpts.Lib = denseLibrary()
		dense, err := selector.Select(g, denseOpts)
		if err != nil {
			return nil, err
		}
		used := false
		name := ""
		for _, id := range g.ConvLayers() {
			p := full.Primitives[id]
			if p.Sparse {
				used = true
			}
			name = p.Name
		}
		pts = append(pts, SparsityPoint{
			Sparsity:    sp,
			DenseMS:     dense.TotalCost() * 1e3,
			SelectedMS:  full.TotalCost() * 1e3,
			UsedSparse:  used,
			SpeedupX:    dense.TotalCost() / full.TotalCost(),
			PrimaryName: name,
		})
	}
	return pts, nil
}

// denseLibrary is the primitive library with the sparsity-exploiting
// entries removed — the ablation side of the sweep.
func denseLibrary() []*conv.Primitive {
	var out []*conv.Primitive
	for _, p := range conv.Library() {
		if !p.Sparse {
			out = append(out, p)
		}
	}
	return out
}

// MinibatchPoint is one row of the §8 minibatch sweep. TotalMS and
// PerImageMS are the cost model's predictions for the
// batch-parameterized plan; WallTotalMS and WallPerImageMS are
// measured wall-clock times of the real batched execution engine
// (exec.Engine.RunBatch) reusing one legalized plan across the
// minibatch.
type MinibatchPoint struct {
	Batch          int
	TotalMS        float64
	PerImageMS     float64
	WallTotalMS    float64
	WallPerImageMS float64
}

// BatchSweepPoint is one row of the batched-versus-per-image engine
// comparison on a real network: the same legalized plan executed by
// the batch-N compiled program (one batched frame, batched kernels)
// and by the per-image batch-1 program looped over the same images.
// SpeedupX > 1 means the batched program wins per image.
type BatchSweepPoint struct {
	Net     string
	Batch   int
	Threads int
	// BatchedNsPerImage and PerImageNsPerImage are wall ns per image.
	BatchedNsPerImage  float64
	PerImageNsPerImage float64
	SpeedupX           float64
}

// batchSweepReps is how many timed runs each BatchSweep measurement
// takes; the recorded figure is the minimum. Per-commit CI archives
// these records, and on shared runners a single timed iteration can
// swing tens of percent — min-of-k keeps consecutive commits'
// artifacts comparable.
const batchSweepReps = 3

// minWallNs runs fn reps times and returns the minimum wall time in
// nanoseconds.
func minWallNs(reps int, fn func() error) (float64, error) {
	best := math.Inf(1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if ns := float64(time.Since(start).Nanoseconds()); ns < best {
			best = ns
		}
	}
	return best, nil
}

// BatchSweep measures the batched compiled path against the per-image
// compiled path on one of the real model zoo networks. Both engines
// share one PBQP plan; each batch size compiles its own batched
// program (the memory plan is N-dependent). Engines are warmed with
// one untimed run so arena cold misses don't pollute the comparison,
// and each recorded figure is the minimum of batchSweepReps timed
// runs.
func BatchSweep(netName string, threads int, batches []int) ([]BatchSweepPoint, error) {
	g, err := models.Build(netName)
	if err != nil {
		return nil, err
	}
	plan, err := selector.Select(g, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		return nil, err
	}
	w := exec.NewWeights(g)
	perImage, err := exec.NewEngine(plan, w)
	if err != nil {
		return nil, err
	}
	var pts []BatchSweepPoint
	for _, batch := range batches {
		batched, err := exec.NewEngineBatch(plan, w, batch)
		if err != nil {
			return nil, err
		}
		inputs := makeBatch(g, batch)
		if _, err := batched.RunBatch(inputs); err != nil { // warm
			return nil, err
		}
		batchedTotal, err := minWallNs(batchSweepReps, func() error {
			_, err := batched.RunBatch(inputs)
			return err
		})
		if err != nil {
			return nil, err
		}
		batchedNs := batchedTotal / float64(batch)

		if _, err := perImage.RunBatch(inputs[:1]); err != nil { // warm
			return nil, err
		}
		perTotal, err := minWallNs(batchSweepReps, func() error {
			_, err := perImage.RunBatch(inputs) // chunked image by image
			return err
		})
		if err != nil {
			return nil, err
		}
		perNs := perTotal / float64(batch)

		pts = append(pts, BatchSweepPoint{
			Net:                netName,
			Batch:              batch,
			Threads:            threads,
			BatchedNsPerImage:  batchedNs,
			PerImageNsPerImage: perNs,
			SpeedupX:           perNs / batchedNs,
		})
	}
	return pts, nil
}

// FormatBatchSweep renders the comparison.
func FormatBatchSweep(pts []BatchSweepPoint) string {
	var b strings.Builder
	if len(pts) > 0 {
		fmt.Fprintf(&b, "== batched vs per-image compiled path (%s, %d threads) ==\n",
			pts[0].Net, pts[0].Threads)
	}
	fmt.Fprintf(&b, "%-7s %-16s %-16s %s\n", "batch", "batched ms/img", "per-image ms/img", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-7d %-16.1f %-16.1f %.2fx\n",
			p.Batch, p.BatchedNsPerImage/1e6, p.PerImageNsPerImage/1e6, p.SpeedupX)
	}
	return b.String()
}

// batchedNet is the sweep's workload: a two-convolution stack at a
// mid-network size. batch parameterizes the cost model; execution
// measures the real batched engine on an equally sized minibatch.
func batchedNet(batch int) *dnn.Graph {
	b, x := dnn.NewBuilder("batched-net", 64, 28, 28)
	x = b.Conv(x, "c1", 64, 3, 1, 1)
	x = b.Conv(x, "c2", 64, 3, 1, 1)
	x = b.Softmax(x, "sm")
	g := b.Graph()
	for _, id := range g.ConvLayers() {
		g.Layers[id].Conv.Batch = batch
	}
	return g
}

// MinibatchSweep runs MinibatchSweepOpts at the paper-style defaults
// (4 threads, batches 1–16).
func MinibatchSweep() ([]MinibatchPoint, error) {
	return MinibatchSweepOpts(4, []int{1, 2, 4, 8, 16})
}

// MinibatchSweepOpts scales the batch parameter and reports per-image
// amortization: predicted by the cost model (plans re-selected per
// batch-parameterized graph) and measured by executing the real
// batched engine on the minibatch. One engine — and thus one warm
// buffer arena — serves all batch sizes, mirroring a serving process.
func MinibatchSweepOpts(threads int, batches []int) ([]MinibatchPoint, error) {
	prof := cost.NewModel(cost.IntelHaswell)

	// The executed plan: batch-free graph (the cost model's batch
	// parameter varies per point; execution varies the real minibatch),
	// selected once and reused across every batch size. One batched
	// engine sized to the largest swept batch serves every point, so
	// smaller batches run against the same warm slot frame.
	execNet := batchedNet(0)
	execPlan, err := selector.Select(execNet, selector.Options{Prof: prof, Threads: threads})
	if err != nil {
		return nil, err
	}
	maxBatch := 1
	for _, b := range batches {
		if b > maxBatch {
			maxBatch = b
		}
	}
	w := exec.NewWeights(execNet)
	eng, err := exec.NewEngineBatch(execPlan, w, maxBatch)
	if err != nil {
		return nil, err
	}
	warm := makeBatch(execNet, 1)
	if _, err := eng.RunBatch(warm); err != nil { // warm the arena
		return nil, err
	}

	var pts []MinibatchPoint
	for _, batch := range batches {
		g := batchedNet(batch)
		plan, err := selector.Select(g, selector.Options{Prof: prof, Threads: threads})
		if err != nil {
			return nil, err
		}
		inputs := makeBatch(execNet, batch)
		start := time.Now()
		if _, err := eng.RunBatch(inputs); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds() * 1e3
		pts = append(pts, MinibatchPoint{
			Batch:          batch,
			TotalMS:        plan.TotalCost() * 1e3,
			PerImageMS:     plan.TotalCost() * 1e3 / float64(batch),
			WallTotalMS:    wall,
			WallPerImageMS: wall / float64(batch),
		})
	}
	return pts, nil
}

// makeBatch fabricates n deterministic input images for the network.
func makeBatch(g *dnn.Graph, n int) []*tensor.Tensor {
	l := g.Layers[0]
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = tensor.New(tensor.CHW, l.OutC, l.OutH, l.OutW)
		ins[i].FillRandom(int64(i + 1))
	}
	return ins
}

// FormatSparsitySweep renders the sweep.
func FormatSparsitySweep(pts []SparsityPoint) string {
	var b strings.Builder
	b.WriteString("== §8 extension: dense-vs-sparse selection sweep (Intel model) ==\n")
	fmt.Fprintf(&b, "%-9s %-11s %-11s %-8s %-9s %s\n",
		"sparsity", "dense ms", "chosen ms", "gain", "sparse?", "selection")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-9.2f %-11.3f %-11.3f %-8.2f %-9v %s\n",
			p.Sparsity, p.DenseMS, p.SelectedMS, p.SpeedupX, p.UsedSparse, p.PrimaryName)
	}
	return b.String()
}

// FormatMinibatchSweep renders the sweep.
func FormatMinibatchSweep(pts []MinibatchPoint) string {
	var b strings.Builder
	b.WriteString("== §8 extension: minibatch scaling (Intel model + measured batched engine) ==\n")
	fmt.Fprintf(&b, "%-7s %-11s %-14s %-11s %s\n",
		"batch", "model ms", "model ms/img", "wall ms", "wall ms/img")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-7d %-11.3f %-14.3f %-11.3f %.3f\n",
			p.Batch, p.TotalMS, p.PerImageMS, p.WallTotalMS, p.WallPerImageMS)
	}
	return b.String()
}
