package conv

import "fmt"

// Library assembles the full primitive registry: the paper's "library of
// more than 70 DNN primitives operating on a variety of data layouts".
// The slice is freshly built on each call so callers may annotate or
// filter it without aliasing.
func Library() []*Primitive {
	var ps []*Primitive
	ps = append(ps, Sum2D())
	ps = append(ps, directPrimitives()...)
	ps = append(ps, im2Primitives()...)
	ps = append(ps, kn2Primitives()...)
	ps = append(ps, winoPrimitives()...)
	ps = append(ps, fftPrimitives()...)
	ps = append(ps, sparsePrimitives()...)
	ps = append(ps, extraPrimitives()...)
	return ps
}

// ByName returns the primitive with the given name from lib, or an error
// naming the miss.
func ByName(lib []*Primitive, name string) (*Primitive, error) {
	for _, p := range lib {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("conv: no primitive named %q", name)
}

// ByFamily filters lib down to one family.
func ByFamily(lib []*Primitive, f Family) []*Primitive {
	var out []*Primitive
	for _, p := range lib {
		if p.Family == f {
			out = append(out, p)
		}
	}
	return out
}

// Supporting filters lib down to primitives that can implement s.
func Supporting(lib []*Primitive, s Scenario) []*Primitive {
	var out []*Primitive
	for _, p := range lib {
		if p.Supports(s) {
			out = append(out, p)
		}
	}
	return out
}
