package selector

import (
	"fmt"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/tensor"
)

// This file implements every comparison strategy of the paper's
// evaluation (§5.5): the per-family bars, the local-optimal canonical
// layout strategy, the vendor-library proxies, and the baseline — plus
// the no-edge-cost ablation that §5.8 uses to demonstrate why ignoring
// DT costs is wrong.

// nodeCost is a convenience wrapper.
func nodeCost(opts *Options, p *conv.Primitive, s conv.Scenario) float64 {
	return opts.Prof.Primitive(p, s, opts.Threads)
}

// cheapest returns the lowest-node-cost primitive among candidates
// supporting s, or nil.
func cheapest(opts *Options, candidates []*conv.Primitive, s conv.Scenario) *conv.Primitive {
	var best *conv.Primitive
	bestC := 0.0
	for _, p := range candidates {
		if !p.Supports(s) {
			continue
		}
		c := nodeCost(opts, p, s)
		if best == nil || c < bestC {
			best, bestC = p, c
		}
	}
	return best
}

func sum2dOf(lib []*conv.Primitive) (*conv.Primitive, error) {
	return conv.ByName(lib, "sum2d")
}

// Baseline instantiates every convolution with the single-threaded
// sum2d algorithm in the canonical layout — the common denominator all
// the paper's speedup bars are normalized to (§5.2).
func Baseline(net *dnn.Graph, opts Options) (*Plan, error) {
	opts.defaults()
	opts.Threads = 1 // the baseline is always single-threaded
	sum, err := sum2dOf(opts.Lib)
	if err != nil {
		return nil, err
	}
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		convChoices[id] = []*conv.Primitive{sum}
	}
	pr, err := build(net, &opts, convChoices, []tensor.Layout{tensor.CHW}, 1, 1)
	if err != nil {
		return nil, err
	}
	return pr.finish(net, &opts, "sum2d")
}

// FamilyBest implements the paper's per-family bars: for each layer
// pick the family's fastest variant *by node cost alone* if it beats
// sum2d, else keep sum2d (§5.5), then legalize — transform placement is
// still optimized, but primitive choice ignored DT costs, which is
// exactly what makes these bars suboptimal (§5.8).
func FamilyBest(net *dnn.Graph, family conv.Family, opts Options) (*Plan, error) {
	opts.defaults()
	sum, err := sum2dOf(opts.Lib)
	if err != nil {
		return nil, err
	}
	members := conv.ByFamily(opts.Lib, family)
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		pick := cheapest(&opts, members, s)
		// sum2d runs single-threaded whatever the mode; compare fairly.
		sumCost := opts.Prof.Primitive(sum, s, 1)
		if pick == nil || nodeCost(&opts, pick, s) >= sumCost {
			pick = sum
		}
		convChoices[id] = []*conv.Primitive{pick}
	}
	pr, err := build(net, &opts, convChoices, tensor.Layouts(), 1, 1)
	if err != nil {
		return nil, err
	}
	return pr.finish(net, &opts, family.String())
}

// LocalOptimal implements §2.2's canonical-layout strategy ("Local
// Optimal (CHW)" in the figures): force every tensor into one layout,
// then pick the fastest primitive operating entirely within it. With a
// fixed layout there are no DT costs and the problem stops being
// NP-hard (§6) — but the answer is worse.
func LocalOptimal(net *dnn.Graph, layout tensor.Layout, opts Options) (*Plan, error) {
	opts.defaults()
	var inLayout []*conv.Primitive
	for _, p := range opts.Lib {
		if p.In == layout && p.Out == layout {
			inLayout = append(inLayout, p)
		}
	}
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		pick := cheapest(&opts, inLayout, s)
		if pick == nil {
			return nil, fmt.Errorf("selector: no %s-only primitive supports layer %q", layout, net.Layers[id].Name)
		}
		convChoices[id] = []*conv.Primitive{pick}
	}
	pr, err := build(net, &opts, convChoices, []tensor.Layout{layout}, 1, 1)
	if err != nil {
		return nil, err
	}
	return pr.finish(net, &opts, "local-opt-"+layout.String())
}

// NoEdgeCost is the §5.8 ablation: select each layer's globally fastest
// primitive ignoring layout-conversion costs entirely, then pay for the
// legalizing transforms afterwards. The gap between this and Select is
// the value of modeling DT costs inside the optimization.
func NoEdgeCost(net *dnn.Graph, opts Options) (*Plan, error) {
	opts.defaults()
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		pick := cheapest(&opts, opts.Lib, s)
		if pick == nil {
			return nil, fmt.Errorf("selector: no primitive supports layer %q", net.Layers[id].Name)
		}
		convChoices[id] = []*conv.Primitive{pick}
	}
	pr, err := build(net, &opts, convChoices, tensor.Layouts(), 1, 1)
	if err != nil {
		return nil, err
	}
	return pr.finish(net, &opts, "no-edge-cost")
}

// vendor proxies ------------------------------------------------------

// CaffeProxy models BVLC Caffe: im2col + GEMM for every convolution,
// everything in the canonical CHW layout, plus framework dispatch
// overhead. (See DESIGN.md §3 for the substitution rationale.)
func CaffeProxy(net *dnn.Graph, opts Options) (*Plan, error) {
	opts.defaults()
	opts.Prof = vendorProfiler{inner: opts.Prof}
	restricted := filterNames(opts.Lib, "im2col-ab", "sum2d")
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		pick := cheapest(&opts, restricted, s)
		if pick == nil {
			return nil, fmt.Errorf("selector: caffe proxy cannot implement layer %q", net.Layers[id].Name)
		}
		convChoices[id] = []*conv.Primitive{pick}
	}
	pr, err := build(net, &opts, convChoices, []tensor.Layout{tensor.CHW}, caffeOverhead, 1)
	if err != nil {
		return nil, err
	}
	plan, err := pr.finish(net, &opts, "caffe")
	if err != nil {
		return nil, err
	}
	plan.scaleNodeCost(caffeOverhead)
	return plan, nil
}

// scaleNodeCost applies a vendor-proxy dispatch tax to the node side of
// the prediction, keeping the per-layer breakdown consistent with the
// scaled total.
func (p *Plan) scaleNodeCost(overhead float64) {
	p.NodeCost *= overhead
	for id := range p.LayerCost {
		p.LayerCost[id] *= overhead
	}
}

// caffeOverhead is the framework dispatch-and-copy tax of the proxy.
const caffeOverhead = 1.30

// mkldnnOverhead is small: MKL-DNN is a thin JIT library.
const mkldnnOverhead = 1.02

// armclOverhead models ARM Compute Library dispatch.
const armclOverhead = 1.12

// vendorMTTax models the multithreaded scaling deficit of the vendor
// libraries versus the paper's statically-composed primitives: the
// vendor runtimes insert an OpenMP barrier per primitive call and fork
// their thread teams repeatedly, costs the paper's measurements show
// growing with core count (§5.6: the PBQP advantage over MKL-DNN grows
// from "competitive" single-threaded to ~2× with four cores).
const vendorMTTax = 1.28

// vendorProfiler applies a vendor proxy's multithreaded tax on top of
// the machine model.
type vendorProfiler struct {
	inner cost.Profiler
}

func (v vendorProfiler) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	c := v.inner.Primitive(p, s, threads)
	if threads > 1 {
		c *= vendorMTTax
	}
	return c
}

func (v vendorProfiler) Transform(tr tensor.Transform, c, h, w int) float64 {
	return v.inner.Transform(tr, c, h, w)
}

// MKLDNNProxy models Intel MKL-DNN 0.10: a strong vendor library with
// JIT direct convolution on blocked layouts, blocked-GEMM im2col and 2D
// Winograd — but a fixed internal layout policy rather than global
// layout optimization, and no low-memory 1D Winograd. The proxy runs
// the same PBQP machinery over that restricted library, so it is a
// *generous* stand-in.
func MKLDNNProxy(net *dnn.Graph, opts Options) (*Plan, error) {
	opts.defaults()
	opts.Prof = vendorProfiler{inner: opts.Prof}
	restricted := filterPrefix(opts.Lib,
		"direct-chw8", "direct-chw4", "im2col-blk", "im2col-chw4", "wino2d-")
	// Drop the HWC winograd variants: the vendor library works in
	// blocked/canonical layouts only.
	var vendor []*conv.Primitive
	for _, p := range restricted {
		if p.In == tensor.HWC || p.Out == tensor.HWC {
			continue
		}
		vendor = append(vendor, p)
	}
	sum, err := sum2dOf(opts.Lib)
	if err != nil {
		return nil, err
	}
	vendor = append(vendor, sum)
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		var cands []*conv.Primitive
		for _, p := range vendor {
			if p.Supports(s) {
				cands = append(cands, p)
			}
		}
		convChoices[id] = cands
	}
	pr, err := build(net, &opts, convChoices, tensor.Layouts(), mkldnnOverhead, 1)
	if err != nil {
		return nil, err
	}
	plan, err := pr.finish(net, &opts, "mkldnn")
	if err != nil {
		return nil, err
	}
	plan.scaleNodeCost(mkldnnOverhead)
	return plan, nil
}

// ARMCLProxy models the ARM Compute Library bar of Figure 7: direct and
// im2col NEON kernels in the canonical layout.
func ARMCLProxy(net *dnn.Graph, opts Options) (*Plan, error) {
	opts.defaults()
	opts.Prof = vendorProfiler{inner: opts.Prof}
	restricted := filterNames(opts.Lib,
		"direct-mchw", "direct-strided", "direct-tiled-16", "im2col-ab", "im2col-blk", "sum2d")
	convChoices := map[int][]*conv.Primitive{}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		pick := cheapest(&opts, restricted, s)
		if pick == nil {
			return nil, fmt.Errorf("selector: armcl proxy cannot implement layer %q", net.Layers[id].Name)
		}
		convChoices[id] = []*conv.Primitive{pick}
	}
	pr, err := build(net, &opts, convChoices, []tensor.Layout{tensor.CHW}, armclOverhead, 1)
	if err != nil {
		return nil, err
	}
	plan, err := pr.finish(net, &opts, "armcl")
	if err != nil {
		return nil, err
	}
	plan.scaleNodeCost(armclOverhead)
	return plan, nil
}

func filterNames(lib []*conv.Primitive, names ...string) []*conv.Primitive {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	var out []*conv.Primitive
	for _, p := range lib {
		if set[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

func filterPrefix(lib []*conv.Primitive, prefixes ...string) []*conv.Primitive {
	var out []*conv.Primitive
	for _, p := range lib {
		for _, pre := range prefixes {
			if len(p.Name) >= len(pre) && p.Name[:len(pre)] == pre {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
