// Deploy-style workflow: the paper's §4 deployment story. Layerwise
// profiling runs once per hardware platform per DNN model; the
// resulting cost table is tiny compared to the weights, so it ships
// with the trained model, and the PBQP solve happens at deployment time
// from the table alone — no primitive ever executes during
// optimization.
//
// Here we (1) profile a network with the wall-clock Measure profiler
// (playing the role of on-device profiling), (2) serialize the cost
// table to JSON, (3) load it back and re-solve from the table, and
// (4) check the table-driven plan matches the live-profiled plan.
//
//	go run ./examples/deploy
package main

import (
	"bytes"
	"fmt"
	"log"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/selector"
)

func main() {
	log.SetFlags(0)

	b, x := dnn.NewBuilder("deploy-net", 8, 24, 24)
	x = b.Conv(x, "c1", 16, 3, 1, 1)
	x = b.ReLU(x, "r1")
	x = b.Conv(x, "c2", 16, 5, 1, 2)
	x = b.MaxPool(x, "p1", 2, 2, 0)
	x = b.Conv(x, "c3", 24, 3, 1, 1)
	x = b.Softmax(x, "sm")
	net := b.Graph()

	// 1. On-device profiling (best-of-3 wall clock of the real Go
	// primitives on this host).
	prof := cost.NewMeasure(3)
	lib := conv.Library()
	table := cost.BuildTable(net, lib, prof, "this-host", 1)

	// 2. Ship it: serialize.
	var wire bytes.Buffer
	if err := table.Save(&wire); err != nil {
		log.Fatal(err)
	}
	weights := int64(0)
	for _, id := range net.ConvLayers() {
		weights += net.Layers[id].Conv.KernelBytes()
	}
	fmt.Printf("cost table: %d entries, %d bytes on the wire (model weights: %d bytes)\n",
		table.NumEntries(), wire.Len(), weights)

	// 3. At the deployment site: load and solve from the table alone.
	loaded, err := cost.LoadTable(&wire)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := selector.Select(net, selector.Options{Prof: loaded, Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntable-driven selection (measured on this host):\n")
	for _, id := range net.ConvLayers() {
		p := plan.Primitives[id]
		fmt.Printf("  %-4s %-26s %s→%s\n", net.Layers[id].Name, p.Name, p.In, p.Out)
	}
	fmt.Printf("predicted: %.3f ms, optimal=%v\n", plan.TotalCost()*1e3, plan.Optimal)

	// 4. Sanity: the table reproduces the live profiler's decisions.
	live, err := selector.Select(net, selector.Options{Prof: table, Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	if live.TotalCost() != plan.TotalCost() {
		log.Fatalf("table-driven plan (%g) diverged from live plan (%g)",
			plan.TotalCost(), live.TotalCost())
	}
	fmt.Println("table-driven plan matches the live-profiled plan — ok")
}
