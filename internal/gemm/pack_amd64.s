//go:build amd64 && !purego

#include "textflag.h"

// func packedRowFMA(ai *float32, kc int, bp, ci *float32, cols, ldb, epi int, r, bias *float32)
//
// The AVX2/FMA microkernel of the packed GEMM family: one C row
// updated against the resident KC×NC packed-B panel, NR = 16 output
// columns per pass held in two YMM accumulator rows. The k loop is
// unrolled by four into four *independent* accumulator pairs —
// lane u sums the p ≡ u (mod 4) panel rows — giving eight FMA
// dependency chains, enough to cover FMA latency; the ragged k tail
// (kc mod 4) streams into lane 0. After the k loop the lanes are
// combined as (q0+q1) + (q2+q3), the existing C tile is added
// (callers pre-zero C for the overwrite entries, exactly like the
// pure-Go path), the fused epilogue is applied while the tile is still
// register-resident, and the tile is stored — C is touched exactly
// once per (row, KC block, 16-column tile).
//
// Epilogue codes match the Go Epilogue constants: 0 none, 1 ReLU,
// 2 bias, 3 add, 4 add+relu. ReLU is VMAXPS with zero in the *first*
// source so NaN lanes keep their NaN (Intel max returns the second
// source on NaN) and -0 survives — bitwise what the Go post-pass
// `if v < 0 { v = 0 }` computes.
//
// Register plan:
//   SI  a cursor            CX  k countdown        BX  panel row cursor
//   R12 panel tile base     DI  C cursor           R8/R9 residual/bias cursors
//   R10 remaining 16-col tiles   R11 panel row stride (bytes)   R13 2·stride
//   Y0..Y7 accumulator lanes     Y8..Y11 A broadcasts           Y12 zero (ReLU)
TEXT ·packedRowFMA(SB), NOSPLIT, $0-72
	MOVQ cols+32(FP), R10
	SHRQ $4, R10         // number of 16-column tiles
	JZ   done
	MOVQ bp+16(FP), R12
	MOVQ ci+24(FP), DI
	MOVQ r+56(FP), R8
	MOVQ bias+64(FP), R9
	MOVQ ldb+40(FP), R11
	SHLQ $2, R11             // panel row stride in bytes
	LEAQ (R11)(R11*1), R13   // two panel rows

tile:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ ai+0(FP), SI
	MOVQ kc+8(FP), CX
	MOVQ R12, BX

k4:
	CMPQ CX, $4
	JLT  ktail
	VBROADCASTSS (SI), Y8
	VFMADD231PS (BX), Y8, Y0
	VFMADD231PS 32(BX), Y8, Y1
	VBROADCASTSS 4(SI), Y9
	VFMADD231PS (BX)(R11*1), Y9, Y2
	VFMADD231PS 32(BX)(R11*1), Y9, Y3
	ADDQ R13, BX
	VBROADCASTSS 8(SI), Y10
	VFMADD231PS (BX), Y10, Y4
	VFMADD231PS 32(BX), Y10, Y5
	VBROADCASTSS 12(SI), Y11
	VFMADD231PS (BX)(R11*1), Y11, Y6
	VFMADD231PS 32(BX)(R11*1), Y11, Y7
	ADDQ R13, BX
	ADDQ $16, SI
	SUBQ $4, CX
	JMP  k4

ktail:
	TESTQ CX, CX
	JZ    reduce

ktail1:
	VBROADCASTSS (SI), Y8
	VFMADD231PS (BX), Y8, Y0
	VFMADD231PS 32(BX), Y8, Y1
	ADDQ $4, SI
	ADDQ R11, BX
	DECQ CX
	JNZ  ktail1

reduce:
	VADDPS Y2, Y0, Y0    // q0 + q1
	VADDPS Y3, Y1, Y1
	VADDPS Y6, Y4, Y4    // q2 + q3
	VADDPS Y7, Y5, Y5
	VADDPS Y4, Y0, Y0    // (q0+q1) + (q2+q3)
	VADDPS Y5, Y1, Y1
	VADDPS (DI), Y0, Y0  // + existing C
	VADDPS 32(DI), Y1, Y1

	MOVQ  epi+48(FP), AX
	TESTQ AX, AX
	JEQ   store
	CMPQ  AX, $1         // EpiReLU
	JEQ   relu
	CMPQ  AX, $2         // EpiBias
	JEQ   biasadd
	VADDPS (R8), Y0, Y0  // EpiAdd / EpiAddReLU: + residual
	VADDPS 32(R8), Y1, Y1
	CMPQ  AX, $3         // EpiAdd stores as-is; AddReLU clamps
	JEQ   store

relu:
	VXORPS Y12, Y12, Y12
	VMAXPS Y0, Y12, Y0   // second source carries the value: NaN and -0 survive
	VMAXPS Y1, Y12, Y1
	JMP    store

biasadd:
	VADDPS (R9), Y0, Y0
	VADDPS 32(R9), Y1, Y1

store:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ $64, DI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R12
	DECQ R10
	JNZ  tile

done:
	VZEROUPPER
	RET
