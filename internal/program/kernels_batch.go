package program

// Batched layer operators: the minibatch counterparts of the *Into
// kernels in kernels.go, operating on whole N-image batches. Because a
// batch is N contiguous per-image slabs, the elementwise operators
// (relu, copy, add) process the entire batch slab in one pass, and the
// structured operators (pool, lrn, softmax, fc, concat) stride image
// by image over slab views — optionally splitting images across a
// thread budget, which is how a batched instruction running alone on
// the engine's scheduler soaks up the whole worker pool.
//
// The in-place contract matches kernels.go: ReLUBatchInto,
// CopyBatchInto, AddBatchInto and SoftmaxBatchInto tolerate dst
// sharing storage with their (first) input; the rest must not run in
// place.

import (
	"fmt"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// parallelImages runs fn(i) for each image i in [0, n) across at most
// `threads` goroutines — the library's shared fork-join helper.
func parallelImages(threads, n int, fn func(i int)) {
	conv.ParallelFor(threads, n, fn)
}

// ReLUBatchInto clamps negatives across the whole batch slab: one pass
// over N×Stride contiguous elements.
func ReLUBatchInto(dst, in *tensor.Batch, threads int) {
	if threads <= 1 {
		for i, v := range in.Data {
			if v < 0 {
				dst.Data[i] = 0
			} else {
				dst.Data[i] = v
			}
		}
		return
	}
	parallelImages(threads, in.N, func(i int) {
		ReLUInto(dst.Image(i), in.Image(i))
	})
}

// CopyBatchInto copies the whole batch slab (dropout identity).
func CopyBatchInto(dst, in *tensor.Batch) {
	copy(dst.Data, in.Data)
}

// AddBatchInto sums the input batches elementwise. When every input
// shares dst's layout the physical slabs correspond across the whole
// batch and the sum runs over N×Stride contiguous memory; dst may
// alias ins[0] but no other input.
func AddBatchInto(dst *tensor.Batch, ins []*tensor.Batch, threads int) {
	same := true
	for _, b := range ins {
		if b.Layout != dst.Layout {
			same = false
			break
		}
	}
	if same && threads <= 1 {
		copy(dst.Data, ins[0].Data)
		for _, b := range ins[1:] {
			for i, v := range b.Data {
				dst.Data[i] += v
			}
		}
		return
	}
	parallelImages(threads, dst.N, func(i int) {
		imgs := make([]*tensor.Tensor, len(ins))
		for k, b := range ins {
			imgs[k] = b.Image(i)
		}
		AddInto(dst.Image(i), imgs)
	})
}

// PoolBatchInto pools every image with the layer's geometry.
func PoolBatchInto(dst, in *tensor.Batch, l *dnn.Layer, isMax bool, threads int) {
	parallelImages(threads, in.N, func(i int) {
		PoolInto(dst.Image(i), in.Image(i), l, isMax)
	})
}

// LRNBatchInto normalizes every image across channels.
func LRNBatchInto(dst, in *tensor.Batch, threads int) {
	parallelImages(threads, in.N, func(i int) {
		LRNInto(dst.Image(i), in.Image(i))
	})
}

// SoftmaxBatchInto normalizes every image.
func SoftmaxBatchInto(dst, in *tensor.Batch, threads int) {
	parallelImages(threads, in.N, func(i int) {
		SoftmaxInto(dst.Image(i), in.Image(i))
	})
}

// FCBatchInto applies the dense layer to the whole batch. In CHW the
// logical flatten order equals storage order, so the input batch slab
// is already the N×(C·H·W) activation matrix and the layer is one
// GEMM against the transposed weight matrix — mat's outN×inN row-major
// layout is exactly the Bᵀ panel TransB wants, and TransB accumulates
// over the feature axis in the same order as FCInto, so the batched
// result is bitwise identical to the per-image path. Other layouts
// fall back to per-image FCInto (which packs the flatten order).
func FCBatchInto(dst, in *tensor.Batch, mat []float32, outN, threads int) {
	// dst.Stride == outN excludes blocked destination layouts, whose
	// padded slabs would misalign the GEMM's output rows.
	if in.Layout == tensor.CHW && dst.Stride == outN {
		inN := in.C * in.H * in.W
		if threads > 1 && in.N > 1 {
			parallelImages(threads, in.N, func(i int) {
				gemm.TransB(1, outN, inN, in.Slab(i), mat, dst.Slab(i))
			})
			return
		}
		gemm.TransB(in.N, outN, inN, in.Data[:in.N*inN], mat, dst.Data[:in.N*outN])
		return
	}
	parallelImages(threads, in.N, func(i int) {
		FCInto(dst.Image(i), in.Image(i), mat, outN)
	})
}

// FCBatchEpiInto is FCBatchInto with a fused elementwise epilogue
// (EpiReLU only — the fully connected layer has no residual form in
// the graph). The fast path rides the epilogue on TransBEpi's output
// write; the per-image fallback applies it as a post-pass, which is
// bitwise identical because ReLU is elementwise over fully written
// slabs (blocked-layout padding stays zero under ReLU).
func FCBatchEpiInto(dst, in *tensor.Batch, mat []float32, outN, threads int, epi gemm.Epilogue) {
	switch epi {
	case gemm.EpiNone:
		FCBatchInto(dst, in, mat, outN, threads)
		return
	case gemm.EpiReLU:
	default:
		panic(fmt.Sprintf("program: fc epilogue %s unsupported", epi))
	}
	if in.Layout == tensor.CHW && dst.Stride == outN {
		inN := in.C * in.H * in.W
		if threads > 1 && in.N > 1 {
			parallelImages(threads, in.N, func(i int) {
				gemm.TransBEpi(1, outN, inN, in.Slab(i), mat, dst.Slab(i), epi, nil, nil)
			})
			return
		}
		gemm.TransBEpi(in.N, outN, inN, in.Data[:in.N*inN], mat, dst.Data[:in.N*outN], epi, nil, nil)
		return
	}
	parallelImages(threads, in.N, func(i int) {
		FCInto(dst.Image(i), in.Image(i), mat, outN)
		slab := dst.Slab(i)
		gemm.ApplyEpi(epi, 1, len(slab), slab, nil, nil)
	})
}

// ConcatBatchInto concatenates the input batches along channels, image
// by image.
func ConcatBatchInto(dst *tensor.Batch, ins []*tensor.Batch, threads int) {
	parallelImages(threads, dst.N, func(i int) {
		imgs := make([]*tensor.Tensor, len(ins))
		for k, b := range ins {
			imgs[k] = b.Image(i)
		}
		ConcatInto(dst.Image(i), imgs)
	})
}

// InputBatchInto copies (and, where layouts differ, converts) the
// caller's per-image input tensors into the engine-owned batch — the
// batched input instruction's copy-on-identity.
func InputBatchInto(dst *tensor.Batch, inputs []*tensor.Tensor, threads int) {
	parallelImages(threads, dst.N, func(i int) {
		tensor.ConvertInto(dst.Image(i), inputs[i])
	})
}

// ConvertBatchInto converts every image of src into dst (the fused
// legalization chain of a batched convert instruction). Identical
// layouts collapse to one whole-slab copy.
func ConvertBatchInto(dst, src *tensor.Batch, threads int) {
	if dst.N != src.N || dst.C != src.C || dst.H != src.H || dst.W != src.W {
		panic(fmt.Sprintf("program: batch shape mismatch %s vs %s", dst, src))
	}
	if dst.Layout == src.Layout {
		copy(dst.Data, src.Data)
		return
	}
	parallelImages(threads, src.N, func(i int) {
		tensor.ConvertInto(dst.Image(i), src.Image(i))
	})
}
