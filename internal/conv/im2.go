package conv

import (
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// The im2 family (paper §4): restructure the input image into a Toeplitz
// matrix (im2col: patches as columns; im2row: patches as rows) and
// perform the whole convolution as one GEMM call. Fast and
// stride-capable, but the patch matrix is K² times the input — the
// family's "large image" weakness in Table 1.

// im2colPatches builds the (C·K²)×(Ho·Wo) patch matrix from CHW input.
func im2colPatches(in *tensor.Tensor, s Scenario) []float32 {
	cols := s.OutH() * s.OutW()
	p := make([]float32, s.C*s.K*s.K*cols)
	im2colPatchesIntoCols(p, cols, 0, in, s)
	return p
}

// im2colPatchesIntoCols writes one image's patch columns into the
// column block starting at colOff of a (C·K²)×totalCols matrix. The
// zero-filled destination is assumed (the builder only writes in-range
// taps); batched im2col lays images side by side as column blocks.
// Source and destination rows are taken as x[off:][:w] views so the
// inner tap loop indexes two slices whose lengths the range guard
// already bounds, and carries no bounds checks.
//
//dnn:hotpath
func im2colPatchesIntoCols(p []float32, totalCols, colOff int, in *tensor.Tensor, s Scenario) {
	oh, ow := s.OutH(), s.OutW()
	sW, stride, pad := s.W, s.Stride, s.Pad
	data := in.Data
	for c := 0; c < s.C; c++ {
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				r := (c*s.K+kh)*s.K + kw
				dst := p[r*totalCols+colOff:][:oh*ow]
				for y := 0; y < oh; y++ {
					ih := y*stride - pad + kh
					if ih < 0 || ih >= s.H {
						continue // whole row out of range: stays zero
					}
					drow := dst[y*ow:][:ow]
					srcRow := data[(c*s.H+ih)*sW:][:sW]
					for x := range drow {
						iw := x*stride - pad + kw
						if iw >= 0 && iw < sW {
							drow[x] = srcRow[iw]
						}
					}
				}
			}
		}
	}
}

// im2rowPatches builds the (Ho·Wo)×(C·K²) patch matrix from HWC input,
// with the channel dimension innermost to match the layout.
func im2rowPatches(in *tensor.Tensor, s Scenario) []float32 {
	p := make([]float32, s.OutH()*s.OutW()*s.K*s.K*s.C)
	im2rowPatchesInto(p, in, s)
	return p
}

// im2rowPatchesInto writes the (Ho·Wo)×(C·K²) patch matrix into p,
// which must be zero-filled and exactly sized. Batched im2row stacks
// one image's row block after another in a tall patch matrix. Each
// in-range tap is one channel-vector copy from a hoisted source row
// view; the out-of-range branch hoists past whole kernel rows at once.
//
//dnn:hotpath
func im2rowPatchesInto(p []float32, in *tensor.Tensor, s Scenario) {
	oh, ow := s.OutH(), s.OutW()
	cC := s.C
	cols := s.K * s.K * cC
	data := in.Data
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			dst := p[(y*ow+x)*cols:][:cols]
			i := 0
			for kh := 0; kh < s.K; kh++ {
				ih := y*s.Stride - s.Pad + kh
				if ih < 0 || ih >= s.H {
					i += s.K * cC // whole kernel row out of range: stays zero
					continue
				}
				srcRow := data[ih*s.W*cC:][:s.W*cC]
				for kw := 0; kw < s.K; kw++ {
					iw := x*s.Stride - s.Pad + kw
					if iw >= 0 && iw < s.W {
						copy(dst[i:i+cC], srcRow[iw*cC:][:cC])
					}
					i += cC
				}
			}
		}
	}
}

// kernelMatrixMCK reshapes the kernel to M×(C·K²) rows (matches im2col
// patch rows).
func kernelMatrixMCK(k *Kernel) []float32 { return k.Data } // MCKK is already M×(C·K²) row-major

// kernelMatrixKKC builds the (K·K·C)×M matrix whose row order matches
// im2row patch columns (kh, kw, c) with output channels across.
func kernelMatrixKKC(k *Kernel) []float32 {
	rows := k.K * k.K * k.C
	out := make([]float32, rows*k.M)
	for m := 0; m < k.M; m++ {
		for c := 0; c < k.C; c++ {
			for kh := 0; kh < k.K; kh++ {
				for kw := 0; kw < k.K; kw++ {
					r := (kh*k.K+kw)*k.C + c
					out[r*k.M+m] = k.At(m, c, kh, kw)
				}
			}
		}
	}
	return out
}

type gemmKind uint8

const (
	gemmIKJ gemmKind = iota
	gemmBlocked
	gemmTransB
	gemmNaive
	gemmPacked
)

// im2col returns an im2col primitive Run using the requested GEMM
// kernel. Output is CHW (M×Ho·Wo result rows are output maps).
func im2col(kind gemmKind) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, tensor.CHW, "im2col")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		patches := im2colPatches(in, s)
		out := tensor.New(tensor.CHW, s.M, oh, ow)
		m, n, kk := s.M, oh*ow, s.C*s.K*s.K
		a := kernelMatrixMCK(k)
		switch kind {
		case gemmNaive:
			gemm.Naive(m, n, kk, a, patches, out.Data)
		case gemmBlocked:
			gemm.Blocked(m, n, kk, 0, a, patches, out.Data)
		case gemmTransB:
			// Patches transposed: build n×kk panel and use the BT kernel.
			pt := transposeMat(kk, n, patches)
			gemm.TransB(m, n, kk, a, pt, out.Data)
		case gemmPacked:
			// Columns (Ho·Wo) are the long axis of the per-image im2col
			// GEMM, so the threaded split rides the packed column stripes.
			if threads > 1 {
				gemm.ParallelCols(threads, m, n, kk, a, patches, out.Data)
			} else {
				gemm.Packed(m, n, kk, a, patches, out.Data)
			}
		default:
			if threads > 1 {
				gemm.Parallel(threads, m, n, kk, a, patches, out.Data)
			} else {
				gemm.IKJ(m, n, kk, a, patches, out.Data)
			}
		}
		return out
	}
}

// im2row returns an im2row primitive Run: patches×kernelᵀ, producing HWC
// output directly (the paper's Figure 4 first-layer choice).
func im2row(kind gemmKind) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, tensor.HWC, "im2row")
		checkScenario(in, k, s)
		oh, ow := s.OutH(), s.OutW()
		patches := im2rowPatches(in, s)
		out := tensor.New(tensor.HWC, s.M, oh, ow)
		m, n, kk := oh*ow, s.M, s.K*s.K*s.C
		b := kernelMatrixKKC(k)
		switch kind {
		case gemmNaive:
			gemm.Naive(m, n, kk, patches, b, out.Data)
		case gemmBlocked:
			gemm.Blocked(m, n, kk, 0, patches, b, out.Data)
		case gemmTransB:
			bt := transposeMat(kk, n, b)
			gemm.TransB(m, n, kk, patches, bt, out.Data)
		case gemmPacked:
			// The patch-row axis is the long one here and n = M is narrow,
			// so one packed call keeps the whole B panel resident; the
			// batched entry (im2rowBatch) does the row splitting.
			gemm.Packed(m, n, kk, patches, b, out.Data)
		default:
			if threads > 1 {
				gemm.Parallel(threads, m, n, kk, patches, b, out.Data)
			} else {
				gemm.IKJ(m, n, kk, patches, b, out.Data)
			}
		}
		return out
	}
}

// im2colHWCOut is im2col with a fused transposing writeback producing
// HWC output from the CHW-natural GEMM result.
func im2colHWCOut(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW, "im2col-hwcout")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	patches := im2colPatches(in, s)
	m, n, kk := s.M, oh*ow, s.C*s.K*s.K
	flat := make([]float32, m*n)
	if threads > 1 {
		gemm.Parallel(threads, m, n, kk, kernelMatrixMCK(k), patches, flat)
	} else {
		gemm.IKJ(m, n, kk, kernelMatrixMCK(k), patches, flat)
	}
	out := tensor.New(tensor.HWC, s.M, oh, ow)
	for mm := 0; mm < m; mm++ {
		for p := 0; p < n; p++ {
			out.Data[p*s.M+mm] = flat[mm*n+p]
		}
	}
	return out
}

// im2colBlockedIn consumes CHW4 input (unpacking blocks while building
// patches) and emits CHW4 output — the vendor-layout im2 variant.
func im2colBlockedIn(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.CHW4, "im2col-chw4")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	cols := oh * ow
	rows := s.C * s.K * s.K
	patches := make([]float32, rows*cols)
	for c := 0; c < s.C; c++ {
		for kh := 0; kh < s.K; kh++ {
			for kw := 0; kw < s.K; kw++ {
				r := (c*s.K+kh)*s.K + kw
				dst := patches[r*cols : r*cols+cols]
				i := 0
				for y := 0; y < oh; y++ {
					ih := y*s.Stride - s.Pad + kh
					for x := 0; x < ow; x++ {
						iw := x*s.Stride - s.Pad + kw
						if ih >= 0 && ih < s.H && iw >= 0 && iw < s.W {
							dst[i] = in.At(c, ih, iw)
						}
						i++
					}
				}
			}
		}
	}
	m, n, kk := s.M, cols, rows
	flat := make([]float32, m*n)
	if threads > 1 {
		gemm.Parallel(threads, m, n, kk, kernelMatrixMCK(k), patches, flat)
	} else {
		gemm.Blocked(m, n, kk, 0, kernelMatrixMCK(k), patches, flat)
	}
	out := tensor.New(tensor.CHW4, s.M, oh, ow)
	for mm := 0; mm < m; mm++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				out.Set(mm, y, x, flat[(mm*oh+y)*ow+x])
			}
		}
	}
	return out
}

// im2rowCHWOut is im2row with a transposing writeback producing CHW
// output from the HWC-natural GEMM result.
func im2rowCHWOut(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
	checkLayout(in, tensor.HWC, "im2row-chwout")
	checkScenario(in, k, s)
	oh, ow := s.OutH(), s.OutW()
	patches := im2rowPatches(in, s)
	m, n, kk := oh*ow, s.M, s.K*s.K*s.C
	flat := make([]float32, m*n)
	if threads > 1 {
		gemm.Parallel(threads, m, n, kk, patches, kernelMatrixKKC(k), flat)
	} else {
		gemm.IKJ(m, n, kk, patches, kernelMatrixKKC(k), flat)
	}
	out := tensor.New(tensor.CHW, s.M, oh, ow)
	for p := 0; p < m; p++ {
		for mm := 0; mm < n; mm++ {
			out.Data[mm*m+p] = flat[p*n+mm]
		}
	}
	return out
}

func transposeMat(rows, cols int, a []float32) []float32 {
	t := make([]float32, len(a))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			t[j*rows+i] = a[i*cols+j]
		}
	}
	return t
}

// im2Workspace models the Toeplitz matrix footprint.
func im2Workspace(s Scenario) int64 {
	return int64(s.C) * int64(s.K) * int64(s.K) * int64(s.OutH()) * int64(s.OutW()) * 4
}

// im2Primitives assembles the im2 family entries. Names follow the
// paper's Figure 4 labels: "A B I K" multiplies kernel panel A by patch
// panel B; the "BT" variants hand the second panel to GEMM transposed.
func im2Primitives() []*Primitive {
	ws := im2Workspace
	im2colP := func(kind gemmKind, p *Primitive) *Primitive {
		p.Run = im2col(kind)
		p.RunBatch = im2colBatch(kind)
		p.RunBatchFused = im2colBatchFused(kind)
		return p
	}
	im2rowP := func(kind gemmKind, p *Primitive) *Primitive {
		p.Run = im2row(kind)
		p.RunBatch = im2rowBatch(kind)
		p.RunBatchFused = im2rowBatchFused(kind)
		return p
	}
	return []*Primitive{
		im2colP(gemmIKJ, &Primitive{Name: "im2col-ab", Family: FamilyIm2, In: tensor.CHW, Out: tensor.CHW, VF: 4, Strided: true, Workspace: ws}),
		im2colP(gemmTransB, &Primitive{Name: "im2col-abt", Family: FamilyIm2, In: tensor.CHW, Out: tensor.CHW, VF: 4, Strided: true, Workspace: ws}),
		im2colP(gemmBlocked, &Primitive{Name: "im2col-blk", Family: FamilyIm2, In: tensor.CHW, Out: tensor.CHW, VF: 8, Strided: true, Workspace: ws}),
		im2colP(gemmPacked, &Primitive{Name: "im2col-pack", Family: FamilyIm2, In: tensor.CHW, Out: tensor.CHW, VF: 8, Strided: true, Workspace: ws}),
		im2colP(gemmNaive, &Primitive{Name: "im2col-naive", Family: FamilyIm2, In: tensor.CHW, Out: tensor.CHW, VF: 1, Strided: true, Workspace: ws}),
		im2rowP(gemmIKJ, &Primitive{Name: "im2row-ab", Family: FamilyIm2, In: tensor.HWC, Out: tensor.HWC, VF: 4, Strided: true, Workspace: ws}),
		im2rowP(gemmTransB, &Primitive{Name: "im2row-abt", Family: FamilyIm2, In: tensor.HWC, Out: tensor.HWC, VF: 4, Strided: true, Workspace: ws}),
		im2rowP(gemmBlocked, &Primitive{Name: "im2row-blk", Family: FamilyIm2, In: tensor.HWC, Out: tensor.HWC, VF: 8, Strided: true, Workspace: ws}),
		im2rowP(gemmPacked, &Primitive{Name: "im2row-pack", Family: FamilyIm2, In: tensor.HWC, Out: tensor.HWC, VF: 8, Strided: true, Workspace: ws}),
		im2rowP(gemmNaive, &Primitive{Name: "im2row-naive", Family: FamilyIm2, In: tensor.HWC, Out: tensor.HWC, VF: 1, Strided: true, Workspace: ws}),
		{Name: "im2col-hwcout", Family: FamilyIm2, In: tensor.CHW, Out: tensor.HWC, VF: 4, Strided: true, Workspace: ws, Run: im2colHWCOut},
		{Name: "im2row-chwout", Family: FamilyIm2, In: tensor.HWC, Out: tensor.CHW, VF: 4, Strided: true, Workspace: ws, Run: im2rowCHWOut},
		{Name: "im2col-chw4", Family: FamilyIm2, In: tensor.CHW4, Out: tensor.CHW4, VF: 4, Strided: true, MinC: 4, Workspace: ws, Run: im2colBlockedIn},
	}
}
