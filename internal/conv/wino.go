package conv

import (
	"fmt"

	"pbqpdnn/internal/tensor"
	"pbqpdnn/internal/winograd"
)

// The Winograd family (paper §4): fast convolution with a theoretically
// minimal multiplication count, for K=3 and K=5. Two shapes are
// provided, matching the paper's Figure 4 selections:
//
//   - 2D tiled F(m×m, r×r): fewest operations but a large transformed-
//     input workspace — fast on big-cache CPUs (the Intel selections);
//   - 1D row-wise F(m, r): 2D convolution as a sum of 1D Winograd
//     convolutions — more arithmetic but far less memory, which is why
//     the optimizer picks it on the small-cache ARM core.
//
// VF variants block the channel accumulation by 4 or 8 lanes, the scalar
// analogue of the paper's NEON/AVX2 vector-factor variants.

// gatherTile2D collects a t×t input tile (with zero padding) starting at
// output tile origin (y0,x0) from a CHW or HWC tensor.
func gatherTile2D(in *tensor.Tensor, c, y0, x0, t, pad int, dst []float64) {
	for i := 0; i < t; i++ {
		ih := y0 + i - pad
		for j := 0; j < t; j++ {
			iw := x0 + j - pad
			if ih < 0 || ih >= in.H || iw < 0 || iw >= in.W {
				dst[i*t+j] = 0
			} else {
				dst[i*t+j] = float64(in.At(c, ih, iw))
			}
		}
	}
}

// winoAccumRow accumulates the elementwise product of urow and vrow
// into acc: acc[i] += urow[i]·vrow[i]. Both operand rows are re-sliced
// to acc's length so all three indexes share one SSA length value and
// the loop carries no bounds checks. This is the Winograd pointwise
// stage — the family's only O(C·M·tiles) inner loop.
//
//dnn:hotpath
func winoAccumRow(acc, urow, vrow []float64) {
	urow = urow[:len(acc)]
	vrow = vrow[:len(acc)]
	for i, uv := range urow {
		acc[i] += uv * vrow[i]
	}
}

// wino2D returns a 2D tiled Winograd Run for F(m×m, r×r) with channel
// accumulation blocked by vf. layout selects the activation layout.
func wino2D(m, r, vf int, layout tensor.Layout) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	plan := winograd.NewPlan(m, r)
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, layout, "wino2d")
		checkScenario(in, k, s)
		if s.Stride != 1 || s.K != r {
			panic(fmt.Sprintf("wino2d F(%d,%d): unsupported scenario %s", m, r, s))
		}
		oh, ow := s.OutH(), s.OutW()
		t := plan.T
		tt := t * t
		// Kernel transform: U[mm][c] is a t×t tile in Winograd domain.
		u := make([][]float64, s.M*s.C)
		for mm := 0; mm < s.M; mm++ {
			for c := 0; c < s.C; c++ {
				g := make([]float32, r*r)
				for kh := 0; kh < r; kh++ {
					for kw := 0; kw < r; kw++ {
						g[kh*r+kw] = k.At(mm, c, kh, kw)
					}
				}
				u[mm*s.C+c] = plan.KernelTransform2D(g)
			}
		}
		out := tensor.New(layout, s.M, oh, ow)
		tilesY := (oh + m - 1) / m
		tilesX := (ow + m - 1) / m
		parallelFor(threads, tilesY, func(ty int) {
			d := make([]float64, tt)
			v := make([]float64, s.C*tt) // transformed input tiles, all channels
			sum := make([]float64, tt)
			laneAcc := make([][]float64, vf)
			for l := range laneAcc {
				laneAcc[l] = make([]float64, tt)
			}
			tailAcc := make([]float64, tt)
			for tx := 0; tx < tilesX; tx++ {
				y0, x0 := ty*m, tx*m
				for c := 0; c < s.C; c++ {
					gatherTile2D(in, c, y0, x0, t, s.Pad, d)
					copy(v[c*tt:(c+1)*tt], plan.InputTransform2D(d))
				}
				for mm := 0; mm < s.M; mm++ {
					// Channel accumulation blocked by vf lanes: each lane
					// keeps its own running row, tail channels theirs, and
					// the rows combine tail-first then lanes in order — the
					// same per-element addition sequence as an interleaved
					// scalar loop, so results are bitwise identical.
					for l := range laneAcc {
						clear(laneAcc[l])
					}
					clear(tailAcc)
					c := 0
					for ; c+vf <= s.C; c += vf {
						for l := 0; l < vf; l++ {
							winoAccumRow(laneAcc[l], u[mm*s.C+c+l], v[(c+l)*tt:][:tt])
						}
					}
					for ; c < s.C; c++ {
						winoAccumRow(tailAcc, u[mm*s.C+c], v[c*tt:][:tt])
					}
					for i := range sum {
						tail := tailAcc[i]
						for _, lrow := range laneAcc {
							tail += lrow[i]
						}
						sum[i] = tail
					}
					y := plan.OutputTransform2D(sum)
					for i := 0; i < m && y0+i < oh; i++ {
						for j := 0; j < m && x0+j < ow; j++ {
							out.Set(mm, y0+i, x0+j, float32(y[i*m+j]))
						}
					}
				}
			}
		})
		return out
	}
}

// wino1D returns a row-wise 1D Winograd Run for F(m, r): 2D convolution
// as the sum over kernel rows of 1D convolutions, with channel and
// kernel-row accumulation done in the Winograd domain per row tile.
func wino1D(m, r, vf int, layout tensor.Layout) func(*tensor.Tensor, *Kernel, Scenario, int) *tensor.Tensor {
	plan := winograd.NewPlan(m, r)
	return func(in *tensor.Tensor, k *Kernel, s Scenario, threads int) *tensor.Tensor {
		checkLayout(in, layout, "wino1d")
		checkScenario(in, k, s)
		if s.Stride != 1 || s.K != r {
			panic(fmt.Sprintf("wino1d F(%d,%d): unsupported scenario %s", m, r, s))
		}
		oh, ow := s.OutH(), s.OutW()
		t := plan.T
		// Transform every kernel row: u[(mm,c,kh)] has length t.
		u := make([][]float64, s.M*s.C*r)
		for mm := 0; mm < s.M; mm++ {
			for c := 0; c < s.C; c++ {
				for kh := 0; kh < r; kh++ {
					row := make([]float32, r)
					for kw := 0; kw < r; kw++ {
						row[kw] = k.At(mm, c, kh, kw)
					}
					u[(mm*s.C+c)*r+kh] = plan.KernelTransform1D(row)
				}
			}
		}
		out := tensor.New(layout, s.M, oh, ow)
		tilesX := (ow + m - 1) / m
		parallelFor(threads, oh, func(y int) {
			d := make([]float64, t)
			sum := make([]float64, t)
			laneAcc := make([][]float64, vf)
			for l := range laneAcc {
				laneAcc[l] = make([]float64, t)
			}
			tailAcc := make([]float64, t)
			// Transformed input row-tiles for (c,kh) pairs of this output
			// row: v[c*r+kh] — each input row is shared by all kernel rows
			// that reference it, but per output row we just transform the
			// r contributing rows per channel.
			v := make([][]float64, s.C*r)
			for i := range v {
				v[i] = make([]float64, t)
			}
			for tx := 0; tx < tilesX; tx++ {
				x0 := tx * m
				for c := 0; c < s.C; c++ {
					for kh := 0; kh < r; kh++ {
						ih := y + kh - s.Pad
						for j := 0; j < t; j++ {
							iw := x0 + j - s.Pad
							if ih < 0 || ih >= s.H || iw < 0 || iw >= s.W {
								d[j] = 0
							} else {
								d[j] = float64(in.At(c, ih, iw))
							}
						}
						copy(v[c*r+kh], plan.InputTransform1D(d))
					}
				}
				for mm := 0; mm < s.M; mm++ {
					// Same lane-blocked accumulation as wino2D, over
					// (channel, kernel-row) pairs; per-lane rows keep the
					// addition sequence bitwise identical to the scalar
					// interleaving.
					for l := range laneAcc {
						clear(laneAcc[l])
					}
					clear(tailAcc)
					pairs := s.C * r
					p := 0
					for ; p+vf <= pairs; p += vf {
						for l := 0; l < vf; l++ {
							winoAccumRow(laneAcc[l], u[mm*pairs+p+l], v[p+l])
						}
					}
					for ; p < pairs; p++ {
						winoAccumRow(tailAcc, u[mm*pairs+p], v[p])
					}
					for i := range sum {
						tail := tailAcc[i]
						for _, lrow := range laneAcc {
							tail += lrow[i]
						}
						sum[i] = tail
					}
					yv := plan.OutputTransform1D(sum)
					for j := 0; j < m && x0+j < ow; j++ {
						out.Set(mm, y, x0+j, float32(yv[j]))
					}
				}
			}
		})
		return out
	}
}

// winoWorkspace2D models the resident working set of the 2D algorithm
// in idealized float32 units (the reference implementation here uses
// float64 intermediates for numerical headroom, but a production kernel
// would not): the full Winograd-domain kernel tensor plus one row of
// transformed input tiles. This is the "significant memory" Table 1
// charges the 2D algorithm with.
func winoWorkspace2D(m, r int) func(Scenario) int64 {
	t := m + r - 1
	return func(s Scenario) int64 {
		kernelDomain := int64(s.M) * int64(s.C) * int64(t*t) * 4
		tileRow := int64(s.C) * int64(t*t) * 4 * int64((s.OutW()+m-1)/m)
		return kernelDomain + tileRow
	}
}

// winoWorkspace1D models the much smaller 1D working set: the row-wise
// algorithm streams one kernel-tap row at a time, so only an M×C×t
// slice of the transformed kernels plus the current row tiles must stay
// resident — r× less than the 2D kernel domain.
func winoWorkspace1D(m, r int) func(Scenario) int64 {
	t := m + r - 1
	return func(s Scenario) int64 {
		kernelRowSlice := int64(s.M) * int64(s.C) * int64(t) * 4
		rowTiles := int64(s.C) * int64(r) * int64(t) * 4
		return kernelRowSlice + rowTiles
	}
}

// winoPrimitives assembles the Winograd family: the cross product of
// tile size F(m,r), dimensionality, vector factor and layout used by the
// paper's experiments.
func winoPrimitives() []*Primitive {
	var ps []*Primitive
	add2d := func(m, r, vf int, layout tensor.Layout) {
		suffix := ""
		if layout != tensor.CHW {
			suffix = "-" + layout.String()
		}
		ps = append(ps, &Primitive{
			Name:   fmt.Sprintf("wino2d-m%d-k%d-vf%d%s", m, r, vf, suffix),
			Family: FamilyWinograd, In: layout, Out: layout,
			VF: vf, Ks: []int{r}, MinC: 1,
			WinoM: m, WinoR: r, Wino2D: true,
			Workspace: winoWorkspace2D(m, r),
			Run:       wino2D(m, r, vf, layout),
			RunBatch:  wino2DBatch(m, r, layout),
		})
	}
	add1d := func(m, r, vf int, layout tensor.Layout) {
		suffix := ""
		if layout != tensor.CHW {
			suffix = "-" + layout.String()
		}
		ps = append(ps, &Primitive{
			Name:   fmt.Sprintf("wino1d-m%d-k%d-vf%d%s", m, r, vf, suffix),
			Family: FamilyWinograd, In: layout, Out: layout,
			VF: vf, Ks: []int{r}, MinC: 1,
			WinoM: m, WinoR: r, Wino2D: false,
			Workspace: winoWorkspace1D(m, r),
			Run:       wino1D(m, r, vf, layout),
		})
	}
	// 2D tiles: F(2,3), F(4,3), F(6,3) for K=3 and F(2,5), F(3,5) for
	// K=5, each at VF4/VF8 in both the channels-last layout the
	// pointwise stage vectorizes best over (HWC) and the canonical CHW.
	for _, mr := range [][2]int{{2, 3}, {4, 3}, {6, 3}, {2, 5}, {3, 5}} {
		for _, vf := range []int{4, 8} {
			add2d(mr[0], mr[1], vf, tensor.CHW)
			add2d(mr[0], mr[1], vf, tensor.HWC)
		}
	}
	// Scalar 2D reference variants.
	add2d(2, 3, 1, tensor.CHW)
	add2d(4, 3, 1, tensor.CHW)
	// 1D tiles: row-wise algorithms want row-contiguous layouts (CHW,
	// HCW); an HWC variant exists but gathers strided rows.
	for _, mr := range [][2]int{{2, 3}, {4, 3}, {2, 5}, {3, 5}} {
		for _, vf := range []int{4, 8} {
			add1d(mr[0], mr[1], vf, tensor.CHW)
			add1d(mr[0], mr[1], vf, tensor.HCW)
		}
	}
	add1d(2, 3, 4, tensor.HWC)
	add1d(4, 3, 8, tensor.HWC)
	return ps
}
