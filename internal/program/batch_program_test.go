package program

import (
	"strings"
	"testing"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/selector"
)

func compileBatch(t *testing.T, name string, threads, batch int) *Program {
	t.Helper()
	g, err := models.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := selector.Select(g, selector.Options{
		Prof: cost.NewModel(cost.IntelHaswell), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileBatch(plan, batch)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompileBatchSlotsConvOutputs: a batched program plans convolution
// outputs into slots (batched kernels write into provided
// destinations), while the batch-1 program leaves them dynamic (the
// per-image primitives allocate). The network output stays fresh in
// both.
func TestCompileBatchSlotsConvOutputs(t *testing.T) {
	p1 := compileBatch(t, "googlenet", 4, 1)
	p8 := compileBatch(t, "googlenet", 4, 8)
	if p1.Batch != 1 || p8.Batch != 8 {
		t.Fatalf("batch fields %d/%d, want 1/8", p1.Batch, p8.Batch)
	}
	dyn1, dyn8 := 0, 0
	for i := range p1.Instrs {
		ins := &p1.Instrs[i]
		if ins.Op == OpConv && ins.Slot == NoSlot && i != p1.Output {
			dyn1++
		}
	}
	for i := range p8.Instrs {
		ins := &p8.Instrs[i]
		if ins.Op == OpConv && ins.Slot == NoSlot && i != p8.Output {
			dyn8++
		}
	}
	if dyn1 == 0 {
		t.Error("batch-1 program slotted its conv outputs (expected primitive-allocated)")
	}
	if dyn8 != 0 {
		t.Errorf("batched program left %d conv outputs dynamic", dyn8)
	}
	out := &p8.Instrs[p8.Output]
	if out.Slot != NoSlot || out.Donor >= 0 {
		t.Error("batched program's output is not a fresh allocation")
	}
	if err := p8.Validate(); err != nil {
		t.Errorf("batched plan fails validation: %v", err)
	}
}

// TestBatchStatsScaleWithN pins the satellite fix: reported slot and
// peak bytes must describe the batch actually planned, not batch 1.
func TestBatchStatsScaleWithN(t *testing.T) {
	p8 := compileBatch(t, "alexnet", 4, 8)
	var slotSum int64
	for _, c := range p8.SlotCap {
		slotSum += int64(c) * 4
	}
	if want := slotSum * 8; p8.Stats.SlotBytes != want {
		t.Errorf("SlotBytes = %d, want %d (slot capacities × batch)", p8.Stats.SlotBytes, want)
	}
	if p8.Stats.Batch != 8 {
		t.Errorf("Stats.Batch = %d, want 8", p8.Stats.Batch)
	}
	if p8.Stats.PeakBytes != p8.Stats.SlotBytes+p8.Stats.DynamicPeakBytes {
		t.Error("PeakBytes is not SlotBytes + DynamicPeakBytes")
	}
	// NaiveBytes for N images is N × the per-image sum.
	p1 := compileBatch(t, "alexnet", 4, 1)
	if p8.Stats.NaiveBytes != 8*p1.Stats.NaiveBytes {
		t.Errorf("NaiveBytes = %d, want %d", p8.Stats.NaiveBytes, 8*p1.Stats.NaiveBytes)
	}
}

// TestBatchSourceReportsBatchScaledBytes: the listing must carry the
// batch size and batch-scaled memory plan.
func TestBatchSourceReportsBatchScaledBytes(t *testing.T) {
	p := compileBatch(t, "alexnet", 4, 4)
	src := p.Source()
	for _, want := range []string{"batch 4", "/image]", "for batch 4"} {
		if !strings.Contains(src, want) {
			t.Errorf("batched listing missing %q", want)
		}
	}
	p1 := compileBatch(t, "alexnet", 4, 1)
	if !strings.Contains(p1.Source(), "batch 1") {
		t.Error("batch-1 listing missing batch annotation")
	}
}

// TestCompileBatchRejectsBadN: zero and negative batch sizes fail.
func TestCompileBatchRejectsBadN(t *testing.T) {
	g, err := models.Build("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := selector.Select(g, selector.Options{Prof: cost.NewModel(cost.IntelHaswell)})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -3} {
		if _, err := CompileBatch(plan, n); err == nil {
			t.Errorf("CompileBatch accepted batch %d", n)
		}
	}
}

// TestCompileBatchBucketPlans: a plan selected for one batch bucket
// compiles at exactly that bucket and is rejected at any other, while a
// batch-agnostic (Select) plan compiles at every bucket — the seam that
// keeps a serving registry from executing bucket B against bucket A's
// optimization.
func TestCompileBatchBucketPlans(t *testing.T) {
	g, err := models.Build("micronet")
	if err != nil {
		t.Fatal(err)
	}
	opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: 1}
	b4, err := selector.SelectBatch(g, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileBatch(b4, 4); err != nil {
		t.Errorf("batch-4 plan at bucket 4: %v", err)
	}
	for _, n := range []int{1, 2, 8} {
		if _, err := CompileBatch(b4, n); err == nil {
			t.Errorf("batch-4 plan compiled at bucket %d; CheckBatch should reject the mismatch", n)
		}
	}
	agnostic, err := selector.Select(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} {
		if _, err := CompileBatch(agnostic, n); err != nil {
			t.Errorf("batch-agnostic plan at bucket %d: %v", n, err)
		}
	}
}
