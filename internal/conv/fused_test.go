package conv

import (
	"testing"

	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// otherIm2Layout maps an im2 primitive's native input layout to the
// one its pack absorbs.
func otherIm2Layout(l tensor.Layout) tensor.Layout {
	if l == tensor.CHW {
		return tensor.HWC
	}
	return tensor.CHW
}

// TestFusedEpilogueMatchesPostPass: for every primitive,
// RunBatchFusedInto with an epilogue must be bitwise identical to the
// plain batched run followed by the separate elementwise pass — fusion
// moves work into the output write, it never changes arithmetic.
func TestFusedEpilogueMatchesPostPass(t *testing.T) {
	for _, p := range Library() {
		if p.RunBatch == nil {
			continue
		}
		for _, s := range batchScenarios() {
			if !p.Supports(s) {
				continue
			}
			for _, n := range []int{1, 3} {
				in := makeInputBatch(p.In, n, s)
				k := NewKernel(s.M, s.C, s.K)
				k.FillRandom(3)
				res := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
				for i := 0; i < n; i++ {
					res.Image(i).FillRandom(int64(31 * (i + 1)))
				}
				want := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
				got := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
				for _, epi := range []gemm.Epilogue{gemm.EpiReLU, gemm.EpiAdd, gemm.EpiAddReLU} {
					for _, threads := range []int{1, 3} {
						RunBatchInto(p, want, in, k, s, threads)
						ApplyEpilogueBatch(want, epi, res, threads)
						RunBatchFusedInto(p, got, in, k, s, threads, epi, res)
						for i := range got.Data {
							if got.Data[i] != want.Data[i] {
								t.Fatalf("%s %s n=%d threads=%d epi=%v: data[%d]=%v want %v (not bitwise)",
									p.Name, s, n, threads, epi, i, got.Data[i], want.Data[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestFusedInputConversionMatchesConvertThenRun: an im2 primitive fed
// the absorbable other layout must produce bitwise what convert-then-
// run produces — the layout-general packer builds the identical patch
// matrix, so the GEMM sees the same operands.
func TestFusedInputConversionMatchesConvertThenRun(t *testing.T) {
	tested := 0
	for _, p := range Library() {
		if p.RunBatchFused == nil {
			continue
		}
		from := otherIm2Layout(p.In)
		if !p.CanAbsorbInput(from) {
			t.Errorf("%s: fused im2 primitive should absorb %s input", p.Name, from)
			continue
		}
		tested++
		for _, s := range batchScenarios() {
			if !p.Supports(s) {
				continue
			}
			for _, n := range []int{1, 3} {
				raw := makeInputBatch(from, n, s)
				conv := tensor.NewBatch(p.In, n, s.C, s.H, s.W)
				for i := 0; i < n; i++ {
					tensor.ConvertInto(conv.Image(i), raw.Image(i))
				}
				k := NewKernel(s.M, s.C, s.K)
				k.FillRandom(5)
				res := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
				for i := 0; i < n; i++ {
					res.Image(i).FillRandom(int64(17 * (i + 1)))
				}
				want := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
				got := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
				for _, epi := range []gemm.Epilogue{gemm.EpiNone, gemm.EpiAddReLU} {
					for _, threads := range []int{1, 3} {
						RunBatchFusedInto(p, want, conv, k, s, threads, epi, res)
						RunBatchFusedInto(p, got, raw, k, s, threads, epi, res)
						for i := range got.Data {
							if got.Data[i] != want.Data[i] {
								t.Fatalf("%s %s n=%d threads=%d epi=%v: absorbed conversion diverges at %d",
									p.Name, s, n, threads, epi, i)
							}
						}
					}
				}
			}
		}
	}
	if tested == 0 {
		t.Fatal("no fused im2 primitives exercised")
	}
}

// TestFusedFallbackCoversNonFusedPrimitives: primitives without a
// native fused entry (wino2d, direct, kn2, fft …) still honor the
// fused contract via the post-pass fallback.
func TestFusedFallbackCoversNonFusedPrimitives(t *testing.T) {
	s := Scenario{C: 4, H: 8, W: 8, Stride: 1, K: 3, M: 5, Pad: 1}
	tested := 0
	for _, p := range Library() {
		if p.RunBatchFused != nil || !p.Supports(s) || p.In != tensor.CHW && p.In != tensor.HWC {
			continue
		}
		if p.Out != p.In {
			continue
		}
		tested++
		const n = 2
		in := makeInputBatch(p.In, n, s)
		k := NewKernel(s.M, s.C, s.K)
		k.FillRandom(7)
		res := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
		for i := 0; i < n; i++ {
			res.Image(i).FillRandom(int64(13 * (i + 1)))
		}
		want := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
		got := tensor.NewBatch(p.Out, n, s.M, s.OutH(), s.OutW())
		RunBatchInto(p, want, in, k, s, 2)
		ApplyEpilogueBatch(want, gemm.EpiAddReLU, res, 2)
		RunBatchFusedInto(p, got, in, k, s, 2, gemm.EpiAddReLU, res)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s: fallback fused path diverges at %d", p.Name, i)
			}
		}
	}
	if tested == 0 {
		t.Fatal("no fallback primitives exercised")
	}
}
