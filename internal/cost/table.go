package cost

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"pbqpdnn/internal/conv"
	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/gemm"
	"pbqpdnn/internal/tensor"
)

// Table is a materialized, serializable cost table: every
// (scenario, primitive, threads) node cost and every
// (transform, shape) conversion cost a network's optimization needs,
// optionally per minibatch size. This implements the paper's deployment
// story (§4): "the resulting cost tables are tiny compared to the
// weight data … making it feasible to produce these cost tables before
// deployment, and ship them with the trained model". Profile once per
// hardware platform per DNN model — with the Measure profiler on the
// real device, at the batch sizes the deployment will serve — then ship
// the JSON and re-solve on the target without ever running a primitive.
//
// Key format: batch-1 entries use the bare scenario/shape key (the
// format tables used before batching, so old tables load unchanged);
// batch-N entries append "@N". Batched lookups that miss fall back to
// the batch-1 entry scaled linearly by N — the conservative
// no-amortization estimate — so a batch-1-only table still drives
// per-bucket selection, just without measured amortization.
type Table struct {
	// Machine documents the platform the table was profiled on.
	Machine string `json:"machine"`
	// GemmVariant documents which packed-GEMM microkernel ("avx2" or
	// "go") was dispatched while the entries were measured. Measured
	// costs are variant-specific — the microkernels differ ~4× on
	// GEMM-backed primitives — so a table must only drive selection on
	// a host dispatching the same variant. Absent in tables written
	// before runtime dispatch existed (implicitly "go").
	GemmVariant string `json:"gemm_variant,omitempty"`
	// Threads is the thread count the entries were profiled at.
	Threads int `json:"threads"`
	// Batches records the minibatch sizes profiled into the table.
	// Empty means batch 1 only (the pre-batching table format).
	Batches []int `json:"batches,omitempty"`
	// Nodes maps scenario (suffixed "@N" for batch N > 1) → primitive
	// name → seconds for the whole batch.
	Nodes map[string]map[string]float64 `json:"nodes"`
	// Transforms maps shape ("CxHxW", suffixed "@N" for batch N > 1) →
	// transform name → seconds for the whole batch.
	Transforms map[string]map[string]float64 `json:"transforms"`
	// Epilogues maps scenario (suffixed "@N") → primitive name → the
	// seconds saved by fusing one elementwise epilogue into that
	// primitive's writeback (the selector's fusion credit). Absent in
	// tables written before fusion-aware profiling; missing entries
	// claim no credit, which is always sound.
	Epilogues map[string]map[string]float64 `json:"epilogues,omitempty"`
}

func shapeKey(c, h, w int) string { return fmt.Sprintf("%dx%dx%d", c, h, w) }

// nodeKey is the Nodes map key for a scenario at batch n. Batch-1 keys
// are the bare scenario string for compatibility with tables written
// before batch-aware profiling.
func nodeKey(s conv.Scenario, n int) string {
	if n <= 1 {
		return s.String()
	}
	return fmt.Sprintf("%s@%d", s.String(), n)
}

// transformKey is the Transforms map key for a shape at batch n.
func transformKey(c, h, w, n int) string {
	if n <= 1 {
		return shapeKey(c, h, w)
	}
	return fmt.Sprintf("%s@%d", shapeKey(c, h, w), n)
}

// NewTable returns an empty table for the named machine, ready for
// AddNet. The table is stamped with the packed-GEMM microkernel
// variant the process currently dispatches to, since that is what the
// Measure profiler will wall-clock into it.
func NewTable(machine string, threads int) *Table {
	return &Table{
		Machine:     machine,
		GemmVariant: gemm.Variant(),
		Threads:     threads,
		Nodes:       map[string]map[string]float64{},
		Transforms:  map[string]map[string]float64{},
	}
}

// AddNet profiles every (layer scenario, supporting primitive) pair of
// the network and every direct transform at every edge shape, at every
// requested batch size, merging the entries into the table. Entries
// already present (from a previous AddNet — a registry calibrating
// several hosted models into one table) are not re-profiled.
func (t *Table) AddNet(net *dnn.Graph, lib []*conv.Primitive, prof Profiler, batches []int) {
	t.AddNetTopK(net, lib, nil, prof, batches, 0)
}

// AddNetTopK is AddNet with per-scenario candidate pruning — the
// practical form of the paper's §3.1 profiling stage when the profiler
// actually executes primitives (cost.Measure) on a full-size network:
// wall-clocking all ~70 library entries per layer per batch bucket
// costs hours, but the analytic ranker agrees with the hardware about
// which handful are contenders. For each conv scenario the shortlist is
// the union, over the requested batch sizes, of the ranker's k cheapest
// supporting primitives at that batch — so both the per-image favorites
// and the batch-amortized favorites get measured — and only the
// shortlist is priced with meas. Unmeasured primitives stay absent
// (+Inf to the selector, which prunes them from the PBQP instance).
// k ≤ 0 or a nil ranker disables pruning and measures everything.
func (t *Table) AddNetTopK(net *dnn.Graph, lib []*conv.Primitive, ranker, meas Profiler, batches []int, k int) {
	if len(batches) == 0 {
		batches = []int{1}
	}
	for _, b := range batches {
		t.noteBatch(b)
	}
	for _, id := range net.ConvLayers() {
		s := net.Layers[id].Conv
		cands := conv.Supporting(lib, s)
		if k > 0 && ranker != nil && len(cands) > k {
			keep := map[string]bool{}
			for _, b := range batches {
				ranked := append([]*conv.Primitive(nil), cands...)
				sort.SliceStable(ranked, func(i, j int) bool {
					return PrimitiveN(ranker, ranked[i], s, t.Threads, b) <
						PrimitiveN(ranker, ranked[j], s, t.Threads, b)
				})
				for i := 0; i < k && i < len(ranked); i++ {
					keep[ranked[i].Name] = true
				}
			}
			var short []*conv.Primitive
			for _, p := range cands {
				if keep[p.Name] {
					short = append(short, p)
				}
			}
			cands = short
		}
		for _, b := range batches {
			key := nodeKey(s, b)
			row := t.Nodes[key]
			if row == nil {
				row = map[string]float64{}
				t.Nodes[key] = row
			}
			for _, p := range cands {
				if _, done := row[p.Name]; !done {
					row[p.Name] = PrimitiveN(meas, p, s, t.Threads, b)
				}
				if save := EpilogueSavingN(meas, p, s, b); save > 0 {
					if t.Epilogues == nil {
						t.Epilogues = map[string]map[string]float64{}
					}
					erow := t.Epilogues[key]
					if erow == nil {
						erow = map[string]float64{}
						t.Epilogues[key] = erow
					}
					if _, done := erow[p.Name]; !done {
						erow[p.Name] = save
					}
				}
			}
		}
	}
	for _, b := range batches {
		for _, l := range net.Layers {
			key := transformKey(l.OutC, l.OutH, l.OutW, b)
			if _, done := t.Transforms[key]; done {
				continue
			}
			row := map[string]float64{}
			for _, tr := range tensor.DirectTransforms() {
				row[tr.Name] = TransformN(meas, tr, l.OutC, l.OutH, l.OutW, b)
			}
			t.Transforms[key] = row
		}
	}
}

// noteBatch records a profiled batch size (sorted, deduplicated).
func (t *Table) noteBatch(b int) {
	for _, have := range t.Batches {
		if have == b {
			return
		}
	}
	t.Batches = append(t.Batches, b)
	sort.Ints(t.Batches)
}

// BuildTable profiles the network at batch 1 — the paper's §3.1
// profiling stage, materialized. It is BuildTableBatches at {1}.
func BuildTable(net *dnn.Graph, lib []*conv.Primitive, prof Profiler, machine string, threads int) *Table {
	return BuildTableBatches(net, lib, prof, machine, threads, []int{1})
}

// BuildTableBatches profiles the network at every given batch size:
// the batch-aware §3.1 profiling stage, pricing each (scenario,
// primitive) pair and each edge shape per minibatch bucket so the
// per-bucket PBQP solves on the target need the table alone.
func BuildTableBatches(net *dnn.Graph, lib []*conv.Primitive, prof Profiler, machine string, threads int, batches []int) *Table {
	t := NewTable(machine, threads)
	t.AddNet(net, lib, prof, batches)
	return t
}

// Primitive implements Profiler from the materialized table. Entries
// missing from the table (a scenario or primitive that was not
// profiled) cost +Inf, so the selector will never choose them.
func (t *Table) Primitive(p *conv.Primitive, s conv.Scenario, threads int) float64 {
	if row, ok := t.Nodes[nodeKey(s, 1)]; ok {
		if c, ok := row[p.Name]; ok {
			return c
		}
	}
	return math.Inf(1)
}

// PrimitiveBatch implements BatchProfiler from the materialized table.
// A missing (scenario, N) entry falls back to N times the batch-1
// entry — the documented no-amortization estimate that keeps old
// shape-only tables usable for per-bucket selection — and +Inf when
// the scenario was never profiled at all.
func (t *Table) PrimitiveBatch(p *conv.Primitive, s conv.Scenario, threads, n int) float64 {
	if row, ok := t.Nodes[nodeKey(s, n)]; ok {
		if c, ok := row[p.Name]; ok {
			return c
		}
	}
	if n > 1 {
		if row, ok := t.Nodes[nodeKey(s, 1)]; ok {
			if c, ok := row[p.Name]; ok {
				return float64(n) * c
			}
		}
	}
	return math.Inf(1)
}

// EpilogueSaving implements EpilogueProfiler from the table. A missing
// (scenario, N) entry falls back to N times the batch-1 entry (the
// saving is a streaming pass over the output slab, linear in the batch)
// and to zero — never a fabricated credit — when the scenario carries
// no epilogue entry at all.
func (t *Table) EpilogueSaving(p *conv.Primitive, s conv.Scenario, n int) float64 {
	if row, ok := t.Epilogues[nodeKey(s, n)]; ok {
		if v, ok := row[p.Name]; ok {
			return v
		}
	}
	if n > 1 {
		if row, ok := t.Epilogues[nodeKey(s, 1)]; ok {
			if v, ok := row[p.Name]; ok {
				return float64(n) * v
			}
		}
	}
	return 0
}

// Transform implements Profiler from the materialized table.
func (t *Table) Transform(tr tensor.Transform, c, h, w int) float64 {
	if row, ok := t.Transforms[transformKey(c, h, w, 1)]; ok {
		if v, ok := row[tr.Name]; ok {
			return v
		}
	}
	return math.Inf(1)
}

// TransformBatch implements BatchProfiler from the table, with the
// same batch-1 linear-scaling fallback as PrimitiveBatch.
func (t *Table) TransformBatch(tr tensor.Transform, c, h, w, n int) float64 {
	if row, ok := t.Transforms[transformKey(c, h, w, n)]; ok {
		if v, ok := row[tr.Name]; ok {
			return v
		}
	}
	if n > 1 {
		if row, ok := t.Transforms[transformKey(c, h, w, 1)]; ok {
			if v, ok := row[tr.Name]; ok {
				return float64(n) * v
			}
		}
	}
	return math.Inf(1)
}

// NumEntries returns the total number of profiled costs — the "tiny"
// size the paper contrasts against model weights.
func (t *Table) NumEntries() int {
	n := 0
	for _, row := range t.Nodes {
		n += len(row)
	}
	for _, row := range t.Transforms {
		n += len(row)
	}
	return n
}

// Save writes the table as JSON.
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// LoadTable reads a table written by Save (any version: tables written
// before batch-aware profiling carry bare shape keys, which the
// batched lookups treat as batch-1 entries).
func LoadTable(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("cost: decoding table: %w", err)
	}
	if t.Nodes == nil || t.Transforms == nil {
		return nil, fmt.Errorf("cost: table missing sections")
	}
	return &t, nil
}
