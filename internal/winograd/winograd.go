// Package winograd implements the Winograd/Cook–Toom fast convolution
// substrate. Rather than hard-coding the handful of transform matrices
// that appear in the literature, it constructs the A, G and B matrices
// for any F(m,r) — m outputs per tile of a radix-r filter — from
// polynomial interpolation points, so the primitive library can offer
// F(2,3), F(4,3), F(2,5), F(3,5) and friends in both 1D and nested-2D
// forms (the paper implements Winograd for K=3 and K=5).
//
// The construction follows the Toom–Cook evaluation/interpolation view
// of short convolution plus the transposition principle: with V_k the
// (m+r-1)×k Vandermonde evaluation matrix over the chosen points
// (including the point at infinity), a correlation tile is
//
//	y = V_mᵀ · [ (V_r·g) ⊙ (V_t⁻ᵀ·d) ],   t = m+r-1,
//
// i.e. Aᵀ = V_mᵀ, G = V_r, Bᵀ = V_t⁻ᵀ.
package winograd

import "fmt"

// Plan holds the transform matrices for a Winograd convolution F(m,r).
// All matrices are dense row-major float64.
type Plan struct {
	M int // outputs per tile
	R int // filter radix (kernel size)
	T int // input tile size, m+r-1

	AT []float64 // m×t output (inverse) transform
	G  []float64 // t×r kernel transform
	BT []float64 // t×t input transform
}

// defaultPoints are the interpolation points used in order; small
// magnitudes (including ±1/2) keep the Vandermonde system well
// conditioned for the tile sizes the primitive library uses (t ≤ 9).
var defaultPoints = []float64{0, 1, -1, 2, -2, 0.5, -0.5, 3, -3, 4, -4}

// NewPlan constructs the transform matrices for F(m,r). It panics if m
// or r is smaller than 1 or the required tile exceeds the supported
// point set.
func NewPlan(m, r int) *Plan {
	if m < 1 || r < 1 {
		panic(fmt.Sprintf("winograd: invalid F(%d,%d)", m, r))
	}
	t := m + r - 1
	if t-1 > len(defaultPoints) {
		panic(fmt.Sprintf("winograd: tile %d too large (max %d)", t, len(defaultPoints)+1))
	}
	pts := defaultPoints[:t-1] // finite points; the t-th is ∞

	vm := vandermonde(pts, t, m)
	vr := vandermonde(pts, t, r)
	vt := vandermonde(pts, t, t)
	vtInv := invert(vt, t)

	p := &Plan{M: m, R: r, T: t,
		AT: make([]float64, m*t),
		G:  vr,
		BT: make([]float64, t*t),
	}
	// AT = V_mᵀ
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			p.AT[j*t+i] = vm[i*m+j]
		}
	}
	// BT = V_t⁻ᵀ
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			p.BT[j*t+i] = vtInv[i*t+j]
		}
	}
	return p
}

// vandermonde builds the rows×cols evaluation matrix over pts plus the
// point at infinity: row i is [1, p_i, p_i², …]; the final row selects
// the leading coefficient.
func vandermonde(pts []float64, rows, cols int) []float64 {
	v := make([]float64, rows*cols)
	for i := 0; i < rows-1; i++ {
		x := 1.0
		for j := 0; j < cols; j++ {
			v[i*cols+j] = x
			x *= pts[i]
		}
	}
	v[(rows-1)*cols+cols-1] = 1
	return v
}

// invert returns the inverse of the n×n matrix a via Gauss–Jordan
// elimination with partial pivoting. It panics on a singular matrix,
// which cannot occur for distinct interpolation points.
func invert(a []float64, n int) []float64 {
	m := make([]float64, n*2*n)
	for i := 0; i < n; i++ {
		copy(m[i*2*n:], a[i*n:i*n+n])
		m[i*2*n+n+i] = 1
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(m[r*2*n+col]) > abs(m[piv*2*n+col]) {
				piv = r
			}
		}
		if abs(m[piv*2*n+col]) < 1e-12 {
			panic("winograd: singular Vandermonde system")
		}
		if piv != col {
			for j := 0; j < 2*n; j++ {
				m[col*2*n+j], m[piv*2*n+j] = m[piv*2*n+j], m[col*2*n+j]
			}
		}
		d := m[col*2*n+col]
		for j := 0; j < 2*n; j++ {
			m[col*2*n+j] /= d
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r*2*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				m[r*2*n+j] -= f * m[col*2*n+j]
			}
		}
	}
	inv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		copy(inv[i*n:], m[i*2*n+n:i*2*n+2*n])
	}
	return inv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// matVec computes y = M·x for a rows×cols row-major matrix.
func matVec(m []float64, rows, cols int, x, y []float64) {
	for i := 0; i < rows; i++ {
		var s float64
		row := m[i*cols : i*cols+cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// KernelTransform1D returns U = G·g (length t) for a length-r kernel.
func (p *Plan) KernelTransform1D(g []float32) []float64 {
	if len(g) != p.R {
		panic(fmt.Sprintf("winograd: kernel length %d, want %d", len(g), p.R))
	}
	x := make([]float64, p.R)
	for i, v := range g {
		x[i] = float64(v)
	}
	u := make([]float64, p.T)
	matVec(p.G, p.T, p.R, x, u)
	return u
}

// InputTransform1D returns V = Bᵀ·d (length t) for a length-t tile.
func (p *Plan) InputTransform1D(d []float64) []float64 {
	if len(d) != p.T {
		panic(fmt.Sprintf("winograd: tile length %d, want %d", len(d), p.T))
	}
	v := make([]float64, p.T)
	matVec(p.BT, p.T, p.T, d, v)
	return v
}

// OutputTransform1D returns y = Aᵀ·s (length m) from the elementwise
// product s of transformed kernel and input.
func (p *Plan) OutputTransform1D(s []float64) []float64 {
	if len(s) != p.T {
		panic(fmt.Sprintf("winograd: product length %d, want %d", len(s), p.T))
	}
	y := make([]float64, p.M)
	matVec(p.AT, p.M, p.T, s, y)
	return y
}

// KernelTransform2D returns U = G·g·Gᵀ (t×t) for an r×r kernel given
// row-major.
func (p *Plan) KernelTransform2D(g []float32) []float64 {
	if len(g) != p.R*p.R {
		panic(fmt.Sprintf("winograd: kernel size %d, want %d", len(g), p.R*p.R))
	}
	gf := make([]float64, p.R*p.R)
	for i, v := range g {
		gf[i] = float64(v)
	}
	return p.sandwich(p.G, p.T, p.R, gf)
}

// InputTransform2D returns V = Bᵀ·d·B (t×t) for a t×t input tile.
func (p *Plan) InputTransform2D(d []float64) []float64 {
	if len(d) != p.T*p.T {
		panic(fmt.Sprintf("winograd: tile size %d, want %d", len(d), p.T*p.T))
	}
	return p.sandwich(p.BT, p.T, p.T, d)
}

// OutputTransform2D returns Y = Aᵀ·s·A (m×m) from the t×t elementwise
// product.
func (p *Plan) OutputTransform2D(s []float64) []float64 {
	if len(s) != p.T*p.T {
		panic(fmt.Sprintf("winograd: product size %d, want %d", len(s), p.T*p.T))
	}
	return p.sandwich(p.AT, p.M, p.T, s)
}

// sandwich computes M·x·Mᵀ where M is rows×cols and x is cols×cols.
func (p *Plan) sandwich(m []float64, rows, cols int, x []float64) []float64 {
	tmp := make([]float64, rows*cols) // M·x
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var s float64
			for k := 0; k < cols; k++ {
				s += m[i*cols+k] * x[k*cols+j]
			}
			tmp[i*cols+j] = s
		}
	}
	out := make([]float64, rows*rows) // (M·x)·Mᵀ
	for i := 0; i < rows; i++ {
		for j := 0; j < rows; j++ {
			var s float64
			for k := 0; k < cols; k++ {
				s += tmp[i*cols+k] * m[j*cols+k]
			}
			out[i*rows+j] = s
		}
	}
	return out
}

// Flops1D returns the number of multiplications a direct 1D tile would
// use versus the Winograd tile, as (direct, winograd); used by the cost
// model to reason about the family's arithmetic advantage.
func (p *Plan) Flops1D() (direct, wino int) { return p.M * p.R, p.T }
